#!/usr/bin/env bash
# Drive the thread-safety negative-compile harness
# (tests/static_analysis/CMakeLists.txt): probe for a Clang compiler,
# configure the mini-project with it, and let its try_compile checks
# assert that -Werror=thread-safety fires on the deliberate violations.
#
# Exit status: 0 all expectations held, 1 an expectation failed,
# 2 setup error, 77 no Clang available (ctest SKIP_RETURN_CODE).
set -u -o pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

CLANGXX=""
for cand in clang++ clang++-20 clang++-19 clang++-18 clang++-17 \
            clang++-16 clang++-15 clang++-14; do
  if command -v "$cand" >/dev/null 2>&1; then
    CLANGXX="$cand"
    break
  fi
done
if [ -z "$CLANGXX" ]; then
  echo "run_negative_compile.sh: no clang++ found; skipping (the" \
       "static-analysis CI job runs this with clang installed)" >&2
  exit 77
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

if cmake -S "$ROOT/tests/static_analysis" -B "$WORK" \
         -DCMAKE_CXX_COMPILER="$CLANGXX" >"$WORK/configure.log" 2>&1; then
  grep -E 'pos_|neg_' "$WORK/configure.log" || true
  echo "run_negative_compile.sh: all expectations held with $CLANGXX" >&2
  exit 0
fi
cat "$WORK/configure.log" >&2
echo "run_negative_compile.sh: FAILED — see log above" >&2
exit 1
