#!/usr/bin/env bash
# Run the checked-in .clang-tidy configuration over src/ and tools/
# against a compile_commands.json, with a content-hash result cache so
# repeat runs (and the CI job via actions/cache) only re-analyse files
# whose preprocessed inputs could have changed.
#
# Usage:
#   scripts/run_clang_tidy.sh [--build-dir DIR] [--cache-dir DIR]
#                             [--require] [--jobs N]
#
# Exit status: 0 clean (or tool unavailable without --require),
# 1 findings, 2 setup error, 77 tool unavailable with --require off in
# a context that distinguishes skips (ctest SKIP_RETURN_CODE).
set -u -o pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build"
CACHE_DIR="${EBV_TIDY_CACHE:-$ROOT/.cache/clang-tidy}"
REQUIRE=0
JOBS="${EBV_TIDY_JOBS:-$(nproc 2>/dev/null || echo 2)}"

while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --cache-dir) CACHE_DIR="$2"; shift 2 ;;
    --require) REQUIRE=1; shift ;;
    --jobs) JOBS="$2"; shift 2 ;;
    *) echo "run_clang_tidy.sh: unknown argument: $1" >&2; exit 2 ;;
  esac
done

# Probe for clang-tidy, newest first. The dev container may only have
# GCC; the static-analysis CI job installs clang-tidy explicitly.
TIDY=""
for cand in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
            clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "$cand" >/dev/null 2>&1; then
    TIDY="$cand"
    break
  fi
done
if [ -z "$TIDY" ]; then
  if [ "$REQUIRE" = 1 ]; then
    echo "run_clang_tidy.sh: clang-tidy not found and --require set" >&2
    exit 2
  fi
  echo "run_clang_tidy.sh: clang-tidy not found; skipping (install" \
       "clang-tidy or run the static-analysis CI job)" >&2
  exit 77
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy.sh: $BUILD_DIR/compile_commands.json missing —" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

mkdir -p "$CACHE_DIR"

# Cache key per file: clang-tidy version + .clang-tidy config + the
# file's own content + every repo header it could include (a header
# edit must invalidate dependents; hashing all of src/ is coarse but
# sound, and the whole-tree hash is computed once).
TREE_HASH="$( (
  "$TIDY" --version
  cat "$ROOT/.clang-tidy"
  find "$ROOT/src" "$ROOT/tools" -name '*.h' -print0 | sort -z | xargs -0 cat
) | sha256sum | cut -d' ' -f1)"

mapfile -t SOURCES < <(find "$ROOT/src" "$ROOT/tools" -name '*.cpp' | sort)

FAIL=0
RAN=0
CACHED=0
run_one() {
  local src="$1"
  local file_hash key out
  file_hash="$(sha256sum "$src" | cut -d' ' -f1)"
  key="$CACHE_DIR/$(printf '%s' "$TREE_HASH:$file_hash" | sha256sum |
                    cut -d' ' -f1)"
  if [ -f "$key" ]; then
    # Cached verdict: empty file = clean, else the stored findings.
    if [ -s "$key" ]; then
      cat "$key"
      return 1
    fi
    return 0
  fi
  out="$("$TIDY" -p "$BUILD_DIR" --quiet "$src" 2>/dev/null)"
  local status=$?
  if [ $status -ne 0 ] || [ -n "$out" ]; then
    printf '%s\n' "$out" > "$key.tmp.$$"
    mv "$key.tmp.$$" "$key"
    printf '%s\n' "$out"
    return 1
  fi
  : > "$key.tmp.$$"
  mv "$key.tmp.$$" "$key"
  return 0
}

# Simple job pool: analyse up to $JOBS translation units concurrently.
pids=()
for src in "${SOURCES[@]}"; do
  file_hash="$(sha256sum "$src" | cut -d' ' -f1)"
  key="$CACHE_DIR/$(printf '%s' "$TREE_HASH:$file_hash" | sha256sum |
                    cut -d' ' -f1)"
  if [ -f "$key" ]; then
    CACHED=$((CACHED + 1))
    if [ -s "$key" ]; then
      cat "$key"
      FAIL=1
    fi
    continue
  fi
  run_one "$src" &
  pids+=($!)
  RAN=$((RAN + 1))
  if [ "${#pids[@]}" -ge "$JOBS" ]; then
    wait "${pids[0]}" || FAIL=1
    pids=("${pids[@]:1}")
  fi
done
for pid in "${pids[@]}"; do
  wait "$pid" || FAIL=1
done

echo "run_clang_tidy.sh: ${#SOURCES[@]} files ($RAN analysed," \
     "$CACHED cached) with $TIDY" >&2
if [ "$FAIL" -ne 0 ]; then
  echo "run_clang_tidy.sh: findings above — fix them or suppress" \
       "inline (// NOLINT(check-name): reason)" >&2
  exit 1
fi
echo "run_clang_tidy.sh: clean" >&2
exit 0
