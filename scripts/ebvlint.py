#!/usr/bin/env python3
"""ebvlint: project-invariant linter for the EBV partitioning runtime.

Enforces the repo-specific conventions that generic tools (clang-tidy,
-Wthread-safety) cannot express — the bounded-read I/O boundary, the
centralised number parsing, checked stream writes, the capability-
annotated locking discipline, and pid-unique temp-file naming. See
docs/STATIC_ANALYSIS.md for the conventions themselves.

Usage:
    python3 scripts/ebvlint.py [--root DIR] [FILE...]

With no FILE arguments, scans every .h/.cpp under src/ and tools/
(tests/ is deliberately out of scope: test code may use std::mutex etc.
directly). Exit status: 0 clean, 1 findings, 2 usage/IO error.

Suppressing a finding
---------------------
Add an inline allow on the offending line or in the comment block
immediately above it, with a reason (the reason is mandatory):

    // ebvlint: allow(rule-name): why this specific use is sound

File-level allowlists for whole modules that ARE the boundary a rule
protects (e.g. the binary readers for raw-read-boundary) live in the
RULES table below; extending one is a reviewed change to this script.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

SCAN_DIRS = ("src", "tools")
EXTENSIONS = (".h", ".cpp")

ALLOW_RE = re.compile(r"//\s*ebvlint:\s*allow\(([a-z0-9-]+)\)\s*:\s*(\S.*)")
COMMENT_ONLY_RE = re.compile(r"^\s*(//|\*|/\*)")


@dataclass
class Rule:
    name: str
    description: str
    # Regex matched against comment-stripped line text.
    pattern: re.Pattern
    # Repo-relative paths where the pattern is the module's job.
    allowed_files: frozenset = field(default_factory=frozenset)
    # Extra per-file predicate: called once per file with the full
    # comment-stripped text; returning True suppresses every match in
    # the file (used by tempfile-unique-id).
    file_exempt: object = None


def _uses_unique_suffix(text: str) -> bool:
    return "process_unique_suffix" in text


RULES = [
    Rule(
        name="raw-read-boundary",
        description=(
            "raw byte reinterpretation (reinterpret_cast / fread / "
            "read_raw) outside the bounded-read boundary modules — "
            "hostile input must go through the checked readers"
        ),
        pattern=re.compile(r"reinterpret_cast|(?<![\w.])fread\s*\(|\bread_raw\b"),
        allowed_files=frozenset({
            "src/common/binary_io.h",
            "src/graph/section_io.h",
            "src/graph/section_io.cpp",
            "src/graph/io.cpp",
            "src/graph/mapped_graph.cpp",
            "src/graph/snapshot_convert.cpp",
            "src/partition/partition_io.cpp",
            "src/bsp/checkpoint.cpp",
            "src/bsp/spill_store.cpp",
            "src/bsp/mailbox.h",
            "src/serve/protocol.cpp",
        }),
    ),
    Rule(
        name="naked-number-parse",
        description=(
            "std::sto* outside cli_args.cpp — these accept trailing "
            "junk and throw untyped errors; use cli::parse_uint / "
            "cli::parse_double (full-string validated, flag-named "
            "errors)"
        ),
        pattern=re.compile(r"std::sto[a-z]+\s*\(|\bstrtol{1,2}\s*\(|\bstrtou?ll?\s*\("),
        allowed_files=frozenset({"src/common/cli_args.cpp"}),
    ),
    Rule(
        name="naked-stream-write",
        description=(
            "raw ostream .write() outside the writer modules — binary "
            "writers must report failures with flag-named errors "
            "(failpoint::maybe_fail_stream + checked state), not "
            "silently truncate"
        ),
        pattern=re.compile(r"\.write\s*\("),
        allowed_files=frozenset({
            "src/common/binary_io.h",
            "src/graph/section_io.cpp",
            "src/graph/io.cpp",
            "src/graph/mapped_graph.cpp",
            "src/graph/snapshot_convert.cpp",
            "src/partition/partition_io.cpp",
            "src/bsp/checkpoint.cpp",
            "src/bsp/spill_store.cpp",
            "src/bsp/mailbox.h",
        }),
    ),
    Rule(
        name="unannotated-mutex",
        description=(
            "raw std::mutex / std::condition_variable — not a Clang "
            "capability, so guarded members can never be machine-"
            "checked; use ebv::Mutex / ebv::CondVar from common/sync.h"
        ),
        pattern=re.compile(r"std::(mutex|recursive_mutex|condition_variable)\b"),
        allowed_files=frozenset({"src/common/sync.h"}),
    ),
    Rule(
        name="inline-metric-name",
        description=(
            "metrics registry lookup with an inline string literal — "
            "metric names must be the kebab.dotted constants from "
            "src/obs/metric_names.h (one grep-able catalogue whose "
            "grammar is machine-checked; composites go through "
            "obs::suffixed)"
        ),
        pattern=re.compile(r"\.(counter|gauge|histogram)\s*\(\s*\""),
    ),
    Rule(
        name="tempfile-unique-id",
        description=(
            "temp-file name built without process_unique_suffix() — "
            "concurrent writers would clobber each other and the stale "
            "sweep (common/stale_sweep.h) cannot reclaim the file by "
            "pid after a crash"
        ),
        pattern=re.compile(r"\+\s*\"[^\"]*\.tmp[^\"]*\"|\"[^\"]*\.tmp[^\"]*\"\s*\+"),
        file_exempt=_uses_unique_suffix,
    ),
]

# Every string literal in the metric-name catalogue must follow the
# kebab.dotted grammar: lower-case kebab segments joined by dots, at
# least two dot segments ("serve.queue-wait-ms"). The inline-metric-name
# rule funnels all names through this file; this check is what makes the
# funnel worth having.
METRIC_NAME_FILE = "src/obs/metric_names.h"
METRIC_NAME_RULE = "metric-name-format"
METRIC_NAME_RE = re.compile(
    r"^[a-z0-9]+(-[a-z0-9]+)*(\.[a-z0-9]+(-[a-z0-9]+)*)+$")
STRING_LITERAL_RE = re.compile(r'"([^"\\]*)"')

# ebv::Mutex declarations must have an annotation partner: the declared
# name referenced by some EBV_* annotation in the same file (GUARDED_BY,
# REQUIRES, ACQUIRE, ..., ACQUIRED_BEFORE on the declaration itself).
MUTEX_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:ebv::)?Mutex\s+([A-Za-z_]\w*)\s*(?:;|\s+EBV_)")
MUTEX_PARTNER_RULE = "unannotated-mutex"


def strip_comments(lines):
    """Return lines with // and /* */ comment text blanked out (string
    literals are left alone; a // inside a literal is rare enough in
    this tree that the simpler scan wins)."""
    out = []
    in_block = False
    for line in lines:
        result = []
        i = 0
        n = len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            if line.startswith("//", i):
                break
            if line.startswith("/*", i):
                in_block = True
                i += 2
                continue
            result.append(line[i])
            i += 1
        out.append("".join(result))
    return out


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def inline_allows(raw_lines, idx):
    """Rules allowed at raw_lines[idx]: same-line allow, or allows in the
    contiguous comment block immediately above."""
    allows = set()
    m = ALLOW_RE.search(raw_lines[idx])
    if m:
        allows.add(m.group(1))
    j = idx - 1
    while j >= 0 and COMMENT_ONLY_RE.match(raw_lines[j]):
        m = ALLOW_RE.search(raw_lines[j])
        if m:
            allows.add(m.group(1))
        j -= 1
    return allows


def lint_file(rel_path: str, raw_text: str):
    findings = []
    raw_lines = raw_text.splitlines()
    code_lines = strip_comments(raw_lines)
    code_text = "\n".join(code_lines)

    for rule in RULES:
        if rel_path in rule.allowed_files:
            continue
        if rule.file_exempt is not None and rule.file_exempt(code_text):
            continue
        for idx, line in enumerate(code_lines):
            if not rule.pattern.search(line):
                continue
            if rule.name in inline_allows(raw_lines, idx):
                continue
            findings.append(
                Finding(rel_path, idx + 1, rule.name, rule.description))

    # Grammar check for the metric-name catalogue itself.
    if rel_path == METRIC_NAME_FILE:
        for idx, line in enumerate(code_lines):
            for m in STRING_LITERAL_RE.finditer(line):
                name = m.group(1)
                if METRIC_NAME_RE.match(name):
                    continue
                if METRIC_NAME_RULE in inline_allows(raw_lines, idx):
                    continue
                findings.append(Finding(
                    rel_path, idx + 1, METRIC_NAME_RULE,
                    f'metric name "{name}" is not kebab.dotted (lower-'
                    f"case kebab segments joined by dots, at least two "
                    f"segments, e.g. \"serve.queue-wait-ms\")"))

    # Annotation-partner check for ebv::Mutex declarations.
    if rel_path != "src/common/sync.h":
        annotation_args = " ".join(
            re.findall(r"EBV_[A-Z_]+\s*\(([^)]*)\)", code_text))
        for idx, line in enumerate(code_lines):
            m = MUTEX_DECL_RE.match(line)
            if not m:
                continue
            name = m.group(1)
            if re.search(rf"\bEBV_[A-Z_]+\s*\(", line):
                continue  # annotated at the declaration (lock ordering)
            if re.search(rf"\b{re.escape(name)}\b", annotation_args):
                continue  # referenced by a GUARDED_BY/REQUIRES/... partner
            if MUTEX_PARTNER_RULE in inline_allows(raw_lines, idx):
                continue
            findings.append(Finding(
                rel_path, idx + 1, MUTEX_PARTNER_RULE,
                f"mutex '{name}' has no thread-safety annotation partner "
                f"(no EBV_GUARDED_BY/EBV_REQUIRES/... references it) — "
                f"annotate what it guards or add an inline allow with the "
                f"external ordering that substitutes"))
    return findings


def collect_files(root: str, explicit):
    if explicit:
        for p in explicit:
            rel = os.path.relpath(p, root) if os.path.isabs(p) else p
            yield rel.replace(os.sep, "/")
        return
    for base in SCAN_DIRS:
        for dirpath, _dirnames, filenames in os.walk(os.path.join(root, base)):
            for fn in sorted(filenames):
                if fn.endswith(EXTENSIONS):
                    rel = os.path.relpath(os.path.join(dirpath, fn), root)
                    yield rel.replace(os.sep, "/")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("files", nargs="*",
                        help="repo-relative files to lint (default: all of "
                             "src/ and tools/)")
    args = parser.parse_args(argv)

    all_findings = []
    scanned = 0
    for rel in collect_files(args.root, args.files):
        full = os.path.join(args.root, rel)
        try:
            with open(full, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"ebvlint: cannot read {full}: {e}", file=sys.stderr)
            return 2
        scanned += 1
        all_findings.extend(lint_file(rel, text))

    for finding in all_findings:
        print(finding.render())
    if all_findings:
        print(f"ebvlint: {len(all_findings)} finding(s) in {scanned} "
              f"file(s)", file=sys.stderr)
        return 1
    print(f"ebvlint: clean ({scanned} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
