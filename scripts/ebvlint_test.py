#!/usr/bin/env python3
"""Self-tests for scripts/ebvlint.py: every rule's hit, miss, and
allowlist paths, plus the end-to-end scan driver. Dependency-free:

    python3 scripts/ebvlint_test.py
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import ebvlint  # noqa: E402


def rules_hit(rel_path, text):
    return sorted({f.rule for f in ebvlint.lint_file(rel_path, text)})


class RawReadBoundaryTest(unittest.TestCase):
    def test_hit_outside_boundary(self):
        text = "auto* p = reinterpret_cast<const char*>(base);\n"
        self.assertIn("raw-read-boundary", rules_hit("src/bsp/runtime.cpp", text))

    def test_fread_hit(self):
        text = "fread(buf, 1, n, f);\n"
        self.assertIn("raw-read-boundary", rules_hit("src/bsp/runtime.cpp", text))

    def test_miss_inside_boundary(self):
        text = "auto* p = reinterpret_cast<const char*>(base);\n"
        self.assertEqual(rules_hit("src/common/binary_io.h", text), [])

    def test_inline_allow_same_line(self):
        text = ("auto* p = reinterpret_cast<const char*>(x);  "
                "// ebvlint: allow(raw-read-boundary): outbound view\n")
        self.assertEqual(rules_hit("src/bsp/runtime.cpp", text), [])

    def test_inline_allow_comment_block_above(self):
        text = ("// ebvlint: allow(raw-read-boundary): outbound view\n"
                "// of bytes this function owns.\n"
                "auto* p = reinterpret_cast<const char*>(x);\n")
        self.assertEqual(rules_hit("src/bsp/runtime.cpp", text), [])

    def test_allow_does_not_leak_past_code_line(self):
        text = ("// ebvlint: allow(raw-read-boundary): only the next line\n"
                "auto* a = reinterpret_cast<const char*>(x);\n"
                "auto* b = reinterpret_cast<const char*>(y);\n")
        findings = ebvlint.lint_file("src/bsp/runtime.cpp", text)
        self.assertEqual([f.line for f in findings], [3])

    def test_allow_reason_is_mandatory(self):
        text = ("// ebvlint: allow(raw-read-boundary):\n"
                "auto* p = reinterpret_cast<const char*>(x);\n")
        self.assertIn("raw-read-boundary", rules_hit("src/bsp/runtime.cpp", text))

    def test_wrong_rule_name_does_not_allow(self):
        text = ("// ebvlint: allow(naked-number-parse): wrong rule\n"
                "auto* p = reinterpret_cast<const char*>(x);\n")
        self.assertIn("raw-read-boundary", rules_hit("src/bsp/runtime.cpp", text))

    def test_commented_out_code_ignored(self):
        text = "// auto* p = reinterpret_cast<const char*>(base);\n"
        self.assertEqual(rules_hit("src/bsp/runtime.cpp", text), [])


class NakedNumberParseTest(unittest.TestCase):
    def test_stoul_hit(self):
        text = "auto v = std::stoul(s);\n"
        self.assertIn("naked-number-parse", rules_hit("src/graph/io.cpp", text))

    def test_strtol_hit(self):
        text = "long v = strtol(s, nullptr, 10);\n"
        self.assertIn("naked-number-parse", rules_hit("src/graph/io.cpp", text))

    def test_miss_in_cli_args(self):
        text = "auto v = std::stoul(s);\n"
        self.assertEqual(rules_hit("src/common/cli_args.cpp", text), [])


class NakedStreamWriteTest(unittest.TestCase):
    def test_hit_outside_writer_modules(self):
        text = "out.write(data, n);\n"
        self.assertIn("naked-stream-write", rules_hit("src/serve/server.cpp", text))

    def test_miss_in_writer_module(self):
        text = "out_.write(data, n);\n"
        self.assertEqual(rules_hit("src/bsp/spill_store.cpp", text), [])


class UnannotatedMutexTest(unittest.TestCase):
    def test_std_mutex_hit(self):
        text = "std::mutex mu_;\n"
        self.assertIn("unannotated-mutex", rules_hit("src/bsp/runtime.cpp", text))

    def test_std_condition_variable_hit(self):
        text = "std::condition_variable cv_;\n"
        self.assertIn("unannotated-mutex", rules_hit("src/bsp/runtime.cpp", text))

    def test_std_mutex_allowed_in_sync_h(self):
        text = "std::mutex mu_;\n"
        self.assertEqual(rules_hit("src/common/sync.h", text), [])

    def test_partnerless_ebv_mutex_hit(self):
        text = "Mutex mu_;\nint x = 0;\n"
        findings = ebvlint.lint_file("src/bsp/runtime.cpp", text)
        self.assertEqual([f.rule for f in findings], ["unannotated-mutex"])
        self.assertIn("no thread-safety annotation partner",
                      findings[0].message)

    def test_guarded_partner_satisfies(self):
        text = "Mutex mu_;\nint x EBV_GUARDED_BY(mu_) = 0;\n"
        self.assertEqual(rules_hit("src/bsp/runtime.cpp", text), [])

    def test_requires_partner_satisfies(self):
        text = "mutable Mutex lat_mu_;\nvoid f() EBV_REQUIRES(lat_mu_);\n"
        self.assertEqual(rules_hit("src/bsp/runtime.cpp", text), [])

    def test_annotation_on_declaration_satisfies(self):
        text = "Mutex submit_mutex EBV_ACQUIRED_BEFORE(other_mu);\n"
        findings = [f for f in ebvlint.lint_file("src/bsp/runtime.cpp", text)
                    if "submit_mutex" in f.message]
        self.assertEqual(findings, [])

    def test_partner_of_other_name_does_not_satisfy(self):
        text = "Mutex a_mu;\nMutex b_mu;\nint x EBV_GUARDED_BY(a_mu) = 0;\n"
        findings = ebvlint.lint_file("src/bsp/runtime.cpp", text)
        self.assertEqual([f.line for f in findings], [2])

    def test_inline_allow(self):
        text = ("// ebvlint: allow(unannotated-mutex): guards no data,\n"
                "// wakeup ordering only.\n"
                "Mutex park_mu;\n")
        self.assertEqual(rules_hit("src/bsp/runtime.cpp", text), [])


class TempfileUniqueIdTest(unittest.TestCase):
    def test_hit_without_unique_suffix(self):
        text = 'std::string p = path + ".wspool.tmp";\n'
        self.assertIn("tempfile-unique-id", rules_hit("src/graph/x.cpp", text))

    def test_miss_with_unique_suffix_in_file(self):
        text = ('std::string t = process_unique_suffix();\n'
                'std::string p = path + ".run0." + t + ".tmp";\n')
        self.assertEqual(rules_hit("src/graph/x.cpp", text), [])

    def test_suffix_matching_is_not_creation(self):
        # stale_sweep-style recognizers compare names, they don't build
        # them — no '+ ".tmp"' concatenation, no finding.
        text = 'if (ends_with(name, ".tmp")) return true;\n'
        self.assertEqual(rules_hit("src/common/x.cpp", text), [])


class InlineMetricNameTest(unittest.TestCase):
    def test_literal_registry_lookup_hit(self):
        for call in ("counter", "gauge", "histogram"):
            text = f'auto& m = registry_.{call}("serve.requests");\n'
            self.assertIn("inline-metric-name",
                          rules_hit("src/serve/server.cpp", text),
                          call)

    def test_constant_lookup_misses(self):
        text = ("auto& m = registry_.counter(obs::names::kServeAccepted);\n"
                "auto& h = registry_.histogram(\n"
                "    obs::suffixed(obs::names::kServeLatencyMs, cls));\n")
        self.assertEqual(rules_hit("src/serve/server.cpp", text), [])

    def test_inline_allow(self):
        text = ('// ebvlint: allow(inline-metric-name): test-only probe\n'
                'auto& m = registry_.counter("x.y");\n')
        self.assertEqual(rules_hit("src/serve/server.cpp", text), [])


class MetricNameFormatTest(unittest.TestCase):
    def test_kebab_dotted_names_pass(self):
        text = ('inline constexpr const char* kA = "serve.queue-wait-ms";\n'
                'inline constexpr const char* kB = "run.phase.compute-ms";\n')
        self.assertEqual(rules_hit("src/obs/metric_names.h", text), [])

    def test_bad_grammar_hits(self):
        for bad in ("Serve.Latency", "serve_latency.ms", "singlesegment",
                    "serve..double-dot", "serve.trailing-"):
            text = f'inline constexpr const char* kX = "{bad}";\n'
            self.assertIn("metric-name-format",
                          rules_hit("src/obs/metric_names.h", text),
                          bad)

    def test_only_checked_in_catalogue_file(self):
        text = 'std::string s = "NOT A METRIC NAME";\n'
        self.assertEqual(rules_hit("src/serve/handlers.cpp", text), [])


class DriverTest(unittest.TestCase):
    def test_scan_tree_exit_codes(self):
        with tempfile.TemporaryDirectory() as root:
            os.makedirs(os.path.join(root, "src"))
            clean = os.path.join(root, "src", "clean.cpp")
            with open(clean, "w") as f:
                f.write("int main() { return 0; }\n")
            self.assertEqual(ebvlint.main(["--root", root]), 0)
            dirty = os.path.join(root, "src", "dirty.cpp")
            with open(dirty, "w") as f:
                f.write("std::mutex mu;\n")
            self.assertEqual(ebvlint.main(["--root", root]), 1)

    def test_explicit_file_argument(self):
        with tempfile.TemporaryDirectory() as root:
            os.makedirs(os.path.join(root, "src"))
            with open(os.path.join(root, "src", "a.cpp"), "w") as f:
                f.write("std::mutex mu;\n")
            self.assertEqual(ebvlint.main(["--root", root, "src/a.cpp"]), 1)

    def test_block_comment_stripping(self):
        text = "/* std::mutex mu;\n   reinterpret_cast<int*>(p); */\nint x;\n"
        self.assertEqual(rules_hit("src/bsp/runtime.cpp", text), [])


if __name__ == "__main__":
    unittest.main(verbosity=2)
