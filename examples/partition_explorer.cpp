// Partition explorer: compare every registered partitioner on a chosen
// graph family — the fastest way to see the paper's Table III trade-offs.
//
//   ./partition_explorer [family] [num_parts]
//   family ∈ {powerlaw, road, uniform, ba}
#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/table.h"
#include "common/format.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "partition/metrics.h"
#include "partition/registry.h"

namespace {

ebv::Graph make_graph(const std::string& family) {
  using namespace ebv;
  if (family == "road") return gen::road_grid(120, 120, 0.92, 42);
  if (family == "uniform") return gen::erdos_renyi(20'000, 200'000, 42);
  if (family == "ba") return gen::barabasi_albert(20'000, 5, 42);
  return gen::chung_lu(20'000, 200'000, 2.2, false, 42);  // powerlaw
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ebv;
  const std::string family = argc > 1 ? argv[1] : "powerlaw";
  const PartitionId parts =
      argc > 2 ? static_cast<PartitionId>(std::atoi(argv[2])) : 16;

  const Graph graph = make_graph(family);
  const GraphStats stats = compute_stats(graph);
  std::cout << "family=" << family << " |V|=" << with_commas(stats.num_vertices)
            << " |E|=" << with_commas(stats.num_edges)
            << " eta=" << format_fixed(stats.eta, 2) << " p=" << parts
            << "\n\n";

  analysis::Table table({"partitioner", "edge imb", "vertex imb",
                         "replication", "partition time"});
  for (const std::string& name : all_partitioners()) {
    const auto partitioner = make_partitioner(name);
    PartitionConfig config;
    config.num_parts = parts;
    const Timer timer;
    const EdgePartition partition = partitioner->partition(graph, config);
    const double elapsed = timer.seconds();
    const PartitionMetrics m = compute_metrics(graph, partition);
    table.add_row({name, format_fixed(m.edge_imbalance, 3),
                   format_fixed(m.vertex_imbalance, 3),
                   format_fixed(m.replication_factor, 3),
                   format_duration(elapsed)});
  }
  table.print(std::cout);
  return 0;
}
