// Social-network influence ranking: PageRank over a LiveJournal-like
// power-law graph on the simulated cluster, plus the top influencers —
// the workload that motivates the paper's introduction.
//
//   ./social_ranking [workers]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <numeric>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "common/format.h"
#include "graph/stats.h"

int main(int argc, char** argv) {
  using namespace ebv;
  const PartitionId workers =
      argc > 1 ? static_cast<PartitionId>(std::atoi(argv[1])) : 8;

  const analysis::Dataset social = analysis::make_livejournal_sim(0.5);
  const GraphStats stats = compute_stats(social.graph);
  std::cout << "social graph: |V|=" << with_commas(stats.num_vertices)
            << " |E|=" << with_commas(stats.num_edges)
            << " eta=" << format_fixed(stats.eta, 2) << "\n\n";

  const auto result = analysis::run_experiment(
      social.graph, "ebv", workers, analysis::App::kPageRank);

  std::cout << "PageRank on " << workers << " workers (EBV partition): "
            << format_duration(result.run.execution_seconds)
            << " simulated, " << with_commas(result.run.total_messages)
            << " messages\n\n";

  // Top-10 ranked vertices.
  std::vector<VertexId> order(social.graph.num_vertices());
  std::iota(order.begin(), order.end(), VertexId{0});
  std::partial_sort(order.begin(), order.begin() + 10, order.end(),
                    [&](VertexId a, VertexId b) {
                      return result.run.values[a] > result.run.values[b];
                    });
  analysis::Table table({"rank", "vertex", "score", "degree"});
  for (int i = 0; i < 10; ++i) {
    const VertexId v = order[static_cast<std::size_t>(i)];
    table.add_row({std::to_string(i + 1), std::to_string(v),
                   format_sci(result.run.values[v], 3),
                   std::to_string(social.graph.degree(v))});
  }
  table.print(std::cout);
  return 0;
}
