// Reproduces the paper's Figure 1: partitioning the 6-vertex example graph
// with EBV under the sorted preprocessing vs. the "alphabetical" (natural)
// edge order, showing how the order changes which vertices get cut.
#include <iostream>
#include <string>

#include "analysis/table.h"
#include "common/format.h"
#include "graph/generators.h"
#include "partition/ebv.h"
#include "partition/metrics.h"

namespace {

constexpr const char* kNames = "ABCDEF";

void show(const ebv::Graph& graph, const ebv::EdgePartition& partition,
          const std::string& title) {
  using namespace ebv;
  std::cout << title << "\n";
  for (PartitionId i = 0; i < partition.num_parts; ++i) {
    std::cout << "  subgraph " << i << ": ";
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      if (partition.part_of_edge[e] != i) continue;
      std::cout << '(' << kNames[graph.edge(e).src] << ','
                << kNames[graph.edge(e).dst] << ") ";
    }
    std::cout << "\n";
  }
  const PartitionMetrics m = compute_metrics(graph, partition);
  std::cout << "  replication factor = " << format_fixed(m.replication_factor, 3)
            << "  (cut vertices: "
            << m.total_replicas - graph.num_vertices() << ")\n\n";
}

}  // namespace

int main() {
  using namespace ebv;
  const Graph graph = gen::figure1_graph();
  const EbvPartitioner ebv;

  PartitionConfig sorted;
  sorted.num_parts = 2;
  sorted.edge_order = EdgeOrder::kSortedAscending;
  show(graph, ebv.partition(graph, sorted),
       "EBV with sorting preprocessing (paper Fig. 1, left)");

  PartitionConfig natural = sorted;
  natural.edge_order = EdgeOrder::kNatural;
  show(graph, ebv.partition(graph, natural),
       "EBV with natural edge order");

  std::cout << "The sorted order assigns low-degree edges first, seeding\n"
               "both subgraphs before the hub vertex A must be cut.\n";
  return 0;
}
