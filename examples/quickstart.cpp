// Quickstart: generate a power-law graph, partition it with EBV, inspect
// the paper's three quality metrics, and run Connected Components on the
// simulated subgraph-centric cluster.
//
//   ./quickstart [num_parts]
#include <cstdlib>
#include <iostream>

#include "analysis/table.h"
#include "apps/cc.h"
#include "bsp/distributed_graph.h"
#include "bsp/runtime.h"
#include "common/format.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "partition/ebv.h"
#include "partition/metrics.h"

int main(int argc, char** argv) {
  using namespace ebv;
  const PartitionId num_parts =
      argc > 1 ? static_cast<PartitionId>(std::atoi(argv[1])) : 8;

  // 1. A LiveJournal-like power-law graph (η ≈ 2.6).
  const Graph graph = gen::chung_lu(/*num_vertices=*/20'000,
                                    /*num_edges=*/200'000,
                                    /*exponent=*/2.6,
                                    /*undirected=*/false, /*seed=*/42);
  const GraphStats stats = compute_stats(graph);
  std::cout << "graph: |V|=" << with_commas(stats.num_vertices)
            << " |E|=" << with_commas(stats.num_edges)
            << " avg degree=" << format_fixed(stats.average_degree, 2)
            << " eta=" << format_fixed(stats.eta, 2) << "\n\n";

  // 2. Partition with EBV (sorted preprocessing, α = β = 1).
  const EbvPartitioner ebv;
  PartitionConfig config;
  config.num_parts = num_parts;
  const EdgePartition partition = ebv.partition(graph, config);
  const PartitionMetrics metrics = compute_metrics(graph, partition);

  analysis::Table table({"metric", "value"});
  table.add_row({"edge imbalance factor", format_fixed(metrics.edge_imbalance, 3)});
  table.add_row(
      {"vertex imbalance factor", format_fixed(metrics.vertex_imbalance, 3)});
  table.add_row(
      {"replication factor", format_fixed(metrics.replication_factor, 3)});
  table.print(std::cout);

  // 3. Run CC on the simulated cluster and report the BSP breakdown.
  const bsp::DistributedGraph dist(graph, partition);
  const bsp::BspRuntime runtime;
  const bsp::RunStats run = runtime.run(dist, apps::ConnectedComponents());

  std::cout << "\nCC on " << num_parts << " workers:\n"
            << "  supersteps      " << run.supersteps << "\n"
            << "  comp (avg)      " << format_duration(run.comp_seconds) << "\n"
            << "  comm (avg)      " << format_duration(run.comm_seconds) << "\n"
            << "  delta C         " << format_duration(run.delta_c_seconds)
            << "\n"
            << "  execution time  " << format_duration(run.execution_seconds)
            << " (simulated cluster)\n"
            << "  messages        " << with_commas(run.total_messages) << "\n";
  return 0;
}
