// Road-network routing: SSSP over a weighted road grid on the simulated
// cluster, comparing the paper's partition algorithms on a non-power-law
// graph (the Figure 3 scenario).
//
//   ./road_routing [workers]
#include <cstdlib>
#include <iostream>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "common/format.h"
#include "graph/stats.h"

int main(int argc, char** argv) {
  using namespace ebv;
  const PartitionId workers =
      argc > 1 ? static_cast<PartitionId>(std::atoi(argv[1])) : 8;

  const analysis::Dataset road = analysis::make_usaroad_sim(0.5);
  std::cout << "road network: |V|=" << with_commas(road.graph.num_vertices())
            << " |E|=" << with_commas(road.graph.num_edges()) << "\n\n";

  analysis::Table table({"partitioner", "exec time", "messages",
                         "replication", "supersteps"});
  for (const std::string name :
       {"ebv", "ginger", "dbh", "cvc", "ne", "metis"}) {
    const auto r = analysis::run_experiment(road.graph, name, workers,
                                            analysis::App::kSssp);
    table.add_row({name, format_duration(r.run.execution_seconds),
                   with_commas(r.run.total_messages),
                   format_fixed(r.metrics.replication_factor, 2),
                   std::to_string(r.run.supersteps)});
  }
  table.print(std::cout);
  std::cout << "\nOn road graphs the local-based partitioners (NE, METIS)\n"
               "keep locality and win — matching the paper's Figure 3.\n";
  return 0;
}
