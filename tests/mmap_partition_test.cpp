// Acceptance pin for the out-of-core path: partitioning an mmap-backed
// EBVS snapshot must be BIT-IDENTICAL to partitioning the same snapshot
// loaded resident — per-edge assignments and all quality metrics — for
// the streaming partitioners at p ∈ {4, 64}, and metric-identical through
// the materialising fallback for the non-streaming ones.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/mapped_graph.h"
#include "partition/metrics.h"
#include "partition/registry.h"

namespace ebv {
namespace {

/// One shared snapshot: a 24k-edge power-law graph, canonicalised by the
/// snapshot writer.
const std::string& snapshot_path() {
  static const std::string path = [] {
    Graph g = gen::chung_lu(3000, 24000, 2.3, false, 7);
    g.set_name("mmap-partition-pin");
    const std::string p = testing::TempDir() + "/mmap_partition.ebvs";
    io::write_snapshot_file(p, g);
    return p;
  }();
  return path;
}

const Graph& resident_graph() {
  static const Graph g = io::read_snapshot_file(snapshot_path());
  return g;
}

class MmapBitIdentical
    : public testing::TestWithParam<std::tuple<std::string, PartitionId>> {};

TEST_P(MmapBitIdentical, MatchesResidentPath) {
  const auto& [algo, parts] = GetParam();
  PartitionConfig config;
  config.num_parts = parts;
  config.seed = 7;

  const EdgePartition resident =
      make_partitioner(algo)->partition(resident_graph(), config);

  const MappedGraph mapped(snapshot_path());
  mapped.validate();
  const EdgePartition via_mmap =
      make_partitioner(algo)->partition_view(mapped.view(), config);

  // Per-edge assignments: exact.
  ASSERT_EQ(via_mmap.num_parts, resident.num_parts);
  EXPECT_EQ(via_mmap.part_of_edge, resident.part_of_edge)
      << algo << " diverged between mmap and resident at p=" << parts;

  // Quality metrics: exact doubles, computed once over the mapped view
  // and once over the resident graph.
  const PartitionMetrics a = compute_metrics(resident_graph(), resident);
  const PartitionMetrics b = compute_metrics(mapped.view(), via_mmap);
  EXPECT_EQ(a.replication_factor, b.replication_factor);
  EXPECT_EQ(a.edge_imbalance, b.edge_imbalance);
  EXPECT_EQ(a.vertex_imbalance, b.vertex_imbalance);
  EXPECT_EQ(a.edges_per_part, b.edges_per_part);
  EXPECT_EQ(a.vertices_per_part, b.vertices_per_part);
}

INSTANTIATE_TEST_SUITE_P(
    StreamingAlgos, MmapBitIdentical,
    testing::Combine(testing::Values("ebv", "ebv-stream", "hdrf"),
                     testing::Values(PartitionId{4}, PartitionId{64})),
    [](const testing::TestParamInfo<std::tuple<std::string, PartitionId>>&
           param) {
      std::string id = std::get<0>(param.param) + "_p" +
                       std::to_string(std::get<1>(param.param));
      for (char& c : id) {
        if (c == '-') c = '_';
      }
      return id;
    });

TEST(MmapBitIdentical, BatchedTeamScoringOverMmapMatchesSerial) {
  // The batched speculative protocol must stay bit-identical when the
  // edge source is a mapped section.
  const MappedGraph mapped(snapshot_path());
  PartitionConfig config;
  config.num_parts = 8;
  config.seed = 7;
  const EdgePartition serial =
      make_partitioner("ebv")->partition_view(mapped.view(), config);
  config.num_threads = 4;
  config.batch_size = 64;
  const EdgePartition batched =
      make_partitioner("ebv")->partition_view(mapped.view(), config);
  EXPECT_EQ(batched.part_of_edge, serial.part_of_edge);
}

TEST(MmapBitIdentical, FallbackMaterialisesForNonStreamingAlgos) {
  // Algorithms without a zero-copy override route through the base-class
  // fallback; results must still match the resident path exactly.
  const MappedGraph mapped(snapshot_path());
  for (const std::string algo : {"dbh", "ginger", "ne"}) {
    PartitionConfig config;
    config.num_parts = 4;
    config.seed = 7;
    const EdgePartition resident =
        make_partitioner(algo)->partition(resident_graph(), config);
    const EdgePartition via_view =
        make_partitioner(algo)->partition_view(mapped.view(), config);
    EXPECT_EQ(via_view.part_of_edge, resident.part_of_edge)
        << algo << " fallback diverged from the resident path";
  }
}

}  // namespace
}  // namespace ebv
