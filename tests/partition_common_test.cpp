#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/generators.h"
#include "partition/partitioner.h"

namespace ebv {
namespace {

TEST(EdgeOrder, NaturalIsIdentity) {
  const Graph g = gen::erdos_renyi(50, 200, 1);
  const auto order = make_edge_order(g, EdgeOrder::kNatural, 42);
  for (EdgeId e = 0; e < g.num_edges(); ++e) EXPECT_EQ(order[e], e);
}

TEST(EdgeOrder, AscendingIsSortedByDegreeSum) {
  const Graph g = gen::chung_lu(500, 3000, 2.3, false, 7);
  const auto order = make_edge_order(g, EdgeOrder::kSortedAscending, 42);
  auto degree_sum = [&](EdgeId e) {
    return g.degree(g.edge(e).src) + g.degree(g.edge(e).dst);
  };
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(degree_sum(order[i - 1]), degree_sum(order[i]));
  }
}

TEST(EdgeOrder, DescendingIsReverseSorted) {
  const Graph g = gen::chung_lu(500, 3000, 2.3, false, 7);
  const auto order = make_edge_order(g, EdgeOrder::kSortedDescending, 42);
  auto degree_sum = [&](EdgeId e) {
    return g.degree(g.edge(e).src) + g.degree(g.edge(e).dst);
  };
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(degree_sum(order[i - 1]), degree_sum(order[i]));
  }
}

TEST(EdgeOrder, EveryOrderIsAPermutation) {
  const Graph g = gen::erdos_renyi(100, 500, 3);
  for (const EdgeOrder o :
       {EdgeOrder::kNatural, EdgeOrder::kSortedAscending,
        EdgeOrder::kSortedDescending, EdgeOrder::kRandom}) {
    auto order = make_edge_order(g, o, 42);
    std::sort(order.begin(), order.end());
    for (EdgeId e = 0; e < g.num_edges(); ++e) EXPECT_EQ(order[e], e);
  }
}

TEST(EdgeOrder, RandomIsSeedDeterministic) {
  const Graph g = gen::erdos_renyi(100, 500, 3);
  const auto a = make_edge_order(g, EdgeOrder::kRandom, 1);
  const auto b = make_edge_order(g, EdgeOrder::kRandom, 1);
  const auto c = make_edge_order(g, EdgeOrder::kRandom, 2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(EdgeOrder, SortIsDeterministicWithTies) {
  // A 4-cycle: all degree sums equal; tie-break must be stable.
  const Graph g(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const auto a = make_edge_order(g, EdgeOrder::kSortedAscending, 1);
  const auto b = make_edge_order(g, EdgeOrder::kSortedAscending, 99);
  EXPECT_EQ(a, b) << "sorting must not depend on the seed";
}

TEST(Config, Validation) {
  const Graph g = gen::erdos_renyi(10, 20, 1);
  PartitionConfig bad;
  bad.num_parts = 0;
  EXPECT_THROW(check_partition_config(g, bad), std::invalid_argument);

  PartitionConfig negative;
  negative.alpha = -1.0;
  EXPECT_THROW(check_partition_config(g, negative), std::invalid_argument);

  PartitionConfig ok;
  EXPECT_NO_THROW(check_partition_config(g, ok));

  EXPECT_THROW(check_partition_config(Graph(), ok), std::invalid_argument);
}

}  // namespace
}  // namespace ebv
