// Acceptance pins for the worker-spill execution subsystem: the EBVW
// DistributedSnapshot round-trips every LocalSubgraph bit-for-bit, and
// the bounded-residency BSP scheduler (RunOptions::resident_workers)
// produces supersteps, message counts, final values and virtual-time
// accounting BIT-IDENTICAL to the all-resident path for every budget —
// with and without subgraph spilling, with and without mailbox overflow
// to files.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "apps/cc.h"
#include "bsp/distributed_graph.h"
#include "bsp/runtime.h"
#include "bsp/spill_store.h"
#include "graph/generators.h"
#include "graph/mapped_graph.h"
#include "partition/registry.h"

namespace ebv {
namespace {

using bsp::BspRuntime;
using bsp::DistributedGraph;
using bsp::LocalSubgraph;
using bsp::RunOptions;
using bsp::RunStats;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

const Graph& powerlaw_graph() {
  static const Graph g = [] {
    Graph graph = gen::chung_lu(1500, 12000, 2.3, false, 17);
    graph.set_name("spill-pin");
    return graph;
  }();
  return g;
}

const Graph& weighted_graph() {
  static const Graph g = gen::road_grid(20, 20, 0.9, 17);
  return g;
}

EdgePartition ebv_partition(const Graph& g, PartitionId p) {
  return make_partitioner("ebv")->partition(g, {.num_parts = p});
}

void expect_csr_equal(const CsrGraph& a, const CsrGraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_entries(), b.num_entries());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()));
    const auto ea = a.edge_ids(v);
    const auto eb = b.edge_ids(v);
    ASSERT_TRUE(std::equal(ea.begin(), ea.end(), eb.begin(), eb.end()));
  }
}

void expect_subgraph_equal(const LocalSubgraph& a, const LocalSubgraph& b) {
  EXPECT_EQ(a.part, b.part);
  EXPECT_EQ(a.global_ids, b.global_ids);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.edge_weights, b.edge_weights);
  EXPECT_EQ(a.is_replicated, b.is_replicated);
  EXPECT_EQ(a.is_master, b.is_master);
  EXPECT_EQ(a.master_part, b.master_part);
  EXPECT_EQ(a.global_out_degree, b.global_out_degree);
  expect_csr_equal(a.out_csr, b.out_csr);
  expect_csr_equal(a.in_csr, b.in_csr);
  expect_csr_equal(a.both_csr, b.both_csr);
}

void expect_stats_identical(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.supersteps, b.supersteps);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.raw_messages, b.raw_messages);
  EXPECT_EQ(a.messages_sent_per_worker, b.messages_sent_per_worker);
  EXPECT_EQ(a.values, b.values);  // exact doubles
  // Virtual-time accounting must agree to the last bit too.
  EXPECT_EQ(a.execution_seconds, b.execution_seconds);
  EXPECT_EQ(a.comp_seconds, b.comp_seconds);
  EXPECT_EQ(a.comm_seconds, b.comm_seconds);
  EXPECT_EQ(a.delta_c_seconds, b.delta_c_seconds);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t s = 0; s < a.steps.size(); ++s) {
    ASSERT_EQ(a.steps[s].size(), b.steps[s].size());
    for (std::size_t i = 0; i < a.steps[s].size(); ++i) {
      EXPECT_EQ(a.steps[s][i].work_units, b.steps[s][i].work_units);
      EXPECT_EQ(a.steps[s][i].messages_sent, b.steps[s][i].messages_sent);
      EXPECT_EQ(a.steps[s][i].messages_received,
                b.steps[s][i].messages_received);
      EXPECT_EQ(a.steps[s][i].comp_seconds, b.steps[s][i].comp_seconds);
      EXPECT_EQ(a.steps[s][i].comm_seconds, b.steps[s][i].comm_seconds);
    }
  }
}

TEST(SpillStore, RoundTripMatchesResident) {
  const Graph& g = powerlaw_graph();
  const EdgePartition partition = ebv_partition(g, 8);
  const DistributedGraph resident(g, partition);
  const DistributedGraph spilled(
      g, partition, {.spill_path = temp_path("roundtrip.ebvw")});

  ASSERT_FALSE(resident.spilled());
  ASSERT_TRUE(spilled.spilled());
  ASSERT_EQ(spilled.num_workers(), resident.num_workers());
  ASSERT_EQ(spilled.num_global_vertices(), resident.num_global_vertices());
  ASSERT_EQ(spilled.num_global_edges(), resident.num_global_edges());
  EXPECT_EQ(spilled.total_replicas(), resident.total_replicas());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(spilled.master_of(v), resident.master_of(v));
    const auto pa = spilled.parts_of(v);
    const auto pb = resident.parts_of(v);
    ASSERT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin(), pb.end()));
  }
  for (PartitionId i = 0; i < resident.num_workers(); ++i) {
    expect_subgraph_equal(spilled.load_worker(i), resident.local(i));
  }
}

TEST(SpillStore, WeightedRoundTrip) {
  const Graph& g = weighted_graph();
  ASSERT_TRUE(g.has_weights());
  const EdgePartition partition = ebv_partition(g, 4);
  const DistributedGraph resident(g, partition);
  const DistributedGraph spilled(
      g, partition, {.spill_path = temp_path("roundtrip_w.ebvw")});
  for (PartitionId i = 0; i < resident.num_workers(); ++i) {
    expect_subgraph_equal(spilled.load_worker(i), resident.local(i));
  }
}

TEST(SpillStore, LoadWithoutCsrSkipsAdjacency) {
  const Graph& g = powerlaw_graph();
  const DistributedGraph spilled(
      g, ebv_partition(g, 4), {.spill_path = temp_path("nocsr.ebvw")});
  const LocalSubgraph ls = spilled.load_worker(0, /*build_csr=*/false);
  EXPECT_GT(ls.num_vertices(), 0u);
  EXPECT_EQ(ls.out_csr.num_vertices(), 0u);
  EXPECT_EQ(ls.in_csr.num_vertices(), 0u);
  EXPECT_EQ(ls.both_csr.num_vertices(), 0u);
}

TEST(SpillStore, ResidentModeRejectsLoadAndSpilledRejectsLocal) {
  const Graph& g = powerlaw_graph();
  const EdgePartition partition = ebv_partition(g, 4);
  const DistributedGraph resident(g, partition);
  EXPECT_THROW((void)resident.load_worker(0), std::invalid_argument);
  const DistributedGraph spilled(
      g, partition, {.spill_path = temp_path("reject.ebvw")});
  EXPECT_THROW((void)spilled.local(0), std::invalid_argument);
  EXPECT_THROW((void)spilled.load_worker(4), std::invalid_argument);
}

TEST(SpillStore, RejectsCorruptFiles) {
  const Graph& g = powerlaw_graph();
  const std::string path = temp_path("corrupt.ebvw");
  {
    const DistributedGraph spilled(g, ebv_partition(g, 4),
                                   {.spill_path = path});
  }
  EXPECT_THROW(bsp::SpillStore("/nonexistent/x.ebvw"), std::runtime_error);

  auto clobber = [&](std::size_t offset, char value,
                     const std::string& out) {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes[offset] = value;
    std::ofstream o(out, std::ios::binary | std::ios::trunc);
    o.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  const std::string bad = temp_path("corrupt_bad.ebvw");
  clobber(0, 'X', bad);  // magic
  EXPECT_THROW(bsp::SpillStore{bad}, std::runtime_error);
  clobber(4, 9, bad);  // version
  EXPECT_THROW(bsp::SpillStore{bad}, std::runtime_error);
  // Truncated: drop the worker table.
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream o(bad, std::ios::binary | std::ios::trunc);
    o.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(bsp::SpillStore{bad}, std::runtime_error);
}

class SpillRunApps : public testing::TestWithParam<analysis::App> {};

TEST_P(SpillRunApps, BoundedResidencyBitIdenticalForEveryBudget) {
  const analysis::App app = GetParam();
  const Graph& g =
      app == analysis::App::kSssp ? weighted_graph() : powerlaw_graph();
  const auto baseline = analysis::run_experiment(g, "ebv", 8, app);
  for (const std::uint32_t k : {1u, 3u, 8u}) {
    RunOptions options;
    options.resident_workers = k;
    options.spill_dir = testing::TempDir();
    const auto bounded = analysis::run_experiment(g, "ebv", 8, app, options);
    expect_stats_identical(bounded.run, baseline.run);
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, SpillRunApps,
                         testing::Values(analysis::App::kCC,
                                         analysis::App::kPageRank,
                                         analysis::App::kSssp),
                         [](const testing::TestParamInfo<analysis::App>& i) {
                           return analysis::app_name(i.param);
                         });

TEST(SpillRun, SpilledGraphWithUnboundedBudgetIsIdentical) {
  // k = 0 (and k >= p) on a spilled graph loads every worker once into a
  // persistent cache — the all-resident schedule over spilled storage.
  const Graph& g = powerlaw_graph();
  const EdgePartition partition = ebv_partition(g, 6);
  const DistributedGraph resident(g, partition);
  const DistributedGraph spilled(
      g, partition, {.spill_path = temp_path("unbounded.ebvw")});
  const apps::ConnectedComponents cc;
  const RunStats base = BspRuntime().run(resident, cc);
  expect_stats_identical(BspRuntime().run(spilled, cc), base);
  RunOptions over;
  over.resident_workers = 100;  // >= p: same unbounded schedule
  expect_stats_identical(BspRuntime(over).run(spilled, cc), base);
}

TEST(SpillRun, BoundedSchedulerOnResidentGraphIsIdentical) {
  // The 3-sweep schedule itself (no spilling at all) must not move a bit.
  const Graph& g = powerlaw_graph();
  const EdgePartition partition = ebv_partition(g, 6);
  const DistributedGraph dist(g, partition);
  const apps::ConnectedComponents cc;
  const RunStats base = BspRuntime().run(dist, cc);
  for (const std::uint32_t k : {1u, 2u, 5u, 6u, 100u}) {
    RunOptions options;
    options.resident_workers = k;
    expect_stats_identical(BspRuntime(options).run(dist, cc), base);
  }
}

TEST(SpillRun, MailboxFileOverflowIsIdentical) {
  // A 1-message buffer forces every parked message through the
  // append-only spill files.
  const Graph& g = powerlaw_graph();
  const EdgePartition partition = ebv_partition(g, 8);
  const DistributedGraph resident(g, partition);
  const apps::ConnectedComponents cc;
  const RunStats base = BspRuntime().run(resident, cc);
  const DistributedGraph spilled(
      g, partition, {.spill_path = temp_path("overflow.ebvw")});
  RunOptions options;
  options.resident_workers = 2;
  options.spill_dir = testing::TempDir();
  options.mailbox_buffer_messages = 1;
  expect_stats_identical(BspRuntime(options).run(spilled, cc), base);
}

TEST(SpillRun, ParallelPolicyMatchesSequentialUnderBudget) {
  const Graph& g = powerlaw_graph();
  const EdgePartition partition = ebv_partition(g, 8);
  const DistributedGraph spilled(
      g, partition, {.spill_path = temp_path("parallel.ebvw")});
  const apps::ConnectedComponents cc;
  RunOptions seq;
  seq.resident_workers = 3;
  RunOptions par = seq;
  par.policy = bsp::ExecutionPolicy::kParallel;
  par.num_threads = 4;
  expect_stats_identical(BspRuntime(par).run(spilled, cc),
                         BspRuntime(seq).run(spilled, cc));
}

TEST(SpillRun, StrictSchedulerBitIdenticalAcrossTeamAndPrefetch) {
  // The work-stealing task graph in strict mode must not move a single
  // bit relative to the all-resident sequential baseline — at every
  // budget, with and without group prefetch, sequential and on a
  // stealing team. (Prefetch halves the group size, so this also pins
  // that regrouping is observation-free.)
  const Graph& g = powerlaw_graph();
  const EdgePartition partition = ebv_partition(g, 8);
  const DistributedGraph resident(g, partition);
  const DistributedGraph spilled(
      g, partition, {.spill_path = temp_path("strict_grid.ebvw")});
  const apps::ConnectedComponents cc;
  const RunStats base = BspRuntime().run(resident, cc);
  for (const std::uint32_t k : {1u, 3u, 8u}) {
    for (const bool prefetch : {false, true}) {
      for (const bool parallel : {false, true}) {
        RunOptions options;
        options.resident_workers = k;
        options.spill_dir = testing::TempDir();
        options.prefetch = prefetch;
        if (parallel) {
          options.policy = bsp::ExecutionPolicy::kParallel;
          options.num_threads = 4;
        }
        SCOPED_TRACE(testing::Message() << "k=" << k << " prefetch="
                                        << prefetch << " par=" << parallel);
        const RunStats run = BspRuntime(options).run(spilled, cc);
        expect_stats_identical(run, base);
        // The budget is a hard cap, not a target: loads gate on the
        // chained release sequence, so no schedule can overshoot k.
        EXPECT_LE(run.peak_resident_workers, k);
        EXPECT_GE(run.peak_resident_workers, 1u);
      }
    }
  }
}

TEST(SpillRun, ResidencyBudgetHoldsUnderWorkStealing) {
  // Regression for a straggler-release race: a phase's second-to-last
  // release task had no dependents, so under work stealing it could
  // still be pending when the next phase reloaded the same group —
  // cache[i].reset() racing the reload and the merge tasks reading the
  // subgraph, with transient residency above the budget. Loads now gate
  // on a chained release sequence; repeated parallel runs (varying
  // steal schedules) must never push the high-water mark past k.
  const Graph& g = powerlaw_graph();
  const EdgePartition partition = ebv_partition(g, 8);
  const DistributedGraph spilled(
      g, partition, {.spill_path = temp_path("residency.ebvw")});
  const apps::ConnectedComponents cc;
  for (const std::uint32_t k : {1u, 2u, 3u, 5u, 7u}) {
    for (const bool prefetch : {false, true}) {
      for (const bool async : {false, true}) {
        for (int rep = 0; rep < 3; ++rep) {
          RunOptions options;
          options.resident_workers = k;
          options.prefetch = prefetch;
          options.scheduler = async ? bsp::SchedulerMode::kAsync
                                    : bsp::SchedulerMode::kStrict;
          options.policy = bsp::ExecutionPolicy::kParallel;
          options.num_threads = 4;
          SCOPED_TRACE(testing::Message() << "k=" << k << " prefetch="
                                          << prefetch << " async=" << async
                                          << " rep=" << rep);
          const RunStats run = BspRuntime(options).run(spilled, cc);
          EXPECT_GE(run.peak_resident_workers, 1u);
          EXPECT_LE(run.peak_resident_workers, k);
        }
      }
    }
  }
  // An unbounded budget over spilled storage materialises all p workers
  // once; a resident DistributedGraph never loads at all.
  EXPECT_EQ(BspRuntime().run(spilled, cc).peak_resident_workers, 8u);
  const DistributedGraph resident(g, partition);
  EXPECT_EQ(BspRuntime().run(resident, cc).peak_resident_workers, 0u);
}

TEST(SpillRun, AsyncSchedulerMatchesStrictForMinCombineApps) {
  // Async relaxes mailbox APPEND ORDER only; delivery stays superstep-
  // synchronous. CC (min) and SSSP (min) fold order-insensitively, so
  // async must equal strict bit-for-bit — including virtual time.
  for (const auto app : {analysis::App::kCC, analysis::App::kSssp}) {
    const Graph& g =
        app == analysis::App::kSssp ? weighted_graph() : powerlaw_graph();
    const auto strict = analysis::run_experiment(g, "ebv", 8, app);
    RunOptions options;
    options.scheduler = bsp::SchedulerMode::kAsync;
    options.policy = bsp::ExecutionPolicy::kParallel;
    options.num_threads = 4;
    SCOPED_TRACE(analysis::app_name(app));
    const auto relaxed = analysis::run_experiment(g, "ebv", 8, app, options);
    expect_stats_identical(relaxed.run, strict.run);
  }
}

TEST(SpillRun, AsyncUnderBoundedSpillBudgetMatchesStrict) {
  // Async + spilled snapshot + bounded residency + prefetch: the full
  // composition. CC's min-combine keeps it exact.
  const Graph& g = powerlaw_graph();
  const EdgePartition partition = ebv_partition(g, 8);
  const DistributedGraph resident(g, partition);
  const DistributedGraph spilled(
      g, partition, {.spill_path = temp_path("async_spill.ebvw")});
  const apps::ConnectedComponents cc;
  const RunStats base = BspRuntime().run(resident, cc);
  RunOptions options;
  options.scheduler = bsp::SchedulerMode::kAsync;
  options.policy = bsp::ExecutionPolicy::kParallel;
  options.num_threads = 4;
  options.resident_workers = 4;
  options.spill_dir = testing::TempDir();
  expect_stats_identical(BspRuntime(options).run(spilled, cc), base);
}

TEST(SpillRun, AsyncPageRankKeepsCountsAndConvergesClose) {
  // PR sums floats, so async final bits may differ with fold order — the
  // contract only pins counts, supersteps and closeness.
  const Graph& g = powerlaw_graph();
  const auto strict =
      analysis::run_experiment(g, "ebv", 8, analysis::App::kPageRank);
  RunOptions options;
  options.scheduler = bsp::SchedulerMode::kAsync;
  options.policy = bsp::ExecutionPolicy::kParallel;
  options.num_threads = 4;
  const auto relaxed =
      analysis::run_experiment(g, "ebv", 8, analysis::App::kPageRank, options);
  EXPECT_EQ(relaxed.run.supersteps, strict.run.supersteps);
  EXPECT_EQ(relaxed.run.total_messages, strict.run.total_messages);
  EXPECT_EQ(relaxed.run.raw_messages, strict.run.raw_messages);
  ASSERT_EQ(relaxed.run.values.size(), strict.run.values.size());
  for (std::size_t v = 0; v < strict.run.values.size(); ++v) {
    EXPECT_NEAR(relaxed.run.values[v], strict.run.values[v], 1e-12)
        << "v=" << v;
  }
}

TEST(SpillRun, CombiningReducesMessagesAndPreservesMinValues) {
  const Graph& g = powerlaw_graph();
  const EdgePartition partition = ebv_partition(g, 8);
  const DistributedGraph dist(g, partition);
  const apps::ConnectedComponents cc;
  const RunStats off = BspRuntime().run(dist, cc);
  EXPECT_EQ(off.raw_messages, off.total_messages);

  RunOptions options;
  options.combine_messages = true;
  const RunStats on = BspRuntime(options).run(dist, cc);
  // CC combines with min, which is order-insensitive: values, supersteps
  // and the logical emission count are unchanged; only the wire count
  // shrinks.
  EXPECT_EQ(on.values, off.values);
  EXPECT_EQ(on.supersteps, off.supersteps);
  EXPECT_EQ(on.raw_messages, off.total_messages);
  EXPECT_LT(on.total_messages, off.total_messages);

  // Combining composes with the bounded scheduler.
  RunOptions bounded = options;
  bounded.resident_workers = 2;
  const DistributedGraph spilled(
      g, partition, {.spill_path = temp_path("combine.ebvw")});
  const RunStats both = BspRuntime(bounded).run(spilled, cc);
  EXPECT_EQ(both.values, on.values);
  EXPECT_EQ(both.total_messages, on.total_messages);
  EXPECT_EQ(both.raw_messages, on.raw_messages);
}

TEST(SpillRun, MmapPipelineWithBudgetMatchesResidentPipeline) {
  // Full out-of-core closure: EBVS snapshot → mmap view → partition →
  // spilled DistributedGraph → bounded BSP, vs the all-resident pipeline.
  Graph g = gen::chung_lu(1200, 9000, 2.3, false, 23);
  g.set_name("spill-mmap-pin");
  const std::string snap = temp_path("spill_pipeline.ebvs");
  io::write_snapshot_file(snap, g);
  const MappedGraph mapped(snap);
  mapped.validate();
  const Graph canonical = io::read_snapshot_file(snap);

  RunOptions options;
  options.resident_workers = 1;
  options.spill_dir = testing::TempDir();
  const auto bounded = analysis::run_experiment(mapped.view(), "ebv", 8,
                                                analysis::App::kCC, options);
  const auto resident =
      analysis::run_experiment(canonical, "ebv", 8, analysis::App::kCC);
  expect_stats_identical(bounded.run, resident.run);
}

}  // namespace
}  // namespace ebv
