// Golden equivalence: every daemon query class must agree byte-for-byte
// (tables) or value-for-value (lookups) with the one-shot CLI path over
// the same snapshot. The table classes (stats, run) share their
// renderers with the CLI (analysis/render.h), so equality here pins
// that the daemon actually routes through them — and that the
// daemon-side pipeline (mmap view -> partition -> BSP) is the same
// pipeline `ebvpart run --mmap` drives.
#include <gtest/gtest.h>

#ifndef _WIN32

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/render.h"
#include "bsp/distributed_graph.h"
#include "common/unique_id.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/mapped_graph.h"
#include "graph/stats.h"
#include "partition/partition_io.h"
#include "partition/registry.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace ebv::serve {
namespace {

namespace fs = std::filesystem;

class ServeGoldenTest : public ::testing::Test {
 protected:
  static constexpr VertexId kVertices = 500;
  static constexpr EdgeId kEdges = 4000;
  static constexpr PartitionId kParts = 4;

  void SetUp() override {
    dir_ = ::testing::TempDir() + "serve_golden_" + process_unique_suffix();
    fs::create_directories(dir_);
    graph_ = gen::chung_lu(kVertices, kEdges, 2.3, false, 42);
    snapshot_ = dir_ + "/g.ebvs";
    io::write_snapshot_file(snapshot_, graph_);

    // Partition over the SNAPSHOT view, not the resident graph: the
    // EBVS codec stores edges sorted by (src, dst), so edge indices in
    // an .ebvp only line up with the snapshot they were computed from —
    // exactly how `ebvpart partition --mmap` produces them.
    PartitionConfig pc;
    pc.num_parts = kParts;
    const MappedGraph mapped(snapshot_);
    partition_ = make_partitioner("ebv")->partition_view(mapped.view(), pc);

    ServeContext context;
    context.graphs.emplace_back("g", snapshot_, MappedGraph(snapshot_));
    GraphEntry& entry = context.graphs.back();
    entry.routing.emplace(entry.mapped.view(), partition_);
    entry.partition.emplace(partition_);

    ServerConfig config;
    config.socket_path = dir_ + "/ebv-serve.test.sock";
    config.num_workers = 2;
    server_ = std::make_unique<Server>(std::move(context), config);
  }

  void TearDown() override {
    server_.reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string dir_;
  std::string snapshot_;
  Graph graph_;
  EdgePartition partition_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServeGoldenTest, StatsMatchesOneShotCliBytes) {
  // What `ebvpart stats --mmap <snapshot>` prints, produced the same way
  // the CLI produces it.
  const MappedGraph mapped(snapshot_);
  const std::string cli = analysis::format_mmap_stats_table(
      compute_stats(mapped.view()), mapped.mapped_bytes());

  Client client(server_->socket_path());
  EXPECT_EQ(client.stats(), cli);
}

TEST_F(ServeGoldenTest, DegreesMatchSnapshot) {
  Client client(server_->socket_path());
  DegreeRequest req;
  for (VertexId v = 0; v < kVertices; v += 7) req.vertices.push_back(v);
  const std::vector<DegreeInfo> degrees = client.degrees(req);
  ASSERT_EQ(degrees.size(), req.vertices.size());
  for (std::size_t i = 0; i < degrees.size(); ++i) {
    EXPECT_EQ(degrees[i].out_degree, graph_.out_degrees()[req.vertices[i]]);
    EXPECT_EQ(degrees[i].in_degree, graph_.in_degrees()[req.vertices[i]]);
  }
}

TEST_F(ServeGoldenTest, NeighborsMatchReferenceBfs) {
  Client client(server_->socket_path());
  for (const VertexId source : {VertexId{0}, VertexId{17}, VertexId{499}}) {
    for (const std::uint32_t hops : {1u, 2u, 3u}) {
      NeighborsRequest req;
      req.source = source;
      req.hops = hops;
      const NeighborsResponse got = client.neighbors(req);

      // Reference BFS over the resident graph's forward adjacency.
      std::unordered_set<VertexId> visited{source};
      std::vector<VertexId> frontier{source};
      for (std::uint32_t h = 0; h < hops; ++h) {
        std::vector<VertexId> next;
        for (const VertexId u : frontier) {
          for (const Edge& e : graph_.edges()) {
            if (e.src != u || visited.contains(e.dst)) continue;
            visited.insert(e.dst);
            next.push_back(e.dst);
          }
        }
        frontier = std::move(next);
      }
      std::vector<VertexId> expect(visited.begin(), visited.end());
      std::sort(expect.begin(), expect.end());

      EXPECT_FALSE(got.truncated);
      EXPECT_EQ(got.vertices, expect)
          << "source " << source << " hops " << hops;
    }
  }
}

TEST_F(ServeGoldenTest, PartitionLookupsMatchEbvpFile) {
  // Round-trip the partition through the .ebvp codec — the daemon must
  // agree with what a consumer of the written file would read.
  const std::string ebvp = dir_ + "/g.ebvp";
  io::write_partition_binary_file(ebvp, partition_);
  const EdgePartition from_file = io::read_partition_binary_file(ebvp);

  Client client(server_->socket_path());
  PartitionRequest req;
  for (EdgeId e = 0; e < from_file.part_of_edge.size(); e += 97) {
    req.edges.push_back(e);
  }
  const std::vector<PartitionId> parts = client.partition_of(req);
  ASSERT_EQ(parts.size(), req.edges.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    EXPECT_EQ(parts[i], from_file.part_of_edge[req.edges[i]]) << req.edges[i];
  }
}

TEST_F(ServeGoldenTest, ReplicasMatchIndependentlyBuiltRoutingTables) {
  // An independently constructed DistributedGraph over the same
  // snapshot + partition must agree on master and replica placement.
  const MappedGraph mapped(snapshot_);
  const bsp::DistributedGraph reference(mapped.view(), partition_);

  Client client(server_->socket_path());
  ReplicasRequest req;
  for (VertexId v = 0; v < kVertices; v += 11) req.vertices.push_back(v);
  const std::vector<ReplicaInfo> replicas = client.replicas(req);
  ASSERT_EQ(replicas.size(), req.vertices.size());
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    const VertexId v = req.vertices[i];
    EXPECT_EQ(replicas[i].master, reference.master_of(v)) << v;
    const auto parts = reference.parts_of(v);
    EXPECT_EQ(replicas[i].parts,
              std::vector<PartitionId>(parts.begin(), parts.end()))
        << v;
  }
}

TEST_F(ServeGoldenTest, WholeSnapshotRunMatchesOneShotCliBytes) {
  for (const auto& [app_id, app, label] :
       {std::tuple<std::uint8_t, analysis::App, const char*>{
            0, analysis::App::kCC, "cc"},
        {2, analysis::App::kSssp, "sssp"}}) {
    // The CLI path: run_experiment over the mmap view + shared renderer.
    const MappedGraph mapped(snapshot_);
    const analysis::ExperimentResult result =
        analysis::run_experiment(mapped.view(), "ebv", kParts, app);
    const std::string cli = analysis::format_run_table(label, result,
                                                       /*include_raw=*/false);

    Client client(server_->socket_path());
    RunRequest req;
    req.app = app_id;
    req.parts = kParts;
    EXPECT_EQ(client.run(req), cli) << label;
  }
}

TEST_F(ServeGoldenTest, SubgraphRunIsDeterministic) {
  // hops > 0 has no one-shot CLI twin (the CLI always runs the whole
  // graph); pin determinism instead — two daemon calls agree bytewise.
  Client client(server_->socket_path());
  RunRequest req;
  req.app = 2;  // sssp, sourced at the seed (relabelled to local 0)
  req.parts = 2;
  req.source = 17;
  req.hops = 3;
  const std::string first = client.run(req);
  const std::string second = client.run(req);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("sssp"), std::string::npos);
}

TEST_F(ServeGoldenTest, WholeSnapshotSsspWithNonzeroSourceIsRejected) {
  // `ebvpart run` hardcodes SSSP's source to vertex 0, so a daemon
  // whole-graph run with another source cannot be CLI-equivalent —
  // it must be refused, not silently diverge.
  Client client(server_->socket_path());
  RunRequest req;
  req.app = 2;
  req.parts = kParts;
  req.source = 5;
  try {
    (void)client.run(req);
    FAIL() << "nonzero-source whole-snapshot sssp was accepted";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.status(), Status::kBadRequest);
  }
}

}  // namespace
}  // namespace ebv::serve

#endif  // !_WIN32
