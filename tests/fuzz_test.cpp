// Randomised equivalence sweeps: for random graphs × random partitions,
// the distributed programs must agree with the sequential references, and
// the runtime must be exactly deterministic.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/cc.h"
#include "apps/pagerank.h"
#include "apps/reference.h"
#include "apps/sssp.h"
#include "bsp/distributed_graph.h"
#include "bsp/runtime.h"
#include "common/rng.h"
#include "graph/generators.h"

namespace ebv {
namespace {

using bsp::BspRuntime;
using bsp::DistributedGraph;

Graph random_graph(std::uint64_t seed) {
  Rng rng(derive_seed(seed, 0xF0));
  const auto n = static_cast<VertexId>(20 + bounded(rng, 400));
  const auto m = static_cast<EdgeId>(n + bounded(rng, n * 6));
  switch (bounded(rng, 3)) {
    case 0: return gen::erdos_renyi(n, m, seed);
    case 1: return gen::chung_lu(n, m, 2.0 + 0.01 * bounded(rng, 150), false, seed);
    default: return gen::barabasi_albert(n, 2 + static_cast<std::uint32_t>(bounded(rng, 3)), seed);
  }
}

EdgePartition random_partition(const Graph& g, std::uint64_t seed) {
  Rng rng(derive_seed(seed, 0xF1));
  const auto p = static_cast<PartitionId>(1 + bounded(rng, 9));
  EdgePartition part{p, std::vector<PartitionId>(g.num_edges())};
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    part.part_of_edge[e] = static_cast<PartitionId>(bounded(rng, p));
  }
  return part;
}

class FuzzSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, CcMatchesReferenceUnderRandomPartition) {
  const Graph g = random_graph(GetParam());
  const DistributedGraph dist(g, random_partition(g, GetParam()));
  const auto run = BspRuntime().run(dist, apps::ConnectedComponents());
  const auto expected = apps::cc_reference(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(run.values[v], static_cast<double>(expected[v]))
        << "seed=" << GetParam() << " v=" << v;
  }
}

TEST_P(FuzzSweep, SsspMatchesReferenceUnderRandomPartition) {
  const Graph g = random_graph(GetParam() + 1000);
  const DistributedGraph dist(g, random_partition(g, GetParam() + 1000));
  const VertexId source = g.num_vertices() / 2;
  const auto run = BspRuntime().run(dist, apps::Sssp(source));
  const auto expected = apps::sssp_reference(g, source);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (std::isinf(expected[v])) {
      ASSERT_TRUE(std::isinf(run.values[v])) << "seed=" << GetParam();
    } else {
      ASSERT_NEAR(run.values[v], expected[v], 1e-6) << "seed=" << GetParam();
    }
  }
}

TEST_P(FuzzSweep, RuntimeIsExactlyDeterministic) {
  const Graph g = random_graph(GetParam() + 2000);
  const auto part = random_partition(g, GetParam() + 2000);
  const DistributedGraph dist(g, part);
  const apps::PageRank pr(g.num_vertices(), 8);
  const auto a = BspRuntime().run(dist, pr);
  const auto b = BspRuntime().run(dist, pr);
  ASSERT_EQ(a.supersteps, b.supersteps);
  ASSERT_EQ(a.total_messages, b.total_messages);
  ASSERT_EQ(a.values, b.values);
  ASSERT_EQ(a.execution_seconds, b.execution_seconds);
}

TEST_P(FuzzSweep, MessageConservation) {
  const Graph g = random_graph(GetParam() + 3000);
  const DistributedGraph dist(g, random_partition(g, GetParam() + 3000));
  const auto run = BspRuntime().run(dist, apps::ConnectedComponents());
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  for (const auto& step : run.steps) {
    for (const auto& w : step) {
      sent += w.messages_sent;
      received += w.messages_received;
    }
  }
  EXPECT_EQ(sent, run.total_messages);
  EXPECT_EQ(received, run.total_messages);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace ebv
