// Hostile-input battery for the EBVQ wire protocol (serve/protocol.h):
// truncated frames, oversized length prefixes, bad magic/version, zero
// and over-limit batch counts. The invariant under attack is the
// bounded-read discipline of common/binary_io.h: every hostile length
// is rejected BEFORE allocation, truncation is a typed error at the
// point of detection, and the daemon answers with an error frame or a
// clean close — never an OOM, never a crash.
#include <gtest/gtest.h>

#ifndef _WIN32

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/unique_id.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/mapped_graph.h"
#include "partition/registry.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace ebv::serve {
namespace {

namespace fs = std::filesystem;

// --- Codec-level rejection (no sockets involved) ---------------------------

TEST(ServeProtocolCodec, FrameHeaderRoundTrips) {
  FrameHeader h;
  h.type = static_cast<std::uint16_t>(MsgType::kNeighbors);
  h.status = static_cast<std::uint16_t>(Status::kOverloaded);
  h.body_len = 12345;
  h.request_id = 0xDEAD'BEEF'CAFE'F00Dull;
  unsigned char buf[kFrameHeaderBytes];
  encode_frame_header(h, buf);
  const FrameHeader back = decode_frame_header(buf);
  EXPECT_EQ(back.magic, kFrameMagic);
  EXPECT_EQ(back.version, kProtocolVersion);
  EXPECT_EQ(back.type, h.type);
  EXPECT_EQ(back.status, h.status);
  EXPECT_EQ(back.body_len, h.body_len);
  EXPECT_EQ(back.request_id, h.request_id);
}

TEST(ServeProtocolCodec, RequestsRoundTrip) {
  DegreeRequest degree;
  degree.graph_index = 3;
  degree.vertices = {5, 0, 99};
  const DegreeRequest degree_back =
      decode_degree_request(encode_degree_request(degree));
  EXPECT_EQ(degree_back.graph_index, 3u);
  EXPECT_EQ(degree_back.vertices, degree.vertices);

  NeighborsRequest hood;
  hood.source = 7;
  hood.hops = 4;
  hood.limit = 1000;
  const NeighborsRequest hood_back =
      decode_neighbors_request(encode_neighbors_request(hood));
  EXPECT_EQ(hood_back.source, 7u);
  EXPECT_EQ(hood_back.hops, 4u);
  EXPECT_EQ(hood_back.limit, 1000u);

  RunRequest run;
  run.app = 2;
  run.parts = 16;
  run.source = 11;
  run.hops = 2;
  run.algo = "hdrf";
  const RunRequest run_back = decode_run_request(encode_run_request(run));
  EXPECT_EQ(run_back.app, 2);
  EXPECT_EQ(run_back.parts, 16u);
  EXPECT_EQ(run_back.source, 11u);
  EXPECT_EQ(run_back.hops, 2u);
  EXPECT_EQ(run_back.algo, "hdrf");
}

TEST(ServeProtocolCodec, ZeroLengthBatchIsRejected) {
  PayloadWriter w;
  w.u32(0);  // graph_index
  w.u32(0);  // batch count 0
  EXPECT_THROW((void)decode_degree_request(w.data()), ProtocolError);
  EXPECT_THROW((void)decode_partition_request(w.data()), ProtocolError);
  EXPECT_THROW((void)decode_replicas_request(w.data()), ProtocolError);
}

TEST(ServeProtocolCodec, OverLimitBatchCountIsRejectedBeforeAllocation) {
  // The count field CLAIMS 16M ids but the body carries none: a decoder
  // that pre-allocated count entries would OOM-amplify; ours rejects the
  // count against kMaxBatch first, then would fail the bounded read.
  PayloadWriter w;
  w.u32(0);
  w.u32(16u << 20);
  EXPECT_THROW((void)decode_degree_request(w.data()), ProtocolError);
  EXPECT_THROW((void)decode_partition_request(w.data()), ProtocolError);
  // Exactly at the limit is fine structurally (truncation still throws).
  PayloadWriter at;
  at.u32(0);
  at.u32(kMaxBatch);
  EXPECT_THROW((void)decode_degree_request(at.data()), ProtocolError);
}

TEST(ServeProtocolCodec, TruncatedAndOversizedBodiesThrow) {
  const std::vector<std::uint8_t> full = encode_neighbors_request({0, 5, 2, 0});
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(full.begin(),
                                           full.begin() + cut);
    EXPECT_THROW((void)decode_neighbors_request(prefix), ProtocolError)
        << "prefix length " << cut;
  }
  std::vector<std::uint8_t> trailing = full;
  trailing.push_back(0);  // trailing bytes: decoder must consume exactly
  EXPECT_THROW((void)decode_neighbors_request(trailing), ProtocolError);
}

TEST(ServeProtocolCodec, HopsAndAppBoundsAreValidated) {
  EXPECT_THROW((void)decode_neighbors_request(
                   encode_neighbors_request({0, 1, 0, 0})),
               ProtocolError);  // hops 0
  EXPECT_THROW((void)decode_neighbors_request(
                   encode_neighbors_request({0, 1, kMaxHops + 1, 0})),
               ProtocolError);
  RunRequest bad_app;
  bad_app.app = 9;
  EXPECT_THROW((void)decode_run_request(encode_run_request(bad_app)),
               ProtocolError);
}

TEST(ServeProtocolCodec, PayloadReaderIsBounded) {
  const std::vector<std::uint8_t> three = {1, 2, 3};
  PayloadReader r(three);
  EXPECT_EQ(r.u16(), 0x0201);
  EXPECT_THROW((void)r.u32(), ProtocolError);  // only one byte left
  PayloadWriter w;
  w.u32(1u << 30);  // string length prefix far beyond the body
  PayloadReader s(w.data());
  EXPECT_THROW((void)s.str(64), ProtocolError);
}

// --- Socket-level read_frame discipline (socketpair, no server) ------------

class FdPair {
 public:
  FdPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~FdPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
  void close_a() {
    ::close(a);
    a = -1;
  }
  int a = -1;
  int b = -1;
};

TEST(ServeReadFrame, CleanEofAtFrameBoundary) {
  FdPair fds;
  fds.close_a();
  const ReadFrameResult r = read_frame(fds.b, kMaxRequestBody);
  EXPECT_EQ(r.outcome, ReadOutcome::kEof);
}

TEST(ServeReadFrame, TruncatedHeaderIsAnError) {
  FdPair fds;
  const unsigned char partial[10] = {};
  ASSERT_EQ(::send(fds.a, partial, sizeof(partial), 0),
            static_cast<ssize_t>(sizeof(partial)));
  fds.close_a();
  const ReadFrameResult r = read_frame(fds.b, kMaxRequestBody);
  EXPECT_EQ(r.outcome, ReadOutcome::kError);
  EXPECT_NE(r.error.find("truncated frame header"), std::string::npos);
}

TEST(ServeReadFrame, TruncatedBodyIsAnError) {
  FdPair fds;
  FrameHeader h;
  h.type = static_cast<std::uint16_t>(MsgType::kStats);
  h.body_len = 64;  // promise 64 bytes, deliver 3
  unsigned char buf[kFrameHeaderBytes];
  encode_frame_header(h, buf);
  ASSERT_EQ(::send(fds.a, buf, sizeof(buf), 0),
            static_cast<ssize_t>(sizeof(buf)));
  const unsigned char crumbs[3] = {1, 2, 3};
  ASSERT_EQ(::send(fds.a, crumbs, sizeof(crumbs), 0), 3);
  fds.close_a();
  const ReadFrameResult r = read_frame(fds.b, kMaxRequestBody);
  EXPECT_EQ(r.outcome, ReadOutcome::kError);
  EXPECT_NE(r.error.find("truncated frame body"), std::string::npos);
}

TEST(ServeReadFrame, BadMagicAndVersionAreMalformedWithoutBodyRead) {
  for (const bool bad_magic : {true, false}) {
    FdPair fds;
    FrameHeader h;
    if (bad_magic) {
      h.magic = 0x12345678u;
    } else {
      h.version = 77;
    }
    h.body_len = 1u << 30;  // untrustworthy; must not be allocated or read
    unsigned char buf[kFrameHeaderBytes];
    encode_frame_header(h, buf);
    ASSERT_EQ(::send(fds.a, buf, sizeof(buf), 0),
              static_cast<ssize_t>(sizeof(buf)));
    const ReadFrameResult r = read_frame(fds.b, kMaxRequestBody);
    EXPECT_EQ(r.outcome, ReadOutcome::kMalformed);
    EXPECT_TRUE(r.body.empty());
  }
}

TEST(ServeReadFrame, OversizedLengthPrefixIsRejectedBeforeAllocation) {
  FdPair fds;
  FrameHeader h;
  h.type = static_cast<std::uint16_t>(MsgType::kStats);
  h.body_len = 0xFFFF'FFFFu;  // 4 GiB claim
  unsigned char buf[kFrameHeaderBytes];
  encode_frame_header(h, buf);
  ASSERT_EQ(::send(fds.a, buf, sizeof(buf), 0),
            static_cast<ssize_t>(sizeof(buf)));
  const ReadFrameResult r = read_frame(fds.b, kMaxRequestBody);
  EXPECT_EQ(r.outcome, ReadOutcome::kMalformed);
  EXPECT_TRUE(r.body.empty());
  EXPECT_NE(r.error.find("exceeds the limit"), std::string::npos);
}

// --- Live-daemon behaviour --------------------------------------------------

/// In-process daemon over a tiny snapshot; fresh socket per fixture.
class ServeProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "serve_proto_" + process_unique_suffix();
    fs::create_directories(dir_);
    const Graph graph = gen::chung_lu(300, 2500, 2.3, false, 42);
    snapshot_ = dir_ + "/g.ebvs";
    io::write_snapshot_file(snapshot_, graph);

    ServeContext context;
    context.graphs.emplace_back("g", snapshot_, MappedGraph(snapshot_));
    ServerConfig config;
    config.socket_path = dir_ + "/ebv-serve.test.sock";
    config.num_workers = 2;
    server_ = std::make_unique<Server>(std::move(context), config);
  }

  void TearDown() override {
    server_.reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string dir_;
  std::string snapshot_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServeProtocolTest, BadMagicGetsErrorFrameThenClose) {
  Client client(server_->socket_path());
  FrameHeader h;
  h.magic = 0xBAADF00Du;
  h.type = static_cast<std::uint16_t>(MsgType::kStats);
  h.request_id = 42;
  unsigned char buf[kFrameHeaderBytes];
  encode_frame_header(h, buf);
  ASSERT_TRUE(client.send_raw({buf, sizeof(buf)}));
  const ReadFrameResult r = client.read_response();
  ASSERT_EQ(r.outcome, ReadOutcome::kFrame);
  EXPECT_EQ(r.header.status, static_cast<std::uint16_t>(Status::kBadRequest));
  EXPECT_EQ(r.header.request_id, 42u);
  const std::string body(r.body.begin(), r.body.end());
  EXPECT_EQ(body.rfind("error: ", 0), 0u) << body;
  // The stream past a bad header is untrustworthy: server must hang up.
  EXPECT_EQ(client.read_response().outcome, ReadOutcome::kEof);
}

TEST_F(ServeProtocolTest, OversizedLengthPrefixGetsErrorFrameThenClose) {
  Client client(server_->socket_path());
  FrameHeader h;
  h.type = static_cast<std::uint16_t>(MsgType::kDegree);
  h.body_len = 0xFFFF'FFFFu;
  h.request_id = 9;
  unsigned char buf[kFrameHeaderBytes];
  encode_frame_header(h, buf);
  ASSERT_TRUE(client.send_raw({buf, sizeof(buf)}));
  const ReadFrameResult r = client.read_response();
  ASSERT_EQ(r.outcome, ReadOutcome::kFrame);
  EXPECT_EQ(r.header.status, static_cast<std::uint16_t>(Status::kBadRequest));
  EXPECT_EQ(client.read_response().outcome, ReadOutcome::kEof);
}

TEST_F(ServeProtocolTest, TruncatedFrameIsACleanCloseNotACrash) {
  Client client(server_->socket_path());
  FrameHeader h;
  h.type = static_cast<std::uint16_t>(MsgType::kStats);
  h.body_len = 128;  // promise a body, then half-close
  unsigned char buf[kFrameHeaderBytes];
  encode_frame_header(h, buf);
  ASSERT_TRUE(client.send_raw({buf, sizeof(buf)}));
  ::shutdown(client.fd(), SHUT_WR);
  EXPECT_EQ(client.read_response().outcome, ReadOutcome::kEof);
  // The daemon survived: a fresh connection still serves.
  Client again(server_->socket_path());
  EXPECT_NO_THROW(again.ping());
}

TEST_F(ServeProtocolTest, StructurallySoundGarbageKeepsConnectionUsable) {
  Client client(server_->socket_path());
  // Zero-length batch: valid frame, invalid payload -> kBadRequest, and
  // the SAME connection keeps working afterwards.
  PayloadWriter w;
  w.u32(0);
  w.u32(0);
  EXPECT_THROW((void)client.call(MsgType::kDegree, w.data()), ServeError);
  EXPECT_NO_THROW(client.ping());
  // Over-limit batch count: rejected by bound, connection still fine.
  PayloadWriter big;
  big.u32(0);
  big.u32(kMaxBatch + 1);
  try {
    (void)client.call(MsgType::kDegree, big.data());
    FAIL() << "over-limit batch was accepted";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.status(), Status::kBadRequest);
    EXPECT_NE(std::string(e.what()).find("exceeds the limit"),
              std::string::npos);
  }
  EXPECT_NO_THROW(client.ping());
}

TEST_F(ServeProtocolTest, UnknownTypeGetsErrorFrameKeepsConnection) {
  Client client(server_->socket_path());
  FrameHeader h;
  h.type = 999;
  h.request_id = 5;
  unsigned char buf[kFrameHeaderBytes];
  encode_frame_header(h, buf);
  ASSERT_TRUE(client.send_raw({buf, sizeof(buf)}));
  const ReadFrameResult r = client.read_response();
  ASSERT_EQ(r.outcome, ReadOutcome::kFrame);
  EXPECT_EQ(r.header.status, static_cast<std::uint16_t>(Status::kBadRequest));
  EXPECT_EQ(r.header.request_id, 5u);
  EXPECT_NO_THROW(client.ping());
}

TEST_F(ServeProtocolTest, MetricsIsAnsweredInlineAndReflectsTraffic) {
  Client client(server_->socket_path());
  (void)client.stats(0);
  const std::string report = client.metrics();
  // Both halves of the report: the per-class stats table and the
  // registry rows (kebab.dotted metric names from obs/metric_names.h).
  EXPECT_NE(report.find("class"), std::string::npos);
  EXPECT_NE(report.find("serve.queue-wait-ms.stats"), std::string::npos);
  EXPECT_NE(report.find("serve.handler-ms.stats"), std::string::npos);
  EXPECT_NE(report.find("serve.sessions-accepted"), std::string::npos);
  // The stats request this test made is visible in the histograms.
  EXPECT_NE(report.find("n=1 p50="), std::string::npos);
  // metrics is never queued: the request class mapping must reject it.
  EXPECT_THROW((void)class_of(MsgType::kMetrics), ProtocolError);
  EXPECT_TRUE(is_known_type(static_cast<std::uint16_t>(MsgType::kMetrics)));
  EXPECT_FALSE(is_known_type(
      static_cast<std::uint16_t>(MsgType::kMetrics) + 1));
}

TEST_F(ServeProtocolTest, LookupWithoutPartitionIsBadRequest) {
  Client client(server_->socket_path());
  PartitionRequest req;
  req.edges = {0};
  try {
    (void)client.partition_of(req);
    FAIL() << "lookup succeeded on a partition-less snapshot";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.status(), Status::kBadRequest);
  }
}

TEST_F(ServeProtocolTest, DrainAnswersShuttingDown) {
  Client client(server_->socket_path());
  EXPECT_NO_THROW(client.ping());
  server_->request_stop();
  // The existing connection's next queued-class request is refused with
  // the explicit drain status (kPing stays answered inline until EOF).
  try {
    (void)client.stats();
    // Acceptable alternative: the read side was already shut down and
    // the call surfaced as a transport error.
  } catch (const ServeError& e) {
    EXPECT_EQ(e.status(), Status::kShuttingDown);
  } catch (const std::runtime_error&) {
  }
  server_->wait();
  EXPECT_FALSE(fs::exists(server_->socket_path()));
}

}  // namespace
}  // namespace ebv::serve

#endif  // !_WIN32
