#include <gtest/gtest.h>

#include "graph/graph.h"

namespace ebv {
namespace {

Graph triangle() {
  return Graph(3, {{0, 1}, {1, 2}, {2, 0}});
}

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.average_degree(), 0.0);
}

TEST(Graph, DegreesAreComputed) {
  const Graph g = triangle();
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_EQ(g.out_degree(v), 1u);
    EXPECT_EQ(g.in_degree(v), 1u);
    EXPECT_EQ(g.degree(v), 2u);
  }
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.0);
}

TEST(Graph, SkewedDegrees) {
  // Star: 0 -> {1,2,3,4}.
  const Graph g(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  EXPECT_EQ(g.out_degree(0), 4u);
  EXPECT_EQ(g.in_degree(0), 0u);
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Graph, RejectsOutOfRangeEndpoint) {
  EXPECT_THROW(Graph(2, {{0, 2}}), std::invalid_argument);
  EXPECT_THROW(Graph(2, {{5, 0}}), std::invalid_argument);
}

TEST(Graph, WeightsDefaultToOne) {
  const Graph g = triangle();
  EXPECT_FALSE(g.has_weights());
  EXPECT_FLOAT_EQ(g.weight(0), 1.0f);
}

TEST(Graph, ExplicitWeights) {
  const Graph g(3, {{0, 1}, {1, 2}}, {2.5f, 0.5f});
  EXPECT_TRUE(g.has_weights());
  EXPECT_FLOAT_EQ(g.weight(0), 2.5f);
  EXPECT_FLOAT_EQ(g.weight(1), 0.5f);
}

TEST(Graph, RejectsMismatchedWeights) {
  EXPECT_THROW(Graph(3, {{0, 1}, {1, 2}}, {1.0f}), std::invalid_argument);
}

TEST(Graph, NameRoundTrip) {
  Graph g = triangle();
  EXPECT_TRUE(g.name().empty());
  g.set_name("demo");
  EXPECT_EQ(g.name(), "demo");
}

TEST(Graph, EdgeAccessors) {
  const Graph g = triangle();
  EXPECT_EQ(g.edge(0), (Edge{0, 1}));
  EXPECT_EQ(g.edges().size(), 3u);
}

TEST(Graph, SelfLoopCountsBothDirections) {
  const Graph g(2, {{1, 1}});
  EXPECT_EQ(g.out_degree(1), 1u);
  EXPECT_EQ(g.in_degree(1), 1u);
  EXPECT_EQ(g.degree(1), 2u);
}

}  // namespace
}  // namespace ebv
