// Metrics registry + log-bucket histogram quantile math: boundary
// exactness, empty/one-sample, overflow behaviour, merge-across-threads
// and the rendered registry table — the contracts docs/OBSERVABILITY.md
// promises and the serve daemon's latency tables rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace ebv::obs {
namespace {

TEST(Histogram, BucketBoundsAreLogSpaced) {
  EXPECT_DOUBLE_EQ(Histogram::bucket_bound(0), 1e-6);
  for (std::size_t i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_DOUBLE_EQ(Histogram::bucket_bound(i),
                     2.0 * Histogram::bucket_bound(i - 1));
  }
  // 48 doublings of 1e-6 reach ~2.8e8 — covers sub-microsecond through
  // multi-day latencies in milliseconds.
  EXPECT_GT(Histogram::bucket_bound(Histogram::kNumBuckets - 1), 1e8);
}

TEST(Histogram, BucketIndexBoundariesAreInclusive) {
  // A sample exactly at bound(i) must land in bucket i (the bucket whose
  // UPPER boundary it is), so quantile() can return it exactly.
  for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_bound(i)), i)
        << "at boundary " << i;
  }
  // Just above a boundary spills into the next bucket.
  EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_bound(3) * 1.0001), 4);
  // At/below the first boundary, zero and NaN all share bucket 0.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1e-9), 0u);
  EXPECT_EQ(Histogram::bucket_index(std::nan("")), 0u);
  // Beyond the last boundary: overflow bucket.
  EXPECT_EQ(Histogram::bucket_index(1e12), Histogram::kNumBuckets);
}

TEST(Histogram, EmptyQuantileIsZero) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
}

TEST(Histogram, OneSampleDominatesEveryQuantile) {
  Histogram h;
  h.record(3.5);
  EXPECT_EQ(h.count(), 1u);
  // Every quantile is the single sample's bucket, clamped to the
  // recorded max — i.e. the sample itself.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.5);
}

TEST(Histogram, ExactAtBucketBoundary) {
  Histogram h;
  const double boundary = Histogram::bucket_bound(10);
  for (int i = 0; i < 100; ++i) h.record(boundary);
  // All samples sit exactly on a boundary, so the estimate is exact.
  EXPECT_DOUBLE_EQ(h.quantile(0.50), boundary);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), boundary);
}

TEST(Histogram, QuantileNeverExceedsMax) {
  Histogram h;
  h.record(3.0);  // mid-bucket: upper bound would be 4.194304
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.max, 3.0);
  EXPECT_LE(snap.quantile(0.5), snap.max);
}

TEST(Histogram, OverflowBucketReportsMax) {
  Histogram h;
  h.record(1.0);
  h.record(5e11);  // beyond the last boundary
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.counts[Histogram::kNumBuckets], 1u);
  // p99 ranks into the overflow bucket; the recorded max is the only
  // finite upper bound available.
  EXPECT_DOUBLE_EQ(snap.quantile(0.99), 5e11);
  // 1.0 is mid-bucket, so p25 reports that bucket's upper bound.
  EXPECT_DOUBLE_EQ(snap.quantile(0.25),
                   Histogram::bucket_bound(Histogram::bucket_index(1.0)));
}

TEST(Histogram, QuantileRankMath) {
  Histogram h;
  // 100 samples: 50 at bound(5), 45 at bound(10), 5 at bound(20).
  for (int i = 0; i < 50; ++i) h.record(Histogram::bucket_bound(5));
  for (int i = 0; i < 45; ++i) h.record(Histogram::bucket_bound(10));
  for (int i = 0; i < 5; ++i) h.record(Histogram::bucket_bound(20));
  EXPECT_DOUBLE_EQ(h.quantile(0.50), Histogram::bucket_bound(5));
  EXPECT_DOUBLE_EQ(h.quantile(0.51), Histogram::bucket_bound(10));
  EXPECT_DOUBLE_EQ(h.quantile(0.95), Histogram::bucket_bound(10));
  EXPECT_DOUBLE_EQ(h.quantile(0.96), Histogram::bucket_bound(20));
  EXPECT_DOUBLE_EQ(h.quantile(1.0), Histogram::bucket_bound(20));
}

TEST(Histogram, MergeAcrossThreads) {
  // 8 writers hammering one histogram: the relaxed-atomic counters must
  // not lose a single sample, and the aggregate quantiles must match
  // what a single-threaded recording would produce.
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Threads alternate between two exact boundaries, 75/25.
        h.record(Histogram::bucket_bound((t * kPerThread + i) % 4 == 0
                                             ? 12u
                                             : 6u));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.counts[6], static_cast<std::uint64_t>(kThreads) *
                                kPerThread * 3 / 4);
  EXPECT_EQ(snap.counts[12],
            static_cast<std::uint64_t>(kThreads) * kPerThread / 4);
  EXPECT_DOUBLE_EQ(snap.quantile(0.50), Histogram::bucket_bound(6));
  EXPECT_DOUBLE_EQ(snap.quantile(0.99), Histogram::bucket_bound(12));
  EXPECT_DOUBLE_EQ(snap.max, Histogram::bucket_bound(12));
}

TEST(Registry, CounterAndGaugeRoundTrip) {
  Registry reg;
  Counter& c = reg.counter("test.requests");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  Gauge& g = reg.gauge("test.depth");
  g.set(7);
  g.add(-2);
  EXPECT_EQ(g.value(), 5);
  g.update_max(3);  // no-op: below current
  EXPECT_EQ(g.value(), 5);
  g.update_max(9);
  EXPECT_EQ(g.value(), 9);
}

TEST(Registry, GetOrCreateReturnsStableInstance) {
  Registry reg;
  Counter& a = reg.counter("test.same");
  Counter& b = reg.counter("test.same");
  EXPECT_EQ(&a, &b);
  Histogram& ha = reg.histogram("test.hist");
  Histogram& hb = reg.histogram("test.hist");
  EXPECT_EQ(&ha, &hb);
}

TEST(Registry, SnapshotIsSortedByName) {
  Registry reg;
  reg.counter("zz.last").add(1);
  reg.histogram("mm.middle").record(1.0);
  reg.gauge("aa.first").set(2);
  const std::vector<Metric> metrics = reg.snapshot();
  ASSERT_EQ(metrics.size(), 3u);
  EXPECT_EQ(metrics[0].name, "aa.first");
  EXPECT_EQ(metrics[1].name, "mm.middle");
  EXPECT_EQ(metrics[2].name, "zz.last");
}

TEST(Registry, RenderedTableShowsAllKinds) {
  Registry reg;
  reg.counter(names::kServeSessionsAccepted).add(3);
  reg.histogram(suffixed(names::kServeLatencyMs, "stats")).record(2.0);
  reg.histogram(suffixed(names::kServeLatencyMs, "run"));  // empty: n=0
  const std::string table = format_metrics_table(reg.snapshot());
  EXPECT_NE(table.find("serve.sessions-accepted"), std::string::npos);
  EXPECT_NE(table.find("3"), std::string::npos);
  EXPECT_NE(table.find("serve.latency-ms.stats"), std::string::npos);
  EXPECT_NE(table.find("n=1 p50="), std::string::npos);
  // Empty histograms render the count alone — no meaningless quantiles.
  EXPECT_NE(table.find("n=0"), std::string::npos);
}

TEST(Registry, SuffixedJoinsWithDot) {
  EXPECT_EQ(suffixed("serve.latency-ms", "run"), "serve.latency-ms.run");
}

}  // namespace
}  // namespace ebv::obs
