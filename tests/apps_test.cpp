// Integration of the four applications with the BSP runtime: results must
// match the sequential references for EVERY partitioner in the registry.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/bfs.h"
#include "apps/cc.h"
#include "apps/pagerank.h"
#include "apps/reference.h"
#include "apps/sssp.h"
#include "bsp/distributed_graph.h"
#include "bsp/runtime.h"
#include "graph/generators.h"
#include "partition/registry.h"

namespace ebv {
namespace {

using bsp::BspRuntime;
using bsp::DistributedGraph;

class AppsOnAllPartitioners : public testing::TestWithParam<std::string> {
 protected:
  static DistributedGraph distribute(const Graph& g, PartitionId p,
                                     const std::string& name) {
    PartitionConfig c;
    c.num_parts = p;
    return DistributedGraph(g, make_partitioner(name)->partition(g, c));
  }
};

TEST_P(AppsOnAllPartitioners, CcMatchesUnionFind) {
  // Several components: two Chung-Lu blobs joined with an offset.
  Graph g = gen::chung_lu(400, 1500, 2.4, false, 3);
  const auto dist = distribute(g, 5, GetParam());
  const auto run = BspRuntime().run(dist, apps::ConnectedComponents());
  const auto expected = apps::cc_reference(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(run.values[v], static_cast<double>(expected[v])) << "v=" << v;
  }
}

TEST_P(AppsOnAllPartitioners, SsspMatchesDijkstraOnWeightedRoad) {
  const Graph g = gen::road_grid(15, 15, 0.9, 4);
  const auto dist = distribute(g, 4, GetParam());
  const auto run = BspRuntime().run(dist, apps::Sssp(0));
  const auto expected = apps::sssp_reference(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (std::isinf(expected[v])) {
      EXPECT_TRUE(std::isinf(run.values[v])) << "v=" << v;
    } else {
      EXPECT_NEAR(run.values[v], expected[v], 1e-4) << "v=" << v;
    }
  }
}

TEST_P(AppsOnAllPartitioners, PageRankMatchesPowerIteration) {
  const Graph g = gen::chung_lu(300, 2000, 2.4, false, 5);
  const auto dist = distribute(g, 4, GetParam());
  const apps::PageRank pr(g.num_vertices(), 15);
  const auto run = BspRuntime().run(dist, pr);
  const auto expected = apps::pagerank_reference(g, 15);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(run.values[v], expected[v], 1e-9) << "v=" << v;
  }
}

TEST_P(AppsOnAllPartitioners, BfsMatchesReference) {
  const Graph g = gen::erdos_renyi(300, 1200, 6);
  const auto dist = distribute(g, 3, GetParam());
  const auto run = BspRuntime().run(dist, apps::Bfs(0));
  const auto expected = apps::bfs_reference(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (std::isinf(expected[v])) {
      EXPECT_TRUE(std::isinf(run.values[v]));
    } else {
      EXPECT_EQ(run.values[v], expected[v]) << "v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Registry, AppsOnAllPartitioners,
                         testing::ValuesIn(all_partitioners()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// --- Single-partitioner behavioural checks ---------------------------------

TEST(Apps, CcConvergesInOneSuperstepOnOneWorker) {
  const Graph g = gen::erdos_renyi(100, 500, 9);
  PartitionConfig c;
  c.num_parts = 1;
  const DistributedGraph dist(
      g, make_partitioner("hash")->partition(g, c));
  const auto run = BspRuntime().run(dist, apps::ConnectedComponents());
  EXPECT_EQ(run.supersteps, 1u)
      << "local label propagation converges fully inside the subgraph";
}

TEST(Apps, SsspUnreachableStaysInfinite) {
  // Two disjoint edges; source 0 cannot reach {2,3}.
  const Graph g(4, {{0, 1}, {2, 3}});
  PartitionConfig c;
  c.num_parts = 2;
  const DistributedGraph dist(g, make_partitioner("hash")->partition(g, c));
  const auto run = BspRuntime().run(dist, apps::Sssp(0));
  EXPECT_EQ(run.values[1], 1.0);
  EXPECT_TRUE(std::isinf(run.values[2]));
  EXPECT_TRUE(std::isinf(run.values[3]));
}

TEST(Apps, PageRankMassIsBoundedWithoutDanglingRedistribution) {
  const Graph g = gen::chung_lu(200, 1500, 2.3, false, 7);
  PartitionConfig c;
  c.num_parts = 3;
  const DistributedGraph dist(g, make_partitioner("dbh")->partition(g, c));
  const apps::PageRank pr(g.num_vertices(), 10);
  const auto run = BspRuntime().run(dist, pr);
  double total = 0.0;
  for (const double r : run.values) {
    EXPECT_GT(r, 0.0);
    total += r;
  }
  EXPECT_LE(total, 1.0 + 1e-9);  // dangling vertices leak mass
  EXPECT_GT(total, 0.1);
}

TEST(Apps, PageRankSinkGraphPinsDanglingMassLoss) {
  // Explicit-sink pin of the documented deviation (src/apps/pagerank.h):
  // dangling mass is dropped, not redistributed. A 4-chain into sink 3
  // (plus a 0↔1 back edge so iteration keeps circulating mass) must lose
  // exactly the sink's damped mass each round — checked against the
  // reference implementation, which drops the same mass.
  const Graph g(4, {{0, 1}, {1, 0}, {1, 2}, {2, 3}});  // 3 is a sink
  PartitionConfig c;
  c.num_parts = 2;
  const DistributedGraph dist(g, make_partitioner("hash")->partition(g, c));

  const auto expected_short = apps::pagerank_reference(g, 5);
  const auto run_short =
      BspRuntime().run(dist, apps::PageRank(g.num_vertices(), 5));
  const auto expected_long = apps::pagerank_reference(g, 10);
  const auto run_long =
      BspRuntime().run(dist, apps::PageRank(g.num_vertices(), 10));
  double bsp_short = 0.0;
  double bsp_long = 0.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(run_short.values[v], expected_short[v], 1e-9) << "v=" << v;
    EXPECT_NEAR(run_long.values[v], expected_long[v], 1e-9) << "v=" << v;
    bsp_short += run_short.values[v];
    bsp_long += run_long.values[v];
  }
  // The deviation itself: Σ rank < 1 and still shrinking with more
  // iterations. If someone adds dangling redistribution, this pin (and
  // the header note) must change together.
  EXPECT_LT(bsp_short, 1.0 - 1e-3);
  EXPECT_LT(bsp_long, bsp_short - 1e-4);
}

TEST(Apps, PageRankRunsExactlyConfiguredSupersteps) {
  const Graph g = gen::erdos_renyi(100, 600, 8);
  PartitionConfig c;
  c.num_parts = 2;
  const DistributedGraph dist(g, make_partitioner("hash")->partition(g, c));
  const apps::PageRank pr(g.num_vertices(), 12);
  const auto run = BspRuntime().run(dist, pr);
  EXPECT_EQ(run.supersteps, 12u);
}

TEST(Apps, SsspSourceOutsideGraphLeavesAllInfinite) {
  const Graph g(3, {{0, 1}, {1, 2}});
  PartitionConfig c;
  c.num_parts = 2;
  const DistributedGraph dist(g, make_partitioner("hash")->partition(g, c));
  const auto run = BspRuntime().run(dist, apps::Sssp(99));
  for (VertexId v = 0; v < 3; ++v) EXPECT_TRUE(std::isinf(run.values[v]));
}

TEST(Apps, CcMessageVolumeTracksReplication) {
  // More parts -> more replicas -> more messages for the same graph.
  const Graph g = gen::chung_lu(600, 5000, 2.2, false, 10);
  auto run_with_parts = [&](PartitionId p) {
    PartitionConfig c;
    c.num_parts = p;
    const DistributedGraph dist(g,
                                make_partitioner("random")->partition(g, c));
    return BspRuntime().run(dist, apps::ConnectedComponents()).total_messages;
  };
  EXPECT_LT(run_with_parts(2), run_with_parts(16));
}

}  // namespace
}  // namespace ebv
