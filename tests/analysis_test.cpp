#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "analysis/message_stats.h"
#include "analysis/table.h"
#include "graph/stats.h"
#include "partition/registry.h"

namespace ebv {
namespace {

using analysis::App;
using analysis::compute_message_stats;
using analysis::Table;

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "23"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 23    |"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(MessageStats, HandComputed) {
  const auto s = compute_message_stats(std::vector<std::uint64_t>{10, 20, 30});
  EXPECT_EQ(s.total, 60u);
  EXPECT_EQ(s.max_per_worker, 30u);
  EXPECT_DOUBLE_EQ(s.mean_per_worker, 20.0);
  EXPECT_DOUBLE_EQ(s.max_over_mean, 1.5);
}

TEST(MessageStats, ZeroMessagesGiveRatioOne) {
  const auto s = compute_message_stats(std::vector<std::uint64_t>{0, 0});
  EXPECT_DOUBLE_EQ(s.max_over_mean, 1.0);
}

TEST(MessageStats, EmptyWorkersThrow) {
  EXPECT_THROW(compute_message_stats(std::vector<std::uint64_t>{}),
               std::invalid_argument);
}

TEST(Datasets, StandInsHaveExpectedClasses) {
  const auto datasets = analysis::standard_datasets(/*scale=*/0.1);
  ASSERT_EQ(datasets.size(), 4u);
  EXPECT_EQ(datasets[0].name, "usaroad");
  EXPECT_FALSE(datasets[0].power_law);
  EXPECT_EQ(datasets[3].name, "twitter");
  EXPECT_TRUE(datasets[3].power_law);
  for (const auto& d : datasets) {
    EXPECT_GT(d.graph.num_edges(), 0u);
    EXPECT_GT(d.table3_parts, 0u);
  }
}

TEST(Datasets, EtaOrderingMatchesPaperTable1) {
  // Paper: USARoad 6.30 > LiveJournal 2.64 > Friendster 2.43 > Twitter 1.87.
  const auto datasets = analysis::standard_datasets(/*scale=*/0.25);
  std::vector<double> measured;
  for (const auto& d : datasets) {
    measured.push_back(estimate_power_law_exponent(d.graph));
  }
  EXPECT_GT(measured[0], measured[1]);  // road least skewed
  EXPECT_GT(measured[1], measured[3]);  // livejournal less skewed than twitter
}

TEST(Datasets, ScaleControlsSize) {
  const auto small = analysis::make_livejournal_sim(0.05);
  const auto large = analysis::make_livejournal_sim(0.2);
  EXPECT_LT(small.graph.num_vertices(), large.graph.num_vertices());
  EXPECT_LT(small.graph.num_edges(), large.graph.num_edges());
}

TEST(Experiment, RunExperimentSmoke) {
  const auto d = analysis::make_livejournal_sim(0.02);
  const auto result =
      analysis::run_experiment(d.graph, "ebv", 4, App::kCC);
  EXPECT_EQ(result.partitioner, "ebv");
  EXPECT_EQ(result.num_parts, 4u);
  EXPECT_GT(result.run.supersteps, 0u);
  EXPECT_GT(result.metrics.replication_factor, 0.9);
  EXPECT_GE(result.partition_wall_seconds, 0.0);
}

TEST(Experiment, AppNames) {
  EXPECT_EQ(analysis::app_name(App::kCC), "CC");
  EXPECT_EQ(analysis::app_name(App::kPageRank), "PR");
  EXPECT_EQ(analysis::app_name(App::kSssp), "SSSP");
}

TEST(Experiment, SsspOnRoadRuns) {
  const auto d = analysis::make_usaroad_sim(0.02);
  const auto result = analysis::run_experiment(d.graph, "dbh", 4, App::kSssp);
  EXPECT_GT(result.run.supersteps, 0u);
  EXPECT_GT(result.run.total_messages, 0u);
}

TEST(Experiment, PaperMetricsUsesEdgeCutDefinitionsForMetis) {
  // METIS's edge-cut replication factor is Σ|Ei|/|E| ≤ 2, whereas its
  // vertex-cut projection typically exceeds 2 on skewed graphs.
  const auto d = analysis::make_livejournal_sim(0.05);
  const auto metis = analysis::paper_metrics(d.graph, "metis", 8);
  EXPECT_LE(metis.replication_factor, 2.0);
  EXPECT_GE(metis.replication_factor, 1.0);
  // Vertex-cut algorithms keep the vertex-cut definitions.
  const auto ebv = analysis::paper_metrics(d.graph, "ebv", 8);
  const auto direct = compute_metrics(
      d.graph, make_partitioner("ebv")->partition(
                   d.graph, PartitionConfig{.num_parts = 8}));
  EXPECT_DOUBLE_EQ(ebv.replication_factor, direct.replication_factor);
}

TEST(Experiment, PagerankIterationsForwarded) {
  const auto d = analysis::make_livejournal_sim(0.02);
  const auto result = analysis::run_experiment(d.graph, "hash", 2,
                                               App::kPageRank, {}, 5);
  EXPECT_EQ(result.run.supersteps, 5u);
}

}  // namespace
}  // namespace ebv
