// Positive control: fully-annotated guarded state, every access under
// the lock. MUST compile cleanly with -Werror=thread-safety — if it
// does not, the harness (not the tree) is broken.
#include "common/sync.h"

namespace {

class Counter {
 public:
  void add(int delta) {
    ebv::MutexLock lock(mu_);
    value_ += delta;
  }

  int locked_get() EBV_REQUIRES(mu_) { return value_; }

  int get() {
    ebv::MutexLock lock(mu_);
    return locked_get();
  }

 private:
  ebv::Mutex mu_;
  int value_ EBV_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add(1);
  return c.get() - 1;
}
