// Negative control: misuses the scoped lock helper — releases the
// MutexLock mid-scope and then touches guarded state. MUST fail to
// compile under -Werror=thread-safety (proves the EBV_SCOPED_CAPABILITY
// acquire/release transfer on MutexLock::unlock is tracked).
#include "common/sync.h"

namespace {

class Counter {
 public:
  void add(int delta) {
    ebv::MutexLock lock(mu_);
    lock.unlock();
    value_ += delta;  // BUG: mu_ was released above
  }

 private:
  ebv::Mutex mu_;
  int value_ EBV_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add(1);
  return 0;
}
