// Negative control: writes an EBV_GUARDED_BY member without holding
// its mutex. MUST fail to compile under -Werror=thread-safety — this
// is the test that the annotations haven't silently compiled away.
#include "common/sync.h"

namespace {

class Counter {
 public:
  void add(int delta) {
    value_ += delta;  // BUG: mu_ not held
  }

 private:
  ebv::Mutex mu_;
  int value_ EBV_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add(1);
  return 0;
}
