// Negative control: calls an EBV_REQUIRES lock-assuming helper without
// holding the lock — the contract pattern used by
// Server::respond_locked / reap_finished_sessions. MUST fail to
// compile under -Werror=thread-safety.
#include "common/sync.h"

namespace {

class Table {
 public:
  void reap() EBV_REQUIRES(mu_) { ++generation_; }

  void tick() {
    reap();  // BUG: caller does not hold mu_
  }

 private:
  ebv::Mutex mu_;
  int generation_ EBV_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Table t;
  t.tick();
  return 0;
}
