#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "apps/reference.h"
#include "engines/blogel.h"
#include "engines/smp_engine.h"
#include "graph/generators.h"
#include "partition/metrics.h"

namespace ebv {
namespace {

using engines::SmpEngine;
using engines::VoronoiPartitioner;

TEST(SmpEngine, CcMatchesReference) {
  const Graph g = gen::chung_lu(400, 2500, 2.3, false, 1);
  const SmpEngine engine;
  const auto result = engine.connected_components(g);
  const auto expected = apps::cc_reference(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(result.values[v], static_cast<double>(expected[v]));
  }
  EXPECT_GT(result.rounds, 0u);
  EXPECT_GT(result.execution_seconds, 0.0);
}

TEST(SmpEngine, SsspMatchesReference) {
  const Graph g = gen::road_grid(20, 20, 0.9, 2);
  const SmpEngine engine;
  const auto result = engine.sssp(g, 0);
  const auto expected = apps::sssp_reference(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (std::isinf(expected[v])) {
      EXPECT_TRUE(std::isinf(result.values[v]));
    } else {
      EXPECT_NEAR(result.values[v], expected[v], 1e-4);
    }
  }
}

TEST(SmpEngine, PageRankMatchesReference) {
  const Graph g = gen::chung_lu(300, 2000, 2.4, false, 3);
  const SmpEngine engine;
  const auto result = engine.pagerank(g, 15);
  const auto expected = apps::pagerank_reference(g, 15);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(result.values[v], expected[v], 1e-12);
  }
}

TEST(SmpEngine, MoreThreadsAreFasterUpToTheNodeCap) {
  const Graph g = gen::chung_lu(500, 4000, 2.3, false, 4);
  SmpEngine::Options one;
  one.threads = 1;
  SmpEngine::Options eight;
  eight.threads = 8;
  SmpEngine::Options sixty_four;
  sixty_four.threads = 64;  // clamped to max_cores = 8
  const double t1 = SmpEngine(one).connected_components(g).execution_seconds;
  const double t8 = SmpEngine(eight).connected_components(g).execution_seconds;
  const double t64 =
      SmpEngine(sixty_four).connected_components(g).execution_seconds;
  EXPECT_LT(t8, t1);
  EXPECT_DOUBLE_EQ(t8, t64) << "a shared-memory engine cannot leave its node";
}

TEST(SmpEngine, RejectsZeroThreads) {
  SmpEngine::Options opts;
  opts.threads = 0;
  EXPECT_THROW(SmpEngine{opts}, std::invalid_argument);
}

TEST(Voronoi, ProducesValidPartition) {
  const Graph g = gen::chung_lu(600, 5000, 2.3, false, 5);
  const VoronoiPartitioner voronoi;
  PartitionConfig c;
  c.num_parts = 6;
  const auto part = voronoi.partition(g, c);
  ASSERT_EQ(part.part_of_edge.size(), g.num_edges());
  for (const PartitionId i : part.part_of_edge) EXPECT_LT(i, 6u);
}

TEST(Voronoi, BlocksKeepSourceLocality) {
  // Edge partition follows the source vertex's block, so all out-edges of
  // a vertex land on one worker.
  const Graph g = gen::erdos_renyi(300, 2000, 6);
  const VoronoiPartitioner voronoi;
  PartitionConfig c;
  c.num_parts = 4;
  const auto part = voronoi.partition(g, c);
  std::vector<std::set<PartitionId>> parts_of_src(g.num_vertices());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    parts_of_src[g.edge(e).src].insert(part.part_of_edge[e]);
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(parts_of_src[v].size(), 1u);
  }
}

TEST(Voronoi, RoughVertexBalanceOnRoadGraph) {
  const Graph g = gen::road_grid(40, 40, 0.95, 7);
  const VoronoiPartitioner voronoi;
  PartitionConfig c;
  c.num_parts = 4;
  const auto m = compute_metrics(g, voronoi.partition(g, c));
  EXPECT_LT(m.vertex_imbalance, 1.7);
}

TEST(Voronoi, PrecomputeCostScalesWithGraphAndWorkers) {
  const Graph small = gen::erdos_renyi(100, 500, 8);
  const Graph big = gen::erdos_renyi(1000, 5000, 8);
  const bsp::ClusterCostModel cost;
  EXPECT_LT(VoronoiPartitioner::precompute_seconds(small, 4, cost),
            VoronoiPartitioner::precompute_seconds(big, 4, cost));
  EXPECT_GT(VoronoiPartitioner::precompute_seconds(big, 2, cost),
            VoronoiPartitioner::precompute_seconds(big, 8, cost));
}

TEST(Voronoi, DeterministicUnderSeed) {
  const Graph g = gen::chung_lu(400, 3000, 2.4, false, 9);
  const VoronoiPartitioner voronoi;
  PartitionConfig c;
  c.num_parts = 4;
  const auto a = voronoi.partition(g, c);
  const auto b = voronoi.partition(g, c);
  EXPECT_EQ(a.part_of_edge, b.part_of_edge);
}

}  // namespace
}  // namespace ebv
