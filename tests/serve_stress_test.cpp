// Concurrency battery for the serve daemon, runs under TSan in CI: N
// client threads fire mixed query classes at an in-process server with
// deliberately tiny admission queues. Pins the admission-control
// contract: the per-class queue depth never exceeds its configured
// bound, overload is an explicit kOverloaded response (not a hang or a
// drop), and every accepted request is answered exactly once — counted
// on both the client side (each call returns or throws a typed error)
// and the server side (accepted == completed + bad + errors after the
// drain).
#include <gtest/gtest.h>

#ifndef _WIN32

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/unique_id.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/mapped_graph.h"
#include "partition/registry.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace ebv::serve {
namespace {

namespace fs = std::filesystem;

struct StressRig {
  std::string dir;
  std::string snapshot;
  std::unique_ptr<Server> server;

  explicit StressRig(const ServerConfig& base_config) {
    dir = ::testing::TempDir() + "serve_stress_" + process_unique_suffix();
    fs::create_directories(dir);
    const Graph graph = gen::chung_lu(400, 3000, 2.3, false, 42);
    snapshot = dir + "/g.ebvs";
    io::write_snapshot_file(snapshot, graph);

    // Partition over the snapshot view so .ebvp edge indices line up
    // with the snapshot's sorted edge order.
    PartitionConfig pc;
    pc.num_parts = 4;
    const MappedGraph for_partition(snapshot);
    EdgePartition partition =
        make_partitioner("ebv")->partition_view(for_partition.view(), pc);

    ServeContext context;
    context.graphs.emplace_back("g", snapshot, MappedGraph(snapshot));
    GraphEntry& entry = context.graphs.back();
    entry.routing.emplace(entry.mapped.view(), partition);
    entry.partition.emplace(std::move(partition));

    ServerConfig config = base_config;
    config.socket_path = dir + "/ebv-serve.test.sock";
    server = std::make_unique<Server>(std::move(context), config);
  }

  ~StressRig() {
    server.reset();
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
};

TEST(ServeStress, MixedClassesEveryAcceptedRequestAnsweredOnce) {
  ServerConfig config;
  config.num_workers = 3;
  // Small queues so overload is actually reachable under the burst.
  config.queue_depth = {4, 8, 4, 8, 2};
  StressRig rig(config);

  constexpr unsigned kThreads = 6;
  constexpr unsigned kRequestsPerThread = 40;
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> overloaded{0};
  std::atomic<std::uint64_t> bad{0};
  std::atomic<std::uint64_t> transport_errors{0};

  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      Client client(rig.server->socket_path());
      for (unsigned i = 0; i < kRequestsPerThread; ++i) {
        try {
          switch ((t + i) % 6) {
            case 0:
              client.ping();
              break;
            case 1:
              (void)client.stats();
              break;
            case 2: {
              DegreeRequest req;
              req.vertices = {(t * 31 + i) % 400};
              (void)client.degrees(req);
              break;
            }
            case 3: {
              NeighborsRequest req;
              req.source = (t * 17 + i) % 400;
              req.hops = 2;
              req.limit = 64;
              (void)client.neighbors(req);
              break;
            }
            case 4: {
              if (i % 2 == 0) {
                PartitionRequest req;
                req.edges = {(t * 13 + i) % 3000};
                (void)client.partition_of(req);
              } else {
                ReplicasRequest req;
                req.vertices = {(t * 7 + i) % 400};
                (void)client.replicas(req);
              }
              break;
            }
            case 5: {
              // Deliberately out of range: must be a typed kBadRequest,
              // never a crash or a dropped response.
              DegreeRequest req;
              req.vertices = {kInvalidVertex - 1};
              (void)client.degrees(req);
              break;
            }
          }
          ok.fetch_add(1);
        } catch (const ServeError& e) {
          if (e.status() == Status::kOverloaded) {
            overloaded.fetch_add(1);
          } else if (e.status() == Status::kBadRequest) {
            bad.fetch_add(1);
          } else {
            transport_errors.fetch_add(1);
          }
        } catch (const std::exception&) {
          transport_errors.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();

  // Client side: every call resolved to exactly one outcome.
  EXPECT_EQ(ok.load() + overloaded.load() + bad.load() +
                transport_errors.load(),
            static_cast<std::uint64_t>(kThreads) * kRequestsPerThread);
  EXPECT_EQ(transport_errors.load(), 0u);
  EXPECT_GT(ok.load(), 0u);
  // The case-5 probes are intentionally bad, so some kBadRequest MUST
  // have come back (they are per-request errors, not connection kills).
  EXPECT_GT(bad.load(), 0u);

  rig.server->request_stop();
  rig.server->wait();

  const ServerStats stats = rig.server->stats();
  std::uint64_t accepted = 0;
  std::uint64_t answered = 0;
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    const ClassStats& s = stats.classes[c];
    // Admission bound: the observed high-water depth never exceeded the
    // configured channel capacity.
    EXPECT_LE(s.depth_high_water, config.queue_depth[c])
        << class_name(static_cast<RequestClass>(c));
    accepted += s.accepted;
    answered += s.completed + s.rejected_bad + s.internal_errors;
  }
  // Server side: exactly one response per accepted request, none lost
  // in the drain.
  EXPECT_EQ(accepted, answered);
  EXPECT_EQ(stats.classes[0].internal_errors +
                stats.classes[1].internal_errors +
                stats.classes[2].internal_errors +
                stats.classes[3].internal_errors +
                stats.classes[4].internal_errors,
            0u);
}

TEST(ServeStress, OverloadIsExplicitUnderBurst) {
  ServerConfig config;
  config.num_workers = 1;
  config.queue_depth = {1, 1, 1, 1, 1};  // every class trivially floodable
  StressRig rig(config);

  constexpr unsigned kThreads = 8;
  constexpr unsigned kRequestsPerThread = 25;
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> overloaded{0};
  std::atomic<std::uint64_t> other{0};

  std::vector<std::thread> clients;
  for (unsigned t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      Client client(rig.server->socket_path());
      for (unsigned i = 0; i < kRequestsPerThread; ++i) {
        try {
          (void)client.stats();
          ok.fetch_add(1);
        } catch (const ServeError& e) {
          (e.status() == Status::kOverloaded ? overloaded : other)
              .fetch_add(1);
        } catch (const std::exception&) {
          other.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();

  EXPECT_EQ(ok.load() + overloaded.load() + other.load(),
            static_cast<std::uint64_t>(kThreads) * kRequestsPerThread);
  EXPECT_EQ(other.load(), 0u);
  EXPECT_GT(ok.load(), 0u);

  rig.server->request_stop();
  rig.server->wait();
  const ServerStats stats = rig.server->stats();
  const auto cls = static_cast<std::size_t>(RequestClass::kStats);
  EXPECT_LE(stats.classes[cls].depth_high_water, 1u);
  EXPECT_EQ(stats.classes[cls].accepted, stats.classes[cls].completed);
  // Overload observed by clients must match the server's rejection count.
  EXPECT_EQ(stats.classes[cls].rejected_overloaded, overloaded.load());
}

TEST(ServeStress, SessionCapIsEnforcedWithoutDeadlock) {
  ServerConfig config;
  config.num_workers = 1;
  config.max_sessions = 2;
  StressRig rig(config);

  // Two live sessions hold the cap; further connects are refused (the
  // daemon closes them immediately) and must surface as clean transport
  // errors on first use, not hangs.
  Client a(rig.server->socket_path());
  Client b(rig.server->socket_path());
  EXPECT_NO_THROW(a.ping());
  EXPECT_NO_THROW(b.ping());
  bool third_refused = false;
  try {
    Client c(rig.server->socket_path());
    c.ping();
  } catch (const std::exception&) {
    third_refused = true;
  }
  EXPECT_TRUE(third_refused);
}

}  // namespace
}  // namespace ebv::serve

#endif  // !_WIN32
