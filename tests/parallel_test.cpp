// Thread-pool primitives (common/parallel.h) and the bit-identical
// parallel-determinism guarantee of the EBV family's batched speculative
// team scoring (partition/eva_scorer.h).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"
#include "graph/generators.h"
#include "partition/partitioner.h"
#include "partition/registry.h"

namespace ebv {
namespace {

TEST(ParallelFor, MatchesSerialSum) {
  constexpr std::size_t kN = 100'000;
  std::vector<std::uint64_t> data(kN);
  std::iota(data.begin(), data.end(), std::uint64_t{1});

  std::vector<std::uint64_t> out(kN, 0);
  parallel_for(kN, [&](std::size_t i) { out[i] = data[i] * data[i]; });

  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(out[i], data[i] * data[i]) << "index " << i;
  }
}

TEST(ParallelFor, EveryIndexExactlyOnce) {
  constexpr std::size_t kN = 54'321;  // not a multiple of any grain
  std::vector<std::atomic<std::uint32_t>> hits(kN);
  parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
  }
}

TEST(ParallelFor, ZeroIterationsIsANoop) {
  bool touched = false;
  parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, PropagatesException) {
  EXPECT_THROW(
      parallel_for(
          10'000,
          [](std::size_t i) {
            if (i == 4'321) throw std::runtime_error("boom");
          },
          64),
      std::runtime_error);
}

TEST(ParallelFor, PoolSurvivesAnException) {
  try {
    parallel_for(1'000, [](std::size_t) { throw std::runtime_error("x"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<std::size_t> count{0};
  parallel_for(1'000, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 1'000u);
}

TEST(ParallelFor, NestedUseRunsInline) {
  std::atomic<std::uint64_t> total{0};
  parallel_for(
      64,
      [&](std::size_t) {
        // Nested call from a pool body must not deadlock; it degrades to
        // serial inline execution.
        std::uint64_t local = 0;
        parallel_for(100, [&](std::size_t j) { local += j; });
        total.fetch_add(local, std::memory_order_relaxed);
      },
      1);
  EXPECT_EQ(total.load(), 64u * (99u * 100u / 2));
}

TEST(ParallelFor, ConcurrentExternalCallersSerialise) {
  std::atomic<std::uint64_t> total{0};
  ThreadPool::global().run_team(2, [&](unsigned, unsigned) {
    parallel_for(10'000, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 20'000u);
}

TEST(RunTeam, AllRanksRunConcurrently) {
  constexpr unsigned kTeam = 8;  // oversubscribes small CI hosts on purpose
  SpinBarrier barrier(kTeam);
  std::vector<unsigned> rank_seen(kTeam, 0);
  ThreadPool::global().run_team(kTeam, [&](unsigned rank, unsigned team) {
    ASSERT_EQ(team, kTeam);
    // Would deadlock unless all ranks are live at once.
    barrier.arrive_and_wait();
    rank_seen[rank] = rank + 1;
    barrier.arrive_and_wait();
  });
  for (unsigned r = 0; r < kTeam; ++r) EXPECT_EQ(rank_seen[r], r + 1);
}

TEST(RunTeam, PropagatesException) {
  EXPECT_THROW(ThreadPool::global().run_team(
                   4,
                   [](unsigned rank, unsigned) {
                     if (rank == 2) throw std::invalid_argument("rank 2");
                   }),
               std::invalid_argument);
}

TEST(RequestGlobalThreads, WarnsWhenTheKnobCannotApply) {
  // --threads used to be silently ignored once the pool existed; the
  // request_ wrapper must say so. Force the pool into existence first.
  parallel_for(10, [](std::size_t) {});
  const unsigned current = ThreadPool::global().num_threads();

  std::ostringstream warn;
  EXPECT_TRUE(request_global_threads(current, warn))
      << "matching size is always accepted";
  EXPECT_TRUE(warn.str().empty()) << warn.str();

  std::ostringstream warn2;
  EXPECT_FALSE(request_global_threads(current + 1, warn2));
  EXPECT_NE(warn2.str().find("ignored"), std::string::npos) << warn2.str();

  std::ostringstream warn3;
  EXPECT_FALSE(request_global_threads(0, warn3));
  EXPECT_FALSE(warn3.str().empty()) << "zero threads must be called out";
}

TEST(EdgeOrder, ParallelSortMatchesSerial) {
  // Above the 2^14 parallel-sort threshold so the chunk-sort + merge path
  // actually runs.
  const Graph g = gen::chung_lu(6'000, 40'000, 2.3, false, 11);
  const auto serial = make_edge_order(g, EdgeOrder::kSortedAscending, 42, 1);
  const auto par4 = make_edge_order(g, EdgeOrder::kSortedAscending, 42, 4);
  const auto par16 = make_edge_order(g, EdgeOrder::kSortedAscending, 42, 16);
  EXPECT_EQ(serial, par4);
  EXPECT_EQ(serial, par16);
  const auto desc1 = make_edge_order(g, EdgeOrder::kSortedDescending, 42, 1);
  const auto desc8 = make_edge_order(g, EdgeOrder::kSortedDescending, 42, 8);
  EXPECT_EQ(desc1, desc8);
}

/// The headline guarantee: batched speculative parallel EBV is
/// bit-identical to serial EBV for every (threads, batch) combination.
TEST(EbvParallelDeterminism, PartOfEdgeIdenticalAcrossThreadsAndBatches) {
  const Graph g = gen::chung_lu(2'000, 10'000, 2.3, false, 5);
  const auto partitioner = make_partitioner("ebv");
  PartitionConfig config;
  config.num_parts = 32;

  config.num_threads = 1;
  const EdgePartition serial = partitioner->partition(g, config);
  for (const std::uint32_t threads : {1u, 4u, 16u}) {
    for (const std::uint32_t batch : {1u, 64u, 4096u}) {
      config.num_threads = threads;
      config.batch_size = batch;
      const EdgePartition parallel = partitioner->partition(g, config);
      ASSERT_EQ(parallel.num_parts, serial.num_parts);
      EXPECT_EQ(parallel.part_of_edge, serial.part_of_edge)
          << "EBV output diverged at " << threads << " threads, batch "
          << batch;
    }
  }
}

TEST(EbvParallelDeterminism, StreamingIdenticalAcrossThreadsAndBatches) {
  const Graph g = gen::chung_lu(1'500, 8'000, 2.4, false, 9);
  const auto partitioner = make_partitioner("ebv-stream");
  PartitionConfig config;
  config.num_parts = 16;

  config.num_threads = 1;
  const EdgePartition serial = partitioner->partition(g, config);
  for (const std::uint32_t threads : {1u, 4u, 16u}) {
    for (const std::uint32_t batch : {1u, 64u, 4096u}) {
      config.num_threads = threads;
      config.batch_size = batch;
      const EdgePartition parallel = partitioner->partition(g, config);
      EXPECT_EQ(parallel.part_of_edge, serial.part_of_edge)
          << "streaming EBV output diverged at " << threads
          << " threads, batch " << batch;
    }
  }
}

TEST(EbvParallelDeterminism, NaturalOrderAndHyperParams) {
  // Exercise a non-default order and asymmetric α/β through the same
  // parallel path.
  const Graph g = gen::chung_lu(1'000, 6'000, 2.2, false, 13);
  const auto partitioner = make_partitioner("ebv");
  PartitionConfig config;
  config.num_parts = 8;
  config.alpha = 2.5;
  config.beta = 0.5;
  config.edge_order = EdgeOrder::kNatural;

  config.num_threads = 1;
  const EdgePartition serial = partitioner->partition(g, config);
  config.num_threads = 4;
  config.batch_size = 7;  // deliberately odd, not a divisor of |E|
  const EdgePartition parallel = partitioner->partition(g, config);
  EXPECT_EQ(parallel.part_of_edge, serial.part_of_edge);
}

}  // namespace
}  // namespace ebv
