#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.h"
#include "graph/stats.h"

namespace ebv {
namespace {

TEST(Stats, DegreeHistogramSumsToVertexCount) {
  const Graph g = gen::erdos_renyi(500, 3000, 21);
  const auto hist = degree_histogram(g);
  const std::uint64_t total =
      std::accumulate(hist.begin(), hist.end(), std::uint64_t{0});
  EXPECT_EQ(total, g.num_vertices());
}

TEST(Stats, DegreeHistogramOnStar) {
  const Graph g(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  const auto hist = degree_histogram(g);
  ASSERT_EQ(hist.size(), 5u);  // max degree 4
  EXPECT_EQ(hist[1], 4u);
  EXPECT_EQ(hist[4], 1u);
}

TEST(Stats, EtaZeroWhenNoQualifyingVertices) {
  const Graph g(4, {});
  EXPECT_EQ(estimate_power_law_exponent(g), 0.0);
}

TEST(Stats, EtaOnSyntheticPowerLawIsInBand) {
  const Graph g = gen::chung_lu(20000, 200000, 2.5, false, 33);
  const double eta = estimate_power_law_exponent(g);
  EXPECT_GT(eta, 1.5);
  EXPECT_LT(eta, 4.5);
}

TEST(Stats, EtaMonotoneInSkew) {
  const double eta_heavy = estimate_power_law_exponent(
      gen::chung_lu(10000, 100000, 2.0, false, 5));
  const double eta_light = estimate_power_law_exponent(
      gen::chung_lu(10000, 100000, 3.2, false, 5));
  EXPECT_LT(eta_heavy, eta_light);
}

TEST(Stats, ComputeStatsFields) {
  const Graph g(5, {{0, 1}, {0, 2}, {0, 3}});
  const GraphStats s = compute_stats(g);
  EXPECT_EQ(s.num_vertices, 5u);
  EXPECT_EQ(s.num_edges, 3u);
  EXPECT_DOUBLE_EQ(s.average_degree, 0.6);
  EXPECT_EQ(s.max_out_degree, 3u);
  EXPECT_EQ(s.max_total_degree, 3u);
  EXPECT_EQ(s.isolated_vertices, 1u);  // vertex 4
}

TEST(Stats, MinDegreeZeroSelectsAdaptiveThreshold) {
  // dmin = 0 (auto) must behave like passing the average total degree.
  const Graph g = gen::chung_lu(5000, 50000, 2.5, false, 19);
  const auto avg = static_cast<std::uint32_t>(2.0 * g.num_edges() /
                                              g.num_vertices());
  EXPECT_DOUBLE_EQ(estimate_power_law_exponent(g, 0),
                   estimate_power_law_exponent(g, std::max(2u, avg)));
}

}  // namespace
}  // namespace ebv
