// TaskGraph (work-stealing DAG execution) and BoundedChannel — the BSP
// scheduler's substrate. Includes the high-thread-count stress tests that
// hammer the steal and channel paths (also run under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/task_graph.h"

namespace ebv {
namespace {

TEST(TaskGraph, EmptyGraphRuns) {
  TaskGraph g;
  g.run(1);
  TaskGraph g2;
  g2.run(8);
}

TEST(TaskGraph, SerialModeRunsChainInOrder) {
  TaskGraph g;
  std::vector<int> order;
  TaskGraph::TaskId prev = TaskGraph::kNone;
  for (int i = 0; i < 5; ++i) {
    prev = g.add([&order, i] { order.push_back(i); }, {prev});
  }
  g.run(1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TaskGraph, DiamondRespectsDependencies) {
  for (const unsigned team : {1u, 4u}) {
    TaskGraph g;
    std::vector<int> log;
    std::mutex mu;
    auto note = [&](int id) {
      std::lock_guard lock(mu);
      log.push_back(id);
    };
    const auto a = g.add([&] { note(0); });
    const auto b = g.add([&] { note(1); }, {a});
    const auto c = g.add([&] { note(2); }, {a});
    g.add([&] { note(3); }, {b, c});
    g.run(team);
    ASSERT_EQ(log.size(), 4u) << "team " << team;
    EXPECT_EQ(log.front(), 0);
    EXPECT_EQ(log.back(), 3);
  }
}

TEST(TaskGraph, EveryTaskRunsExactlyOnce) {
  constexpr std::size_t kTasks = 2'000;
  TaskGraph g;
  std::vector<std::atomic<std::uint32_t>> hits(kTasks);
  std::vector<TaskGraph::TaskId> ids;
  ids.reserve(kTasks);
  for (std::size_t t = 0; t < kTasks; ++t) {
    const auto id = g.add([&hits, t] {
      hits[t].fetch_add(1, std::memory_order_relaxed);
    });
    // Random-ish acyclic edges: depend on a couple of earlier tasks.
    if (t > 0) g.depend(id, ids[(t * 7) % t]);
    if (t > 1) g.depend(id, ids[(t * 13) % (t - 1)]);
    ids.push_back(id);
  }
  g.run(8);
  for (std::size_t t = 0; t < kTasks; ++t) {
    ASSERT_EQ(hits[t].load(), 1u) << "task " << t;
  }
}

TEST(TaskGraph, DependencyOrderHoldsUnderStealing) {
  // Chains of 3 with a shared counter per chain: a dependent must observe
  // its predecessor's write (the acq_rel release edge).
  constexpr std::size_t kChains = 256;
  TaskGraph g;
  std::vector<std::uint64_t> cell(kChains, 0);  // plain: deps must order it
  std::vector<std::uint8_t> ok(kChains, 1);
  for (std::size_t c = 0; c < kChains; ++c) {
    const auto a = g.add([&cell, c] { cell[c] = c + 1; });
    const auto b = g.add(
        [&cell, &ok, c] {
          if (cell[c] != c + 1) ok[c] = 0;
          cell[c] *= 10;
        },
        {a});
    g.add(
        [&cell, &ok, c] {
          if (cell[c] != (c + 1) * 10) ok[c] = 0;
        },
        {b});
  }
  g.run(16);
  for (std::size_t c = 0; c < kChains; ++c) {
    ASSERT_EQ(ok[c], 1) << "chain " << c << " observed a stale value";
  }
}

TEST(TaskGraph, WideTeamDrainsSerialChain) {
  // A pure chain keeps at most one task ready, so the other team-1
  // ranks spend the whole run parked on the idle condition variable;
  // every completion must wake the team enough to keep the chain
  // moving and the final drain must release every sleeper. (Run under
  // TSan in CI — this is the park/notify path's stress.)
  TaskGraph g;
  std::vector<int> order;
  TaskGraph::TaskId prev = TaskGraph::kNone;
  for (int i = 0; i < 300; ++i) {
    prev = g.add([&order, i] { order.push_back(i); }, {prev});
  }
  g.run(8);
  ASSERT_EQ(order.size(), 300u);
  for (int i = 0; i < 300; ++i) ASSERT_EQ(order[i], i);
}

TEST(TaskGraph, CycleIsReportedBeforeAnyTaskRuns) {
  TaskGraph g;
  std::atomic<int> ran{0};
  const auto a = g.add([&] { ran.fetch_add(1); });
  const auto b = g.add([&] { ran.fetch_add(1); }, {a});
  g.depend(a, b);  // a → b → a
  EXPECT_THROW(g.run(4), std::logic_error);
  EXPECT_EQ(ran.load(), 0);
}

TEST(TaskGraph, FirstExceptionPropagatesAndSkipsRest) {
  for (const unsigned team : {1u, 4u}) {
    TaskGraph g;
    std::atomic<int> after{0};
    const auto a = g.add([] { throw std::runtime_error("boom"); });
    g.add([&] { after.fetch_add(1); }, {a});
    EXPECT_THROW(g.run(team), std::runtime_error) << "team " << team;
    EXPECT_EQ(after.load(), 0) << "dependent body ran after a failure";
  }
}

TEST(TaskGraph, IsSingleShot) {
  TaskGraph g;
  g.add([] {});
  g.run(1);
  EXPECT_THROW(g.run(1), std::invalid_argument);
}

TEST(TaskGraphStress, ManyIndependentTasksHighTeam) {
  // All tasks seed at once: maximal stealing traffic. Team 16 deliberately
  // oversubscribes small hosts (run_team carries extra ranks on temporary
  // threads).
  constexpr std::size_t kTasks = 5'000;
  TaskGraph g;
  std::atomic<std::uint64_t> sum{0};
  for (std::size_t t = 0; t < kTasks; ++t) {
    g.add([&sum, t] { sum.fetch_add(t, std::memory_order_relaxed); });
  }
  g.run(16);
  EXPECT_EQ(sum.load(), kTasks * (kTasks - 1) / 2);
}

TEST(TaskGraphStress, LayeredFanOutFanIn) {
  // Alternating wide/narrow layers force repeated drain-and-refill of the
  // deques — the pattern the BSP superstep graphs produce.
  constexpr int kLayers = 20;
  constexpr int kWidth = 64;
  TaskGraph g;
  std::atomic<std::uint64_t> count{0};
  std::vector<TaskGraph::TaskId> prev_layer;
  for (int layer = 0; layer < kLayers; ++layer) {
    std::vector<TaskGraph::TaskId> layer_ids;
    if (layer % 2 == 0) {
      for (int w = 0; w < kWidth; ++w) {
        const auto id = g.add([&count] {
          count.fetch_add(1, std::memory_order_relaxed);
        });
        if (!prev_layer.empty()) g.depend(id, prev_layer[0]);
        layer_ids.push_back(id);
      }
    } else {
      const auto id = g.add([&count] {
        count.fetch_add(1, std::memory_order_relaxed);
      });
      for (const auto dep : prev_layer) g.depend(id, dep);
      layer_ids.push_back(id);
    }
    prev_layer = std::move(layer_ids);
  }
  g.run(16);
  EXPECT_EQ(count.load(), std::uint64_t{kLayers / 2} * kWidth + kLayers / 2);
}

TEST(BoundedChannel, TryPushRespectsCapacity) {
  BoundedChannel<int> ch(2);
  EXPECT_TRUE(ch.try_push(1));
  EXPECT_TRUE(ch.try_push(2));
  EXPECT_FALSE(ch.try_push(3)) << "ring is full";
  int out = 0;
  EXPECT_TRUE(ch.try_pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(ch.try_push(3)) << "slot freed";
  EXPECT_TRUE(ch.try_pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(ch.try_pop(out));
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(ch.try_pop(out));
}

TEST(BoundedChannel, CloseWakesBlockedConsumer) {
  BoundedChannel<int> ch(4);
  std::thread consumer([&] {
    EXPECT_EQ(ch.pop(), std::nullopt);  // blocks until close
  });
  ch.close();
  consumer.join();
  EXPECT_FALSE(ch.try_push(1)) << "closed channel rejects pushes";
}

TEST(BoundedChannel, BlockingPushAppliesBackpressure) {
  BoundedChannel<int> ch(1);
  ASSERT_TRUE(ch.push(1));
  std::thread producer([&] {
    EXPECT_TRUE(ch.push(2));  // blocks until the consumer pops
  });
  EXPECT_EQ(ch.pop(), 1);
  EXPECT_EQ(ch.pop(), 2);
  producer.join();
}

TEST(BoundedChannel, PopUntilClosedReturnsItemWhenAvailable) {
  BoundedChannel<int> ch(4);
  ASSERT_TRUE(ch.try_push(7));
  int out = 0;
  EXPECT_EQ(ch.pop_until_closed(out, std::chrono::milliseconds(0)),
            ChannelPopStatus::kItem);
  EXPECT_EQ(out, 7);
}

TEST(BoundedChannel, PopUntilClosedTimesOutOnOpenEmptyChannel) {
  // The regression this API exists for: before pop_until_closed a worker
  // blocked on an empty queue could not bound its wait, so it could not
  // multiplex several queues or notice a drain request — pop() only
  // returns on an item or on close.
  BoundedChannel<int> ch(4);
  int out = 0;
  EXPECT_EQ(ch.pop_until_closed(out, std::chrono::milliseconds(1)),
            ChannelPopStatus::kTimedOut);
  EXPECT_FALSE(ch.closed());
}

TEST(BoundedChannel, PopUntilClosedDrainsBacklogBeforeReportingClosed) {
  // Items accepted before close() must still be delivered: kClosed means
  // closed AND drained, never "closed, items dropped".
  BoundedChannel<int> ch(4);
  ASSERT_TRUE(ch.try_push(1));
  ASSERT_TRUE(ch.try_push(2));
  ch.close();
  int out = 0;
  EXPECT_EQ(ch.pop_until_closed(out, std::chrono::milliseconds(0)),
            ChannelPopStatus::kItem);
  EXPECT_EQ(out, 1);
  EXPECT_EQ(ch.pop_until_closed(out, std::chrono::milliseconds(0)),
            ChannelPopStatus::kItem);
  EXPECT_EQ(out, 2);
  EXPECT_EQ(ch.pop_until_closed(out, std::chrono::milliseconds(0)),
            ChannelPopStatus::kClosed);
  // And it stays kClosed on every subsequent call.
  EXPECT_EQ(ch.pop_until_closed(out, std::chrono::milliseconds(0)),
            ChannelPopStatus::kClosed);
}

TEST(BoundedChannel, CloseWakesPopUntilClosedBeforeTimeout) {
  // A worker parked with a long timeout must observe close() promptly —
  // the drain path cannot afford to wait out the full timeout.
  BoundedChannel<int> ch(4);
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    int out = 0;
    // Hours-long timeout: only close() can end this wait in test time.
    EXPECT_EQ(ch.pop_until_closed(out, std::chrono::milliseconds(3'600'000)),
              ChannelPopStatus::kClosed);
    done.store(true);
  });
  ch.close();
  consumer.join();
  EXPECT_TRUE(done.load());
}

TEST(BoundedChannelStress, ManyProducersOneConsumer) {
  // The MPSC shape the async mailboxes use, far over capacity so both the
  // blocking and wakeup paths run constantly.
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 5'000;
  BoundedChannel<int> ch(64);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int pr = 0; pr < kProducers; ++pr) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) ASSERT_TRUE(ch.push(i));
    });
  }
  std::uint64_t popped = 0;
  std::uint64_t sum = 0;
  while (popped < std::uint64_t{kProducers} * kPerProducer) {
    if (const auto v = ch.pop(); v.has_value()) {
      ++popped;
      sum += static_cast<std::uint64_t>(*v);
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(sum, std::uint64_t{kProducers} * (std::uint64_t{kPerProducer} *
                                              (kPerProducer - 1) / 2));
  int leftover = 0;
  EXPECT_FALSE(ch.try_pop(leftover));
}

TEST(BoundedChannelStress, TryPathsUnderContention) {
  // Lossless non-blocking traffic: producers spin on try_push, a consumer
  // spins on try_pop — the exact pattern of the async mailbox hot path.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 10'000;
  BoundedChannel<std::uint32_t> ch(32);
  std::atomic<std::uint64_t> produced_sum{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int pr = 0; pr < kProducers; ++pr) {
    producers.emplace_back([&, pr] {
      for (int i = 0; i < kPerProducer; ++i) {
        const auto v = static_cast<std::uint32_t>(pr * kPerProducer + i);
        while (!ch.try_push(v)) std::this_thread::yield();
        produced_sum.fetch_add(v, std::memory_order_relaxed);
      }
    });
  }
  std::uint64_t consumed_sum = 0;
  std::uint64_t popped = 0;
  while (popped < std::uint64_t{kProducers} * kPerProducer) {
    std::uint32_t v = 0;
    if (ch.try_pop(v)) {
      ++popped;
      consumed_sum += v;
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(consumed_sum, produced_sum.load());
}

}  // namespace
}  // namespace ebv
