#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "graph/generators.h"
#include "graph/io.h"

namespace ebv {
namespace {

void expect_same(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e), b.edge(e));
    EXPECT_FLOAT_EQ(a.weight(e), b.weight(e));
  }
}

TEST(Io, TextRoundTrip) {
  const Graph g = gen::erdos_renyi(100, 400, 17);
  std::stringstream ss;
  io::write_edge_list(ss, g);
  const Graph back = io::read_edge_list(ss);
  expect_same(g, back);
}

TEST(Io, TextRoundTripWithWeights) {
  const Graph g = gen::road_grid(8, 8, 1.0, 3);
  std::stringstream ss;
  io::write_edge_list(ss, g);
  const Graph back = io::read_edge_list(ss);
  ASSERT_TRUE(back.has_weights());
  expect_same(g, back);
}

TEST(Io, TextSkipsCommentsAndBlanks) {
  std::stringstream ss("# comment\n\n0 1\n# another\n1 2\n");
  const Graph g = io::read_edge_list(ss);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.num_vertices(), 3u);
}

TEST(Io, TextRejectsMalformedLine) {
  std::stringstream ss("0 1\nnot an edge\n");
  EXPECT_THROW(io::read_edge_list(ss), std::runtime_error);
}

TEST(Io, TextHonoursBuilderOptions) {
  std::stringstream ss("0 0\n0 1\n0 1\n");
  GraphBuilder::Options opts;
  opts.deduplicate = true;
  const Graph g = io::read_edge_list(ss, opts);
  EXPECT_EQ(g.num_edges(), 1u);  // self-loop dropped + duplicate removed
}

TEST(Io, BinaryRoundTrip) {
  Graph g = gen::chung_lu(300, 2500, 2.4, false, 5);
  g.set_name("round-trip");
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  io::write_binary(ss, g);
  const Graph back = io::read_binary(ss);
  EXPECT_EQ(back.name(), "round-trip");
  expect_same(g, back);
}

TEST(Io, BinaryRoundTripWithWeights) {
  const Graph g = gen::road_grid(12, 12, 0.9, 8);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  io::write_binary(ss, g);
  const Graph back = io::read_binary(ss);
  ASSERT_TRUE(back.has_weights());
  expect_same(g, back);
}

TEST(Io, BinaryRejectsBadMagic) {
  std::stringstream ss("NOPE....................");
  EXPECT_THROW(io::read_binary(ss), std::runtime_error);
}

/// Serialise g, overwrite `len` bytes at `offset`, return a stream over
/// the corrupted bytes.
std::stringstream corrupted_binary(const Graph& g, std::size_t offset,
                                   const void* bytes, std::size_t len) {
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  io::write_binary(full, g);
  std::string data = full.str();
  EXPECT_LE(offset + len, data.size());
  data.replace(offset, len, static_cast<const char*>(bytes), len);
  return std::stringstream(data, std::ios::in | std::ios::binary);
}

TEST(Io, BinaryRejectsWrongVersion) {
  const Graph g = gen::erdos_renyi(30, 60, 2);
  const std::uint32_t version = 99;  // version field sits after the magic
  auto ss = corrupted_binary(g, 4, &version, sizeof version);
  EXPECT_THROW(io::read_binary(ss), std::runtime_error);
}

TEST(Io, BinaryRejectsOversizedNameLength) {
  const Graph g = gen::erdos_renyi(30, 60, 2);
  const std::uint32_t huge = 0x40000000;  // 1 GiB name: reject, don't alloc
  auto ss = corrupted_binary(g, 8, &huge, sizeof huge);
  EXPECT_THROW(io::read_binary(ss), std::runtime_error);
}

TEST(Io, BinaryRejectsOversizedEdgeCount) {
  Graph g = gen::erdos_renyi(30, 60, 2);
  g.set_name("x");
  // Header: magic(4) version(4) name_len(4) name(1) num_vertices(4) then
  // num_edges(8). A count far beyond the stream must throw runtime_error
  // (chunked reads), not OOM or crash.
  const std::uint64_t huge = std::uint64_t{1} << 40;
  auto ss = corrupted_binary(g, 17, &huge, sizeof huge);
  EXPECT_THROW(io::read_binary(ss), std::runtime_error);
}

TEST(Io, BinaryRejectsTruncation) {
  const Graph g = gen::erdos_renyi(50, 100, 2);
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  io::write_binary(full, g);
  const std::string bytes = full.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2),
                              std::ios::in | std::ios::binary);
  EXPECT_THROW(io::read_binary(truncated), std::runtime_error);
}

TEST(Io, FileRoundTrip) {
  const Graph g = gen::erdos_renyi(60, 150, 4);
  const std::string path = testing::TempDir() + "/ebv_io_test.bin";
  io::write_binary_file(path, g);
  const Graph back = io::read_binary_file(path);
  expect_same(g, back);
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(io::read_binary_file("/nonexistent/path/x.bin"),
               std::runtime_error);
  EXPECT_THROW(io::read_edge_list_file("/nonexistent/path/x.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace ebv
