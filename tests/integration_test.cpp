// End-to-end expectations mirroring the paper's headline claims, at test
// scale: partition quality orderings (Table III), message-count orderings
// (Tables IV/V) and the sorting ablation (Fig. 5).
#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "analysis/message_stats.h"
#include "apps/reference.h"
#include "graph/generators.h"
#include "partition/ebv.h"
#include "partition/metrics.h"
#include "partition/registry.h"

namespace ebv {
namespace {

using analysis::App;

PartitionConfig config(PartitionId p) {
  PartitionConfig c;
  c.num_parts = p;
  return c;
}

TEST(Integration, EbvBeatsSelfBasedBaselinesOnReplication) {
  // Paper §Abstract: EBV reduces the replication factor vs. the other
  // self-based algorithms (Ginger, DBH, CVC) on power-law graphs.
  const Graph g = gen::chung_lu(4000, 40000, 2.2, false, 21);
  const auto ebv = compute_metrics(g, make_partitioner("ebv")->partition(g, config(16)));
  for (const std::string name : {"ginger", "dbh", "cvc", "random"}) {
    const auto other =
        compute_metrics(g, make_partitioner(name)->partition(g, config(16)));
    EXPECT_LT(ebv.replication_factor, other.replication_factor)
        << "ebv vs " << name;
  }
}

TEST(Integration, EbvBalancedWhileLocalBasedAreNot) {
  // Paper Table III: EBV/Ginger/DBH/CVC ~1.00 imbalance; NE blows up
  // vertex imbalance and METIS edge imbalance on skewed graphs.
  const Graph g = gen::chung_lu(4000, 40000, 2.0, false, 22);
  const auto ebv = compute_metrics(g, make_partitioner("ebv")->partition(g, config(16)));
  const auto ne = compute_metrics(g, make_partitioner("ne")->partition(g, config(16)));
  const auto metis =
      compute_metrics(g, make_partitioner("metis")->partition(g, config(16)));
  EXPECT_LT(ebv.edge_imbalance, 1.05);
  EXPECT_LT(ebv.vertex_imbalance, 1.05);
  EXPECT_GT(ne.vertex_imbalance, ebv.vertex_imbalance * 1.2);
  EXPECT_GT(metis.edge_imbalance, ebv.edge_imbalance * 1.2);
}

TEST(Integration, LocalBasedHaveLowerReplicationButWorseMessageBalance) {
  // Paper Tables IV/V: NE/METIS send fewer messages in total but with a
  // much worse max/mean ratio on power-law graphs.
  const auto d = analysis::make_livejournal_sim(0.1, 23);
  const auto ebv = analysis::run_experiment(d.graph, "ebv", 8, App::kCC);
  const auto metis = analysis::run_experiment(d.graph, "metis", 8, App::kCC);
  const auto s_ebv = analysis::compute_message_stats(ebv.run);
  const auto s_metis = analysis::compute_message_stats(metis.run);
  EXPECT_LT(s_ebv.max_over_mean, 1.3) << "EBV messages are balanced";
  EXPECT_GT(s_metis.max_over_mean, s_ebv.max_over_mean);
}

TEST(Integration, EbvSendsFewerMessagesThanOtherSelfBased) {
  const auto d = analysis::make_livejournal_sim(0.08, 24);
  const auto ebv = analysis::run_experiment(d.graph, "ebv", 8, App::kCC);
  for (const std::string name : {"dbh", "cvc"}) {
    const auto other = analysis::run_experiment(d.graph, name, 8, App::kCC);
    EXPECT_LT(ebv.run.total_messages, other.run.total_messages)
        << "ebv vs " << name;
  }
}

TEST(Integration, SortingAblationReducesReplicationAtScale) {
  // Fig. 5: EBV-sort ends below EBV-unsort, and the margin grows with p.
  const Graph g = gen::chung_lu(5000, 50000, 2.2, false, 25);
  const EbvPartitioner ebv;
  auto rep = [&](PartitionId p, EdgeOrder order) {
    PartitionConfig c = config(p);
    c.edge_order = order;
    return compute_metrics(g, ebv.partition(g, c)).replication_factor;
  };
  const double sorted4 = rep(4, EdgeOrder::kSortedAscending);
  const double natural4 = rep(4, EdgeOrder::kNatural);
  const double sorted32 = rep(32, EdgeOrder::kSortedAscending);
  const double natural32 = rep(32, EdgeOrder::kNatural);
  EXPECT_LT(sorted4, natural4);
  EXPECT_LT(sorted32, natural32);
  EXPECT_GT(natural32 - sorted32, natural4 - sorted4)
      << "margin grows with the number of subgraphs";
}

TEST(Integration, AllAppsAgreeWithReferencesOnStandardDatasets) {
  // Cross-check the whole pipeline on miniature versions of all four
  // stand-ins with the paper's flagship partitioner.
  for (const auto& d : analysis::standard_datasets(0.03, 26)) {
    const auto cc = analysis::run_experiment(d.graph, "ebv", 6, App::kCC);
    const auto expected = apps::cc_reference(d.graph);
    for (VertexId v = 0; v < d.graph.num_vertices(); ++v) {
      ASSERT_EQ(cc.run.values[v], static_cast<double>(expected[v]))
          << d.name << " v=" << v;
    }
  }
}

TEST(Integration, SubgraphCentricUsesFewSupersteps) {
  // Local convergence per superstep keeps the global superstep count tiny
  // compared with one-hop-per-step vertex-centric execution.
  const auto d = analysis::make_livejournal_sim(0.05, 27);
  const auto result = analysis::run_experiment(d.graph, "ebv", 8, App::kCC);
  EXPECT_LE(result.run.supersteps, 12u);
}

TEST(Integration, MessageCountsScaleWithReplicationAcrossPartitioners) {
  // Table IV's observation: total CC messages track the replication
  // factor. Verify rank correlation over the self-based algorithms.
  const auto d = analysis::make_livejournal_sim(0.06, 28);
  std::vector<std::pair<double, std::uint64_t>> points;
  for (const std::string name : {"ebv", "ginger", "dbh", "cvc", "random"}) {
    const auto r = analysis::run_experiment(d.graph, name, 8, App::kCC);
    points.push_back({r.metrics.replication_factor, r.run.total_messages});
  }
  std::sort(points.begin(), points.end());
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i - 1].second, points[i].second * 3 / 2)
        << "messages should not collapse as replication grows";
  }
}

}  // namespace
}  // namespace ebv
