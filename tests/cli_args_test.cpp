// The ebvpart CLI's shared flag parsing (src/common/cli_args.h): numeric
// values are validated over the FULL string and every error names the
// offending flag — pins the fix for bare std::stoul accepting trailing
// junk ("--parts 8x" used to silently become 8) and throwing flag-less
// std::invalid_argument on garbage.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <limits>
#include <string>

#include "common/cli_args.h"

namespace ebv::cli {
namespace {

/// Runs `fn` and returns the std::invalid_argument message it throws;
/// fails the test if it does not throw.
template <typename Fn>
std::string thrown_message(Fn&& fn) {
  try {
    fn();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected std::invalid_argument";
  return {};
}

TEST(ParseUint, AcceptsPlainDecimals) {
  EXPECT_EQ(parse_uint("parts", "0"), 0u);
  EXPECT_EQ(parse_uint("parts", "8"), 8u);
  EXPECT_EQ(parse_uint("seed", "18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(parse_uint("budget-mb", "0256"), 256u);  // leading zeros are fine
}

TEST(ParseUint, RejectsTrailingJunkEverySuffix) {
  // The regression: std::stoul("8x") == 8. Full-string validation throws.
  for (const char* bad : {"8x", "8 ", " 8", "1e3", "0x10", "8.0", "+8", "-1"}) {
    EXPECT_THROW((void)parse_uint("parts", bad), std::invalid_argument)
        << "accepted '" << bad << "'";
  }
}

TEST(ParseUint, RejectsEmptyAndOverflow) {
  EXPECT_THROW((void)parse_uint("parts", ""), std::invalid_argument);
  // One past uint64 max.
  EXPECT_THROW((void)parse_uint("seed", "18446744073709551616"),
               std::invalid_argument);
  // Fits uint64 but exceeds the caller's bound.
  EXPECT_THROW((void)parse_uint("parts", "4294967296", 4294967295u),
               std::invalid_argument);
}

TEST(ParseUint, ErrorsNameTheFlag) {
  EXPECT_NE(thrown_message([] { (void)parse_uint("parts", "8x"); })
                .find("--parts"),
            std::string::npos);
  EXPECT_NE(thrown_message([] { (void)parse_uint("budget-mb", ""); })
                .find("--budget-mb"),
            std::string::npos);
  EXPECT_NE(thrown_message([] {
              (void)parse_uint("threads", "99", 16);
            }).find("--threads"),
            std::string::npos);
}

TEST(ParseDouble, FullStringValidation) {
  EXPECT_DOUBLE_EQ(parse_double("alpha", "1.5"), 1.5);
  EXPECT_DOUBLE_EQ(parse_double("eta", "2"), 2.0);
  EXPECT_DOUBLE_EQ(parse_double("beta", "-0.25"), -0.25);
  for (const char* bad : {"1.5x", "", "x", "1.5 2"}) {
    EXPECT_THROW((void)parse_double("alpha", bad), std::invalid_argument)
        << "accepted '" << bad << "'";
  }
  EXPECT_NE(thrown_message([] { (void)parse_double("alpha", "1.5x"); })
                .find("--alpha"),
            std::string::npos);
}

TEST(ParseArgs, PairsFlagsWithValues) {
  std::array argv{const_cast<char*>("ebvpart"), const_cast<char*>("run"),
                  const_cast<char*>("--graph"), const_cast<char*>("g.ebvg"),
                  const_cast<char*>("--parts"), const_cast<char*>("8")};
  const ArgMap args =
      parse_args(static_cast<int>(argv.size()), argv.data(), 2);
  EXPECT_EQ(args.at("graph"), "g.ebvg");
  EXPECT_EQ(args.at("parts"), "8");
}

TEST(ParseArgs, RejectsTrailingFlagWithoutValue) {
  // The old loop's `i + 1 < argc` bound dropped a dangling flag silently.
  std::array argv{const_cast<char*>("ebvpart"), const_cast<char*>("stats"),
                  const_cast<char*>("--graph"), const_cast<char*>("g.ebvg"),
                  const_cast<char*>("--deep")};
  EXPECT_THROW(
      (void)parse_args(static_cast<int>(argv.size()), argv.data(), 2),
      std::invalid_argument);
  EXPECT_NE(thrown_message([&] {
              (void)parse_args(static_cast<int>(argv.size()), argv.data(), 2);
            }).find("--deep"),
            std::string::npos);
}

TEST(ParseArgs, RejectsNonFlagToken) {
  std::array argv{const_cast<char*>("ebvpart"), const_cast<char*>("stats"),
                  const_cast<char*>("graph"), const_cast<char*>("g.ebvg")};
  EXPECT_THROW(
      (void)parse_args(static_cast<int>(argv.size()), argv.data(), 2),
      std::invalid_argument);
}

TEST(Get, FallbackAndRequired) {
  const ArgMap args{{"algo", "ebv"}};
  EXPECT_EQ(get(args, "algo", "hdrf"), "ebv");
  EXPECT_EQ(get(args, "order", "sorted"), "sorted");
  EXPECT_THROW((void)get(args, "out"), std::invalid_argument);
  EXPECT_NE(thrown_message([&] { (void)get(args, "out"); }).find("--out"),
            std::string::npos);
}

TEST(GetHelpers, ParseThroughArgMap) {
  const ArgMap args{{"parts", "64"}, {"alpha", "0.5"}};
  EXPECT_EQ(get_uint(args, "parts", "8"), 64u);
  EXPECT_EQ(get_uint(args, "batch", "256"), 256u);
  EXPECT_DOUBLE_EQ(get_double(args, "alpha", "1.0"), 0.5);
  EXPECT_DOUBLE_EQ(get_double(args, "beta", "1.0"), 1.0);
}

}  // namespace
}  // namespace ebv::cli
