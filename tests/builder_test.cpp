#include <gtest/gtest.h>

#include "graph/builder.h"

namespace ebv {
namespace {

TEST(Builder, BasicBuild) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Builder, SelfLoopsRemovedByDefault) {
  GraphBuilder b;
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  EXPECT_EQ(b.pending_edges(), 1u);
  EXPECT_EQ(b.build().num_edges(), 1u);
}

TEST(Builder, SelfLoopsKeptWhenRequested) {
  GraphBuilder::Options opts;
  opts.remove_self_loops = false;
  GraphBuilder b(opts);
  b.add_edge(0, 0);
  EXPECT_EQ(b.build().num_edges(), 1u);
}

TEST(Builder, Deduplicate) {
  GraphBuilder::Options opts;
  opts.deduplicate = true;
  GraphBuilder b(opts);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // reverse direction is a distinct edge
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Builder, MakeUndirectedAddsReverses) {
  GraphBuilder::Options opts;
  opts.make_undirected = true;
  GraphBuilder b(opts);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.out_degree(1), 1u);
}

TEST(Builder, CompactIdsRelabelsSparseSpace) {
  GraphBuilder::Options opts;
  opts.compact_ids = true;
  GraphBuilder b(opts);
  b.add_edge(1'000'000'000'000ULL, 5'000'000'000'000ULL);
  b.add_edge(5'000'000'000'000ULL, 7);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  const auto& originals = b.original_ids();
  ASSERT_EQ(originals.size(), 3u);
  EXPECT_EQ(originals[0], 1'000'000'000'000ULL);
  EXPECT_EQ(originals[1], 5'000'000'000'000ULL);
  EXPECT_EQ(originals[2], 7u);
}

TEST(Builder, RejectsHugeIdsWithoutCompaction) {
  GraphBuilder b;
  b.add_edge(1ULL << 40, 0);
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(Builder, MinVerticesPadsIsolatedTail) {
  GraphBuilder b;
  b.add_edge(0, 1);
  const Graph g = b.build(/*min_vertices=*/10);
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.degree(9), 0u);
}

TEST(Builder, WeightsSurvive) {
  GraphBuilder b;
  b.add_edge(0, 1, 3.5f);
  b.add_edge(1, 2);  // default weight 1
  const Graph g = b.build();
  ASSERT_TRUE(g.has_weights());
  EXPECT_FLOAT_EQ(g.weight(0), 3.5f);
  EXPECT_FLOAT_EQ(g.weight(1), 1.0f);
}

TEST(Builder, EmptyBuild) {
  GraphBuilder b;
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Builder, BuilderIsReusableAfterBuild) {
  GraphBuilder b;
  b.add_edge(0, 1);
  (void)b.build();
  EXPECT_EQ(b.pending_edges(), 0u);
  b.add_edge(2, 3);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.num_vertices(), 4u);
}

}  // namespace
}  // namespace ebv
