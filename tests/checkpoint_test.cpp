// Acceptance pins for crash-consistent superstep checkpointing: an EBVC
// checkpoint round-trips bit-for-bit, a run killed at the superstep
// boundary and resumed finishes BIT-IDENTICAL to the uninterrupted run
// (values, supersteps, message counts, virtual time) at every
// resident_workers × prefetch × strict/async combination, corruption at
// any byte is detected cleanly and falls back to the previous
// checkpoint, and the durable-write protocol never publishes partial
// state or leaks temp files — even under injected write failures.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "bsp/checkpoint.h"
#include "bsp/runtime.h"
#include "common/failpoint.h"
#include "graph/generators.h"

namespace ebv {
namespace {

namespace fs = std::filesystem;

using bsp::Checkpoint;
using bsp::RunOptions;
using bsp::RunStats;
using failpoint::ScopedFailpoints;

/// A fresh, empty directory under the test temp root.
std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

const Graph& powerlaw_graph() {
  static const Graph g = [] {
    Graph graph = gen::chung_lu(1500, 12000, 2.3, false, 17);
    graph.set_name("ckpt-pin");
    return graph;
  }();
  return g;
}

const Graph& weighted_graph() {
  static const Graph g = gen::road_grid(20, 20, 0.9, 17);
  return g;
}

/// CC and SSSP run on the road grid: its ~38-superstep diameter leaves
/// plenty of room to kill a run mid-computation (CC on the powerlaw
/// graph converges in two supersteps). PageRank keeps the powerlaw
/// graph — its iteration count is fixed, not diameter-bound.
const Graph& graph_for(analysis::App app) {
  return app == analysis::App::kPageRank ? powerlaw_graph()
                                         : weighted_graph();
}

/// Everything except wall_seconds (real harness time, diagnostic only).
void expect_stats_identical(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.supersteps, b.supersteps);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.raw_messages, b.raw_messages);
  EXPECT_EQ(a.messages_sent_per_worker, b.messages_sent_per_worker);
  EXPECT_EQ(a.peak_resident_workers, b.peak_resident_workers);
  EXPECT_EQ(a.values, b.values);  // exact doubles
  EXPECT_EQ(a.execution_seconds, b.execution_seconds);
  EXPECT_EQ(a.comp_seconds, b.comp_seconds);
  EXPECT_EQ(a.comm_seconds, b.comm_seconds);
  EXPECT_EQ(a.delta_c_seconds, b.delta_c_seconds);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t s = 0; s < a.steps.size(); ++s) {
    ASSERT_EQ(a.steps[s].size(), b.steps[s].size());
    for (std::size_t i = 0; i < a.steps[s].size(); ++i) {
      EXPECT_EQ(a.steps[s][i].work_units, b.steps[s][i].work_units);
      EXPECT_EQ(a.steps[s][i].messages_sent, b.steps[s][i].messages_sent);
      EXPECT_EQ(a.steps[s][i].messages_received,
                b.steps[s][i].messages_received);
      EXPECT_EQ(a.steps[s][i].comp_seconds, b.steps[s][i].comp_seconds);
      EXPECT_EQ(a.steps[s][i].comm_seconds, b.steps[s][i].comm_seconds);
    }
  }
}

RunStats run_app(analysis::App app, const RunOptions& options) {
  return analysis::run_experiment(graph_for(app), "ebv", 6, app, options).run;
}

std::vector<std::string> files_in(const std::string& dir) {
  std::vector<std::string> names;
  for (const auto& e : fs::directory_iterator(dir)) {
    names.push_back(e.path().filename().string());
  }
  return names;
}

bool any_temp_file_in(const std::string& dir) {
  for (const auto& name : files_in(dir)) {
    if (name.find(".tmp") != std::string::npos) return true;
  }
  return false;
}

/// A small synthetic checkpoint exercising every section: two workers of
/// different sizes, odd frontier counts (alignment padding), undrained
/// mailbox messages on both channels, and two supersteps of stats.
Checkpoint make_checkpoint(std::uint32_t completed) {
  Checkpoint c;
  c.completed_supersteps = completed;
  c.num_workers = 2;
  c.num_global_vertices = 5;
  c.num_global_edges = 9;
  c.program = "cc";
  c.total_messages = 10;
  c.raw_messages = 13;
  c.execution_seconds = 1.5;
  c.comp_seconds_sum = 0.25;
  c.comm_seconds_sum = 0.5;
  c.delta_c_seconds = 0.125;
  c.peak_resident_workers = 2;
  c.messages_sent_per_worker = {6, 4};
  c.steps.assign(completed, std::vector<bsp::WorkerStepStats>(2));
  for (std::uint32_t s = 0; s < completed; ++s) {
    for (std::uint32_t i = 0; i < 2; ++i) {
      c.steps[s][i].work_units = 100 * s + i;
      c.steps[s][i].messages_sent = 7 + s;
      c.steps[s][i].messages_received = 3 + i;
      c.steps[s][i].comp_seconds = 0.5 * (s + 1);
      c.steps[s][i].comm_seconds = 0.25 * (i + 1);
    }
  }
  c.values = {{1.0, 2.0, 4.0}, {3.0}};
  c.last_sync = {{1.0, 2.5, 4.0}, {3.5}};
  c.updated = {{0, 2, 1}, {0}};  // odd count: exercises 8-byte padding
  c.to_master = {{{4, 0.5}}, {}};
  c.to_mirror = {{}, {{2, 0.75}, {3, 0.25}, {1, 0.125}}};
  return c;
}

void expect_checkpoints_equal(const Checkpoint& a, const Checkpoint& b) {
  EXPECT_EQ(a.completed_supersteps, b.completed_supersteps);
  EXPECT_EQ(a.num_workers, b.num_workers);
  EXPECT_EQ(a.num_global_vertices, b.num_global_vertices);
  EXPECT_EQ(a.num_global_edges, b.num_global_edges);
  EXPECT_EQ(a.program, b.program);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.raw_messages, b.raw_messages);
  EXPECT_EQ(a.execution_seconds, b.execution_seconds);
  EXPECT_EQ(a.comp_seconds_sum, b.comp_seconds_sum);
  EXPECT_EQ(a.comm_seconds_sum, b.comm_seconds_sum);
  EXPECT_EQ(a.delta_c_seconds, b.delta_c_seconds);
  EXPECT_EQ(a.peak_resident_workers, b.peak_resident_workers);
  EXPECT_EQ(a.messages_sent_per_worker, b.messages_sent_per_worker);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t s = 0; s < a.steps.size(); ++s) {
    ASSERT_EQ(a.steps[s].size(), b.steps[s].size());
    for (std::size_t i = 0; i < a.steps[s].size(); ++i) {
      EXPECT_EQ(a.steps[s][i].work_units, b.steps[s][i].work_units);
      EXPECT_EQ(a.steps[s][i].messages_sent, b.steps[s][i].messages_sent);
      EXPECT_EQ(a.steps[s][i].messages_received,
                b.steps[s][i].messages_received);
      EXPECT_EQ(a.steps[s][i].comp_seconds, b.steps[s][i].comp_seconds);
      EXPECT_EQ(a.steps[s][i].comm_seconds, b.steps[s][i].comm_seconds);
    }
  }
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(a.last_sync, b.last_sync);
  EXPECT_EQ(a.updated, b.updated);
  ASSERT_EQ(a.to_master.size(), b.to_master.size());
  ASSERT_EQ(a.to_mirror.size(), b.to_mirror.size());
  for (std::size_t i = 0; i < a.to_master.size(); ++i) {
    ASSERT_EQ(a.to_master[i].size(), b.to_master[i].size());
    for (std::size_t m = 0; m < a.to_master[i].size(); ++m) {
      EXPECT_EQ(a.to_master[i][m].global, b.to_master[i][m].global);
      EXPECT_EQ(a.to_master[i][m].value, b.to_master[i][m].value);
    }
    ASSERT_EQ(a.to_mirror[i].size(), b.to_mirror[i].size());
    for (std::size_t m = 0; m < a.to_mirror[i].size(); ++m) {
      EXPECT_EQ(a.to_mirror[i][m].global, b.to_mirror[i][m].global);
      EXPECT_EQ(a.to_mirror[i][m].value, b.to_mirror[i][m].value);
    }
  }
}

TEST(CheckpointFormat, FileNameIsZeroPadded) {
  EXPECT_EQ(bsp::checkpoint_file_name(42), "ckpt-00000042.ebvc");
  EXPECT_EQ(bsp::checkpoint_file_name(0), "ckpt-00000000.ebvc");
}

TEST(CheckpointFormat, RoundTripsEverySection) {
  const std::string dir = fresh_dir("ckpt_roundtrip");
  const Checkpoint original = make_checkpoint(2);
  const std::string path = bsp::write_checkpoint(dir, original);
  EXPECT_EQ(fs::path(path).filename().string(), "ckpt-00000002.ebvc");
  EXPECT_FALSE(any_temp_file_in(dir));
  expect_checkpoints_equal(bsp::read_checkpoint_file(path), original);

  const auto listed = bsp::list_checkpoints(dir);
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].first, 2u);
  const auto latest = bsp::load_latest_checkpoint(dir);
  ASSERT_TRUE(latest.has_value());
  expect_checkpoints_equal(*latest, original);
}

TEST(CheckpointFormat, PrunesToNewestTwo) {
  const std::string dir = fresh_dir("ckpt_prune");
  for (std::uint32_t s = 1; s <= 5; ++s) {
    bsp::write_checkpoint(dir, make_checkpoint(s));
  }
  const auto listed = bsp::list_checkpoints(dir);
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0].first, 4u);
  EXPECT_EQ(listed[1].first, 5u);
}

TEST(CheckpointFormat, RejectsCorruptionAtEveryProbedByte) {
  const std::string dir = fresh_dir("ckpt_corrupt");
  const std::string path = bsp::write_checkpoint(dir, make_checkpoint(3));
  std::ifstream in(path, std::ios::binary);
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  const std::string bad = dir + "/bad.ebvc";
  const auto write_bad = [&](const std::string& content) {
    std::ofstream out(bad, std::ios::binary | std::ios::trunc);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
  };

  // Bit-flips: header fields, section interior, worker table, checksum.
  for (const std::size_t offset :
       {std::size_t{0}, std::size_t{4}, std::size_t{8}, std::size_t{12},
        std::size_t{16}, std::size_t{24}, std::size_t{40}, std::size_t{56},
        std::size_t{108}, std::size_t{112}, std::size_t{4096},
        bytes.size() / 2, bytes.size() - 9, bytes.size() - 8,
        bytes.size() - 1}) {
    SCOPED_TRACE(testing::Message() << "flip at " << offset);
    std::string flipped = bytes;
    flipped[offset] = static_cast<char>(flipped[offset] ^ 0x40);
    write_bad(flipped);
    EXPECT_THROW((void)bsp::read_checkpoint_file(bad), std::runtime_error);
  }
  // Truncations: inside the header, at the header edge, mid-body, just
  // shy of the checksum, one byte short.
  for (const std::size_t size :
       {std::size_t{0}, std::size_t{100}, std::size_t{4095},
        std::size_t{4096}, bytes.size() - 9, bytes.size() - 1}) {
    SCOPED_TRACE(testing::Message() << "truncate to " << size);
    write_bad(bytes.substr(0, size));
    EXPECT_THROW((void)bsp::read_checkpoint_file(bad), std::runtime_error);
  }
  // Trailing garbage shifts the checksum window: also rejected.
  write_bad(bytes + std::string(16, '\0'));
  EXPECT_THROW((void)bsp::read_checkpoint_file(bad), std::runtime_error);
  // The pristine file still parses after all that.
  expect_checkpoints_equal(bsp::read_checkpoint_file(path),
                           make_checkpoint(3));
}

TEST(CheckpointFormat, TornNewestFallsBackToPredecessor) {
  const std::string dir = fresh_dir("ckpt_fallback");
  bsp::write_checkpoint(dir, make_checkpoint(1));
  const std::string newest = bsp::write_checkpoint(dir, make_checkpoint(2));
  // Tear the newest mid-body (torn write survived past the header).
  {
    std::ifstream in(newest, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(newest, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  const auto latest = bsp::load_latest_checkpoint(dir);
  ASSERT_TRUE(latest.has_value());
  expect_checkpoints_equal(*latest, make_checkpoint(1));
}

TEST(CheckpointFormat, EmptyOrMissingDirLoadsNothing) {
  EXPECT_FALSE(
      bsp::load_latest_checkpoint(fresh_dir("ckpt_empty")).has_value());
  EXPECT_FALSE(bsp::load_latest_checkpoint(testing::TempDir() +
                                           "/ckpt_never_created")
                   .has_value());
}

TEST(CheckpointFormat, TransientWriteErrorIsRetried) {
  const std::string dir = fresh_dir("ckpt_retry");
  // Attempts 1 and 2 fail, attempt 3 (the last the policy allows) lands.
  const ScopedFailpoints fp("checkpoint.write=err@1-2");
  const std::string path = bsp::write_checkpoint(dir, make_checkpoint(1));
  EXPECT_FALSE(any_temp_file_in(dir));
  expect_checkpoints_equal(bsp::read_checkpoint_file(path),
                           make_checkpoint(1));
}

TEST(CheckpointFormat, TransientRenameErrorIsRetried) {
  const std::string dir = fresh_dir("ckpt_retry_rename");
  const ScopedFailpoints fp("checkpoint.rename=enospc@1");
  const std::string path = bsp::write_checkpoint(dir, make_checkpoint(1));
  EXPECT_FALSE(any_temp_file_in(dir));
  expect_checkpoints_equal(bsp::read_checkpoint_file(path),
                           make_checkpoint(1));
}

TEST(CheckpointFormat, PersistentWriteFailureLeavesNoPartialState) {
  const std::string dir = fresh_dir("ckpt_fail");
  const std::string prev = bsp::write_checkpoint(dir, make_checkpoint(1));
  {
    const ScopedFailpoints fp("checkpoint.write=err");
    EXPECT_THROW((void)bsp::write_checkpoint(dir, make_checkpoint(2)),
                 std::runtime_error);
  }
  // No temp file leaked, nothing partial published, and the previously
  // published checkpoint is intact.
  EXPECT_FALSE(any_temp_file_in(dir));
  EXPECT_EQ(files_in(dir).size(), 1u);
  expect_checkpoints_equal(bsp::read_checkpoint_file(prev),
                           make_checkpoint(1));
}

TEST(CheckpointFormat, RejectsMalformedShapes) {
  const std::string dir = fresh_dir("ckpt_shape");
  Checkpoint bad = make_checkpoint(1);
  bad.last_sync[0].pop_back();  // last_sync must mirror values
  EXPECT_THROW((void)bsp::write_checkpoint(dir, bad), std::invalid_argument);
  bad = make_checkpoint(1);
  bad.values.pop_back();  // per-worker arrays must be sized num_workers
  EXPECT_THROW((void)bsp::write_checkpoint(dir, bad), std::invalid_argument);
  bad = make_checkpoint(2);
  bad.steps.pop_back();  // one stats row per completed superstep
  EXPECT_THROW((void)bsp::write_checkpoint(dir, bad), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Kill-and-resume bit-identity across the scheduling matrix.

struct ResumeCase {
  analysis::App app;
  std::uint32_t resident_workers;  // 0 = all resident
  bool async;
  bool prefetch;
  std::string tag;  // unique checkpoint/spill scratch name
};

class ResumeMatrix : public testing::TestWithParam<ResumeCase> {};

TEST_P(ResumeMatrix, KilledAndResumedRunIsBitIdentical) {
  const ResumeCase& c = GetParam();
  RunOptions base;
  base.resident_workers = c.resident_workers;
  base.prefetch = c.prefetch;
  if (c.resident_workers > 0) base.spill_dir = fresh_dir("spill_" + c.tag);
  if (c.async) {
    base.scheduler = bsp::SchedulerMode::kAsync;
    base.policy = bsp::ExecutionPolicy::kParallel;
    base.num_threads = 4;
  }
  const RunStats uninterrupted = run_app(c.app, base);
  ASSERT_GT(uninterrupted.supersteps, 3u);

  // Crash the run at the third superstep boundary; checkpoints exist for
  // supersteps 1 and 2 and the abort is injected BEFORE the superstep's
  // results are accounted, so resume must replay superstep 3 exactly.
  const std::string ckpt_dir = fresh_dir("ckpt_" + c.tag);
  RunOptions mid = base;
  mid.checkpoint_dir = ckpt_dir;
  mid.checkpoint_every = 1;
  {
    const ScopedFailpoints fp("bsp.superstep=abort@3");
    EXPECT_THROW((void)run_app(c.app, mid), std::runtime_error);
  }
  EXPECT_FALSE(bsp::list_checkpoints(ckpt_dir).empty());
  EXPECT_FALSE(any_temp_file_in(ckpt_dir));

  RunOptions resume = mid;
  resume.resume = true;
  expect_stats_identical(run_app(c.app, resume), uninterrupted);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ResumeMatrix,
    testing::Values(
        ResumeCase{analysis::App::kCC, 0, false, true, "cc_resident"},
        ResumeCase{analysis::App::kCC, 1, false, true, "cc_k1"},
        ResumeCase{analysis::App::kCC, 3, false, false, "cc_k3_nopf"},
        ResumeCase{analysis::App::kCC, 6, false, true, "cc_kp"},
        ResumeCase{analysis::App::kCC, 3, true, true, "cc_k3_async"},
        ResumeCase{analysis::App::kPageRank, 0, false, true, "pr_resident"},
        ResumeCase{analysis::App::kPageRank, 1, false, true, "pr_k1"},
        ResumeCase{analysis::App::kPageRank, 3, false, true, "pr_k3"},
        ResumeCase{analysis::App::kSssp, 0, false, true, "sssp_resident"},
        ResumeCase{analysis::App::kSssp, 3, false, true, "sssp_k3"},
        ResumeCase{analysis::App::kSssp, 1, true, true, "sssp_k1_async"}),
    [](const testing::TestParamInfo<ResumeCase>& i) { return i.param.tag; });

TEST(CheckpointResume, EmptyDirStartsFromScratchAndStaysIdentical) {
  const RunStats base = run_app(analysis::App::kCC, {});
  RunOptions resume;
  resume.checkpoint_dir = fresh_dir("ckpt_resume_empty");
  resume.checkpoint_every = 1;
  resume.resume = true;  // nothing to load: a plain run with checkpointing
  expect_stats_identical(run_app(analysis::App::kCC, resume), base);
  EXPECT_FALSE(bsp::list_checkpoints(resume.checkpoint_dir).empty());
}

TEST(CheckpointResume, ResumeWithoutDirIsRejected) {
  RunOptions options;
  options.resume = true;
  EXPECT_THROW((void)run_app(analysis::App::kCC, options),
               std::invalid_argument);
}

TEST(CheckpointResume, NoCheckpointAtConvergenceAndPruningHolds) {
  RunOptions options;
  options.checkpoint_dir = fresh_dir("ckpt_cadence");
  options.checkpoint_every = 1;
  const RunStats stats = run_app(analysis::App::kCC, options);
  const auto listed = bsp::list_checkpoints(options.checkpoint_dir);
  ASSERT_EQ(listed.size(), 2u);  // pruned to the newest two
  // The final superstep converged, so no checkpoint was written for it —
  // resuming can never replay past convergence.
  EXPECT_EQ(listed[1].first, stats.supersteps - 1);
  EXPECT_FALSE(any_temp_file_in(options.checkpoint_dir));
}

TEST(CheckpointResume, CoarserCadenceCheckpointsLessButStaysIdentical) {
  const RunStats base = run_app(analysis::App::kPageRank, {});
  RunOptions options;
  options.checkpoint_dir = fresh_dir("ckpt_every4");
  options.checkpoint_every = 4;
  expect_stats_identical(run_app(analysis::App::kPageRank, options), base);
  for (const auto& [step, path] :
       bsp::list_checkpoints(options.checkpoint_dir)) {
    EXPECT_EQ(step % 4, 0u) << path;
  }
}

TEST(CheckpointResume, TornNewestCheckpointResumesFromPredecessor) {
  const RunStats base = run_app(analysis::App::kCC, {});
  RunOptions mid;
  mid.checkpoint_dir = fresh_dir("ckpt_torn_resume");
  mid.checkpoint_every = 1;
  {
    const ScopedFailpoints fp("bsp.superstep=abort@4");
    EXPECT_THROW((void)run_app(analysis::App::kCC, mid), std::runtime_error);
  }
  auto listed = bsp::list_checkpoints(mid.checkpoint_dir);
  ASSERT_EQ(listed.size(), 2u);
  {  // Tear the newest: resume must fall back to its predecessor.
    std::ifstream in(listed[1].second, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(listed[1].second, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 20));
  }
  RunOptions resume = mid;
  resume.resume = true;
  expect_stats_identical(run_app(analysis::App::kCC, resume), base);
}

TEST(CheckpointResume, FingerprintMismatchIsRejected) {
  RunOptions options;
  options.checkpoint_dir = fresh_dir("ckpt_fingerprint");
  options.checkpoint_every = 1;
  {
    const ScopedFailpoints fp("bsp.superstep=abort@3");
    EXPECT_THROW((void)run_app(analysis::App::kCC, options),
                 std::runtime_error);
  }
  RunOptions resume = options;
  resume.resume = true;
  // Same graph, different program: the checkpoint's fingerprint must
  // refuse to seed a PageRank run with CC state.
  EXPECT_THROW((void)run_app(analysis::App::kPageRank, resume),
               std::invalid_argument);
  // A different partition count changes the worker shape: also refused.
  EXPECT_THROW((void)analysis::run_experiment(graph_for(analysis::App::kCC),
                                              "ebv", 4, analysis::App::kCC,
                                              resume),
               std::invalid_argument);
}

}  // namespace
}  // namespace ebv
