#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "graph/generators.h"
#include "partition/partition_io.h"
#include "partition/registry.h"

namespace ebv {
namespace {

EdgePartition sample_partition() {
  const Graph g = gen::chung_lu(300, 2500, 2.4, false, 1);
  PartitionConfig c;
  c.num_parts = 6;
  return make_partitioner("ebv")->partition(g, c);
}

TEST(PartitionIo, TextRoundTrip) {
  const EdgePartition p = sample_partition();
  std::stringstream ss;
  io::write_partition(ss, p);
  const EdgePartition back = io::read_partition(ss);
  EXPECT_EQ(back.num_parts, p.num_parts);
  EXPECT_EQ(back.part_of_edge, p.part_of_edge);
}

TEST(PartitionIo, BinaryRoundTrip) {
  const EdgePartition p = sample_partition();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  io::write_partition_binary(ss, p);
  const EdgePartition back = io::read_partition_binary(ss);
  EXPECT_EQ(back.num_parts, p.num_parts);
  EXPECT_EQ(back.part_of_edge, p.part_of_edge);
}

TEST(PartitionIo, FileRoundTrip) {
  const EdgePartition p = sample_partition();
  const std::string path = testing::TempDir() + "/ebv_part_test.ebvp";
  io::write_partition_binary_file(path, p);
  const EdgePartition back = io::read_partition_binary_file(path);
  EXPECT_EQ(back.part_of_edge, p.part_of_edge);
}

TEST(PartitionIo, TextRejectsMissingHeader) {
  std::stringstream ss("0\n1\n");
  EXPECT_THROW(io::read_partition(ss), std::runtime_error);
}

TEST(PartitionIo, TextRejectsTrailingJunkEdgeCount) {
  // "edges=2x" must not parse as 2 (the count would even match below).
  std::stringstream ss("# ebv partition p=2 edges=2x\n0\n1\n");
  EXPECT_THROW(io::read_partition(ss), std::runtime_error);
}

TEST(PartitionIo, TextRejectsCountMismatch) {
  std::stringstream ss("# ebv partition p=2 edges=3\n0\n1\n");
  EXPECT_THROW(io::read_partition(ss), std::runtime_error);
}

TEST(PartitionIo, BinaryRejectsBadMagic) {
  std::stringstream ss("XXXX............", std::ios::in | std::ios::binary);
  EXPECT_THROW(io::read_partition_binary(ss), std::runtime_error);
}

TEST(PartitionIo, BinaryRejectsOutOfRangePartIds) {
  EdgePartition bad{2, {0, 5, 1}};
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  io::write_partition_binary(ss, bad);
  EXPECT_THROW(io::read_partition_binary(ss), std::runtime_error);
}

TEST(PartitionIo, BinaryRejectsWrongVersion) {
  const EdgePartition p{2, {0, 1, 0}};
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  io::write_partition_binary(full, p);
  std::string bytes = full.str();
  const std::uint32_t version = 77;  // version field sits after the magic
  bytes.replace(4, sizeof version,
                reinterpret_cast<const char*>(&version), sizeof version);
  std::stringstream cut(bytes, std::ios::in | std::ios::binary);
  EXPECT_THROW(io::read_partition_binary(cut), std::runtime_error);
}

TEST(PartitionIo, BinaryRejectsOversizedEdgeCount) {
  const EdgePartition p{2, {0, 1, 0}};
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  io::write_partition_binary(full, p);
  std::string bytes = full.str();
  // Header: magic(4) version(4) num_parts(4), then the u64 edge count. A
  // count far beyond the stream must throw runtime_error, not OOM.
  const std::uint64_t huge = std::uint64_t{1} << 40;
  bytes.replace(12, sizeof huge, reinterpret_cast<const char*>(&huge),
                sizeof huge);
  std::stringstream cut(bytes, std::ios::in | std::ios::binary);
  EXPECT_THROW(io::read_partition_binary(cut), std::runtime_error);
}

TEST(PartitionIo, TextRejectsOversizedEdgeCount) {
  // A hostile text header count must fail on the count mismatch, not
  // attempt an |E|-sized allocation up front.
  std::stringstream ss("# ebv partition p=2 edges=1099511627776\n0\n1\n");
  EXPECT_THROW(io::read_partition(ss), std::runtime_error);
}

TEST(PartitionIo, BinaryRejectsTruncation) {
  const EdgePartition p = sample_partition();
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  io::write_partition_binary(full, p);
  const std::string bytes = full.str();
  std::stringstream cut(bytes.substr(0, bytes.size() / 2),
                        std::ios::in | std::ios::binary);
  EXPECT_THROW(io::read_partition_binary(cut), std::runtime_error);
}

TEST(PartitionIo, EmptyPartitionRoundTrips) {
  EdgePartition empty{4, {}};
  std::stringstream ss;
  io::write_partition(ss, empty);
  const EdgePartition back = io::read_partition(ss);
  EXPECT_EQ(back.num_parts, 4u);
  EXPECT_TRUE(back.part_of_edge.empty());
}

}  // namespace
}  // namespace ebv
