// Acceptance pin for the out-of-core BSP path: DistributedGraph built
// straight from an mmap-backed EBVS snapshot view, and the whole
// `run --mmap` pipeline (partition_view → DistributedGraph → BSP
// supersteps), must be BIT-IDENTICAL to the resident path on the same
// snapshot — structures, supersteps, message counts and final values.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "apps/cc.h"
#include "bsp/distributed_graph.h"
#include "bsp/runtime.h"
#include "graph/generators.h"
#include "graph/mapped_graph.h"
#include "partition/registry.h"

namespace ebv {
namespace {

using bsp::DistributedGraph;

struct Snapshot {
  std::string path;
  Graph resident;  // read back from the file: same canonical edge order
};

const Snapshot& powerlaw_snapshot() {
  static const Snapshot s = [] {
    Graph g = gen::chung_lu(2000, 16000, 2.3, false, 11);
    g.set_name("mmap-run-pin");
    const std::string path = testing::TempDir() + "/mmap_run.ebvs";
    io::write_snapshot_file(path, g);
    return Snapshot{path, io::read_snapshot_file(path)};
  }();
  return s;
}

const Snapshot& weighted_snapshot() {
  static const Snapshot s = [] {
    Graph g = gen::road_grid(24, 24, 0.9, 11);  // weighted, for SSSP
    g.set_name("mmap-run-weighted");
    const std::string path = testing::TempDir() + "/mmap_run_w.ebvs";
    io::write_snapshot_file(path, g);
    return Snapshot{path, io::read_snapshot_file(path)};
  }();
  return s;
}

void expect_identical(const DistributedGraph& a, const DistributedGraph& b) {
  ASSERT_EQ(a.num_workers(), b.num_workers());
  ASSERT_EQ(a.num_global_vertices(), b.num_global_vertices());
  ASSERT_EQ(a.num_global_edges(), b.num_global_edges());
  EXPECT_EQ(a.total_replicas(), b.total_replicas());
  for (VertexId v = 0; v < a.num_global_vertices(); ++v) {
    EXPECT_EQ(a.master_of(v), b.master_of(v));
    const auto pa = a.parts_of(v);
    const auto pb = b.parts_of(v);
    ASSERT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin(), pb.end()));
  }
  for (PartitionId i = 0; i < a.num_workers(); ++i) {
    const auto& la = a.local(i);
    const auto& lb = b.local(i);
    EXPECT_EQ(la.global_ids, lb.global_ids);
    EXPECT_EQ(la.edges, lb.edges);
    EXPECT_EQ(la.edge_weights, lb.edge_weights);
    EXPECT_EQ(la.is_replicated, lb.is_replicated);
    EXPECT_EQ(la.is_master, lb.is_master);
    EXPECT_EQ(la.master_part, lb.master_part);
    EXPECT_EQ(la.global_out_degree, lb.global_out_degree);
  }
}

TEST(MmapRun, DistributedGraphMatchesResident) {
  const Snapshot& s = powerlaw_snapshot();
  const auto partition =
      make_partitioner("ebv")->partition(s.resident, {.num_parts = 8});

  const MappedGraph mapped(s.path);
  mapped.validate();
  const DistributedGraph via_mmap(mapped.view(), partition);
  const DistributedGraph via_resident(s.resident, partition);
  expect_identical(via_mmap, via_resident);
}

TEST(MmapRun, BspResultsBitIdentical) {
  const Snapshot& s = powerlaw_snapshot();
  const auto partition =
      make_partitioner("ebv")->partition(s.resident, {.num_parts = 8});

  const MappedGraph mapped(s.path);
  mapped.validate();
  const DistributedGraph via_mmap(mapped.view(), partition);
  const DistributedGraph via_resident(s.resident, partition);

  const apps::ConnectedComponents cc;
  const bsp::BspRuntime runtime;
  const bsp::RunStats rm = runtime.run(via_mmap, cc);
  const bsp::RunStats rr = runtime.run(via_resident, cc);
  EXPECT_EQ(rm.supersteps, rr.supersteps);
  EXPECT_EQ(rm.total_messages, rr.total_messages);
  EXPECT_EQ(rm.messages_sent_per_worker, rr.messages_sent_per_worker);
  EXPECT_EQ(rm.values, rr.values);  // exact doubles
}

class MmapRunPipeline : public testing::TestWithParam<analysis::App> {};

TEST_P(MmapRunPipeline, ExperimentPipelineBitIdentical) {
  const analysis::App app = GetParam();
  const Snapshot& s =
      app == analysis::App::kSssp ? weighted_snapshot() : powerlaw_snapshot();

  const MappedGraph mapped(s.path);
  mapped.validate();
  const auto via_mmap =
      analysis::run_experiment(mapped.view(), "ebv", 8, app);
  const auto via_resident = analysis::run_experiment(s.resident, "ebv", 8, app);

  EXPECT_EQ(via_mmap.num_parts, via_resident.num_parts);
  EXPECT_EQ(via_mmap.metrics.total_replicas,
            via_resident.metrics.total_replicas);
  EXPECT_EQ(via_mmap.metrics.edges_per_part,
            via_resident.metrics.edges_per_part);
  EXPECT_EQ(via_mmap.metrics.vertices_per_part,
            via_resident.metrics.vertices_per_part);
  EXPECT_EQ(via_mmap.run.supersteps, via_resident.run.supersteps);
  EXPECT_EQ(via_mmap.run.total_messages, via_resident.run.total_messages);
  EXPECT_EQ(via_mmap.run.messages_sent_per_worker,
            via_resident.run.messages_sent_per_worker);
  EXPECT_EQ(via_mmap.run.values, via_resident.run.values);
  // Virtual-time accounting is deterministic, so even the cost-model
  // outputs must agree to the last bit.
  EXPECT_EQ(via_mmap.run.execution_seconds, via_resident.run.execution_seconds);
  EXPECT_EQ(via_mmap.run.comp_seconds, via_resident.run.comp_seconds);
  EXPECT_EQ(via_mmap.run.comm_seconds, via_resident.run.comm_seconds);
  EXPECT_EQ(via_mmap.run.delta_c_seconds, via_resident.run.delta_c_seconds);
}

INSTANTIATE_TEST_SUITE_P(AllApps, MmapRunPipeline,
                         testing::Values(analysis::App::kCC,
                                         analysis::App::kPageRank,
                                         analysis::App::kSssp),
                         [](const auto& info) {
                           return analysis::app_name(info.param);
                         });

}  // namespace
}  // namespace ebv
