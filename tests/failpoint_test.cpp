// Pins for the deterministic fault-injection harness and the hardened
// I/O error paths it exercises: spec parsing and hit semantics, seeded
// reproducibility of probabilistic clauses, and — for every injected
// failure — a typed error naming the controlling flag, with partial
// output removed and no temp file leaked. Also pins the pid-liveness
// stale temp-file sweep the CLI entry points run at startup.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#if !defined(_WIN32)
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#endif

#include "apps/cc.h"
#include "bsp/distributed_graph.h"
#include "bsp/runtime.h"
#include "bsp/spill_store.h"
#include "common/failpoint.h"
#include "common/stale_sweep.h"
#include "graph/generators.h"
#include "graph/mapped_graph.h"
#include "graph/section_io.h"
#include "partition/registry.h"

namespace ebv {
namespace {

namespace fs = std::filesystem;

using bsp::BspRuntime;
using bsp::DistributedGraph;
using bsp::RunOptions;
using failpoint::Action;
using failpoint::ScopedFailpoints;

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

const Graph& powerlaw_graph() {
  static const Graph g = gen::chung_lu(1500, 12000, 2.3, false, 17);
  return g;
}

EdgePartition ebv_partition(const Graph& g, PartitionId p) {
  return make_partitioner("ebv")->partition(g, {.num_parts = p});
}

std::vector<std::string> files_in(const std::string& dir) {
  std::vector<std::string> names;
  for (const auto& e : fs::directory_iterator(dir)) {
    names.push_back(e.path().filename().string());
  }
  return names;
}

// ---------------------------------------------------------------------------
// Spec grammar and hit semantics.

TEST(Failpoint, InactiveByDefaultAndAfterClear) {
  EXPECT_FALSE(failpoint::active());
  EXPECT_EQ(failpoint::hit("any.site"), Action::kNone);
  failpoint::configure("x=err");
  EXPECT_TRUE(failpoint::active());
  failpoint::clear();
  EXPECT_FALSE(failpoint::active());
  EXPECT_EQ(failpoint::hit("x"), Action::kNone);
}

TEST(Failpoint, ScopedInstallationRestoresOnExit) {
  {
    const ScopedFailpoints fp("x=abort");
    EXPECT_EQ(failpoint::hit("x"), Action::kAbort);
  }
  EXPECT_FALSE(failpoint::active());
}

TEST(Failpoint, EveryHitAndSingleHitAndRange) {
  const ScopedFailpoints fp("a=err,b=enospc@2,c=shortread@2-3");
  EXPECT_EQ(failpoint::hit("a"), Action::kWriteError);
  EXPECT_EQ(failpoint::hit("a"), Action::kWriteError);
  EXPECT_EQ(failpoint::hit("b"), Action::kNone);     // hit 1
  EXPECT_EQ(failpoint::hit("b"), Action::kEnospc);   // hit 2
  EXPECT_EQ(failpoint::hit("b"), Action::kNone);     // hit 3
  EXPECT_EQ(failpoint::hit("c"), Action::kNone);     // 1
  EXPECT_EQ(failpoint::hit("c"), Action::kShortRead);  // 2
  EXPECT_EQ(failpoint::hit("c"), Action::kShortRead);  // 3
  EXPECT_EQ(failpoint::hit("c"), Action::kNone);     // 4: transient window over
  EXPECT_EQ(failpoint::hit("unlisted"), Action::kNone);
}

TEST(Failpoint, ConfigureResetsHitCounters) {
  failpoint::configure("s=err@1");
  EXPECT_EQ(failpoint::hit("s"), Action::kWriteError);
  EXPECT_EQ(failpoint::hit("s"), Action::kNone);
  failpoint::configure("s=err@1");  // counters restart
  EXPECT_EQ(failpoint::hit("s"), Action::kWriteError);
  failpoint::clear();
}

TEST(Failpoint, SeededProbabilityIsReproducible) {
  const auto draw_sequence = [](const std::string& spec) {
    failpoint::configure(spec);
    std::vector<bool> fails;
    fails.reserve(200);
    for (int i = 0; i < 200; ++i) {
      fails.push_back(failpoint::hit("p.site") != Action::kNone);
    }
    failpoint::clear();
    return fails;
  };
  const auto a = draw_sequence("p.site=err~0.5,seed=42");
  const auto b = draw_sequence("p.site=err~0.5,seed=42");
  EXPECT_EQ(a, b);  // same seed: the same hits fail
  const auto c = draw_sequence("p.site=err~0.5,seed=43");
  EXPECT_NE(a, c);  // a different seed picks different hits
  const auto frac = static_cast<double>(std::count(a.begin(), a.end(), true)) /
                    static_cast<double>(a.size());
  EXPECT_GT(frac, 0.25);
  EXPECT_LT(frac, 0.75);
}

TEST(Failpoint, RejectsMalformedSpecsNamingTheClause) {
  for (const std::string spec :
       {"x", "x=", "x=frobnicate", "x=err@", "x=err@0", "x=err@3-2",
        "x=err@2~0.5", "x=err~1.5", "x=err~-0.25", "x=err~", "seed=",
        "seed=notanumber", "=err"}) {
    SCOPED_TRACE(spec);
    EXPECT_THROW(failpoint::configure(spec), std::invalid_argument);
  }
  EXPECT_FALSE(failpoint::active());  // failed configure installs nothing
  failpoint::configure("");           // empty spec: valid, no rules
  EXPECT_FALSE(failpoint::active());
}

TEST(Failpoint, StreamPoisoningFiresTheCallersErrorPath) {
  const ScopedFailpoints fp("stream.site=err@1");
  std::ofstream out(testing::TempDir() + "/fp_stream.bin", std::ios::binary);
  ASSERT_TRUE(out.good());
  EXPECT_EQ(failpoint::maybe_fail_stream("stream.site", out),
            Action::kWriteError);
  EXPECT_FALSE(out.good());  // the production `if (!out)` check now fires
  out.clear();
  EXPECT_EQ(failpoint::maybe_fail_stream("stream.site", out), Action::kNone);
  EXPECT_TRUE(out.good());
}

TEST(Failpoint, WithRetrySucceedsAfterTransientFailures) {
  int attempts = 0;
  int cleanups = 0;
  const int result = failpoint::with_retry(
      failpoint::RetryPolicy{.max_attempts = 3},
      [&] {
        if (++attempts < 3) throw std::runtime_error("transient");
        return 7;
      },
      [&] { ++cleanups; });
  EXPECT_EQ(result, 7);
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(cleanups, 2);  // cleanup after each failed attempt only
}

TEST(Failpoint, WithRetryPropagatesTheFinalFailure) {
  int attempts = 0;
  int cleanups = 0;
  EXPECT_THROW(failpoint::with_retry(
                   failpoint::RetryPolicy{.max_attempts = 3},
                   [&]() -> int { throw std::runtime_error("persistent"); },
                   [&] {
                     ++attempts;
                     ++cleanups;
                   }),
               std::runtime_error);
  EXPECT_EQ(cleanups, 3);  // cleanup ran after the final attempt too
}

// ---------------------------------------------------------------------------
// Injection exercises the REAL error paths: typed error naming the
// controlling flag, partial output removed, no temp file leaked.

TEST(FailpointInjection, SpillStoreWriteErrorRemovesPartialSnapshot) {
  const std::string dir = fresh_dir("fp_spill_store");
  const Graph& g = powerlaw_graph();
  const EdgePartition partition = ebv_partition(g, 4);
  const ScopedFailpoints fp("spill_store.write=err@1");
  try {
    const DistributedGraph spilled(g, partition,
                                   {.spill_path = dir + "/fp.ebvw"});
    FAIL() << "expected the injected write error to surface";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("--spill-dir"), std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(files_in(dir).empty());  // writer dtor reclaimed the partial
}

TEST(FailpointInjection, SectionWriteErrorAlsoSurfacesInSpillStore) {
  const std::string dir = fresh_dir("fp_section_write");
  const Graph& g = powerlaw_graph();
  const ScopedFailpoints fp("section_io.write=err@3");
  EXPECT_THROW(DistributedGraph(g, ebv_partition(g, 4),
                                {.spill_path = dir + "/fp.ebvw"}),
               std::runtime_error);
  EXPECT_TRUE(files_in(dir).empty());
}

TEST(FailpointInjection, MmapFailureSurfacesOnOpen) {
  const std::string dir = fresh_dir("fp_mmap");
  const std::string path = dir + "/fp.ebvw";
  const Graph& g = powerlaw_graph();
  const EdgePartition partition = ebv_partition(g, 4);
  { const DistributedGraph spilled(g, partition, {.spill_path = path}); }
  ASSERT_TRUE(fs::exists(path));
  {
    // The raw mapping surfaces a typed InjectedFault...
    const ScopedFailpoints fp("section_io.mmap=mmapfail@1");
    try {
      const io::detail::MappedFile mapped(path);
      FAIL() << "expected the injected mmap failure to surface";
    } catch (const failpoint::InjectedFault& e) {
      EXPECT_EQ(std::string(e.site()), "section_io.mmap");
      EXPECT_EQ(e.action(), Action::kMmapFail);
    }
  }
  // ...which format loaders wrap with their own context prefix.
  const ScopedFailpoints fp("section_io.mmap=mmapfail@1");
  try {
    const bsp::SpillStore store(path);
    FAIL() << "expected the injected mmap failure to surface";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("injected"), std::string::npos)
        << e.what();
  }
  const bsp::SpillStore store(path);  // past the window: opens fine
  EXPECT_EQ(store.num_workers(), 4u);
}

TEST(FailpointInjection, SnapshotWriteErrorRemovesPartialEbvs) {
  const std::string dir = fresh_dir("fp_snapshot");
  const std::string path = dir + "/fp.ebvs";
  const Graph& g = powerlaw_graph();
  const ScopedFailpoints fp("snapshot.write=err@1");
  try {
    io::write_snapshot_file(path, GraphView(g));
    FAIL() << "expected the injected snapshot write error to surface";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("snapshot output"),
              std::string::npos)
        << e.what();
  }
  // A table-less snapshot must not survive to be mmapped later.
  EXPECT_TRUE(files_in(dir).empty());
  failpoint::clear();
  io::write_snapshot_file(path, GraphView(g));  // clean retry succeeds
  const MappedGraph mapped(path);
  EXPECT_EQ(mapped.view().num_vertices(), g.num_vertices());
}

TEST(FailpointInjection, MailboxAppendErrorCleansUpAndNamesTheFlag) {
  const std::string spill = fresh_dir("fp_mbox_append");
  const Graph& g = powerlaw_graph();
  const EdgePartition partition = ebv_partition(g, 8);
  const DistributedGraph spilled(
      g, partition, {.spill_path = spill + "/workers.ebvw"});
  const apps::ConnectedComponents cc;
  RunOptions options;
  options.resident_workers = 2;
  options.spill_dir = spill;
  options.mailbox_buffer_messages = 1;  // every parked message hits a file
  const ScopedFailpoints fp("mailbox.append=err@4");
  try {
    (void)BspRuntime(options).run(spilled, cc);
    FAIL() << "expected the injected mailbox append error to surface";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("--spill-dir"), std::string::npos)
        << e.what();
  }
  // Unwinding destroyed every mailbox: no overflow file survives.
  for (const auto& name : files_in(spill)) {
    EXPECT_EQ(name.find("ebv-mbox."), std::string::npos) << name;
  }
}

TEST(FailpointInjection, MailboxReadErrorCleansUpAndNamesTheFlag) {
  const std::string spill = fresh_dir("fp_mbox_read");
  const Graph& g = powerlaw_graph();
  const EdgePartition partition = ebv_partition(g, 8);
  const DistributedGraph spilled(
      g, partition, {.spill_path = spill + "/workers.ebvw"});
  const apps::ConnectedComponents cc;
  RunOptions options;
  options.resident_workers = 2;
  options.spill_dir = spill;
  options.mailbox_buffer_messages = 1;
  const ScopedFailpoints fp("mailbox.read=shortread@2");
  try {
    (void)BspRuntime(options).run(spilled, cc);
    FAIL() << "expected the injected mailbox read error to surface";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("--spill-dir"), std::string::npos)
        << e.what();
  }
  for (const auto& name : files_in(spill)) {
    EXPECT_EQ(name.find("ebv-mbox."), std::string::npos) << name;
  }
}

TEST(FailpointInjection, RunIsUnperturbedPastTheInjectionWindow) {
  // A transient window that never triggers (hit 10^6) must not move a
  // bit — the instrumented sites cost nothing when armed-but-missed.
  const Graph& g = powerlaw_graph();
  const EdgePartition partition = ebv_partition(g, 4);
  const DistributedGraph resident(g, partition);
  const apps::ConnectedComponents cc;
  const auto base = BspRuntime().run(resident, cc);
  const ScopedFailpoints fp("bsp.superstep=abort@1000000");
  const auto armed = BspRuntime().run(resident, cc);
  EXPECT_EQ(armed.supersteps, base.supersteps);
  EXPECT_EQ(armed.total_messages, base.total_messages);
  EXPECT_EQ(armed.values, base.values);
}

// ---------------------------------------------------------------------------
// Stale temp-file sweep (pid-liveness reclamation at CLI startup).

TEST(StaleSweep, RecognisesExactlyTheTempShapes) {
  EXPECT_EQ(temp_file_owner_pid("ebv-mbox.123-4.7.tmp"), 123);
  EXPECT_EQ(temp_file_owner_pid("ebv-workers.99-2.ebvw"), 99);
  EXPECT_EQ(temp_file_owner_pid("edges.ebvs.run3.77-1.tmp"), 77);
  EXPECT_EQ(temp_file_owner_pid("ckpt-00000005.ebvc.tmp.41-9"), 41);
  EXPECT_EQ(temp_file_owner_pid("ebv-serve.314-2.sock"), 314);
  EXPECT_EQ(temp_file_owner_pid("graph.ebvs.wspool.55-3.tmp"), 55);
  // Not temp files: published outputs and foreign names stay untouched.
  EXPECT_FALSE(temp_file_owner_pid("graph.ebvs").has_value());
  EXPECT_FALSE(temp_file_owner_pid("ckpt-00000005.ebvc").has_value());
  EXPECT_FALSE(temp_file_owner_pid("ebv-mbox.notapid.tmp").has_value());
  EXPECT_FALSE(temp_file_owner_pid("ebv-workers.12.ebvw").has_value());
  EXPECT_FALSE(temp_file_owner_pid("ebv-serve.12.sock").has_value());
  EXPECT_FALSE(temp_file_owner_pid("graph.ebvs.wspool.tmp").has_value());
  EXPECT_FALSE(temp_file_owner_pid("readme.txt").has_value());
}

#if !defined(_WIN32)
TEST(StaleSweep, RemovesDeadOwnersKeepsLiveAndForeignFiles) {
  // A forked child that exits immediately (and is reaped) yields a pid
  // that is guaranteed dead and won't be recycled within this test.
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) _exit(0);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_FALSE(process_alive(child));
  ASSERT_TRUE(process_alive(static_cast<long>(getpid())));

  const std::string dir = fresh_dir("stale_sweep");
  const std::string dead = std::to_string(child);
  const std::string live = std::to_string(getpid());
  const std::vector<std::string> stale = {
      "ebv-mbox." + dead + "-1.3.tmp",
      "ebv-workers." + dead + "-2.ebvw",
      "edges.ebvs.run0." + dead + "-1.tmp",
      "ckpt-00000002.ebvc.tmp." + dead + "-5",
  };
  const std::vector<std::string> kept = {
      "ebv-mbox." + live + "-1.3.tmp",  // live owner: in use
      "graph.ebvs",                     // published output
      "notes.txt",                      // foreign file
  };
  for (const auto& name : stale) { std::ofstream(dir + "/" + name) << "x"; }
  for (const auto& name : kept) { std::ofstream(dir + "/" + name) << "x"; }

  // A dead daemon's socket is a socket inode, not a regular file; the
  // sweep must reclaim it all the same (and keep a live daemon's).
  const auto make_socket = [&](const std::string& name) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    const std::string path = dir + "/" + name;
    ASSERT_LT(path.size(), sizeof(addr.sun_path));
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    ::close(fd);  // the inode outlives the descriptor
  };
  const std::string stale_sock = "ebv-serve." + dead + "-1.sock";
  const std::string kept_sock = "ebv-serve." + live + "-1.sock";
  make_socket(stale_sock);
  make_socket(kept_sock);

  EXPECT_EQ(sweep_stale_temp_files(dir), stale.size() + 1);
  EXPECT_FALSE(fs::exists(dir + "/" + stale_sock));
  EXPECT_TRUE(fs::exists(dir + "/" + kept_sock));
  for (const auto& name : stale) {
    EXPECT_FALSE(fs::exists(dir + "/" + name)) << name;
  }
  for (const auto& name : kept) {
    EXPECT_TRUE(fs::exists(dir + "/" + name)) << name;
  }
  EXPECT_EQ(sweep_stale_temp_files(dir), 0u);  // idempotent
}
#endif

TEST(StaleSweep, MissingDirectoryIsNotAnError) {
  EXPECT_EQ(sweep_stale_temp_files(testing::TempDir() + "/no_such_dir"), 0u);
}

}  // namespace
}  // namespace ebv
