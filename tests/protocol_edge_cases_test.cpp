// Edge cases of the master/mirror replica-sync protocol that the
// application-level tests do not isolate: master-side in-place updates,
// mirror convergence, and degenerate graphs.
#include <gtest/gtest.h>

#include "apps/cc.h"
#include "apps/pagerank.h"
#include "bsp/distributed_graph.h"
#include "bsp/runtime.h"
#include "graph/builder.h"
#include "graph/generators.h"

namespace ebv {
namespace {

using bsp::BspRuntime;
using bsp::DistributedGraph;

TEST(Protocol, MasterSideImprovementReachesMirrors) {
  // Path 0-1-2-3 split so that worker 0 owns {(0,1),(1,2)} and worker 1
  // owns {(2,3)}. Vertex 2 is replicated; worker 0 holds 2 of its 3
  // incident edge-endpoints, so worker 0 is the master. Worker 0's local
  // compute lowers vertex 2's label in place (to 0) — the broadcast must
  // still deliver 0 to worker 1, which then relabels vertex 3.
  const Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  EdgePartition part{2, {0, 0, 1}};
  const DistributedGraph dist(g, part);
  ASSERT_EQ(dist.master_of(2), 0u);
  const auto run = BspRuntime().run(dist, apps::ConnectedComponents());
  EXPECT_EQ(run.values[3], 0.0);
}

TEST(Protocol, MirrorImprovementReachesMaster) {
  // Vertex 1 is replicated with its master on worker 0 (tie-break), but
  // the label-0 improvement originates on worker 1 — the *mirror* — via
  // edge (0,1). The mirror's emission must reach the master and then
  // propagate to vertices 2 and 3.
  const Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  EdgePartition part{2, {1, 0, 0}};
  const DistributedGraph dist(g, part);
  ASSERT_EQ(dist.master_of(1), 0u);
  const auto run = BspRuntime().run(dist, apps::ConnectedComponents());
  EXPECT_EQ(run.values[3], 0.0);
}

TEST(Protocol, ChainAcrossManyWorkersNeedsManySupersteps) {
  // A long path cut into one-edge pieces: label 0 travels one worker per
  // superstep, exercising repeated reactivation through sync.
  constexpr VertexId kLength = 12;
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < kLength; ++v) edges.push_back({v, v + 1});
  const Graph g(kLength, std::move(edges));
  EdgePartition part{kLength - 1,
                     std::vector<PartitionId>(g.num_edges())};
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    part.part_of_edge[e] = static_cast<PartitionId>(e);
  }
  const DistributedGraph dist(g, part);
  const auto run = BspRuntime().run(dist, apps::ConnectedComponents());
  for (VertexId v = 0; v < kLength; ++v) EXPECT_EQ(run.values[v], 0.0);
  EXPECT_GE(run.supersteps, 5u) << "labels cross one boundary per step";
}

TEST(Protocol, EmptyWorkerIsHarmless) {
  // Three parts declared, edges only land in two.
  const Graph g(4, {{0, 1}, {2, 3}});
  EdgePartition part{3, {0, 2}};
  const DistributedGraph dist(g, part);
  EXPECT_EQ(dist.local(1).num_vertices(), 0u);
  const auto run = BspRuntime().run(dist, apps::ConnectedComponents());
  EXPECT_EQ(run.values[1], 0.0);
  EXPECT_EQ(run.values[3], 2.0);
}

TEST(Protocol, SelfLoopOnlyGraph) {
  GraphBuilder::Options opts;
  opts.remove_self_loops = false;
  GraphBuilder b(opts);
  b.add_edge(0, 0);
  const Graph g = b.build();
  EdgePartition part{2, {0}};
  const DistributedGraph dist(g, part);
  const auto run = BspRuntime().run(dist, apps::ConnectedComponents());
  EXPECT_EQ(run.values[0], 0.0);
}

TEST(Protocol, PageRankPartialsSumAcrossThreeReplicas) {
  // Star into vertex 3 with in-edges spread over three workers: the
  // master must sum three partials before applying damping.
  const Graph g(4, {{0, 3}, {1, 3}, {2, 3}});
  EdgePartition part{3, {0, 1, 2}};
  const DistributedGraph dist(g, part);
  const apps::PageRank pr(4, 1);
  const auto run = BspRuntime().run(dist, pr);
  // One iteration from uniform 1/4: rank(3) = 0.15/4 + 0.85·(3·(1/4)/1).
  EXPECT_NEAR(run.values[3], 0.15 / 4 + 0.85 * 0.75, 1e-12);
  EXPECT_NEAR(run.values[0], 0.15 / 4, 1e-12);
}

TEST(Protocol, TwoWorkersShareEveryVertex) {
  // Both directions of one edge on different workers: both vertices are
  // replicated on both workers, maximal replica interaction.
  const Graph g(2, {{0, 1}, {1, 0}});
  EdgePartition part{2, {0, 1}};
  const DistributedGraph dist(g, part);
  EXPECT_EQ(dist.total_replicas(), 4u);
  const auto run = BspRuntime().run(dist, apps::ConnectedComponents());
  EXPECT_EQ(run.values[0], 0.0);
  EXPECT_EQ(run.values[1], 0.0);
}

}  // namespace
}  // namespace ebv
