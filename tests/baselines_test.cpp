// Shared validity properties for every registered partitioner, plus
// algorithm-specific behavioural tests for the baselines.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.h"
#include "partition/cvc.h"
#include "partition/dbh.h"
#include "partition/metrics.h"
#include "partition/registry.h"

namespace ebv {
namespace {

class AllPartitioners : public testing::TestWithParam<std::string> {
 protected:
  static PartitionConfig config(PartitionId p) {
    PartitionConfig c;
    c.num_parts = p;
    return c;
  }
};

TEST_P(AllPartitioners, EveryEdgeAssignedToValidPart) {
  const Graph g = gen::chung_lu(800, 6000, 2.3, false, 3);
  const auto partitioner = make_partitioner(GetParam());
  const EdgePartition part = partitioner->partition(g, config(6));
  ASSERT_EQ(part.num_parts, 6u);
  ASSERT_EQ(part.part_of_edge.size(), g.num_edges());
  for (const PartitionId i : part.part_of_edge) EXPECT_LT(i, 6u);
}

TEST_P(AllPartitioners, DeterministicUnderFixedSeed) {
  const Graph g = gen::chung_lu(500, 3000, 2.4, false, 5);
  const auto partitioner = make_partitioner(GetParam());
  const auto a = partitioner->partition(g, config(4));
  const auto b = partitioner->partition(g, config(4));
  EXPECT_EQ(a.part_of_edge, b.part_of_edge);
}

TEST_P(AllPartitioners, SinglePartIsTrivial) {
  const Graph g = gen::erdos_renyi(200, 800, 9);
  const auto partitioner = make_partitioner(GetParam());
  const auto part = partitioner->partition(g, config(1));
  for (const PartitionId i : part.part_of_edge) EXPECT_EQ(i, 0u);
}

TEST_P(AllPartitioners, WorksOnRoadGraph) {
  const Graph g = gen::road_grid(20, 20, 0.9, 2);
  const auto partitioner = make_partitioner(GetParam());
  const auto part = partitioner->partition(g, config(4));
  const auto m = compute_metrics(g, part);
  EXPECT_GE(m.replication_factor, 1.0 - 1e-12);
}

TEST_P(AllPartitioners, RejectsZeroParts) {
  const Graph g = gen::erdos_renyi(50, 100, 1);
  const auto partitioner = make_partitioner(GetParam());
  EXPECT_THROW(partitioner->partition(g, config(0)), std::invalid_argument);
}

TEST_P(AllPartitioners, MorePartsNeverLowersReplication) {
  const Graph g = gen::chung_lu(600, 5000, 2.3, false, 8);
  const auto partitioner = make_partitioner(GetParam());
  const auto m2 = compute_metrics(g, partitioner->partition(g, config(2)));
  const auto m16 = compute_metrics(g, partitioner->partition(g, config(16)));
  EXPECT_LE(m2.replication_factor, m16.replication_factor + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Registry, AllPartitioners,
                         testing::ValuesIn(all_partitioners()),
                         [](const auto& info) {
                           // gtest names must be alphanumeric.
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_partitioner("bogus"), std::invalid_argument);
}

TEST(Registry, PaperSixAreRegistered) {
  for (const auto& name : paper_partitioners()) {
    EXPECT_EQ(make_partitioner(name)->name(), name);
  }
}

// --- DBH ------------------------------------------------------------------

TEST(Dbh, EdgesOfLowDegreeVertexStayTogether) {
  // Star + pendant: all star edges hash on the leaf (lower degree), so
  // each leaf's single edge placement is determined by that leaf alone —
  // two edges sharing the same low-degree endpoint must colocate.
  const Graph g(6, {{0, 1}, {1, 0}, {0, 2}, {0, 3}, {0, 4}, {0, 5}});
  const DbhPartitioner dbh;
  PartitionConfig c;
  c.num_parts = 3;
  const auto part = dbh.partition(g, c);
  // Edges 0 and 1 both connect {0,1}; vertex 1 has the lower degree.
  EXPECT_EQ(part.part_of_edge[0], part.part_of_edge[1]);
}

TEST(Dbh, RoughEdgeBalanceOnPowerLaw) {
  const Graph g = gen::chung_lu(3000, 30000, 2.0, false, 4);
  const DbhPartitioner dbh;
  PartitionConfig c;
  c.num_parts = 8;
  const auto m = compute_metrics(g, dbh.partition(g, c));
  EXPECT_LT(m.edge_imbalance, 1.3);
  EXPECT_LT(m.vertex_imbalance, 1.3);
}

// --- CVC --------------------------------------------------------------------

TEST(Cvc, GridShapeFactorisations) {
  EXPECT_EQ(CvcPartitioner::grid_shape(12), (std::pair<PartitionId, PartitionId>{3, 4}));
  EXPECT_EQ(CvcPartitioner::grid_shape(32), (std::pair<PartitionId, PartitionId>{4, 8}));
  EXPECT_EQ(CvcPartitioner::grid_shape(7), (std::pair<PartitionId, PartitionId>{1, 7}));
  EXPECT_EQ(CvcPartitioner::grid_shape(16), (std::pair<PartitionId, PartitionId>{4, 4}));
  EXPECT_EQ(CvcPartitioner::grid_shape(1), (std::pair<PartitionId, PartitionId>{1, 1}));
}

TEST(Cvc, VertexReplicasBoundedByGridCross) {
  const Graph g = gen::chung_lu(1000, 10000, 2.0, false, 6);
  const CvcPartitioner cvc;
  PartitionConfig c;
  c.num_parts = 12;  // 3x4 grid: a vertex touches <= r + c - 1 = 6 parts
  const auto part = cvc.partition(g, c);
  std::vector<std::set<PartitionId>> parts_of(g.num_vertices());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    parts_of[g.edge(e).src].insert(part.part_of_edge[e]);
    parts_of[g.edge(e).dst].insert(part.part_of_edge[e]);
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(parts_of[v].size(), 6u);
  }
}

// --- Ginger / HDRF behavioural expectations ---------------------------------

TEST(Ginger, BeatsRandomOnReplication) {
  const Graph g = gen::chung_lu(2000, 16000, 2.3, false, 12);
  PartitionConfig c;
  c.num_parts = 8;
  const auto ginger =
      compute_metrics(g, make_partitioner("ginger")->partition(g, c));
  const auto random =
      compute_metrics(g, make_partitioner("random")->partition(g, c));
  EXPECT_LT(ginger.replication_factor, random.replication_factor);
}

TEST(Hdrf, BeatsRandomOnReplicationAndStaysBalanced) {
  const Graph g = gen::chung_lu(2000, 16000, 2.3, false, 12);
  PartitionConfig c;
  c.num_parts = 8;
  const auto hdrf =
      compute_metrics(g, make_partitioner("hdrf")->partition(g, c));
  const auto random =
      compute_metrics(g, make_partitioner("random")->partition(g, c));
  EXPECT_LT(hdrf.replication_factor, random.replication_factor);
  EXPECT_LT(hdrf.edge_imbalance, 1.2);
}

// --- NE ----------------------------------------------------------------------

TEST(Ne, EdgeBalancedWithLowReplication) {
  const Graph g = gen::chung_lu(2000, 16000, 2.3, false, 13);
  PartitionConfig c;
  c.num_parts = 8;
  const auto ne = compute_metrics(g, make_partitioner("ne")->partition(g, c));
  const auto random =
      compute_metrics(g, make_partitioner("random")->partition(g, c));
  EXPECT_LT(ne.edge_imbalance, 1.15) << "NE balances edges by construction";
  EXPECT_LT(ne.replication_factor, random.replication_factor)
      << "NE keeps local structure";
}

TEST(Ne, VertexImbalanceGrowsWithSkew) {
  PartitionConfig c;
  c.num_parts = 8;
  const Graph skewed = gen::chung_lu(3000, 24000, 2.0, false, 14);
  const Graph road = gen::road_grid(55, 55, 0.92, 14);
  const auto m_skewed =
      compute_metrics(skewed, make_partitioner("ne")->partition(skewed, c));
  const auto m_road =
      compute_metrics(road, make_partitioner("ne")->partition(road, c));
  EXPECT_GT(m_skewed.vertex_imbalance, m_road.vertex_imbalance);
}

}  // namespace
}  // namespace ebv
