#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/transforms.h"

namespace ebv {
namespace {

TEST(Transforms, TransposeSwapsEndpointsAndKeepsWeights) {
  const Graph g(3, {{0, 1}, {1, 2}}, {2.0f, 3.0f});
  const Graph t = transpose(g);
  EXPECT_EQ(t.edge(0), (Edge{1, 0}));
  EXPECT_EQ(t.edge(1), (Edge{2, 1}));
  EXPECT_FLOAT_EQ(t.weight(0), 2.0f);
  EXPECT_FLOAT_EQ(t.weight(1), 3.0f);
}

TEST(Transforms, TransposeIsInvolutive) {
  const Graph g = gen::chung_lu(200, 1500, 2.4, false, 1);
  const Graph tt = transpose(transpose(g));
  ASSERT_EQ(tt.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) EXPECT_EQ(tt.edge(e), g.edge(e));
}

TEST(Transforms, InducedSubgraphKeepsInternalEdgesOnly) {
  // Path 0-1-2-3; keep {1,2}.
  const Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  std::vector<VertexId> old_ids;
  const Graph sub = induced_subgraph(g, {0, 1, 1, 0}, &old_ids);
  EXPECT_EQ(sub.num_vertices(), 2u);
  EXPECT_EQ(sub.num_edges(), 1u);
  EXPECT_EQ(sub.edge(0), (Edge{0, 1}));
  EXPECT_EQ(old_ids, (std::vector<VertexId>{1, 2}));
}

TEST(Transforms, InducedSubgraphRejectsBadMask) {
  const Graph g(3, {{0, 1}});
  EXPECT_THROW(induced_subgraph(g, {1, 1}), std::invalid_argument);
}

TEST(Transforms, LargestComponentPicksGiant) {
  // Two components: triangle {0,1,2} and edge {3,4}.
  const Graph g(5, {{0, 1}, {1, 2}, {2, 0}, {3, 4}});
  std::vector<VertexId> old_ids;
  const Graph giant = largest_component(g, &old_ids);
  EXPECT_EQ(giant.num_vertices(), 3u);
  EXPECT_EQ(giant.num_edges(), 3u);
  EXPECT_EQ(old_ids, (std::vector<VertexId>{0, 1, 2}));
}

TEST(Transforms, LargestComponentOfConnectedGraphIsWholeGraph) {
  const Graph g = gen::road_grid(10, 10, 1.0, 2);
  const Graph giant = largest_component(g);
  EXPECT_EQ(giant.num_vertices(), g.num_vertices());
  EXPECT_EQ(giant.num_edges(), g.num_edges());
}

TEST(Transforms, FilterByDegreeDropsHubs) {
  // Star 0->{1..4} plus edge 5-6.
  const Graph g(7, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {5, 6}});
  const Graph filtered = filter_by_degree(g, 0, 2);
  // Hub 0 (degree 4) removed; its leaves survive as isolated vertices.
  EXPECT_EQ(filtered.num_vertices(), 6u);
  EXPECT_EQ(filtered.num_edges(), 1u);
}

TEST(Transforms, RelabelByDegreePutsHubFirst) {
  const Graph g(5, {{3, 0}, {3, 1}, {3, 2}, {0, 1}});
  std::vector<VertexId> old_ids;
  const Graph relabelled = relabel_by_degree(g, &old_ids);
  EXPECT_EQ(old_ids[0], 3u) << "vertex 3 has the highest degree";
  // Degree multiset is preserved.
  EXPECT_EQ(relabelled.degree(0), g.degree(3));
}

TEST(Transforms, RelabelPreservesStructure) {
  const Graph g = gen::chung_lu(300, 2500, 2.3, false, 3);
  std::vector<VertexId> old_ids;
  const Graph relabelled = relabel_by_degree(g, &old_ids);
  ASSERT_EQ(relabelled.num_edges(), g.num_edges());
  // Edge k in the relabelled graph maps back to edge k in the original.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(old_ids[relabelled.edge(e).src], g.edge(e).src);
    EXPECT_EQ(old_ids[relabelled.edge(e).dst], g.edge(e).dst);
  }
}

TEST(Transforms, RandomWeightsInRangeAndDeterministic) {
  const Graph g = gen::erdos_renyi(100, 500, 4);
  const Graph a = with_random_weights(g, 2.0f, 5.0f, 7);
  const Graph b = with_random_weights(g, 2.0f, 5.0f, 7);
  ASSERT_TRUE(a.has_weights());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_GE(a.weight(e), 2.0f);
    EXPECT_LE(a.weight(e), 5.0f);
    EXPECT_FLOAT_EQ(a.weight(e), b.weight(e));
  }
}

TEST(Transforms, RandomWeightsRejectEmptyInterval) {
  const Graph g(2, {{0, 1}});
  EXPECT_THROW(with_random_weights(g, 5.0f, 2.0f, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ebv
