// Protocol-level tests of the BSP runtime using purpose-built tiny
// programs, independent of the real applications.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "bsp/runtime.h"
#include "graph/generators.h"
#include "partition/registry.h"

namespace ebv {
namespace {

using bsp::BspRuntime;
using bsp::DistributedGraph;
using bsp::RunStats;
using bsp::Value;
using bsp::WorkerContext;

EdgePartition round_robin(const Graph& g, PartitionId p) {
  EdgePartition part{p, std::vector<PartitionId>(g.num_edges())};
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    part.part_of_edge[e] = static_cast<PartitionId>(e % p);
  }
  return part;
}

/// Propagates the maximum vertex id one hop per superstep (no local
/// iteration): a minimal monotone program exercising the sync protocol.
class MaxOneHop final : public bsp::SubgraphProgram {
 public:
  [[nodiscard]] std::string name() const override { return "max1hop"; }
  [[nodiscard]] Value init_value(VertexId global) const override {
    return static_cast<Value>(global);
  }
  [[nodiscard]] Value combine(Value a, Value b) const override {
    return a > b ? a : b;
  }
  void compute(WorkerContext& ctx, std::uint32_t superstep) const override {
    const auto& ls = ctx.local();
    std::vector<VertexId> frontier;
    if (superstep == 0) {
      frontier.resize(ls.num_vertices());
      for (VertexId v = 0; v < ls.num_vertices(); ++v) frontier[v] = v;
    } else {
      frontier = ctx.updated();
    }
    std::vector<std::uint8_t> changed(ls.num_vertices(), 0);
    for (const VertexId v : frontier) {
      for (const VertexId w : ls.both_csr.neighbors(v)) {
        ctx.add_work(1);
        if (ctx.value(v) > ctx.value(w)) {
          ctx.set_value(w, ctx.value(v));
          changed[w] = 1;
        }
      }
    }
    for (VertexId v = 0; v < ls.num_vertices(); ++v) {
      if (changed[v] != 0 && ls.is_replicated[v] != 0) ctx.emit(v, ctx.value(v));
    }
  }
};

/// Counts supersteps; used to verify fixed_supersteps handling.
class FixedRounds final : public bsp::SubgraphProgram {
 public:
  explicit FixedRounds(std::uint32_t rounds) : rounds_(rounds) {}
  [[nodiscard]] std::string name() const override { return "fixed"; }
  [[nodiscard]] Value init_value(VertexId) const override { return 0.0; }
  [[nodiscard]] Value combine(Value a, Value b) const override {
    return a + b;
  }
  [[nodiscard]] bool combine_with_current() const override { return false; }
  [[nodiscard]] std::optional<std::uint32_t> fixed_supersteps()
      const override {
    return rounds_;
  }
  void compute(WorkerContext& ctx, std::uint32_t) const override {
    ctx.add_work(1);
  }

 private:
  std::uint32_t rounds_;
};

/// Emits a NaN on the first superstep — the halting-hazard regression
/// program (NaN != NaN would otherwise burn max_supersteps).
class NanEmitter final : public bsp::SubgraphProgram {
 public:
  [[nodiscard]] std::string name() const override { return "nan"; }
  [[nodiscard]] Value init_value(VertexId) const override { return 0.0; }
  [[nodiscard]] Value combine(Value a, Value b) const override {
    return a + b;
  }
  void compute(WorkerContext& ctx, std::uint32_t superstep) const override {
    if (superstep > 0) return;
    const auto& ls = ctx.local();
    for (VertexId v = 0; v < ls.num_vertices(); ++v) {
      ctx.emit(v, std::numeric_limits<Value>::quiet_NaN());
    }
  }
};

TEST(Runtime, SingleWorkerProducesNoMessages) {
  const Graph g = gen::erdos_renyi(100, 600, 1);
  const DistributedGraph dist(g, round_robin(g, 1));
  const BspRuntime runtime;
  const RunStats stats = runtime.run(dist, MaxOneHop());
  EXPECT_EQ(stats.total_messages, 0u);
  EXPECT_GT(stats.supersteps, 0u);
}

TEST(Runtime, ConvergesToGlobalMaxAcrossWorkers) {
  const Graph g = gen::erdos_renyi(200, 2000, 2);  // almost surely connected
  const DistributedGraph dist(g, round_robin(g, 4));
  const BspRuntime runtime;
  const RunStats stats = runtime.run(dist, MaxOneHop());
  // Every covered vertex in the giant component must reach the global max
  // of its component; spot-check that values only grew.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(stats.values[v], static_cast<Value>(v));
  }
  EXPECT_GT(stats.total_messages, 0u);
}

TEST(Runtime, FixedSuperstepsAreHonoured) {
  const Graph g = gen::erdos_renyi(50, 300, 3);
  const DistributedGraph dist(g, round_robin(g, 2));
  const BspRuntime runtime;
  const RunStats stats = runtime.run(dist, FixedRounds(7));
  EXPECT_EQ(stats.supersteps, 7u);
}

TEST(Runtime, StatsShapeIsConsistent) {
  const Graph g = gen::erdos_renyi(150, 1200, 4);
  const DistributedGraph dist(g, round_robin(g, 3));
  const BspRuntime runtime;
  const RunStats stats = runtime.run(dist, MaxOneHop());
  ASSERT_EQ(stats.steps.size(), stats.supersteps);
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  for (const auto& step : stats.steps) {
    ASSERT_EQ(step.size(), 3u);
    for (const auto& w : step) {
      sent += w.messages_sent;
      received += w.messages_received;
    }
  }
  EXPECT_EQ(sent, stats.total_messages);
  EXPECT_EQ(received, stats.total_messages)
      << "every message sent must be received";
  std::uint64_t per_worker_total = 0;
  for (const auto m : stats.messages_sent_per_worker) per_worker_total += m;
  EXPECT_EQ(per_worker_total, stats.total_messages);
}

TEST(Runtime, StatsInvariantsRecomputeExactly) {
  // RunStats redundancy pins: the aggregate fields must be EXACTLY
  // recomputable from the per-superstep, per-worker matrix.
  const Graph g = gen::chung_lu(300, 2400, 2.3, false, 12);
  const PartitionId p = 5;
  const DistributedGraph dist(g, round_robin(g, p));
  const bsp::RunOptions opts;  // default cost model
  const RunStats stats = BspRuntime(opts).run(dist, MaxOneHop());

  // steps dimensions are supersteps × p.
  ASSERT_EQ(stats.steps.size(), stats.supersteps);
  for (const auto& step : stats.steps) ASSERT_EQ(step.size(), p);

  // total_messages == Σ messages_sent_per_worker.
  ASSERT_EQ(stats.messages_sent_per_worker.size(), p);
  std::uint64_t per_worker = 0;
  for (const auto m : stats.messages_sent_per_worker) per_worker += m;
  EXPECT_EQ(stats.total_messages, per_worker);
  EXPECT_GT(stats.total_messages, 0u);
  // Combining is off, so the raw count is the wire count.
  EXPECT_EQ(stats.raw_messages, stats.total_messages);

  // execution_seconds == Σ_k (max_i(comp+comm) + latency), recomputed in
  // the runtime's own association order — exact double equality, not
  // approximate.
  double execution = 0.0;
  double delta_c = 0.0;
  double comp = 0.0;
  double comm = 0.0;
  for (const auto& step : stats.steps) {
    double mx = 0.0;
    double mn = std::numeric_limits<double>::infinity();
    for (const auto& w : step) {
      const double t = w.comp_seconds + w.comm_seconds;
      mx = std::max(mx, t);
      mn = std::min(mn, t);
    }
    execution += mx + opts.cost_model.latency_seconds();
    delta_c += mx - mn;
    for (const auto& w : step) {
      comp += w.comp_seconds;
      comm += w.comm_seconds;
    }
  }
  EXPECT_EQ(stats.execution_seconds, execution);
  EXPECT_EQ(stats.delta_c_seconds, delta_c);
  EXPECT_EQ(stats.comp_seconds, comp / p);
  EXPECT_EQ(stats.comm_seconds, comm / p);
}

TEST(Runtime, ExecutionTimeDominatedBySlowestWorker) {
  const Graph g = gen::erdos_renyi(150, 1200, 5);
  const DistributedGraph dist(g, round_robin(g, 3));
  const BspRuntime runtime;
  const RunStats stats = runtime.run(dist, MaxOneHop());
  // execution >= comp average (max >= mean per superstep).
  EXPECT_GE(stats.execution_seconds + 1e-12,
            stats.comp_seconds + stats.comm_seconds);
  EXPECT_GE(stats.delta_c_seconds, 0.0);
}

TEST(Runtime, CostModelScalesCommCost) {
  const Graph g = gen::chung_lu(300, 3000, 2.3, false, 6);
  const DistributedGraph dist(g, round_robin(g, 4));
  bsp::RunOptions cheap;
  cheap.cost_model.msg_remote_us = 0.1;
  cheap.cost_model.msg_local_us = 0.1;
  bsp::RunOptions pricey;
  pricey.cost_model.msg_remote_us = 10.0;
  pricey.cost_model.msg_local_us = 10.0;
  const RunStats a = BspRuntime(cheap).run(dist, MaxOneHop());
  const RunStats b = BspRuntime(pricey).run(dist, MaxOneHop());
  EXPECT_EQ(a.total_messages, b.total_messages) << "protocol is cost-blind";
  EXPECT_LT(a.comm_seconds, b.comm_seconds);
}

TEST(Runtime, IntraNodeMessagesAreCheaper) {
  bsp::ClusterCostModel model;
  model.workers_per_node = 2;
  EXPECT_TRUE(model.same_node(0, 1));
  EXPECT_FALSE(model.same_node(1, 2));
  EXPECT_LT(model.comm_seconds(10, 0), model.comm_seconds(0, 10));
}

TEST(Runtime, MaxSuperstepsGuardStopsRunaway) {
  // FixedRounds(1000000) with the guard at 5 must stop at 5.
  const Graph g = gen::erdos_renyi(20, 60, 7);
  const DistributedGraph dist(g, round_robin(g, 2));
  bsp::RunOptions opts;
  opts.max_supersteps = 5;
  const RunStats stats = BspRuntime(opts).run(dist, FixedRounds(1'000'000));
  EXPECT_EQ(stats.supersteps, 5u);
}

TEST(Runtime, ParallelPolicyMatchesSequentialExactly) {
  const Graph g = gen::chung_lu(400, 3000, 2.3, false, 9);
  const DistributedGraph dist(g, round_robin(g, 6));
  bsp::RunOptions sequential;
  sequential.policy = bsp::ExecutionPolicy::kSequential;
  bsp::RunOptions parallel;
  parallel.policy = bsp::ExecutionPolicy::kParallel;
  const RunStats a = BspRuntime(sequential).run(dist, MaxOneHop());
  const RunStats b = BspRuntime(parallel).run(dist, MaxOneHop());
  EXPECT_EQ(a.supersteps, b.supersteps);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(a.execution_seconds, b.execution_seconds)
      << "virtual time must not depend on the execution policy";
}

TEST(Runtime, UncoveredVerticesKeepInitValue) {
  const Graph g(6, {{0, 1}});
  EdgePartition part{2, {0}};
  const DistributedGraph dist(g, part);
  const RunStats stats = BspRuntime().run(dist, MaxOneHop());
  EXPECT_EQ(stats.values[5], 5.0);
}

TEST(Runtime, NanProducingProgramFailsFast) {
  // A NaN apply() result makes `next != value` true in every superstep
  // (NaN never compares equal), so the change-driven halting test could
  // never converge. The runtime must detect it and throw immediately —
  // on both the single-copy and the master-merge apply paths, at any
  // residency budget.
  const Graph g = gen::erdos_renyi(60, 300, 11);
  const DistributedGraph dist(g, round_robin(g, 3));
  EXPECT_THROW(BspRuntime().run(dist, NanEmitter()), std::runtime_error);

  bsp::RunOptions bounded;
  bounded.resident_workers = 1;
  EXPECT_THROW(BspRuntime(bounded).run(dist, NanEmitter()),
               std::runtime_error);
}

TEST(Runtime, ZeroWorkersPerNodeIsRejectedAtRunEntry) {
  // workers_per_node = 0 would be integer-division UB inside
  // same_node(); the runtime validates the cost model up front.
  const Graph g = gen::erdos_renyi(20, 80, 12);
  const DistributedGraph dist(g, round_robin(g, 2));
  bsp::RunOptions opts;
  opts.cost_model.workers_per_node = 0;
  EXPECT_THROW(BspRuntime(opts).run(dist, MaxOneHop()),
               std::invalid_argument);
}

TEST(Runtime, AsyncRejectsCombining) {
  const Graph g = gen::erdos_renyi(20, 80, 13);
  const DistributedGraph dist(g, round_robin(g, 2));
  bsp::RunOptions opts;
  opts.scheduler = bsp::SchedulerMode::kAsync;
  opts.combine_messages = true;
  EXPECT_THROW(BspRuntime(opts).run(dist, MaxOneHop()),
               std::invalid_argument);
}

TEST(Runtime, AsyncMatchesStrictExactlyForMaxCombine) {
  // The async scheduler relaxes mailbox arrival order, not delivery, so
  // an order-insensitive combine (max) must reproduce the strict run
  // bit-for-bit: values, message counts, supersteps AND virtual time —
  // sequentially and on a work-stealing team.
  const Graph g = gen::chung_lu(400, 3000, 2.3, false, 21);
  const DistributedGraph dist(g, round_robin(g, 6));
  const RunStats strict = BspRuntime().run(dist, MaxOneHop());

  for (const auto policy :
       {bsp::ExecutionPolicy::kSequential, bsp::ExecutionPolicy::kParallel}) {
    bsp::RunOptions opts;
    opts.scheduler = bsp::SchedulerMode::kAsync;
    opts.policy = policy;
    const RunStats async = BspRuntime(opts).run(dist, MaxOneHop());
    EXPECT_EQ(async.supersteps, strict.supersteps);
    EXPECT_EQ(async.total_messages, strict.total_messages);
    EXPECT_EQ(async.raw_messages, strict.raw_messages);
    EXPECT_EQ(async.values, strict.values);
    EXPECT_EQ(async.execution_seconds, strict.execution_seconds);
    EXPECT_EQ(async.messages_sent_per_worker, strict.messages_sent_per_worker);
  }
}

}  // namespace
}  // namespace ebv
