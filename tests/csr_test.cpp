#include <gtest/gtest.h>

#include <algorithm>

#include "graph/csr.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace ebv {
namespace {

Graph diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
  return Graph(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
}

TEST(Csr, OutDirection) {
  const auto csr = CsrGraph::build(diamond(), CsrGraph::Direction::kOut);
  EXPECT_EQ(csr.num_vertices(), 4u);
  EXPECT_EQ(csr.num_entries(), 4u);
  EXPECT_EQ(csr.degree(0), 2u);
  EXPECT_EQ(csr.degree(3), 0u);
  const auto n0 = csr.neighbors(0);
  EXPECT_EQ(std::vector<VertexId>(n0.begin(), n0.end()),
            (std::vector<VertexId>{1, 2}));
}

TEST(Csr, InDirection) {
  const auto csr = CsrGraph::build(diamond(), CsrGraph::Direction::kIn);
  EXPECT_EQ(csr.degree(3), 2u);
  EXPECT_EQ(csr.degree(0), 0u);
  const auto n3 = csr.neighbors(3);
  EXPECT_EQ(std::vector<VertexId>(n3.begin(), n3.end()),
            (std::vector<VertexId>{1, 2}));
}

TEST(Csr, BothDirectionSymmetrises) {
  const auto csr = CsrGraph::build(diamond(), CsrGraph::Direction::kBoth);
  EXPECT_EQ(csr.num_entries(), 8u);
  EXPECT_EQ(csr.degree(0), 2u);
  EXPECT_EQ(csr.degree(3), 2u);
  EXPECT_EQ(csr.degree(1), 2u);
}

TEST(Csr, EdgeIdsRecoverOriginatingEdge) {
  const Graph g = diamond();
  const auto csr = CsrGraph::build(g, CsrGraph::Direction::kOut);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto neighbors = csr.neighbors(v);
    const auto ids = csr.edge_ids(v);
    ASSERT_EQ(neighbors.size(), ids.size());
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      EXPECT_EQ(g.edge(ids[k]).src, v);
      EXPECT_EQ(g.edge(ids[k]).dst, neighbors[k]);
    }
  }
}

TEST(Csr, EdgeIdsInBothDirectionPointBack) {
  const Graph g = diamond();
  const auto csr = CsrGraph::build(g, CsrGraph::Direction::kBoth);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto neighbors = csr.neighbors(v);
    const auto ids = csr.edge_ids(v);
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      const Edge& e = g.edge(ids[k]);
      const bool forward = e.src == v && e.dst == neighbors[k];
      const bool backward = e.dst == v && e.src == neighbors[k];
      EXPECT_TRUE(forward || backward);
    }
  }
}

TEST(Csr, EmptyGraph) {
  const auto csr = CsrGraph::build(Graph(), CsrGraph::Direction::kOut);
  EXPECT_EQ(csr.num_vertices(), 0u);
  EXPECT_EQ(csr.num_entries(), 0u);
}

TEST(Csr, IsolatedVerticesHaveEmptyLists) {
  const Graph g(5, {{0, 1}});
  const auto csr = CsrGraph::build(g, CsrGraph::Direction::kBoth);
  EXPECT_EQ(csr.degree(2), 0u);
  EXPECT_EQ(csr.degree(4), 0u);
  EXPECT_TRUE(csr.neighbors(3).empty());
}

TEST(Csr, TotalEntriesMatchDegreesOnRandomGraph) {
  const Graph g = gen::erdos_renyi(200, 1000, 7);
  const auto out = CsrGraph::build(g, CsrGraph::Direction::kOut);
  const auto in = CsrGraph::build(g, CsrGraph::Direction::kIn);
  std::uint64_t out_total = 0;
  std::uint64_t in_total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(out.degree(v), g.out_degree(v));
    EXPECT_EQ(in.degree(v), g.in_degree(v));
    out_total += out.degree(v);
    in_total += in.degree(v);
  }
  EXPECT_EQ(out_total, g.num_edges());
  EXPECT_EQ(in_total, g.num_edges());
}

TEST(Csr, BuildFromSpanMatchesGraphBuild) {
  const Graph g = diamond();
  const auto a = CsrGraph::build(g, CsrGraph::Direction::kOut);
  const auto b =
      CsrGraph::build(g.num_vertices(), g.edges(), CsrGraph::Direction::kOut);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    EXPECT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()));
  }
}

TEST(Csr, RejectsOutOfRangeEndpoints) {
  const std::vector<Edge> edges = {{0, 9}};
  EXPECT_THROW(CsrGraph::build(3, edges, CsrGraph::Direction::kOut),
               std::invalid_argument);
}

}  // namespace
}  // namespace ebv
