// Property tests for the paper's Theorems 1 and 2: the realised edge and
// vertex imbalance factors of EBV never exceed the closed-form worst-case
// bounds, across graph families × part counts × (α, β) settings.
#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.h"
#include "partition/ebv.h"
#include "partition/metrics.h"

namespace ebv {
namespace {

struct Case {
  std::string graph_family;
  PartitionId parts;
  double alpha;
  double beta;
  EdgeOrder order;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string order;
  switch (c.order) {
    case EdgeOrder::kSortedAscending: order = "asc"; break;
    case EdgeOrder::kSortedDescending: order = "desc"; break;
    case EdgeOrder::kNatural: order = "nat"; break;
    case EdgeOrder::kRandom: order = "rand"; break;
  }
  return c.graph_family + "_p" + std::to_string(c.parts) + "_a" +
         std::to_string(static_cast<int>(c.alpha * 100)) + "_b" +
         std::to_string(static_cast<int>(c.beta * 100)) + "_" + order;
}

Graph make_graph(const std::string& family) {
  if (family == "powerlaw") return gen::chung_lu(1500, 12000, 2.2, false, 11);
  if (family == "uniform") return gen::erdos_renyi(1500, 12000, 11);
  if (family == "road") return gen::road_grid(40, 40, 0.9, 11);
  if (family == "ba") return gen::barabasi_albert(1500, 4, 11);
  ADD_FAILURE() << "unknown family " << family;
  return Graph();
}

class EbvTheorems : public testing::TestWithParam<Case> {};

TEST_P(EbvTheorems, ImbalanceFactorsRespectUpperBounds) {
  const Case& c = GetParam();
  const Graph g = make_graph(c.graph_family);
  PartitionConfig config;
  config.num_parts = c.parts;
  config.alpha = c.alpha;
  config.beta = c.beta;
  config.edge_order = c.order;

  const EbvPartitioner ebv;
  const EdgePartition part = ebv.partition(g, config);
  const PartitionMetrics m = compute_metrics(g, part);

  const double edge_bound = EbvPartitioner::edge_imbalance_bound(g, config);
  const double vertex_bound =
      EbvPartitioner::vertex_imbalance_bound(g, config, m.total_replicas);

  EXPECT_LE(m.edge_imbalance, edge_bound + 1e-9)
      << "Theorem 1 violated: " << m.edge_imbalance << " > " << edge_bound;
  EXPECT_LE(m.vertex_imbalance, vertex_bound + 1e-9)
      << "Theorem 2 violated: " << m.vertex_imbalance << " > " << vertex_bound;

  // Bounds are nontrivial (>= 1) by construction.
  EXPECT_GE(edge_bound, 1.0);
  EXPECT_GE(vertex_bound, 1.0);
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (const std::string family : {"powerlaw", "uniform", "road", "ba"}) {
    for (const PartitionId p : {2u, 4u, 8u, 16u}) {
      cases.push_back({family, p, 1.0, 1.0, EdgeOrder::kSortedAscending});
    }
  }
  // Hyper-parameter sweep on the power-law family. (α=1, β=1, p=8 is
  // already covered by the family sweep above.)
  for (const double alpha : {0.25, 1.0, 4.0}) {
    for (const double beta : {0.25, 1.0, 4.0}) {
      if (alpha == 1.0 && beta == 1.0) continue;
      cases.push_back({"powerlaw", 8, alpha, beta, EdgeOrder::kSortedAscending});
    }
  }
  // Adversarial orders must also respect the worst-case bounds.
  for (const EdgeOrder order :
       {EdgeOrder::kNatural, EdgeOrder::kRandom, EdgeOrder::kSortedDescending}) {
    cases.push_back({"powerlaw", 8, 1.0, 1.0, order});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EbvTheorems, testing::ValuesIn(make_cases()),
                         case_name);

TEST(EbvTheoremBounds, TighterWithLargerAlpha) {
  const Graph g = gen::chung_lu(1000, 8000, 2.3, false, 1);
  PartitionConfig loose;
  loose.num_parts = 8;
  loose.alpha = 0.5;
  PartitionConfig tight = loose;
  tight.alpha = 8.0;
  EXPECT_LT(EbvPartitioner::edge_imbalance_bound(g, tight),
            EbvPartitioner::edge_imbalance_bound(g, loose));
}

TEST(EbvTheoremBounds, RequirePositiveHyperparameters) {
  const Graph g = gen::erdos_renyi(100, 400, 1);
  PartitionConfig c;
  c.num_parts = 4;
  c.alpha = 0.0;
  EXPECT_THROW(EbvPartitioner::edge_imbalance_bound(g, c),
               std::invalid_argument);
  c.alpha = 1.0;
  c.beta = 0.0;
  EXPECT_THROW(EbvPartitioner::vertex_imbalance_bound(g, c, 100),
               std::invalid_argument);
}

}  // namespace
}  // namespace ebv
