// Span tracer: JSON well-formedness (a minimal parser, no external
// deps), per-track span nesting, the disarmed-tracer-is-free contract,
// and the task-graph wiring (steal + park instants on rank tracks) that
// `ebvpart run --trace` depends on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/task_graph.h"
#include "obs/trace.h"

namespace ebv::obs::trace {
namespace {

// --- A minimal JSON reader --------------------------------------------
// Just enough to validate the tracer's output shape: objects, arrays,
// strings, numbers. Throws std::runtime_error on malformed input, which
// is exactly the failure the test wants to catch.

struct JsonValue {
  enum class Type { kObject, kArray, kString, kNumber };
  Type type = Type::kNumber;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;
  std::string string;
  double number = 0.0;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing data");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      default: return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      JsonValue key = string_value();
      expect(':');
      v.object.emplace(key.string, value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    expect('"');
    while (true) {
      if (pos_ >= text_.size()) throw std::runtime_error("unclosed string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= text_.size()) throw std::runtime_error("bad escape");
        v.string.push_back(text_[pos_++]);
        continue;
      }
      v.string.push_back(c);
    }
  }

  JsonValue number() {
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("expected number");
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

struct ParsedEvent {
  std::string name;
  std::string ph;
  double ts = 0.0;
  double dur = 0.0;
  double tid = 0.0;
};

std::vector<ParsedEvent> parse_events(const std::string& json) {
  JsonParser parser(json);
  const JsonValue doc = parser.parse();
  EXPECT_EQ(doc.type, JsonValue::Type::kObject);
  const auto it = doc.object.find("traceEvents");
  EXPECT_NE(it, doc.object.end());
  std::vector<ParsedEvent> out;
  for (const JsonValue& e : it->second.array) {
    ParsedEvent ev;
    ev.name = e.object.at("name").string;
    ev.ph = e.object.at("ph").string;
    if (e.object.count("ts") != 0) ev.ts = e.object.at("ts").number;
    if (e.object.count("dur") != 0) ev.dur = e.object.at("dur").number;
    if (e.object.count("tid") != 0) ev.tid = e.object.at("tid").number;
    out.push_back(std::move(ev));
  }
  return out;
}

TEST(Trace, DisabledByDefaultAndRendersEmpty) {
  EXPECT_FALSE(enabled());
  {
    const Span span("should-not-appear");
    instant("also-not");
  }
  start();
  const std::string json = stop_and_render();
  const std::vector<ParsedEvent> events = parse_events(json);
  // Only per-thread name metadata may appear; no work events.
  for (const ParsedEvent& e : events) EXPECT_EQ(e.ph, "M");
  EXPECT_FALSE(enabled());
}

TEST(Trace, SpansAndInstantsRender) {
  start();
  EXPECT_TRUE(enabled());
  {
    const Span outer("outer", 7);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      const Span inner("inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    instant("mark", 3);
  }
  const std::string json = stop_and_render();
  const std::vector<ParsedEvent> events = parse_events(json);

  std::map<std::string, ParsedEvent> by_name;
  for (const ParsedEvent& e : events) by_name[e.name] = e;
  ASSERT_EQ(by_name.count("outer"), 1u);
  ASSERT_EQ(by_name.count("inner"), 1u);
  ASSERT_EQ(by_name.count("mark"), 1u);
  EXPECT_EQ(by_name["outer"].ph, "X");
  EXPECT_EQ(by_name["inner"].ph, "X");
  EXPECT_EQ(by_name["mark"].ph, "i");

  // Nesting: inner lies strictly within outer on the same track.
  const ParsedEvent& outer = by_name["outer"];
  const ParsedEvent& inner = by_name["inner"];
  EXPECT_EQ(outer.tid, inner.tid);
  EXPECT_GE(inner.ts, outer.ts);
  EXPECT_LE(inner.ts + inner.dur, outer.ts + outer.dur + 1e-3);
  EXPECT_GE(outer.dur, inner.dur);
}

TEST(Trace, EventsFromEarlierEpochAreDropped) {
  start();
  { const Span span("stale"); }
  (void)stop_and_render();
  // A fresh trace must not resurrect the earlier epoch's events.
  start();
  { const Span span("fresh"); }
  const std::string json = stop_and_render();
  EXPECT_EQ(json.find("stale"), std::string::npos);
  EXPECT_NE(json.find("fresh"), std::string::npos);
}

TEST(Trace, ThreadTrackGuardAssignsAndRestores) {
  EXPECT_EQ(thread_track(), 0u);
  start();
  {
    const ThreadTrackGuard guard(5);
    EXPECT_EQ(thread_track(), 5u);
    const Span span("on-track-5");
  }
  EXPECT_EQ(thread_track(), 0u);
  const std::string json = stop_and_render();
  const std::vector<ParsedEvent> events = parse_events(json);
  bool found = false;
  for (const ParsedEvent& e : events) {
    if (e.name == "on-track-5") {
      found = true;
      EXPECT_EQ(e.tid, 5.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Trace, RetrospectiveCompleteUsesGivenTimestamps) {
  start();
  const auto begin = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  const auto end = std::chrono::steady_clock::now();
  complete("queue-wait", begin, end, 2);
  const std::string json = stop_and_render();
  const std::vector<ParsedEvent> events = parse_events(json);
  bool found = false;
  for (const ParsedEvent& e : events) {
    if (e.name == "queue-wait") {
      found = true;
      EXPECT_EQ(e.ph, "X");
      EXPECT_GE(e.dur, 2'000.0);  // at least ~3 ms, in microseconds
    }
  }
  EXPECT_TRUE(found);
}

TEST(Trace, TaskGraphEmitsStealAndParkOnRankTracks) {
  // One root task fans out to dependents that sleep ~1 ms each: the
  // non-owning ranks must steal to make progress, and with more ranks
  // than initially-ready tasks some park first. Pins the executor's
  // instrumentation (ThreadTrackGuard + steal/park instants).
  start();
  {
    TaskGraph g;
    const TaskGraph::TaskId root = g.add([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    });
    for (int i = 0; i < 16; ++i) {
      g.add(
          [] {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          },
          {root});
    }
    g.run(4);
  }
  const std::string json = stop_and_render();
  const std::vector<ParsedEvent> events = parse_events(json);
  std::size_t steals = 0;
  std::size_t parks = 0;
  std::vector<double> tids;
  for (const ParsedEvent& e : events) {
    if (e.name == "steal") ++steals;
    if (e.name == "park") ++parks;
    if (e.ph != "M") tids.push_back(e.tid);
  }
  // All 16 dependents become ready when the root finishes on one rank's
  // local deque; the idle ranks must have stolen or parked meanwhile.
  ASSERT_GT(steals + parks, 0u);
  // Rank tracks are 1-based (tid 0 is the main thread).
  ASSERT_FALSE(tids.empty());
  std::sort(tids.begin(), tids.end());
  EXPECT_GE(tids.back(), 1.0);
}

TEST(Trace, StopAndWriteProducesReadableFile) {
  start();
  { const Span span("file-span"); }
  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  stop_and_write(path);
  std::string content;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      content.append(buf, n);
    }
    std::fclose(f);
  }
  std::remove(path.c_str());
  const std::vector<ParsedEvent> events = parse_events(content);
  bool found = false;
  for (const ParsedEvent& e : events) found |= (e.name == "file-span");
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace ebv::obs::trace
