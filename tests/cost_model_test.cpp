#include <gtest/gtest.h>

#include <stdexcept>

#include "bsp/cost_model.h"

namespace ebv::bsp {
namespace {

TEST(CostModel, ZeroWorkersPerNodeIsRejected) {
  // workers_per_node = 0 would be integer-division UB in same_node();
  // validate() (called at BspRuntime::run entry) must reject it.
  ClusterCostModel m;
  m.workers_per_node = 0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.workers_per_node = 1;
  EXPECT_NO_THROW(m.validate());
}

TEST(CostModel, NodePlacementIsContiguous) {
  ClusterCostModel m;
  m.workers_per_node = 8;
  EXPECT_TRUE(m.same_node(0, 7));
  EXPECT_FALSE(m.same_node(7, 8));
  EXPECT_TRUE(m.same_node(8, 15));
  EXPECT_TRUE(m.same_node(3, 3));
}

TEST(CostModel, SingleWorkerPerNodeMakesEverythingRemote) {
  ClusterCostModel m;
  m.workers_per_node = 1;
  EXPECT_FALSE(m.same_node(0, 1));
  EXPECT_TRUE(m.same_node(2, 2));
}

TEST(CostModel, CompSecondsScalesLinearly) {
  const ClusterCostModel m;
  EXPECT_DOUBLE_EQ(m.comp_seconds(0), 0.0);
  EXPECT_DOUBLE_EQ(m.comp_seconds(2'000'000),
                   2.0 * m.comp_seconds(1'000'000));
}

TEST(CostModel, RemoteMessagesCostMoreThanLocal) {
  const ClusterCostModel m;
  EXPECT_GT(m.comm_seconds(0, 100), m.comm_seconds(100, 0));
  EXPECT_DOUBLE_EQ(m.comm_seconds(0, 0), 0.0);
}

TEST(CostModel, CommSecondsIsAdditive) {
  const ClusterCostModel m;
  EXPECT_DOUBLE_EQ(m.comm_seconds(10, 20),
                   m.comm_seconds(10, 0) + m.comm_seconds(0, 20));
}

TEST(CostModel, CalibrationRatioMatchesPaperOrderOfMagnitude) {
  // The paper's Table II has comm/comp ≈ 1/20 for CC over LiveJournal.
  // With our calibration, a workload touching E edges and sending ~E/5
  // messages must land in the same regime (within a factor of ~4).
  const ClusterCostModel m;
  const double comp = m.comp_seconds(1'000'000);
  const double comm = m.comm_seconds(0, 200'000);
  const double ratio = comm / comp;
  EXPECT_GT(ratio, 0.01);
  EXPECT_LT(ratio, 1.0);
}

TEST(CostModel, LatencyIndependentOfVolume) {
  ClusterCostModel m;
  m.superstep_latency_us = 500.0;
  EXPECT_DOUBLE_EQ(m.latency_seconds(), 5e-4);
}

}  // namespace
}  // namespace ebv::bsp
