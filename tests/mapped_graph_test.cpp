// EBVS snapshot format: round trips, canonical edge order, page-aligned
// mmap sections, and the negative paths (bad magic/version/endianness,
// truncation, hostile section tables).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/mapped_graph.h"

namespace ebv {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

/// The canonical (ascending (src, dst), stable) reordering a snapshot
/// applies — the reference the format is tested against.
Graph canonicalise(const Graph& g) {
  std::vector<EdgeId> order(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) order[e] = e;
  std::stable_sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    if (g.edge(a).src != g.edge(b).src) return g.edge(a).src < g.edge(b).src;
    return g.edge(a).dst < g.edge(b).dst;
  });
  std::vector<Edge> edges;
  std::vector<float> weights;
  for (const EdgeId e : order) {
    edges.push_back(g.edge(e));
    if (g.has_weights()) weights.push_back(g.weight(e));
  }
  Graph out(g.num_vertices(), std::move(edges), std::move(weights));
  out.set_name(g.name());
  return out;
}

void expect_view_equals_graph(const GraphView& v, const Graph& g) {
  ASSERT_EQ(v.num_vertices(), g.num_vertices());
  ASSERT_EQ(v.num_edges(), g.num_edges());
  ASSERT_EQ(v.has_weights(), g.has_weights());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(v.edge(e), g.edge(e)) << "edge " << e;
    EXPECT_FLOAT_EQ(v.weight(e), g.weight(e)) << "weight " << e;
  }
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    EXPECT_EQ(v.out_degree(u), g.out_degree(u)) << "out degree " << u;
    EXPECT_EQ(v.in_degree(u), g.in_degree(u)) << "in degree " << u;
  }
}

std::string write_sample(const std::string& file, bool weighted) {
  Graph g = weighted ? gen::road_grid(14, 14, 0.9, 5)
                     : gen::chung_lu(400, 3000, 2.4, false, 9);
  g.set_name("snapshot-sample");
  const std::string path = temp_path(file);
  io::write_snapshot_file(path, g);
  return path;
}

TEST(Snapshot, ResidentRoundTripIsCanonicalised) {
  Graph g = gen::chung_lu(300, 2500, 2.4, false, 5);
  g.set_name("round-trip");
  const std::string path = temp_path("ebvs_roundtrip.ebvs");
  io::write_snapshot_file(path, g);
  const Graph back = io::read_snapshot_file(path);
  EXPECT_EQ(back.name(), "round-trip");
  const Graph expected = canonicalise(g);
  ASSERT_EQ(back.num_edges(), expected.num_edges());
  for (EdgeId e = 0; e < expected.num_edges(); ++e) {
    EXPECT_EQ(back.edge(e), expected.edge(e));
  }
}

TEST(Snapshot, MappedViewMatchesResidentLoad) {
  const std::string path = write_sample("ebvs_mmap.ebvs", false);
  const Graph resident = io::read_snapshot_file(path);
  const MappedGraph mapped(path);
  mapped.validate();
  EXPECT_EQ(mapped.name(), "snapshot-sample");
  expect_view_equals_graph(mapped.view(), resident);
}

TEST(Snapshot, WeightedRoundTrip) {
  const std::string path = write_sample("ebvs_weighted.ebvs", true);
  const Graph resident = io::read_snapshot_file(path);
  ASSERT_TRUE(resident.has_weights());
  const MappedGraph mapped(path);
  mapped.validate();
  expect_view_equals_graph(mapped.view(), resident);
}

TEST(Snapshot, CsrOffsetsIndexTheEdgeSection) {
  const std::string path = write_sample("ebvs_csr.ebvs", false);
  const MappedGraph mapped(path);
  const auto offsets = mapped.csr_offsets();
  ASSERT_EQ(offsets.size(), mapped.num_vertices() + 1u);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), mapped.num_edges());
  for (VertexId v = 0; v < mapped.num_vertices(); ++v) {
    for (std::uint64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      EXPECT_EQ(mapped.edges()[e].src, v);
    }
  }
}

TEST(Snapshot, SectionsArePageAligned) {
  const std::string path = write_sample("ebvs_align.ebvs", true);
  const MappedGraph mapped(path);
  const GraphView v = mapped.view();
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.edges().data()) % 4096, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.weights().data()) % 4096, 0u);
  EXPECT_EQ(
      reinterpret_cast<std::uintptr_t>(mapped.csr_offsets().data()) % 4096,
      0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.out_degrees().data()) % 4096,
            0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.in_degrees().data()) % 4096,
            0u);
}

TEST(Snapshot, EmptyGraphRoundTrips) {
  const Graph g(5, {});
  const std::string path = temp_path("ebvs_empty.ebvs");
  io::write_snapshot_file(path, g);
  const MappedGraph mapped(path);
  mapped.validate();
  EXPECT_EQ(mapped.num_vertices(), 5u);
  EXPECT_EQ(mapped.num_edges(), 0u);
}

// ---- Negative paths -----------------------------------------------------

/// Copy the sample snapshot, overwrite `len` bytes at `offset`, return the
/// corrupted path.
std::string corrupt(const std::string& src, std::size_t offset,
                    const void* bytes, std::size_t len,
                    const std::string& out_name) {
  std::ifstream in(src, std::ios::binary);
  std::vector<char> data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_LE(offset + len, data.size());
  std::memcpy(data.data() + offset, bytes, len);
  const std::string out_path = temp_path(out_name);
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  return out_path;
}

TEST(Snapshot, RejectsMissingFile) {
  EXPECT_THROW(MappedGraph("/nonexistent/x.ebvs"), std::runtime_error);
  EXPECT_THROW(io::read_snapshot_file("/nonexistent/x.ebvs"),
               std::runtime_error);
}

TEST(Snapshot, RejectsBadMagic) {
  const std::string src = write_sample("ebvs_neg_src.ebvs", false);
  const char magic[4] = {'N', 'O', 'P', 'E'};
  const std::string bad = corrupt(src, 0, magic, 4, "ebvs_badmagic.ebvs");
  EXPECT_THROW(MappedGraph{bad}, std::runtime_error);
}

TEST(Snapshot, RejectsWrongVersion) {
  const std::string src = write_sample("ebvs_neg_src.ebvs", false);
  const std::uint32_t version = 999;
  const std::string bad =
      corrupt(src, 4, &version, sizeof version, "ebvs_badver.ebvs");
  EXPECT_THROW(MappedGraph{bad}, std::runtime_error);
}

TEST(Snapshot, RejectsForeignEndianness) {
  const std::string src = write_sample("ebvs_neg_src.ebvs", false);
  const std::uint32_t swapped = 0x0D0C0B0A;
  const std::string bad =
      corrupt(src, 8, &swapped, sizeof swapped, "ebvs_badend.ebvs");
  EXPECT_THROW(MappedGraph{bad}, std::runtime_error);
}

TEST(Snapshot, RejectsOversizedEdgeCount) {
  const std::string src = write_sample("ebvs_neg_src.ebvs", false);
  // num_edges lives at offset 24; claiming more edges than the section
  // holds must be caught by the section-table bounds check.
  const std::uint64_t huge = std::uint64_t{1} << 40;
  const std::string bad =
      corrupt(src, 24, &huge, sizeof huge, "ebvs_badcount.ebvs");
  EXPECT_THROW(MappedGraph{bad}, std::runtime_error);
}

TEST(Snapshot, RejectsEdgeCountWhoseByteSizeWraps) {
  const std::string src = write_sample("ebvs_neg_src.ebvs", false);
  // 2^61 edges: e64 * sizeof(Edge) wraps to 0 in 64 bits, so a naive
  // section-length comparison would pass. The count must be bounded by
  // the file size before any multiplication.
  const std::uint64_t huge = std::uint64_t{1} << 61;
  const std::string bad =
      corrupt(src, 24, &huge, sizeof huge, "ebvs_wrapcount.ebvs");
  EXPECT_THROW(MappedGraph{bad}, std::runtime_error);
}

TEST(Snapshot, RejectsOversizedVertexCount) {
  const std::string src = write_sample("ebvs_neg_src.ebvs", false);
  const std::uint64_t huge = std::uint64_t{1} << 33;  // > 32-bit id space
  const std::string bad =
      corrupt(src, 16, &huge, sizeof huge, "ebvs_badvcount.ebvs");
  EXPECT_THROW(MappedGraph{bad}, std::runtime_error);
}

TEST(Snapshot, RejectsTruncatedFile) {
  const std::string src = write_sample("ebvs_neg_src.ebvs", false);
  std::ifstream in(src, std::ios::binary);
  std::vector<char> data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{100}, std::size_t{4096},
        data.size() / 2}) {
    const std::string path = temp_path("ebvs_trunc.ebvs");
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_THROW(MappedGraph{path}, std::runtime_error)
        << "accepted a file truncated to " << keep << " bytes";
  }
}

TEST(Snapshot, ValidateCatchesOutOfRangeEndpoint) {
  const std::string src = write_sample("ebvs_neg_src.ebvs", false);
  // The edge section starts at the first page; clobber an endpoint with a
  // vertex id far beyond num_vertices. The header stays consistent, so
  // only validate() can notice.
  const std::uint32_t evil = 0x7FFFFFFF;
  const std::string bad =
      corrupt(src, 4096, &evil, sizeof evil, "ebvs_badedge.ebvs");
  const MappedGraph mapped(bad);
  EXPECT_THROW(mapped.validate(), std::runtime_error);
}

TEST(Snapshot, ValidateCatchesUnsortedEdges) {
  const std::string src = write_sample("ebvs_neg_src.ebvs", false);
  const MappedGraph good(src);
  ASSERT_GE(good.num_edges(), 2u);
  // Swap the first two edges (they differ — degrees stay intact, order
  // breaks). Self-test: find two adjacent distinct edges first.
  std::size_t pos = 0;
  while (pos + 1 < good.num_edges() &&
         good.edges()[pos] == good.edges()[pos + 1]) {
    ++pos;
  }
  ASSERT_LT(pos + 1, good.num_edges());
  const Edge swapped[2] = {good.edges()[pos + 1], good.edges()[pos]};
  const std::string bad = corrupt(src, 4096 + pos * sizeof(Edge), swapped,
                                  sizeof swapped, "ebvs_unsorted.ebvs");
  const MappedGraph mapped(bad);
  EXPECT_THROW(mapped.validate(), std::runtime_error);
}

}  // namespace
}  // namespace ebv
