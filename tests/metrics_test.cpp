#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.h"
#include "partition/metrics.h"

namespace ebv {
namespace {

TEST(Metrics, HandComputedTriangle) {
  // Triangle split: edges (0,1),(1,2) in part 0, (2,0) in part 1.
  const Graph g(3, {{0, 1}, {1, 2}, {2, 0}});
  EdgePartition part{2, {0, 0, 1}};
  const auto m = compute_metrics(g, part);
  // V0 = {0,1,2}, V1 = {0,2}.
  EXPECT_EQ(m.edges_per_part, (std::vector<std::uint64_t>{2, 1}));
  EXPECT_EQ(m.vertices_per_part, (std::vector<std::uint64_t>{3, 2}));
  EXPECT_EQ(m.total_replicas, 5u);
  EXPECT_DOUBLE_EQ(m.replication_factor, 5.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.edge_imbalance, 2.0 / (3.0 / 2.0));
  EXPECT_DOUBLE_EQ(m.vertex_imbalance, 3.0 / (5.0 / 2.0));
}

TEST(Metrics, PerfectSplit) {
  const Graph g(4, {{0, 1}, {2, 3}});
  EdgePartition part{2, {0, 1}};
  const auto m = compute_metrics(g, part);
  EXPECT_DOUBLE_EQ(m.edge_imbalance, 1.0);
  EXPECT_DOUBLE_EQ(m.vertex_imbalance, 1.0);
  EXPECT_DOUBLE_EQ(m.replication_factor, 1.0);
}

TEST(Metrics, AllEdgesInOnePartOfTwo) {
  const Graph g(3, {{0, 1}, {1, 2}});
  EdgePartition part{2, {0, 0}};
  const auto m = compute_metrics(g, part);
  EXPECT_DOUBLE_EQ(m.edge_imbalance, 2.0);  // 2 / (2/2)
  EXPECT_DOUBLE_EQ(m.vertex_imbalance, 2.0);
  EXPECT_DOUBLE_EQ(m.replication_factor, 1.0);
}

TEST(Metrics, ReplicationFactorAtLeastOneWhenAllVerticesCovered) {
  const Graph g = gen::chung_lu(500, 5000, 2.3, false, 1);
  EdgePartition part{4, std::vector<PartitionId>(g.num_edges())};
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    part.part_of_edge[e] = static_cast<PartitionId>(e % 4);
  }
  const auto m = compute_metrics(g, part);
  // Isolated vertices are not covered, so the factor is over covered only.
  EXPECT_GT(m.replication_factor, 0.9);
  EXPECT_LE(m.replication_factor, 4.0);
}

TEST(Metrics, MismatchedSizesThrow) {
  const Graph g(3, {{0, 1}});
  EdgePartition bad{2, {0, 1}};  // two entries, one edge
  EXPECT_THROW(compute_metrics(g, bad), std::invalid_argument);
}

TEST(Metrics, OutOfRangePartThrows) {
  const Graph g(3, {{0, 1}});
  EdgePartition bad{2, {5}};
  EXPECT_THROW(compute_metrics(g, bad), std::invalid_argument);
}

TEST(Metrics, VertexMembershipMatchesDefinition) {
  const Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  EdgePartition part{2, {0, 1, 0}};
  const auto member = vertex_membership(g, part);
  // Part 0 covers {0,1} and {2,3}; part 1 covers {1,2}.
  EXPECT_TRUE(member[0][0] && member[0][1] && member[0][2] && member[0][3]);
  EXPECT_FALSE(member[1][0]);
  EXPECT_TRUE(member[1][1] && member[1][2]);
  EXPECT_FALSE(member[1][3]);
}

TEST(EdgeCutMetrics, HandComputedTriangle) {
  // Triangle, vertex partition {0,1} -> part 0, {2} -> part 1.
  const Graph g(3, {{0, 1}, {1, 2}, {2, 0}});
  const std::vector<PartitionId> vpart = {0, 0, 1};
  const auto m = compute_edge_cut_metrics(g, vpart, 2);
  // E0 = all three edges (each touches 0 or 1); E1 = (1,2) and (2,0).
  EXPECT_EQ(m.edges_per_part, (std::vector<std::uint64_t>{3, 2}));
  EXPECT_EQ(m.vertices_per_part, (std::vector<std::uint64_t>{2, 1}));
  EXPECT_DOUBLE_EQ(m.replication_factor, 5.0 / 3.0);  // Σ|Ei| / |E|
  EXPECT_DOUBLE_EQ(m.edge_imbalance, 3.0 / (3.0 / 2.0));
  EXPECT_DOUBLE_EQ(m.vertex_imbalance, 2.0 / (3.0 / 2.0));
}

TEST(EdgeCutMetrics, NoCutEdgesGiveReplicationOne) {
  const Graph g(4, {{0, 1}, {2, 3}});
  const std::vector<PartitionId> vpart = {0, 0, 1, 1};
  const auto m = compute_edge_cut_metrics(g, vpart, 2);
  EXPECT_DOUBLE_EQ(m.replication_factor, 1.0);
  EXPECT_DOUBLE_EQ(m.edge_imbalance, 1.0);
  EXPECT_DOUBLE_EQ(m.vertex_imbalance, 1.0);
}

TEST(EdgeCutMetrics, ReplicationNeverExceedsTwo) {
  // An edge touches at most two parts, so Σ|Ei|/|E| ≤ 2 always.
  const Graph g = gen::chung_lu(500, 5000, 2.2, false, 9);
  std::vector<PartitionId> vpart(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    vpart[v] = static_cast<PartitionId>(v % 7);
  }
  const auto m = compute_edge_cut_metrics(g, vpart, 7);
  EXPECT_GE(m.replication_factor, 1.0);
  EXPECT_LE(m.replication_factor, 2.0);
}

TEST(EdgeCutMetrics, RejectsBadInput) {
  const Graph g(3, {{0, 1}});
  EXPECT_THROW(compute_edge_cut_metrics(g, {0, 1}, 2),
               std::invalid_argument);  // size mismatch
  EXPECT_THROW(compute_edge_cut_metrics(g, {0, 5, 1}, 2),
               std::invalid_argument);  // part out of range
}

TEST(Metrics, EmptyPartsAreCounted) {
  const Graph g(2, {{0, 1}});
  EdgePartition part{3, {1}};
  const auto m = compute_metrics(g, part);
  EXPECT_EQ(m.edges_per_part, (std::vector<std::uint64_t>{0, 1, 0}));
  EXPECT_DOUBLE_EQ(m.edge_imbalance, 3.0);
}

}  // namespace
}  // namespace ebv
