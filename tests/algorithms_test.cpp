#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.h"
#include "graph/generators.h"

namespace ebv {
namespace {

TEST(CoreDecomposition, TriangleIsTwoCore) {
  const Graph g(3, {{0, 1}, {1, 2}, {2, 0}});
  const auto core = core_decomposition(g);
  EXPECT_EQ(core, (std::vector<std::uint32_t>{2, 2, 2}));
}

TEST(CoreDecomposition, StarLeavesAreOneCore) {
  const Graph g(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  const auto core = core_decomposition(g);
  EXPECT_EQ(core[0], 1u) << "the hub peels once all leaves are gone";
  for (VertexId v = 1; v < 5; ++v) EXPECT_EQ(core[v], 1u);
}

TEST(CoreDecomposition, CliquePlusTail) {
  // 4-clique {0..3} with a tail 3-4-5.
  const Graph g(6, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
                    {3, 4}, {4, 5}});
  const auto core = core_decomposition(g);
  EXPECT_EQ(core[0], 3u);
  EXPECT_EQ(core[3], 3u);
  EXPECT_EQ(core[4], 1u);
  EXPECT_EQ(core[5], 1u);
}

TEST(CoreDecomposition, CoreNeverExceedsDegree) {
  const Graph g = gen::chung_lu(1000, 8000, 2.3, false, 5);
  const auto core = core_decomposition(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(core[v], g.degree(v));
  }
}

TEST(CoreDecomposition, DuplicateEdgesDoNotInflateCores) {
  // Both directions of one edge: still a 1-core.
  const Graph g(2, {{0, 1}, {1, 0}});
  const auto core = core_decomposition(g);
  EXPECT_EQ(core, (std::vector<std::uint32_t>{1, 1}));
}

TEST(Triangles, TriangleGraph) {
  const Graph g(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(total_triangles(g), 1u);
  EXPECT_EQ(triangle_counts(g), (std::vector<std::uint64_t>{1, 1, 1}));
}

TEST(Triangles, SquareHasNone) {
  const Graph g(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(total_triangles(g), 0u);
}

TEST(Triangles, CompleteGraphK5) {
  std::vector<Edge> edges;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) edges.push_back({u, v});
  }
  const Graph g(5, std::move(edges));
  EXPECT_EQ(total_triangles(g), 10u);  // C(5,3)
  for (const auto t : triangle_counts(g)) EXPECT_EQ(t, 6u);  // C(4,2)
}

TEST(Triangles, DirectionAndDuplicatesCollapse) {
  // A triangle stored with both directions on every edge: still 1.
  const Graph g(3, {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 0}, {0, 2}});
  EXPECT_EQ(total_triangles(g), 1u);
}

TEST(Clustering, CompleteGraphIsOne) {
  std::vector<Edge> edges;
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) edges.push_back({u, v});
  }
  const Graph g(6, std::move(edges));
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(g), 1.0);
}

TEST(Clustering, TreeIsZero) {
  const Graph g(5, {{0, 1}, {0, 2}, {1, 3}, {1, 4}});
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(g), 0.0);
}

TEST(Clustering, RoadGridLowSocialHigher) {
  const Graph road = gen::road_grid(30, 30, 1.0, 1);
  const Graph social = gen::barabasi_albert(900, 5, 1);
  EXPECT_LT(global_clustering_coefficient(road),
            global_clustering_coefficient(social));
}

TEST(Diameter, PathGraphExact) {
  // Path of 10 vertices: diameter 9; double sweep finds it.
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < 10; ++v) edges.push_back({v, v + 1});
  const Graph g(10, std::move(edges));
  EXPECT_EQ(estimate_diameter(g, 4, 1), 9u);
}

TEST(Diameter, GridScalesWithSide) {
  const Graph small = gen::road_grid(8, 8, 1.0, 2);
  const Graph large = gen::road_grid(24, 24, 1.0, 2);
  EXPECT_LT(estimate_diameter(small, 4, 3), estimate_diameter(large, 4, 3));
}

TEST(Diameter, NeedsAtLeastOneSample) {
  const Graph g(2, {{0, 1}});
  EXPECT_THROW(estimate_diameter(g, 0, 1), std::invalid_argument);
}

TEST(Diameter, PowerLawIsSmallWorld) {
  const Graph g = gen::chung_lu(5000, 50000, 2.3, false, 9);
  EXPECT_LE(estimate_diameter(g, 4, 4), 12u);
}

}  // namespace
}  // namespace ebv
