#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "graph/stats.h"

namespace ebv {
namespace {

TEST(Generators, ChungLuBasicShape) {
  const Graph g = gen::chung_lu(2000, 20000, 2.5, false, 1);
  EXPECT_EQ(g.num_vertices(), 2000u);
  EXPECT_GT(g.num_edges(), 15000u);
  EXPECT_LE(g.num_edges(), 20000u);
}

TEST(Generators, ChungLuDeterministicUnderSeed) {
  const Graph a = gen::chung_lu(500, 3000, 2.5, false, 9);
  const Graph b = gen::chung_lu(500, 3000, 2.5, false, 9);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) EXPECT_EQ(a.edge(e), b.edge(e));
  const Graph c = gen::chung_lu(500, 3000, 2.5, false, 10);
  EXPECT_NE(a.num_edges() == c.num_edges() &&
                std::equal(a.edges().begin(), a.edges().end(),
                           c.edges().begin()),
            true);
}

TEST(Generators, ChungLuUndirectedEmitsBothDirections) {
  const Graph g = gen::chung_lu(500, 4000, 2.5, true, 3);
  std::set<std::pair<VertexId, VertexId>> edges;
  for (const Edge& e : g.edges()) edges.insert({e.src, e.dst});
  for (const Edge& e : g.edges()) {
    EXPECT_TRUE(edges.count({e.dst, e.src}))
        << "missing reverse of " << e.src << "->" << e.dst;
  }
}

TEST(Generators, ChungLuSkewTracksExponent) {
  // A lower η must produce a more skewed degree distribution.
  const Graph skewed = gen::chung_lu(5000, 50000, 2.0, false, 4);
  const Graph mild = gen::chung_lu(5000, 50000, 3.5, false, 4);
  const GraphStats s1 = compute_stats(skewed);
  const GraphStats s2 = compute_stats(mild);
  EXPECT_GT(s1.max_total_degree, s2.max_total_degree);
  EXPECT_LT(s1.eta, s2.eta);
}

TEST(Generators, ChungLuNoSelfLoopsNoDuplicates) {
  const Graph g = gen::chung_lu(300, 2000, 2.2, false, 5);
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const Edge& e : g.edges()) {
    EXPECT_NE(e.src, e.dst);
    const auto key = std::minmax(e.src, e.dst);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second);
  }
}

TEST(Generators, ChungLuRejectsBadArguments) {
  EXPECT_THROW(gen::chung_lu(1, 10, 2.5, false, 0), std::invalid_argument);
  EXPECT_THROW(gen::chung_lu(10, 10, 0.9, false, 0), std::invalid_argument);
}

TEST(Generators, RmatShape) {
  const Graph g = gen::rmat(1024, 8000, 0.57, 0.19, 0.19, 2);
  EXPECT_EQ(g.num_vertices(), 1024u);
  EXPECT_GT(g.num_edges(), 6000u);
  const GraphStats s = compute_stats(g);
  EXPECT_GT(s.max_total_degree, 50u) << "R-MAT should produce hubs";
}

TEST(Generators, RmatRejectsNonPowerOfTwo) {
  EXPECT_THROW(gen::rmat(1000, 100, 0.57, 0.19, 0.19, 0),
               std::invalid_argument);
  EXPECT_THROW(gen::rmat(1024, 100, 0.5, 0.3, 0.3, 0), std::invalid_argument);
}

TEST(Generators, BarabasiAlbertDegrees) {
  const Graph g = gen::barabasi_albert(1000, 3, 6);
  EXPECT_EQ(g.num_vertices(), 1000u);
  // Undirected: every vertex beyond the seed clique attaches >= 3 edges.
  for (VertexId v = 4; v < g.num_vertices(); ++v) {
    EXPECT_GE(g.degree(v), 6u);  // both directions counted
  }
  const GraphStats s = compute_stats(g);
  EXPECT_GT(s.max_total_degree, 30u);
}

TEST(Generators, ErdosRenyiUniformity) {
  const Graph g = gen::erdos_renyi(1000, 10000, 11);
  EXPECT_EQ(g.num_edges(), 10000u);
  const GraphStats s = compute_stats(g);
  // ER has a light tail: max degree close to the mean.
  EXPECT_LT(s.max_total_degree, 60u);
}

TEST(Generators, RoadGridIsSparseAndWeighted) {
  const Graph g = gen::road_grid(50, 50, 0.95, 13);
  EXPECT_EQ(g.num_vertices(), 2500u);
  EXPECT_TRUE(g.has_weights());
  const GraphStats s = compute_stats(g);
  EXPECT_LE(s.max_total_degree, 14u) << "road networks have bounded degree";
  EXPECT_GT(s.num_edges, 8000u);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_GE(g.weight(e), 1.0f);
    EXPECT_LE(g.weight(e), 10.0f);
  }
}

TEST(Generators, RoadGridUndirected) {
  const Graph g = gen::road_grid(10, 10, 1.0, 1);
  std::multiset<std::pair<VertexId, VertexId>> edges;
  for (const Edge& e : g.edges()) edges.insert({e.src, e.dst});
  for (const Edge& e : g.edges()) {
    EXPECT_TRUE(edges.count({e.dst, e.src}) > 0);
  }
}

TEST(Generators, Figure1GraphMatchesPaper) {
  const Graph g = gen::figure1_graph();
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_edges(), 6u);
  // A (=0) is the high-degree vertex of the example.
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(3), 1u);  // D
}

TEST(Generators, PowerLawEtaOrderingAcrossFamilies) {
  // Road grids are nearly regular (huge estimated η); Chung-Lu social
  // stand-ins are heavy-tailed (small η).
  const Graph road = gen::road_grid(60, 60, 0.92, 3);
  const Graph social = gen::chung_lu(3600, 40000, 2.2, false, 3);
  EXPECT_GT(estimate_power_law_exponent(road),
            estimate_power_law_exponent(social));
}

}  // namespace
}  // namespace ebv
