// Distributed EBV (the paper's §VII future-work extension): sharded
// Algorithm 1 with periodically synchronised state.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "partition/ebv.h"
#include "partition/ebv_distributed.h"
#include "partition/metrics.h"

namespace ebv {
namespace {

PartitionConfig config(PartitionId p) {
  PartitionConfig c;
  c.num_parts = p;
  return c;
}

TEST(DistributedEbv, ValidAndDeterministic) {
  const Graph g = gen::chung_lu(1000, 8000, 2.3, false, 1);
  const DistributedEbvPartitioner dist(8, 256);
  const auto a = dist.partition(g, config(8));
  const auto b = dist.partition(g, config(8));
  ASSERT_EQ(a.part_of_edge.size(), g.num_edges());
  EXPECT_EQ(a.part_of_edge, b.part_of_edge);
  for (const PartitionId i : a.part_of_edge) EXPECT_LT(i, 8u);
}

TEST(DistributedEbv, OneShardEqualsOfflineEbv) {
  // A single partitioning worker with any sync interval processes the
  // sorted stream exactly like Algorithm 1.
  const Graph g = gen::chung_lu(600, 5000, 2.4, false, 2);
  const DistributedEbvPartitioner one_shard(1, 128);
  const EbvPartitioner offline;
  EXPECT_EQ(one_shard.partition(g, config(8)).part_of_edge,
            offline.partition(g, config(8)).part_of_edge);
}

TEST(DistributedEbv, StaysRoughlyBalancedDespiteStaleness) {
  // 8 shards × 512-edge sync interval means each worker's view of the
  // global counters lags by up to ~13% of this graph's edges per round,
  // so the balance is looser than sequential EBV's ~1.01 — but it must
  // stay far from the unbalanced regime.
  const Graph g = gen::chung_lu(3000, 30000, 2.2, false, 3);
  const DistributedEbvPartitioner dist(8, 512);
  const auto m = compute_metrics(g, dist.partition(g, config(16)));
  EXPECT_LT(m.edge_imbalance, 1.25);
  EXPECT_LT(m.vertex_imbalance, 1.25);
}

TEST(DistributedEbv, FrequentSyncRestoresTightBalance) {
  const Graph g = gen::chung_lu(3000, 30000, 2.2, false, 3);
  const DistributedEbvPartitioner dist(8, 32);
  const auto m = compute_metrics(g, dist.partition(g, config(16)));
  EXPECT_LT(m.edge_imbalance, 1.1);
  EXPECT_LT(m.vertex_imbalance, 1.1);
}

TEST(DistributedEbv, QualityDegradesGracefullyWithShards) {
  // More shards = more staleness; replication may rise but must stay
  // well under the random-assignment ceiling (~p-bounded).
  const Graph g = gen::chung_lu(2000, 16000, 2.3, false, 4);
  const EbvPartitioner offline;
  const double rep_offline =
      compute_metrics(g, offline.partition(g, config(8))).replication_factor;
  const DistributedEbvPartitioner dist(16, 64);
  const double rep_dist =
      compute_metrics(g, dist.partition(g, config(8))).replication_factor;
  EXPECT_LT(rep_dist, rep_offline * 1.6);
}

TEST(DistributedEbv, TighterSyncIsNoWorse) {
  // Syncing every edge approaches sequential quality; a huge interval
  // (full staleness) must not be better.
  const Graph g = gen::chung_lu(2000, 16000, 2.3, false, 5);
  const DistributedEbvPartitioner tight(8, 16);
  const DistributedEbvPartitioner loose(8, 1'000'000);
  const double rep_tight =
      compute_metrics(g, tight.partition(g, config(8))).replication_factor;
  const double rep_loose =
      compute_metrics(g, loose.partition(g, config(8))).replication_factor;
  EXPECT_LE(rep_tight, rep_loose * 1.05);
}

TEST(DistributedEbv, RejectsBadParameters) {
  const Graph g = gen::erdos_renyi(50, 200, 6);
  EXPECT_THROW(DistributedEbvPartitioner(0, 16).partition(g, config(2)),
               std::invalid_argument);
  EXPECT_THROW(DistributedEbvPartitioner(4, 0).partition(g, config(2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace ebv
