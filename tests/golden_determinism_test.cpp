// Golden-quality regression pins for every registered partitioner.
//
// A fixed-seed Chung-Lu graph is partitioned into 8 parts and the paper's
// three quality metrics (§III-C) are compared against recorded values. A
// refactor that silently changes assignment behaviour (tie-breaking, visit
// order, score arithmetic) moves these metrics by far more than the 1e-6
// tolerance, which in turn only absorbs last-ulp arithmetic differences
// between compilers. Regenerate the table with
// tools-level code if an intentional algorithm change lands:
//   partition chung_lu(3000, 24000, 2.3, false, 7) with num_parts=8,
//   seed=7, defaults otherwise, and print compute_metrics at %.17g.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "graph/generators.h"
#include "partition/metrics.h"
#include "partition/registry.h"

namespace ebv {
namespace {

struct GoldenMetrics {
  double replication_factor;
  double edge_imbalance;
  double vertex_imbalance;
};

const std::map<std::string, GoldenMetrics>& golden_table() {
  static const std::map<std::string, GoldenMetrics> table = {
      {"ebv", {2.5176666666666665, 1.0376666666666667, 1.0115186018800477}},
      {"ebv-stream",
       {2.6703333333333332, 1.0169999999999999, 1.0126076644613655}},
      {"ebv-dist", {3.7273333333333332, 1.359, 1.073868717581828}},
      {"ginger", {2.819, 1.0760000000000001, 1.0320444602104766}},
      {"dbh", {2.9463333333333335, 1.081, 1.0498925217784818}},
      {"cvc", {3.8676666666666666, 1.1966666666666668, 1.0411100577436869}},
      {"ne", {2.6463333333333332, 1.0, 1.6455472981483814}},
      {"metis", {3.7013333333333334, 1.744, 1.5021613832853027}},
      {"hdrf", {2.4936666666666665, 1.0, 1.0212538430691085}},
      {"fennel", {3.0896666666666666, 4.2523333333333335, 2.3277591973244145}},
      {"random", {5.4139999999999997, 1.026, 1.021549070311538}},
      {"hash", {5.4240000000000004, 1.0269999999999999, 1.0206489675516224}},
  };
  return table;
}

const Graph& golden_graph() {
  static const Graph g = gen::chung_lu(3000, 24000, 2.3, false, 7);
  return g;
}

PartitionConfig golden_config() {
  PartitionConfig config;
  config.num_parts = 8;
  config.seed = 7;
  return config;
}

TEST(GoldenDeterminism, EveryRegisteredPartitionerIsPinned) {
  // A new partitioner must come with a golden row (and vice versa).
  EXPECT_EQ(all_partitioners().size(), golden_table().size());
  for (const std::string& name : all_partitioners()) {
    EXPECT_TRUE(golden_table().count(name) != 0)
        << "no golden metrics recorded for '" << name << "'";
  }
}

class GoldenPartitioner : public testing::TestWithParam<std::string> {};

TEST_P(GoldenPartitioner, QualityMetricsMatchRecordedValues) {
  const std::string name = GetParam();
  ASSERT_TRUE(golden_table().count(name) != 0);
  const GoldenMetrics& golden = golden_table().at(name);

  const Graph& g = golden_graph();
  const EdgePartition part =
      make_partitioner(name)->partition(g, golden_config());
  ASSERT_EQ(part.part_of_edge.size(), g.num_edges());
  const PartitionMetrics m = compute_metrics(g, part);

  constexpr double kTol = 1e-6;
  EXPECT_NEAR(m.replication_factor, golden.replication_factor, kTol)
      << name << ": replication factor drifted";
  EXPECT_NEAR(m.edge_imbalance, golden.edge_imbalance, kTol)
      << name << ": edge imbalance drifted";
  EXPECT_NEAR(m.vertex_imbalance, golden.vertex_imbalance, kTol)
      << name << ": vertex imbalance drifted";
}

TEST_P(GoldenPartitioner, RepeatedRunsAreIdentical) {
  const std::string name = GetParam();
  const Graph& g = golden_graph();
  const EdgePartition a = make_partitioner(name)->partition(g, golden_config());
  const EdgePartition b = make_partitioner(name)->partition(g, golden_config());
  EXPECT_EQ(a.part_of_edge, b.part_of_edge)
      << name << " is not deterministic under a fixed seed";
}

INSTANTIATE_TEST_SUITE_P(AllPartitioners, GoldenPartitioner,
                         testing::ValuesIn(all_partitioners()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           std::string id = info.param;
                           for (char& c : id) {
                             if (c == '-') c = '_';
                           }
                           return id;
                         });

}  // namespace
}  // namespace ebv
