// Golden-quality regression pins for every registered partitioner.
//
// A fixed-seed Chung-Lu graph is partitioned into 8 parts and the paper's
// three quality metrics (§III-C) are compared against recorded values. A
// refactor that silently changes assignment behaviour (tie-breaking, visit
// order, score arithmetic) moves these metrics by far more than the 1e-6
// tolerance, which in turn only absorbs last-ulp arithmetic differences
// between compilers. Regenerate the table with
// tools-level code if an intentional algorithm change lands:
//   partition chung_lu(3000, 24000, 2.3, false, 7) with num_parts=8,
//   seed=7, defaults otherwise, and print compute_metrics at %.17g.
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"
#include "partition/registry.h"

namespace ebv {
namespace {

struct GoldenMetrics {
  double replication_factor;
  double edge_imbalance;
  double vertex_imbalance;
};

const std::map<std::string, GoldenMetrics>& golden_table() {
  static const std::map<std::string, GoldenMetrics> table = {
      {"ebv", {2.5176666666666665, 1.0376666666666667, 1.0115186018800477}},
      {"ebv-stream",
       {2.6703333333333332, 1.0169999999999999, 1.0126076644613655}},
      {"ebv-dist", {3.7273333333333332, 1.359, 1.073868717581828}},
      {"ginger", {2.819, 1.0760000000000001, 1.0320444602104766}},
      {"dbh", {2.9463333333333335, 1.081, 1.0498925217784818}},
      {"cvc", {3.8676666666666666, 1.1966666666666668, 1.0411100577436869}},
      {"ne", {2.6463333333333332, 1.0, 1.6455472981483814}},
      {"metis", {3.7013333333333334, 1.744, 1.5021613832853027}},
      {"hdrf", {2.4936666666666665, 1.0, 1.0212538430691085}},
      {"fennel", {3.0896666666666666, 4.2523333333333335, 2.3277591973244145}},
      {"random", {5.4139999999999997, 1.026, 1.021549070311538}},
      {"hash", {5.4240000000000004, 1.0269999999999999, 1.0206489675516224}},
  };
  return table;
}

const Graph& golden_graph() {
  static const Graph g = gen::chung_lu(3000, 24000, 2.3, false, 7);
  return g;
}

PartitionConfig golden_config() {
  PartitionConfig config;
  config.num_parts = 8;
  config.seed = 7;
  return config;
}

TEST(GoldenDeterminism, EveryRegisteredPartitionerIsPinned) {
  // A new partitioner must come with a golden row (and vice versa).
  EXPECT_EQ(all_partitioners().size(), golden_table().size());
  for (const std::string& name : all_partitioners()) {
    EXPECT_TRUE(golden_table().count(name) != 0)
        << "no golden metrics recorded for '" << name << "'";
  }
}

class GoldenPartitioner : public testing::TestWithParam<std::string> {};

TEST_P(GoldenPartitioner, QualityMetricsMatchRecordedValues) {
  const std::string name = GetParam();
  ASSERT_TRUE(golden_table().count(name) != 0);
  const GoldenMetrics& golden = golden_table().at(name);

  const Graph& g = golden_graph();
  const EdgePartition part =
      make_partitioner(name)->partition(g, golden_config());
  ASSERT_EQ(part.part_of_edge.size(), g.num_edges());
  const PartitionMetrics m = compute_metrics(g, part);

  constexpr double kTol = 1e-6;
  EXPECT_NEAR(m.replication_factor, golden.replication_factor, kTol)
      << name << ": replication factor drifted";
  EXPECT_NEAR(m.edge_imbalance, golden.edge_imbalance, kTol)
      << name << ": edge imbalance drifted";
  EXPECT_NEAR(m.vertex_imbalance, golden.vertex_imbalance, kTol)
      << name << ": vertex imbalance drifted";
}

TEST_P(GoldenPartitioner, RepeatedRunsAreIdentical) {
  const std::string name = GetParam();
  const Graph& g = golden_graph();
  const EdgePartition a = make_partitioner(name)->partition(g, golden_config());
  const EdgePartition b = make_partitioner(name)->partition(g, golden_config());
  EXPECT_EQ(a.part_of_edge, b.part_of_edge)
      << name << " is not deterministic under a fixed seed";
}

/// Seed-scorer reference: the part-major byte-matrix implementation the
/// repo shipped with, reproduced verbatim (membership branches and
/// floating-point association order included) so the vertex-major bitmask
/// core can be checked for BIT-IDENTICAL assignments — including at part
/// counts that straddle the 64-bit mask-word boundary.
EdgePartition legacy_ebv_reference(const Graph& g,
                                   const PartitionConfig& config) {
  const PartitionId p = config.num_parts;
  const double edges_per_part =
      static_cast<double>(std::max<EdgeId>(g.num_edges(), 1)) / p;
  const double vertices_per_part = static_cast<double>(g.num_vertices()) / p;
  std::vector<std::uint8_t> keep(static_cast<std::size_t>(p) *
                                     g.num_vertices(),
                                 0);
  std::vector<std::uint64_t> ecount(p, 0);
  std::vector<std::uint64_t> vcount(p, 0);
  auto kept = [&](PartitionId i, VertexId v) -> std::uint8_t& {
    return keep[static_cast<std::size_t>(i) * g.num_vertices() + v];
  };

  EdgePartition result;
  result.num_parts = p;
  result.part_of_edge.assign(g.num_edges(), kInvalidPartition);
  for (const EdgeId e :
       make_edge_order(g, config.edge_order, config.seed, 1)) {
    const auto [u, v] = g.edge(e);
    PartitionId best = 0;
    double best_eva = std::numeric_limits<double>::infinity();
    for (PartitionId i = 0; i < p; ++i) {
      double eva = 0.0;
      if (kept(i, u) == 0) eva += 1.0;
      if (kept(i, v) == 0) eva += 1.0;
      eva += config.alpha * static_cast<double>(ecount[i]) / edges_per_part;
      eva += config.beta * static_cast<double>(vcount[i]) / vertices_per_part;
      if (eva < best_eva) {
        best_eva = eva;
        best = i;
      }
    }
    result.part_of_edge[e] = best;
    ++ecount[best];
    for (const VertexId w : {u, v}) {
      if (kept(best, w) == 0) {
        kept(best, w) = 1;
        ++vcount[best];
      }
    }
  }
  return result;
}

/// The bitmask scorer must agree with the legacy part-major scorer bit for
/// bit, at part counts below / at / above the mask-word width (multi-word
/// rows) — serially and through the batched speculative team path.
TEST(MaskScorerEquivalence, MatchesLegacyScorerAcrossPartCounts) {
  const Graph g = gen::chung_lu(800, 6'000, 2.3, false, 21);
  for (const PartitionId parts : {2u, 63u, 64u, 65u, 200u}) {
    PartitionConfig config;
    config.num_parts = parts;
    config.seed = 21;
    const EdgePartition legacy = legacy_ebv_reference(g, config);

    config.num_threads = 1;
    const EdgePartition serial =
        make_partitioner("ebv")->partition(g, config);
    EXPECT_EQ(serial.part_of_edge, legacy.part_of_edge)
        << "bitmask scorer diverged from the legacy scorer at p=" << parts;

    config.num_threads = 4;
    config.batch_size = 64;
    const EdgePartition batched =
        make_partitioner("ebv")->partition(g, config);
    EXPECT_EQ(batched.part_of_edge, legacy.part_of_edge)
        << "batched scorer diverged from the legacy scorer at p=" << parts;
  }
}

/// Batched speculative scoring on the golden workload: every (threads,
/// batch) combination must reproduce the serial assignment exactly for
/// both EBV drivers.
TEST(GoldenDeterminism, BatchedSpeculativeScoringMatchesSerial) {
  const Graph& g = golden_graph();
  for (const std::string name : {"ebv", "ebv-stream"}) {
    PartitionConfig config = golden_config();
    config.num_threads = 1;
    const EdgePartition serial = make_partitioner(name)->partition(g, config);
    for (const std::uint32_t threads : {1u, 4u, 16u}) {
      for (const std::uint32_t batch : {1u, 64u, 4096u}) {
        config.num_threads = threads;
        config.batch_size = batch;
        const EdgePartition run = make_partitioner(name)->partition(g, config);
        EXPECT_EQ(run.part_of_edge, serial.part_of_edge)
            << name << " diverged at threads=" << threads
            << " batch=" << batch;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPartitioners, GoldenPartitioner,
                         testing::ValuesIn(all_partitioners()),
                         [](const testing::TestParamInfo<std::string>& param) {
                           std::string id = param.param;
                           for (char& c : id) {
                             if (c == '-') c = '_';
                           }
                           return id;
                         });

}  // namespace
}  // namespace ebv
