// External-sort converter: output must be byte-identical for every
// (memory budget, thread count) pair — including budgets far smaller than
// the input, which force multi-run spills — and must agree with the
// in-memory snapshot writer on the same edge list.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/io.h"
#include "graph/mapped_graph.h"
#include "graph/snapshot_convert.h"

namespace ebv {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// ~20k edges of text input shared by the tests (written once).
const std::string& sample_text() {
  static const std::string path = [] {
    const Graph g = gen::chung_lu(2000, 20000, 2.3, false, 11);
    const std::string p = temp_path("convert_input.txt");
    io::write_edge_list_file(p, g);
    return p;
  }();
  return path;
}

TEST(SnapshotConvert, MatchesInMemoryWriter) {
  const std::string converted = temp_path("convert_mem.ebvs");
  const io::ConvertStats stats =
      io::convert_edge_list_to_snapshot(sample_text(), converted);
  EXPECT_EQ(stats.num_runs, 1u);  // default budget swallows 20k edges

  // Reference: load the same text resident and write the snapshot directly.
  Graph g = io::read_edge_list_file(sample_text());
  g.set_name("convert_input");  // converter names snapshots after the stem
  const std::string reference = temp_path("convert_ref.ebvs");
  io::write_snapshot_file(reference, g);

  EXPECT_EQ(file_bytes(converted), file_bytes(reference));
}

TEST(SnapshotConvert, TinyBudgetSpillsRunsAndIsByteIdentical) {
  const std::string big = temp_path("convert_big.ebvs");
  const io::ConvertStats one =
      io::convert_edge_list_to_snapshot(sample_text(), big);
  ASSERT_EQ(one.num_runs, 1u);

  io::ConvertOptions tiny;
  tiny.memory_budget_bytes = 16 << 10;  // 16 KiB ≈ 1365 records per run
  const std::string small = temp_path("convert_small.ebvs");
  const io::ConvertStats many =
      io::convert_edge_list_to_snapshot(sample_text(), small, tiny);

  // The input must genuinely exceed the sort-run budget...
  EXPECT_GT(many.num_runs, 4u);
  EXPECT_EQ(many.edges_read, one.edges_read);
  // ...and the snapshot must not depend on how it was chunked.
  EXPECT_EQ(file_bytes(small), file_bytes(big));
}

TEST(SnapshotConvert, ThreadCountDoesNotChangeTheBytes) {
  io::ConvertOptions serial;
  serial.memory_budget_bytes = 64 << 10;
  const std::string a = temp_path("convert_t1.ebvs");
  io::convert_edge_list_to_snapshot(sample_text(), a, serial);

  io::ConvertOptions threaded = serial;
  threaded.num_threads = 4;
  const std::string b = temp_path("convert_t4.ebvs");
  io::convert_edge_list_to_snapshot(sample_text(), b, threaded);

  EXPECT_EQ(file_bytes(a), file_bytes(b));
}

TEST(SnapshotConvert, WeightsSurviveTheSort) {
  const std::string input = temp_path("convert_weighted.txt");
  {
    std::ofstream out(input);
    out << "3 1 0.25\n0 2 8\n3 1 0.5\n1 0 1.5\n";
  }
  const std::string path = temp_path("convert_weighted.ebvs");
  const io::ConvertStats stats =
      io::convert_edge_list_to_snapshot(input, path);
  EXPECT_TRUE(stats.weighted);
  const Graph g = io::read_snapshot_file(path);
  ASSERT_EQ(g.num_edges(), 4u);
  ASSERT_TRUE(g.has_weights());
  // Canonical order: (0,2) (1,0) (3,1) (3,1); duplicate keys keep input
  // order, so 0.25 precedes 0.5.
  EXPECT_EQ(g.edge(0), (Edge{0, 2}));
  EXPECT_FLOAT_EQ(g.weight(0), 8.0f);
  EXPECT_EQ(g.edge(1), (Edge{1, 0}));
  EXPECT_FLOAT_EQ(g.weight(1), 1.5f);
  EXPECT_EQ(g.edge(2), (Edge{3, 1}));
  EXPECT_FLOAT_EQ(g.weight(2), 0.25f);
  EXPECT_EQ(g.edge(3), (Edge{3, 1}));
  EXPECT_FLOAT_EQ(g.weight(3), 0.5f);
}

TEST(SnapshotConvert, SelfLoopAndDedupOptions) {
  const std::string input = temp_path("convert_dedup.txt");
  {
    std::ofstream out(input);
    out << "# comment\n1 1\n0 1\n0 1\n2 0\n";
  }
  const std::string path = temp_path("convert_dedup.ebvs");
  io::ConvertOptions options;
  options.deduplicate = true;
  const io::ConvertStats stats =
      io::convert_edge_list_to_snapshot(input, path, options);
  EXPECT_EQ(stats.self_loops_dropped, 1u);
  EXPECT_EQ(stats.duplicates_dropped, 1u);
  EXPECT_EQ(stats.edges_written, 2u);
  const Graph g = io::read_snapshot_file(path);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.num_vertices(), 3u);
}

TEST(SnapshotConvert, RejectsMalformedLinesAndHugeIds) {
  const std::string bad_line = temp_path("convert_badline.txt");
  {
    std::ofstream out(bad_line);
    out << "0 1\nnot an edge\n";
  }
  EXPECT_THROW(io::convert_edge_list_to_snapshot(
                   bad_line, temp_path("convert_badline.ebvs")),
               std::runtime_error);

  const std::string huge_id = temp_path("convert_hugeid.txt");
  {
    std::ofstream out(huge_id);
    out << "4294967296 1\n";  // 2^32: outside the 32-bit id space
  }
  EXPECT_THROW(io::convert_edge_list_to_snapshot(
                   huge_id, temp_path("convert_hugeid.ebvs")),
               std::runtime_error);
}

TEST(SnapshotConvert, FailedConvertLeavesNoPartialOutput) {
  const std::string input = temp_path("convert_fail.txt");
  {
    std::ofstream out(input);
    out << "0 1\n2 3\nbroken line\n";
  }
  const std::string output = temp_path("convert_fail.ebvs");
  EXPECT_THROW(io::convert_edge_list_to_snapshot(input, output),
               std::runtime_error);
  // The placeholder-header file must not survive — it would clobber a
  // previously valid snapshot at the same path.
  std::ifstream check(output);
  EXPECT_FALSE(check.good());
}

TEST(SnapshotConvert, SharedTempDirDoesNotClobberForeignRunFiles) {
  // Two converts sharing a temp_dir must spill to disjoint run files.
  // Simulate the other invocation with a legacy-named decoy run file: the
  // old "<out>.run<k>.tmp" scheme would truncate it in place and then
  // delete it during cleanup; the pid-unique names must leave it alone.
  namespace fs = std::filesystem;
  const std::string tmp_dir = temp_path("convert_shared_tmp");
  fs::create_directories(tmp_dir);
  const std::string out_name = "convert_shared.ebvs";
  const std::string decoy = tmp_dir + "/" + out_name + ".run0.tmp";
  {
    std::ofstream d(decoy, std::ios::binary);
    d << "foreign run data";
  }

  io::ConvertOptions options;
  options.memory_budget_bytes = 16 << 10;  // force multi-run spills
  options.temp_dir = tmp_dir;
  const std::string output = temp_path(out_name);
  const io::ConvertStats stats =
      io::convert_edge_list_to_snapshot(sample_text(), output, options);
  ASSERT_GT(stats.num_runs, 1u);

  EXPECT_EQ(file_bytes(decoy), "foreign run data");
  // Own run files are cleaned up; only the decoy remains.
  const auto remaining = std::distance(fs::directory_iterator(tmp_dir),
                                       fs::directory_iterator{});
  EXPECT_EQ(remaining, 1);

  // And the snapshot is still byte-identical to a clean convert.
  const std::string reference = temp_path("convert_shared_ref.ebvs");
  io::convert_edge_list_to_snapshot(sample_text(), reference);
  EXPECT_EQ(file_bytes(output), file_bytes(reference));
}

TEST(SnapshotConvert, EbvgInputConvertsResident) {
  Graph g = gen::erdos_renyi(200, 900, 3);
  g.set_name("from-ebvg");
  const std::string ebvg = temp_path("convert_in.ebvg");
  io::write_binary_file(ebvg, g);
  const std::string path = temp_path("convert_from_ebvg.ebvs");
  const io::ConvertStats stats =
      io::convert_edge_list_to_snapshot(ebvg, path);
  EXPECT_EQ(stats.edges_written, g.num_edges());
  const MappedGraph mapped(path);
  mapped.validate();
  EXPECT_EQ(mapped.num_edges(), g.num_edges());
  EXPECT_EQ(mapped.name(), "from-ebvg");
}

}  // namespace
}  // namespace ebv
