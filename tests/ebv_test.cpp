#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "partition/ebv.h"
#include "partition/metrics.h"

namespace ebv {
namespace {

PartitionConfig config(PartitionId p, EdgeOrder order = EdgeOrder::kSortedAscending) {
  PartitionConfig c;
  c.num_parts = p;
  c.edge_order = order;
  return c;
}

TEST(Ebv, AssignsEveryEdgeExactlyOnce) {
  const Graph g = gen::chung_lu(1000, 8000, 2.4, false, 1);
  const EbvPartitioner ebv;
  const EdgePartition part = ebv.partition(g, config(8));
  ASSERT_EQ(part.part_of_edge.size(), g.num_edges());
  for (const PartitionId i : part.part_of_edge) EXPECT_LT(i, 8u);
}

TEST(Ebv, SinglePartPutsEverythingInPartZero) {
  const Graph g = gen::erdos_renyi(100, 500, 2);
  const EbvPartitioner ebv;
  const EdgePartition part = ebv.partition(g, config(1));
  for (const PartitionId i : part.part_of_edge) EXPECT_EQ(i, 0u);
}

TEST(Ebv, DeterministicUnderFixedConfig) {
  const Graph g = gen::chung_lu(500, 4000, 2.3, false, 6);
  const EbvPartitioner ebv;
  const auto a = ebv.partition(g, config(4));
  const auto b = ebv.partition(g, config(4));
  EXPECT_EQ(a.part_of_edge, b.part_of_edge);
}

TEST(Ebv, TwoEdgeToyExampleSpreadsForBalance) {
  // Two disjoint edges, two parts: the balance terms must split them.
  const Graph g(4, {{0, 1}, {2, 3}});
  const EbvPartitioner ebv;
  const auto part = ebv.partition(g, config(2, EdgeOrder::kNatural));
  EXPECT_NE(part.part_of_edge[0], part.part_of_edge[1]);
}

TEST(Ebv, SharedVertexEdgesStickTogetherWhenBalanceIsWeak) {
  // A path 0-1-2 plus a far-away edge, with small α/β so the replication
  // term dominates: the path edges share vertex 1 and must colocate, and
  // the residual balance pressure pushes the third edge to the other part.
  const Graph g(5, {{0, 1}, {1, 2}, {3, 4}});
  const EbvPartitioner ebv;
  PartitionConfig c = config(2, EdgeOrder::kNatural);
  c.alpha = 0.1;
  c.beta = 0.1;
  const auto part = ebv.partition(g, c);
  EXPECT_EQ(part.part_of_edge[0], part.part_of_edge[1]);
  EXPECT_NE(part.part_of_edge[0], part.part_of_edge[2]);
}

TEST(Ebv, DefaultWeightsPreferBalanceOverOneSharedVertex) {
  // With the paper's default α = β = 1 the balance terms outweigh saving a
  // single replica: the second path edge moves to the empty part.
  const Graph g(5, {{0, 1}, {1, 2}, {3, 4}});
  const EbvPartitioner ebv;
  const auto part = ebv.partition(g, config(2, EdgeOrder::kNatural));
  EXPECT_NE(part.part_of_edge[0], part.part_of_edge[1]);
}

TEST(Ebv, PaperFigure1SortedAssignsBCWithoutExtraCuts) {
  // With the sorting preprocessing, (B,C) lands with (A,B)/(A,C)'s
  // counterpart subgraph structure such that only vertex A is cut —
  // replication factor (|V0|+|V1|)/|V| = 7/6 as in the paper's left panel.
  const Graph g = gen::figure1_graph();
  const EbvPartitioner ebv;
  const auto part = ebv.partition(g, config(2, EdgeOrder::kSortedAscending));
  const auto m = compute_metrics(g, part);
  EXPECT_EQ(m.total_replicas, 7u) << "exactly one vertex should be cut";
  EXPECT_EQ(m.edges_per_part[0], 3u);
  EXPECT_EQ(m.edges_per_part[1], 3u);
}

TEST(Ebv, SortedNeverWorseThanUnsortedOnFigure1) {
  const Graph g = gen::figure1_graph();
  const EbvPartitioner ebv;
  const auto sorted = ebv.partition(g, config(2, EdgeOrder::kSortedAscending));
  const auto natural = ebv.partition(g, config(2, EdgeOrder::kNatural));
  EXPECT_LE(compute_metrics(g, sorted).total_replicas,
            compute_metrics(g, natural).total_replicas);
}

TEST(Ebv, BalancedOnPowerLawGraph) {
  const Graph g = gen::chung_lu(2000, 20000, 2.2, false, 3);
  const EbvPartitioner ebv;
  const auto part = ebv.partition(g, config(8));
  const auto m = compute_metrics(g, part);
  EXPECT_LT(m.edge_imbalance, 1.05);
  EXPECT_LT(m.vertex_imbalance, 1.05);
}

TEST(Ebv, SortingReducesReplicationOnPowerLaw) {
  const Graph g = gen::chung_lu(3000, 30000, 2.2, false, 4);
  const EbvPartitioner ebv;
  const auto sorted = ebv.partition(g, config(16, EdgeOrder::kSortedAscending));
  const auto unsorted = ebv.partition(g, config(16, EdgeOrder::kRandom));
  EXPECT_LT(compute_metrics(g, sorted).replication_factor,
            compute_metrics(g, unsorted).replication_factor);
}

TEST(Ebv, LargeAlphaTightensEdgeBalanceUnderAdversarialOrder) {
  // Descending order front-loads hub edges; a large alpha must still keep
  // edge counts essentially equal.
  const Graph g = gen::chung_lu(2000, 15000, 2.0, false, 9);
  PartitionConfig c = config(8, EdgeOrder::kSortedDescending);
  c.alpha = 16.0;
  c.beta = 0.0;
  const EbvPartitioner ebv;
  const auto m = compute_metrics(g, ebv.partition(g, c));
  EXPECT_LT(m.edge_imbalance, 1.01);
}

TEST(Ebv, ZeroAlphaBetaDegeneratesToGreedyReplicationOnly) {
  // With no balance pressure every edge chases keep[] overlap; the result
  // must still be a valid partition.
  const Graph g = gen::chung_lu(500, 3000, 2.3, false, 2);
  PartitionConfig c = config(4);
  c.alpha = 0.0;
  c.beta = 0.0;
  const EbvPartitioner ebv;
  const auto part = ebv.partition(g, c);
  const auto m = compute_metrics(g, part);
  // Isolated vertices are never covered, so the factor can dip below 1.
  EXPECT_GT(m.replication_factor, 0.5);
  EXPECT_LE(m.replication_factor, 4.0);
}

TEST(Ebv, TraceIsRecordedAndMonotoneInEdgesProcessed) {
  const Graph g = gen::chung_lu(1000, 8000, 2.4, false, 5);
  const EbvPartitioner ebv;
  std::vector<GrowthSample> trace;
  (void)ebv.partition_traced(g, config(8), 50, trace);
  ASSERT_GE(trace.size(), 10u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i].edges_processed, trace[i - 1].edges_processed);
    EXPECT_GE(trace[i].replication_factor, trace[i - 1].replication_factor)
        << "replication factor only grows as edges are assigned";
  }
  EXPECT_EQ(trace.back().edges_processed, g.num_edges());
}

TEST(Ebv, TraceFinalValueMatchesMetrics) {
  const Graph g = gen::chung_lu(800, 6000, 2.4, false, 8);
  const EbvPartitioner ebv;
  std::vector<GrowthSample> trace;
  const auto part = ebv.partition_traced(g, config(4), 20, trace);
  const auto m = compute_metrics(g, part);
  ASSERT_FALSE(trace.empty());
  EXPECT_NEAR(trace.back().replication_factor, m.replication_factor, 1e-12);
}

TEST(Ebv, NameIsStable) {
  EXPECT_EQ(EbvPartitioner().name(), "ebv");
}

}  // namespace
}  // namespace ebv
