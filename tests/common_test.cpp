#include <gtest/gtest.h>

#include <set>

#include "common/assert.h"
#include "common/format.h"
#include "common/rng.h"
#include "common/timer.h"

namespace ebv {
namespace {

TEST(Rng, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(1), mix64(1));
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 1000u) << "mix64 should be injective on small inputs";
}

TEST(Rng, DeriveSeedDecorrelatesStreams) {
  const std::uint64_t base = 42;
  EXPECT_NE(derive_seed(base, 0), derive_seed(base, 1));
  EXPECT_NE(derive_seed(base, 0), derive_seed(base + 1, 0));
  EXPECT_EQ(derive_seed(base, 7), derive_seed(base, 7));
}

TEST(Rng, BoundedStaysInRangeAndCoversRange) {
  Rng rng(123);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t x = bounded(rng, 7);
    ASSERT_LT(x, 7u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BoundedOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(bounded(rng, 1), 0u);
}

TEST(Format, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(1468365182ULL), "1,468,365,182");
}

TEST(Format, Fixed) {
  EXPECT_EQ(format_fixed(1.2345, 2), "1.23");
  EXPECT_EQ(format_fixed(1.0, 0), "1");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

TEST(Format, Sci) {
  EXPECT_EQ(format_sci(40500000.0, 2), "4.05e+07");
}

TEST(Format, Duration) {
  EXPECT_EQ(format_duration(0.0000005), "0.5 us");
  EXPECT_EQ(format_duration(0.0123), "12.3 ms");
  EXPECT_EQ(format_duration(4.56), "4.56 s");
}

TEST(Assert, RequireThrowsInvalidArgument) {
  EXPECT_THROW(EBV_REQUIRE(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(EBV_REQUIRE(true, "fine"));
}

TEST(Assert, RequireMessageIsIncluded) {
  try {
    EBV_REQUIRE(1 == 2, "the message");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("the message"), std::string::npos);
  }
}

TEST(Timer, MeasuresNonNegativeMonotonicTime) {
  Timer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  t.reset();
  EXPECT_GE(t.seconds(), 0.0);
}

}  // namespace
}  // namespace ebv
