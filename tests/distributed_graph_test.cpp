#include <gtest/gtest.h>

#include <set>

#include "bsp/distributed_graph.h"
#include "graph/generators.h"
#include "partition/metrics.h"
#include "partition/registry.h"

namespace ebv {
namespace {

using bsp::DistributedGraph;

EdgePartition round_robin(const Graph& g, PartitionId p) {
  EdgePartition part{p, std::vector<PartitionId>(g.num_edges())};
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    part.part_of_edge[e] = static_cast<PartitionId>(e % p);
  }
  return part;
}

TEST(DistributedGraph, LocalEdgeCountsSumToGlobal) {
  const Graph g = gen::chung_lu(500, 4000, 2.3, false, 1);
  const auto part = round_robin(g, 4);
  const DistributedGraph dist(g, part);
  std::uint64_t total = 0;
  for (PartitionId i = 0; i < 4; ++i) total += dist.local(i).num_edges();
  EXPECT_EQ(total, g.num_edges());
}

TEST(DistributedGraph, TotalReplicasMatchesMetrics) {
  const Graph g = gen::chung_lu(800, 6000, 2.2, false, 2);
  const auto part = make_partitioner("ebv")->partition(g, {.num_parts = 8});
  const DistributedGraph dist(g, part);
  const auto m = compute_metrics(g, part);
  EXPECT_EQ(dist.total_replicas(), m.total_replicas);
  std::uint64_t local_vertices = 0;
  for (PartitionId i = 0; i < 8; ++i) {
    local_vertices += dist.local(i).num_vertices();
  }
  EXPECT_EQ(local_vertices, m.total_replicas);
}

TEST(DistributedGraph, ExactlyOneMasterPerCoveredVertex) {
  const Graph g = gen::chung_lu(600, 5000, 2.3, false, 3);
  const auto part = round_robin(g, 6);
  const DistributedGraph dist(g, part);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto& parts = dist.parts_of(v);
    if (parts.empty()) {
      EXPECT_EQ(dist.master_of(v), kInvalidPartition);
      continue;
    }
    int masters = 0;
    for (const PartitionId i : parts) {
      const auto& ls = dist.local(i);
      const VertexId lv = ls.local_of(v);
      ASSERT_NE(lv, kInvalidVertex);
      if (ls.is_master[lv] != 0) ++masters;
      EXPECT_EQ(ls.master_part[lv], dist.master_of(v));
    }
    EXPECT_EQ(masters, 1) << "vertex " << v;
    EXPECT_NE(std::find(parts.begin(), parts.end(), dist.master_of(v)),
              parts.end())
        << "master must hold a replica";
  }
}

TEST(DistributedGraph, MasterHoldsMostIncidentEdges) {
  // All edges of vertex 0 in part 1 except one in part 0: master is 1.
  const Graph g(4, {{0, 1}, {0, 2}, {0, 3}});
  EdgePartition part{2, {0, 1, 1}};
  const DistributedGraph dist(g, part);
  EXPECT_EQ(dist.master_of(0), 1u);
}

TEST(DistributedGraph, LocalEdgesMapBackToGlobalEndpoints) {
  const Graph g = gen::erdos_renyi(300, 1500, 4);
  const auto part = round_robin(g, 3);
  const DistributedGraph dist(g, part);
  // Count per-(src,dst) multiset equality through local translation.
  std::multiset<std::pair<VertexId, VertexId>> global_edges;
  for (const Edge& e : g.edges()) global_edges.insert({e.src, e.dst});
  std::multiset<std::pair<VertexId, VertexId>> reconstructed;
  for (PartitionId i = 0; i < 3; ++i) {
    const auto& ls = dist.local(i);
    for (const Edge& e : ls.edges) {
      reconstructed.insert({ls.global_ids[e.src], ls.global_ids[e.dst]});
    }
  }
  EXPECT_EQ(global_edges, reconstructed);
}

TEST(DistributedGraph, ReplicationFlagsConsistent) {
  const Graph g = gen::chung_lu(400, 3000, 2.4, false, 6);
  const auto part = round_robin(g, 5);
  const DistributedGraph dist(g, part);
  for (PartitionId i = 0; i < 5; ++i) {
    const auto& ls = dist.local(i);
    for (VertexId lv = 0; lv < ls.num_vertices(); ++lv) {
      const VertexId gv = ls.global_ids[lv];
      EXPECT_EQ(ls.is_replicated[lv] != 0, dist.parts_of(gv).size() > 1);
      EXPECT_EQ(ls.local_of(gv), lv);
    }
  }
}

TEST(DistributedGraph, GlobalOutDegreesArePreserved) {
  const Graph g = gen::chung_lu(300, 2500, 2.4, false, 7);
  const auto part = round_robin(g, 4);
  const DistributedGraph dist(g, part);
  for (PartitionId i = 0; i < 4; ++i) {
    const auto& ls = dist.local(i);
    for (VertexId lv = 0; lv < ls.num_vertices(); ++lv) {
      EXPECT_EQ(ls.global_out_degree[lv], g.out_degree(ls.global_ids[lv]));
    }
  }
}

TEST(DistributedGraph, WeightsFollowEdges) {
  const Graph g = gen::road_grid(12, 12, 0.9, 8);
  const auto part = round_robin(g, 3);
  const DistributedGraph dist(g, part);
  std::vector<EdgeId> cursor(3, 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const PartitionId i = part.part_of_edge[e];
    const auto& ls = dist.local(i);
    EXPECT_FLOAT_EQ(ls.weight(cursor[i]), g.weight(e));
    ++cursor[i];
  }
}

TEST(DistributedGraph, UncoveredVertexHasNoReplicas) {
  const Graph g(5, {{0, 1}});  // vertices 2..4 uncovered
  EdgePartition part{2, {0}};
  const DistributedGraph dist(g, part);
  EXPECT_TRUE(dist.parts_of(3).empty());
  EXPECT_EQ(dist.master_of(3), kInvalidPartition);
  EXPECT_EQ(dist.local(1).num_vertices(), 0u);
}

TEST(DistributedGraph, RejectsMismatchedPartition) {
  const Graph g(3, {{0, 1}, {1, 2}});
  EdgePartition bad{2, {0}};
  EXPECT_THROW(DistributedGraph(g, bad), std::invalid_argument);
}

// Regression: a self-loop is ONE incidence of its vertex, not two. With
// the old double count, part 0's single self-loop would tie part 1's two
// real edges (2 vs 2) and steal the master via the lowest-id tie-break.
TEST(DistributedGraph, SelfLoopCountsOneIncidence) {
  const Graph g(3, {{0, 0}, {0, 1}, {0, 2}});
  const EdgePartition part{2, {0, 1, 1}};
  const DistributedGraph dist(g, part);
  // Correct counts for vertex 0: part 0 holds 1 incident edge (the
  // self-loop), part 1 holds 2 — the master must be part 1.
  EXPECT_EQ(dist.master_of(0), 1u);
  // Membership itself is unaffected: vertex 0 is replicated on both parts.
  const auto parts = dist.parts_of(0);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], 0u);
  EXPECT_EQ(parts[1], 1u);
  // And Σ|Vi| still matches the metrics module on the same partition.
  EXPECT_EQ(dist.total_replicas(), compute_metrics(g, part).total_replicas);
}

TEST(DistributedGraph, OutOfRangeVertexIdThrows) {
  const Graph g(4, {{0, 1}, {2, 3}});
  const EdgePartition part{2, {0, 1}};
  const DistributedGraph dist(g, part);
  EXPECT_THROW((void)dist.parts_of(4), std::invalid_argument);
  EXPECT_THROW((void)dist.master_of(4), std::invalid_argument);
  EXPECT_THROW((void)dist.parts_of(kInvalidVertex), std::invalid_argument);
  EXPECT_THROW((void)dist.master_of(kInvalidVertex), std::invalid_argument);
}

TEST(DistributedGraph, IsolatedVerticesStayUncovered) {
  // Vertices 5..9 have no incident edge anywhere.
  const Graph g(10, {{0, 1}, {1, 2}, {3, 4}});
  const auto part = round_robin(g, 3);
  const DistributedGraph dist(g, part);
  const auto m = compute_metrics(g, part);
  EXPECT_EQ(dist.total_replicas(), m.total_replicas);
  for (VertexId v = 5; v < 10; ++v) {
    EXPECT_TRUE(dist.parts_of(v).empty());
    EXPECT_EQ(dist.master_of(v), kInvalidPartition);
    for (PartitionId i = 0; i < 3; ++i) {
      EXPECT_EQ(dist.local(i).local_of(v), kInvalidVertex);
    }
  }
}

TEST(DistributedGraph, SinglePartHoldsEverythingUnreplicated) {
  const Graph g = gen::chung_lu(400, 3000, 2.3, false, 9);
  const auto part = round_robin(g, 1);
  const DistributedGraph dist(g, part);
  const auto m = compute_metrics(g, part);
  EXPECT_EQ(dist.num_workers(), 1u);
  EXPECT_EQ(dist.total_replicas(), m.total_replicas);
  EXPECT_EQ(dist.local(0).num_edges(), g.num_edges());
  const auto& ls = dist.local(0);
  for (VertexId lv = 0; lv < ls.num_vertices(); ++lv) {
    EXPECT_EQ(ls.is_replicated[lv], 0);
    EXPECT_EQ(ls.is_master[lv], 1);
    EXPECT_EQ(ls.master_part[lv], 0u);
  }
}

TEST(DistributedGraph, FullyReplicatedGraphMatchesMetrics) {
  // Even cycle with alternating edge parts: every vertex touches one edge
  // in part 0 and one in part 1, so every covered vertex is replicated
  // everywhere and Σ|Vi| = 2|V|.
  const VertexId n = 16;
  std::vector<Edge> edges;
  std::vector<PartitionId> assignment;
  for (VertexId v = 0; v < n; ++v) {
    edges.push_back({v, static_cast<VertexId>((v + 1) % n)});
    assignment.push_back(v % 2);
  }
  const Graph g(n, edges);
  const EdgePartition part{2, assignment};
  const DistributedGraph dist(g, part);
  const auto m = compute_metrics(g, part);
  EXPECT_EQ(dist.total_replicas(), m.total_replicas);
  EXPECT_EQ(dist.total_replicas(), 2u * n);
  for (VertexId v = 0; v < n; ++v) {
    EXPECT_EQ(dist.parts_of(v).size(), 2u);
    for (PartitionId i = 0; i < 2; ++i) {
      const VertexId lv = dist.local(i).local_of(v);
      ASSERT_NE(lv, kInvalidVertex);
      EXPECT_EQ(dist.local(i).is_replicated[lv], 1);
    }
  }
}

}  // namespace
}  // namespace ebv
