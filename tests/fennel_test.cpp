#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "partition/fennel.h"
#include "partition/metrics.h"
#include "partition/registry.h"

namespace ebv {
namespace {

PartitionConfig config(PartitionId p) {
  PartitionConfig c;
  c.num_parts = p;
  return c;
}

TEST(Fennel, PlacesEveryVertex) {
  const Graph g = gen::chung_lu(800, 6000, 2.3, false, 1);
  const FennelPartitioner fennel;
  const auto placed = fennel.partition_vertices(g, config(6));
  ASSERT_EQ(placed.size(), g.num_vertices());
  for (const PartitionId i : placed) EXPECT_LT(i, 6u);
}

TEST(Fennel, RespectsLoadCap) {
  const Graph g = gen::chung_lu(2000, 16000, 2.2, false, 2);
  const FennelPartitioner fennel;
  const auto placed = fennel.partition_vertices(g, config(8));
  std::vector<std::uint64_t> load(8, 0);
  for (const PartitionId i : placed) ++load[i];
  const auto max_load = *std::max_element(load.begin(), load.end());
  EXPECT_LE(static_cast<double>(max_load), 1.1 * 2000.0 / 8 + 1.0);
}

TEST(Fennel, EdgeCutReplicationBelowTwoAndAboveRandom) {
  const Graph g = gen::chung_lu(2000, 16000, 2.3, false, 3);
  const FennelPartitioner fennel;
  const auto placed = fennel.partition_vertices(g, config(8));
  const auto m = compute_edge_cut_metrics(g, placed, 8);
  EXPECT_LE(m.replication_factor, 2.0);
  // Locality-aware placement must beat a random vertex assignment.
  std::vector<PartitionId> random_placed(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    random_placed[v] = static_cast<PartitionId>(v % 8);
  }
  const auto random_m = compute_edge_cut_metrics(g, random_placed, 8);
  EXPECT_LT(m.replication_factor, random_m.replication_factor);
}

TEST(Fennel, EdgeProjectionFollowsSource) {
  const Graph g = gen::erdos_renyi(300, 1500, 4);
  const FennelPartitioner fennel;
  const auto placed = fennel.partition_vertices(g, config(4));
  const auto edges = fennel.partition(g, config(4));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(edges.part_of_edge[e], placed[g.edge(e).src]);
  }
}

TEST(Fennel, RegisteredInRegistry) {
  EXPECT_EQ(make_partitioner("fennel")->name(), "fennel");
  const auto& all = all_partitioners();
  EXPECT_NE(std::find(all.begin(), all.end(), "fennel"), all.end());
}

}  // namespace
}  // namespace ebv
