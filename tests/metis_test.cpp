#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "partition/metis_like.h"
#include "partition/metrics.h"

namespace ebv {
namespace {

PartitionConfig config(PartitionId p) {
  PartitionConfig c;
  c.num_parts = p;
  return c;
}

TEST(MetisLike, VertexPartitionCoversAllVertices) {
  const Graph g = gen::erdos_renyi(500, 3000, 3);
  const MetisLikePartitioner metis;
  const auto vpart = metis.partition_vertices(g, config(4));
  ASSERT_EQ(vpart.size(), g.num_vertices());
  std::set<PartitionId> used;
  for (const PartitionId i : vpart) {
    ASSERT_LT(i, 4u);
    used.insert(i);
  }
  EXPECT_EQ(used.size(), 4u) << "all parts should be used";
}

TEST(MetisLike, VertexCountsAreBalanced) {
  const Graph g = gen::chung_lu(3000, 24000, 2.2, false, 7);
  const MetisLikePartitioner metis;
  const auto vpart = metis.partition_vertices(g, config(8));
  std::vector<std::uint64_t> counts(8, 0);
  for (const PartitionId i : vpart) ++counts[i];
  const std::uint64_t max_count =
      *std::max_element(counts.begin(), counts.end());
  const double imbalance =
      static_cast<double>(max_count) /
      (static_cast<double>(g.num_vertices()) / 8.0);
  EXPECT_LT(imbalance, 1.25) << "METIS-like balances vertices";
}

TEST(MetisLike, EdgeProjectionFollowsSourceVertex) {
  const Graph g = gen::erdos_renyi(200, 1000, 5);
  const MetisLikePartitioner metis;
  const auto vpart = metis.partition_vertices(g, config(4));
  const auto epart = metis.partition(g, config(4));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(epart.part_of_edge[e], vpart[g.edge(e).src]);
  }
}

TEST(MetisLike, EdgeImbalanceGrowsWithSkew) {
  const MetisLikePartitioner metis;
  const Graph skewed = gen::chung_lu(3000, 30000, 1.9, false, 8);
  const Graph road = gen::road_grid(55, 55, 0.92, 8);
  const auto m_skewed = compute_metrics(skewed, metis.partition(skewed, config(8)));
  const auto m_road = compute_metrics(road, metis.partition(road, config(8)));
  EXPECT_GT(m_skewed.edge_imbalance, m_road.edge_imbalance)
      << "hubs concentrate edges in a vertex-balanced partition";
}

TEST(MetisLike, LowReplicationOnRoadGraph) {
  // On mesh graphs the multilevel edge-cut keeps locality: the vertex-cut
  // replication factor of its projection should be near 1.
  const Graph g = gen::road_grid(40, 40, 0.95, 9);
  const MetisLikePartitioner metis;
  const auto m = compute_metrics(g, metis.partition(g, config(4)));
  EXPECT_LT(m.replication_factor, 1.35);
}

TEST(MetisLike, DeterministicUnderSeed) {
  const Graph g = gen::erdos_renyi(400, 2000, 6);
  const MetisLikePartitioner metis;
  const auto a = metis.partition(g, config(4));
  const auto b = metis.partition(g, config(4));
  EXPECT_EQ(a.part_of_edge, b.part_of_edge);
}

TEST(MetisLike, TinyGraphSmallerThanCoarsenTarget) {
  const Graph g(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  const MetisLikePartitioner metis;
  const auto vpart = metis.partition_vertices(g, config(2));
  ASSERT_EQ(vpart.size(), 6u);
  for (const PartitionId i : vpart) EXPECT_LT(i, 2u);
}

TEST(MetisLike, CustomParametersAreHonoured) {
  MetisLikePartitioner::Parameters params;
  params.balance_tolerance = 1.01;
  params.refinement_passes = 8;
  const MetisLikePartitioner metis(params);
  const Graph g = gen::erdos_renyi(600, 3600, 10);
  const auto vpart = metis.partition_vertices(g, config(4));
  std::vector<std::uint64_t> counts(4, 0);
  for (const PartitionId i : vpart) ++counts[i];
  const std::uint64_t max_count =
      *std::max_element(counts.begin(), counts.end());
  EXPECT_LT(static_cast<double>(max_count) / (600.0 / 4.0), 1.3);
}

}  // namespace
}  // namespace ebv
