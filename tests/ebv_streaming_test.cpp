// Streaming EBV (the paper's §VII future-work extension): one-pass,
// bounded-window variant of Algorithm 1.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "partition/ebv.h"
#include "partition/ebv_streaming.h"
#include "partition/metrics.h"

namespace ebv {
namespace {

PartitionConfig config(PartitionId p) {
  PartitionConfig c;
  c.num_parts = p;
  return c;
}

TEST(StreamingEbv, ValidAndDeterministic) {
  const Graph g = gen::chung_lu(1000, 8000, 2.3, false, 1);
  const StreamingEbvPartitioner stream;
  const auto a = stream.partition(g, config(8));
  const auto b = stream.partition(g, config(8));
  ASSERT_EQ(a.part_of_edge.size(), g.num_edges());
  EXPECT_EQ(a.part_of_edge, b.part_of_edge);
  for (const PartitionId i : a.part_of_edge) EXPECT_LT(i, 8u);
}

TEST(StreamingEbv, StaysBalancedLikeOfflineEbv) {
  const Graph g = gen::chung_lu(3000, 30000, 2.2, false, 2);
  const StreamingEbvPartitioner stream;
  const auto m = compute_metrics(g, stream.partition(g, config(16)));
  // One-pass assignment with partial degree knowledge is slightly looser
  // than the offline algorithm's ~1.01, but must stay near-balanced.
  EXPECT_LT(m.edge_imbalance, 1.1);
  EXPECT_LT(m.vertex_imbalance, 1.1);
}

TEST(StreamingEbv, WindowImprovesOverWindowOne) {
  // A window of 1 is plain natural-order streaming; a real window lets the
  // partitioner mimic the sorted preprocessing and should not be worse.
  const Graph g = gen::chung_lu(3000, 30000, 2.2, false, 3);
  const StreamingEbvPartitioner no_window(1);
  const StreamingEbvPartitioner windowed(4096);
  const double rep1 =
      compute_metrics(g, no_window.partition(g, config(16))).replication_factor;
  const double rep2 =
      compute_metrics(g, windowed.partition(g, config(16))).replication_factor;
  EXPECT_LE(rep2, rep1 * 1.02);
}

TEST(StreamingEbv, CloseToOfflineEbvQuality) {
  const Graph g = gen::chung_lu(2000, 20000, 2.3, false, 4);
  const EbvPartitioner offline;
  const StreamingEbvPartitioner stream(4096);
  const double rep_offline =
      compute_metrics(g, offline.partition(g, config(8))).replication_factor;
  const double rep_stream =
      compute_metrics(g, stream.partition(g, config(8))).replication_factor;
  // One-pass with partial degree knowledge costs some quality, but must
  // stay in the offline algorithm's neighbourhood (well below DBH-level).
  EXPECT_LT(rep_stream, rep_offline * 1.5);
}

TEST(StreamingEbv, WindowOneEqualsNaturalOrderOfflineEbv) {
  // With window == 1, each edge is assigned immediately in stream order —
  // exactly offline EBV with EdgeOrder::kNatural.
  const Graph g = gen::chung_lu(800, 6000, 2.4, false, 5);
  const StreamingEbvPartitioner stream(1);
  const EbvPartitioner offline;
  PartitionConfig natural = config(8);
  natural.edge_order = EdgeOrder::kNatural;
  EXPECT_EQ(stream.partition(g, config(8)).part_of_edge,
            offline.partition(g, natural).part_of_edge);
}

TEST(StreamingEbv, HonoursAlphaBeta) {
  // At the extremes the hyper-parameters must dominate: near-zero balance
  // pressure lets the replication-greedy term pile edges up, while heavy
  // pressure keeps the stream tightly balanced.
  const Graph g = gen::chung_lu(1000, 8000, 2.2, false, 6);
  const StreamingEbvPartitioner stream;
  PartitionConfig heavy = config(8);
  heavy.alpha = 64.0;
  heavy.beta = 64.0;
  PartitionConfig light = config(8);
  light.alpha = 0.001;
  light.beta = 0.001;
  const auto m_heavy = compute_metrics(g, stream.partition(g, heavy));
  const auto m_light = compute_metrics(g, stream.partition(g, light));
  // Balance holds in both regimes (even tiny α/β act as the tie-breaker),
  // but weak pressure must buy a lower replication factor.
  EXPECT_LT(m_heavy.edge_imbalance, 1.1);
  EXPECT_LT(m_light.edge_imbalance, 1.1);
  EXPECT_LT(m_light.replication_factor, m_heavy.replication_factor)
      << "weak balance pressure trades balance for fewer replicas";
}

}  // namespace
}  // namespace ebv
