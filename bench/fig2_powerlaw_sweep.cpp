// Figure 2 — execution time of CC, PR and SSSP on the three power-law
// stand-ins, sweeping the number of workers, for the six partition
// algorithms plus the Galois-like and Blogel-like comparators.
#include <iostream>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "bsp/cost_model.h"
#include "common/format.h"
#include "engines/blogel.h"
#include "engines/smp_engine.h"
#include "partition/registry.h"

namespace {

using namespace ebv;

double smp_time(const Graph& g, analysis::App app, PartitionId workers) {
  engines::SmpEngine::Options opts;
  opts.threads = workers;
  const engines::SmpEngine engine(opts);
  switch (app) {
    case analysis::App::kCC: return engine.connected_components(g).execution_seconds;
    case analysis::App::kPageRank: return engine.pagerank(g, 20).execution_seconds;
    case analysis::App::kSssp: return engine.sssp(g, 0).execution_seconds;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv, 0.25);
  bench::preamble(
      "Figure 2: execution time vs workers (power-law graphs)",
      "paper: EBV fastest in most cases, -16.8% vs Ginger on average; "
      "Galois competitive on LiveJournal, limited on larger graphs",
      scale);

  const std::vector<analysis::Dataset> graphs = {
      analysis::make_livejournal_sim(scale),
      analysis::make_twitter_sim(scale),
      analysis::make_friendster_sim(scale)};
  const std::vector<PartitionId> worker_counts = {4, 8, 16, 24};

  for (const analysis::App app :
       {analysis::App::kCC, analysis::App::kPageRank, analysis::App::kSssp}) {
    for (const auto& d : graphs) {
      std::cout << analysis::app_name(app) << " - " << d.name << " (|E|="
                << with_commas(d.graph.num_edges()) << ")\n";
      std::vector<std::string> headers = {"system"};
      for (const PartitionId w : worker_counts) {
        headers.push_back("p=" + std::to_string(w));
      }
      analysis::Table table(headers);

      for (const auto& name : paper_partitioners()) {
        std::vector<std::string> row = {name};
        for (const PartitionId w : worker_counts) {
          const auto r = analysis::run_experiment(d.graph, name, w, app);
          row.push_back(format_duration(r.run.execution_seconds));
        }
        table.add_row(row);
      }
      {  // Galois-like shared-memory engine.
        std::vector<std::string> row = {"galois*"};
        for (const PartitionId w : worker_counts) {
          row.push_back(format_duration(smp_time(d.graph, app, w)));
        }
        table.add_row(row);
      }
      if (app != analysis::App::kPageRank) {  // paper excludes Blogel from PR
        std::vector<std::string> row = {"blogel*"};
        const engines::VoronoiPartitioner voronoi;
        for (const PartitionId w : worker_counts) {
          PartitionConfig config;
          config.num_parts = w;
          const EdgePartition part = voronoi.partition(d.graph, config);
          auto r = analysis::run_with_partition(d.graph, part, "blogel", app);
          double exec = r.run.execution_seconds;
          if (app == analysis::App::kCC) {
            exec += engines::VoronoiPartitioner::precompute_seconds(
                d.graph, w, bsp::ClusterCostModel());
          }
          row.push_back(format_duration(exec));
        }
        table.add_row(row);
      }
      table.print(std::cout);
      std::cout << "\n";
    }
  }
  std::cout << "(*) galois/blogel are the simulated cross-framework\n"
               "comparators described in DESIGN.md section 4.\n";
  return 0;
}
