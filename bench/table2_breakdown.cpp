// Table II — breakdown (comp, comm, ΔC, execution time) of CC with 4
// workers over the LiveJournal stand-in, for all six partition algorithms.
#include <iostream>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "common/format.h"
#include "partition/registry.h"

int main(int argc, char** argv) {
  using namespace ebv;
  const double scale = bench::parse_scale(argc, argv, 1.0);
  bench::preamble(
      "Table II: breakdown (seconds) of CC with 4 workers over LiveJournal",
      "paper: EBV exec 23.41s shortest; NE/METIS have the largest delta-C "
      "(28.02 / 22.70) despite low comm",
      scale);

  const auto d = analysis::make_livejournal_sim(scale);
  analysis::Table table(
      {"partitioner", "comp", "comm", "delta C", "execution time"});
  for (const auto& name : paper_partitioners()) {
    const auto r =
        analysis::run_experiment(d.graph, name, 4, analysis::App::kCC);
    table.add_row({name, format_duration(r.run.comp_seconds),
                   format_duration(r.run.comm_seconds),
                   format_duration(r.run.delta_c_seconds),
                   format_duration(r.run.execution_seconds)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: EBV has the shortest execution time;\n"
               "NE and METIS show outsized delta-C (workload imbalance)\n"
               "even though their comm volume is small.\n";
  return 0;
}
