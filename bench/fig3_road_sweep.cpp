// Figure 3 — CC and SSSP execution time over the USARoad stand-in,
// sweeping the number of workers: the non-power-law case where the
// local-based partitioners (NE, METIS) shine.
#include <iostream>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "bsp/cost_model.h"
#include "common/format.h"
#include "engines/blogel.h"
#include "engines/smp_engine.h"
#include "partition/registry.h"

int main(int argc, char** argv) {
  using namespace ebv;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::preamble(
      "Figure 3: CC and SSSP over USARoad vs workers",
      "paper: NE best among all partitioners; METIS comparable to "
      "EBV/Ginger/CVC on the road graph",
      scale);

  const auto d = analysis::make_usaroad_sim(scale);
  const std::vector<PartitionId> worker_counts = {4, 8, 12, 16, 24};

  for (const analysis::App app : {analysis::App::kCC, analysis::App::kSssp}) {
    std::cout << analysis::app_name(app) << " - usaroad (|E|="
              << with_commas(d.graph.num_edges()) << ")\n";
    std::vector<std::string> headers = {"system"};
    for (const PartitionId w : worker_counts) {
      headers.push_back("p=" + std::to_string(w));
    }
    analysis::Table table(headers);
    for (const auto& name : paper_partitioners()) {
      std::vector<std::string> row = {name};
      for (const PartitionId w : worker_counts) {
        const auto r = analysis::run_experiment(d.graph, name, w, app);
        row.push_back(format_duration(r.run.execution_seconds));
      }
      table.add_row(row);
    }
    {
      std::vector<std::string> row = {"galois*"};
      for (const PartitionId w : worker_counts) {
        engines::SmpEngine::Options opts;
        opts.threads = w;
        const engines::SmpEngine engine(opts);
        const double t = app == analysis::App::kCC
                             ? engine.connected_components(d.graph)
                                   .execution_seconds
                             : engine.sssp(d.graph, 0).execution_seconds;
        row.push_back(format_duration(t));
      }
      table.add_row(row);
    }
    {
      std::vector<std::string> row = {"blogel*"};
      const engines::VoronoiPartitioner voronoi;
      for (const PartitionId w : worker_counts) {
        PartitionConfig config;
        config.num_parts = w;
        const EdgePartition part = voronoi.partition(d.graph, config);
        auto r = analysis::run_with_partition(d.graph, part, "blogel", app);
        double exec = r.run.execution_seconds;
        if (app == analysis::App::kCC) {
          exec += engines::VoronoiPartitioner::precompute_seconds(
              d.graph, w, bsp::ClusterCostModel());
        }
        row.push_back(format_duration(exec));
      }
      table.add_row(row);
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
