// Partition overhead — wall-clock cost of each partition algorithm per
// dataset. The paper excludes partition time from Figures 2/3 (§V-B);
// this bench makes the excluded quantity visible, reproducing the
// self-based vs local-based overhead gap discussed in §VI.
#include <iostream>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "common/format.h"
#include "common/timer.h"
#include "partition/registry.h"

int main(int argc, char** argv) {
  using namespace ebv;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::preamble(
      "Partition overhead (wall clock, excluded from the paper's Fig. 2/3)",
      "self-based algorithms (hashing) are near-free; EBV pays O(p) per "
      "edge; local-based NE/METIS pay for global structure",
      scale);

  for (const auto& d : analysis::standard_datasets(scale)) {
    std::cout << d.name << " (|E|=" << with_commas(d.graph.num_edges())
              << ", p=" << d.table3_parts << ")\n";
    analysis::Table table({"partitioner", "wall time", "edges/s"});
    for (const auto& name : all_partitioners()) {
      const auto partitioner = make_partitioner(name);
      PartitionConfig config;
      config.num_parts = d.table3_parts;
      const Timer timer;
      (void)partitioner->partition(d.graph, config);
      const double elapsed = timer.seconds();
      table.add_row({name, format_duration(elapsed),
                     format_sci(static_cast<double>(d.graph.num_edges()) /
                                elapsed)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
