// Table IV — total number of communication messages on the CC algorithm,
// per partition algorithm and graph (12/12/32/32 workers as in the paper).
#include <iostream>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "common/format.h"
#include "partition/registry.h"

int main(int argc, char** argv) {
  using namespace ebv;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::preamble(
      "Table IV: total communication messages for CC",
      "paper: EBV < Ginger < DBH/CVC on power-law graphs; NE/METIS far "
      "fewer on USARoad (3.14e5 / 1.63e4 vs EBV 4.05e7)",
      scale);

  for (const auto& d : analysis::standard_datasets(scale)) {
    std::cout << d.name << " (p=" << d.table3_parts << ")\n";
    analysis::Table table(
        {"partitioner", "messages", "replication factor"});
    for (const auto& name : paper_partitioners()) {
      const auto r = analysis::run_experiment(d.graph, name, d.table3_parts,
                                              analysis::App::kCC);
      table.add_row({name,
                     format_sci(static_cast<double>(r.run.total_messages)),
                     format_fixed(r.metrics.replication_factor, 2)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape: message totals track the replication factor\n"
               "within the self-based group, and NE/METIS lead by a large\n"
               "margin on the road graph.\n";
  return 0;
}
