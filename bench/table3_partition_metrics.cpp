// Table III — edge/vertex imbalance factors and replication factor for
// EBV, Ginger, DBH, CVC, NE and METIS over the four graphs (12/12/32/32
// subgraphs as in the paper).
#include <iostream>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "common/format.h"
#include "common/timer.h"
#include "graph/stats.h"
#include "partition/metrics.h"
#include "partition/registry.h"

int main(int argc, char** argv) {
  using namespace ebv;
  const double scale = bench::parse_scale(argc, argv, 1.0);
  bench::preamble(
      "Table III: partitioning metrics (edge imb / vertex imb / replication)",
      "paper: EBV ~1.00/1.00 balance with replication below Ginger/DBH/CVC; "
      "NE vertex imbalance and METIS edge imbalance grow as eta drops",
      scale);

  for (const auto& d : analysis::standard_datasets(scale)) {
    const double eta = estimate_power_law_exponent(d.graph);
    std::cout << d.name << " (eta=" << format_fixed(eta, 2)
              << ", p=" << d.table3_parts << ")\n";
    analysis::Table table({"partitioner", "edge imbalance", "vertex imbalance",
                           "replication factor"});
    for (const auto& name : paper_partitioners()) {
      // METIS is scored with the paper's edge-cut metric definitions
      // (§III-C); everything else with the vertex-cut definitions.
      const PartitionMetrics m =
          analysis::paper_metrics(d.graph, name, d.table3_parts);
      table.add_row({name, format_fixed(m.edge_imbalance, 2),
                     format_fixed(m.vertex_imbalance, 2),
                     format_fixed(m.replication_factor, 2)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
