// Ablation C — streaming EBV (the paper's §VII future-work direction):
// replication factor and balance as a function of the buffer window size,
// compared against offline EBV-sort and EBV-unsort.
#include <iostream>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "common/format.h"
#include "common/timer.h"
#include "partition/ebv.h"
#include "partition/ebv_streaming.h"
#include "partition/metrics.h"

int main(int argc, char** argv) {
  using namespace ebv;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::preamble(
      "Ablation C: streaming EBV window size (paper future work, sec. VII)",
      "a one-pass bounded-buffer EBV should approach the offline sorted "
      "algorithm as the window grows",
      scale);

  const auto d = analysis::make_livejournal_sim(scale);
  constexpr PartitionId kParts = 16;

  analysis::Table table({"variant", "replication", "edge imb", "vertex imb",
                         "partition time"});
  auto add = [&](const std::string& label, const Partitioner& partitioner,
                 const PartitionConfig& config) {
    const Timer timer;
    const EdgePartition part = partitioner.partition(d.graph, config);
    const double elapsed = timer.seconds();
    const PartitionMetrics m = compute_metrics(d.graph, part);
    table.add_row({label, format_fixed(m.replication_factor, 3),
                   format_fixed(m.edge_imbalance, 3),
                   format_fixed(m.vertex_imbalance, 3),
                   format_duration(elapsed)});
  };

  PartitionConfig config;
  config.num_parts = kParts;
  for (const std::size_t window : {1u, 64u, 1024u, 16384u, 262144u}) {
    add("stream w=" + std::to_string(window),
        StreamingEbvPartitioner(window), config);
  }
  const EbvPartitioner offline;
  add("offline sorted", offline, config);
  PartitionConfig natural = config;
  natural.edge_order = EdgeOrder::kNatural;
  add("offline natural", offline, natural);

  table.print(std::cout);
  std::cout << "\nExpected shape: replication decreases monotonically-ish\n"
               "with the window; a large window closes most of the gap to\n"
               "the offline sorted algorithm without a global sort.\n";
  return 0;
}
