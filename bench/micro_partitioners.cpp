// Micro-benchmarks (google-benchmark): partitioner throughput in edges/s
// and the cost of the building blocks (CSR construction, edge sorting,
// metrics, distributed-graph assembly).
#include <benchmark/benchmark.h>

#include "bsp/distributed_graph.h"
#include "graph/csr.h"
#include "graph/generators.h"
#include "partition/eva_scorer.h"
#include "partition/metrics.h"
#include "partition/registry.h"

namespace {

using namespace ebv;

const Graph& test_graph() {
  static const Graph g = gen::chung_lu(20'000, 200'000, 2.3, false, 42);
  return g;
}

void BM_Partitioner(benchmark::State& state, const std::string& name) {
  const Graph& g = test_graph();
  const auto partitioner = make_partitioner(name);
  PartitionConfig config;
  config.num_parts = static_cast<PartitionId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(partitioner->partition(g, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}

// 1M-edge power-law graph for the parallel-EBV trajectory recorded in
// BENCH_partition.json (serial vs multi-thread chunked candidate scoring).
const Graph& big_graph() {
  static const Graph g = gen::chung_lu(100'000, 1'000'000, 2.3, false, 42);
  return g;
}

// The Eva scoring core in isolation (no edge sort): assign every edge of
// the 1M-edge graph in natural order through run_eva_scoring. Args are
// {num_threads, batch}; {1, 1} is the serial row the BENCH_partition.json
// trajectory tracks in edges/sec.
void BM_EvaScore(benchmark::State& state) {
  const Graph& g = big_graph();
  PartitionConfig config;
  config.num_parts = 64;
  config.num_threads = static_cast<std::uint32_t>(state.range(0));
  config.batch_size = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    detail::EvaState eva(g, config);
    EdgeId next = 0;
    std::uint64_t committed = 0;
    detail::run_eva_scoring(
        eva, config.num_threads, config.batch_size,
        [&](VertexId& u, VertexId& v) {
          if (next == g.num_edges()) return false;
          const auto [src, dst] = g.edge(next++);
          u = src;
          v = dst;
          return true;
        },
        [&](PartitionId best, unsigned) { committed += best; });
    benchmark::DoNotOptimize(committed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}

void BM_EbvThreads(benchmark::State& state) {
  const Graph& g = big_graph();
  const auto partitioner = make_partitioner("ebv");
  PartitionConfig config;
  config.num_parts = 64;
  config.num_threads = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(partitioner->partition(g, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}

void BM_EdgeSortThreads(benchmark::State& state) {
  const Graph& g = big_graph();
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        make_edge_order(g, EdgeOrder::kSortedAscending, 42, threads));
  }
}

void BM_CsrBuild(benchmark::State& state) {
  const Graph& g = test_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CsrGraph::build(g, CsrGraph::Direction::kBoth));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}

void BM_EdgeSort(benchmark::State& state) {
  const Graph& g = test_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        make_edge_order(g, EdgeOrder::kSortedAscending, 42));
  }
}

void BM_Metrics(benchmark::State& state) {
  const Graph& g = test_graph();
  const auto part = make_partitioner("dbh")->partition(g, {.num_parts = 16});
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_metrics(g, part));
  }
}

void BM_DistributedGraphBuild(benchmark::State& state) {
  const Graph& g = test_graph();
  const auto part = make_partitioner("ebv")->partition(g, {.num_parts = 16});
  for (auto _ : state) {
    benchmark::DoNotOptimize(bsp::DistributedGraph(g, part));
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_Partitioner, ebv, std::string("ebv"))->Arg(16);
BENCHMARK_CAPTURE(BM_Partitioner, ginger, std::string("ginger"))->Arg(16);
BENCHMARK_CAPTURE(BM_Partitioner, dbh, std::string("dbh"))->Arg(16);
BENCHMARK_CAPTURE(BM_Partitioner, cvc, std::string("cvc"))->Arg(16);
BENCHMARK_CAPTURE(BM_Partitioner, ne, std::string("ne"))->Arg(16);
BENCHMARK_CAPTURE(BM_Partitioner, metis, std::string("metis"))->Arg(16);
BENCHMARK_CAPTURE(BM_Partitioner, hdrf, std::string("hdrf"))->Arg(16);
BENCHMARK_CAPTURE(BM_Partitioner, ebv_p4, std::string("ebv"))->Arg(4);
BENCHMARK_CAPTURE(BM_Partitioner, ebv_p64, std::string("ebv"))->Arg(64);
BENCHMARK(BM_EvaScore)
    ->Args({1, 1})
    ->Args({2, 256})
    ->Args({4, 256})
    ->Args({4, 4096})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_EbvThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_EdgeSortThreads)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_CsrBuild);
BENCHMARK(BM_EdgeSort);
BENCHMARK(BM_Metrics);
BENCHMARK(BM_DistributedGraphBuild);
