// Shared helpers for the bench binaries: scale parsing and common headers.
//
// Every bench accepts an optional scale factor as argv[1] (or the
// EBV_BENCH_SCALE environment variable); 1.0 matches EXPERIMENTS.md. Each
// binary prints the table/figure it regenerates, with the paper's headline
// values quoted in the preamble for side-by-side comparison.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

namespace ebv::bench {

inline double parse_scale(int argc, char** argv, double default_scale) {
  if (argc > 1) {
    const double s = std::atof(argv[1]);
    if (s > 0.0) return s;
  }
  if (const char* env = std::getenv("EBV_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return default_scale;
}

inline void preamble(const std::string& what, const std::string& paper_claim,
                     double scale) {
  std::cout << "=== " << what << " ===\n"
            << "paper reference: " << paper_claim << "\n"
            << "dataset scale:   " << scale
            << " (synthetic stand-ins; see DESIGN.md section 4)\n\n";
}

}  // namespace ebv::bench
