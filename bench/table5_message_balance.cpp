// Table V — max/mean ratio of per-worker CC messages (with the imbalance
// factors in parentheses), the paper's message-balance metric.
#include <iostream>

#include "analysis/experiment.h"
#include "analysis/message_stats.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "common/format.h"
#include "partition/registry.h"

int main(int argc, char** argv) {
  using namespace ebv;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::preamble(
      "Table V: max/mean ratio of per-worker messages on CC",
      "paper: ~1.00 for EBV/Ginger/DBH/CVC; NE 1.6-2.7 and METIS 1.8-3.3, "
      "growing with skew",
      scale);

  for (const auto& d : analysis::standard_datasets(scale)) {
    std::cout << d.name << " (p=" << d.table3_parts << ")\n";
    analysis::Table table({"partitioner", "max/mean", "(edge imb/vertex imb)"});
    for (const auto& name : paper_partitioners()) {
      const auto r = analysis::run_experiment(d.graph, name, d.table3_parts,
                                              analysis::App::kCC);
      const auto s = analysis::compute_message_stats(r.run);
      // Imbalance factors use the paper's per-family definitions
      // (edge-cut for METIS), matching Table III.
      const auto m = analysis::paper_metrics(d.graph, name, d.table3_parts);
      table.add_row({name, format_fixed(s.max_over_mean, 3),
                     "(" + format_fixed(m.edge_imbalance, 2) + "/" +
                         format_fixed(m.vertex_imbalance, 2) + ")"});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
