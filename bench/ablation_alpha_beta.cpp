// Ablation A — sensitivity of EBV to the hyper-parameters α and β
// (paper §IV-C sets 1/1 as default), plus tightness of the Theorem 1/2
// worst-case bounds against the realised imbalance factors.
#include <iostream>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "common/format.h"
#include "partition/ebv.h"
#include "partition/metrics.h"

int main(int argc, char** argv) {
  using namespace ebv;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::preamble(
      "Ablation A: EBV alpha/beta sweep + theorem bound tightness",
      "paper: larger alpha/beta focus the evaluation function on balance; "
      "Theorems 1/2 give worst-case imbalance upper bounds",
      scale);

  const auto d = analysis::make_livejournal_sim(scale);
  const EbvPartitioner ebv;
  const std::vector<double> grid = {0.25, 1.0, 4.0, 16.0};

  analysis::Table table({"alpha", "beta", "edge imb", "bound(T1)",
                         "vertex imb", "bound(T2)", "replication"});
  for (const double alpha : grid) {
    for (const double beta : grid) {
      PartitionConfig config;
      config.num_parts = 16;
      config.alpha = alpha;
      config.beta = beta;
      const EdgePartition part = ebv.partition(d.graph, config);
      const PartitionMetrics m = compute_metrics(d.graph, part);
      table.add_row({format_fixed(alpha, 2), format_fixed(beta, 2),
                     format_fixed(m.edge_imbalance, 4),
                     format_fixed(EbvPartitioner::edge_imbalance_bound(
                                      d.graph, config), 2),
                     format_fixed(m.vertex_imbalance, 4),
                     format_fixed(EbvPartitioner::vertex_imbalance_bound(
                                      d.graph, config, m.total_replicas), 2),
                     format_fixed(m.replication_factor, 3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: realised imbalance always below the\n"
               "bounds; increasing alpha (beta) tightens the edge (vertex)\n"
               "balance at a small replication cost.\n";
  return 0;
}
