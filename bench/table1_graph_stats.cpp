// Table I — statistics of the tested graphs: |V|, |E|, average degree and
// the power-law exponent η, for the four dataset stand-ins.
#include <iostream>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "common/format.h"
#include "graph/stats.h"

int main(int argc, char** argv) {
  using namespace ebv;
  const double scale = bench::parse_scale(argc, argv, 1.0);
  bench::preamble(
      "Table I: statistics of tested graphs",
      "eta: USARoad 6.30, LiveJournal 2.64, Friendster 2.43, Twitter 1.87",
      scale);

  analysis::Table table({"graph", "type", "V", "E", "avg degree",
                         "eta (measured)", "eta (paper)"});
  for (const auto& d : analysis::standard_datasets(scale)) {
    const GraphStats s = compute_stats(d.graph);
    table.add_row({d.name, d.power_law ? "power-law" : "non-power-law",
                   with_commas(s.num_vertices), with_commas(s.num_edges),
                   format_fixed(s.average_degree, 2), format_fixed(s.eta, 2),
                   format_fixed(d.paper_eta, 2)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: measured eta decreases down the table\n"
               "(usaroad least skewed, twitter most skewed), matching the\n"
               "paper's ordering.\n";
  return 0;
}
