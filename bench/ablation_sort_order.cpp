// Ablation B — edge processing order variants for EBV (§IV-C / §V-D):
// ascending degree-sum (the paper's preprocessing), descending, natural
// and random, measured by final partition quality and downstream CC cost.
#include <iostream>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "common/format.h"
#include "partition/ebv.h"
#include "partition/metrics.h"

int main(int argc, char** argv) {
  using namespace ebv;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::preamble(
      "Ablation B: EBV edge-order variants",
      "paper: ascending degree-sum order reduces the replication factor "
      "significantly on power-law graphs (Fig. 5)",
      scale);

  const auto datasets = analysis::standard_datasets(scale);
  const EbvPartitioner ebv;
  struct OrderCase {
    const char* label;
    EdgeOrder order;
  };
  const OrderCase orders[] = {
      {"ascending (paper)", EdgeOrder::kSortedAscending},
      {"descending", EdgeOrder::kSortedDescending},
      {"natural", EdgeOrder::kNatural},
      {"random", EdgeOrder::kRandom},
  };

  for (const auto& d : datasets) {
    std::cout << d.name << " (p=16)\n";
    analysis::Table table({"order", "replication", "edge imb", "vertex imb",
                           "CC messages"});
    for (const auto& oc : orders) {
      PartitionConfig config;
      config.num_parts = 16;
      config.edge_order = oc.order;
      const EdgePartition part = ebv.partition(d.graph, config);
      const PartitionMetrics m = compute_metrics(d.graph, part);
      const auto run = analysis::run_with_partition(d.graph, part, "ebv",
                                                    analysis::App::kCC);
      table.add_row({oc.label, format_fixed(m.replication_factor, 3),
                     format_fixed(m.edge_imbalance, 3),
                     format_fixed(m.vertex_imbalance, 3),
                     with_commas(run.run.total_messages)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
