// Figure 5 — replication-factor growth curves of EBV with and without the
// sorting preprocessing, for 4/8/16/32 subgraphs over the three power-law
// stand-ins.
#include <iostream>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "common/format.h"
#include "partition/ebv.h"

int main(int argc, char** argv) {
  using namespace ebv;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::preamble(
      "Figure 5: replication factor growth, EBV-sort vs EBV-unsort",
      "paper: sorted curves rise sharply then plateau BELOW the unsorted "
      "curves; the gap widens as the number of subgraphs grows",
      scale);

  const std::vector<analysis::Dataset> graphs = {
      analysis::make_livejournal_sim(scale),
      analysis::make_twitter_sim(scale),
      analysis::make_friendster_sim(scale)};
  const std::vector<PartitionId> part_counts = {4, 8, 16, 32};
  constexpr std::size_t kSamples = 10;

  const EbvPartitioner ebv;
  for (const auto& d : graphs) {
    std::cout << d.name << " (|E|=" << with_commas(d.graph.num_edges())
              << ") — replication factor at 10%..100% of edges processed\n";
    std::vector<std::string> headers = {"variant"};
    for (std::size_t s = 1; s <= kSamples; ++s) {
      headers.push_back(std::to_string(s * 10) + "%");
    }
    analysis::Table table(headers);
    for (const PartitionId p : part_counts) {
      for (const bool sorted : {true, false}) {
        PartitionConfig config;
        config.num_parts = p;
        config.edge_order =
            sorted ? EdgeOrder::kSortedAscending : EdgeOrder::kNatural;
        std::vector<GrowthSample> trace;
        (void)ebv.partition_traced(d.graph, config, kSamples, trace);
        std::vector<std::string> row = {
            std::string(sorted ? "sort" : "unsort") + " p=" +
            std::to_string(p)};
        for (const auto& sample : trace) {
          row.push_back(format_fixed(sample.replication_factor, 2));
        }
        while (row.size() < headers.size()) row.push_back("-");
        row.resize(headers.size());
        table.add_row(row);
      }
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
