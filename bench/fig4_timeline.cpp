// Figure 4 — per-worker breakdown of CC with 4 workers over LiveJournal:
// an ASCII Gantt view of computation / communication / synchronisation
// per worker, per partition algorithm.
#include <algorithm>
#include <iostream>
#include <string>

#include "analysis/experiment.h"
#include "bench_util.h"
#include "common/format.h"
#include "partition/registry.h"

int main(int argc, char** argv) {
  using namespace ebv;
  const double scale = bench::parse_scale(argc, argv, 1.0);
  bench::preamble(
      "Figure 4: per-worker timeline of CC with 4 workers over LiveJournal",
      "paper: EBV/Ginger/DBH/CVC workers finish together; NE and METIS "
      "leave 3 of 4 workers waiting at the barrier",
      scale);

  const auto d = analysis::make_livejournal_sim(scale);
  constexpr int kBarWidth = 60;

  for (const auto& name : paper_partitioners()) {
    const auto r = analysis::run_experiment(d.graph, name, 4,
                                            analysis::App::kCC);
    // Per-worker totals across supersteps.
    std::vector<double> comp(4, 0.0);
    std::vector<double> comm(4, 0.0);
    for (const auto& step : r.run.steps) {
      for (PartitionId i = 0; i < 4; ++i) {
        comp[i] += step[i].comp_seconds;
        comm[i] += step[i].comm_seconds;
      }
    }
    double busiest = 0.0;
    for (PartitionId i = 0; i < 4; ++i) {
      busiest = std::max(busiest, comp[i] + comm[i]);
    }
    std::cout << name << " (execution "
              << format_duration(r.run.execution_seconds) << ", delta C "
              << format_duration(r.run.delta_c_seconds) << ")\n";
    for (PartitionId i = 0; i < 4; ++i) {
      const double total = comp[i] + comm[i];
      const int comp_cells = busiest == 0.0
                                 ? 0
                                 : static_cast<int>(kBarWidth * comp[i] /
                                                    busiest);
      const int comm_cells =
          busiest == 0.0
              ? 0
              : static_cast<int>(kBarWidth * total / busiest) - comp_cells;
      const int idle_cells = kBarWidth - comp_cells - comm_cells;
      std::cout << "  w" << i << " |" << std::string(comp_cells, '#')
                << std::string(comm_cells, '~')
                << std::string(std::max(0, idle_cells), '.') << "| "
                << format_duration(total) << "\n";
    }
    std::cout << "       # compute   ~ network   . waiting (sync)\n\n";
  }
  return 0;
}
