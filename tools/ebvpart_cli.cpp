// ebvpart — command-line front end for the library.
//
//   ebvpart generate --family powerlaw --vertices 20000 --edges 200000
//                    [--eta 2.4] [--seed 42] --out graph.ebvg
//   ebvpart stats     --graph graph.ebvg
//   ebvpart partition --graph graph.ebvg --algo ebv --parts 8
//                     [--alpha 1.0] [--beta 1.0] [--order sorted|natural|
//                      desc|random] --out parts.ebvp
//   ebvpart run       --graph graph.ebvg --partition parts.ebvp
//                     --app cc|pr|sssp
//
// Graph files: .ebvg binary (ebvpart generate) or plain text edge lists.
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "common/format.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "partition/metrics.h"
#include "partition/partition_io.h"
#include "partition/registry.h"

namespace {

using namespace ebv;

using ArgMap = std::map<std::string, std::string>;

ArgMap parse_args(int argc, char** argv, int first) {
  ArgMap args;
  for (int i = first; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      throw std::invalid_argument(std::string("expected --flag, got ") +
                                  argv[i]);
    }
    args[argv[i] + 2] = argv[i + 1];
  }
  return args;
}

std::string get(const ArgMap& args, const std::string& key,
                const std::string& fallback = "") {
  const auto it = args.find(key);
  if (it != args.end()) return it->second;
  if (!fallback.empty()) return fallback;
  throw std::invalid_argument("missing required --" + key);
}

Graph load_graph(const std::string& path) {
  if (path.size() > 5 && path.substr(path.size() - 5) == ".ebvg") {
    return io::read_binary_file(path);
  }
  return io::read_edge_list_file(path);
}

int cmd_generate(const ArgMap& args) {
  const std::string family = get(args, "family", "powerlaw");
  const auto seed = std::stoull(get(args, "seed", "42"));
  Graph graph;
  if (family == "powerlaw") {
    graph = gen::chung_lu(
        static_cast<VertexId>(std::stoul(get(args, "vertices"))),
        std::stoull(get(args, "edges")),
        std::stod(get(args, "eta", "2.4")), false, seed);
  } else if (family == "road") {
    const auto side =
        static_cast<std::uint32_t>(std::stoul(get(args, "side", "200")));
    graph = gen::road_grid(side, side, 0.92, seed);
  } else if (family == "uniform") {
    graph = gen::erdos_renyi(
        static_cast<VertexId>(std::stoul(get(args, "vertices"))),
        std::stoull(get(args, "edges")), seed);
  } else if (family == "ba") {
    graph = gen::barabasi_albert(
        static_cast<VertexId>(std::stoul(get(args, "vertices"))),
        static_cast<std::uint32_t>(std::stoul(get(args, "attach", "4"))),
        seed);
  } else {
    throw std::invalid_argument("unknown family: " + family);
  }
  const std::string out = get(args, "out");
  io::write_binary_file(out, graph);
  std::cout << "wrote " << out << ": |V|=" << with_commas(graph.num_vertices())
            << " |E|=" << with_commas(graph.num_edges()) << "\n";
  return 0;
}

int cmd_stats(const ArgMap& args) {
  const Graph graph = load_graph(get(args, "graph"));
  const GraphStats s = compute_stats(graph);
  analysis::Table table({"metric", "value"});
  table.add_row({"vertices", with_commas(s.num_vertices)});
  table.add_row({"edges", with_commas(s.num_edges)});
  table.add_row({"average degree", format_fixed(s.average_degree, 2)});
  table.add_row({"max total degree", with_commas(s.max_total_degree)});
  table.add_row({"isolated vertices", with_commas(s.isolated_vertices)});
  table.add_row({"power-law eta", format_fixed(s.eta, 2)});
  if (args.count("deep") != 0) {
    const auto cores = core_decomposition(graph);
    std::uint32_t max_core = 0;
    for (const auto c : cores) max_core = std::max(max_core, c);
    table.add_row({"max core number", std::to_string(max_core)});
    table.add_row({"triangles", with_commas(total_triangles(graph))});
    table.add_row({"clustering coefficient",
                   format_fixed(global_clustering_coefficient(graph), 4)});
    table.add_row(
        {"diameter (lower bound)",
         std::to_string(estimate_diameter(graph, 4, 42))});
  }
  table.print(std::cout);
  return 0;
}

int cmd_partition(const ArgMap& args) {
  const Graph graph = load_graph(get(args, "graph"));
  const std::string algo = get(args, "algo", "ebv");
  PartitionConfig config;
  config.num_parts =
      static_cast<PartitionId>(std::stoul(get(args, "parts", "8")));
  config.alpha = std::stod(get(args, "alpha", "1.0"));
  config.beta = std::stod(get(args, "beta", "1.0"));
  config.seed = std::stoull(get(args, "seed", "42"));
  config.num_threads =
      static_cast<std::uint32_t>(std::stoul(get(args, "threads", "1")));
  config.batch_size =
      static_cast<std::uint32_t>(std::stoul(get(args, "batch", "256")));
  // Size the shared pool to the requested team so the ranks run on
  // resident workers instead of per-call temporary threads.
  if (config.num_threads > 1) {
    ThreadPool::set_global_threads(config.num_threads);
  }
  const std::string order = get(args, "order", "sorted");
  if (order == "sorted") {
    config.edge_order = EdgeOrder::kSortedAscending;
  } else if (order == "desc") {
    config.edge_order = EdgeOrder::kSortedDescending;
  } else if (order == "natural") {
    config.edge_order = EdgeOrder::kNatural;
  } else if (order == "random") {
    config.edge_order = EdgeOrder::kRandom;
  } else {
    throw std::invalid_argument("unknown order: " + order);
  }

  const Timer timer;
  const EdgePartition partition =
      make_partitioner(algo)->partition(graph, config);
  const double elapsed = timer.seconds();
  const PartitionMetrics m = compute_metrics(graph, partition);

  analysis::Table table({"metric", "value"});
  table.add_row({"algorithm", algo});
  table.add_row({"parts", std::to_string(config.num_parts)});
  table.add_row({"threads", std::to_string(config.num_threads)});
  table.add_row({"partitioning time", format_duration(elapsed)});
  table.add_row({"edge imbalance", format_fixed(m.edge_imbalance, 3)});
  table.add_row({"vertex imbalance", format_fixed(m.vertex_imbalance, 3)});
  table.add_row({"replication factor", format_fixed(m.replication_factor, 3)});
  table.print(std::cout);

  if (args.count("out") != 0) {
    io::write_partition_binary_file(args.at("out"), partition);
    std::cout << "wrote " << args.at("out") << "\n";
  }
  return 0;
}

int cmd_run(const ArgMap& args) {
  const Graph graph = load_graph(get(args, "graph"));
  const std::string app_name = get(args, "app", "cc");
  analysis::App app = analysis::App::kCC;
  if (app_name == "pr") {
    app = analysis::App::kPageRank;
  } else if (app_name == "sssp") {
    app = analysis::App::kSssp;
  } else if (app_name != "cc") {
    throw std::invalid_argument("unknown app: " + app_name);
  }

  // --threads T sizes the shared pool explicitly AND bounds the BSP
  // computation stage's fan-out (RunOptions::num_threads) — the knob is no
  // longer just a parallel-policy toggle. Results are identical to the
  // sequential policy for every T.
  bsp::RunOptions options;
  const auto threads =
      static_cast<std::uint32_t>(std::stoul(get(args, "threads", "1")));
  if (threads > 1) {
    ThreadPool::set_global_threads(threads);
    options.policy = bsp::ExecutionPolicy::kParallel;
    options.num_threads = threads;
  }

  analysis::ExperimentResult result;
  if (args.count("partition") != 0) {
    const EdgePartition partition =
        io::read_partition_binary_file(args.at("partition"));
    result =
        analysis::run_with_partition(graph, partition, "file", app, options);
  } else {
    result = analysis::run_experiment(
        graph, get(args, "algo", "ebv"),
        static_cast<PartitionId>(std::stoul(get(args, "parts", "8"))), app,
        options);
  }

  analysis::Table table({"metric", "value"});
  table.add_row({"app", app_name});
  table.add_row({"workers", std::to_string(result.num_parts)});
  table.add_row({"supersteps", std::to_string(result.run.supersteps)});
  table.add_row({"messages", with_commas(result.run.total_messages)});
  table.add_row(
      {"comp (avg)", format_duration(result.run.comp_seconds)});
  table.add_row(
      {"comm (avg)", format_duration(result.run.comm_seconds)});
  table.add_row({"delta C", format_duration(result.run.delta_c_seconds)});
  table.add_row(
      {"execution time", format_duration(result.run.execution_seconds)});
  table.print(std::cout);
  return 0;
}

int usage() {
  std::cerr
      << "usage: ebvpart <generate|stats|partition|run> [--flag value]...\n"
         "  generate  --family powerlaw|road|uniform|ba --out g.ebvg\n"
         "            [--vertices N --edges M --eta H --seed S]\n"
         "  stats     --graph g.ebvg [--deep 1]\n"
         "  partition --graph g.ebvg --algo ebv --parts 8 [--out p.ebvp]\n"
         "            [--alpha A --beta B --order sorted|natural|desc|random]\n"
         "            [--threads T] [--batch B]\n"
         "  run       --graph g.ebvg --app cc|pr|sssp [--threads T]\n"
         "            (--partition p.ebvp | --algo ebv --parts 8)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const ArgMap args = parse_args(argc, argv, 2);
    if (command == "generate") return cmd_generate(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "partition") return cmd_partition(args);
    if (command == "run") return cmd_run(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
