// ebvpart — command-line front end for the library.
//
//   ebvpart generate  --family powerlaw --vertices 20000 --edges 200000
//                     [--eta 2.4] [--seed 42] --out graph.ebvg
//   ebvpart convert   --in edges.txt --out graph.ebvs [--budget-mb 256]
//   ebvpart stats     --graph graph.ebvg | --mmap graph.ebvs
//   ebvpart partition --graph graph.ebvg | --mmap graph.ebvs
//                     --algo ebv --parts 8 [--alpha 1.0] [--beta 1.0]
//                     [--order sorted|natural|desc|random] --out parts.ebvp
//   ebvpart run       --graph graph.ebvg | --mmap graph.ebvs
//                     [--partition parts.ebvp] --app cc|pr|sssp
//                     [--resident-workers 1] [--spill-dir DIR] [--combine 1]
//
// Graph files: .ebvg binary (ebvpart generate), .ebvs mmap snapshots
// (ebvpart convert; --graph loads them resident, --mmap maps them
// zero-copy) or plain text edge lists. Full reference: docs/CLI.md.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <functional>
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/render.h"
#include "analysis/table.h"
#include "common/cli_args.h"
#include "common/failpoint.h"
#include "common/format.h"
#include "common/parallel.h"
#include "common/stale_sweep.h"
#include "common/timer.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/mapped_graph.h"
#include "graph/snapshot_convert.h"
#include "graph/stats.h"
#include "common/unique_id.h"
#include "obs/trace.h"
#include "partition/metrics.h"
#include "partition/partition_io.h"
#include "partition/registry.h"
#include "serve/client.h"
#include "serve/server.h"

#ifndef _WIN32
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace {

using namespace ebv;
using cli::ArgMap;
using cli::get;
using cli::get_double;
using cli::get_uint;

constexpr std::uint64_t kU32Max = std::numeric_limits<std::uint32_t>::max();
// Id-typed flags must also exclude the u32 sentinels (kInvalidVertex,
// kInvalidPartition) so a maximal value can't alias "invalid".
constexpr std::uint64_t kVertexMax = kInvalidVertex - 1;
constexpr std::uint64_t kPartsMax = kInvalidPartition - 1;

/// `--trace PATH` support shared by convert/partition/run: arms the span
/// tracer before the command's work and writes the Chrome trace-event
/// JSON afterwards. The "wrote trace" notice goes to STDERR — traced
/// stdout must stay byte-identical to the untraced run (the CI e2e
/// diffs them).
std::string trace_path_from(const ArgMap& args) {
  // Not via cli::get — an empty fallback there means "required flag".
  const std::string path =
      args.count("trace") != 0 ? args.at("trace") : std::string();
  if (!path.empty()) obs::trace::start();
  return path;
}

void finish_trace(const std::string& path) {
  if (path.empty()) return;
  obs::trace::stop_and_write(path);
  std::cerr << "wrote trace " << path << "\n";
}

Graph load_graph(const std::string& path) {
  if (path.ends_with(".ebvg")) return io::read_binary_file(path);
  if (path.ends_with(".ebvs")) return io::read_snapshot_file(path);
  return io::read_edge_list_file(path);
}

/// Open a validated mmap view for commands taking --mmap <snapshot>.
MappedGraph open_mapped(const std::string& path) {
  MappedGraph mapped(path);
  mapped.validate();
  return mapped;
}

int cmd_generate(const ArgMap& args) {
  const std::string family = get(args, "family", "powerlaw");
  const auto seed = get_uint(args, "seed", "42");
  Graph graph;
  if (family == "powerlaw") {
    graph = gen::chung_lu(
        static_cast<VertexId>(get_uint(args, "vertices", "", kVertexMax)),
        get_uint(args, "edges", ""), get_double(args, "eta", "2.4"), false,
        seed);
  } else if (family == "road") {
    const auto side =
        static_cast<std::uint32_t>(get_uint(args, "side", "200", kU32Max));
    graph = gen::road_grid(side, side, 0.92, seed);
  } else if (family == "uniform") {
    graph = gen::erdos_renyi(
        static_cast<VertexId>(get_uint(args, "vertices", "", kVertexMax)),
        get_uint(args, "edges", ""), seed);
  } else if (family == "ba") {
    graph = gen::barabasi_albert(
        static_cast<VertexId>(get_uint(args, "vertices", "", kVertexMax)),
        static_cast<std::uint32_t>(get_uint(args, "attach", "4", kU32Max)),
        seed);
  } else {
    throw std::invalid_argument("unknown family: " + family);
  }
  const std::string out = get(args, "out");
  if (out.ends_with(".txt")) {
    io::write_edge_list_file(out, graph);
  } else if (out.ends_with(".ebvs")) {
    io::write_snapshot_file(out, graph);
  } else {
    io::write_binary_file(out, graph);
  }
  std::cout << "wrote " << out << ": |V|=" << with_commas(graph.num_vertices())
            << " |E|=" << with_commas(graph.num_edges()) << "\n";
  return 0;
}

int cmd_convert(const ArgMap& args) {
  io::ConvertOptions options;
  options.memory_budget_bytes =
      get_uint(args, "budget-mb", "256",
               std::numeric_limits<std::uint64_t>::max() >> 20)
      << 20;
  options.num_threads =
      static_cast<std::uint32_t>(get_uint(args, "threads", "1", kU32Max));
  if (options.num_threads > 1) {
    request_global_threads(options.num_threads);
  }
  options.deduplicate = get(args, "dedup", "0") != "0";
  options.remove_self_loops = get(args, "keep-self-loops", "0") == "0";
  if (args.count("tmp") != 0) options.temp_dir = args.at("tmp");

  const std::string in = get(args, "in");
  const std::string out = get(args, "out");

  // Reclaim sort-run files a killed convert left behind (pid-liveness
  // checked, so concurrent converts sharing the directory are safe).
  {
    const std::filesystem::path out_path(out);
    const std::filesystem::path run_dir =
        options.temp_dir.empty()
            ? (out_path.has_parent_path() ? out_path.parent_path()
                                          : std::filesystem::path("."))
            : std::filesystem::path(options.temp_dir);
    sweep_stale_temp_files(run_dir.string());
  }

  const std::string trace_path = trace_path_from(args);
  const Timer timer;
  io::ConvertStats s;
  {
    // Coarse command-level span; the converter has no internal spans yet.
    const obs::trace::Span span("convert");
    s = io::convert_edge_list_to_snapshot(in, out, options);
  }
  const double elapsed = timer.seconds();
  finish_trace(trace_path);

  analysis::Table table({"metric", "value"});
  table.add_row({"input", in});
  table.add_row({"input MB",
                 format_fixed(static_cast<double>(s.input_bytes) / 1e6, 1)});
  table.add_row({"edges read", with_commas(s.edges_read)});
  table.add_row({"edges written", with_commas(s.edges_written)});
  table.add_row({"vertices", with_commas(s.num_vertices)});
  table.add_row({"self-loops dropped", with_commas(s.self_loops_dropped)});
  table.add_row({"duplicates dropped", with_commas(s.duplicates_dropped)});
  table.add_row({"sort runs", std::to_string(s.num_runs)});
  table.add_row({"weighted", s.weighted ? "yes" : "no"});
  table.add_row({"convert time", format_duration(elapsed)});
  table.add_row(
      {"ingest MB/s",
       format_fixed(static_cast<double>(s.input_bytes) / 1e6 /
                        std::max(elapsed, 1e-9),
                    1)});
  table.print(std::cout);
  std::cout << "wrote " << out << "\n";
  return 0;
}

int cmd_stats(const ArgMap& args) {
  if (args.count("mmap") != 0) {
    if (args.count("deep") != 0) {
      throw std::invalid_argument(
          "--deep needs a resident graph; use --graph " + args.at("mmap"));
    }
    const MappedGraph mapped = open_mapped(args.at("mmap"));
    const GraphStats s = compute_stats(mapped.view());
    // Shared renderer: the serve daemon's kStats responses go through the
    // same function, so daemon output is byte-identical to this command.
    std::cout << analysis::format_mmap_stats_table(s, mapped.mapped_bytes());
    return 0;
  }
  const Graph graph = load_graph(get(args, "graph"));
  const GraphStats s = compute_stats(graph);
  analysis::Table table({"metric", "value"});
  table.add_row({"vertices", with_commas(s.num_vertices)});
  table.add_row({"edges", with_commas(s.num_edges)});
  table.add_row({"average degree", format_fixed(s.average_degree, 2)});
  table.add_row({"max total degree", with_commas(s.max_total_degree)});
  table.add_row({"isolated vertices", with_commas(s.isolated_vertices)});
  table.add_row({"power-law eta", format_fixed(s.eta, 2)});
  if (args.count("deep") != 0) {
    const auto cores = core_decomposition(graph);
    std::uint32_t max_core = 0;
    for (const auto c : cores) max_core = std::max(max_core, c);
    table.add_row({"max core number", std::to_string(max_core)});
    table.add_row({"triangles", with_commas(total_triangles(graph))});
    table.add_row({"clustering coefficient",
                   format_fixed(global_clustering_coefficient(graph), 4)});
    table.add_row(
        {"diameter (lower bound)",
         std::to_string(estimate_diameter(graph, 4, 42))});
  }
  table.print(std::cout);
  return 0;
}

int cmd_partition(const ArgMap& args) {
  const std::string algo = get(args, "algo", "ebv");
  PartitionConfig config;
  config.num_parts =
      static_cast<PartitionId>(get_uint(args, "parts", "8", kPartsMax));
  config.alpha = get_double(args, "alpha", "1.0");
  config.beta = get_double(args, "beta", "1.0");
  config.seed = get_uint(args, "seed", "42");
  config.num_threads =
      static_cast<std::uint32_t>(get_uint(args, "threads", "1", kU32Max));
  config.batch_size =
      static_cast<std::uint32_t>(get_uint(args, "batch", "256", kU32Max));
  // Size the shared pool to the requested team so the ranks run on
  // resident workers instead of per-call temporary threads.
  if (config.num_threads > 1) {
    request_global_threads(config.num_threads);
  }
  const std::string order = get(args, "order", "sorted");
  if (order == "sorted") {
    config.edge_order = EdgeOrder::kSortedAscending;
  } else if (order == "desc") {
    config.edge_order = EdgeOrder::kSortedDescending;
  } else if (order == "natural") {
    config.edge_order = EdgeOrder::kNatural;
  } else if (order == "random") {
    config.edge_order = EdgeOrder::kRandom;
  } else {
    throw std::invalid_argument("unknown order: " + order);
  }

  // --mmap <snapshot> streams the partitioner over the mapped sections
  // (O(|V|) resident state for the streaming algorithms); --graph loads a
  // resident Graph. Both produce bit-identical partitions for the same
  // snapshot.
  const bool use_mmap = args.count("mmap") != 0;
  const std::string trace_path = trace_path_from(args);
  EdgePartition partition;
  PartitionMetrics m;
  double elapsed = 0.0;
  if (use_mmap) {
    const MappedGraph mapped = open_mapped(args.at("mmap"));
    const Timer timer;
    {
      // Coarse command-level span (the streaming partitioners have no
      // internal spans); metric computation is traced separately.
      const obs::trace::Span span("partition");
      partition =
          make_partitioner(algo)->partition_view(mapped.view(), config);
    }
    elapsed = timer.seconds();
    const obs::trace::Span span("partition.metrics");
    m = compute_metrics(mapped.view(), partition);
  } else {
    const Graph graph = load_graph(get(args, "graph"));
    const Timer timer;
    {
      const obs::trace::Span span("partition");
      partition = make_partitioner(algo)->partition(graph, config);
    }
    elapsed = timer.seconds();
    const obs::trace::Span span("partition.metrics");
    m = compute_metrics(graph, partition);
  }
  finish_trace(trace_path);

  analysis::Table table({"metric", "value"});
  table.add_row({"algorithm", algo});
  table.add_row({"graph source", use_mmap ? "mmap snapshot" : "resident"});
  table.add_row({"parts", std::to_string(config.num_parts)});
  table.add_row({"threads", std::to_string(config.num_threads)});
  table.add_row({"partitioning time", format_duration(elapsed)});
  table.add_row({"edge imbalance", format_fixed(m.edge_imbalance, 3)});
  table.add_row({"vertex imbalance", format_fixed(m.vertex_imbalance, 3)});
  table.add_row({"replication factor", format_fixed(m.replication_factor, 3)});
  table.print(std::cout);

  if (args.count("out") != 0) {
    io::write_partition_binary_file(args.at("out"), partition);
    std::cout << "wrote " << args.at("out") << "\n";
  }
  return 0;
}

int cmd_run(const ArgMap& args) {
  const std::string app_name = get(args, "app", "cc");
  analysis::App app = analysis::App::kCC;
  if (app_name == "pr") {
    app = analysis::App::kPageRank;
  } else if (app_name == "sssp") {
    app = analysis::App::kSssp;
  } else if (app_name != "cc") {
    throw std::invalid_argument("unknown app: " + app_name);
  }

  // --threads T sizes the shared pool explicitly AND bounds the BSP
  // computation stage's fan-out (RunOptions::num_threads) — the knob is no
  // longer just a parallel-policy toggle. Results are identical to the
  // sequential policy for every T.
  bsp::RunOptions options;
  const auto threads =
      static_cast<std::uint32_t>(get_uint(args, "threads", "1", kU32Max));
  if (threads > 1) {
    // Warns on stderr when the pool already runs at a different size —
    // RunOptions::num_threads still bounds the fan-out exactly (run_team
    // carries extra ranks on temporary threads), so the knob holds either
    // way; the warning just surfaces the pool mismatch.
    request_global_threads(threads);
    options.policy = bsp::ExecutionPolicy::kParallel;
    options.num_threads = threads;
  }

  // --async 1 opts into the relaxed task-graph scheduler: routing, merges
  // and installs run concurrently with dependencies from the routing
  // tables. Exact for min/max-combine programs (cc, sssp); pr may differ
  // in final float bits (fold order). --prefetch 0 disables the
  // double-buffered group loader under a bounded residency budget.
  if (get(args, "async", "0") != "0") {
    options.scheduler = bsp::SchedulerMode::kAsync;
  }
  options.prefetch = get(args, "prefetch", "1") != "0";

  // --resident-workers K bounds how many worker subgraphs are materialised
  // at a time; a binding budget (0 < K < parts) spills the per-worker
  // subgraphs to an EBVW snapshot in --spill-dir (default: the system temp
  // directory; the file is removed after the run), while 0 or K >= parts
  // stays all-resident with no spill I/O. Results are bit-identical for
  // every K. --combine 1 merges same-vertex mirror->master messages before
  // sending (message counts drop; the run table gains a raw-count row).
  options.resident_workers = static_cast<std::uint32_t>(
      get_uint(args, "resident-workers", "0", kU32Max));
  if (args.count("spill-dir") != 0) options.spill_dir = args.at("spill-dir");
  options.combine_messages = get(args, "combine", "0") != "0";

  // --checkpoint-dir DIR writes a crash-consistent EBVC checkpoint at the
  // superstep barrier every --checkpoint-every N supersteps (default 1
  // once a directory is given); --resume 1 restarts from the newest
  // readable checkpoint and finishes bit-identically to the uninterrupted
  // run. docs/ARCHITECTURE.md, "Fault tolerance".
  if (args.count("checkpoint-dir") != 0) {
    options.checkpoint_dir = args.at("checkpoint-dir");
  }
  options.checkpoint_every = static_cast<std::uint32_t>(get_uint(
      args, "checkpoint-every", options.checkpoint_dir.empty() ? "0" : "1",
      kU32Max));
  options.resume = get(args, "resume", "0") != "0";

  // --phase-stats 1 collects a per-superstep wall breakdown by scheduler
  // task kind and prints it AFTER the run table (additive; the default
  // table stays byte-identical). --trace PATH writes a Chrome
  // trace-event JSON of the whole run (task spans, load/release, steal
  // and park instants) — stdout is unchanged, the notice goes to stderr.
  options.phase_stats = get(args, "phase-stats", "0") != "0";

  // Reclaim temp files (mailbox overflow, EBVW spill snapshots,
  // checkpoint temps) a killed run left behind, before we create ours.
  sweep_stale_temp_files(
      options.spill_dir.empty()
          ? std::filesystem::temp_directory_path().string()
          : options.spill_dir);
  if (!options.checkpoint_dir.empty()) {
    sweep_stale_temp_files(options.checkpoint_dir);
  }

  // --mmap feeds the whole pipeline (partition → DistributedGraph → BSP)
  // from the mapped snapshot sections: no resident Graph is ever built,
  // and results are bit-identical to --graph on the same snapshot.
  const bool use_mmap = args.count("mmap") != 0;
  std::optional<MappedGraph> mapped;
  Graph resident;
  if (use_mmap) {
    mapped.emplace(open_mapped(args.at("mmap")));
  } else {
    resident = load_graph(get(args, "graph"));
  }
  const GraphView view = use_mmap ? mapped->view() : GraphView(resident);

  const std::string trace_path = trace_path_from(args);
  analysis::ExperimentResult result;
  if (args.count("partition") != 0) {
    const EdgePartition partition =
        io::read_partition_binary_file(args.at("partition"));
    result =
        analysis::run_with_partition(view, partition, "file", app, options);
  } else {
    const auto algo = get(args, "algo", "ebv");
    const auto parts =
        static_cast<PartitionId>(get_uint(args, "parts", "8", kPartsMax));
    // The resident overload partitions without the view fallback's
    // materialising copy; results are identical either way.
    result = use_mmap
                 ? analysis::run_experiment(mapped->view(), algo, parts, app,
                                            options)
                 : analysis::run_experiment(resident, algo, parts, app,
                                            options);
  }

  finish_trace(trace_path);

  // Shared renderer: the serve daemon's kRun responses go through the
  // same function, so daemon output is byte-identical to this command.
  std::cout << analysis::format_run_table(app_name, result,
                                          options.combine_messages);
  if (options.phase_stats) {
    std::cout << analysis::format_phase_stats_table(result.run);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// serve / query: the snapshot-serving daemon and its protocol client.

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(csv.substr(start));
      break;
    }
    out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

std::vector<std::uint64_t> parse_id_list(const std::string& csv,
                                         std::uint64_t max_value,
                                         const std::string& flag) {
  std::vector<std::uint64_t> out;
  for (const std::string& token : split_csv(csv)) {
    if (token.empty()) {
      throw std::invalid_argument("--" + flag + ": empty list entry");
    }
    std::size_t used = 0;
    // ebvlint: allow(naked-number-parse): full-string validated below
    // (used must consume every character) with a flag-named error.
    const std::uint64_t value = std::stoull(token, &used);
    if (used != token.size() || value > max_value) {
      throw std::invalid_argument("--" + flag + ": bad id '" + token + "'");
    }
    out.push_back(value);
  }
  if (out.empty()) {
    throw std::invalid_argument("--" + flag + " needs at least one id");
  }
  return out;
}

volatile std::sig_atomic_t g_serve_stop = 0;
extern "C" void serve_signal_handler(int) { g_serve_stop = 1; }

int cmd_serve(const ArgMap& args) {
  serve::ServerConfig config;
  const std::string default_socket =
      (std::filesystem::temp_directory_path() /
       ("ebv-serve." + process_unique_suffix() + ".sock"))
          .string();
  config.socket_path = get(args, "socket", default_socket);
  config.num_workers =
      static_cast<std::uint32_t>(get_uint(args, "workers", "2", 256));
  config.max_sessions =
      static_cast<std::uint32_t>(get_uint(args, "max-sessions", "64", 4096));
  if (args.count("queues") != 0) {
    // --queues S,D,N,L,R: admission depth per class, in RequestClass
    // order (stats, degree, neighbors, lookup, run).
    const auto depths =
        parse_id_list(args.at("queues"), 1u << 20, "queues");
    if (depths.size() != serve::kNumClasses) {
      throw std::invalid_argument("--queues needs exactly " +
                                  std::to_string(serve::kNumClasses) +
                                  " comma-separated depths");
    }
    for (std::size_t c = 0; c < serve::kNumClasses; ++c) {
      config.queue_depth[c] = static_cast<std::uint32_t>(depths[c]);
    }
  }

  serve::ServeContext context;
  context.limits.neighbor_limit = static_cast<std::uint32_t>(get_uint(
      args, "neighbor-limit", "65536", serve::kMaxNeighborhood));
  context.limits.max_run_parts = static_cast<std::uint32_t>(
      get_uint(args, "max-run-parts", "256", kPartsMax));

  // Reclaim leftovers from crashed daemons (their .sock inodes) and
  // spilled routing builds before creating ours.
  {
    const std::filesystem::path sock(config.socket_path);
    sweep_stale_temp_files(sock.has_parent_path()
                               ? sock.parent_path().string()
                               : std::string("."));
  }
  const std::string spill_dir =
      args.count("spill-dir") != 0 ? args.at("spill-dir") : std::string();
  if (!spill_dir.empty()) sweep_stale_temp_files(spill_dir);

  // --mmap a.ebvs[,b.ebvs...] with optional positional --partition
  // p.ebvp[,...] ("-" skips a snapshot). Each pair also builds the
  // replica/master routing tables (DistributedGraph); --spill-dir routes
  // that construction through an EBVW worker-spill snapshot so only the
  // O(|V|) routing tables stay resident.
  const std::vector<std::string> snapshots = split_csv(get(args, "mmap"));
  std::vector<std::string> partitions;
  if (args.count("partition") != 0) {
    partitions = split_csv(args.at("partition"));
    if (partitions.size() > snapshots.size()) {
      throw std::invalid_argument(
          "--partition lists more files than --mmap has snapshots");
    }
  }
  std::vector<std::string> spill_files;  // removed after the drain
  context.graphs.reserve(snapshots.size());
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    MappedGraph mapped = open_mapped(snapshots[i]);
    const std::string name =
        std::filesystem::path(snapshots[i]).stem().string();
    context.graphs.emplace_back(name, snapshots[i], std::move(mapped));
    serve::GraphEntry& entry = context.graphs.back();
    if (i >= partitions.size() || partitions[i].empty() ||
        partitions[i] == "-") {
      continue;
    }
    EdgePartition partition =
        io::read_partition_binary_file(partitions[i]);
    if (partition.part_of_edge.size() != entry.mapped.num_edges()) {
      throw std::invalid_argument(
          partitions[i] + " covers " +
          std::to_string(partition.part_of_edge.size()) +
          " edges but " + snapshots[i] + " has " +
          std::to_string(entry.mapped.num_edges()));
    }
    bsp::DistributeOptions opts;
    if (!spill_dir.empty()) {
      opts.spill_path =
          (std::filesystem::path(spill_dir) /
           ("ebv-workers." + process_unique_suffix() + ".ebvw"))
              .string();
      spill_files.push_back(opts.spill_path);
    }
    entry.routing.emplace(entry.mapped.view(), partition, opts);
    entry.partition.emplace(std::move(partition));
  }

  serve::Server server(std::move(context), std::move(config));
#ifndef _WIN32
  std::cout << "serving " << snapshots.size() << " snapshot(s) on "
            << server.socket_path() << " (pid " << ::getpid() << ")"
            << std::endl;
#endif

  // Graceful drain on SIGTERM/SIGINT; --duration S self-stops (CI/bench).
  std::signal(SIGTERM, serve_signal_handler);
  std::signal(SIGINT, serve_signal_handler);
  const auto duration_s = get_uint(args, "duration", "0", 86'400);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(duration_s);
  while (g_serve_stop == 0 &&
         (duration_s == 0 ||
          std::chrono::steady_clock::now() < deadline)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::cout << "draining..." << std::endl;
  server.request_stop();
  server.wait();
  // The drain report and the live kMetrics response are the same string
  // (one renderer), so `ebvpart query --op metrics` always matches this.
  std::cout << server.metrics_report();
  for (const std::string& file : spill_files) {
    std::error_code ec;
    std::filesystem::remove(file, ec);
  }
  return 0;
}

int cmd_query(const ArgMap& args) {
  const std::string socket = get(args, "socket");
  const std::string op = get(args, "op");
  const auto graph_index = static_cast<std::uint32_t>(
      get_uint(args, "graph-index", "0", kU32Max));

  if (op == "ping") {
    serve::Client client(socket);
    client.ping();
    std::cout << "pong\n";
    return 0;
  }
  if (op == "stats") {
    serve::Client client(socket);
    std::cout << client.stats(graph_index);
    return 0;
  }
  if (op == "metrics") {
    // Live observability report from a RUNNING daemon: the per-class
    // stats table plus the metrics registry, rendered server-side by the
    // same function as the drain print.
    serve::Client client(socket);
    std::cout << client.metrics();
    return 0;
  }
  if (op == "degree") {
    serve::Client client(socket);
    serve::DegreeRequest req;
    req.graph_index = graph_index;
    for (const auto v :
         parse_id_list(get(args, "vertices"), kVertexMax, "vertices")) {
      req.vertices.push_back(static_cast<VertexId>(v));
    }
    const auto degrees = client.degrees(req);
    for (std::size_t i = 0; i < degrees.size(); ++i) {
      std::cout << req.vertices[i] << " " << degrees[i].out_degree << " "
                << degrees[i].in_degree << "\n";
    }
    return 0;
  }
  if (op == "neighbors") {
    serve::Client client(socket);
    serve::NeighborsRequest req;
    req.graph_index = graph_index;
    req.source =
        static_cast<VertexId>(get_uint(args, "source", "", kVertexMax));
    req.hops = static_cast<std::uint32_t>(
        get_uint(args, "hops", "1", serve::kMaxHops));
    req.limit = static_cast<std::uint32_t>(
        get_uint(args, "limit", "0", serve::kMaxNeighborhood));
    const serve::NeighborsResponse resp = client.neighbors(req);
    for (const VertexId v : resp.vertices) std::cout << v << "\n";
    if (resp.truncated) std::cerr << "note: neighborhood truncated\n";
    return 0;
  }
  if (op == "partition") {
    serve::Client client(socket);
    serve::PartitionRequest req;
    req.graph_index = graph_index;
    req.edges = parse_id_list(get(args, "edges"),
                              std::numeric_limits<EdgeId>::max(), "edges");
    const auto parts = client.partition_of(req);
    for (std::size_t i = 0; i < parts.size(); ++i) {
      std::cout << req.edges[i] << " " << parts[i] << "\n";
    }
    return 0;
  }
  if (op == "replicas") {
    serve::Client client(socket);
    serve::ReplicasRequest req;
    req.graph_index = graph_index;
    for (const auto v :
         parse_id_list(get(args, "vertices"), kVertexMax, "vertices")) {
      req.vertices.push_back(static_cast<VertexId>(v));
    }
    const auto replicas = client.replicas(req);
    for (std::size_t i = 0; i < replicas.size(); ++i) {
      std::cout << req.vertices[i] << " ";
      if (replicas[i].master == kInvalidPartition) {
        std::cout << "-";
      } else {
        std::cout << replicas[i].master;
      }
      for (std::size_t p = 0; p < replicas[i].parts.size(); ++p) {
        std::cout << (p == 0 ? " " : ",") << replicas[i].parts[p];
      }
      std::cout << "\n";
    }
    return 0;
  }
  if (op == "run") {
    serve::Client client(socket);
    serve::RunRequest req;
    req.graph_index = graph_index;
    const std::string app = get(args, "app", "cc");
    if (app == "cc") {
      req.app = 0;
    } else if (app == "pr") {
      req.app = 1;
    } else if (app == "sssp") {
      req.app = 2;
    } else {
      throw std::invalid_argument("unknown app: " + app);
    }
    req.parts =
        static_cast<std::uint32_t>(get_uint(args, "parts", "8", kPartsMax));
    req.source =
        static_cast<VertexId>(get_uint(args, "source", "0", kVertexMax));
    req.hops = static_cast<std::uint32_t>(
        get_uint(args, "hops", "0", serve::kMaxHops));
    req.algo = get(args, "algo", "ebv");
    std::cout << client.run(req);
    return 0;
  }
  if (op == "badframe") {
    // Hostile-input probe for the CI e2e: send one malformed frame, show
    // the server's verdict, and verify it hangs up afterwards.
    const std::string kind = get(args, "kind", "magic");
    unsigned char header[serve::kFrameHeaderBytes];
    serve::FrameHeader h;
    h.type = static_cast<std::uint16_t>(serve::MsgType::kStats);
    h.request_id = 7;
    if (kind == "magic") {
      h.magic = 0xDEADBEEFu;
    } else if (kind == "version") {
      h.version = 9'999;
    } else if (kind == "reserved") {
      h.reserved = 1;
    } else if (kind == "oversized") {
      h.body_len = 0xFFFF'FFFFu;  // hostile length prefix: reject, no alloc
    } else if (kind == "truncated") {
      h.body_len = 64;  // promise 64 body bytes, send none, close
    } else {
      throw std::invalid_argument("unknown badframe kind: " + kind);
    }
    serve::encode_frame_header(h, header);
    serve::Client client(socket);
    // ebvlint: allow(raw-read-boundary): outbound byte view of a frame
    // header this test helper just encoded — not an input read.
    if (!client.send_raw({reinterpret_cast<const std::uint8_t*>(header),
                          sizeof(header)})) {
      throw std::runtime_error("send failed");
    }
    if (kind == "truncated") {
      // Half-close so the server sees EOF mid-body; a clean close (no
      // response) is the expected outcome.
#ifndef _WIN32
      ::shutdown(client.fd(), SHUT_WR);
#endif
      const auto frame = client.read_response();
      std::cout << (frame.outcome == serve::ReadOutcome::kEof
                        ? "closed\n"
                        : "unexpected response\n");
      return 0;
    }
    const auto frame = client.read_response();
    if (frame.outcome != serve::ReadOutcome::kFrame) {
      std::cout << "closed without response\n";
      return 0;
    }
    std::cout << serve::status_name(
                     static_cast<serve::Status>(frame.header.status))
              << ": "
              << std::string(frame.body.begin(), frame.body.end()) << "\n";
    // The server must hang up after a malformed frame.
    const auto next = client.read_response();
    std::cout << (next.outcome == serve::ReadOutcome::kEof
                      ? "connection closed\n"
                      : "connection unexpectedly open\n");
    return 0;
  }
  if (op == "burst") {
    // Fire --count concurrent one-shot requests to pin admission
    // control: with a bounded queue some must come back kOverloaded.
    const auto count = static_cast<std::uint32_t>(
        get_uint(args, "count", "32", 4096));
    std::atomic<std::uint32_t> ok{0};
    std::atomic<std::uint32_t> overloaded{0};
    std::atomic<std::uint32_t> other{0};
    std::vector<std::thread> threads;
    threads.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      threads.emplace_back([&] {
        try {
          serve::Client client(socket);
          (void)client.stats(graph_index);
          ok.fetch_add(1);
        } catch (const serve::ServeError& e) {
          (e.status() == serve::Status::kOverloaded ? overloaded : other)
              .fetch_add(1);
        } catch (const std::exception&) {
          other.fetch_add(1);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    std::cout << "ok " << ok.load() << "\noverloaded " << overloaded.load()
              << "\nother " << other.load() << "\n";
    return 0;
  }
  if (op == "bench") {
    // Sequential per-class load; prints client-side throughput and
    // latency quantiles (the daemon's drain table has the server view).
    const auto count =
        static_cast<std::uint32_t>(get_uint(args, "count", "100", 1u << 20));
    serve::Client client(socket);
    const auto quantile = [](std::vector<double>& ms, double q) {
      std::sort(ms.begin(), ms.end());
      if (ms.empty()) return 0.0;
      const auto rank = static_cast<std::size_t>(
          q * static_cast<double>(ms.size() - 1) + 0.5);
      return ms[std::min(rank, ms.size() - 1)];
    };
    analysis::Table table(
        {"class", "requests", "req/s", "p50", "p95", "p99"});
    const auto bench_class =
        [&](const std::string& label, std::uint32_t n,
            const std::function<void(std::uint32_t)>& one) {
          std::vector<double> ms;
          ms.reserve(n);
          const Timer wall;
          for (std::uint32_t i = 0; i < n; ++i) {
            const Timer t;
            one(i);
            ms.push_back(t.seconds() * 1e3);
          }
          const double elapsed = wall.seconds();
          table.add_row({label, with_commas(n),
                         format_fixed(n / std::max(elapsed, 1e-9), 1),
                         format_duration(quantile(ms, 0.50) / 1e3),
                         format_duration(quantile(ms, 0.95) / 1e3),
                         format_duration(quantile(ms, 0.99) / 1e3)});
        };

    bench_class("stats", std::max(1u, count / 10),
                [&](std::uint32_t) { (void)client.stats(graph_index); });
    bench_class("degree", count, [&](std::uint32_t i) {
      serve::DegreeRequest req;
      req.graph_index = graph_index;
      req.vertices = {i % 1024};
      (void)client.degrees(req);
    });
    bench_class("neighbors", count, [&](std::uint32_t i) {
      serve::NeighborsRequest req;
      req.graph_index = graph_index;
      req.source = i % 1024;
      req.hops = 2;
      req.limit = 512;
      (void)client.neighbors(req);
    });
    bool have_lookup = true;
    try {
      serve::PartitionRequest probe;
      probe.graph_index = graph_index;
      probe.edges = {0};
      (void)client.partition_of(probe);
    } catch (const serve::ServeError&) {
      have_lookup = false;  // served without a partition
    }
    if (have_lookup) {
      bench_class("lookup", count, [&](std::uint32_t i) {
        if (i % 2 == 0) {
          serve::PartitionRequest req;
          req.graph_index = graph_index;
          req.edges = {i % 4096};
          (void)client.partition_of(req);
        } else {
          serve::ReplicasRequest req;
          req.graph_index = graph_index;
          req.vertices = {i % 1024};
          (void)client.replicas(req);
        }
      });
    }
    bench_class("run", std::max(1u, count / 100), [&](std::uint32_t) {
      serve::RunRequest req;
      req.graph_index = graph_index;
      req.app = 0;
      req.parts = 8;
      (void)client.run(req);
    });
    table.print(std::cout);
    return 0;
  }
  throw std::invalid_argument("unknown op: " + op);
}

void print_usage(std::ostream& out) {
  // Keep in lockstep with docs/CLI.md (the CI docs check greps both).
  out << "usage: ebvpart <generate|convert|stats|partition|run|serve|query> [--flag value]...\n"
         "\n"
         "  generate  --family powerlaw|road|uniform|ba --out g.{ebvg,ebvs,txt}\n"
         "            [--vertices N] [--edges M] [--eta H] [--seed S]\n"
         "            [--side L (road)] [--attach K (ba)]\n"
         "  convert   --in edges.txt|g.ebvg --out g.ebvs\n"
         "            [--budget-mb MB] [--threads T] [--dedup 0|1]\n"
         "            [--keep-self-loops 0|1] [--tmp DIR] [--trace t.json]\n"
         "            external-merge-sort a text edge list into a page-\n"
         "            aligned EBVS snapshot under a bounded memory budget\n"
         "  stats     --graph g.{ebvg,ebvs,txt} [--deep 1]\n"
         "            | --mmap g.ebvs   (zero-copy; --deep unsupported)\n"
         "  partition --graph g.{ebvg,ebvs,txt} | --mmap g.ebvs\n"
         "            [--algo ebv] [--parts 8] [--alpha A] [--beta B]\n"
         "            [--order sorted|natural|desc|random] [--seed S]\n"
         "            [--threads T] [--batch B] [--out p.ebvp]\n"
         "            [--trace t.json]\n"
         "  run       --graph g.{ebvg,ebvs,txt} | --mmap g.ebvs\n"
         "            --app cc|pr|sssp [--threads T]\n"
         "            (--partition p.ebvp | [--algo ebv] [--parts 8])\n"
         "            [--resident-workers K] [--spill-dir DIR] [--combine 0|1]\n"
         "            [--async 0|1] [--prefetch 0|1]\n"
         "            [--checkpoint-dir DIR] [--checkpoint-every N]\n"
         "            [--resume 0|1] [--trace t.json] [--phase-stats 0|1]\n"
         "  serve     --mmap g.ebvs[,h.ebvs...] [--partition p.ebvp[,...]]\n"
         "            [--socket PATH] [--workers N] [--queues S,D,N,L,R]\n"
         "            [--max-sessions N] [--neighbor-limit N]\n"
         "            [--max-run-parts P] [--spill-dir DIR] [--duration S]\n"
         "            long-lived daemon serving EBVQ queries over a unix\n"
         "            socket; drains gracefully on SIGTERM/SIGINT and\n"
         "            prints a per-class stats table\n"
         "  query     --socket PATH --op ping|stats|metrics|degree|neighbors|\n"
         "            partition|replicas|run|badframe|burst|bench\n"
         "            [--graph-index I] [--vertices A,B,...] [--edges A,B,...]\n"
         "            [--source V] [--hops K] [--limit N] [--app cc|pr|sssp]\n"
         "            [--parts P] [--algo ebv] [--kind magic|version|reserved|\n"
         "            oversized|truncated] [--count N]\n"
         "\n"
         "--mmap maps an EBVS snapshot read-only and streams partitioning —\n"
         "and, for run, distributed-graph construction and the BSP\n"
         "supersteps — over it without a resident copy (bit-identical to\n"
         "--graph on the same snapshot).\n"
         "--resident-workers K spills the per-worker subgraphs to an EBVW\n"
         "snapshot (in --spill-dir, default the system temp dir) and keeps\n"
         "at most K of them materialised at a time — same output, bounded\n"
         "subgraph residency (0 = all resident); with K >= 2 the scheduler\n"
         "prefetches the next group while the current one computes.\n"
         "--checkpoint-dir DIR writes a crash-consistent EBVC checkpoint\n"
         "every --checkpoint-every N supersteps (default 1 once a dir is\n"
         "given); --resume 1 restarts from the newest readable checkpoint\n"
         "and finishes bit-identically to the uninterrupted run.\n"
         "--trace t.json (convert/partition/run) writes a Chrome\n"
         "trace-event JSON of the command (open in Perfetto or\n"
         "chrome://tracing); stdout stays byte-identical to the untraced\n"
         "run. run --phase-stats 1 appends a per-superstep wall breakdown\n"
         "by scheduler task kind; query --op metrics renders a running\n"
         "daemon's live latency + counter registry (same renderer as the\n"
         "drain table).\n"
         "--failpoints SPEC (any command; or EBV_FAILPOINTS) injects\n"
         "deterministic I/O faults for testing — see docs/CLI.md.\n"
         "Formats: docs/FORMATS.md; full flag reference: docs/CLI.md.\n";
}

int usage() {
  print_usage(std::cerr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    print_usage(std::cout);
    return 0;
  }
  try {
    const ArgMap args = cli::parse_args(argc, argv, 2);
    // Deterministic fault injection for tests and CI: the EBV_FAILPOINTS
    // environment variable, overridden by --failpoints SPEC (any command).
    failpoint::configure_from_env();
    if (args.count("failpoints") != 0) {
      failpoint::configure(args.at("failpoints"));
    }
    if (command == "generate") return cmd_generate(args);
    if (command == "convert") return cmd_convert(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "partition") return cmd_partition(args);
    if (command == "run") return cmd_run(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "query") return cmd_query(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
