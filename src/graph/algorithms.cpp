#include "graph/algorithms.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>

#include "common/assert.h"
#include "common/rng.h"
#include "graph/csr.h"

namespace ebv {
namespace {

/// Deduplicated undirected adjacency (sorted neighbour lists, self-loops
/// and parallel/reverse duplicates removed).
std::vector<std::vector<VertexId>> simple_adjacency(const Graph& graph) {
  const CsrGraph both = CsrGraph::build(graph, CsrGraph::Direction::kBoth);
  std::vector<std::vector<VertexId>> adj(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto neighbors = both.neighbors(v);
    adj[v].assign(neighbors.begin(), neighbors.end());
    std::sort(adj[v].begin(), adj[v].end());
    adj[v].erase(std::unique(adj[v].begin(), adj[v].end()), adj[v].end());
    adj[v].erase(std::remove(adj[v].begin(), adj[v].end(), v), adj[v].end());
  }
  return adj;
}

}  // namespace

std::vector<std::uint32_t> core_decomposition(const Graph& graph) {
  const auto adj = simple_adjacency(graph);
  const VertexId n = graph.num_vertices();
  std::vector<std::uint32_t> degree(n);
  std::uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = static_cast<std::uint32_t>(adj[v].size());
    max_degree = std::max(max_degree, degree[v]);
  }

  // Bucket sort vertices by degree (Matula–Beck).
  std::vector<std::uint32_t> bin(max_degree + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bin[degree[v]];
  std::uint32_t start = 0;
  for (std::uint32_t d = 0; d <= max_degree; ++d) {
    const std::uint32_t count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<VertexId> order(n);       // vertices sorted by current degree
  std::vector<std::uint32_t> pos(n);    // position of each vertex in order
  {
    std::vector<std::uint32_t> cursor(bin.begin(), bin.end());
    for (VertexId v = 0; v < n; ++v) {
      pos[v] = cursor[degree[v]];
      order[pos[v]] = v;
      ++cursor[degree[v]];
    }
  }

  std::vector<std::uint32_t> core(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    const VertexId v = order[i];
    core[v] = degree[v];
    for (const VertexId u : adj[v]) {
      if (degree[u] <= degree[v]) continue;
      // Swap u toward the front of its degree bucket, then shrink it.
      const std::uint32_t du = degree[u];
      const std::uint32_t pu = pos[u];
      const std::uint32_t pw = bin[du];
      const VertexId w = order[pw];
      if (u != w) {
        std::swap(order[pu], order[pw]);
        pos[u] = pw;
        pos[w] = pu;
      }
      ++bin[du];
      --degree[u];
    }
  }
  return core;
}

std::vector<std::uint64_t> triangle_counts(const Graph& graph) {
  const auto adj = simple_adjacency(graph);
  const VertexId n = graph.num_vertices();
  std::vector<std::uint64_t> triangles(n, 0);
  // Forward algorithm: orient edges from lower to higher degree (ties by
  // id) and intersect out-neighbourhoods.
  auto rank_less = [&](VertexId a, VertexId b) {
    if (adj[a].size() != adj[b].size()) return adj[a].size() < adj[b].size();
    return a < b;
  };
  std::vector<std::vector<VertexId>> forward(n);
  for (VertexId v = 0; v < n; ++v) {
    for (const VertexId u : adj[v]) {
      if (rank_less(v, u)) forward[v].push_back(u);
    }
    std::sort(forward[v].begin(), forward[v].end());
  }
  for (VertexId v = 0; v < n; ++v) {
    for (const VertexId u : forward[v]) {
      // Intersect forward[v] and forward[u].
      auto it_v = forward[v].begin();
      auto it_u = forward[u].begin();
      while (it_v != forward[v].end() && it_u != forward[u].end()) {
        if (*it_v < *it_u) {
          ++it_v;
        } else if (*it_u < *it_v) {
          ++it_u;
        } else {
          ++triangles[v];
          ++triangles[u];
          ++triangles[*it_v];
          ++it_v;
          ++it_u;
        }
      }
    }
  }
  return triangles;
}

std::uint64_t total_triangles(const Graph& graph) {
  const auto per_vertex = triangle_counts(graph);
  const std::uint64_t corners =
      std::accumulate(per_vertex.begin(), per_vertex.end(), std::uint64_t{0});
  return corners / 3;
}

double global_clustering_coefficient(const Graph& graph) {
  const auto adj = simple_adjacency(graph);
  std::uint64_t wedges = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const std::uint64_t d = adj[v].size();
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(total_triangles(graph)) /
         static_cast<double>(wedges);
}

std::uint32_t estimate_diameter(const Graph& graph, std::uint32_t samples,
                                std::uint64_t seed) {
  EBV_REQUIRE(samples >= 1, "need at least one BFS sample");
  if (graph.num_vertices() == 0) return 0;
  const CsrGraph both = CsrGraph::build(graph, CsrGraph::Direction::kBoth);
  Rng rng(derive_seed(seed, 0xD1));

  std::uint32_t best = 0;
  VertexId start = static_cast<VertexId>(bounded(rng, graph.num_vertices()));
  for (std::uint32_t s = 0; s < samples; ++s) {
    std::vector<std::uint32_t> dist(graph.num_vertices(),
                                    std::numeric_limits<std::uint32_t>::max());
    std::queue<VertexId> q;
    dist[start] = 0;
    q.push(start);
    VertexId farthest = start;
    while (!q.empty()) {
      const VertexId v = q.front();
      q.pop();
      if (dist[v] > dist[farthest]) farthest = v;
      for (const VertexId w : both.neighbors(v)) {
        if (dist[w] == std::numeric_limits<std::uint32_t>::max()) {
          dist[w] = dist[v] + 1;
          q.push(w);
        }
      }
    }
    best = std::max(best, dist[farthest]);
    // Double-sweep: restart from the farthest vertex found; alternate
    // with fresh random starts to escape small components.
    start = (s % 2 == 0) ? farthest
                         : static_cast<VertexId>(
                               bounded(rng, graph.num_vertices()));
  }
  return best;
}

}  // namespace ebv
