// Bounded-memory ingestion: convert an arbitrary text edge list (or an
// EBVG binary graph) into an EBVS snapshot with a classic external merge
// sort, so graphs far larger than RAM can be brought into the mmap path.
//
// Pass 1 streams the input, buffering fixed-size records until the
// configured memory budget is hit, sorts each full buffer into a RUN
// (ascending (src, dst), stable — parallel chunk-sort + merge on the
// shared ThreadPool, bounded by `num_threads`) and spills it to a temp
// file. Pass 2 k-way-merges the runs straight into the snapshot's edge and
// weight sections, breaking key ties by run index, which makes the merged
// sequence the STABLE sort of the input: converting with any budget, any
// thread count — or with everything in one in-memory run — produces a
// byte-identical snapshot.
//
// Memory model: O(budget) for the run buffer plus O(|V|) for the degree
// accumulators; the edge data itself never lives in memory at once.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace ebv::io {

struct ConvertOptions {
  /// Upper bound on the run buffer, in bytes (12 bytes per pending edge).
  /// Inputs larger than this spill to sorted runs on disk. Clamped to at
  /// least one 4 KiB page.
  std::size_t memory_budget_bytes = std::size_t{256} << 20;

  /// Bound on the ThreadPool fan-out while sorting each run; 1 = serial.
  /// The output is identical for every value.
  std::uint32_t num_threads = 1;

  /// Drop (v, v) edges at parse time (matches GraphBuilder's default).
  bool remove_self_loops = true;

  /// Drop exact (src, dst) duplicates during the merge, keeping the first
  /// occurrence in input order (and its weight).
  bool deduplicate = false;

  /// Directory for the spilled runs; empty = siblings next to the
  /// snapshot being written. Run-file names carry a pid-unique suffix
  /// ("<out>.run<k>.<pid>-<n>.tmp"), so concurrent converts may share a
  /// temp_dir safely; runs are removed on completion and on failure.
  std::string temp_dir;
};

struct ConvertStats {
  VertexId num_vertices = 0;
  EdgeId edges_read = 0;       ///< records accepted from the input
  EdgeId edges_written = 0;    ///< records in the snapshot
  EdgeId self_loops_dropped = 0;
  EdgeId duplicates_dropped = 0;
  std::size_t num_runs = 0;    ///< sorted runs (1 = fit in budget)
  std::uint64_t input_bytes = 0;
  bool weighted = false;
};

/// Convert `input_path` (a '#'-commented "src dst [weight]" text edge
/// list, or an EBVG binary when the path ends in ".ebvg") into an EBVS
/// snapshot at `output_path`. Vertex ids must fit VertexId (dense ids are
/// NOT required — the vertex count is max id + 1 — but ids ≥ 2^32 throw;
/// sparse id spaces should be compacted with GraphBuilder first). Throws
/// std::runtime_error on malformed input or I/O failure.
ConvertStats convert_edge_list_to_snapshot(const std::string& input_path,
                                           const std::string& output_path,
                                           const ConvertOptions& options = {});

}  // namespace ebv::io
