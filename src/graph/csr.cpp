#include "graph/csr.h"

#include "common/assert.h"

namespace ebv {

CsrGraph CsrGraph::build(const GraphView& graph, Direction direction) {
  return build(graph.num_vertices(), graph.edges(), direction);
}

CsrGraph CsrGraph::build(VertexId num_vertices, std::span<const Edge> edges,
                         Direction direction) {
  CsrGraph csr;
  csr.offsets_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);

  auto count = [&](VertexId v) { ++csr.offsets_[v + 1]; };
  for (const Edge& e : edges) {
    EBV_REQUIRE(e.src < num_vertices && e.dst < num_vertices,
                "edge endpoint out of range in CSR build");
    switch (direction) {
      case Direction::kOut: count(e.src); break;
      case Direction::kIn: count(e.dst); break;
      case Direction::kBoth:
        count(e.src);
        count(e.dst);
        break;
    }
  }
  for (std::size_t v = 1; v < csr.offsets_.size(); ++v) {
    csr.offsets_[v] += csr.offsets_[v - 1];
  }

  csr.neighbors_.resize(csr.offsets_.back());
  csr.edge_ids_.resize(csr.offsets_.back());
  std::vector<EdgeId> cursor(csr.offsets_.begin(), csr.offsets_.end() - 1);
  auto place = [&](VertexId from, VertexId to, EdgeId id) {
    const EdgeId slot = cursor[from]++;
    csr.neighbors_[slot] = to;
    csr.edge_ids_[slot] = id;
  };
  for (EdgeId id = 0; id < edges.size(); ++id) {
    const Edge& e = edges[id];
    switch (direction) {
      case Direction::kOut: place(e.src, e.dst, id); break;
      case Direction::kIn: place(e.dst, e.src, id); break;
      case Direction::kBoth:
        place(e.src, e.dst, id);
        place(e.dst, e.src, id);
        break;
    }
  }
  return csr;
}

}  // namespace ebv
