// Structural graph transformations. These are the preprocessing utilities
// a partitioning pipeline needs in practice: extracting the giant
// component before benchmarking, transposing for pull-based kernels,
// relabelling to expose or destroy locality, and attaching weights.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ebv {

/// Reverse every edge (weights follow their edges).
Graph transpose(const Graph& graph);

/// Subgraph induced by `keep_vertex` (indexed by vertex id). Vertices are
/// relabelled densely in ascending original-id order; `old_ids` (optional
/// out) receives new-id -> old-id.
Graph induced_subgraph(const Graph& graph,
                       const std::vector<std::uint8_t>& keep_vertex,
                       std::vector<VertexId>* old_ids = nullptr);

/// The largest weakly-connected component as an induced subgraph.
Graph largest_component(const Graph& graph,
                        std::vector<VertexId>* old_ids = nullptr);

/// Drop every vertex with total degree outside [min_degree, max_degree]
/// (and all incident edges), then compact ids.
Graph filter_by_degree(const Graph& graph, std::uint32_t min_degree,
                       std::uint32_t max_degree,
                       std::vector<VertexId>* old_ids = nullptr);

/// Relabel vertices by descending total degree (hubs get the lowest ids).
/// Useful for cache studies and for stressing order-sensitive
/// partitioners; `old_ids` receives new-id -> old-id.
Graph relabel_by_degree(const Graph& graph,
                        std::vector<VertexId>* old_ids = nullptr);

/// Copy of `graph` with uniform random weights in [min_weight,
/// max_weight] (seeded) — turns any generator output into an SSSP input.
Graph with_random_weights(const Graph& graph, float min_weight,
                          float max_weight, std::uint64_t seed);

}  // namespace ebv
