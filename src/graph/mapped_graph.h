// EBVS out-of-core graph snapshots: a versioned, page-aligned on-disk
// format whose sections can be mmap'ed and consumed through GraphView
// without ever materialising the graph in heap memory.
//
// Layout (byte-level spec in docs/FORMATS.md): a 4 KiB header page —
// magic "EBVS", version, endianness marker, counts, flags, name, section
// table — followed by five raw little-endian sections, each starting at a
// 4096-byte-aligned offset:
//
//   edges         Edge{u32 src, u32 dst} × |E|, ascending (src, dst)
//   weights       f32 × |E| (absent when the graph is unweighted)
//   csr_offsets   u64 × (|V|+1); edges[csr_offsets[v] .. csr_offsets[v+1])
//                 are exactly the out-edges of v (valid because the edge
//                 section is src-sorted)
//   out_degrees   u32 × |V|
//   in_degrees    u32 × |V|
//
// The edge order of a snapshot is CANONICAL: ascending (src, dst), ties
// in first-seen input order. write_snapshot_file() canonicalises whatever
// view it is given; read_snapshot_file() and MappedGraph::view() both
// present the file's edge sequence verbatim, so the resident and mapped
// paths see the same graph with the same edge ids — the invariant behind
// the bit-identical `ebvpart partition --mmap` guarantee.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "graph/graph.h"
#include "graph/graph_view.h"
#include "graph/section_io.h"

namespace ebv {

namespace io {

/// Write `view` as an EBVS snapshot, canonicalising the edge order to
/// ascending (src, dst) (stable, weights follow their edges). Throws
/// std::runtime_error on I/O failure.
void write_snapshot_file(const std::string& path, const GraphView& view);

/// Read a snapshot fully into a resident Graph (same edge order as the
/// file). Throws std::runtime_error on malformed input.
Graph read_snapshot_file(const std::string& path);

namespace detail {

/// Streaming producer of an EBVS file: edges are appended one at a time
/// in canonical (src, dst) order — the caller guarantees the order — and
/// the trailing sections are emitted by finish(). Weights are spooled to
/// a sibling temp file until the edge count is final, so a writer never
/// holds more than a fixed-size buffer; this is what lets the external-
/// sort converter emit snapshots larger than RAM. Shared by
/// write_snapshot_file() and convert_edge_list_to_snapshot().
class SnapshotWriter {
 public:
  /// Starts the file (placeholder header + open edge section).
  SnapshotWriter(const std::string& path, std::string_view name,
                 bool weighted);
  ~SnapshotWriter();
  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// Append the next edge; `weight` is ignored for unweighted writers.
  void append(const Edge& edge, float weight);

  [[nodiscard]] EdgeId edges_appended() const { return num_edges_; }

  /// Write the weight/csr/degree sections (degree spans must describe
  /// exactly the appended edge sequence) and patch the header. Must be
  /// called exactly once.
  void finish(VertexId num_vertices,
              std::span<const std::uint32_t> out_degrees,
              std::span<const std::uint32_t> in_degrees);

 private:
  struct Impl;
  Impl* impl_;
  EdgeId num_edges_ = 0;
};

}  // namespace detail
}  // namespace io

/// An EBVS snapshot mapped read-only into the address space. The sections
/// are demand-paged by the kernel: view() costs no reads up front, and
/// partitioning a mapped graph touches edge pages in stream order while
/// only the O(|V|) degree/offset sections and the partitioner's own state
/// compete for RAM — the explicit memory budget is the page cache.
class MappedGraph {
 public:
  /// Open + map `path` and validate the header and section table (magic,
  /// version, endianness, counts, bounds, alignment). Throws
  /// std::runtime_error on any mismatch. Section *contents* are trusted
  /// until validate() is called.
  explicit MappedGraph(const std::string& path);
  ~MappedGraph() = default;

  MappedGraph(const MappedGraph&) = delete;
  MappedGraph& operator=(const MappedGraph&) = delete;
  // Moves transfer the mapping; the moved-from object's spans are dead and
  // it must only be destroyed.
  MappedGraph(MappedGraph&& other) noexcept = default;
  MappedGraph& operator=(MappedGraph&& other) noexcept = default;

  /// Non-owning view over the mapped sections; valid while *this lives.
  [[nodiscard]] GraphView view() const {
    return {num_vertices_, edges_, weights_, out_degrees_, in_degrees_,
            name_};
  }

  [[nodiscard]] VertexId num_vertices() const { return num_vertices_; }
  [[nodiscard]] EdgeId num_edges() const { return edges_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// The CSR out-offset section: edges()[csr_offsets[v] .. csr_offsets[v+1])
  /// are the out-edges of v.
  [[nodiscard]] std::span<const std::uint64_t> csr_offsets() const {
    return csr_offsets_;
  }
  [[nodiscard]] std::span<const Edge> edges() const { return edges_; }

  /// Total bytes mapped (header + sections + padding).
  [[nodiscard]] std::size_t mapped_bytes() const { return file_.size(); }

  /// One sequential pass over every section verifying the invariants the
  /// header cannot express: endpoints < |V|, edges ascending by (src,dst),
  /// csr_offsets monotone and consistent with the edge section, degree
  /// sections summing to |E| each. Throws std::runtime_error on the first
  /// violation. O(|V| + |E|) reads.
  void validate() const;

 private:
  io::detail::MappedFile file_;
  VertexId num_vertices_ = 0;
  std::string name_;
  std::span<const Edge> edges_;
  std::span<const float> weights_;
  std::span<const std::uint64_t> csr_offsets_;
  std::span<const std::uint32_t> out_degrees_;
  std::span<const std::uint32_t> in_degrees_;
};

}  // namespace ebv
