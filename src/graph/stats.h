// Degree statistics and power-law exponent (η) estimation — produces the
// rows of the paper's Table I.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph_view.h"

namespace ebv {

struct GraphStats {
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;
  double average_degree = 0.0;   // |E| / |V| as in Table I
  std::uint32_t max_out_degree = 0;
  std::uint32_t max_total_degree = 0;
  VertexId isolated_vertices = 0;
  double eta = 0.0;              // estimated power-law exponent
};

/// Discrete maximum-likelihood estimate of the power-law exponent
/// (Clauset–Shalizi–Newman approximation): η = 1 + n / Σ ln(d_i/(dmin-0.5))
/// over total degrees d_i ≥ dmin. `min_degree == 0` (the default) picks
/// dmin adaptively as the average total degree, which excludes the
/// non-power-law low-degree bulk and recovers the generator exponent on
/// synthetic graphs. Returns 0 when no vertex qualifies.
double estimate_power_law_exponent(const GraphView& graph,
                                   std::uint32_t min_degree = 0);

/// histogram[d] = number of vertices with total degree d.
std::vector<std::uint64_t> degree_histogram(const GraphView& graph);

GraphStats compute_stats(const GraphView& graph);

}  // namespace ebv
