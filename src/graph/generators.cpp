#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/assert.h"
#include "common/rng.h"

namespace ebv::gen {
namespace {

/// Pack an edge into one u64 for duplicate detection.
std::uint64_t edge_key(VertexId u, VertexId v) {
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

/// Sample an index from a cumulative weight table (binary search).
VertexId sample_cdf(const std::vector<double>& cdf, Rng& rng) {
  std::uniform_real_distribution<double> uni(0.0, cdf.back());
  const double x = uni(rng);
  const auto it = std::upper_bound(cdf.begin(), cdf.end(), x);
  return static_cast<VertexId>(std::min<std::size_t>(
      static_cast<std::size_t>(it - cdf.begin()), cdf.size() - 1));
}

}  // namespace

Graph chung_lu(VertexId num_vertices, EdgeId num_edges, double exponent,
               bool undirected, std::uint64_t seed) {
  EBV_REQUIRE(num_vertices > 1, "chung_lu needs at least two vertices");
  EBV_REQUIRE(exponent > 1.0, "power-law exponent must exceed 1");

  // Expected-degree weights w_i ∝ (i+1)^(-1/(η-1)); truncate the head so no
  // single vertex is expected to touch more than a quarter of all samples
  // (keeps η < 2 inputs well-defined).
  const double gamma = 1.0 / (exponent - 1.0);
  std::vector<double> cdf(num_vertices);
  double total = 0.0;
  for (VertexId i = 0; i < num_vertices; ++i) {
    total += std::pow(static_cast<double>(i) + 1.0, -gamma);
    cdf[i] = total;
  }
  const double cap = cdf.back() / 4.0;
  if (cdf[0] > cap) {
    // Re-accumulate with per-vertex weights clamped to `cap`.
    double run = 0.0;
    double prev = 0.0;
    for (VertexId i = 0; i < num_vertices; ++i) {
      const double w = std::min(cdf[i] - prev, cap);
      prev = cdf[i];
      run += w;
      cdf[i] = run;
    }
  }

  Rng rng(derive_seed(seed, 0xC1));
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(num_edges * 2);
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  const EdgeId target = undirected ? num_edges / 2 : num_edges;
  EdgeId attempts = 0;
  const EdgeId max_attempts = target * 20 + 1000;
  while (edges.size() < (undirected ? target * 2 : target) &&
         attempts < max_attempts) {
    ++attempts;
    const VertexId u = sample_cdf(cdf, rng);
    const VertexId v = sample_cdf(cdf, rng);
    if (u == v) continue;
    const auto [a, b] = std::minmax(u, v);
    if (!seen.insert(edge_key(a, b)).second) continue;
    edges.push_back({u, v});
    if (undirected) edges.push_back({v, u});
  }
  Graph g(num_vertices, std::move(edges));
  g.set_name("chung_lu");
  return g;
}

Graph rmat(VertexId num_vertices_pow2, EdgeId num_edges, double a, double b,
           double c, std::uint64_t seed) {
  EBV_REQUIRE(num_vertices_pow2 > 1 &&
                  (num_vertices_pow2 & (num_vertices_pow2 - 1)) == 0,
              "rmat vertex count must be a power of two");
  EBV_REQUIRE(a > 0 && b >= 0 && c >= 0 && a + b + c < 1.0,
              "rmat probabilities must satisfy a+b+c < 1");
  int levels = 0;
  while ((VertexId{1} << levels) < num_vertices_pow2) ++levels;

  Rng rng(derive_seed(seed, 0x52));
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(num_edges * 2);
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  EdgeId attempts = 0;
  const EdgeId max_attempts = num_edges * 20 + 1000;
  while (edges.size() < num_edges && attempts < max_attempts) {
    ++attempts;
    VertexId u = 0;
    VertexId v = 0;
    for (int level = 0; level < levels; ++level) {
      const double r = uni(rng);
      const VertexId bit = VertexId{1} << (levels - 1 - level);
      if (r < a) {
        // upper-left quadrant: no bits set
      } else if (r < a + b) {
        v |= bit;
      } else if (r < a + b + c) {
        u |= bit;
      } else {
        u |= bit;
        v |= bit;
      }
    }
    if (u == v) continue;
    if (!seen.insert(edge_key(u, v)).second) continue;
    edges.push_back({u, v});
  }
  Graph g(num_vertices_pow2, std::move(edges));
  g.set_name("rmat");
  return g;
}

Graph barabasi_albert(VertexId num_vertices, std::uint32_t edges_per_vertex,
                      std::uint64_t seed) {
  EBV_REQUIRE(edges_per_vertex >= 1, "need at least one edge per vertex");
  EBV_REQUIRE(num_vertices > edges_per_vertex,
              "vertex count must exceed edges_per_vertex");

  Rng rng(derive_seed(seed, 0xBA));
  // `targets` holds one entry per edge endpoint; sampling uniformly from it
  // realises preferential attachment.
  std::vector<VertexId> endpoint_pool;
  endpoint_pool.reserve(static_cast<std::size_t>(num_vertices) *
                        edges_per_vertex * 2);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(num_vertices) * edges_per_vertex * 2);

  // Seed clique over the first m+1 vertices.
  for (VertexId u = 0; u <= edges_per_vertex; ++u) {
    for (VertexId v = u + 1; v <= edges_per_vertex; ++v) {
      edges.push_back({u, v});
      edges.push_back({v, u});
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  for (VertexId u = edges_per_vertex + 1; u < num_vertices; ++u) {
    std::unordered_set<VertexId> picked;
    while (picked.size() < edges_per_vertex) {
      const VertexId v =
          endpoint_pool[bounded(rng, endpoint_pool.size())];
      if (v == u) continue;
      picked.insert(v);
    }
    for (VertexId v : picked) {
      edges.push_back({u, v});
      edges.push_back({v, u});
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  Graph g(num_vertices, std::move(edges));
  g.set_name("barabasi_albert");
  return g;
}

Graph erdos_renyi(VertexId num_vertices, EdgeId num_edges,
                  std::uint64_t seed) {
  EBV_REQUIRE(num_vertices > 1, "erdos_renyi needs at least two vertices");
  Rng rng(derive_seed(seed, 0xE6));
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(num_edges * 2);
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  EdgeId attempts = 0;
  const EdgeId max_attempts = num_edges * 20 + 1000;
  while (edges.size() < num_edges && attempts < max_attempts) {
    ++attempts;
    const VertexId u = static_cast<VertexId>(bounded(rng, num_vertices));
    const VertexId v = static_cast<VertexId>(bounded(rng, num_vertices));
    if (u == v) continue;
    if (!seen.insert(edge_key(u, v)).second) continue;
    edges.push_back({u, v});
  }
  Graph g(num_vertices, std::move(edges));
  g.set_name("erdos_renyi");
  return g;
}

Graph road_grid(std::uint32_t width, std::uint32_t height,
                double keep_probability, std::uint64_t seed) {
  EBV_REQUIRE(width >= 2 && height >= 2, "grid must be at least 2x2");
  EBV_REQUIRE(keep_probability > 0.0 && keep_probability <= 1.0,
              "keep_probability must be in (0, 1]");
  Rng rng(derive_seed(seed, 0x6D));
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::uniform_real_distribution<float> wdist(1.0f, 10.0f);

  const VertexId n = width * height;
  auto id = [width](std::uint32_t x, std::uint32_t y) {
    return static_cast<VertexId>(y * width + x);
  };
  std::vector<Edge> edges;
  std::vector<float> weights;
  auto add_undirected = [&](VertexId u, VertexId v, float w) {
    edges.push_back({u, v});
    weights.push_back(w);
    edges.push_back({v, u});
    weights.push_back(w);
  };
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      if (x + 1 < width && uni(rng) < keep_probability) {
        add_undirected(id(x, y), id(x + 1, y), wdist(rng));
      }
      if (y + 1 < height && uni(rng) < keep_probability) {
        add_undirected(id(x, y), id(x, y + 1), wdist(rng));
      }
    }
  }
  // Sparse "highway ramps": one diagonal per ~200 cells keeps the graph
  // road-like (degree ≤ ~5) while breaking pure-grid symmetry.
  const std::uint64_t ramps = static_cast<std::uint64_t>(n) / 200;
  for (std::uint64_t i = 0; i < ramps; ++i) {
    const std::uint32_t x = static_cast<std::uint32_t>(bounded(rng, width - 1));
    const std::uint32_t y =
        static_cast<std::uint32_t>(bounded(rng, height - 1));
    add_undirected(id(x, y), id(x + 1, y + 1), wdist(rng));
  }
  Graph g(n, std::move(edges), std::move(weights));
  g.set_name("road_grid");
  return g;
}

Graph figure1_graph() {
  // A=0 B=1 C=2 D=3 E=4 F=5, stored in *alphabetical* edge order — the
  // paper's right-hand panel. EdgeOrder::kNatural therefore reproduces
  // the "alphabetical order" processing and kSortedAscending the
  // "sorting preprocessing" panel.
  std::vector<Edge> edges = {
      {0, 1},  // (A,B)
      {0, 2},  // (A,C)
      {0, 5},  // (A,F)
      {1, 2},  // (B,C)
      {3, 4},  // (D,E)
      {4, 5},  // (E,F)
  };
  Graph g(6, std::move(edges));
  g.set_name("figure1");
  return g;
}

}  // namespace ebv::gen
