// Compressed-sparse-row adjacency. Used by the local-based partitioners
// (NE, METIS-like), by the Blogel Voronoi partitioner, and by the local
// compute kernels inside BSP workers.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "graph/graph_view.h"

namespace ebv {

/// One-directional CSR: neighbors(v) lists the targets of edges leaving v
/// (or entering v when built with Direction::kIn). `edge_ids(v)` gives the
/// index of each adjacency entry in the originating edge list so callers
/// can recover weights or partition assignments.
class CsrGraph {
 public:
  enum class Direction { kOut, kIn, kBoth };

  CsrGraph() = default;

  /// Build from a graph's edge list (resident Graph or mapped snapshot
  /// view). Direction::kBoth symmetrises the graph (each directed edge
  /// appears in both endpoint lists), which is what CC and the Voronoi
  /// partitioner need.
  static CsrGraph build(const GraphView& graph, Direction direction);

  /// Build directly from an edge span (used for per-worker local CSRs).
  static CsrGraph build(VertexId num_vertices, std::span<const Edge> edges,
                        Direction direction);

  [[nodiscard]] VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  [[nodiscard]] EdgeId num_entries() const { return neighbors_.size(); }

  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }
  /// Edge-list index that produced each adjacency entry of v.
  [[nodiscard]] std::span<const EdgeId> edge_ids(VertexId v) const {
    return {edge_ids_.data() + offsets_[v], edge_ids_.data() + offsets_[v + 1]};
  }
  [[nodiscard]] std::uint32_t degree(VertexId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

 private:
  std::vector<EdgeId> offsets_;     // size num_vertices + 1
  std::vector<VertexId> neighbors_; // size num_entries
  std::vector<EdgeId> edge_ids_;    // parallel to neighbors_
};

}  // namespace ebv
