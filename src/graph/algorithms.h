// Sequential graph analytics used for dataset characterisation and as
// additional workload references: k-core decomposition, triangle
// counting, clustering coefficient and a sampled diameter estimate.
// All treat the graph as undirected (symmetrised adjacency).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ebv {

/// Core number of every vertex (Matula–Beck peeling, O(E)).
/// core[v] = largest k such that v belongs to the k-core.
std::vector<std::uint32_t> core_decomposition(const Graph& graph);

/// Number of triangles through each vertex (each triangle counted once
/// per corner). Parallel edges and directions are collapsed first.
std::vector<std::uint64_t> triangle_counts(const Graph& graph);

/// Total triangle count (each triangle counted once).
std::uint64_t total_triangles(const Graph& graph);

/// Global clustering coefficient: 3·triangles / open-or-closed wedges.
/// Returns 0 for graphs without wedges.
double global_clustering_coefficient(const Graph& graph);

/// Lower-bound diameter estimate: the largest BFS eccentricity over
/// `samples` seeded start vertices (standard double-sweep flavour).
std::uint32_t estimate_diameter(const Graph& graph, std::uint32_t samples,
                                std::uint64_t seed);

}  // namespace ebv
