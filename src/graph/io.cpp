#include "graph/io.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/binary_io.h"

namespace ebv::io {
namespace {

using detail::read_array;
using detail::write_pod;

constexpr char kMagic[4] = {'E', 'B', 'V', 'G'};
constexpr std::uint32_t kVersion = 1;
// Cap on the serialised name, enforced symmetrically: the writer clamps
// (names are display-only) so it can never produce a file the reader
// rejects.
constexpr std::size_t kMaxNameBytes = 1u << 16;

template <typename T>
T read_pod(std::istream& in) {
  return detail::read_pod<T>(in, "EBVG");
}

std::ifstream open_input(const std::string& path, std::ios::openmode mode) {
  std::ifstream in(path, mode);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return in;
}

std::ofstream open_output(const std::string& path, std::ios::openmode mode) {
  std::ofstream out(path, mode);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  return out;
}

}  // namespace

Graph read_edge_list(std::istream& in, GraphBuilder::Options options) {
  GraphBuilder builder(options);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    if (!(fields >> src >> dst)) {
      throw std::runtime_error("edge list: malformed line " +
                               std::to_string(line_no) + ": '" + line + "'");
    }
    float weight = 1.0f;
    fields >> weight;  // optional third column
    builder.add_edge(src, dst, weight);
  }
  return builder.build();
}

Graph read_edge_list_file(const std::string& path,
                          GraphBuilder::Options options) {
  auto in = open_input(path, std::ios::in);
  return read_edge_list(in, options);
}

void write_edge_list(std::ostream& out, const Graph& graph) {
  out << "# ebv edge list: " << graph.num_vertices() << " vertices, "
      << graph.num_edges() << " edges\n";
  char weight_buf[32];
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    out << graph.edge(e).src << ' ' << graph.edge(e).dst;
    if (graph.has_weights()) {
      // max_digits10 for float: round-trips exactly through text.
      std::snprintf(weight_buf, sizeof weight_buf, "%.9g", graph.weight(e));
      out << ' ' << weight_buf;
    }
    out << '\n';
  }
}

void write_edge_list_file(const std::string& path, const Graph& graph) {
  auto out = open_output(path, std::ios::out);
  write_edge_list(out, graph);
}

void write_binary(std::ostream& out, const Graph& graph) {
  out.write(kMagic, sizeof kMagic);
  write_pod(out, kVersion);
  const std::size_t name_len = std::min(graph.name().size(), kMaxNameBytes);
  write_pod(out, static_cast<std::uint32_t>(name_len));
  out.write(graph.name().data(), static_cast<std::streamsize>(name_len));
  write_pod(out, graph.num_vertices());
  write_pod(out, graph.num_edges());
  write_pod(out, static_cast<std::uint8_t>(graph.has_weights() ? 1 : 0));
  out.write(reinterpret_cast<const char*>(graph.edges().data()),
            static_cast<std::streamsize>(graph.num_edges() * sizeof(Edge)));
  if (graph.has_weights()) {
    out.write(reinterpret_cast<const char*>(graph.weights().data()),
              static_cast<std::streamsize>(graph.num_edges() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("EBVG: write failed");
}

void write_binary_file(const std::string& path, const Graph& graph) {
  auto out = open_output(path, std::ios::binary);
  write_binary(out, graph);
}

Graph read_binary(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::string_view(magic, 4) != std::string_view(kMagic, 4)) {
    throw std::runtime_error("EBVG: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("EBVG: unsupported version " +
                             std::to_string(version));
  }
  const auto name_len = read_pod<std::uint32_t>(in);
  if (name_len > kMaxNameBytes) {
    throw std::runtime_error("EBVG: implausible name length " +
                             std::to_string(name_len));
  }
  std::string name(name_len, '\0');
  in.read(name.data(), name_len);
  if (!in) throw std::runtime_error("EBVG: truncated name");
  const auto num_vertices = read_pod<VertexId>(in);
  const auto num_edges = read_pod<EdgeId>(in);
  const auto weighted = read_pod<std::uint8_t>(in);

  std::vector<Edge> edges =
      read_array<Edge>(in, num_edges, "EBVG", "edge data");
  std::vector<float> weights;
  if (weighted != 0) {
    weights = read_array<float>(in, num_edges, "EBVG", "weight data");
  }
  Graph g(num_vertices, std::move(edges), std::move(weights));
  g.set_name(name);
  return g;
}

Graph read_binary_file(const std::string& path) {
  auto in = open_input(path, std::ios::binary);
  return read_binary(in);
}

}  // namespace ebv::io
