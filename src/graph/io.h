// Graph serialisation: a human-readable edge-list text format and a compact
// binary format. Both round-trip exactly (including weights and names).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/builder.h"
#include "graph/graph.h"

namespace ebv::io {

/// Text format: '#'-prefixed comment lines, then one "src dst [weight]" per
/// line. Throws std::runtime_error on malformed input.
Graph read_edge_list(std::istream& in, GraphBuilder::Options options = {});
Graph read_edge_list_file(const std::string& path,
                          GraphBuilder::Options options = {});
void write_edge_list(std::ostream& out, const Graph& graph);
void write_edge_list_file(const std::string& path, const Graph& graph);

/// Binary format: "EBVG" magic, u32 version, name, counts, raw edge and
/// weight arrays. Throws std::runtime_error on magic/version/size mismatch.
Graph read_binary(std::istream& in);
Graph read_binary_file(const std::string& path);
void write_binary(std::ostream& out, const Graph& graph);
void write_binary_file(const std::string& path, const Graph& graph);

}  // namespace ebv::io
