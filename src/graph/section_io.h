// Shared low-level machinery for page-aligned section files. Two on-disk
// formats are built on it: EBVS graph snapshots (graph/mapped_graph.h)
// and EBVW worker-spill snapshots (bsp/spill_store.h). Both follow the
// same shape — a 4 KiB header page, raw little-endian sections starting
// at 4096-byte-aligned offsets, a patch-at-finish section table — and
// both are consumed through a read-only mapping whose pages the kernel
// demand-pages and may reclaim at any time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

namespace ebv::io::detail {

/// Alignment of every section start (and the header page size of both
/// formats): one 4 KiB page, so each mapped section begins on its own
/// page and casts to element pointers are always aligned.
inline constexpr std::size_t kSectionPageAlign = 4096;

/// Native-endianness marker shared by every section-file header; a
/// reader seeing any other value rejects the file (cross-endian files
/// are not supported).
inline constexpr std::uint32_t kSectionEndianMarker = 0x0A0B0C0D;

/// Serialise a field into a header page under construction.
template <typename T>
void put_field(std::vector<char>& page, std::size_t offset, const T& value) {
  std::memcpy(page.data() + offset, &value, sizeof value);
}

/// Read a field out of a mapped header page.
template <typename T>
T get_field(const std::byte* base, std::size_t offset) {
  T value{};
  std::memcpy(&value, base + offset, sizeof value);
  return value;
}

/// Validate the 16-byte prologue every section file starts with — magic
/// (offset 0), u32 version (4), u32 endianness marker (8), u32 header
/// size = kSectionPageAlign (12) — plus the minimum file size. Throws
/// std::runtime_error prefixed with `format` ("EBVS"/"EBVW") on any
/// mismatch, so both formats reject foreign files with one validator.
void check_header_prologue(const std::byte* base, std::size_t size,
                           const char magic[4], std::uint32_t version,
                           const char* format);

/// Append `bytes` raw bytes to `out`, advancing `cursor`.
void write_raw(std::ofstream& out, std::size_t& cursor, const void* data,
               std::size_t bytes);

/// Zero-pad `out` up to the next page boundary; returns the new cursor.
std::size_t pad_to_page(std::ofstream& out, std::size_t cursor);

/// A whole file mapped read-only (POSIX mmap; a heap copy on platforms
/// without it). Move-only; the mapping lives until destruction. Throws
/// std::runtime_error when the file cannot be opened, is empty, or the
/// mapping fails.
class MappedFile {
 public:
  MappedFile() = default;
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;

  [[nodiscard]] const std::byte* data() const { return base_; }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  void unmap() noexcept;

  const std::byte* base_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace ebv::io::detail
