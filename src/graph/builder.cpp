#include "graph/builder.h"

#include <algorithm>

#include "common/assert.h"

namespace ebv {

void GraphBuilder::add_edge(std::uint64_t src, std::uint64_t dst,
                            float weight) {
  if (options_.remove_self_loops && src == dst) return;
  if (weight != 1.0f) any_weighted_ = true;
  edges_.push_back({src, dst, weight});
}

Graph GraphBuilder::build(VertexId min_vertices) {
  original_ids_.clear();

  if (options_.compact_ids) {
    std::unordered_map<std::uint64_t, VertexId> remap;
    remap.reserve(edges_.size() * 2);
    auto dense = [&](std::uint64_t external) {
      auto [it, inserted] =
          remap.try_emplace(external, static_cast<VertexId>(remap.size()));
      if (inserted) original_ids_.push_back(external);
      return it->second;
    };
    for (RawEdge& e : edges_) {
      e.src = dense(e.src);
      e.dst = dense(e.dst);
    }
  }

  if (options_.make_undirected) {
    const std::size_t n = edges_.size();
    edges_.reserve(n * 2);
    for (std::size_t i = 0; i < n; ++i) {
      edges_.push_back({edges_[i].dst, edges_[i].src, edges_[i].weight});
    }
  }

  if (options_.deduplicate) {
    std::sort(edges_.begin(), edges_.end(),
              [](const RawEdge& a, const RawEdge& b) {
                return a.src != b.src ? a.src < b.src : a.dst < b.dst;
              });
    edges_.erase(std::unique(edges_.begin(), edges_.end(),
                             [](const RawEdge& a, const RawEdge& b) {
                               return a.src == b.src && a.dst == b.dst;
                             }),
                 edges_.end());
  }

  std::uint64_t max_id = 0;
  for (const RawEdge& e : edges_) {
    max_id = std::max({max_id, e.src, e.dst});
  }
  EBV_REQUIRE(edges_.empty() || max_id < kInvalidVertex,
              "vertex id exceeds 32-bit dense id space; enable compact_ids");
  const VertexId n = std::max<VertexId>(
      min_vertices, edges_.empty() ? 0 : static_cast<VertexId>(max_id + 1));

  std::vector<Edge> out;
  out.reserve(edges_.size());
  std::vector<float> weights;
  if (any_weighted_) weights.reserve(edges_.size());
  for (const RawEdge& e : edges_) {
    out.push_back({static_cast<VertexId>(e.src), static_cast<VertexId>(e.dst)});
    if (any_weighted_) weights.push_back(e.weight);
  }
  edges_.clear();
  edges_.shrink_to_fit();
  return Graph(n, std::move(out), std::move(weights));
}

}  // namespace ebv
