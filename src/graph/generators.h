// Synthetic graph generators.
//
// These are the substitutes for the paper's SNAP datasets (USARoad,
// LiveJournal, Twitter, Friendster), which are not redistributable inside
// this repository. Each generator is deterministic under a fixed seed and
// reproduces the property the partitioners actually respond to: the degree
// distribution (power-law exponent η) and the graph class (mesh-like road
// network vs. skewed social network). See DESIGN.md §4.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace ebv::gen {

/// Chung-Lu power-law graph. Vertex i receives an expected-degree weight
/// w_i ∝ (i + 1)^(-1/(exponent-1)); `num_edges` endpoint pairs are sampled
/// proportionally to the weights. Self-loops are rejected and duplicates
/// removed, so the realised edge count is slightly below `num_edges`.
/// With `undirected`, both directions of every sampled pair are emitted
/// (counting toward `num_edges`).
Graph chung_lu(VertexId num_vertices, EdgeId num_edges, double exponent,
               bool undirected, std::uint64_t seed);

/// R-MAT recursive-matrix generator (Graph500 parameters by default);
/// produces skewed in/out degrees with power-law-like tails.
Graph rmat(VertexId num_vertices_pow2, EdgeId num_edges, double a, double b,
           double c, std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches
/// `edges_per_vertex` undirected edges to existing vertices chosen
/// proportionally to degree. Produces η ≈ 3.
Graph barabasi_albert(VertexId num_vertices, std::uint32_t edges_per_vertex,
                      std::uint64_t seed);

/// Erdős–Rényi G(n, m): uniform random directed edges (no self-loops).
Graph erdos_renyi(VertexId num_vertices, EdgeId num_edges, std::uint64_t seed);

/// Road-network stand-in: a width×height 4-neighbour grid with
/// `keep_probability` of each grid edge retained, a sprinkling of diagonal
/// "ramp" edges, and random weights in [1, 10] for SSSP. Undirected (both
/// directions emitted); average total degree ≈ 2·2.4 like USARoad.
Graph road_grid(std::uint32_t width, std::uint32_t height,
                double keep_probability, std::uint64_t seed);

/// The 6-vertex example of the paper's Figure 1 (A..F = 0..5), used by the
/// edge-order demo and by unit tests. Undirected edges, single direction,
/// stored alphabetically: (A,B) (A,C) (A,F) (B,C) (D,E) (E,F) — so the
/// natural order replays the paper's "alphabetical order" panel.
Graph figure1_graph();

}  // namespace ebv::gen
