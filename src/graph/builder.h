// Incremental graph construction with the clean-up passes real edge-list
// inputs need: self-loop removal, duplicate elimination, symmetrisation,
// and id compaction for sparse external id spaces.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace ebv {

class GraphBuilder {
 public:
  struct Options {
    bool remove_self_loops = true;
    bool deduplicate = false;       // drop exact (src,dst) duplicates
    bool make_undirected = false;   // add the reverse of every edge
    bool compact_ids = false;       // relabel arbitrary u64 ids to dense u32
  };

  GraphBuilder() : GraphBuilder(Options()) {}
  explicit GraphBuilder(Options options) : options_(options) {}

  /// Add one edge using external (possibly sparse) vertex ids.
  void add_edge(std::uint64_t src, std::uint64_t dst, float weight = 1.0f);

  /// Number of edges accepted so far (before dedup/symmetrisation).
  [[nodiscard]] std::size_t pending_edges() const { return edges_.size(); }

  /// Finalise into an immutable Graph. The builder is left empty.
  /// Without compact_ids, external ids must already be dense u32; the
  /// vertex count is max id + 1 (or `min_vertices` if larger).
  Graph build(VertexId min_vertices = 0);

  /// After build() with compact_ids: dense id -> original external id.
  [[nodiscard]] const std::vector<std::uint64_t>& original_ids() const {
    return original_ids_;
  }

 private:
  struct RawEdge {
    std::uint64_t src;
    std::uint64_t dst;
    float weight;
  };

  Options options_;
  std::vector<RawEdge> edges_;
  bool any_weighted_ = false;
  std::vector<std::uint64_t> original_ids_;
};

}  // namespace ebv
