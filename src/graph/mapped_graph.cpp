#include "graph/mapped_graph.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/failpoint.h"
#include "common/unique_id.h"
#include "graph/section_io.h"

namespace ebv {
namespace {

using io::detail::get_field;
using io::detail::pad_to_page;
using io::detail::put_field;
using io::detail::write_raw;

// Header field offsets within the 4 KiB header page (docs/FORMATS.md).
constexpr char kMagic[4] = {'E', 'B', 'V', 'S'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 4096;
constexpr std::size_t kPageAlign = io::detail::kSectionPageAlign;
constexpr std::size_t kMaxNameBytes = 216;

constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffVersion = 4;
constexpr std::size_t kOffEndian = 8;
constexpr std::size_t kOffHeaderBytes = 12;
constexpr std::size_t kOffNumVertices = 16;
constexpr std::size_t kOffNumEdges = 24;
constexpr std::size_t kOffFlags = 32;
constexpr std::size_t kOffNameLen = 36;
constexpr std::size_t kOffName = 40;            // kMaxNameBytes bytes
constexpr std::size_t kOffSectionTable = 256;   // kNumSections × {u64, u64}

constexpr std::uint32_t kFlagWeighted = 1u << 0;

enum Section : std::size_t {
  kSecEdges = 0,
  kSecWeights = 1,
  kSecCsrOffsets = 2,
  kSecOutDegrees = 3,
  kSecInDegrees = 4,
  kNumSections = 5,
};

struct SectionEntry {
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
};

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("EBVS: " + what);
}

}  // namespace

namespace io {
namespace detail {

struct SnapshotWriter::Impl {
  std::string path;
  std::string spool_path;
  std::ofstream out;
  std::ofstream spool;  // weight spool; open iff weighted
  bool weighted = false;
  bool finished = false;
  std::size_t cursor = 0;
  SectionEntry table[kNumSections];
  std::vector<Edge> edge_buf;
  std::vector<float> weight_buf;
};

namespace {

constexpr std::size_t kWriterChunk = 1u << 16;

}  // namespace

SnapshotWriter::SnapshotWriter(const std::string& path, std::string_view name,
                               bool weighted)
    : impl_(new Impl) {
  impl_->path = path;
  impl_->weighted = weighted;
  impl_->out.open(path, std::ios::binary | std::ios::trunc);
  if (!impl_->out) {
    delete impl_;
    fail("cannot open for writing: " + path);
  }
  if (weighted) {
    // The pid-unique suffix keeps two writers targeting the same output
    // from clobbering each other's spool, and lets the stale sweep
    // (common/stale_sweep.h) reclaim one left behind by a crash — the
    // fixed ".wspool.tmp" name could do neither.
    impl_->spool_path =
        path + ".wspool." + process_unique_suffix() + ".tmp";
    impl_->spool.open(impl_->spool_path, std::ios::binary | std::ios::trunc);
    if (!impl_->spool) {
      const std::string spool_path = impl_->spool_path;
      delete impl_;
      fail("cannot open weight spool: " + spool_path);
    }
  }

  // Placeholder header (counts and table patched by finish()); the name is
  // final from the start.
  std::vector<char> header(kHeaderBytes, 0);
  std::memcpy(header.data() + kOffMagic, kMagic, sizeof kMagic);
  put_field(header, kOffVersion, kVersion);
  put_field(header, kOffEndian, kSectionEndianMarker);
  put_field(header, kOffHeaderBytes, static_cast<std::uint32_t>(kHeaderBytes));
  put_field(header, kOffFlags, weighted ? kFlagWeighted : 0u);
  const std::size_t name_len = std::min(name.size(), kMaxNameBytes);
  put_field(header, kOffNameLen, static_cast<std::uint32_t>(name_len));
  if (name_len > 0) std::memcpy(header.data() + kOffName, name.data(), name_len);
  impl_->out.write(header.data(), static_cast<std::streamsize>(header.size()));
  impl_->cursor = kHeaderBytes;
  impl_->table[kSecEdges].offset = impl_->cursor;  // edges start on page 1
  impl_->edge_buf.reserve(kWriterChunk);
  if (weighted) impl_->weight_buf.reserve(kWriterChunk);
}

SnapshotWriter::~SnapshotWriter() {
  if (impl_ == nullptr) return;
  if (!impl_->spool_path.empty()) {
    impl_->spool.close();
    std::remove(impl_->spool_path.c_str());
  }
  if (!impl_->finished) {
    // Abandoned before finish() completed (an exception unwound the
    // caller): a table-less snapshot must not survive to be mmapped.
    impl_->out.close();
    std::remove(impl_->path.c_str());
  }
  delete impl_;
}

void SnapshotWriter::append(const Edge& edge, float weight) {
  impl_->edge_buf.push_back(edge);
  if (impl_->edge_buf.size() == kWriterChunk) {
    write_raw(impl_->out, impl_->cursor, impl_->edge_buf.data(),
              impl_->edge_buf.size() * sizeof(Edge));
    impl_->edge_buf.clear();
  }
  if (impl_->weighted) {
    impl_->weight_buf.push_back(weight);
    if (impl_->weight_buf.size() == kWriterChunk) {
      std::size_t spool_cursor = 0;
      write_raw(impl_->spool, spool_cursor, impl_->weight_buf.data(),
                impl_->weight_buf.size() * sizeof(float));
      impl_->weight_buf.clear();
    }
  }
  ++num_edges_;
}

void SnapshotWriter::finish(VertexId num_vertices,
                            std::span<const std::uint32_t> out_degrees,
                            std::span<const std::uint32_t> in_degrees) {
  Impl& s = *impl_;
  EBV_REQUIRE(!s.finished, "SnapshotWriter::finish called twice");
  EBV_REQUIRE(out_degrees.size() == num_vertices &&
                  in_degrees.size() == num_vertices,
              "degree spans must cover every vertex");

  failpoint::maybe_fail_stream("snapshot.write", s.out);
  write_raw(s.out, s.cursor, s.edge_buf.data(),
            s.edge_buf.size() * sizeof(Edge));
  s.edge_buf.clear();
  s.table[kSecEdges].bytes = s.cursor - s.table[kSecEdges].offset;

  auto begin_section = [&](Section sec) {
    s.cursor = pad_to_page(s.out, s.cursor);
    s.table[sec].offset = s.cursor;
  };

  begin_section(kSecWeights);
  if (s.weighted) {
    std::size_t spool_cursor = 0;
    write_raw(s.spool, spool_cursor, s.weight_buf.data(),
              s.weight_buf.size() * sizeof(float));
    s.weight_buf.clear();
    s.spool.flush();
    if (!s.spool) fail("weight spool write failed: " + s.spool_path);
    s.spool.close();
    std::ifstream spool_in(s.spool_path, std::ios::binary);
    if (!spool_in) fail("cannot reopen weight spool: " + s.spool_path);
    std::vector<char> copy_buf(1u << 20);
    while (spool_in) {
      spool_in.read(copy_buf.data(),
                    static_cast<std::streamsize>(copy_buf.size()));
      write_raw(s.out, s.cursor, copy_buf.data(),
                static_cast<std::size_t>(spool_in.gcount()));
    }
  }
  s.table[kSecWeights].bytes = s.cursor - s.table[kSecWeights].offset;

  begin_section(kSecCsrOffsets);
  {
    // out_degree cumsum == positions in the src-sorted edge section;
    // streamed in chunks so |V|+1 offsets never sit in memory at once.
    std::vector<std::uint64_t> chunk;
    chunk.reserve(kWriterChunk);
    std::uint64_t running = 0;
    chunk.push_back(running);
    for (VertexId v = 0; v < num_vertices; ++v) {
      running += out_degrees[v];
      chunk.push_back(running);
      if (chunk.size() == kWriterChunk) {
        write_raw(s.out, s.cursor, chunk.data(),
                  chunk.size() * sizeof(std::uint64_t));
        chunk.clear();
      }
    }
    write_raw(s.out, s.cursor, chunk.data(),
              chunk.size() * sizeof(std::uint64_t));
  }
  s.table[kSecCsrOffsets].bytes = s.cursor - s.table[kSecCsrOffsets].offset;

  begin_section(kSecOutDegrees);
  write_raw(s.out, s.cursor, out_degrees.data(),
            out_degrees.size() * sizeof(std::uint32_t));
  s.table[kSecOutDegrees].bytes = s.cursor - s.table[kSecOutDegrees].offset;

  begin_section(kSecInDegrees);
  write_raw(s.out, s.cursor, in_degrees.data(),
            in_degrees.size() * sizeof(std::uint32_t));
  s.table[kSecInDegrees].bytes = s.cursor - s.table[kSecInDegrees].offset;

  s.out.seekp(static_cast<std::streamoff>(kOffNumVertices));
  const auto v64 = static_cast<std::uint64_t>(num_vertices);
  s.out.write(reinterpret_cast<const char*>(&v64), sizeof v64);
  const auto e64 = static_cast<std::uint64_t>(num_edges_);
  s.out.write(reinterpret_cast<const char*>(&e64), sizeof e64);
  s.out.seekp(static_cast<std::streamoff>(kOffSectionTable));
  s.out.write(reinterpret_cast<const char*>(s.table), sizeof s.table);
  s.out.flush();
  if (!s.out) fail("write failed (snapshot output): " + s.path);
  s.finished = true;
}

}  // namespace detail

void write_snapshot_file(const std::string& path, const GraphView& view) {
  // Canonical edge order: ascending (src, dst), stable. The permutation is
  // applied on the fly while streaming the edge section out.
  std::vector<EdgeId> order(view.num_edges());
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::stable_sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    const Edge& ea = view.edge(a);
    const Edge& eb = view.edge(b);
    if (ea.src != eb.src) return ea.src < eb.src;
    return ea.dst < eb.dst;
  });

  detail::SnapshotWriter writer(path, view.name(), view.has_weights());
  for (const EdgeId e : order) writer.append(view.edge(e), view.weight(e));
  writer.finish(view.num_vertices(), view.out_degrees(), view.in_degrees());
}

Graph read_snapshot_file(const std::string& path) {
  MappedGraph mapped(path);
  const GraphView v = mapped.view();
  Graph g(v.num_vertices(),
          std::vector<Edge>(v.edges().begin(), v.edges().end()),
          std::vector<float>(v.weights().begin(), v.weights().end()));
  g.set_name(mapped.name());
  return g;
}

}  // namespace io

MappedGraph::MappedGraph(const std::string& path) {
  try {
    file_ = io::detail::MappedFile(path);
  } catch (const std::runtime_error& e) {
    fail(e.what());
  }
  // If a check below throws, the already-constructed file_ member unmaps
  // itself — no manual cleanup needed.
  const std::byte* base = file_.data();
  const std::size_t size = file_.size();

  io::detail::check_header_prologue(base, size, kMagic, kVersion, "EBVS");
  const auto v64 = get_field<std::uint64_t>(base, kOffNumVertices);
  const auto e64 = get_field<std::uint64_t>(base, kOffNumEdges);
  if (v64 >= kInvalidVertex) fail("vertex count exceeds 32-bit id space");
  // Bound the counts by the file size BEFORE any size arithmetic: a
  // hostile e64 near 2^64 would otherwise wrap e64 * sizeof(Edge) and
  // slip past the section-length checks. (v64 < 2^32, so its products
  // cannot wrap.)
  if (e64 > size / sizeof(Edge)) {
    fail("edge count exceeds the file (truncated or hostile header)");
  }
  num_vertices_ = static_cast<VertexId>(v64);
  const auto flags = get_field<std::uint32_t>(base, kOffFlags);
  const auto name_len = get_field<std::uint32_t>(base, kOffNameLen);
  if (name_len > kMaxNameBytes) fail("implausible name length");
  name_.assign(reinterpret_cast<const char*>(base) + kOffName, name_len);

  SectionEntry table[kNumSections];
  std::memcpy(table, base + kOffSectionTable, sizeof table);
  auto section = [&](Section s, std::uint64_t expect_bytes,
                     const char* what) -> const std::byte* {
    const SectionEntry& entry = table[s];
    if (entry.bytes != expect_bytes) {
      fail(std::string(what) + " section has wrong length");
    }
    if (entry.bytes == 0) return base;  // empty span, any base will do
    if (entry.offset % kPageAlign != 0) {
      fail(std::string(what) + " section is not page-aligned");
    }
    if (entry.offset > size || size - entry.offset < entry.bytes) {
      fail(std::string(what) + " section exceeds the file (truncated?)");
    }
    return base + entry.offset;
  };

  const std::uint64_t v_plus_1 = v64 + 1;
  edges_ = {reinterpret_cast<const Edge*>(
                section(kSecEdges, e64 * sizeof(Edge), "edge")),
            static_cast<std::size_t>(e64)};
  const std::uint64_t weight_bytes =
      (flags & kFlagWeighted) != 0 ? e64 * sizeof(float) : 0;
  weights_ = {reinterpret_cast<const float*>(
                  section(kSecWeights, weight_bytes, "weight")),
              static_cast<std::size_t>(weight_bytes / sizeof(float))};
  csr_offsets_ = {
      reinterpret_cast<const std::uint64_t*>(section(
          kSecCsrOffsets, v_plus_1 * sizeof(std::uint64_t), "csr-offset")),
      static_cast<std::size_t>(v_plus_1)};
  out_degrees_ = {
      reinterpret_cast<const std::uint32_t*>(section(
          kSecOutDegrees, v64 * sizeof(std::uint32_t), "out-degree")),
      static_cast<std::size_t>(v64)};
  in_degrees_ = {
      reinterpret_cast<const std::uint32_t*>(section(
          kSecInDegrees, v64 * sizeof(std::uint32_t), "in-degree")),
      static_cast<std::size_t>(v64)};
}

void MappedGraph::validate() const {
  if (csr_offsets_.front() != 0 || csr_offsets_.back() != num_edges()) {
    fail("csr offsets do not span the edge section");
  }
  std::uint64_t out_sum = 0;
  std::uint64_t in_sum = 0;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    if (csr_offsets_[v + 1] < csr_offsets_[v]) {
      fail("csr offsets are not monotone");
    }
    if (csr_offsets_[v + 1] - csr_offsets_[v] != out_degrees_[v]) {
      fail("out-degree section disagrees with csr offsets");
    }
    out_sum += out_degrees_[v];
    in_sum += in_degrees_[v];
  }
  if (out_sum != num_edges() || in_sum != num_edges()) {
    fail("degree sections do not sum to the edge count");
  }
  const Edge* prev = nullptr;
  for (const Edge& e : edges_) {
    if (e.src >= num_vertices_ || e.dst >= num_vertices_) {
      fail("edge endpoint out of range");
    }
    if (prev != nullptr &&
        (prev->src > e.src || (prev->src == e.src && prev->dst > e.dst))) {
      fail("edge section is not in canonical (src, dst) order");
    }
    prev = &e;
  }
}

}  // namespace ebv
