#include "graph/mapped_graph.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <numeric>
#include <stdexcept>
#include <vector>

#if defined(_WIN32)
#include <cstdlib>
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace ebv {
namespace {

// Header field offsets within the 4 KiB header page (docs/FORMATS.md).
constexpr char kMagic[4] = {'E', 'B', 'V', 'S'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kEndianMarker = 0x0A0B0C0D;
constexpr std::size_t kHeaderBytes = 4096;
constexpr std::size_t kPageAlign = 4096;
constexpr std::size_t kMaxNameBytes = 216;

constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffVersion = 4;
constexpr std::size_t kOffEndian = 8;
constexpr std::size_t kOffHeaderBytes = 12;
constexpr std::size_t kOffNumVertices = 16;
constexpr std::size_t kOffNumEdges = 24;
constexpr std::size_t kOffFlags = 32;
constexpr std::size_t kOffNameLen = 36;
constexpr std::size_t kOffName = 40;            // kMaxNameBytes bytes
constexpr std::size_t kOffSectionTable = 256;   // kNumSections × {u64, u64}

constexpr std::uint32_t kFlagWeighted = 1u << 0;

enum Section : std::size_t {
  kSecEdges = 0,
  kSecWeights = 1,
  kSecCsrOffsets = 2,
  kSecOutDegrees = 3,
  kSecInDegrees = 4,
  kNumSections = 5,
};

struct SectionEntry {
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
};

template <typename T>
void put(std::vector<char>& page, std::size_t offset, const T& value) {
  std::memcpy(page.data() + offset, &value, sizeof value);
}

template <typename T>
T get(const std::byte* base, std::size_t offset) {
  T value{};
  std::memcpy(&value, base + offset, sizeof value);
  return value;
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("EBVS: " + what);
}

std::size_t pad_to_page(std::ofstream& out, std::size_t cursor) {
  static const std::vector<char> zeros(kPageAlign, 0);
  const std::size_t rem = cursor % kPageAlign;
  if (rem == 0) return cursor;
  out.write(zeros.data(), static_cast<std::streamsize>(kPageAlign - rem));
  return cursor + (kPageAlign - rem);
}

}  // namespace

namespace io {
namespace detail {

struct SnapshotWriter::Impl {
  std::string path;
  std::string spool_path;
  std::ofstream out;
  std::ofstream spool;  // weight spool; open iff weighted
  bool weighted = false;
  bool finished = false;
  std::size_t cursor = 0;
  SectionEntry table[kNumSections];
  std::vector<Edge> edge_buf;
  std::vector<float> weight_buf;
};

namespace {

constexpr std::size_t kWriterChunk = 1u << 16;

void write_raw(std::ofstream& out, std::size_t& cursor, const void* data,
               std::size_t bytes) {
  if (bytes == 0) return;
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  cursor += bytes;
}

}  // namespace

SnapshotWriter::SnapshotWriter(const std::string& path, std::string_view name,
                               bool weighted)
    : impl_(new Impl) {
  impl_->path = path;
  impl_->weighted = weighted;
  impl_->out.open(path, std::ios::binary | std::ios::trunc);
  if (!impl_->out) {
    delete impl_;
    fail("cannot open for writing: " + path);
  }
  if (weighted) {
    impl_->spool_path = path + ".wspool.tmp";
    impl_->spool.open(impl_->spool_path, std::ios::binary | std::ios::trunc);
    if (!impl_->spool) {
      delete impl_;
      fail("cannot open weight spool: " + path + ".wspool.tmp");
    }
  }

  // Placeholder header (counts and table patched by finish()); the name is
  // final from the start.
  std::vector<char> header(kHeaderBytes, 0);
  std::memcpy(header.data() + kOffMagic, kMagic, sizeof kMagic);
  put(header, kOffVersion, kVersion);
  put(header, kOffEndian, kEndianMarker);
  put(header, kOffHeaderBytes, static_cast<std::uint32_t>(kHeaderBytes));
  put(header, kOffFlags, weighted ? kFlagWeighted : 0u);
  const std::size_t name_len = std::min(name.size(), kMaxNameBytes);
  put(header, kOffNameLen, static_cast<std::uint32_t>(name_len));
  if (name_len > 0) std::memcpy(header.data() + kOffName, name.data(), name_len);
  impl_->out.write(header.data(), static_cast<std::streamsize>(header.size()));
  impl_->cursor = kHeaderBytes;
  impl_->table[kSecEdges].offset = impl_->cursor;  // edges start on page 1
  impl_->edge_buf.reserve(kWriterChunk);
  if (weighted) impl_->weight_buf.reserve(kWriterChunk);
}

SnapshotWriter::~SnapshotWriter() {
  if (impl_ == nullptr) return;
  if (!impl_->spool_path.empty()) {
    impl_->spool.close();
    std::remove(impl_->spool_path.c_str());
  }
  delete impl_;
}

void SnapshotWriter::append(const Edge& edge, float weight) {
  impl_->edge_buf.push_back(edge);
  if (impl_->edge_buf.size() == kWriterChunk) {
    write_raw(impl_->out, impl_->cursor, impl_->edge_buf.data(),
              impl_->edge_buf.size() * sizeof(Edge));
    impl_->edge_buf.clear();
  }
  if (impl_->weighted) {
    impl_->weight_buf.push_back(weight);
    if (impl_->weight_buf.size() == kWriterChunk) {
      std::size_t spool_cursor = 0;
      write_raw(impl_->spool, spool_cursor, impl_->weight_buf.data(),
                impl_->weight_buf.size() * sizeof(float));
      impl_->weight_buf.clear();
    }
  }
  ++num_edges_;
}

void SnapshotWriter::finish(VertexId num_vertices,
                            std::span<const std::uint32_t> out_degrees,
                            std::span<const std::uint32_t> in_degrees) {
  Impl& s = *impl_;
  EBV_REQUIRE(!s.finished, "SnapshotWriter::finish called twice");
  EBV_REQUIRE(out_degrees.size() == num_vertices &&
                  in_degrees.size() == num_vertices,
              "degree spans must cover every vertex");
  s.finished = true;

  write_raw(s.out, s.cursor, s.edge_buf.data(),
            s.edge_buf.size() * sizeof(Edge));
  s.edge_buf.clear();
  s.table[kSecEdges].bytes = s.cursor - s.table[kSecEdges].offset;

  auto begin_section = [&](Section sec) {
    s.cursor = pad_to_page(s.out, s.cursor);
    s.table[sec].offset = s.cursor;
  };

  begin_section(kSecWeights);
  if (s.weighted) {
    std::size_t spool_cursor = 0;
    write_raw(s.spool, spool_cursor, s.weight_buf.data(),
              s.weight_buf.size() * sizeof(float));
    s.weight_buf.clear();
    s.spool.flush();
    if (!s.spool) fail("weight spool write failed: " + s.spool_path);
    s.spool.close();
    std::ifstream spool_in(s.spool_path, std::ios::binary);
    if (!spool_in) fail("cannot reopen weight spool: " + s.spool_path);
    std::vector<char> copy_buf(1u << 20);
    while (spool_in) {
      spool_in.read(copy_buf.data(),
                    static_cast<std::streamsize>(copy_buf.size()));
      write_raw(s.out, s.cursor, copy_buf.data(),
                static_cast<std::size_t>(spool_in.gcount()));
    }
  }
  s.table[kSecWeights].bytes = s.cursor - s.table[kSecWeights].offset;

  begin_section(kSecCsrOffsets);
  {
    // out_degree cumsum == positions in the src-sorted edge section;
    // streamed in chunks so |V|+1 offsets never sit in memory at once.
    std::vector<std::uint64_t> chunk;
    chunk.reserve(kWriterChunk);
    std::uint64_t running = 0;
    chunk.push_back(running);
    for (VertexId v = 0; v < num_vertices; ++v) {
      running += out_degrees[v];
      chunk.push_back(running);
      if (chunk.size() == kWriterChunk) {
        write_raw(s.out, s.cursor, chunk.data(),
                  chunk.size() * sizeof(std::uint64_t));
        chunk.clear();
      }
    }
    write_raw(s.out, s.cursor, chunk.data(),
              chunk.size() * sizeof(std::uint64_t));
  }
  s.table[kSecCsrOffsets].bytes = s.cursor - s.table[kSecCsrOffsets].offset;

  begin_section(kSecOutDegrees);
  write_raw(s.out, s.cursor, out_degrees.data(),
            out_degrees.size() * sizeof(std::uint32_t));
  s.table[kSecOutDegrees].bytes = s.cursor - s.table[kSecOutDegrees].offset;

  begin_section(kSecInDegrees);
  write_raw(s.out, s.cursor, in_degrees.data(),
            in_degrees.size() * sizeof(std::uint32_t));
  s.table[kSecInDegrees].bytes = s.cursor - s.table[kSecInDegrees].offset;

  s.out.seekp(static_cast<std::streamoff>(kOffNumVertices));
  const auto v64 = static_cast<std::uint64_t>(num_vertices);
  s.out.write(reinterpret_cast<const char*>(&v64), sizeof v64);
  const auto e64 = static_cast<std::uint64_t>(num_edges_);
  s.out.write(reinterpret_cast<const char*>(&e64), sizeof e64);
  s.out.seekp(static_cast<std::streamoff>(kOffSectionTable));
  s.out.write(reinterpret_cast<const char*>(s.table), sizeof s.table);
  s.out.flush();
  if (!s.out) fail("write failed: " + s.path);
}

}  // namespace detail

void write_snapshot_file(const std::string& path, const GraphView& view) {
  // Canonical edge order: ascending (src, dst), stable. The permutation is
  // applied on the fly while streaming the edge section out.
  std::vector<EdgeId> order(view.num_edges());
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::stable_sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    const Edge& ea = view.edge(a);
    const Edge& eb = view.edge(b);
    if (ea.src != eb.src) return ea.src < eb.src;
    return ea.dst < eb.dst;
  });

  detail::SnapshotWriter writer(path, view.name(), view.has_weights());
  for (const EdgeId e : order) writer.append(view.edge(e), view.weight(e));
  writer.finish(view.num_vertices(), view.out_degrees(), view.in_degrees());
}

Graph read_snapshot_file(const std::string& path) {
  MappedGraph mapped(path);
  const GraphView v = mapped.view();
  Graph g(v.num_vertices(),
          std::vector<Edge>(v.edges().begin(), v.edges().end()),
          std::vector<float>(v.weights().begin(), v.weights().end()));
  g.set_name(mapped.name());
  return g;
}

}  // namespace io

MappedGraph::MappedGraph(const std::string& path) {
#if defined(_WIN32)
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) fail("cannot open: " + path);
  const auto file_size = static_cast<std::size_t>(in.tellg());
  auto* buffer = static_cast<std::byte*>(std::malloc(std::max<std::size_t>(
      file_size, 1)));
  if (buffer == nullptr) fail("allocation failed for: " + path);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(buffer), static_cast<std::streamsize>(
      file_size));
  if (!in && file_size != 0) {
    std::free(buffer);
    fail("read failed: " + path);
  }
  base_ = buffer;
  size_ = file_size;
#else
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("cannot open: " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail("fstat failed: " + path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ < kHeaderBytes) {
    ::close(fd);
    fail("file shorter than the header page: " + path);
  }
  void* mapping = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (mapping == MAP_FAILED) fail("mmap failed: " + path);
  base_ = static_cast<const std::byte*>(mapping);
#endif

  try {
    if (size_ < kHeaderBytes) fail("file shorter than the header page");
    if (std::memcmp(base_, kMagic, sizeof kMagic) != 0) fail("bad magic");
    if (const auto version = get<std::uint32_t>(base_, kOffVersion);
        version != kVersion) {
      fail("unsupported version " + std::to_string(version));
    }
    if (get<std::uint32_t>(base_, kOffEndian) != kEndianMarker) {
      fail("endianness mismatch (snapshot written on a foreign-endian host)");
    }
    if (get<std::uint32_t>(base_, kOffHeaderBytes) != kHeaderBytes) {
      fail("unexpected header size");
    }
    const auto v64 = get<std::uint64_t>(base_, kOffNumVertices);
    const auto e64 = get<std::uint64_t>(base_, kOffNumEdges);
    if (v64 >= kInvalidVertex) fail("vertex count exceeds 32-bit id space");
    // Bound the counts by the file size BEFORE any size arithmetic: a
    // hostile e64 near 2^64 would otherwise wrap e64 * sizeof(Edge) and
    // slip past the section-length checks. (v64 < 2^32, so its products
    // cannot wrap.)
    if (e64 > size_ / sizeof(Edge)) {
      fail("edge count exceeds the file (truncated or hostile header)");
    }
    num_vertices_ = static_cast<VertexId>(v64);
    const auto flags = get<std::uint32_t>(base_, kOffFlags);
    const auto name_len = get<std::uint32_t>(base_, kOffNameLen);
    if (name_len > kMaxNameBytes) fail("implausible name length");
    name_.assign(reinterpret_cast<const char*>(base_) + kOffName, name_len);

    SectionEntry table[kNumSections];
    std::memcpy(table, base_ + kOffSectionTable, sizeof table);
    auto section = [&](Section s, std::uint64_t expect_bytes,
                       const char* what) -> const std::byte* {
      const SectionEntry& entry = table[s];
      if (entry.bytes != expect_bytes) {
        fail(std::string(what) + " section has wrong length");
      }
      if (entry.bytes == 0) return base_;  // empty span, any base will do
      if (entry.offset % kPageAlign != 0) {
        fail(std::string(what) + " section is not page-aligned");
      }
      if (entry.offset > size_ || size_ - entry.offset < entry.bytes) {
        fail(std::string(what) + " section exceeds the file (truncated?)");
      }
      return base_ + entry.offset;
    };

    const std::uint64_t v_plus_1 = v64 + 1;
    edges_ = {reinterpret_cast<const Edge*>(
                  section(kSecEdges, e64 * sizeof(Edge), "edge")),
              static_cast<std::size_t>(e64)};
    const std::uint64_t weight_bytes =
        (flags & kFlagWeighted) != 0 ? e64 * sizeof(float) : 0;
    weights_ = {reinterpret_cast<const float*>(
                    section(kSecWeights, weight_bytes, "weight")),
                static_cast<std::size_t>(weight_bytes / sizeof(float))};
    csr_offsets_ = {
        reinterpret_cast<const std::uint64_t*>(section(
            kSecCsrOffsets, v_plus_1 * sizeof(std::uint64_t), "csr-offset")),
        static_cast<std::size_t>(v_plus_1)};
    out_degrees_ = {
        reinterpret_cast<const std::uint32_t*>(section(
            kSecOutDegrees, v64 * sizeof(std::uint32_t), "out-degree")),
        static_cast<std::size_t>(v64)};
    in_degrees_ = {
        reinterpret_cast<const std::uint32_t*>(section(
            kSecInDegrees, v64 * sizeof(std::uint32_t), "in-degree")),
        static_cast<std::size_t>(v64)};
  } catch (...) {
    unmap();
    throw;
  }
}

void MappedGraph::validate() const {
  if (csr_offsets_.front() != 0 || csr_offsets_.back() != num_edges()) {
    fail("csr offsets do not span the edge section");
  }
  std::uint64_t out_sum = 0;
  std::uint64_t in_sum = 0;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    if (csr_offsets_[v + 1] < csr_offsets_[v]) {
      fail("csr offsets are not monotone");
    }
    if (csr_offsets_[v + 1] - csr_offsets_[v] != out_degrees_[v]) {
      fail("out-degree section disagrees with csr offsets");
    }
    out_sum += out_degrees_[v];
    in_sum += in_degrees_[v];
  }
  if (out_sum != num_edges() || in_sum != num_edges()) {
    fail("degree sections do not sum to the edge count");
  }
  const Edge* prev = nullptr;
  for (const Edge& e : edges_) {
    if (e.src >= num_vertices_ || e.dst >= num_vertices_) {
      fail("edge endpoint out of range");
    }
    if (prev != nullptr &&
        (prev->src > e.src || (prev->src == e.src && prev->dst > e.dst))) {
      fail("edge section is not in canonical (src, dst) order");
    }
    prev = &e;
  }
}

void MappedGraph::unmap() noexcept {
  if (base_ == nullptr) return;
#if defined(_WIN32)
  std::free(const_cast<std::byte*>(base_));
#else
  ::munmap(const_cast<std::byte*>(base_), size_);
#endif
  base_ = nullptr;
  size_ = 0;
}

MappedGraph::~MappedGraph() { unmap(); }

MappedGraph::MappedGraph(MappedGraph&& other) noexcept
    : base_(other.base_),
      size_(other.size_),
      num_vertices_(other.num_vertices_),
      name_(std::move(other.name_)),
      edges_(other.edges_),
      weights_(other.weights_),
      csr_offsets_(other.csr_offsets_),
      out_degrees_(other.out_degrees_),
      in_degrees_(other.in_degrees_) {
  other.base_ = nullptr;
  other.size_ = 0;
}

MappedGraph& MappedGraph::operator=(MappedGraph&& other) noexcept {
  if (this != &other) {
    unmap();
    base_ = other.base_;
    size_ = other.size_;
    num_vertices_ = other.num_vertices_;
    name_ = std::move(other.name_);
    edges_ = other.edges_;
    weights_ = other.weights_;
    csr_offsets_ = other.csr_offsets_;
    out_degrees_ = other.out_degrees_;
    in_degrees_ = other.in_degrees_;
    other.base_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

}  // namespace ebv
