#include "graph/transforms.h"

#include <algorithm>
#include <numeric>

#include "common/assert.h"
#include "common/rng.h"

namespace ebv {
namespace {

/// Component labels via union-find (local copy — the graph library cannot
/// depend on the apps layer).
std::vector<VertexId> component_labels(const Graph& graph) {
  std::vector<VertexId> parent(graph.num_vertices());
  std::iota(parent.begin(), parent.end(), VertexId{0});
  auto find = [&](VertexId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (const Edge& e : graph.edges()) {
    const VertexId ra = find(e.src);
    const VertexId rb = find(e.dst);
    if (ra != rb) parent[std::max(ra, rb)] = std::min(ra, rb);
  }
  std::vector<VertexId> labels(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) labels[v] = find(v);
  return labels;
}

}  // namespace

Graph transpose(const Graph& graph) {
  std::vector<Edge> edges;
  edges.reserve(graph.num_edges());
  for (const Edge& e : graph.edges()) edges.push_back({e.dst, e.src});
  std::vector<float> weights(graph.weights().begin(), graph.weights().end());
  Graph out(graph.num_vertices(), std::move(edges), std::move(weights));
  out.set_name(graph.name());
  return out;
}

Graph induced_subgraph(const Graph& graph,
                       const std::vector<std::uint8_t>& keep_vertex,
                       std::vector<VertexId>* old_ids) {
  EBV_REQUIRE(keep_vertex.size() == graph.num_vertices(),
              "keep mask must match the vertex count");
  std::vector<VertexId> remap(graph.num_vertices(), kInvalidVertex);
  VertexId next = 0;
  std::vector<VertexId> originals;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (keep_vertex[v] != 0) {
      remap[v] = next++;
      originals.push_back(v);
    }
  }
  std::vector<Edge> edges;
  std::vector<float> weights;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge& edge = graph.edge(e);
    if (remap[edge.src] == kInvalidVertex || remap[edge.dst] == kInvalidVertex) {
      continue;
    }
    edges.push_back({remap[edge.src], remap[edge.dst]});
    if (graph.has_weights()) weights.push_back(graph.weight(e));
  }
  if (old_ids != nullptr) *old_ids = std::move(originals);
  Graph out(next, std::move(edges), std::move(weights));
  out.set_name(graph.name());
  return out;
}

Graph largest_component(const Graph& graph, std::vector<VertexId>* old_ids) {
  if (graph.num_vertices() == 0) return Graph();
  const std::vector<VertexId> labels = component_labels(graph);
  std::vector<std::uint64_t> size(graph.num_vertices(), 0);
  for (const VertexId label : labels) ++size[label];
  const VertexId winner = static_cast<VertexId>(
      std::max_element(size.begin(), size.end()) - size.begin());
  std::vector<std::uint8_t> keep(graph.num_vertices(), 0);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    keep[v] = labels[v] == winner ? 1 : 0;
  }
  return induced_subgraph(graph, keep, old_ids);
}

Graph filter_by_degree(const Graph& graph, std::uint32_t min_degree,
                       std::uint32_t max_degree,
                       std::vector<VertexId>* old_ids) {
  EBV_REQUIRE(min_degree <= max_degree, "empty degree interval");
  std::vector<std::uint8_t> keep(graph.num_vertices(), 0);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const std::uint32_t d = graph.degree(v);
    keep[v] = (d >= min_degree && d <= max_degree) ? 1 : 0;
  }
  return induced_subgraph(graph, keep, old_ids);
}

Graph relabel_by_degree(const Graph& graph, std::vector<VertexId>* old_ids) {
  std::vector<VertexId> order(graph.num_vertices());
  std::iota(order.begin(), order.end(), VertexId{0});
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return graph.degree(a) > graph.degree(b);
  });
  std::vector<VertexId> new_id(graph.num_vertices());
  for (VertexId rank = 0; rank < graph.num_vertices(); ++rank) {
    new_id[order[rank]] = rank;
  }
  std::vector<Edge> edges;
  edges.reserve(graph.num_edges());
  for (const Edge& e : graph.edges()) {
    edges.push_back({new_id[e.src], new_id[e.dst]});
  }
  std::vector<float> weights(graph.weights().begin(), graph.weights().end());
  if (old_ids != nullptr) *old_ids = std::move(order);
  Graph out(graph.num_vertices(), std::move(edges), std::move(weights));
  out.set_name(graph.name());
  return out;
}

Graph with_random_weights(const Graph& graph, float min_weight,
                          float max_weight, std::uint64_t seed) {
  EBV_REQUIRE(min_weight <= max_weight, "empty weight interval");
  Rng rng(derive_seed(seed, 0x77));
  std::uniform_real_distribution<float> dist(min_weight, max_weight);
  std::vector<float> weights(graph.num_edges());
  for (float& w : weights) w = dist(rng);
  std::vector<Edge> edges(graph.edges().begin(), graph.edges().end());
  Graph out(graph.num_vertices(), std::move(edges), std::move(weights));
  out.set_name(graph.name());
  return out;
}

}  // namespace ebv
