#include "graph/graph.h"

namespace ebv {

Graph::Graph(VertexId num_vertices, std::vector<Edge> edges,
             std::vector<float> weights)
    : num_vertices_(num_vertices),
      edges_(std::move(edges)),
      weights_(std::move(weights)) {
  EBV_REQUIRE(weights_.empty() || weights_.size() == edges_.size(),
              "weight array must be empty or match the edge count");
  out_degree_.assign(num_vertices_, 0);
  in_degree_.assign(num_vertices_, 0);
  for (const Edge& e : edges_) {
    EBV_REQUIRE(e.src < num_vertices_ && e.dst < num_vertices_,
                "edge endpoint out of range");
    ++out_degree_[e.src];
    ++in_degree_[e.dst];
  }
}

}  // namespace ebv
