#include "graph/stats.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace ebv {

double estimate_power_law_exponent(const GraphView& graph,
                                   std::uint32_t min_degree) {
  if (min_degree == 0) {
    // Average total degree = 2|E|/|V|: fit the tail, not the Poisson bulk.
    const double avg =
        graph.num_vertices() == 0
            ? 0.0
            : 2.0 * static_cast<double>(graph.num_edges()) /
                  graph.num_vertices();
    min_degree = std::max<std::uint32_t>(2, static_cast<std::uint32_t>(avg));
  }
  double log_sum = 0.0;
  std::uint64_t n = 0;
  const double threshold = static_cast<double>(min_degree) - 0.5;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const std::uint32_t d = graph.degree(v);
    if (d < min_degree) continue;
    log_sum += std::log(static_cast<double>(d) / threshold);
    ++n;
  }
  if (n == 0 || log_sum <= 0.0) return 0.0;
  return 1.0 + static_cast<double>(n) / log_sum;
}

std::vector<std::uint64_t> degree_histogram(const GraphView& graph) {
  std::uint32_t max_degree = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    max_degree = std::max(max_degree, graph.degree(v));
  }
  std::vector<std::uint64_t> histogram(max_degree + 1, 0);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    ++histogram[graph.degree(v)];
  }
  return histogram;
}

GraphStats compute_stats(const GraphView& graph) {
  GraphStats s;
  s.num_vertices = graph.num_vertices();
  s.num_edges = graph.num_edges();
  s.average_degree = graph.average_degree();
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    s.max_out_degree = std::max(s.max_out_degree, graph.out_degree(v));
    s.max_total_degree = std::max(s.max_total_degree, graph.degree(v));
    if (graph.degree(v) == 0) ++s.isolated_vertices;
  }
  s.eta = estimate_power_law_exponent(graph);
  return s;
}

}  // namespace ebv
