#include "graph/section_io.h"

#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "common/failpoint.h"

#if defined(_WIN32)
// Heap-copy fallback only.
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace ebv::io::detail {

void check_header_prologue(const std::byte* base, std::size_t size,
                           const char magic[4], std::uint32_t version,
                           const char* format) {
  const auto fail = [&](const std::string& what) {
    throw std::runtime_error(std::string(format) + ": " + what);
  };
  if (size < kSectionPageAlign) fail("file shorter than the header page");
  if (std::memcmp(base, magic, 4) != 0) fail("bad magic");
  if (const auto v = get_field<std::uint32_t>(base, 4); v != version) {
    fail("unsupported version " + std::to_string(v));
  }
  if (get_field<std::uint32_t>(base, 8) != kSectionEndianMarker) {
    fail("endianness mismatch (file written on a foreign-endian host)");
  }
  if (get_field<std::uint32_t>(base, 12) != kSectionPageAlign) {
    fail("unexpected header size");
  }
}

void write_raw(std::ofstream& out, std::size_t& cursor, const void* data,
               std::size_t bytes) {
  if (bytes == 0) return;
  failpoint::maybe_fail_stream("section_io.write", out);
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  cursor += bytes;
}

std::size_t pad_to_page(std::ofstream& out, std::size_t cursor) {
  static const std::vector<char> zeros(kSectionPageAlign, 0);
  const std::size_t rem = cursor % kSectionPageAlign;
  if (rem == 0) return cursor;
  out.write(zeros.data(),
            static_cast<std::streamsize>(kSectionPageAlign - rem));
  return cursor + (kSectionPageAlign - rem);
}

MappedFile::MappedFile(const std::string& path) {
  if (failpoint::hit("section_io.mmap") == failpoint::Action::kMmapFail) {
    throw failpoint::InjectedFault("section_io.mmap", failpoint::Action::kMmapFail,
                              "mmap failed (injected): " + path);
  }
#if defined(_WIN32)
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot open: " + path);
  const auto file_size = static_cast<std::size_t>(in.tellg());
  if (file_size == 0) throw std::runtime_error("empty file: " + path);
  auto* buffer = static_cast<std::byte*>(std::malloc(file_size));
  if (buffer == nullptr) {
    throw std::runtime_error("allocation failed for: " + path);
  }
  in.seekg(0);
  in.read(reinterpret_cast<char*>(buffer),
          static_cast<std::streamsize>(file_size));
  if (!in) {
    std::free(buffer);
    throw std::runtime_error("read failed: " + path);
  }
  base_ = buffer;
  size_ = file_size;
#else
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("cannot open: " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("fstat failed: " + path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    ::close(fd);
    throw std::runtime_error("empty file: " + path);
  }
  void* mapping = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (mapping == MAP_FAILED) throw std::runtime_error("mmap failed: " + path);
  base_ = static_cast<const std::byte*>(mapping);
#endif
}

void MappedFile::unmap() noexcept {
  if (base_ == nullptr) return;
#if defined(_WIN32)
  std::free(const_cast<std::byte*>(base_));
#else
  ::munmap(const_cast<std::byte*>(base_), size_);
#endif
  base_ = nullptr;
  size_ = 0;
}

MappedFile::~MappedFile() { unmap(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : base_(other.base_), size_(other.size_) {
  other.base_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    unmap();
    base_ = other.base_;
    size_ = other.size_;
    other.base_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

}  // namespace ebv::io::detail
