#include "graph/snapshot_convert.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/assert.h"
#include "common/parallel.h"
#include "common/unique_id.h"
#include "graph/graph_view.h"
#include "graph/io.h"
#include "graph/mapped_graph.h"

namespace ebv::io {
namespace {

/// One pending input edge: the unit spilled to runs and merged. 12 bytes;
/// the memory budget divides by this.
struct Record {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  float weight = 1.0f;
};

bool record_key_less(const Record& a, const Record& b) {
  if (a.src != b.src) return a.src < b.src;
  return a.dst < b.dst;
}

/// Stable (src, dst) sort of one run, fanned out over at most
/// `num_threads` ranks: contiguous chunks are stable_sorted in parallel,
/// then pairwise inplace_merged (stable, left chunk precedes right), so
/// the result is the sequential stable_sort for every thread count.
void sort_run(std::vector<Record>& records, std::uint32_t num_threads) {
  const unsigned team = std::max<std::uint32_t>(num_threads, 1);
  if (team <= 1 || records.size() < 1u << 14 ||
      ThreadPool::inside_pool_body()) {
    std::stable_sort(records.begin(), records.end(), record_key_less);
    return;
  }
  std::vector<std::size_t> bounds(team + 1);
  for (unsigned t = 0; t <= team; ++t) {
    bounds[t] = records.size() * t / team;
  }
  ThreadPool::global().run_team(team, [&](unsigned rank, unsigned) {
    std::stable_sort(
        records.begin() + static_cast<std::ptrdiff_t>(bounds[rank]),
        records.begin() + static_cast<std::ptrdiff_t>(bounds[rank + 1]),
        record_key_less);
  });
  for (unsigned width = 1; width < team; width *= 2) {
    for (unsigned t = 0; t + width < team; t += 2 * width) {
      std::inplace_merge(
          records.begin() + static_cast<std::ptrdiff_t>(bounds[t]),
          records.begin() + static_cast<std::ptrdiff_t>(bounds[t + width]),
          records.begin() + static_cast<std::ptrdiff_t>(
                                bounds[std::min(t + 2 * width, team)]),
          record_key_less);
    }
  }
}

/// Sequential reader over one spilled run file with a bounded refill
/// buffer.
class RunReader {
 public:
  RunReader(const std::string& path, EdgeId count)
      : in_(path, std::ios::binary), remaining_(count), path_(path) {
    if (!in_) throw std::runtime_error("convert: cannot reopen run: " + path);
    refill();
  }

  [[nodiscard]] bool exhausted() const { return pos_ == buf_.size(); }
  [[nodiscard]] const Record& head() const { return buf_[pos_]; }

  void pop() {
    ++pos_;
    if (pos_ == buf_.size()) refill();
  }

 private:
  void refill() {
    buf_.resize(std::min<EdgeId>(remaining_, kRefill));
    pos_ = 0;
    if (buf_.empty()) return;
    in_.read(reinterpret_cast<char*>(buf_.data()),
             static_cast<std::streamsize>(buf_.size() * sizeof(Record)));
    if (!in_) throw std::runtime_error("convert: truncated run: " + path_);
    remaining_ -= buf_.size();
  }

  static constexpr EdgeId kRefill = 1u << 15;
  std::ifstream in_;
  std::vector<Record> buf_;
  std::size_t pos_ = 0;
  EdgeId remaining_ = 0;
  std::string path_;
};

/// Fast "src dst [weight]" parser ('#' comments, blank lines). Vertex ids
/// must fit VertexId; anything else is a hard error with the line number.
class TextEdgeReader {
 public:
  explicit TextEdgeReader(const std::string& path) : in_(path) {
    if (!in_) throw std::runtime_error("cannot open for reading: " + path);
  }

  bool next(Record& record, bool& saw_weight) {
    while (std::getline(in_, line_)) {
      ++line_no_;
      if (line_.empty() || line_[0] == '#') continue;
      parse(record, saw_weight);
      return true;
    }
    return false;
  }

 private:
  [[noreturn]] void malformed() const {
    throw std::runtime_error("edge list: malformed line " +
                             std::to_string(line_no_) + ": '" + line_ + "'");
  }

  void parse(Record& record, bool& saw_weight) {
    const char* p = line_.data();
    const char* end = p + line_.size();
    auto skip_ws = [&] {
      while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
    };
    auto parse_id = [&]() -> std::uint32_t {
      std::uint64_t id = 0;
      const auto [next, ec] = std::from_chars(p, end, id);
      if (ec != std::errc{} || next == p) malformed();
      // The snapshot reader rejects num_vertices >= kInvalidVertex, and
      // num_vertices = max id + 1, so the largest admissible id is
      // kInvalidVertex - 2 — reject here rather than emit a snapshot our
      // own reader refuses to open.
      if (id + 1 >= kInvalidVertex) {
        throw std::runtime_error(
            "edge list: vertex id " + std::to_string(id) + " on line " +
            std::to_string(line_no_) +
            " exceeds the 32-bit id space (compact ids first)");
      }
      p = next;
      return static_cast<std::uint32_t>(id);
    };
    skip_ws();
    record.src = parse_id();
    skip_ws();
    record.dst = parse_id();
    skip_ws();
    record.weight = 1.0f;
    if (p < end) {
      float w = 0.0f;
      const auto [next, ec] = std::from_chars(p, end, w);
      if (ec != std::errc{} || next == p) malformed();
      p = next;
      skip_ws();
      if (p != end) malformed();
      record.weight = w;
      saw_weight = true;
    }
  }

  std::ifstream in_;
  std::string line_;
  std::size_t line_no_ = 0;
};

std::string run_path(const ConvertOptions& options,
                     const std::string& output_path, std::size_t index,
                     const std::string& token) {
  namespace fs = std::filesystem;
  const fs::path out(output_path);
  const fs::path dir = options.temp_dir.empty()
                           ? (out.has_parent_path() ? out.parent_path()
                                                    : fs::path("."))
                           : fs::path(options.temp_dir);
  // `token` (pid + per-process counter) makes the name collision-safe:
  // two concurrent converts sharing a temp_dir — even of the same output
  // filename — spill to disjoint run files instead of truncating each
  // other's live runs.
  return (dir / (out.filename().string() + ".run" + std::to_string(index) +
                 "." + token + ".tmp"))
      .string();
}

/// Resident convenience path for EBVG inputs (already written by this
/// tool from a resident graph, so materialising it again is acceptable).
ConvertStats convert_resident(const Graph& graph,
                              const std::string& output_path) {
  write_snapshot_file(output_path, graph);
  ConvertStats stats;
  stats.num_vertices = graph.num_vertices();
  stats.edges_read = graph.num_edges();
  stats.edges_written = graph.num_edges();
  stats.num_runs = 1;
  stats.weighted = graph.has_weights();
  return stats;
}

}  // namespace

ConvertStats convert_edge_list_to_snapshot(const std::string& input_path,
                                           const std::string& output_path,
                                           const ConvertOptions& options) {
  if (input_path.ends_with(".ebvg")) {
    ConvertStats stats = convert_resident(read_binary_file(input_path),
                                          output_path);
    stats.input_bytes = std::filesystem::file_size(input_path);
    return stats;
  }
  if (input_path.ends_with(".ebvs")) {
    throw std::runtime_error("convert: input is already an EBVS snapshot: " +
                             input_path);
  }

  ConvertStats stats;
  stats.input_bytes = std::filesystem::file_size(input_path);

  // ---- Pass 1: stream the text, spill budget-sized sorted runs. --------
  const std::size_t budget =
      std::max<std::size_t>(options.memory_budget_bytes, 4096);
  const std::size_t max_records = std::max<std::size_t>(
      budget / sizeof(Record), 64);

  std::vector<Record> buffer;
  buffer.reserve(std::min<std::size_t>(max_records, 1u << 16));
  std::vector<EdgeId> run_sizes;
  std::vector<std::string> run_files;
  VertexId max_id_plus_1 = 0;
  bool weighted = false;

  const std::string run_token = process_unique_suffix();
  auto spill = [&] {
    sort_run(buffer, options.num_threads);
    const std::string path =
        run_path(options, output_path, run_files.size(), run_token);
    std::ofstream run(path, std::ios::binary | std::ios::trunc);
    if (!run) throw std::runtime_error("convert: cannot open run: " + path);
    run.write(reinterpret_cast<const char*>(buffer.data()),
              static_cast<std::streamsize>(buffer.size() * sizeof(Record)));
    if (!run) throw std::runtime_error("convert: run write failed: " + path);
    run_files.push_back(path);
    run_sizes.push_back(buffer.size());
    buffer.clear();
  };

  auto cleanup_runs = [&]() noexcept {
    for (const std::string& path : run_files) std::remove(path.c_str());
  };

  try {
    TextEdgeReader reader(input_path);
    Record record;
    while (reader.next(record, weighted)) {
      if (options.remove_self_loops && record.src == record.dst) {
        ++stats.self_loops_dropped;
        continue;
      }
      max_id_plus_1 = std::max<VertexId>(
          max_id_plus_1, std::max(record.src, record.dst) + 1);
      buffer.push_back(record);
      ++stats.edges_read;
      if (buffer.size() == max_records) spill();
    }

    // Single-run fast path: everything fit in the budget — sort in place
    // and merge straight from memory, no temp I/O at all.
    const bool in_memory = run_files.empty();
    if (in_memory) {
      sort_run(buffer, options.num_threads);
      run_sizes.push_back(buffer.size());
    } else if (!buffer.empty()) {
      spill();
    }
    stats.num_runs = run_sizes.size();
    stats.num_vertices = max_id_plus_1;

    // ---- Pass 2: k-way merge into the snapshot. ----------------------
    // Ties between equal (src, dst) keys break by run index; runs are
    // contiguous input ranges in order, so the merged sequence is the
    // stable sort of the input — byte-identical output for every budget.
    std::vector<std::uint32_t> out_degrees(max_id_plus_1, 0);
    std::vector<std::uint32_t> in_degrees(max_id_plus_1, 0);
    detail::SnapshotWriter writer(
        output_path, std::filesystem::path(input_path).stem().string(),
        weighted);

    bool have_last = false;
    Record last;
    auto emit = [&](const Record& r) {
      if (options.deduplicate && have_last && last.src == r.src &&
          last.dst == r.dst) {
        ++stats.duplicates_dropped;
        return;
      }
      writer.append({r.src, r.dst}, r.weight);
      ++out_degrees[r.src];
      ++in_degrees[r.dst];
      last = r;
      have_last = true;
    };

    if (in_memory) {
      for (const Record& r : buffer) emit(r);
    } else {
      buffer.clear();
      buffer.shrink_to_fit();  // release the budget before the merge buffers
      std::vector<RunReader> readers;
      readers.reserve(run_files.size());
      for (std::size_t i = 0; i < run_files.size(); ++i) {
        readers.emplace_back(run_files[i], run_sizes[i]);
      }
      // (key, run index) min-heap over the run heads.
      auto heap_greater = [&](std::size_t a, std::size_t b) {
        const Record& ra = readers[a].head();
        const Record& rb = readers[b].head();
        if (record_key_less(ra, rb)) return false;
        if (record_key_less(rb, ra)) return true;
        return a > b;
      };
      std::priority_queue<std::size_t, std::vector<std::size_t>,
                          decltype(heap_greater)>
          heap(heap_greater);
      for (std::size_t i = 0; i < readers.size(); ++i) {
        if (!readers[i].exhausted()) heap.push(i);
      }
      while (!heap.empty()) {
        const std::size_t i = heap.top();
        heap.pop();
        emit(readers[i].head());
        readers[i].pop();
        if (!readers[i].exhausted()) heap.push(i);
      }
    }

    stats.edges_written = writer.edges_appended();
    stats.weighted = weighted;
    writer.finish(max_id_plus_1, out_degrees, in_degrees);
  } catch (...) {
    cleanup_runs();
    // Never leave a half-written placeholder-header snapshot behind — it
    // could clobber a previously valid file at output_path.
    std::remove(output_path.c_str());
    throw;
  }
  cleanup_runs();
  return stats;
}

}  // namespace ebv::io
