// Immutable edge-list graph: the input representation for every partitioner
// and for distributed-graph construction.
//
// Graphs are directed; undirected inputs are represented by materialising
// both directions (paper §III-C). Optional per-edge weights support SSSP.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/assert.h"
#include "common/types.h"

namespace ebv {

class Graph {
 public:
  Graph() = default;

  /// Takes ownership of an edge list over vertex ids in
  /// [0, num_vertices). Degree arrays are computed eagerly.
  /// Throws std::invalid_argument if any endpoint is out of range or if
  /// `weights` is non-empty and does not match `edges.size()`.
  Graph(VertexId num_vertices, std::vector<Edge> edges,
        std::vector<float> weights = {});

  [[nodiscard]] VertexId num_vertices() const { return num_vertices_; }
  [[nodiscard]] EdgeId num_edges() const { return edges_.size(); }
  [[nodiscard]] bool empty() const { return edges_.empty(); }

  [[nodiscard]] std::span<const Edge> edges() const { return edges_; }
  [[nodiscard]] const Edge& edge(EdgeId e) const { return edges_[e]; }

  [[nodiscard]] bool has_weights() const { return !weights_.empty(); }
  /// Weight of edge e; 1.0 when the graph is unweighted.
  [[nodiscard]] float weight(EdgeId e) const {
    return weights_.empty() ? 1.0f : weights_[e];
  }
  [[nodiscard]] std::span<const float> weights() const { return weights_; }

  [[nodiscard]] std::uint32_t out_degree(VertexId v) const {
    return out_degree_[v];
  }
  [[nodiscard]] std::uint32_t in_degree(VertexId v) const {
    return in_degree_[v];
  }
  /// Total degree = in + out; the quantity used by the EBV sort key and by
  /// degree-based partitioners (DBH, Ginger, HDRF).
  [[nodiscard]] std::uint32_t degree(VertexId v) const {
    return out_degree_[v] + in_degree_[v];
  }
  [[nodiscard]] std::span<const std::uint32_t> out_degrees() const {
    return out_degree_;
  }
  [[nodiscard]] std::span<const std::uint32_t> in_degrees() const {
    return in_degree_;
  }

  [[nodiscard]] double average_degree() const {
    return num_vertices_ == 0
               ? 0.0
               : static_cast<double>(num_edges()) / num_vertices_;
  }

  /// Optional display name carried through generators / IO for reporting.
  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
  std::vector<float> weights_;
  std::vector<std::uint32_t> out_degree_;
  std::vector<std::uint32_t> in_degree_;
  std::string name_;
};

}  // namespace ebv
