// Non-owning view of a graph: the uniform read interface consumed by the
// streaming partitioners, the Eva scoring core, metrics and stats.
//
// A GraphView is five spans (edges, weights, out/in degrees) plus the
// vertex count — it never owns storage. Two producers exist:
//
//   * a resident Graph (implicit conversion; spans alias its vectors), and
//   * an mmap-backed EBVS snapshot (MappedGraph::view() in
//     graph/mapped_graph.h; spans alias kernel-paged file sections).
//
// Code written against GraphView is therefore out-of-core ready: the edge
// and weight arrays may be demand-paged from disk and must be streamed,
// while the O(|V|) degree arrays are assumed cheap enough to touch at
// random (the standard streaming-partitioner memory model: vertex state
// resident, edge state external).
#pragma once

#include <span>
#include <string_view>

#include "graph/graph.h"

namespace ebv {

class GraphView {
 public:
  GraphView() = default;

  /// View over a resident Graph. Implicit on purpose: every API that takes
  /// a `const GraphView&` keeps accepting a `Graph` unchanged.
  GraphView(const Graph& graph)  // NOLINT(google-explicit-constructor)
      : num_vertices_(graph.num_vertices()),
        edges_(graph.edges()),
        weights_(graph.weights()),
        out_degrees_(graph.out_degrees()),
        in_degrees_(graph.in_degrees()),
        name_(graph.name()) {}

  /// View over raw spans (the mmap producer). `weights` may be empty;
  /// `out_degrees` and `in_degrees` must each have `num_vertices` entries.
  GraphView(VertexId num_vertices, std::span<const Edge> edges,
            std::span<const float> weights,
            std::span<const std::uint32_t> out_degrees,
            std::span<const std::uint32_t> in_degrees,
            std::string_view name = {})
      : num_vertices_(num_vertices),
        edges_(edges),
        weights_(weights),
        out_degrees_(out_degrees),
        in_degrees_(in_degrees),
        name_(name) {
    EBV_REQUIRE(out_degrees_.size() == num_vertices_ &&
                    in_degrees_.size() == num_vertices_,
                "degree spans must cover every vertex");
    EBV_REQUIRE(weights_.empty() || weights_.size() == edges_.size(),
                "weight span must be empty or match the edge span");
  }

  [[nodiscard]] VertexId num_vertices() const { return num_vertices_; }
  [[nodiscard]] EdgeId num_edges() const { return edges_.size(); }
  [[nodiscard]] bool empty() const { return edges_.empty(); }

  [[nodiscard]] std::span<const Edge> edges() const { return edges_; }
  [[nodiscard]] const Edge& edge(EdgeId e) const { return edges_[e]; }

  [[nodiscard]] bool has_weights() const { return !weights_.empty(); }
  /// Weight of edge e; 1.0 when the graph is unweighted.
  [[nodiscard]] float weight(EdgeId e) const {
    return weights_.empty() ? 1.0f : weights_[e];
  }
  [[nodiscard]] std::span<const float> weights() const { return weights_; }

  [[nodiscard]] std::uint32_t out_degree(VertexId v) const {
    return out_degrees_[v];
  }
  [[nodiscard]] std::uint32_t in_degree(VertexId v) const {
    return in_degrees_[v];
  }
  /// Total degree = in + out, as Graph::degree().
  [[nodiscard]] std::uint32_t degree(VertexId v) const {
    return out_degrees_[v] + in_degrees_[v];
  }
  [[nodiscard]] std::span<const std::uint32_t> out_degrees() const {
    return out_degrees_;
  }
  [[nodiscard]] std::span<const std::uint32_t> in_degrees() const {
    return in_degrees_;
  }

  [[nodiscard]] double average_degree() const {
    return num_vertices_ == 0
               ? 0.0
               : static_cast<double>(num_edges()) / num_vertices_;
  }

  [[nodiscard]] std::string_view name() const { return name_; }

 private:
  VertexId num_vertices_ = 0;
  std::span<const Edge> edges_;
  std::span<const float> weights_;
  std::span<const std::uint32_t> out_degrees_;
  std::span<const std::uint32_t> in_degrees_;
  std::string_view name_;
};

}  // namespace ebv
