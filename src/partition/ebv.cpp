#include "partition/ebv.h"

#include <cmath>
#include <limits>

#include "common/assert.h"

namespace ebv {
namespace {

/// Dense membership bitmaps for keep[i] — O(1) lookup, p·|V| bytes.
class KeepSets {
 public:
  KeepSets(PartitionId parts, VertexId vertices)
      : vertices_(vertices),
        bits_(static_cast<std::size_t>(parts) * vertices, 0) {}

  [[nodiscard]] bool contains(PartitionId i, VertexId v) const {
    return bits_[index(i, v)] != 0;
  }
  void insert(PartitionId i, VertexId v) { bits_[index(i, v)] = 1; }

 private:
  [[nodiscard]] std::size_t index(PartitionId i, VertexId v) const {
    return static_cast<std::size_t>(i) * vertices_ + v;
  }
  VertexId vertices_;
  std::vector<std::uint8_t> bits_;
};

}  // namespace

EdgePartition EbvPartitioner::partition(const Graph& graph,
                                        const PartitionConfig& config) const {
  std::vector<GrowthSample> unused;
  return partition_traced(graph, config, 0, unused);
}

EdgePartition EbvPartitioner::partition_traced(
    const Graph& graph, const PartitionConfig& config, std::size_t num_samples,
    std::vector<GrowthSample>& trace) const {
  check_partition_config(graph, config);
  trace.clear();

  const PartitionId p = config.num_parts;
  const double edges_per_part =
      static_cast<double>(std::max<EdgeId>(graph.num_edges(), 1)) / p;
  const double vertices_per_part =
      static_cast<double>(graph.num_vertices()) / p;

  KeepSets keep(p, graph.num_vertices());
  std::vector<std::uint64_t> ecount(p, 0);
  std::vector<std::uint64_t> vcount(p, 0);
  std::uint64_t total_replicas = 0;  // Σ vcount[i], for the growth trace

  EdgePartition result;
  result.num_parts = p;
  result.part_of_edge.assign(graph.num_edges(), kInvalidPartition);

  const std::vector<EdgeId> order =
      make_edge_order(graph, config.edge_order, config.seed);

  const EdgeId sample_every =
      num_samples == 0
          ? 0
          : std::max<EdgeId>(1, graph.num_edges() / num_samples);

  EdgeId processed = 0;
  for (const EdgeId e : order) {
    const auto [u, v] = graph.edge(e);

    // Algorithm 1, lines 8–15: evaluate every subgraph, pick the argmin
    // (ties broken toward the lowest index, matching a sequential scan).
    PartitionId best = 0;
    double best_eva = std::numeric_limits<double>::infinity();
    for (PartitionId i = 0; i < p; ++i) {
      double eva = 0.0;
      if (!keep.contains(i, u)) eva += 1.0;
      if (!keep.contains(i, v)) eva += 1.0;
      eva += config.alpha * static_cast<double>(ecount[i]) / edges_per_part;
      eva += config.beta * static_cast<double>(vcount[i]) / vertices_per_part;
      if (eva < best_eva) {
        best_eva = eva;
        best = i;
      }
    }

    // Lines 16–22: commit the assignment and update the bookkeeping.
    result.part_of_edge[e] = best;
    ++ecount[best];
    if (!keep.contains(best, u)) {
      ++vcount[best];
      ++total_replicas;
      keep.insert(best, u);
    }
    if (!keep.contains(best, v)) {
      ++vcount[best];
      ++total_replicas;
      keep.insert(best, v);
    }

    ++processed;
    if (sample_every != 0 && (processed % sample_every == 0 ||
                              processed == graph.num_edges())) {
      trace.push_back(
          {processed, static_cast<double>(total_replicas) /
                          std::max<VertexId>(graph.num_vertices(), 1)});
    }
  }
  return result;
}

double EbvPartitioner::edge_imbalance_bound(const Graph& graph,
                                            const PartitionConfig& config) {
  EBV_REQUIRE(config.alpha > 0.0, "Theorem 1 requires alpha > 0");
  const double e = static_cast<double>(graph.num_edges());
  const double p = static_cast<double>(config.num_parts);
  const double inner =
      std::floor(2.0 * e / (config.alpha * p) +
                 (config.beta / config.alpha) * e);
  return 1.0 + (p - 1.0) / e * (1.0 + inner);
}

double EbvPartitioner::vertex_imbalance_bound(const Graph& graph,
                                              const PartitionConfig& config,
                                              std::uint64_t sum_vi) {
  EBV_REQUIRE(config.beta > 0.0, "Theorem 2 requires beta > 0");
  EBV_REQUIRE(sum_vi > 0, "sum of |Vi| must be positive");
  const double v = static_cast<double>(graph.num_vertices());
  const double p = static_cast<double>(config.num_parts);
  const double inner =
      std::floor(2.0 * v / (config.beta * p) +
                 (config.alpha / config.beta) * v);
  return 1.0 + (p - 1.0) / static_cast<double>(sum_vi) * (1.0 + inner);
}

}  // namespace ebv
