#include "partition/ebv.h"

#include <cmath>
#include <limits>

#include "common/assert.h"
#include "partition/eva_scorer.h"

namespace ebv {

EdgePartition EbvPartitioner::partition(const Graph& graph,
                                        const PartitionConfig& config) const {
  std::vector<GrowthSample> unused;
  return partition_traced(graph, config, 0, unused);
}

EdgePartition EbvPartitioner::partition_view(
    const GraphView& view, const PartitionConfig& config) const {
  std::vector<GrowthSample> unused;
  return partition_traced(view, config, 0, unused);
}

EdgePartition EbvPartitioner::partition_traced(
    const GraphView& graph, const PartitionConfig& config,
    std::size_t num_samples, std::vector<GrowthSample>& trace) const {
  check_partition_config(graph, config);
  trace.clear();

  detail::EvaState state(graph, config);
  std::uint64_t total_replicas = 0;  // Σ vcount[i], for the growth trace

  EdgePartition result;
  result.num_parts = config.num_parts;
  result.part_of_edge.assign(graph.num_edges(), kInvalidPartition);

  const std::vector<EdgeId> order = make_edge_order(
      graph, config.edge_order, config.seed, config.num_threads);

  const EdgeId sample_every =
      num_samples == 0
          ? 0
          : std::max<EdgeId>(1, graph.num_edges() / num_samples);

  // Algorithm 1: visit edges in order; the scoring core evaluates every
  // subgraph (lines 8–15), picks the argmin with lowest-index tie-breaking
  // and applies the commit (lines 16–22). With num_threads > 1 the core
  // runs batched speculative team scoring, bit-identical to the sequential
  // scan for every (threads, batch) — see eva_scorer.h. Edges are pulled
  // in `order` and committed in the same order, so the sink tracks its own
  // cursor into `order`.
  std::size_t pull_pos = 0;
  std::size_t commit_pos = 0;
  detail::run_eva_scoring(
      state, config.num_threads, config.batch_size,
      [&](VertexId& u, VertexId& v) {
        if (pull_pos == order.size()) return false;
        const auto [src, dst] = graph.edge(order[pull_pos++]);
        u = src;
        v = dst;
        return true;
      },
      [&](PartitionId best, unsigned new_replicas) {
        result.part_of_edge[order[commit_pos++]] = best;
        total_replicas += new_replicas;
        const EdgeId processed = commit_pos;
        if (sample_every != 0 && (processed % sample_every == 0 ||
                                  processed == graph.num_edges())) {
          trace.push_back(
              {processed, static_cast<double>(total_replicas) /
                              std::max<VertexId>(graph.num_vertices(), 1)});
        }
      });
  return result;
}

double EbvPartitioner::edge_imbalance_bound(const GraphView& graph,
                                            const PartitionConfig& config) {
  EBV_REQUIRE(config.alpha > 0.0, "Theorem 1 requires alpha > 0");
  const double e = static_cast<double>(graph.num_edges());
  const double p = static_cast<double>(config.num_parts);
  const double inner =
      std::floor(2.0 * e / (config.alpha * p) +
                 (config.beta / config.alpha) * e);
  return 1.0 + (p - 1.0) / e * (1.0 + inner);
}

double EbvPartitioner::vertex_imbalance_bound(const GraphView& graph,
                                              const PartitionConfig& config,
                                              std::uint64_t sum_vi) {
  EBV_REQUIRE(config.beta > 0.0, "Theorem 2 requires beta > 0");
  EBV_REQUIRE(sum_vi > 0, "sum of |Vi| must be positive");
  const double v = static_cast<double>(graph.num_vertices());
  const double p = static_cast<double>(config.num_parts);
  const double inner =
      std::floor(2.0 * v / (config.beta * p) +
                 (config.alpha / config.beta) * v);
  return 1.0 + (p - 1.0) / static_cast<double>(sum_vi) * (1.0 + inner);
}

}  // namespace ebv
