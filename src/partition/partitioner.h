// Vertex-cut (edge partitioning) interface. A partitioner maps every edge
// of a Graph to exactly one of `num_parts` subgraphs (paper §III-C): the
// edge sets are disjoint, and V_i is the set of vertices covered by E_i,
// so vertices incident to edges in several parts are replicated.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/graph_view.h"

namespace ebv {

/// Edge processing order for sequential/streaming partitioners (EBV, HDRF,
/// Ginger). kSortedAscending is the paper's preprocessing: ascending by
/// deg(u) + deg(v). The other orders exist for the Fig. 5 / ablation
/// comparisons.
enum class EdgeOrder {
  kSortedAscending,
  kSortedDescending,
  kNatural,
  kRandom,
};

struct PartitionConfig {
  PartitionId num_parts = 2;

  /// EBV hyper-parameters (paper eq. 2); default 1.0 as in §IV-C.
  double alpha = 1.0;
  double beta = 1.0;

  /// Streaming order; EBV's default is the sorted preprocessing.
  EdgeOrder edge_order = EdgeOrder::kSortedAscending;

  /// Seed for any randomised decision (hash salts, random order, NE start
  /// vertices, METIS tie-breaking).
  std::uint64_t seed = 42;

  /// Worker threads for partitioners that support intra-partition
  /// parallelism; 1 = sequential. THE RULE: num_threads is an upper bound
  /// on EVERY parallel stage of a partitioner run — the batched
  /// speculative scoring team (eva_scorer.h) and make_edge_order's key
  /// fill and chunk-sort all fan out over exactly min(num_threads, work)
  /// ranks, never the whole shared pool. (The pool merely carries the
  /// ranks; its size does not govern the fan-out.) Results are
  /// bit-identical for every value — see eva_scorer.h.
  std::uint32_t num_threads = 1;

  /// Block size B for the batched speculative scoring protocol: with
  /// num_threads > 1 the team pre-scores B edges per barrier handshake
  /// against a frozen snapshot and rank 0 replays them sequentially
  /// (eva_scorer.h). Output is bit-identical for every value; B only
  /// trades barrier overhead against speculation misses. Ignored when
  /// num_threads <= 1.
  std::uint32_t batch_size = 256;
};

/// Result of a vertex-cut partitioning: part_of_edge[e] is the subgraph of
/// edge e. Invariant: every entry < num_parts.
struct EdgePartition {
  PartitionId num_parts = 0;
  std::vector<PartitionId> part_of_edge;
};

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Short identifier used in tables ("ebv", "ginger", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Partition `graph` into config.num_parts subgraphs.
  /// Throws std::invalid_argument for num_parts == 0 or > |E| scale issues.
  [[nodiscard]] virtual EdgePartition partition(
      const Graph& graph, const PartitionConfig& config) const = 0;

  /// Out-of-core entry point: partition a graph presented as a non-owning
  /// view — typically an mmap-backed EBVS snapshot (graph/mapped_graph.h).
  /// The streaming partitioners (EBV, streaming EBV, HDRF) override this
  /// to run directly over the view with O(|V|) resident state; the default
  /// materialises a resident Graph copy first, so every algorithm accepts
  /// a snapshot. Results are identical to partition() on a resident Graph
  /// holding the same edge sequence.
  [[nodiscard]] virtual EdgePartition partition_view(
      const GraphView& view, const PartitionConfig& config) const;
};

/// Materialise the edge-visit order requested by `order`. Sorting is stable
/// with (degree-sum, src, dst) tie-breaking so results are deterministic.
/// With num_threads > 1 the sort runs as chunk-sort + merge on the global
/// pool; the comparator is a strict total order, so the output is identical
/// to the sequential sort for every thread count.
std::vector<EdgeId> make_edge_order(const GraphView& graph, EdgeOrder order,
                                    std::uint64_t seed,
                                    std::uint32_t num_threads = 1);

/// Validate common preconditions shared by all partitioners.
void check_partition_config(const GraphView& graph,
                            const PartitionConfig& config);

}  // namespace ebv
