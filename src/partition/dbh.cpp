#include "partition/dbh.h"

#include "common/rng.h"

namespace ebv {

EdgePartition DbhPartitioner::partition(const Graph& graph,
                                        const PartitionConfig& config) const {
  check_partition_config(graph, config);
  const std::uint64_t salt = derive_seed(config.seed, 0xDB);

  EdgePartition result;
  result.num_parts = config.num_parts;
  result.part_of_edge.resize(graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const auto [u, v] = graph.edge(e);
    const std::uint32_t du = graph.degree(u);
    const std::uint32_t dv = graph.degree(v);
    // Hash the lower-degree endpoint; break degree ties toward the smaller
    // id so the choice is symmetric and deterministic.
    const VertexId pick =
        du < dv ? u : (dv < du ? v : (u < v ? u : v));
    result.part_of_edge[e] =
        static_cast<PartitionId>(mix64(pick ^ salt) % config.num_parts);
  }
  return result;
}

}  // namespace ebv
