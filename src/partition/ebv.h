// EBV — the paper's contribution (Algorithm 1).
//
// Edges are visited in the configured order (default: ascending by the sum
// of end-vertex degrees, §IV-C) and each edge (u,v) is assigned to the
// subgraph i minimising
//
//   Eva(u,v)(i) = I(u ∉ keep[i]) + I(v ∉ keep[i])
//               + α·ecount[i]/(|E|/p) + β·vcount[i]/(|V|/p)
//
// with lowest-index tie-breaking. The replication-factor growth trace
// (Figure 5) can be recorded with partition_traced().
#pragma once

#include "partition/partitioner.h"

namespace ebv {

/// One sample of the Figure-5 growth curve.
struct GrowthSample {
  EdgeId edges_processed = 0;
  double replication_factor = 0.0;  // Σ|Vi| / |V| over assigned-so-far
};

class EbvPartitioner final : public Partitioner {
 public:
  [[nodiscard]] std::string name() const override { return "ebv"; }

  [[nodiscard]] EdgePartition partition(
      const Graph& graph, const PartitionConfig& config) const override;

  /// Zero-copy out-of-core path: Algorithm 1 streams the view's edge
  /// section (possibly mmap-paged) with only the O(|V|) replica masks and
  /// the edge order resident. Bit-identical to partition().
  [[nodiscard]] EdgePartition partition_view(
      const GraphView& view, const PartitionConfig& config) const override;

  /// As partition(), but additionally records `num_samples` evenly spaced
  /// replication-factor samples into `trace` (cleared first).
  EdgePartition partition_traced(const GraphView& graph,
                                 const PartitionConfig& config,
                                 std::size_t num_samples,
                                 std::vector<GrowthSample>& trace) const;

  /// Theorem 1: worst-case upper bound of the edge imbalance factor.
  static double edge_imbalance_bound(const GraphView& graph,
                                     const PartitionConfig& config);

  /// Theorem 2: worst-case upper bound of the vertex imbalance factor.
  /// `sum_vi` is Σ|Vj| from the realised partition.
  static double vertex_imbalance_bound(const GraphView& graph,
                                       const PartitionConfig& config,
                                       std::uint64_t sum_vi);
};

}  // namespace ebv
