#include "partition/partitioner.h"

#include <algorithm>
#include <numeric>

#include "common/assert.h"
#include "common/parallel.h"
#include "common/rng.h"

namespace ebv {
namespace {

/// Sort `ids` under the strict total order `less`, either sequentially or
/// as a chunk-sort + pairwise-merge over the global pool. The comparator
/// admits exactly one sorted permutation, so every strategy produces the
/// same sequence.
template <typename Less>
void sort_ids(std::vector<EdgeId>& ids, std::uint32_t num_threads,
              const Less& less) {
  ThreadPool& pool = ThreadPool::global();
  const unsigned team = std::max<std::uint32_t>(num_threads, 1);
  if (team <= 1 || ids.size() < 1u << 14 || ThreadPool::inside_pool_body()) {
    std::sort(ids.begin(), ids.end(), less);
    return;
  }
  std::vector<std::size_t> bounds(team + 1);
  for (unsigned t = 0; t <= team; ++t) {
    bounds[t] = ids.size() * t / team;
  }
  pool.run_team(team, [&](unsigned rank, unsigned) {
    std::sort(ids.begin() + static_cast<std::ptrdiff_t>(bounds[rank]),
              ids.begin() + static_cast<std::ptrdiff_t>(bounds[rank + 1]),
              less);
  });
  for (unsigned width = 1; width < team; width *= 2) {
    for (unsigned t = 0; t + width < team; t += 2 * width) {
      const std::size_t lo = bounds[t];
      const std::size_t mid = bounds[t + width];
      const std::size_t hi = bounds[std::min(t + 2 * width, team)];
      std::inplace_merge(ids.begin() + static_cast<std::ptrdiff_t>(lo),
                         ids.begin() + static_cast<std::ptrdiff_t>(mid),
                         ids.begin() + static_cast<std::ptrdiff_t>(hi), less);
    }
  }
}

}  // namespace

EdgePartition Partitioner::partition_view(const GraphView& view,
                                          const PartitionConfig& config) const {
  // Fallback for algorithms that need random access to materialised
  // auxiliary structures (CSR, orderings over owned vectors): copy the
  // mapped sections into a resident Graph. Streaming partitioners override
  // this with a true zero-copy path.
  Graph resident(view.num_vertices(),
                 std::vector<Edge>(view.edges().begin(), view.edges().end()),
                 std::vector<float>(view.weights().begin(),
                                    view.weights().end()));
  resident.set_name(std::string(view.name()));
  return partition(resident, config);
}

std::vector<EdgeId> make_edge_order(const GraphView& graph, EdgeOrder order,
                                    std::uint64_t seed,
                                    std::uint32_t num_threads) {
  std::vector<EdgeId> ids(graph.num_edges());
  std::iota(ids.begin(), ids.end(), EdgeId{0});
  if (order == EdgeOrder::kNatural) return ids;
  if (order == EdgeOrder::kRandom) {
    Rng rng(derive_seed(seed, 0x0E));
    std::shuffle(ids.begin(), ids.end(), rng);
    return ids;
  }

  // Precompute the degree-sum keys once (the comparator used to recompute
  // two degrees per comparison); filled index-wise, so the parallel fill
  // is deterministic. num_threads bounds the fan-out exactly (the
  // PartitionConfig::num_threads rule: every parallel stage of a
  // partitioner run honours the knob, the pool only carries the ranks);
  // num_threads == 1 means fully sequential.
  std::vector<std::uint64_t> keys(graph.num_edges());
  const auto fill_keys = [&](std::size_t begin, std::size_t end) {
    for (std::size_t e = begin; e < end; ++e) {
      const Edge& edge = graph.edge(e);
      keys[e] = static_cast<std::uint64_t>(graph.degree(edge.src)) +
                graph.degree(edge.dst);
    }
  };
  if (num_threads > 1 && graph.num_edges() >= 1u << 14 &&
      !ThreadPool::inside_pool_body()) {
    const unsigned team = num_threads;
    ThreadPool::global().run_team(team, [&](unsigned rank, unsigned t) {
      fill_keys(graph.num_edges() * rank / t,
                graph.num_edges() * (rank + 1) / t);
    });
  } else {
    fill_keys(0, graph.num_edges());
  }

  auto key_less = [&](EdgeId a, EdgeId b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    const Edge& ea = graph.edge(a);
    const Edge& eb = graph.edge(b);
    if (ea.src != eb.src) return ea.src < eb.src;
    if (ea.dst != eb.dst) return ea.dst < eb.dst;
    return a < b;
  };

  if (order == EdgeOrder::kSortedAscending) {
    sort_ids(ids, num_threads, key_less);
  } else {
    sort_ids(ids, num_threads,
             [&](EdgeId a, EdgeId b) { return key_less(b, a); });
  }
  return ids;
}

void check_partition_config(const GraphView& graph,
                            const PartitionConfig& config) {
  EBV_REQUIRE(config.num_parts >= 1, "num_parts must be positive");
  EBV_REQUIRE(graph.num_vertices() > 0, "cannot partition an empty graph");
  EBV_REQUIRE(config.alpha >= 0.0 && config.beta >= 0.0,
              "alpha and beta must be non-negative");
}

}  // namespace ebv
