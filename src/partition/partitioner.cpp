#include "partition/partitioner.h"

#include <algorithm>
#include <numeric>

#include "common/assert.h"
#include "common/rng.h"

namespace ebv {

std::vector<EdgeId> make_edge_order(const Graph& graph, EdgeOrder order,
                                    std::uint64_t seed) {
  std::vector<EdgeId> ids(graph.num_edges());
  std::iota(ids.begin(), ids.end(), EdgeId{0});

  auto degree_sum = [&](EdgeId e) {
    const Edge& edge = graph.edge(e);
    return static_cast<std::uint64_t>(graph.degree(edge.src)) +
           graph.degree(edge.dst);
  };
  auto key_less = [&](EdgeId a, EdgeId b) {
    const auto da = degree_sum(a);
    const auto db = degree_sum(b);
    if (da != db) return da < db;
    const Edge& ea = graph.edge(a);
    const Edge& eb = graph.edge(b);
    if (ea.src != eb.src) return ea.src < eb.src;
    if (ea.dst != eb.dst) return ea.dst < eb.dst;
    return a < b;
  };

  switch (order) {
    case EdgeOrder::kNatural:
      break;
    case EdgeOrder::kSortedAscending:
      std::sort(ids.begin(), ids.end(), key_less);
      break;
    case EdgeOrder::kSortedDescending:
      std::sort(ids.begin(), ids.end(),
                [&](EdgeId a, EdgeId b) { return key_less(b, a); });
      break;
    case EdgeOrder::kRandom: {
      Rng rng(derive_seed(seed, 0x0E));
      std::shuffle(ids.begin(), ids.end(), rng);
      break;
    }
  }
  return ids;
}

void check_partition_config(const Graph& graph,
                            const PartitionConfig& config) {
  EBV_REQUIRE(config.num_parts >= 1, "num_parts must be positive");
  EBV_REQUIRE(graph.num_vertices() > 0, "cannot partition an empty graph");
  EBV_REQUIRE(config.alpha >= 0.0 && config.beta >= 0.0,
              "alpha and beta must be non-negative");
}

}  // namespace ebv
