// Streaming EBV — the paper's §VII future-work direction, implemented as
// an extension: a one-pass variant of Algorithm 1 that never materialises
// the whole edge list or a global sort.
//
// The offline EBV sorts all edges by deg(u)+deg(v) ascending before
// assignment. A streaming partitioner cannot sort globally, so this
// variant keeps a bounded buffer of `window` pending edges (the ADWISE
// idea) ordered by the *partial* degrees observed so far, and always
// assigns the buffered edge with the smallest partial degree sum using the
// same evaluation function as Algorithm 1. With window == 1 it degenerates
// to natural-order streaming EBV; with window == |E| and exact degrees it
// recovers the offline algorithm's ordering heuristic.
#pragma once

#include "partition/partitioner.h"

namespace ebv {

class StreamingEbvPartitioner final : public Partitioner {
 public:
  explicit StreamingEbvPartitioner(std::size_t window = 4096)
      : window_(window) {}

  [[nodiscard]] std::string name() const override { return "ebv-stream"; }
  [[nodiscard]] EdgePartition partition(
      const Graph& graph, const PartitionConfig& config) const override;

  /// Zero-copy out-of-core path: the lazy generator ingests the view's
  /// edge section in stream order (an mmap-backed section is paged in
  /// sequentially), keeping only the window heap, the partial degrees and
  /// the replica masks resident. Bit-identical to partition().
  [[nodiscard]] EdgePartition partition_view(
      const GraphView& view, const PartitionConfig& config) const override;

  [[nodiscard]] std::size_t window() const { return window_; }

 private:
  std::size_t window_;
};

}  // namespace ebv
