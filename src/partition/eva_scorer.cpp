// Batched speculative team scoring for the Eva core (see eva_scorer.h).
//
// Protocol per block (two barrier handshakes per block of ≤B edges,
// versus the seed's two handshakes per EDGE):
//
//   rank 0:  pull up to B edges from the source          (team waits at A)
//   A:       publish the block
//   all:     speculatively score a contiguous share of the block against
//            the frozen (masks, load) snapshot — full argmin over all p
//            parts per edge
//   B:       collect every speculative (part, eva)
//   rank 0:  replay the block sequentially, committing edge by edge
//
// Replay validation. Let D_j be the "dirty" parts — parts that received a
// commit for an earlier edge of this block. Commits only ever (a) grow a
// part's load terms and (b) set membership bits on the RECEIVING part, so
// for every part outside D_j the live Eva score equals its snapshot score.
// Three exact cases:
//   · D_j empty             → the speculative argmin IS the live argmin.
//   · winner ∉ D_j          → the winner is still the lowest-index argmin
//                             over the clean parts (it was the global
//                             snapshot argmin and clean scores did not
//                             move); folding in the ≤|block| dirty parts'
//                             live scores with lowest-index tie-breaking
//                             reconstructs the exact live argmin.
//   · winner ∈ D_j          → the clean-part minimum is unknown; rescore
//                             the edge in full against the live state.
// Every accepted value therefore equals what the sequential scan would
// have produced — bit-identical output for any (team, batch).
#include "partition/eva_scorer.h"

#include <algorithm>

namespace ebv::detail {

void run_eva_scoring_team(EvaState& state, unsigned team, std::uint32_t batch,
                          EdgeSource& source) {
  EBV_ASSERT(team >= 2);
  const std::uint32_t block = std::max<std::uint32_t>(batch, 1);

  // Shared block buffers: written by rank 0 before barrier A, read by the
  // team between A and B; speculative results written between A and B,
  // read by rank 0 after B. The barriers order every access.
  std::vector<VertexId> us(block);
  std::vector<VertexId> vs(block);
  std::vector<PartitionId> spec_part(block);
  std::vector<double> spec_eva(block);
  std::uint32_t count = 0;
  bool done = false;
  SpinBarrier barrier(team);

  // Dirty-part tracking for the replay: parts committed during the current
  // block, stamped so membership tests are O(1) and reset is O(1).
  std::vector<std::uint64_t> dirty_stamp(state.num_parts, 0);
  std::vector<PartitionId> dirty;
  dirty.reserve(block);
  std::uint64_t epoch = 0;

  auto score_share = [&](unsigned rank) {
    const std::uint32_t lo = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(count) * rank / team);
    const std::uint32_t hi = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(count) * (rank + 1) / team);
    for (std::uint32_t j = lo; j < hi; ++j) {
      spec_part[j] = state.best_part(us[j], vs[j], &spec_eva[j]);
    }
  };

  ThreadPool::global().run_team(team, [&](unsigned rank, unsigned actual) {
    EBV_ASSERT(actual == team);
    if (rank == 0) {
      // Release the team even when the driver throws (from next() or
      // on_commit()) — both run while ranks 1..team-1 wait at barrier A,
      // so one poisoned arrival unblocks everyone.
      try {
        for (;;) {
          count = 0;
          VertexId u = 0;
          VertexId v = 0;
          while (count < block && source.next(u, v)) {
            us[count] = u;
            vs[count] = v;
            ++count;
          }
          if (count == 0) break;
          barrier.arrive_and_wait();  // A: publish the block
          score_share(0);
          barrier.arrive_and_wait();  // B: collect speculative results
          ++epoch;
          dirty.clear();
          for (std::uint32_t j = 0; j < count; ++j) {
            PartitionId best;
            if (dirty.empty()) {
              best = spec_part[j];
            } else if (dirty_stamp[spec_part[j]] == epoch) {
              best = state.best_part(us[j], vs[j]);
            } else {
              best = spec_part[j];
              double best_eva = spec_eva[j];
              for (const PartitionId i : dirty) {
                const double e = state.eva(i, us[j], vs[j]);
                if (e < best_eva || (e == best_eva && i < best)) {
                  best_eva = e;
                  best = i;
                }
              }
            }
            const unsigned new_replicas = state.commit(best, us[j], vs[j]);
            if (dirty_stamp[best] != epoch) {
              dirty_stamp[best] = epoch;
              dirty.push_back(best);
            }
            source.on_commit(best, new_replicas);
          }
        }
      } catch (...) {
        done = true;
        barrier.arrive_and_wait();
        throw;  // rethrown to the caller by run_team
      }
      done = true;
      barrier.arrive_and_wait();  // release the team
    } else {
      for (;;) {
        barrier.arrive_and_wait();  // A
        if (done) break;
        score_share(rank);
        barrier.arrive_and_wait();  // B
      }
    }
  });
}

}  // namespace ebv::detail
