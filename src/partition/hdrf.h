// HDRF — High-Degree (are) Replicated First (Petroni et al., CIKM 2015).
// A streaming vertex-cut from the paper's related work (§VI), included as
// an extension baseline: per edge, pick the partition maximising
//   C_rep(u,v,i) + λ · C_bal(i)
// where C_rep rewards partitions already holding an endpoint, weighted so
// that the *lower*-degree endpoint counts more (hubs get replicated), and
// C_bal = (maxsize − ecount[i]) / (ε + maxsize − minsize).
#pragma once

#include "partition/partitioner.h"

namespace ebv {

class HdrfPartitioner final : public Partitioner {
 public:
  explicit HdrfPartitioner(double lambda = 1.0) : lambda_(lambda) {}

  [[nodiscard]] std::string name() const override { return "hdrf"; }
  [[nodiscard]] EdgePartition partition(
      const Graph& graph, const PartitionConfig& config) const override;

  /// Zero-copy out-of-core path: one pass over the view's edge section
  /// with only the partial degrees, the replica masks and the part sizes
  /// resident. Bit-identical to partition().
  [[nodiscard]] EdgePartition partition_view(
      const GraphView& view, const PartitionConfig& config) const override;

 private:
  double lambda_;
};

}  // namespace ebv
