#include "partition/fennel.h"

#include <cmath>
#include <limits>
#include <vector>

#include "graph/csr.h"

namespace ebv {

std::vector<PartitionId> FennelPartitioner::partition_vertices(
    const Graph& graph, const PartitionConfig& config) const {
  check_partition_config(graph, config);
  const PartitionId p = config.num_parts;
  const VertexId n = graph.num_vertices();
  const CsrGraph adj = CsrGraph::build(graph, CsrGraph::Direction::kBoth);

  const double alpha =
      static_cast<double>(graph.num_edges()) *
      std::pow(static_cast<double>(p), gamma_ - 1.0) /
      std::pow(static_cast<double>(std::max<VertexId>(n, 1)), gamma_);

  std::vector<PartitionId> placed(n, kInvalidPartition);
  std::vector<std::uint64_t> load(p, 0);
  // Hard balance ceiling (Fennel's ν = 1.1 load cap).
  const std::uint64_t cap = static_cast<std::uint64_t>(
      1.1 * static_cast<double>(n) / p + 1.0);

  std::vector<std::uint32_t> neighbor_hits(p, 0);
  for (VertexId v = 0; v < n; ++v) {
    std::fill(neighbor_hits.begin(), neighbor_hits.end(), 0);
    for (const VertexId u : adj.neighbors(v)) {
      if (placed[u] != kInvalidPartition) ++neighbor_hits[placed[u]];
    }
    PartitionId best = 0;
    double best_score = -std::numeric_limits<double>::infinity();
    for (PartitionId i = 0; i < p; ++i) {
      if (load[i] >= cap) continue;
      const double score =
          static_cast<double>(neighbor_hits[i]) -
          alpha * gamma_ *
              std::pow(static_cast<double>(load[i]), gamma_ - 1.0);
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    placed[v] = best;
    ++load[best];
  }
  return placed;
}

EdgePartition FennelPartitioner::partition(const Graph& graph,
                                           const PartitionConfig& config) const {
  const std::vector<PartitionId> placed = partition_vertices(graph, config);
  EdgePartition result;
  result.num_parts = config.num_parts;
  result.part_of_edge.resize(graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    result.part_of_edge[e] = placed[graph.edge(e).src];
  }
  return result;
}

}  // namespace ebv
