// Trivial baselines: uniform random edge assignment and 1-D edge hashing.
// Not in the paper's comparison tables, but indispensable as sanity floors
// for tests and ablations.
#pragma once

#include "partition/partitioner.h"

namespace ebv {

/// Assigns each edge uniformly at random (seeded).
class RandomPartitioner final : public Partitioner {
 public:
  [[nodiscard]] std::string name() const override { return "random"; }
  [[nodiscard]] EdgePartition partition(
      const Graph& graph, const PartitionConfig& config) const override;
};

/// Hashes the (src, dst) pair — deterministic placement independent of
/// degree information.
class EdgeHashPartitioner final : public Partitioner {
 public:
  [[nodiscard]] std::string name() const override { return "hash"; }
  [[nodiscard]] EdgePartition partition(
      const Graph& graph, const PartitionConfig& config) const override;
};

}  // namespace ebv
