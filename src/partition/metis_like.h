// METIS-like multilevel *edge-cut* (vertex partitioning) baseline.
//
// Three classic phases (Karypis & Kumar):
//   1. coarsening by heavy-edge matching (HEM) with vertex/edge weights,
//   2. initial partitioning by greedy graph growing over the coarsest graph,
//   3. uncoarsening with boundary Fiduccia–Mattheyses (FM) refinement.
//
// The result is a vertex assignment balanced by *vertex weight* — exactly
// the property the paper attributes to METIS: vertex imbalance ≈ 1 while
// the edge imbalance blows up on skewed graphs (hubs concentrate edges).
// For use in the vertex-cut pipeline, the vertex partition is projected to
// an edge partition by assigning each edge to its source's part.
#pragma once

#include "partition/partitioner.h"

namespace ebv {

class MetisLikePartitioner final : public Partitioner {
 public:
  struct Parameters {
    /// Stop coarsening once the graph has at most max(coarsen_to·p, 64)
    /// vertices or matching stops shrinking the graph.
    VertexId coarsen_to = 30;
    /// Allowed vertex-weight imbalance during refinement (1.03 = 3%).
    double balance_tolerance = 1.03;
    /// FM passes per uncoarsening level.
    int refinement_passes = 4;
  };

  MetisLikePartitioner() : MetisLikePartitioner(Parameters()) {}
  explicit MetisLikePartitioner(Parameters params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "metis"; }
  [[nodiscard]] EdgePartition partition(
      const Graph& graph, const PartitionConfig& config) const override;

  /// The underlying vertex partition (edge-cut view), exposed for tests
  /// and for the edge-cut replication-factor metric (paper §III-C).
  [[nodiscard]] std::vector<PartitionId> partition_vertices(
      const Graph& graph, const PartitionConfig& config) const;

 private:
  Parameters params_;
};

}  // namespace ebv
