#include "partition/hdrf.h"

#include <algorithm>
#include <limits>

#include "partition/replica_masks.h"

namespace ebv {

EdgePartition HdrfPartitioner::partition(const Graph& graph,
                                         const PartitionConfig& config) const {
  return partition_view(GraphView(graph), config);
}

EdgePartition HdrfPartitioner::partition_view(
    const GraphView& graph, const PartitionConfig& config) const {
  check_partition_config(graph, config);
  const PartitionId p = config.num_parts;
  constexpr double kEpsilon = 1.0;

  // Partial degrees, counted as edges stream in (the canonical HDRF setup:
  // the true degrees are unknown to a one-pass streaming algorithm).
  std::vector<std::uint32_t> partial_degree(graph.num_vertices(), 0);
  // Replica membership shares the Eva core's vertex-major bitmasks
  // (|V|·⌈p/64⌉ words) instead of the former p separate |V|-byte vectors,
  // so the per-edge scan reads two contiguous mask rows.
  ReplicaMasks replicas(graph.num_vertices(), p);
  std::vector<std::uint64_t> ecount(p, 0);

  EdgePartition result;
  result.num_parts = p;
  result.part_of_edge.assign(graph.num_edges(), kInvalidPartition);

  const std::vector<EdgeId> order =
      make_edge_order(graph, config.edge_order, config.seed);

  for (const EdgeId e : order) {
    const auto [u, v] = graph.edge(e);
    ++partial_degree[u];
    ++partial_degree[v];
    const double du = partial_degree[u];
    const double dv = partial_degree[v];
    const double theta_u = du / (du + dv);
    const double theta_v = 1.0 - theta_u;

    const std::uint64_t max_size =
        *std::max_element(ecount.begin(), ecount.end());
    const std::uint64_t min_size =
        *std::min_element(ecount.begin(), ecount.end());

    PartitionId best = 0;
    double best_score = -std::numeric_limits<double>::infinity();
    for (PartitionId i = 0; i < p; ++i) {
      double c_rep = 0.0;
      if (replicas.test(u, i) != 0) c_rep += 1.0 + (1.0 - theta_u);
      if (replicas.test(v, i) != 0) c_rep += 1.0 + (1.0 - theta_v);
      const double c_bal =
          static_cast<double>(max_size - ecount[i]) /
          (kEpsilon + static_cast<double>(max_size - min_size));
      const double score = c_rep + lambda_ * c_bal;
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    result.part_of_edge[e] = best;
    ++ecount[best];
    replicas.set(u, best);
    replicas.set(v, best);
  }
  return result;
}

}  // namespace ebv
