// The paper's three partition-quality metrics (§III-C):
//   edge imbalance factor    max_i |Ei| / (|E|/p)
//   vertex imbalance factor  max_i |Vi| / (Σ|Vi|/p)
//   replication factor       Σ|Vi| / |V|
// with V_i = vertices covered by E_i (vertex-cut semantics).
#pragma once

#include <vector>

#include "partition/partitioner.h"

namespace ebv {

struct PartitionMetrics {
  std::vector<std::uint64_t> edges_per_part;     // |Ei|
  std::vector<std::uint64_t> vertices_per_part;  // |Vi|
  std::uint64_t total_replicas = 0;              // Σ|Vi|
  double edge_imbalance = 0.0;
  double vertex_imbalance = 0.0;
  double replication_factor = 0.0;
};

/// Computes all metrics in one pass over the edge list. Accepts any
/// GraphView (a resident Graph converts implicitly; an mmap-backed
/// snapshot view streams its edge section).
/// Throws std::invalid_argument if the partition does not match the graph
/// (size mismatch or out-of-range part id).
PartitionMetrics compute_metrics(const GraphView& graph,
                                 const EdgePartition& partition);

/// Per-part vertex membership bitmaps (part-major, |V| bytes per part) —
/// shared by metrics and distributed-graph construction.
std::vector<std::vector<std::uint8_t>> vertex_membership(
    const GraphView& graph, const EdgePartition& partition);

/// Edge-cut (vertex partitioning) metrics — the paper's §III-C variant for
/// METIS-style partitioners: V_i are the *disjoint* owned vertex sets,
/// E_i = {(u,v) : u ∈ V_i ∨ v ∈ V_i} (cross edges replicated into both
/// parts), and the replication factor is Σ|Ei| / |E|.
PartitionMetrics compute_edge_cut_metrics(
    const GraphView& graph, const std::vector<PartitionId>& vertex_part,
    PartitionId num_parts);

}  // namespace ebv
