// Fennel (Tsourakakis et al., WSDM 2014) — the streaming *edge-cut*
// framework the paper's related work builds on (Ginger is "Fennel-style").
// Included as an extension baseline.
//
// Vertices stream in natural order; each vertex v is placed on the part
// maximising  |N(v) ∩ V_i| − α·γ·|V_i|^(γ−1)  with the canonical
// parameters γ = 1.5, α = |E|·p^(γ−1)/|V|^γ. The vertex partition is
// projected to an edge partition by the source vertex (the same
// projection used for the METIS-like baseline).
#pragma once

#include "partition/partitioner.h"

namespace ebv {

class FennelPartitioner final : public Partitioner {
 public:
  explicit FennelPartitioner(double gamma = 1.5) : gamma_(gamma) {}

  [[nodiscard]] std::string name() const override { return "fennel"; }
  [[nodiscard]] EdgePartition partition(
      const Graph& graph, const PartitionConfig& config) const override;

  /// Underlying streaming vertex placement (exposed for tests and for
  /// edge-cut metrics).
  [[nodiscard]] std::vector<PartitionId> partition_vertices(
      const Graph& graph, const PartitionConfig& config) const;

 private:
  double gamma_;
};

}  // namespace ebv
