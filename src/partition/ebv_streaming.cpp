#include "partition/ebv_streaming.h"

#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "partition/eva_scorer.h"

namespace ebv {

EdgePartition StreamingEbvPartitioner::partition(
    const Graph& graph, const PartitionConfig& config) const {
  check_partition_config(graph, config);
  EBV_REQUIRE(window_ >= 1, "window must be at least 1");

  detail::EvaState state(graph, config);

  // Partial degrees: a streaming algorithm only knows what it has seen.
  std::vector<std::uint32_t> partial_degree(graph.num_vertices(), 0);

  EdgePartition result;
  result.num_parts = config.num_parts;
  result.part_of_edge.assign(graph.num_edges(), kInvalidPartition);

  // The bounded buffer is a lazy min-heap keyed by the partial-degree sum
  // at insertion time. Partial degrees only grow, so a popped entry whose
  // recomputed key exceeds the next heap key is simply re-pushed — each
  // flush is O(log W) amortised.
  using BufferEntry = std::pair<std::uint64_t, EdgeId>;  // (key, edge)
  std::priority_queue<BufferEntry, std::vector<BufferEntry>, std::greater<>>
      buffer;

  auto current_key = [&](EdgeId e) {
    const auto [u, v] = graph.edge(e);
    return static_cast<std::uint64_t>(partial_degree[u]) + partial_degree[v];
  };

  // The buffer management stays sequential; the per-edge Eva argmin inside
  // assign() is the piece that fans out over config.num_threads ranks
  // (bit-identical to the sequential scan — see eva_scorer.h).
  detail::with_eva_scorer(state, config.num_threads, [&](auto&& score) {
    auto assign = [&](EdgeId e) {
      const auto [u, v] = graph.edge(e);
      const PartitionId best = score(u, v);
      result.part_of_edge[e] = best;
      state.commit(best, u, v);
    };

    auto flush_smallest = [&] {
      for (;;) {
        const auto [key, e] = buffer.top();
        buffer.pop();
        const std::uint64_t now = current_key(e);
        // Stale key that is no longer the minimum: re-queue and retry.
        if (now > key && !buffer.empty() && now > buffer.top().first) {
          buffer.push({now, e});
          continue;
        }
        assign(e);
        return;
      }
    };

    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      const auto [u, v] = graph.edge(e);
      ++partial_degree[u];
      ++partial_degree[v];
      buffer.push({current_key(e), e});
      if (buffer.size() >= window_) flush_smallest();
    }
    while (!buffer.empty()) flush_smallest();
  });
  return result;
}

}  // namespace ebv
