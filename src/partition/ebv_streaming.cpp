#include "partition/ebv_streaming.h"

#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "partition/eva_scorer.h"

namespace ebv {

EdgePartition StreamingEbvPartitioner::partition(
    const Graph& graph, const PartitionConfig& config) const {
  return partition_view(GraphView(graph), config);
}

EdgePartition StreamingEbvPartitioner::partition_view(
    const GraphView& graph, const PartitionConfig& config) const {
  check_partition_config(graph, config);
  EBV_REQUIRE(window_ >= 1, "window must be at least 1");

  detail::EvaState state(graph, config);

  // Partial degrees: a streaming algorithm only knows what it has seen.
  std::vector<std::uint32_t> partial_degree(graph.num_vertices(), 0);

  EdgePartition result;
  result.num_parts = config.num_parts;
  result.part_of_edge.assign(graph.num_edges(), kInvalidPartition);

  // The bounded buffer is a lazy min-heap keyed by the partial-degree sum
  // at insertion time. Partial degrees only grow, so a popped entry whose
  // recomputed key exceeds the next heap key is simply re-pushed — each
  // flush is O(log W) amortised.
  using BufferEntry = std::pair<std::uint64_t, EdgeId>;  // (key, edge)
  std::priority_queue<BufferEntry, std::vector<BufferEntry>, std::greater<>>
      buffer;

  auto current_key = [&](EdgeId e) {
    const auto [u, v] = graph.edge(e);
    return static_cast<std::uint64_t>(partial_degree[u]) + partial_degree[v];
  };

  // Pop the buffered edge with the smallest (ingestion-time) partial-degree
  // sum. Keys depend only on how far the stream has been ingested, never on
  // assignment results, so the pop sequence is a pure function of the
  // ingestion sequence — the property that lets the scoring core pull
  // edges ahead of their commits for batched speculative scoring.
  auto pop_smallest = [&] {
    for (;;) {
      const auto [key, e] = buffer.top();
      buffer.pop();
      const std::uint64_t now = current_key(e);
      // Stale key that is no longer the minimum: re-queue and retry.
      if (now > key && !buffer.empty() && now > buffer.top().first) {
        buffer.push({now, e});
        continue;
      }
      return e;
    }
  };

  // The source is a generator reproducing the seed's exact interleaving
  // (ingest one edge; flush one when the buffer reaches the window; drain
  // at end-of-stream), produced lazily one assignment at a time. Edges are
  // committed in production order, so the sink matches results to edge ids
  // through the `pending` FIFO.
  EdgeId stream_pos = 0;
  std::queue<EdgeId> pending;
  detail::run_eva_scoring(
      state, config.num_threads, config.batch_size,
      [&](VertexId& u, VertexId& v) {
        while (stream_pos < graph.num_edges() && buffer.size() < window_) {
          const EdgeId e = stream_pos++;
          const auto [s, d] = graph.edge(e);
          ++partial_degree[s];
          ++partial_degree[d];
          buffer.push({current_key(e), e});
        }
        if (buffer.empty()) return false;
        const EdgeId e = pop_smallest();
        pending.push(e);
        const auto [s, d] = graph.edge(e);
        u = s;
        v = d;
        return true;
      },
      [&](PartitionId best, unsigned) {
        result.part_of_edge[pending.front()] = best;
        pending.pop();
      });
  return result;
}

}  // namespace ebv
