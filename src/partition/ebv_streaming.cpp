#include "partition/ebv_streaming.h"

#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "common/assert.h"

namespace ebv {

EdgePartition StreamingEbvPartitioner::partition(
    const Graph& graph, const PartitionConfig& config) const {
  check_partition_config(graph, config);
  EBV_REQUIRE(window_ >= 1, "window must be at least 1");

  const PartitionId p = config.num_parts;
  const double edges_per_part =
      static_cast<double>(std::max<EdgeId>(graph.num_edges(), 1)) / p;
  const double vertices_per_part =
      static_cast<double>(graph.num_vertices()) / p;

  // keep[] bitmaps as in the offline algorithm.
  std::vector<std::uint8_t> keep(
      static_cast<std::size_t>(p) * graph.num_vertices(), 0);
  auto kept = [&](PartitionId i, VertexId v) -> std::uint8_t& {
    return keep[static_cast<std::size_t>(i) * graph.num_vertices() + v];
  };
  std::vector<std::uint64_t> ecount(p, 0);
  std::vector<std::uint64_t> vcount(p, 0);

  // Partial degrees: a streaming algorithm only knows what it has seen.
  std::vector<std::uint32_t> partial_degree(graph.num_vertices(), 0);

  EdgePartition result;
  result.num_parts = p;
  result.part_of_edge.assign(graph.num_edges(), kInvalidPartition);

  // The bounded buffer is a lazy min-heap keyed by the partial-degree sum
  // at insertion time. Partial degrees only grow, so a popped entry whose
  // recomputed key exceeds the next heap key is simply re-pushed — each
  // flush is O(log W) amortised.
  using BufferEntry = std::pair<std::uint64_t, EdgeId>;  // (key, edge)
  std::priority_queue<BufferEntry, std::vector<BufferEntry>, std::greater<>>
      buffer;

  auto assign = [&](EdgeId e) {
    const auto [u, v] = graph.edge(e);
    PartitionId best = 0;
    double best_eva = std::numeric_limits<double>::infinity();
    for (PartitionId i = 0; i < p; ++i) {
      double eva = 0.0;
      if (kept(i, u) == 0) eva += 1.0;
      if (kept(i, v) == 0) eva += 1.0;
      eva += config.alpha * static_cast<double>(ecount[i]) / edges_per_part;
      eva += config.beta * static_cast<double>(vcount[i]) / vertices_per_part;
      if (eva < best_eva) {
        best_eva = eva;
        best = i;
      }
    }
    result.part_of_edge[e] = best;
    ++ecount[best];
    if (kept(best, u) == 0) {
      kept(best, u) = 1;
      ++vcount[best];
    }
    if (kept(best, v) == 0) {
      kept(best, v) = 1;
      ++vcount[best];
    }
  };

  auto current_key = [&](EdgeId e) {
    const auto [u, v] = graph.edge(e);
    return static_cast<std::uint64_t>(partial_degree[u]) + partial_degree[v];
  };
  auto flush_smallest = [&] {
    for (;;) {
      const auto [key, e] = buffer.top();
      buffer.pop();
      const std::uint64_t now = current_key(e);
      // Stale key that is no longer the minimum: re-queue and retry.
      if (now > key && !buffer.empty() && now > buffer.top().first) {
        buffer.push({now, e});
        continue;
      }
      assign(e);
      return;
    }
  };

  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const auto [u, v] = graph.edge(e);
    ++partial_degree[u];
    ++partial_degree[v];
    buffer.push({current_key(e), e});
    if (buffer.size() >= window_) flush_smallest();
  }
  while (!buffer.empty()) flush_smallest();
  return result;
}

}  // namespace ebv
