#include "partition/ne.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "graph/csr.h"

namespace ebv {
namespace {

/// Min-heap entry: (external unallocated neighbour estimate, vertex).
/// Stale priorities are tolerated (lazy re-check on pop).
using HeapEntry = std::pair<std::uint32_t, VertexId>;

}  // namespace

// Faithful NE (Zhang et al., KDD'17) structure: each partition grows a
// boundary set S around a core set C. Moving x from S into C inserts all
// of x's neighbours into S; whenever a vertex y enters S, every
// unallocated edge between y and the current S is allocated to this
// partition. The partition's edges are therefore exactly the edges
// induced by S — locality is preserved and only the S-frontier vertices
// end up replicated.
EdgePartition NePartitioner::partition(const Graph& graph,
                                       const PartitionConfig& config) const {
  check_partition_config(graph, config);
  const PartitionId p = config.num_parts;
  const CsrGraph adj = CsrGraph::build(graph, CsrGraph::Direction::kBoth);
  const VertexId n = graph.num_vertices();

  EdgePartition result;
  result.num_parts = p;
  result.part_of_edge.assign(graph.num_edges(), kInvalidPartition);
  if (graph.num_edges() == 0) return result;

  // Epoch-stamped membership: value == part+1 means "in this part's set".
  std::vector<PartitionId> in_s(n, 0);
  std::vector<PartitionId> in_c(n, 0);
  std::vector<std::uint32_t> unallocated_degree(n, 0);
  for (VertexId v = 0; v < n; ++v) unallocated_degree[v] = adj.degree(v);

  EdgeId remaining = graph.num_edges();
  VertexId seed_cursor = 0;

  for (PartitionId part = 0; part < p; ++part) {
    const PartitionId stamp = part + 1;
    const EdgeId target = part + 1 == p
                              ? remaining
                              : std::min<EdgeId>(
                                    remaining,
                                    (graph.num_edges() + p - 1) / p);
    EdgeId allocated = 0;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
        candidates;  // S \ C, keyed by unallocated external degree

    // Allocate every unallocated edge between y and the current S,
    // stopping at the part's edge budget (keeps edge balance ≈ 1 even
    // when a hub's neighbourhood arrives in one batch).
    auto absorb = [&](VertexId y) {
      const auto neighbors = adj.neighbors(y);
      const auto ids = adj.edge_ids(y);
      for (std::size_t k = 0; k < neighbors.size(); ++k) {
        if (allocated >= target) return;
        const EdgeId e = ids[k];
        if (result.part_of_edge[e] != kInvalidPartition) continue;
        if (in_s[neighbors[k]] != stamp && neighbors[k] != y) continue;
        result.part_of_edge[e] = part;
        ++allocated;
        --remaining;
        const auto [a, b] = graph.edge(e);
        if (unallocated_degree[a] > 0) --unallocated_degree[a];
        if (unallocated_degree[b] > 0) --unallocated_degree[b];
      }
    };
    auto enter_s = [&](VertexId y) {
      if (in_s[y] == stamp) return;
      in_s[y] = stamp;
      absorb(y);
      if (unallocated_degree[y] > 0) {
        candidates.push({unallocated_degree[y], y});
      }
    };

    while (allocated < target && remaining > 0) {
      VertexId x = kInvalidVertex;
      while (!candidates.empty()) {
        const auto [key, v] = candidates.top();
        candidates.pop();
        if (in_c[v] == stamp) continue;          // already in the core
        if (unallocated_degree[v] == 0) continue;  // nothing left to gain
        if (key != unallocated_degree[v]) {        // stale priority
          candidates.push({unallocated_degree[v], v});
          continue;
        }
        x = v;
        break;
      }
      if (x == kInvalidVertex) {
        // Fresh seed: next vertex with any unallocated edge.
        while (seed_cursor < n && unallocated_degree[seed_cursor] == 0) {
          ++seed_cursor;
        }
        if (seed_cursor >= n) break;
        x = seed_cursor;
        enter_s(x);
      }
      // Move x into the core: all of x's neighbours join S (allocating
      // their edges into S as they arrive), up to the edge budget.
      in_c[x] = stamp;
      for (const VertexId y : adj.neighbors(x)) {
        if (allocated >= target) break;
        enter_s(y);
      }
    }
  }

  // Safety net for edges the expansion never reached (isolated remnants):
  // least-loaded placement keeps the edge balance intact.
  std::vector<std::uint64_t> ecount(p, 0);
  for (const PartitionId part : result.part_of_edge) {
    if (part != kInvalidPartition) ++ecount[part];
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (result.part_of_edge[e] == kInvalidPartition) {
      const auto it = std::min_element(ecount.begin(), ecount.end());
      const PartitionId part = static_cast<PartitionId>(it - ecount.begin());
      result.part_of_edge[e] = part;
      ++ecount[part];
    }
  }
  return result;
}

}  // namespace ebv
