#include "partition/ebv_distributed.h"

#include <limits>
#include <unordered_set>
#include <vector>

#include "common/assert.h"

namespace ebv {
namespace {

/// (part, vertex) key for the shard-local keep deltas.
std::uint64_t keep_key(PartitionId part, VertexId v) {
  return (static_cast<std::uint64_t>(part) << 32) | v;
}

}  // namespace

EdgePartition DistributedEbvPartitioner::partition(
    const Graph& graph, const PartitionConfig& config) const {
  check_partition_config(graph, config);
  EBV_REQUIRE(num_shards_ >= 1, "need at least one shard");
  EBV_REQUIRE(sync_interval_ >= 1, "sync interval must be positive");

  const PartitionId p = config.num_parts;
  const double edges_per_part =
      static_cast<double>(std::max<EdgeId>(graph.num_edges(), 1)) / p;
  const double vertices_per_part =
      static_cast<double>(graph.num_vertices()) / p;

  // Committed (snapshot) state, shared by all shards between syncs.
  std::vector<std::uint8_t> keep(
      static_cast<std::size_t>(p) * graph.num_vertices(), 0);
  auto committed = [&](PartitionId i, VertexId v) -> std::uint8_t& {
    return keep[static_cast<std::size_t>(i) * graph.num_vertices() + v];
  };
  std::vector<std::uint64_t> ecount(p, 0);
  std::vector<std::uint64_t> vcount(p, 0);

  // Shard-local uncommitted deltas.
  struct Shard {
    std::vector<EdgeId> stream;       // edges assigned to this worker
    std::size_t cursor = 0;
    std::unordered_set<std::uint64_t> local_keep;
    std::vector<std::uint64_t> local_ecount;
    std::vector<std::uint64_t> local_vcount;
  };
  std::vector<Shard> shards(num_shards_);
  for (Shard& s : shards) {
    s.local_ecount.assign(p, 0);
    s.local_vcount.assign(p, 0);
  }

  // Deal the sorted sequence round-robin (each worker keeps the global
  // low-degree-first property within its own stream).
  const std::vector<EdgeId> order =
      make_edge_order(graph, config.edge_order, config.seed);
  for (std::size_t k = 0; k < order.size(); ++k) {
    shards[k % num_shards_].stream.push_back(order[k]);
  }

  EdgePartition result;
  result.num_parts = p;
  result.part_of_edge.assign(graph.num_edges(), kInvalidPartition);

  auto assign_on_shard = [&](Shard& s, std::uint32_t shard_id, EdgeId e) {
    const auto [u, v] = graph.edge(e);
    auto holds = [&](PartitionId i, VertexId w) {
      return committed(i, w) != 0 || s.local_keep.count(keep_key(i, w)) != 0;
    };
    // Rotate the evaluation order per shard: identical scores (frequent
    // when counters are stale) then break toward different parts on
    // different workers, instead of every shard dog-piling part 0.
    const PartitionId rotation =
        static_cast<PartitionId>((static_cast<std::uint64_t>(shard_id) * p) /
                                 num_shards_);
    PartitionId best = rotation % p;
    double best_eva = std::numeric_limits<double>::infinity();
    for (PartitionId k = 0; k < p; ++k) {
      const PartitionId i = (k + rotation) % p;
      double eva = 0.0;
      if (!holds(i, u)) eva += 1.0;
      if (!holds(i, v)) eva += 1.0;
      eva += config.alpha *
             static_cast<double>(ecount[i] + s.local_ecount[i]) /
             edges_per_part;
      eva += config.beta *
             static_cast<double>(vcount[i] + s.local_vcount[i]) /
             vertices_per_part;
      if (eva < best_eva) {
        best_eva = eva;
        best = i;
      }
    }
    result.part_of_edge[e] = best;
    ++s.local_ecount[best];
    for (const VertexId w : {u, v}) {
      if (!holds(best, w)) {
        s.local_keep.insert(keep_key(best, w));
        ++s.local_vcount[best];
      }
    }
  };

  // Partitioning supersteps: every shard advances `sync_interval` edges
  // against the shared snapshot, then all deltas merge (in shard order,
  // deterministically). Merging may discover that two shards added the
  // same (part, vertex) pair — the duplicate vcount is corrected.
  bool work_left = true;
  while (work_left) {
    work_left = false;
    for (std::uint32_t shard_id = 0; shard_id < num_shards_; ++shard_id) {
      Shard& s = shards[shard_id];
      const std::size_t stop = std::min(
          s.stream.size(), s.cursor + static_cast<std::size_t>(sync_interval_));
      for (; s.cursor < stop; ++s.cursor) {
        assign_on_shard(s, shard_id, s.stream[s.cursor]);
      }
      if (s.cursor < s.stream.size()) work_left = true;
    }
    // Synchronisation: commit all deltas.
    for (Shard& s : shards) {
      for (PartitionId i = 0; i < p; ++i) {
        ecount[i] += s.local_ecount[i];
        s.local_ecount[i] = 0;
      }
      for (const std::uint64_t key : s.local_keep) {
        const PartitionId i = static_cast<PartitionId>(key >> 32);
        const VertexId w = static_cast<VertexId>(key & 0xffffffffULL);
        if (committed(i, w) == 0) {
          committed(i, w) = 1;
          ++vcount[i];
        }
        // Duplicates across shards collapse here (no double count).
      }
      s.local_keep.clear();
      std::fill(s.local_vcount.begin(), s.local_vcount.end(), 0);
    }
  }
  return result;
}

}  // namespace ebv
