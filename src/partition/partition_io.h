// Serialisation of partition results, so expensive offline partitions
// (METIS-like, NE) can be computed once and reused across experiments.
#pragma once

#include <iosfwd>
#include <string>

#include "partition/partitioner.h"

namespace ebv::io {

/// Text format: header line "# ebv partition p=<parts> edges=<count>",
/// then one part id per line in edge order.
void write_partition(std::ostream& out, const EdgePartition& partition);
void write_partition_file(const std::string& path,
                          const EdgePartition& partition);
EdgePartition read_partition(std::istream& in);
EdgePartition read_partition_file(const std::string& path);

/// Binary format: "EBVP" magic, u32 version, u32 parts, u64 edges, raw
/// part-id array. Throws std::runtime_error on malformed input.
void write_partition_binary(std::ostream& out, const EdgePartition& partition);
void write_partition_binary_file(const std::string& path,
                                 const EdgePartition& partition);
EdgePartition read_partition_binary(std::istream& in);
EdgePartition read_partition_binary_file(const std::string& path);

}  // namespace ebv::io
