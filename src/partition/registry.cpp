#include "partition/registry.h"

#include <stdexcept>

#include "partition/cvc.h"
#include "partition/dbh.h"
#include "partition/ebv.h"
#include "partition/ebv_distributed.h"
#include "partition/ebv_streaming.h"
#include "partition/fennel.h"
#include "partition/ginger.h"
#include "partition/hash.h"
#include "partition/hdrf.h"
#include "partition/metis_like.h"
#include "partition/ne.h"

namespace ebv {

std::unique_ptr<Partitioner> make_partitioner(const std::string& name) {
  if (name == "ebv") return std::make_unique<EbvPartitioner>();
  if (name == "ebv-stream") return std::make_unique<StreamingEbvPartitioner>();
  if (name == "ebv-dist") return std::make_unique<DistributedEbvPartitioner>();
  if (name == "fennel") return std::make_unique<FennelPartitioner>();
  if (name == "ginger") return std::make_unique<GingerPartitioner>();
  if (name == "dbh") return std::make_unique<DbhPartitioner>();
  if (name == "cvc") return std::make_unique<CvcPartitioner>();
  if (name == "ne") return std::make_unique<NePartitioner>();
  if (name == "metis") return std::make_unique<MetisLikePartitioner>();
  if (name == "hdrf") return std::make_unique<HdrfPartitioner>();
  if (name == "random") return std::make_unique<RandomPartitioner>();
  if (name == "hash") return std::make_unique<EdgeHashPartitioner>();
  throw std::invalid_argument("unknown partitioner: " + name);
}

const std::vector<std::string>& paper_partitioners() {
  static const std::vector<std::string> names = {"ebv", "ginger", "dbh",
                                                 "cvc", "ne", "metis"};
  return names;
}

const std::vector<std::string>& all_partitioners() {
  static const std::vector<std::string> names = {
      "ebv",  "ebv-stream", "ebv-dist", "ginger", "dbh",    "cvc",
      "ne",   "metis",      "hdrf",     "fennel", "random", "hash"};
  return names;
}

}  // namespace ebv
