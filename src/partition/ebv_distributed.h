// Distributed EBV — the paper's §VII future-work direction ("extend it to
// the distributed environment to handle larger graphs"), simulated inside
// one process.
//
// The sorted edge sequence is dealt round-robin to `num_shards`
// partitioning workers. Every worker runs Algorithm 1 against a shared
// *snapshot* of the global state (keep sets and counters) plus its own
// uncommitted local additions; after every `sync_interval` assignments
// per worker, all deltas are merged into the snapshot (one "partitioning
// superstep"). With num_shards == 1 the algorithm is exactly offline EBV;
// larger shard counts trade partition quality for p-way partitioning
// parallelism, and the staleness is bounded by the sync interval.
#pragma once

#include "partition/partitioner.h"

namespace ebv {

class DistributedEbvPartitioner final : public Partitioner {
 public:
  explicit DistributedEbvPartitioner(std::uint32_t num_shards = 8,
                                     std::uint64_t sync_interval = 1024)
      : num_shards_(num_shards), sync_interval_(sync_interval) {}

  [[nodiscard]] std::string name() const override { return "ebv-dist"; }
  [[nodiscard]] EdgePartition partition(
      const Graph& graph, const PartitionConfig& config) const override;

  [[nodiscard]] std::uint32_t num_shards() const { return num_shards_; }
  [[nodiscard]] std::uint64_t sync_interval() const { return sync_interval_; }

 private:
  std::uint32_t num_shards_;
  std::uint64_t sync_interval_;
};

}  // namespace ebv
