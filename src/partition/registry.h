// Name → partitioner factory. Benches, examples and tests iterate the
// paper's six algorithms through this registry.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "partition/partitioner.h"

namespace ebv {

/// Create a partitioner by name. Known names: "ebv", "ebv-stream",
/// "ginger", "dbh", "cvc", "ne", "metis", "hdrf", "random", "hash".
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<Partitioner> make_partitioner(const std::string& name);

/// The six algorithms of the paper's comparison tables, in table order.
const std::vector<std::string>& paper_partitioners();

/// Every registered name (paper six + extensions).
const std::vector<std::string>& all_partitioners();

}  // namespace ebv
