#include "partition/cvc.h"

#include <cmath>

#include "common/rng.h"

namespace ebv {

std::pair<PartitionId, PartitionId> CvcPartitioner::grid_shape(PartitionId p) {
  PartitionId r = static_cast<PartitionId>(std::sqrt(static_cast<double>(p)));
  while (r > 1 && p % r != 0) --r;
  return {r, p / r};
}

EdgePartition CvcPartitioner::partition(const Graph& graph,
                                        const PartitionConfig& config) const {
  check_partition_config(graph, config);
  const auto [rows, cols] = grid_shape(config.num_parts);
  const std::uint64_t row_salt = derive_seed(config.seed, 0xC0);
  const std::uint64_t col_salt = derive_seed(config.seed, 0xC1);

  EdgePartition result;
  result.num_parts = config.num_parts;
  result.part_of_edge.resize(graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const auto [u, v] = graph.edge(e);
    const PartitionId row =
        static_cast<PartitionId>(mix64(u ^ row_salt) % rows);
    const PartitionId col =
        static_cast<PartitionId>(mix64(v ^ col_salt) % cols);
    result.part_of_edge[e] = row * cols + col;
  }
  return result;
}

}  // namespace ebv
