// NE — Neighbor Expansion (Zhang et al., KDD 2017). A local-based edge
// partitioner: partitions are grown one at a time by expanding a core set
// from a boundary, allocating all unallocated edges incident to the chosen
// vertex, until the partition reaches its edge budget |E|/p.
//
// NE keeps local structure (low replication factor, edge-balanced) but, on
// power-law graphs, the partition that swallows a hub also swallows its
// neighbourhood — producing the vertex imbalance the paper reports in
// Table III.
#pragma once

#include "partition/partitioner.h"

namespace ebv {

class NePartitioner final : public Partitioner {
 public:
  [[nodiscard]] std::string name() const override { return "ne"; }
  [[nodiscard]] EdgePartition partition(
      const Graph& graph, const PartitionConfig& config) const override;
};

}  // namespace ebv
