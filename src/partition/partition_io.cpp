#include "partition/partition_io.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/assert.h"
#include "common/binary_io.h"
#include "common/cli_args.h"

namespace ebv::io {
namespace {

using detail::write_pod;

constexpr char kMagic[4] = {'E', 'B', 'V', 'P'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
T read_pod(std::istream& in) {
  return detail::read_pod<T>(in, "EBVP");
}

void validate(const EdgePartition& partition) {
  for (const PartitionId i : partition.part_of_edge) {
    if (i >= partition.num_parts) {
      throw std::runtime_error("EBVP: part id out of range");
    }
  }
}

}  // namespace

void write_partition(std::ostream& out, const EdgePartition& partition) {
  out << "# ebv partition p=" << partition.num_parts
      << " edges=" << partition.part_of_edge.size() << '\n';
  for (const PartitionId i : partition.part_of_edge) out << i << '\n';
}

EdgePartition read_partition(std::istream& in) {
  std::string header;
  if (!std::getline(in, header) || header.rfind("# ebv partition", 0) != 0) {
    throw std::runtime_error("EBVP text: missing header");
  }
  EdgePartition partition;
  std::uint64_t edges = 0;
  std::istringstream fields(header.substr(header.find("p=")));
  char skip = 0;
  std::string token;
  // Parse "p=<num> edges=<num>".
  fields.ignore(2);
  if (!(fields >> partition.num_parts)) {
    throw std::runtime_error("EBVP text: bad part count");
  }
  fields >> token;  // "edges=<num>"
  if (token.rfind("edges=", 0) != 0) {
    throw std::runtime_error("EBVP text: bad edge count");
  }
  // Full-string parse: std::stoull here accepted trailing junk
  // ("edges=12x" parsed as 12) and leaked a bare std::invalid_argument
  // on garbage instead of this reader's runtime_error contract.
  try {
    edges = cli::parse_uint("edges", token.substr(6));
  } catch (const std::invalid_argument&) {
    throw std::runtime_error("EBVP text: bad edge count");
  }
  (void)skip;

  // Reserve is only a hint — cap it so a hostile header count cannot OOM.
  partition.part_of_edge.reserve(
      std::min<std::uint64_t>(edges, std::uint64_t{1} << 20));
  PartitionId value = 0;
  while (in >> value) partition.part_of_edge.push_back(value);
  if (partition.part_of_edge.size() != edges) {
    throw std::runtime_error("EBVP text: edge count mismatch");
  }
  validate(partition);
  return partition;
}

void write_partition_file(const std::string& path,
                          const EdgePartition& partition) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_partition(out, partition);
}

EdgePartition read_partition_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_partition(in);
}

void write_partition_binary(std::ostream& out,
                            const EdgePartition& partition) {
  out.write(kMagic, sizeof kMagic);
  write_pod(out, kVersion);
  write_pod(out, partition.num_parts);
  write_pod(out, static_cast<std::uint64_t>(partition.part_of_edge.size()));
  out.write(reinterpret_cast<const char*>(partition.part_of_edge.data()),
            static_cast<std::streamsize>(partition.part_of_edge.size() *
                                         sizeof(PartitionId)));
  if (!out) throw std::runtime_error("EBVP: write failed");
}

EdgePartition read_partition_binary(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::string_view(magic, 4) != std::string_view(kMagic, 4)) {
    throw std::runtime_error("EBVP: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("EBVP: unsupported version " +
                             std::to_string(version));
  }
  EdgePartition partition;
  partition.num_parts = read_pod<PartitionId>(in);
  const auto edges = read_pod<std::uint64_t>(in);
  partition.part_of_edge =
      detail::read_array<PartitionId>(in, edges, "EBVP", "part array");
  validate(partition);
  return partition;
}

void write_partition_binary_file(const std::string& path,
                                 const EdgePartition& partition) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_partition_binary(out, partition);
}

EdgePartition read_partition_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_partition_binary(in);
}

}  // namespace ebv::io
