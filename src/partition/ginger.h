// Ginger (Chen et al., PowerLyra, TOPC 2019): hybrid-cut improved with a
// Fennel-style greedy placement.
//
// Vertices are split by in-degree against a threshold θ (average in-degree
// by default, as in PowerLyra):
//  - low-degree vertex v: v is *placed* on the worker maximising the
//    Fennel-like score  |N_in(v) ∩ placed(i)| − γ·(vcount[i]/(|V|/p)
//    + ecount[i]/(|E|/p))/2, and ALL of v's in-edges follow it;
//  - high-degree vertex v: each in-edge (u,v) is assigned by hashing the
//    source u (high-degree vertices are cut, like DBH).
#pragma once

#include "partition/partitioner.h"

namespace ebv {

class GingerPartitioner final : public Partitioner {
 public:
  /// `degree_threshold_factor` scales the average in-degree to form θ;
  /// `gamma` weighs the balance penalty in the greedy score.
  explicit GingerPartitioner(double degree_threshold_factor = 2.0,
                             double gamma = 1.5)
      : threshold_factor_(degree_threshold_factor), gamma_(gamma) {}

  [[nodiscard]] std::string name() const override { return "ginger"; }
  [[nodiscard]] EdgePartition partition(
      const Graph& graph, const PartitionConfig& config) const override;

 private:
  double threshold_factor_;
  double gamma_;
};

}  // namespace ebv
