// Shared evaluation-function machinery for the EBV family (Algorithm 1).
//
// EvaState owns the bookkeeping both the offline and the streaming variant
// mutate while assigning edges: the per-part keep[] membership bitmaps and
// the |Ei| / |Vi| counters behind the balance terms of
//
//   Eva(u,v)(i) = I(u ∉ keep[i]) + I(v ∉ keep[i])
//               + α·ecount[i]/(|E|/p) + β·vcount[i]/(|V|/p).
//
// with_eva_scorer() runs a caller-supplied sequential driver and hands it
// a score(u, v) -> PartitionId callback computing the argmin with
// lowest-index tie-breaking. With num_threads > 1 the candidate scan is
// chunked over a resident thread team (two spin-barrier handshakes per
// scored edge); each rank scans its chunk in ascending part order with a
// strict '<' and the rank-0 reduction prefers the lowest-index chunk, so
// the result is bit-identical to the sequential scan for every team size —
// the property the parallel-determinism tests pin down.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/parallel.h"
#include "partition/partitioner.h"

namespace ebv::detail {

struct EvaState {
  PartitionId num_parts = 0;
  VertexId num_vertices = 0;
  double alpha = 1.0;
  double beta = 1.0;
  double edges_per_part = 1.0;
  double vertices_per_part = 1.0;

  std::vector<std::uint8_t> keep;  // part-major, num_parts × num_vertices
  std::vector<std::uint64_t> ecount;
  std::vector<std::uint64_t> vcount;

  EvaState(const Graph& graph, const PartitionConfig& config)
      : num_parts(config.num_parts),
        num_vertices(graph.num_vertices()),
        alpha(config.alpha),
        beta(config.beta),
        edges_per_part(
            static_cast<double>(std::max<EdgeId>(graph.num_edges(), 1)) /
            config.num_parts),
        vertices_per_part(static_cast<double>(graph.num_vertices()) /
                          config.num_parts),
        keep(static_cast<std::size_t>(config.num_parts) *
                 graph.num_vertices(),
             0),
        ecount(config.num_parts, 0),
        vcount(config.num_parts, 0) {}

  [[nodiscard]] bool kept(PartitionId i, VertexId v) const {
    return keep[static_cast<std::size_t>(i) * num_vertices + v] != 0;
  }

  [[nodiscard]] double eva(PartitionId i, VertexId u, VertexId v) const {
    double e = 0.0;
    if (!kept(i, u)) e += 1.0;
    if (!kept(i, v)) e += 1.0;
    e += alpha * static_cast<double>(ecount[i]) / edges_per_part;
    e += beta * static_cast<double>(vcount[i]) / vertices_per_part;
    return e;
  }

  /// Argmin over parts [lo, hi) with lowest-index tie-breaking;
  /// eva_out = +inf when the range is empty.
  [[nodiscard]] PartitionId best_in_range(VertexId u, VertexId v,
                                          PartitionId lo, PartitionId hi,
                                          double& eva_out) const {
    PartitionId best = lo;
    double best_eva = std::numeric_limits<double>::infinity();
    for (PartitionId i = lo; i < hi; ++i) {
      const double e = eva(i, u, v);
      if (e < best_eva) {
        best_eva = e;
        best = i;
      }
    }
    eva_out = best_eva;
    return best;
  }

  [[nodiscard]] PartitionId best_sequential(VertexId u, VertexId v) const {
    double unused = 0.0;
    return best_in_range(u, v, 0, num_parts, unused);
  }

  /// Commit edge (u, v) to part `best`; returns how many of its endpoints
  /// became new replicas (0, 1 or 2).
  unsigned commit(PartitionId best, VertexId u, VertexId v) {
    ++ecount[best];
    unsigned new_replicas = 0;
    auto cover = [&](VertexId w) {
      std::uint8_t& bit =
          keep[static_cast<std::size_t>(best) * num_vertices + w];
      if (bit == 0) {
        bit = 1;
        ++vcount[best];
        ++new_replicas;
      }
    };
    cover(u);
    if (v != u) cover(v);
    return new_replicas;
  }
};

/// Run driver(score) where score(u, v) is the deterministic Eva argmin.
/// The driver itself stays sequential (edge t+1 depends on the commit of
/// edge t); only the per-edge candidate scan is spread over `num_threads`
/// ranks (oversubscription beyond the pool is carried by run_team).
template <typename Driver>
void with_eva_scorer(EvaState& state, std::uint32_t num_threads,
                     Driver&& driver) {
  ThreadPool& pool = ThreadPool::global();
  const unsigned team = std::max<std::uint32_t>(num_threads, 1);
  if (team <= 1 || state.num_parts < 2 || ThreadPool::inside_pool_body()) {
    driver([&state](VertexId u, VertexId v) {
      return state.best_sequential(u, v);
    });
    return;
  }

  struct alignas(64) Slot {
    double eva = 0.0;
    PartitionId part = 0;
  };
  std::vector<Slot> slots(team);
  SpinBarrier barrier(team);
  VertexId shared_u = 0;
  VertexId shared_v = 0;
  bool done = false;

  auto chunk_lo = [&](unsigned rank) {
    return static_cast<PartitionId>(
        static_cast<std::uint64_t>(state.num_parts) * rank / team);
  };

  pool.run_team(team, [&](unsigned rank, unsigned actual_team) {
    EBV_ASSERT(actual_team == team);
    auto score_chunk = [&](unsigned r) {
      slots[r].part = state.best_in_range(shared_u, shared_v, chunk_lo(r),
                                          chunk_lo(r + 1), slots[r].eva);
    };
    if (rank == 0) {
      auto score = [&](VertexId u, VertexId v) {
        shared_u = u;
        shared_v = v;
        barrier.arrive_and_wait();  // publish the edge to the team
        score_chunk(0);
        barrier.arrive_and_wait();  // collect every chunk's candidate
        double best_eva = std::numeric_limits<double>::infinity();
        PartitionId best = 0;
        for (unsigned r = 0; r < team; ++r) {
          if (slots[r].eva < best_eva) {
            best_eva = slots[r].eva;
            best = slots[r].part;
          }
        }
        return best;
      };
      // Release the team even when the driver throws between score()
      // calls (score() itself does not throw) — otherwise ranks 1..team-1
      // would spin at the top-of-loop barrier forever.
      try {
        driver(score);
      } catch (...) {
        done = true;
        barrier.arrive_and_wait();
        throw;  // rethrown to the caller by run_team
      }
      done = true;
      barrier.arrive_and_wait();  // release the team
    } else {
      for (;;) {
        barrier.arrive_and_wait();
        if (done) break;
        score_chunk(rank);
        barrier.arrive_and_wait();
      }
    }
  });
}

}  // namespace ebv::detail
