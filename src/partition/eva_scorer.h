// Shared evaluation-function core for the EBV family (Algorithm 1) and
// the other replica-tracking streaming partitioners (HDRF).
//
// Replica membership is stored VERTEX-MAJOR as bitmasks: every vertex owns
// ceil(p/64) contiguous uint64 words whose bit i says "v is replicated on
// part i". Compared with the seed's part-major p × |V| byte matrix this is
// an 8× memory reduction (|V|·⌈p/64⌉·8 bytes instead of p·|V|), and — the
// actual point — scoring an edge (u, v) against all p parts touches just
// the two vertices' mask rows (2·⌈p/64⌉ contiguous words) instead of 2p
// scattered byte loads across p different |V|-sized arrays.
//
// EvaState additionally keeps the balance terms of
//
//   Eva(u,v)(i) = I(u ∉ keep[i]) + I(v ∉ keep[i])
//               + α·ecount[i]/(|E|/p) + β·vcount[i]/(|V|/p)
//
// INCREMENTALLY: load_e[i] = α·ecount[i]/(|E|/p) and
// load_v[i] = β·vcount[i]/(|V|/p) are dense per-part arrays refreshed only
// when a commit changes part i, so the per-edge argmin is a branch-light
// sweep of (miss + load_e[i]) + load_v[i] driven by countr_zero iteration
// over the membership classes (both endpoints present / exactly one /
// neither) — no division and no membership branch in the hot loop. The two
// load terms stay SEPARATE and every eva is evaluated as
// ((miss + load_e) + load_v) with load_x recomputed from the integer
// counters, because that reproduces the seed scorer's floating-point
// rounding exactly: double addition is not associative, and the golden
// tests pin the seed's lowest-index tie-break down to the last ulp.
//
// run_eva_scoring() owns the assignment loop. The driver supplies the edge
// stream through next(u, v) (which must not depend on earlier assignment
// results — both EBV drivers satisfy this: the offline order is fixed up
// front and the streaming buffer is keyed by ingestion-time partial
// degrees only) and observes results through on_commit(best,
// new_replicas), called once per produced edge, in production order. With
// num_threads > 1 the scan runs as BATCHED SPECULATIVE scoring: the team
// pre-scores a block of up to `batch` edges against a frozen (masks, load)
// snapshot in one barrier handshake, then rank 0 replays the block
// sequentially, accepting a speculative argmin whenever the commits made
// since the snapshot provably could not change it and rescoring the ≤batch
// touched ("dirty") parts — or, when the speculative winner itself is
// dirty, the whole part range — otherwise. The replay reconstruction is
// exact, not heuristic, so part_of_edge is bit-identical to the
// sequential scan for every (num_threads, batch) pair — the property the
// parallel-determinism tests pin down.
#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/parallel.h"
#include "partition/partitioner.h"
#include "partition/replica_masks.h"

namespace ebv::detail {

struct EvaState {
  PartitionId num_parts = 0;
  VertexId num_vertices = 0;
  double alpha = 1.0;
  double beta = 1.0;
  double edges_per_part = 1.0;
  double vertices_per_part = 1.0;

  ReplicaMasks masks;
  std::vector<std::uint64_t> ecount;
  std::vector<std::uint64_t> vcount;
  /// Incrementally maintained balance terms, refreshed on commit():
  /// load_e[i] = α·ecount[i]/(|E|/p), load_v[i] = β·vcount[i]/(|V|/p).
  /// Always recomputed from the counters (never accumulated), so each
  /// entry is the exact double the seed scorer computed per edge.
  std::vector<double> load_e;
  std::vector<double> load_v;

  EvaState(const GraphView& graph, const PartitionConfig& config)
      : num_parts(config.num_parts),
        num_vertices(graph.num_vertices()),
        alpha(config.alpha),
        beta(config.beta),
        edges_per_part(
            static_cast<double>(std::max<EdgeId>(graph.num_edges(), 1)) /
            config.num_parts),
        vertices_per_part(static_cast<double>(graph.num_vertices()) /
                          config.num_parts),
        masks(graph.num_vertices(), config.num_parts),
        ecount(config.num_parts, 0),
        vcount(config.num_parts, 0),
        load_e(config.num_parts, 0.0),
        load_v(config.num_parts, 0.0) {}

  [[nodiscard]] bool kept(PartitionId i, VertexId v) const {
    return masks.test(v, i) != 0;
  }

  /// Eva score of part i against the LIVE state (used by the replay
  /// validation for dirty parts); same association order as best_part().
  [[nodiscard]] double eva(PartitionId i, VertexId u, VertexId v) const {
    const double miss =
        static_cast<double>(2 - masks.test(u, i) - masks.test(v, i));
    return (miss + load_e[i]) + load_v[i];
  }

  /// Argmin of Eva(u,v)(·) over all parts with lowest-index tie-breaking.
  /// One pass over the two vertices' mask rows: per 64-part word the parts
  /// split into membership classes with constant replication miss (both
  /// bits set → 0, exactly one → 1, neither → 2), each walked with
  /// countr_zero so the loop body is miss + two array reads + one compare.
  [[nodiscard]] PartitionId best_part(VertexId u, VertexId v,
                                      double* eva_out = nullptr) const {
    const std::uint64_t* mu = masks.row(u);
    const std::uint64_t* mv = masks.row(v);
    PartitionId best = 0;
    double best_eva = std::numeric_limits<double>::infinity();
    const std::uint32_t words = masks.words_per_vertex();
    for (std::uint32_t w = 0; w < words; ++w) {
      const PartitionId base = static_cast<PartitionId>(w) * 64;
      const std::uint64_t a = mu[w];
      const std::uint64_t b = mv[w];
      // The classes are walked out of ascending-part order, so ties are
      // broken by an explicit index compare — equivalent to the seed's
      // ascending strict-< scan.
      auto scan = [&](std::uint64_t bits, double miss) {
        while (bits != 0) {
          const PartitionId i =
              base + static_cast<PartitionId>(std::countr_zero(bits));
          bits &= bits - 1;
          const double e = (miss + load_e[i]) + load_v[i];
          if (e < best_eva || (e == best_eva && i < best)) {
            best_eva = e;
            best = i;
          }
        }
      };
      scan(a & b, 0.0);
      scan(a ^ b, 1.0);
      scan(~(a | b) & masks.word_mask(w), 2.0);
    }
    if (eva_out != nullptr) *eva_out = best_eva;
    return best;
  }

  /// Commit edge (u, v) to part `best`: bump the counters, refresh the
  /// part's load terms, and return how many endpoints became new replicas
  /// (0, 1 or 2).
  unsigned commit(PartitionId best, VertexId u, VertexId v) {
    ++ecount[best];
    unsigned new_replicas = 0;
    if (masks.set(u, best)) ++new_replicas;
    if (v != u && masks.set(v, best)) ++new_replicas;
    vcount[best] += new_replicas;
    load_e[best] =
        alpha * static_cast<double>(ecount[best]) / edges_per_part;
    load_v[best] =
        beta * static_cast<double>(vcount[best]) / vertices_per_part;
    return new_replicas;
  }
};

/// Type-erased driver interface for the team engine in eva_scorer.cpp
/// (the serial fast path in run_eva_scoring stays fully inlined).
class EdgeSource {
 public:
  /// Produce the next edge to assign; false when the stream is exhausted.
  /// Must not depend on the results of earlier assignments (the team
  /// engine pulls up to `batch` edges ahead of their commits).
  virtual bool next(VertexId& u, VertexId& v) = 0;
  /// Observe the assignment of a produced edge. Called exactly once per
  /// produced edge, in production order; EvaState::commit has already
  /// been applied.
  virtual void on_commit(PartitionId best, unsigned new_replicas) = 0;

 protected:
  ~EdgeSource() = default;
};

/// Batched speculative team scoring over `team` ranks (eva_scorer.cpp).
void run_eva_scoring_team(EvaState& state, unsigned team, std::uint32_t batch,
                          EdgeSource& source);

/// Assign every edge produced by next(u, v) to its deterministic Eva
/// argmin, reporting each result through on_commit(best, new_replicas).
/// num_threads ≤ 1 (or a degenerate part count, or a caller already inside
/// a pool body) runs the inlined sequential loop; otherwise the batched
/// speculative team protocol executes with block size `batch`. Output is
/// bit-identical across every (num_threads, batch) combination.
template <typename Next, typename OnCommit>
void run_eva_scoring(EvaState& state, std::uint32_t num_threads,
                     std::uint32_t batch, Next&& next, OnCommit&& on_commit) {
  const unsigned team = std::max<std::uint32_t>(num_threads, 1);
  if (team <= 1 || state.num_parts < 2 || ThreadPool::inside_pool_body()) {
    VertexId u = 0;
    VertexId v = 0;
    while (next(u, v)) {
      const PartitionId best = state.best_part(u, v);
      on_commit(best, state.commit(best, u, v));
    }
    return;
  }

  struct Source final : EdgeSource {
    Next& next_fn;
    OnCommit& commit_fn;
    Source(Next& n, OnCommit& c) : next_fn(n), commit_fn(c) {}
    bool next(VertexId& u, VertexId& v) override { return next_fn(u, v); }
    void on_commit(PartitionId best, unsigned new_replicas) override {
      commit_fn(best, new_replicas);
    }
  } source(next, on_commit);
  run_eva_scoring_team(state, team, batch, source);
}

}  // namespace ebv::detail
