#include "partition/hash.h"

#include "common/rng.h"

namespace ebv {

EdgePartition RandomPartitioner::partition(
    const Graph& graph, const PartitionConfig& config) const {
  check_partition_config(graph, config);
  Rng rng(derive_seed(config.seed, 0x7A));
  EdgePartition result;
  result.num_parts = config.num_parts;
  result.part_of_edge.resize(graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    result.part_of_edge[e] =
        static_cast<PartitionId>(bounded(rng, config.num_parts));
  }
  return result;
}

EdgePartition EdgeHashPartitioner::partition(
    const Graph& graph, const PartitionConfig& config) const {
  check_partition_config(graph, config);
  const std::uint64_t salt = derive_seed(config.seed, 0x1D);
  EdgePartition result;
  result.num_parts = config.num_parts;
  result.part_of_edge.resize(graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const auto [u, v] = graph.edge(e);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint64_t>(v);
    result.part_of_edge[e] =
        static_cast<PartitionId>(mix64(key ^ salt) % config.num_parts);
  }
  return result;
}

}  // namespace ebv
