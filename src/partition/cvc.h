// Cartesian (2-D) Vertex-Cut (Boman et al., SC'13): workers form an r×c
// grid with r·c = p; edge (u,v) goes to the worker at (row(u), col(v)).
// Every vertex is then replicated across at most r + c - 1 workers.
#pragma once

#include <utility>

#include "partition/partitioner.h"

namespace ebv {

class CvcPartitioner final : public Partitioner {
 public:
  [[nodiscard]] std::string name() const override { return "cvc"; }
  [[nodiscard]] EdgePartition partition(
      const Graph& graph, const PartitionConfig& config) const override;

  /// Most-square factorisation r×c = p with r ≤ c (exposed for tests).
  static std::pair<PartitionId, PartitionId> grid_shape(PartitionId p);
};

}  // namespace ebv
