// Degree-Based Hashing (Xie et al., NeurIPS 2014): each edge is assigned by
// hashing the id of its lower-degree endpoint, so high-degree (hub)
// vertices are the ones that get cut — effective on power-law graphs.
#pragma once

#include "partition/partitioner.h"

namespace ebv {

class DbhPartitioner final : public Partitioner {
 public:
  [[nodiscard]] std::string name() const override { return "dbh"; }
  [[nodiscard]] EdgePartition partition(
      const Graph& graph, const PartitionConfig& config) const override;
};

}  // namespace ebv
