#include "partition/ginger.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/rng.h"
#include "graph/csr.h"

namespace ebv {

EdgePartition GingerPartitioner::partition(const Graph& graph,
                                           const PartitionConfig& config) const {
  check_partition_config(graph, config);
  const PartitionId p = config.num_parts;
  const double edges_per_part =
      static_cast<double>(std::max<EdgeId>(graph.num_edges(), 1)) / p;
  const double vertices_per_part =
      static_cast<double>(graph.num_vertices()) / p;
  const std::uint64_t salt = derive_seed(config.seed, 0x61);

  const double avg_in_degree =
      static_cast<double>(graph.num_edges()) /
      std::max<VertexId>(graph.num_vertices(), 1);
  const double theta = threshold_factor_ * avg_in_degree;

  // In-adjacency: for each target vertex, its in-edges (source + edge id).
  const CsrGraph in_csr = CsrGraph::build(graph, CsrGraph::Direction::kIn);

  EdgePartition result;
  result.num_parts = p;
  result.part_of_edge.assign(graph.num_edges(), kInvalidPartition);

  std::vector<PartitionId> placed(graph.num_vertices(), kInvalidPartition);
  std::vector<std::uint64_t> ecount(p, 0);
  std::vector<std::uint64_t> vcount(p, 0);
  std::vector<std::uint32_t> neighbor_hits(p, 0);

  // Pass 1: place low-degree vertices greedily, visiting them in ascending
  // in-degree order (cheap analogue of Ginger's streaming re-order).
  std::vector<VertexId> by_in_degree(graph.num_vertices());
  std::iota(by_in_degree.begin(), by_in_degree.end(), VertexId{0});
  std::stable_sort(by_in_degree.begin(), by_in_degree.end(),
                   [&](VertexId a, VertexId b) {
                     return graph.in_degree(a) < graph.in_degree(b);
                   });

  for (const VertexId v : by_in_degree) {
    if (graph.in_degree(v) == 0 ||
        static_cast<double>(graph.in_degree(v)) > theta) {
      continue;  // isolated targets and high-degree vertices handled later
    }
    std::fill(neighbor_hits.begin(), neighbor_hits.end(), 0);
    for (const VertexId u : in_csr.neighbors(v)) {
      if (placed[u] != kInvalidPartition) ++neighbor_hits[placed[u]];
    }
    PartitionId best = 0;
    double best_score = -std::numeric_limits<double>::infinity();
    for (PartitionId i = 0; i < p; ++i) {
      const double balance =
          (static_cast<double>(vcount[i]) / vertices_per_part +
           static_cast<double>(ecount[i]) / edges_per_part) /
          2.0;
      const double score =
          static_cast<double>(neighbor_hits[i]) - gamma_ * balance;
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    placed[v] = best;
    ++vcount[best];
    // All in-edges of a low-degree vertex follow its placement.
    for (const EdgeId e : in_csr.edge_ids(v)) {
      result.part_of_edge[e] = best;
      ++ecount[best];
    }
  }

  // Pass 2: in-edges of high-degree vertices are assigned by hashing the
  // source vertex (the hub itself is cut across workers).
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (result.part_of_edge[e] != kInvalidPartition) continue;
    const VertexId u = graph.edge(e).src;
    const PartitionId target =
        placed[u] != kInvalidPartition
            ? placed[u]
            : static_cast<PartitionId>(mix64(u ^ salt) % p);
    result.part_of_edge[e] = target;
    ++ecount[target];
  }
  return result;
}

}  // namespace ebv
