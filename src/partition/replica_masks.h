// Vertex-major replica-membership bitmasks, shared by the Eva scoring
// core (eva_scorer.h), HDRF and the partition metrics: every vertex owns
// ceil(num_parts/64) contiguous uint64 words whose bit i says "v is
// replicated on part i". Compared with a part-major p × |V| byte matrix
// this is an 8× memory reduction (|V|·⌈p/64⌉·8 bytes instead of p·|V|),
// and testing a vertex against all p parts reads one contiguous row.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace ebv {

class ReplicaMasks {
 public:
  ReplicaMasks(VertexId num_vertices, PartitionId num_parts)
      : words_(std::max<PartitionId>(1, (num_parts + 63) / 64)),
        last_word_mask_(num_parts % 64 == 0
                            ? ~std::uint64_t{0}
                            : (std::uint64_t{1} << (num_parts % 64)) - 1),
        bits_(static_cast<std::size_t>(num_vertices) * words_, 0) {}

  /// Mask words per vertex (⌈p/64⌉).
  [[nodiscard]] std::uint32_t words_per_vertex() const { return words_; }

  /// Valid-part mask for word w: all-ones except the (possibly partial)
  /// last word.
  [[nodiscard]] std::uint64_t word_mask(std::uint32_t w) const {
    return w + 1 == words_ ? last_word_mask_ : ~std::uint64_t{0};
  }

  /// The vertex's contiguous row of words_per_vertex() mask words.
  [[nodiscard]] const std::uint64_t* row(VertexId v) const {
    return bits_.data() + static_cast<std::size_t>(v) * words_;
  }

  /// 1 when v is replicated on part i, else 0 (int so callers can do
  /// exact small-integer arithmetic before converting to double).
  [[nodiscard]] int test(VertexId v, PartitionId i) const {
    return static_cast<int>(row(v)[i >> 6] >> (i & 63)) & 1;
  }

  /// Set (v, i); returns true when the bit was newly set.
  bool set(VertexId v, PartitionId i) {
    std::uint64_t& word =
        bits_[static_cast<std::size_t>(v) * words_ + (i >> 6)];
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    if ((word & bit) != 0) return false;
    word |= bit;
    return true;
  }

 private:
  std::uint32_t words_;
  std::uint64_t last_word_mask_;
  std::vector<std::uint64_t> bits_;
};

}  // namespace ebv
