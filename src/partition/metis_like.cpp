#include "partition/metis_like.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "common/assert.h"
#include "common/rng.h"

namespace ebv {
namespace {

/// Weighted undirected working graph used across multilevel phases.
/// Adjacency is CSR-like with merged parallel edges.
struct WorkGraph {
  std::vector<std::uint64_t> offsets;     // size n+1
  std::vector<VertexId> neighbors;
  std::vector<std::uint64_t> edge_weights;  // parallel to neighbors
  std::vector<std::uint64_t> vertex_weights;  // size n

  [[nodiscard]] VertexId size() const {
    return static_cast<VertexId>(vertex_weights.size());
  }
  [[nodiscard]] std::span<const VertexId> adj(VertexId v) const {
    return {neighbors.data() + offsets[v], neighbors.data() + offsets[v + 1]};
  }
  [[nodiscard]] std::span<const std::uint64_t> weights(VertexId v) const {
    return {edge_weights.data() + offsets[v],
            edge_weights.data() + offsets[v + 1]};
  }
};

/// Build the symmetrised, deduplicated weighted graph from the edge list.
WorkGraph build_work_graph(const Graph& graph) {
  // Count symmetric adjacency (each directed edge contributes both ways).
  const VertexId n = graph.num_vertices();
  std::vector<std::uint64_t> degree(n, 0);
  for (const Edge& e : graph.edges()) {
    ++degree[e.src];
    ++degree[e.dst];
  }
  std::vector<std::uint64_t> offsets(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + degree[v];
  std::vector<VertexId> raw(offsets.back());
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : graph.edges()) {
    raw[cursor[e.src]++] = e.dst;
    raw[cursor[e.dst]++] = e.src;
  }

  // Deduplicate each adjacency list, merging parallel edges into weights.
  WorkGraph wg;
  wg.vertex_weights.assign(n, 1);
  wg.offsets.assign(n + 1, 0);
  std::vector<VertexId> merged_neighbors;
  merged_neighbors.reserve(raw.size());
  std::vector<std::uint64_t> merged_weights;
  merged_weights.reserve(raw.size());
  std::vector<VertexId> scratch;
  for (VertexId v = 0; v < n; ++v) {
    scratch.assign(raw.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
                   raw.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
    std::sort(scratch.begin(), scratch.end());
    for (std::size_t i = 0; i < scratch.size();) {
      const VertexId u = scratch[i];
      std::size_t j = i;
      while (j < scratch.size() && scratch[j] == u) ++j;
      if (u != v) {  // drop self-loops
        merged_neighbors.push_back(u);
        merged_weights.push_back(j - i);
      }
      i = j;
    }
    wg.offsets[v + 1] = merged_neighbors.size();
  }
  wg.neighbors = std::move(merged_neighbors);
  wg.edge_weights = std::move(merged_weights);
  return wg;
}

struct CoarseLevel {
  WorkGraph graph;
  std::vector<VertexId> coarse_of_fine;  // map into the next-coarser graph
};

/// Heavy-edge matching: visit vertices in random order, match each
/// unmatched vertex with its unmatched neighbour of maximum edge weight.
std::vector<VertexId> heavy_edge_matching(const WorkGraph& g, Rng& rng) {
  const VertexId n = g.size();
  std::vector<VertexId> match(n, kInvalidVertex);
  std::vector<VertexId> visit(n);
  std::iota(visit.begin(), visit.end(), VertexId{0});
  std::shuffle(visit.begin(), visit.end(), rng);

  for (const VertexId v : visit) {
    if (match[v] != kInvalidVertex) continue;
    VertexId best = kInvalidVertex;
    std::uint64_t best_weight = 0;
    const auto adj = g.adj(v);
    const auto wts = g.weights(v);
    for (std::size_t k = 0; k < adj.size(); ++k) {
      const VertexId u = adj[k];
      if (u == v || match[u] != kInvalidVertex) continue;
      if (wts[k] > best_weight) {
        best_weight = wts[k];
        best = u;
      }
    }
    if (best == kInvalidVertex) {
      match[v] = v;  // stays single
    } else {
      match[v] = best;
      match[best] = v;
    }
  }
  return match;
}

/// Contract matched pairs into a coarser graph.
CoarseLevel contract(const WorkGraph& g, const std::vector<VertexId>& match) {
  const VertexId n = g.size();
  CoarseLevel level;
  level.coarse_of_fine.assign(n, kInvalidVertex);
  VertexId coarse_n = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (level.coarse_of_fine[v] != kInvalidVertex) continue;
    const VertexId m = match[v];
    level.coarse_of_fine[v] = coarse_n;
    if (m != v) level.coarse_of_fine[m] = coarse_n;
    ++coarse_n;
  }

  WorkGraph& cg = level.graph;
  cg.vertex_weights.assign(coarse_n, 0);
  for (VertexId v = 0; v < n; ++v) {
    cg.vertex_weights[level.coarse_of_fine[v]] += g.vertex_weights[v];
  }

  // Accumulate coarse adjacency via a per-vertex hash map.
  cg.offsets.assign(coarse_n + 1, 0);
  std::vector<std::unordered_map<VertexId, std::uint64_t>> rows(coarse_n);
  for (VertexId v = 0; v < n; ++v) {
    const VertexId cv = level.coarse_of_fine[v];
    const auto adj = g.adj(v);
    const auto wts = g.weights(v);
    for (std::size_t k = 0; k < adj.size(); ++k) {
      const VertexId cu = level.coarse_of_fine[adj[k]];
      if (cu == cv) continue;
      rows[cv][cu] += wts[k];
    }
  }
  for (VertexId cv = 0; cv < coarse_n; ++cv) {
    cg.offsets[cv + 1] = cg.offsets[cv] + rows[cv].size();
  }
  cg.neighbors.resize(cg.offsets.back());
  cg.edge_weights.resize(cg.offsets.back());
  for (VertexId cv = 0; cv < coarse_n; ++cv) {
    std::uint64_t slot = cg.offsets[cv];
    // Deterministic order within the row.
    std::vector<std::pair<VertexId, std::uint64_t>> sorted(rows[cv].begin(),
                                                           rows[cv].end());
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [cu, w] : sorted) {
      cg.neighbors[slot] = cu;
      cg.edge_weights[slot] = w;
      ++slot;
    }
  }
  return level;
}

/// Greedy graph growing over the coarsest graph: grow each part by BFS
/// from the heaviest unassigned vertex until its vertex-weight budget is
/// met; remaining vertices go to the lightest part.
std::vector<PartitionId> initial_partition(const WorkGraph& g, PartitionId p,
                                           Rng& rng) {
  const VertexId n = g.size();
  std::vector<PartitionId> part(n, kInvalidPartition);
  const std::uint64_t total_weight =
      std::accumulate(g.vertex_weights.begin(), g.vertex_weights.end(),
                      std::uint64_t{0});
  const std::uint64_t budget = (total_weight + p - 1) / p;

  std::vector<VertexId> seeds(n);
  std::iota(seeds.begin(), seeds.end(), VertexId{0});
  std::shuffle(seeds.begin(), seeds.end(), rng);
  std::size_t seed_cursor = 0;

  std::vector<std::uint64_t> load(p, 0);
  for (PartitionId i = 0; i + 1 < p || p == 1; ++i) {
    if (i >= p) break;
    // Find a seed.
    while (seed_cursor < seeds.size() &&
           part[seeds[seed_cursor]] != kInvalidPartition) {
      ++seed_cursor;
    }
    if (seed_cursor >= seeds.size()) break;
    std::vector<VertexId> frontier{seeds[seed_cursor]};
    while (!frontier.empty() && load[i] < budget) {
      std::vector<VertexId> next;
      for (const VertexId v : frontier) {
        if (part[v] != kInvalidPartition) continue;
        if (load[i] >= budget) break;
        part[v] = i;
        load[i] += g.vertex_weights[v];
        for (const VertexId u : g.adj(v)) {
          if (part[u] == kInvalidPartition) next.push_back(u);
        }
      }
      frontier = std::move(next);
      if (frontier.empty() && load[i] < budget) {
        // Disconnected remainder: jump to a fresh seed.
        while (seed_cursor < seeds.size() &&
               part[seeds[seed_cursor]] != kInvalidPartition) {
          ++seed_cursor;
        }
        if (seed_cursor >= seeds.size()) break;
        frontier.push_back(seeds[seed_cursor]);
      }
    }
    if (p == 1) break;
  }
  // Everything unassigned goes to the currently lightest part.
  for (VertexId v = 0; v < n; ++v) {
    if (part[v] != kInvalidPartition) continue;
    const auto it = std::min_element(load.begin(), load.end());
    const PartitionId i = static_cast<PartitionId>(it - load.begin());
    part[v] = i;
    load[i] += g.vertex_weights[v];
  }
  return part;
}

/// One boundary-FM pass: move boundary vertices to the neighbouring part
/// with the largest cut gain, subject to the balance tolerance. Returns
/// the number of moves made.
std::size_t fm_pass(const WorkGraph& g, std::vector<PartitionId>& part,
                    PartitionId p, double tolerance) {
  const VertexId n = g.size();
  std::vector<std::uint64_t> load(p, 0);
  for (VertexId v = 0; v < n; ++v) load[part[v]] += g.vertex_weights[v];
  const std::uint64_t total =
      std::accumulate(load.begin(), load.end(), std::uint64_t{0});
  const double max_load = tolerance * static_cast<double>(total) / p;

  std::size_t moves = 0;
  std::vector<std::int64_t> gain(p, 0);
  for (VertexId v = 0; v < n; ++v) {
    const PartitionId home = part[v];
    const auto adj = g.adj(v);
    const auto wts = g.weights(v);
    // Connectivity of v to each part.
    bool boundary = false;
    std::fill(gain.begin(), gain.end(), 0);
    for (std::size_t k = 0; k < adj.size(); ++k) {
      gain[part[adj[k]]] += static_cast<std::int64_t>(wts[k]);
      if (part[adj[k]] != home) boundary = true;
    }
    if (!boundary) continue;
    PartitionId best = home;
    std::int64_t best_gain = gain[home];
    for (PartitionId i = 0; i < p; ++i) {
      if (i == home) continue;
      if (static_cast<double>(load[i] + g.vertex_weights[v]) > max_load) {
        continue;
      }
      if (gain[i] > best_gain) {
        best_gain = gain[i];
        best = i;
      }
    }
    if (best != home) {
      load[home] -= g.vertex_weights[v];
      load[best] += g.vertex_weights[v];
      part[v] = best;
      ++moves;
    }
  }
  return moves;
}

}  // namespace

std::vector<PartitionId> MetisLikePartitioner::partition_vertices(
    const Graph& graph, const PartitionConfig& config) const {
  check_partition_config(graph, config);
  const PartitionId p = config.num_parts;
  Rng rng(derive_seed(config.seed, 0x4D));

  // Phase 1: coarsen.
  std::vector<CoarseLevel> levels;
  WorkGraph current = build_work_graph(graph);
  const VertexId stop_at =
      std::max<VertexId>(params_.coarsen_to * p, 64);
  while (current.size() > stop_at) {
    const std::vector<VertexId> match = heavy_edge_matching(current, rng);
    CoarseLevel level = contract(current, match);
    if (level.graph.size() >= current.size()) break;  // matching stalled
    // Stop if shrinkage is below 10% — classic METIS stall guard.
    if (static_cast<double>(level.graph.size()) >
        0.9 * static_cast<double>(current.size())) {
      levels.push_back(std::move(level));
      current = levels.back().graph;
      break;
    }
    levels.push_back(std::move(level));
    current = levels.back().graph;
  }

  // Phase 2: initial partition on the coarsest graph.
  std::vector<PartitionId> part = initial_partition(current, p, rng);
  for (int pass = 0; pass < params_.refinement_passes; ++pass) {
    if (fm_pass(current, part, p, params_.balance_tolerance) == 0) break;
  }

  // Phase 3: project back and refine at every level.
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    const WorkGraph* finer =
        (it + 1 == levels.rend()) ? nullptr : &(it + 1)->graph;
    const std::vector<VertexId>& map = it->coarse_of_fine;
    std::vector<PartitionId> fine_part(map.size());
    for (std::size_t v = 0; v < map.size(); ++v) fine_part[v] = part[map[v]];
    part = std::move(fine_part);
    const WorkGraph& level_graph =
        finer != nullptr ? *finer : build_work_graph(graph);
    for (int pass = 0; pass < params_.refinement_passes; ++pass) {
      if (fm_pass(level_graph, part, p, params_.balance_tolerance) == 0) break;
    }
  }
  if (levels.empty()) {
    // Graph was already small enough: `part` indexes the original graph.
    EBV_ASSERT(part.size() == graph.num_vertices());
  }
  EBV_ASSERT(part.size() == graph.num_vertices());
  return part;
}

EdgePartition MetisLikePartitioner::partition(
    const Graph& graph, const PartitionConfig& config) const {
  const std::vector<PartitionId> vertex_part =
      partition_vertices(graph, config);
  EdgePartition result;
  result.num_parts = config.num_parts;
  result.part_of_edge.resize(graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    result.part_of_edge[e] = vertex_part[graph.edge(e).src];
  }
  return result;
}

}  // namespace ebv
