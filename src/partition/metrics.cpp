#include "partition/metrics.h"

#include <algorithm>
#include <bit>

#include "common/assert.h"
#include "partition/replica_masks.h"

namespace ebv {

std::vector<std::vector<std::uint8_t>> vertex_membership(
    const GraphView& graph, const EdgePartition& partition) {
  EBV_REQUIRE(partition.part_of_edge.size() == graph.num_edges(),
              "partition size does not match the graph's edge count");
  std::vector<std::vector<std::uint8_t>> member(
      partition.num_parts,
      std::vector<std::uint8_t>(graph.num_vertices(), 0));
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const PartitionId i = partition.part_of_edge[e];
    EBV_REQUIRE(i < partition.num_parts, "edge assigned to invalid part");
    member[i][graph.edge(e).src] = 1;
    member[i][graph.edge(e).dst] = 1;
  }
  return member;
}

PartitionMetrics compute_metrics(const GraphView& graph,
                                 const EdgePartition& partition) {
  EBV_REQUIRE(partition.part_of_edge.size() == graph.num_edges(),
              "partition size does not match the graph's edge count");
  const PartitionId p = partition.num_parts;

  PartitionMetrics m;
  m.edges_per_part.assign(p, 0);
  m.vertices_per_part.assign(p, 0);

  // Vertex membership as vertex-major bitmasks (|V|·⌈p/64⌉ words) rather
  // than the part-major p×|V| byte matrix of vertex_membership(): 8×
  // smaller, which matters because the metrics pass follows an
  // out-of-core `--mmap` partition run and must not become its resident
  // high-water mark.
  ReplicaMasks member(graph.num_vertices(), p);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const PartitionId i = partition.part_of_edge[e];
    EBV_REQUIRE(i < p, "edge assigned to invalid part");
    ++m.edges_per_part[i];
    member.set(graph.edge(e).src, i);
    member.set(graph.edge(e).dst, i);
  }
  const std::uint32_t words = member.words_per_vertex();
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const std::uint64_t* row = member.row(v);
    for (std::uint32_t w = 0; w < words; ++w) {
      std::uint64_t bits = row[w];
      while (bits != 0) {
        ++m.vertices_per_part[static_cast<PartitionId>(w) * 64 +
                              static_cast<PartitionId>(
                                  std::countr_zero(bits))];
        bits &= bits - 1;
      }
    }
  }
  for (PartitionId i = 0; i < p; ++i) {
    m.total_replicas += m.vertices_per_part[i];
  }

  const std::uint64_t max_edges =
      *std::max_element(m.edges_per_part.begin(), m.edges_per_part.end());
  const std::uint64_t max_vertices = *std::max_element(
      m.vertices_per_part.begin(), m.vertices_per_part.end());

  m.edge_imbalance = graph.num_edges() == 0
                         ? 1.0
                         : static_cast<double>(max_edges) /
                               (static_cast<double>(graph.num_edges()) / p);
  m.vertex_imbalance = m.total_replicas == 0
                           ? 1.0
                           : static_cast<double>(max_vertices) /
                                 (static_cast<double>(m.total_replicas) / p);
  m.replication_factor =
      graph.num_vertices() == 0
          ? 0.0
          : static_cast<double>(m.total_replicas) / graph.num_vertices();
  return m;
}

PartitionMetrics compute_edge_cut_metrics(
    const GraphView& graph, const std::vector<PartitionId>& vertex_part,
    PartitionId num_parts) {
  EBV_REQUIRE(vertex_part.size() == graph.num_vertices(),
              "vertex partition does not match the graph");
  PartitionMetrics m;
  m.edges_per_part.assign(num_parts, 0);
  m.vertices_per_part.assign(num_parts, 0);
  for (const PartitionId i : vertex_part) {
    EBV_REQUIRE(i < num_parts, "vertex assigned to invalid part");
    ++m.vertices_per_part[i];
  }
  std::uint64_t total_edge_replicas = 0;
  for (const Edge& e : graph.edges()) {
    const PartitionId a = vertex_part[e.src];
    const PartitionId b = vertex_part[e.dst];
    ++m.edges_per_part[a];
    ++total_edge_replicas;
    if (a != b) {
      ++m.edges_per_part[b];
      ++total_edge_replicas;
    }
  }
  m.total_replicas = graph.num_vertices();  // Σ|Vi| = |V| for edge-cut

  const std::uint64_t max_edges =
      *std::max_element(m.edges_per_part.begin(), m.edges_per_part.end());
  const std::uint64_t max_vertices = *std::max_element(
      m.vertices_per_part.begin(), m.vertices_per_part.end());
  m.edge_imbalance =
      graph.num_edges() == 0
          ? 1.0
          : static_cast<double>(max_edges) /
                (static_cast<double>(graph.num_edges()) / num_parts);
  m.vertex_imbalance =
      graph.num_vertices() == 0
          ? 1.0
          : static_cast<double>(max_vertices) /
                (static_cast<double>(graph.num_vertices()) / num_parts);
  m.replication_factor =
      graph.num_edges() == 0
          ? 0.0
          : static_cast<double>(total_edge_replicas) / graph.num_edges();
  return m;
}

}  // namespace ebv
