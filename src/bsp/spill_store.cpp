#include "bsp/spill_store.h"

#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "common/assert.h"
#include "common/failpoint.h"

namespace ebv::bsp {
namespace {

using io::detail::get_field;
using io::detail::kSectionEndianMarker;
using io::detail::kSectionPageAlign;
using io::detail::pad_to_page;
using io::detail::put_field;
using io::detail::write_raw;

// Header field offsets within the 4 KiB header page (docs/FORMATS.md).
constexpr char kMagic[4] = {'E', 'B', 'V', 'W'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 4096;

constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffVersion = 4;
constexpr std::size_t kOffEndian = 8;
constexpr std::size_t kOffHeaderBytes = 12;
constexpr std::size_t kOffNumWorkers = 16;
constexpr std::size_t kOffFlags = 20;
constexpr std::size_t kOffNumVertices = 24;
constexpr std::size_t kOffNumEdges = 32;
constexpr std::size_t kOffTableOffset = 40;
constexpr std::size_t kOffTableBytes = 48;

constexpr std::uint32_t kFlagWeighted = 1u << 0;

// Per-worker section indices (fixed order inside each worker's blob).
enum Section : std::size_t {
  kSecGlobalIds = 0,
  kSecEdges = 1,
  kSecWeights = 2,
  kSecFlags = 3,
  kSecMasterPart = 4,
  kSecOutDegree = 5,
  kNumWorkerSections = 6,
};

constexpr std::uint8_t kVertexReplicated = 1u << 0;
constexpr std::uint8_t kVertexMaster = 1u << 1;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("EBVW: " + what);
}

}  // namespace

SpillStoreWriter::SpillStoreWriter(const std::string& path,
                                   PartitionId num_workers,
                                   VertexId num_global_vertices,
                                   EdgeId num_global_edges, bool weighted)
    : path_(path),
      num_workers_(num_workers),
      num_global_edges_(num_global_edges),
      weighted_(weighted) {
  EBV_REQUIRE(num_workers >= 1, "spill store needs at least one worker");
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) fail("cannot open for writing: " + path);

  std::vector<char> header(kHeaderBytes, 0);
  std::memcpy(header.data() + kOffMagic, kMagic, sizeof kMagic);
  put_field(header, kOffVersion, kVersion);
  put_field(header, kOffEndian, kSectionEndianMarker);
  put_field(header, kOffHeaderBytes, static_cast<std::uint32_t>(kHeaderBytes));
  put_field(header, kOffNumWorkers, static_cast<std::uint32_t>(num_workers));
  put_field(header, kOffFlags, weighted ? kFlagWeighted : 0u);
  put_field(header, kOffNumVertices,
            static_cast<std::uint64_t>(num_global_vertices));
  put_field(header, kOffNumEdges, static_cast<std::uint64_t>(num_global_edges));
  // Table offset/bytes patched by finish().
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  cursor_ = kHeaderBytes;
  table_.reserve(num_workers);
}

SpillStoreWriter::~SpillStoreWriter() {
  if (!finished_) {
    // Abandoned mid-spill (an exception unwound construction): never
    // leave a table-less file behind.
    out_.close();
    std::remove(path_.c_str());
  }
}

void SpillStoreWriter::write_worker(const LocalSubgraph& ls) {
  EBV_REQUIRE(!finished_, "write_worker after finish");
  EBV_REQUIRE(table_.size() < num_workers_,
              "more workers written than declared");
  EBV_REQUIRE(ls.part == static_cast<PartitionId>(table_.size()),
              "workers must be written in ascending part order");
  const auto vn = static_cast<std::size_t>(ls.num_vertices());
  EBV_REQUIRE(ls.is_replicated.size() == vn && ls.is_master.size() == vn &&
                  ls.master_part.size() == vn &&
                  ls.global_out_degree.size() == vn,
              "worker metadata arrays must cover every local vertex");
  EBV_REQUIRE(!weighted_ || ls.edge_weights.size() == ls.edges.size(),
              "weighted store needs one weight per local edge");

  detail::SpillWorkerEntry entry;
  entry.num_vertices = vn;
  entry.num_edges = ls.edges.size();

  failpoint::maybe_fail_stream("spill_store.write", out_);

  auto begin_section = [&](Section sec) {
    cursor_ = pad_to_page(out_, cursor_);
    entry.sec_offset[sec] = cursor_;
  };
  auto end_section = [&](Section sec) {
    entry.sec_bytes[sec] = cursor_ - entry.sec_offset[sec];
  };

  begin_section(kSecGlobalIds);
  write_raw(out_, cursor_, ls.global_ids.data(),
            ls.global_ids.size() * sizeof(VertexId));
  end_section(kSecGlobalIds);

  begin_section(kSecEdges);
  write_raw(out_, cursor_, ls.edges.data(), ls.edges.size() * sizeof(Edge));
  end_section(kSecEdges);

  begin_section(kSecWeights);
  if (weighted_) {
    write_raw(out_, cursor_, ls.edge_weights.data(),
              ls.edge_weights.size() * sizeof(float));
  }
  end_section(kSecWeights);

  begin_section(kSecFlags);
  {
    std::vector<std::uint8_t> flags(vn, 0);
    for (std::size_t lv = 0; lv < vn; ++lv) {
      flags[lv] = static_cast<std::uint8_t>(
          (ls.is_replicated[lv] != 0 ? kVertexReplicated : 0) |
          (ls.is_master[lv] != 0 ? kVertexMaster : 0));
    }
    write_raw(out_, cursor_, flags.data(), flags.size());
  }
  end_section(kSecFlags);

  begin_section(kSecMasterPart);
  write_raw(out_, cursor_, ls.master_part.data(),
            ls.master_part.size() * sizeof(PartitionId));
  end_section(kSecMasterPart);

  begin_section(kSecOutDegree);
  write_raw(out_, cursor_, ls.global_out_degree.data(),
            ls.global_out_degree.size() * sizeof(std::uint32_t));
  end_section(kSecOutDegree);

  if (!out_) fail("write failed (--spill-dir): " + path_);
  table_.push_back(entry);
}

void SpillStoreWriter::finish() {
  EBV_REQUIRE(!finished_, "SpillStoreWriter::finish called twice");
  EBV_REQUIRE(table_.size() == num_workers_,
              "finish before every worker was written");

  failpoint::maybe_fail_stream("spill_store.write", out_);
  cursor_ = pad_to_page(out_, cursor_);
  const std::uint64_t table_offset = cursor_;
  write_raw(out_, cursor_, table_.data(),
            table_.size() * sizeof(detail::SpillWorkerEntry));
  const std::uint64_t table_bytes = cursor_ - table_offset;

  out_.seekp(static_cast<std::streamoff>(kOffTableOffset));
  out_.write(reinterpret_cast<const char*>(&table_offset),
             sizeof table_offset);
  out_.write(reinterpret_cast<const char*>(&table_bytes), sizeof table_bytes);
  out_.flush();
  if (!out_) fail("write failed (--spill-dir): " + path_);
  finished_ = true;
}

SpillStore::SpillStore(const std::string& path) : path_(path) {
  try {
    file_ = io::detail::MappedFile(path);
  } catch (const std::runtime_error& e) {
    fail(e.what());
  }
  const std::byte* base = file_.data();
  const std::size_t size = file_.size();

  io::detail::check_header_prologue(base, size, kMagic, kVersion, "EBVW");
  const auto workers = get_field<std::uint32_t>(base, kOffNumWorkers);
  if (workers == 0) fail("zero workers");
  const auto v64 = get_field<std::uint64_t>(base, kOffNumVertices);
  const auto e64 = get_field<std::uint64_t>(base, kOffNumEdges);
  if (v64 >= kInvalidVertex) fail("vertex count exceeds 32-bit id space");
  // Bound every count by the file size BEFORE any size arithmetic so a
  // hostile header cannot wrap the products below (same rule as EBVS).
  if (e64 > size / sizeof(Edge)) {
    fail("edge count exceeds the file (truncated or hostile header)");
  }
  num_workers_ = workers;
  num_global_vertices_ = static_cast<VertexId>(v64);
  num_global_edges_ = e64;
  weighted_ = (get_field<std::uint32_t>(base, kOffFlags) & kFlagWeighted) != 0;

  const auto table_offset = get_field<std::uint64_t>(base, kOffTableOffset);
  const auto table_bytes = get_field<std::uint64_t>(base, kOffTableBytes);
  if (table_bytes != static_cast<std::uint64_t>(workers) *
                         sizeof(detail::SpillWorkerEntry)) {
    fail("worker table has wrong length");
  }
  if (table_offset % kSectionPageAlign != 0) {
    fail("worker table is not page-aligned");
  }
  if (table_offset > size || size - table_offset < table_bytes) {
    fail("worker table exceeds the file (truncated?)");
  }
  table_.resize(workers);
  std::memcpy(table_.data(), base + table_offset,
              static_cast<std::size_t>(table_bytes));

  std::uint64_t edge_sum = 0;
  for (const detail::SpillWorkerEntry& entry : table_) {
    if (entry.num_vertices >= kInvalidVertex) {
      fail("worker vertex count exceeds 32-bit id space");
    }
    if (entry.num_edges > size / sizeof(Edge)) {
      fail("worker edge count exceeds the file");
    }
    edge_sum += entry.num_edges;
    const std::uint64_t expect[kNumWorkerSections] = {
        entry.num_vertices * sizeof(VertexId),
        entry.num_edges * sizeof(Edge),
        weighted_ ? entry.num_edges * sizeof(float) : 0,
        entry.num_vertices,
        entry.num_vertices * sizeof(PartitionId),
        entry.num_vertices * sizeof(std::uint32_t),
    };
    for (std::size_t s = 0; s < kNumWorkerSections; ++s) {
      if (entry.sec_bytes[s] != expect[s]) {
        fail("worker section has wrong length");
      }
      if (entry.sec_bytes[s] == 0) continue;
      if (entry.sec_offset[s] % kSectionPageAlign != 0) {
        fail("worker section is not page-aligned");
      }
      if (entry.sec_offset[s] > size ||
          size - entry.sec_offset[s] < entry.sec_bytes[s]) {
        fail("worker section exceeds the file (truncated?)");
      }
    }
  }
  if (edge_sum != num_global_edges_) {
    fail("worker edge counts do not sum to the global edge count");
  }
}

LocalSubgraph SpillStore::load_worker(PartitionId i, bool build_csr) const {
  EBV_REQUIRE(i < num_workers_, "load_worker: worker id out of range");
  const detail::SpillWorkerEntry& entry = table_[i];
  const std::byte* base = file_.data();
  const auto vn = static_cast<std::size_t>(entry.num_vertices);
  const auto en = static_cast<std::size_t>(entry.num_edges);

  LocalSubgraph ls;
  ls.part = i;
  ls.is_replicated.resize(vn);
  ls.is_master.resize(vn);

  // Zero-length sections have unvalidated offsets (nothing to read), so
  // never form a pointer into them.
  if (vn > 0) {
    const auto* ids = reinterpret_cast<const VertexId*>(
        base + entry.sec_offset[kSecGlobalIds]);
    ls.global_ids.assign(ids, ids + vn);

    const auto* flags = reinterpret_cast<const std::uint8_t*>(
        base + entry.sec_offset[kSecFlags]);
    for (std::size_t lv = 0; lv < vn; ++lv) {
      ls.is_replicated[lv] = (flags[lv] & kVertexReplicated) != 0 ? 1 : 0;
      ls.is_master[lv] = (flags[lv] & kVertexMaster) != 0 ? 1 : 0;
    }

    const auto* masters = reinterpret_cast<const PartitionId*>(
        base + entry.sec_offset[kSecMasterPart]);
    ls.master_part.assign(masters, masters + vn);

    const auto* degrees = reinterpret_cast<const std::uint32_t*>(
        base + entry.sec_offset[kSecOutDegree]);
    ls.global_out_degree.assign(degrees, degrees + vn);
  }

  if (en > 0) {
    const auto* edges =
        reinterpret_cast<const Edge*>(base + entry.sec_offset[kSecEdges]);
    ls.edges.assign(edges, edges + en);
    if (weighted_) {
      const auto* weights = reinterpret_cast<const float*>(
          base + entry.sec_offset[kSecWeights]);
      ls.edge_weights.assign(weights, weights + en);
    }
  }

  if (build_csr) build_local_csrs(ls);
  return ls;
}

}  // namespace ebv::bsp
