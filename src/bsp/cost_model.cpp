#include "bsp/cost_model.h"

// Header-only; this TU anchors the target.
