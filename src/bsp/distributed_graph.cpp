#include "bsp/distributed_graph.h"

#include <bit>

#include "common/assert.h"
#include "partition/replica_masks.h"

namespace ebv::bsp {
namespace {

/// Per-vertex metadata shared by resident and spilled construction.
void fill_vertex_metadata(LocalSubgraph& ls, const GraphView& graph,
                          const DistributedGraph& dist) {
  const VertexId ln = ls.num_vertices();
  ls.is_replicated.resize(ln);
  ls.is_master.resize(ln);
  ls.master_part.resize(ln);
  ls.global_out_degree.resize(ln);
  for (VertexId lv = 0; lv < ln; ++lv) {
    const VertexId gv = ls.global_ids[lv];
    ls.is_replicated[lv] = dist.parts_of(gv).size() > 1 ? 1 : 0;
    ls.is_master[lv] = dist.master_of(gv) == ls.part ? 1 : 0;
    ls.master_part[lv] = dist.master_of(gv);
    ls.global_out_degree[lv] = graph.out_degree(gv);
  }
}

}  // namespace

DistributedGraph::DistributedGraph(const GraphView& graph,
                                   const EdgePartition& partition) {
  build(graph, partition, DistributeOptions{});
}

DistributedGraph::DistributedGraph(const GraphView& graph,
                                   const EdgePartition& partition,
                                   const DistributeOptions& options) {
  build(graph, partition, options);
}

void DistributedGraph::build(const GraphView& graph,
                             const EdgePartition& partition,
                             const DistributeOptions& options) {
  EBV_REQUIRE(partition.part_of_edge.size() == graph.num_edges(),
              "partition does not match graph");
  const PartitionId p = partition.num_parts;
  EBV_REQUIRE(p >= 1, "partition must have at least one part");
  const VertexId n = graph.num_vertices();
  num_workers_ = p;
  num_global_vertices_ = n;
  num_global_edges_ = graph.num_edges();

  // Pass 1 (edge stream): replica membership as vertex-major bitmasks.
  // O(|V|·⌈p/64⌉) resident — nothing per edge survives the pass.
  ReplicaMasks masks(n, p);
  for (EdgeId e = 0; e < num_global_edges_; ++e) {
    const PartitionId part = partition.part_of_edge[e];
    EBV_REQUIRE(part < p, "edge assigned to invalid part");
    const Edge edge = graph.edge(e);
    masks.set(edge.src, part);
    masks.set(edge.dst, part);
  }

  // Flatten membership into the persistent CSR layout:
  // replica_parts_[replica_offsets_[v] .. replica_offsets_[v+1]) are the
  // parts holding v, ascending.
  const std::uint32_t words = masks.words_per_vertex();
  replica_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    const std::uint64_t* row = masks.row(v);
    std::uint64_t count = 0;
    for (std::uint32_t w = 0; w < words; ++w) {
      count += static_cast<std::uint64_t>(std::popcount(row[w]));
    }
    replica_offsets_[v + 1] = replica_offsets_[v] + count;
  }
  total_replicas_ = replica_offsets_[n];
  replica_parts_.resize(total_replicas_);
  for (VertexId v = 0; v < n; ++v) {
    std::uint64_t slot = replica_offsets_[v];
    const std::uint64_t* row = masks.row(v);
    for (std::uint32_t w = 0; w < words; ++w) {
      for (std::uint64_t bits = row[w]; bits != 0; bits &= bits - 1) {
        replica_parts_[slot++] = static_cast<PartitionId>(
            w * 64 + static_cast<std::uint32_t>(std::countr_zero(bits)));
      }
    }
  }

  // Pass 2 (edge stream): incident-edge counts per replica slot (flat
  // array parallel to replica_parts_) for master selection, plus per-part
  // edge totals for exact reservations. Each (vertex, edge) incidence
  // counts ONCE — a self-loop touches its vertex as one incidence, not
  // two, so self-loop-heavy parts get no artificial master bias.
  std::vector<std::uint32_t> incident_count(total_replicas_, 0);
  std::vector<std::uint64_t> edges_per_part(p, 0);
  const auto slot_of = [&](VertexId v, PartitionId part) {
    const std::uint64_t* row = masks.row(v);
    const auto w = static_cast<std::uint32_t>(part >> 6);
    std::uint64_t rank = 0;
    for (std::uint32_t k = 0; k < w; ++k) {
      rank += static_cast<std::uint64_t>(std::popcount(row[k]));
    }
    const std::uint64_t below = (std::uint64_t{1} << (part & 63)) - 1;
    rank += static_cast<std::uint64_t>(std::popcount(row[w] & below));
    return replica_offsets_[v] + rank;
  };
  for (EdgeId e = 0; e < num_global_edges_; ++e) {
    const PartitionId part = partition.part_of_edge[e];
    const Edge edge = graph.edge(e);
    ++incident_count[slot_of(edge.src, part)];
    if (edge.dst != edge.src) ++incident_count[slot_of(edge.dst, part)];
    ++edges_per_part[part];
  }

  // Master selection: most incident edges, ties to the lowest part id
  // (replica_parts_ is ascending per vertex, so the first strict maximum
  // is the lowest-id winner).
  master_of_vertex_.assign(n, kInvalidPartition);
  for (VertexId v = 0; v < n; ++v) {
    std::uint32_t best = 0;
    for (std::uint64_t s = replica_offsets_[v]; s < replica_offsets_[v + 1];
         ++s) {
      if (incident_count[s] > best) {
        best = incident_count[s];
        master_of_vertex_[v] = replica_parts_[s];
      }
    }
  }
  incident_count = {};  // transient; release before building subgraphs

  // Local vertex id spaces: ascending global id per part, so every
  // global_ids is sorted and LocalSubgraph::local_of() can binary-search.
  std::vector<std::uint64_t> vertices_per_part(p, 0);
  for (const PartitionId part : replica_parts_) ++vertices_per_part[part];

  if (options.spill_path.empty()) {
    // --- Resident mode: one streaming pass fills all p subgraphs. -------
    locals_.resize(p);
    for (PartitionId i = 0; i < p; ++i) {
      locals_[i].part = i;
      locals_[i].global_ids.reserve(vertices_per_part[i]);
    }
    for (VertexId v = 0; v < n; ++v) {
      for (const PartitionId part : parts_of(v)) {
        locals_[part].global_ids.push_back(v);
      }
    }

    // Pass 3 (edge stream): local edges (+ weights) in global edge order.
    for (PartitionId i = 0; i < p; ++i) {
      locals_[i].edges.reserve(edges_per_part[i]);
      if (graph.has_weights()) {
        locals_[i].edge_weights.reserve(edges_per_part[i]);
      }
    }
    for (EdgeId e = 0; e < num_global_edges_; ++e) {
      LocalSubgraph& ls = locals_[partition.part_of_edge[e]];
      const Edge edge = graph.edge(e);
      ls.edges.push_back({ls.local_of(edge.src), ls.local_of(edge.dst)});
      if (graph.has_weights()) ls.edge_weights.push_back(graph.weight(e));
    }

    // Per-worker adjacency and replica flags.
    for (LocalSubgraph& ls : locals_) {
      build_local_csrs(ls);
      fill_vertex_metadata(ls, graph, *this);
    }
    return;
  }

  // --- Spilled mode: build workers one at a time, streaming each into
  // its EBVW sections so the p-worker aggregate is never heap-resident.
  // One filtering pass over the edge span per worker (p passes total,
  // each sequential) replaces the single interleaved pass above; the
  // emitted per-worker edge order — ascending global edge id — is
  // identical, so a loaded worker is bit-identical to its resident twin.
  SpillStoreWriter writer(options.spill_path, p, n, num_global_edges_,
                          graph.has_weights());
  for (PartitionId i = 0; i < p; ++i) {
    LocalSubgraph ls;
    ls.part = i;
    ls.global_ids.reserve(vertices_per_part[i]);
    for (VertexId v = 0; v < n; ++v) {
      if (masks.test(v, i) != 0) ls.global_ids.push_back(v);
    }
    ls.edges.reserve(edges_per_part[i]);
    if (graph.has_weights()) ls.edge_weights.reserve(edges_per_part[i]);
    for (EdgeId e = 0; e < num_global_edges_; ++e) {
      if (partition.part_of_edge[e] != i) continue;
      const Edge edge = graph.edge(e);
      ls.edges.push_back({ls.local_of(edge.src), ls.local_of(edge.dst)});
      if (graph.has_weights()) ls.edge_weights.push_back(graph.weight(e));
    }
    fill_vertex_metadata(ls, graph, *this);
    writer.write_worker(ls);  // CSRs are rebuilt at load time
  }
  writer.finish();
  store_.emplace(options.spill_path);
}

}  // namespace ebv::bsp
