#include "bsp/distributed_graph.h"

#include <algorithm>

#include "common/assert.h"

namespace ebv::bsp {

DistributedGraph::DistributedGraph(const Graph& graph,
                                   const EdgePartition& partition) {
  EBV_REQUIRE(partition.part_of_edge.size() == graph.num_edges(),
              "partition does not match graph");
  const PartitionId p = partition.num_parts;
  EBV_REQUIRE(p >= 1, "partition must have at least one part");
  num_global_vertices_ = graph.num_vertices();
  num_global_edges_ = graph.num_edges();

  locals_.resize(p);
  for (PartitionId i = 0; i < p; ++i) locals_[i].part = i;

  // Pass 1: per-vertex incident-edge counts per part -> replica lists and
  // master selection (most incident edges, ties to lowest part id).
  parts_of_vertex_.assign(graph.num_vertices(), {});
  master_of_vertex_.assign(graph.num_vertices(), kInvalidPartition);
  // edge_count_in_part[v] pairs (part, count) — vertices touch few parts,
  // so a small vector per vertex is compact and cache-friendly.
  std::vector<std::vector<std::pair<PartitionId, std::uint32_t>>> incident(
      graph.num_vertices());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const PartitionId part = partition.part_of_edge[e];
    EBV_REQUIRE(part < p, "edge assigned to invalid part");
    for (const VertexId v : {graph.edge(e).src, graph.edge(e).dst}) {
      auto& list = incident[v];
      auto it = std::find_if(list.begin(), list.end(),
                             [part](const auto& pr) { return pr.first == part; });
      if (it == list.end()) {
        list.emplace_back(part, 1);
      } else {
        ++it->second;
      }
    }
  }
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    auto& list = incident[v];
    if (list.empty()) continue;
    std::sort(list.begin(), list.end());
    PartitionId master = list.front().first;
    std::uint32_t best = 0;
    for (const auto& [part, count] : list) {
      if (count > best) {
        best = count;
        master = part;
      }
    }
    master_of_vertex_[v] = master;
    parts_of_vertex_[v].reserve(list.size());
    for (const auto& [part, count] : list) parts_of_vertex_[v].push_back(part);
    total_replicas_ += list.size();
  }

  // Pass 2: local vertex id spaces (insertion order = ascending global id
  // per part, giving deterministic local layouts).
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (const PartitionId part : parts_of_vertex_[v]) {
      LocalSubgraph& ls = locals_[part];
      ls.local_ids.emplace(v, static_cast<VertexId>(ls.global_ids.size()));
      ls.global_ids.push_back(v);
    }
  }

  // Pass 3: local edges (+ weights) in global edge order.
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    LocalSubgraph& ls = locals_[partition.part_of_edge[e]];
    const Edge edge = graph.edge(e);
    ls.edges.push_back({ls.local_ids.at(edge.src), ls.local_ids.at(edge.dst)});
    if (graph.has_weights()) ls.edge_weights.push_back(graph.weight(e));
  }

  // Pass 4: per-worker adjacency and replica flags.
  for (LocalSubgraph& ls : locals_) {
    const VertexId n = ls.num_vertices();
    ls.out_csr = CsrGraph::build(n, ls.edges, CsrGraph::Direction::kOut);
    ls.in_csr = CsrGraph::build(n, ls.edges, CsrGraph::Direction::kIn);
    ls.both_csr = CsrGraph::build(n, ls.edges, CsrGraph::Direction::kBoth);
    ls.is_replicated.resize(n);
    ls.is_master.resize(n);
    ls.master_part.resize(n);
    ls.global_out_degree.resize(n);
    for (VertexId lv = 0; lv < n; ++lv) {
      const VertexId gv = ls.global_ids[lv];
      ls.is_replicated[lv] = parts_of_vertex_[gv].size() > 1 ? 1 : 0;
      ls.is_master[lv] = master_of_vertex_[gv] == ls.part ? 1 : 0;
      ls.master_part[lv] = master_of_vertex_[gv];
      ls.global_out_degree[lv] = graph.out_degree(gv);
    }
  }
}

}  // namespace ebv::bsp
