// Destination inboxes for the BSP runtime's replica-synchronisation
// messages (extracted from runtime.cpp when the task-graph scheduler
// made them a shared component).
//
// SpillMailbox<T> is the single-owner mailbox: messages accumulate in
// append order; under a bounded residency budget the destination worker
// may not be materialised until a later phase, so an inbox that
// outgrows its in-memory cap flushes to an append-only spill file
// (oldest prefix on disk, newest suffix in memory — drain() replays the
// file first, preserving append order exactly). With no spill path
// configured it is a plain vector.
//
// SharedMailbox<T> wraps one SpillMailbox for the two scheduler modes:
//   push_serial()     — strict mode; the scheduler's ordering chains
//                       guarantee exclusive access, so no locking.
//   push_concurrent() — async mode; a bounded ring channel absorbs the
//                       hot path (short critical section, no growth or
//                       file I/O under the lock), and when the ring is
//                       full the push falls back to the mutex-guarded
//                       spill mailbox — that is the backpressure path.
// drain() and buffer() are owner-only (the scheduler orders every
// producer before the consumer). Async drains see ring entries before
// overflow entries, so the global append order is NOT preserved — which
// is exactly the reordering the async mode's contract permits.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/sync.h"
#include "common/task_graph.h"
#include "common/thread_annotations.h"
#include "obs/trace.h"

namespace ebv::bsp {

template <typename T>
class SpillMailbox {
  static_assert(std::is_trivially_copyable_v<T>,
                "spilled messages are written as raw bytes");

 public:
  /// `path` empty disables file overflow; `cap` is the in-memory bound.
  void configure(std::string path, std::uint64_t cap) {
    path_ = std::move(path);
    cap_ = std::max<std::uint64_t>(cap, 1);
  }

  void push(const T& msg) {
    buf_.push_back(msg);
    if (!path_.empty() && buf_.size() >= cap_) flush();
  }

  /// Direct access to the in-memory tail (message combining rewrites
  /// pending values in place; combining mailboxes never flush, so the
  /// recorded indices stay valid for the whole superstep).
  [[nodiscard]] std::vector<T>& buffer() { return buf_; }

  template <typename Fn>
  void drain(Fn&& fn) {
    if (spilled_ > 0) {
      const obs::trace::Span span("mailbox.drain", spilled_);
      out_.flush();
      if (!out_) fail_io("flush");
      out_.close();
      std::ifstream in(path_, std::ios::binary);
      if (!in) fail_io("reopen");
      std::vector<T> chunk;
      std::uint64_t remaining = spilled_;
      while (remaining > 0) {
        chunk.resize(static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, 1u << 14)));
        failpoint::maybe_fail_stream("mailbox.read", in);
        in.read(reinterpret_cast<char*>(chunk.data()),
                static_cast<std::streamsize>(chunk.size() * sizeof(T)));
        if (!in) fail_io("read");
        for (const T& msg : chunk) fn(msg);
        remaining -= chunk.size();
      }
      in.close();
      std::remove(path_.c_str());
      created_ = false;
      spilled_ = 0;
    }
    for (const T& msg : buf_) fn(msg);
    buf_.clear();
  }

  /// Peek every held message in append order (spilled prefix, then the
  /// in-memory tail) WITHOUT consuming — the checkpoint writer's view of
  /// undrained state. The spill file stays open and append-able.
  template <typename Fn>
  void for_each(Fn&& fn) {
    if (spilled_ > 0) {
      out_.flush();
      if (!out_) fail_io("flush");
      std::ifstream in(path_, std::ios::binary);
      if (!in) fail_io("reopen");
      std::vector<T> chunk;
      std::uint64_t remaining = spilled_;
      while (remaining > 0) {
        chunk.resize(static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, 1u << 14)));
        failpoint::maybe_fail_stream("mailbox.read", in);
        in.read(reinterpret_cast<char*>(chunk.data()),
                static_cast<std::streamsize>(chunk.size() * sizeof(T)));
        if (!in) fail_io("read");
        for (const T& msg : chunk) fn(msg);
        remaining -= chunk.size();
      }
    }
    for (const T& msg : buf_) fn(msg);
  }

  ~SpillMailbox() {
    if (created_) {
      out_.close();
      std::remove(path_.c_str());
    }
  }

 private:
  void flush() {
    const obs::trace::Span span("mailbox.spill", buf_.size());
    if (!out_.is_open()) {
      out_.open(path_, std::ios::binary | std::ios::trunc);
      // The file may exist even when open fails half-way; from here on
      // the overflow file is ours to reclaim whatever happens.
      created_ = true;
      if (!out_) fail_io("open");
    }
    failpoint::maybe_fail_stream("mailbox.append", out_);
    out_.write(reinterpret_cast<const char*>(buf_.data()),
               static_cast<std::streamsize>(buf_.size() * sizeof(T)));
    if (!out_) fail_io("append");
    spilled_ += buf_.size();
    buf_.clear();
  }

  /// Surface the failure with the controlling flag and the path, and
  /// remove the partial overflow file first — an aborted mailbox never
  /// leaves state behind (ISSUE 7's never-partial guarantee).
  [[noreturn]] void fail_io(const char* what) {
    if (created_) {
      out_.close();
      std::remove(path_.c_str());
      created_ = false;
      spilled_ = 0;
    }
    throw std::runtime_error(std::string("mailbox spill (--spill-dir): ") +
                             what + " failed: " + path_);
  }

  std::vector<T> buf_;
  std::string path_;
  std::uint64_t cap_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t spilled_ = 0;
  bool created_ = false;
  std::ofstream out_;
};

template <typename T>
class SharedMailbox {
 public:
  void configure(std::string path, std::uint64_t cap) {
    box_.configure(std::move(path), cap);
  }

  /// Arms the concurrent push path (async scheduler). Without it,
  /// push_concurrent degrades to lock + spill-mailbox push.
  void enable_channel(std::size_t capacity) { channel_.emplace(capacity); }

  /// Exclusive-producer push: the caller must be the only producer at
  /// this moment — the strict scheduler's ordering chains substitute
  /// for mu_, and per-message locking on this hot path is exactly what
  /// the strict mode is designed to avoid, so the analysis is opted out
  /// rather than the lock taken.
  void push_serial(const T& msg) EBV_NO_THREAD_SAFETY_ANALYSIS {
    box_.push(msg);
  }

  /// Any-producer push: ring first; mutex-guarded spill overflow when
  /// the ring is full. Never blocks on channel state (a blocked task
  /// would occupy a finite-pool executor).
  void push_concurrent(const T& msg) EBV_EXCLUDES(mu_) {
    if (channel_.has_value() && channel_->try_push(msg)) return;
    MutexLock lock(mu_);
    box_.push(msg);
  }

  /// Owner-only: combining's in-place rewrite window (strict mode).
  /// Lock-free like push_serial — the returned reference is used across
  /// a whole superstep under the scheduler's exclusive-owner ordering,
  /// which no lock scope could express.
  [[nodiscard]] std::vector<T>& buffer() EBV_NO_THREAD_SAFETY_ANALYSIS {
    return box_.buffer();
  }

  /// Owner-only: every producer must be ordered before the caller.
  /// Cold bulk path, so it simply takes mu_ (uncontended by contract).
  template <typename Fn>
  void drain(Fn&& fn) EBV_EXCLUDES(mu_) {
    if (channel_.has_value()) {
      T msg;
      while (channel_->try_pop(msg)) fn(msg);
    }
    MutexLock lock(mu_);
    box_.drain(fn);
  }

  /// Owner-only non-consuming peek (checkpoint serialisation). Ring
  /// entries are folded into the spill mailbox first so they are both
  /// visited and retained; within-mailbox order may differ from a
  /// subsequent drain under async, which its contract permits.
  template <typename Fn>
  void for_each(Fn&& fn) EBV_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (channel_.has_value()) {
      T msg;
      while (channel_->try_pop(msg)) box_.push(msg);
    }
    box_.for_each(fn);
  }

 private:
  std::optional<BoundedChannel<T>> channel_;
  Mutex mu_;
  /// Guarded on the concurrent paths; push_serial/buffer document their
  /// scheduler-ordered exemption above.
  SpillMailbox<T> box_ EBV_GUARDED_BY(mu_);
};

}  // namespace ebv::bsp
