// Subgraph-centric bulk-synchronous-parallel runtime (paper §IV-B).
//
// Execution is organised in supersteps with the paper's three stages:
//   1. computation     — every worker runs the program's local compute over
//                        its subgraph (typically to *local* convergence:
//                        that is the subgraph-centric advantage);
//   2. communication   — replica synchronisation: mirrors send accumulated
//                        values to masters (1 message each), masters merge
//                        with the program's combine()/apply() and broadcast
//                        changes back to mirrors (1 message per mirror);
//   3. synchronisation — a barrier; its cost is the max-minus-min skew ΔC.
//
// Programs exchange values through WorkerContext::emit(local, value); the
// runtime owns all routing and counts every inter-worker message, which is
// the paper's platform-independent comparison metric (§V-C).
//
// Residency: with RunOptions::resident_workers = k < p the runtime holds
// at most k materialised worker subgraphs at a time (loading them from a
// spilled DistributedGraph's EBVW snapshot), parking inter-group messages
// in spillable mailboxes — same results, bounded memory.
//
// Scheduling: each superstep is a per-worker task graph — compute+route,
// master-merge, mirror-install, plus loader/release tasks that prefetch
// the next residency group while the current one computes — executed by
// a work-stealing scheduler (common/task_graph.h). The default strict
// mode serialises mailbox appends on deterministic ordering chains, so
// supersteps, messages, values and virtual time are bit-identical to the
// historical three-sweep schedule at every budget; the opt-in async mode
// relaxes the ordering (docs/ARCHITECTURE.md, "Task-graph scheduler").
#pragma once

#include <any>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bsp/cost_model.h"
#include "bsp/distributed_graph.h"

namespace ebv::bsp {

/// Universal vertex value. doubles represent CC labels and BFS hop counts
/// exactly (integers < 2^53), SSSP distances, and PageRank mass.
using Value = double;

class WorkerContext;

/// A subgraph-centric program. One instance is shared by all workers (it
/// must be stateless apart from configuration); per-vertex state lives in
/// the runtime's value arrays.
class SubgraphProgram {
 public:
  virtual ~SubgraphProgram() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Initial value of global vertex v.
  [[nodiscard]] virtual Value init_value(VertexId global) const = 0;

  /// Merge two emitted values for the same vertex (min for CC/SSSP/BFS,
  /// sum for PageRank partials). Must be associative and commutative.
  [[nodiscard]] virtual Value combine(Value a, Value b) const = 0;

  /// Whether the master folds the vertex's current value into the combine
  /// (true for monotonic programs; false when emissions are partial
  /// aggregates that replace the value, as in PageRank).
  [[nodiscard]] virtual bool combine_with_current() const { return true; }

  /// Master-side transform applied after combining, before broadcast.
  /// PageRank applies teleport + damping here. Default: identity.
  [[nodiscard]] virtual Value apply([[maybe_unused]] VertexId global,
                                    Value combined) const {
    return combined;
  }

  /// Local computation for one superstep. Read/write values via ctx;
  /// report emitted updates with ctx.emit() and work with ctx.add_work().
  virtual void compute(WorkerContext& ctx, std::uint32_t superstep) const = 0;

  /// If set, the runtime executes exactly this many supersteps (PageRank);
  /// otherwise it halts when a superstep changes no value anywhere.
  [[nodiscard]] virtual std::optional<std::uint32_t> fixed_supersteps()
      const {
    return std::nullopt;
  }

  /// Rebuild per-worker scratch (WorkerContext::state()) after a
  /// checkpoint restore, before the superstep loop re-enters at
  /// `next_superstep` (always >= 1). Programs that build scratch lazily
  /// at superstep 0 (CC's union-find) must override this; the runtime
  /// discards the restore context's work accounting, so the rebuild
  /// costs no virtual time and bit-identity is preserved. Default: no-op
  /// for programs whose compute() keeps no persistent scratch.
  virtual void restore_state([[maybe_unused]] WorkerContext& ctx,
                             [[maybe_unused]] std::uint32_t next_superstep)
      const {}
};

/// Per-superstep real-time attribution across the scheduler's task
/// kinds, summed over all workers (RunOptions::phase_stats; diagnostic
/// only — real seconds, not the virtual-time cost model, and never part
/// of the bit-identity contract). In async mode the phases nest: route
/// runs inside the compute task and broadcast inside merge, so their
/// seconds are counted in both rows.
struct PhaseWallStats {
  double compute_seconds = 0.0;
  double route_seconds = 0.0;
  double merge_seconds = 0.0;
  double broadcast_seconds = 0.0;
  double install_seconds = 0.0;
  double load_seconds = 0.0;
  double release_seconds = 0.0;
  /// Wall time of the whole superstep task graph (phases overlap under
  /// kParallel, so the per-phase sums can exceed this).
  double superstep_seconds = 0.0;
};

/// Per-worker, per-superstep instrumentation (virtual time).
struct WorkerStepStats {
  double comp_seconds = 0.0;
  double comm_seconds = 0.0;
  std::uint64_t work_units = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
};

/// Full run result: final values + the measurements behind Tables II/IV/V
/// and Figures 2/3/4.
struct RunStats {
  std::uint32_t supersteps = 0;
  /// steps[k][i] — superstep k, worker i.
  std::vector<std::vector<WorkerStepStats>> steps;

  double execution_seconds = 0.0;  // Σ_k (max_i(comp+comm) + latency)
  double comp_seconds = 0.0;       // paper `comp`:  Σ_i Σ_k comp_k_i / p
  double comm_seconds = 0.0;       // paper `comm`:  Σ_i Σ_k comm_k_i / p
  double delta_c_seconds = 0.0;    // paper ΔC: Σ_k (max_i − min_i)(comp+comm)
  double wall_seconds = 0.0;       // real harness time (diagnostic only)

  /// Per-superstep wall breakdown; empty unless RunOptions::phase_stats.
  /// On a resumed run only the post-restore supersteps appear (rows
  /// align with the LAST phase_wall.size() supersteps). Diagnostic only.
  std::vector<PhaseWallStats> phase_wall;

  /// Process CPU seconds consumed by the run (diagnostic only; paired
  /// with wall_seconds, cpu/wall approximates busy cores).
  double cpu_seconds = 0.0;

  std::uint64_t total_messages = 0;
  /// Messages before combining (RunOptions::combine_messages): every
  /// mirror→master emission and master broadcast counts here even when a
  /// pending same-vertex message absorbed it. Equal to total_messages
  /// when combining is off — which is how the paper's Table IV counts.
  std::uint64_t raw_messages = 0;
  std::vector<std::uint64_t> messages_sent_per_worker;

  /// High-water mark of simultaneously materialised worker subgraphs
  /// (0 for a resident DistributedGraph, which never loads; p for a
  /// spilled graph under an unbounded budget). Diagnostic only — never
  /// part of the bit-identity contract — but under a bounded budget the
  /// scheduler guarantees peak_resident_workers <= resident_workers in
  /// EVERY schedule, steal order included (pinned by spill_run_test).
  std::uint32_t peak_resident_workers = 0;

  /// Final vertex values indexed by global id (uncovered vertices keep
  /// their init_value).
  std::vector<Value> values;
};

/// How the computation stage executes. Virtual-time accounting and all
/// results are identical under both policies (workers touch disjoint
/// state); kParallel uses one OS thread per worker for wall-clock speed
/// on multi-core hosts.
enum class ExecutionPolicy { kSequential, kParallel };

/// How the superstep task graph orders communication.
enum class SchedulerMode {
  /// Mirror routing and master broadcasts run on deterministic ordering
  /// chains (ascending worker id), so every mailbox's append order — and
  /// therefore the master's fold order — matches the historical sweep
  /// schedule exactly. Results are bit-identical at every residency
  /// budget and thread count. The default.
  kStrict,
  /// Relaxed ordering: routing, merges and installs run concurrently,
  /// with dependencies derived from the routing tables (a master merges
  /// once all its senders routed; a mirror installs once all its masters
  /// merged), so no message is lost or deferred — the relaxation is the
  /// ARRIVAL ORDER within a mailbox, not delivery. Superstep counts,
  /// message counts and virtual time are unchanged; programs whose
  /// combine() is order-insensitive over doubles (min/max: CC, SSSP,
  /// BFS) produce bit-identical values, while float sums (PageRank) may
  /// differ in final bits. Rejected with combine_messages (combining
  /// decisions depend on arrival order).
  kAsync,
};

/// Runtime options.
struct RunOptions {
  ClusterCostModel cost_model;
  /// Hard cap to guard against non-converging programs.
  std::uint32_t max_supersteps = 10'000;
  ExecutionPolicy policy = ExecutionPolicy::kSequential;
  /// Upper bound on the kParallel task-graph team size (same rule as
  /// PartitionConfig::num_threads: the knob bounds the fan-out exactly,
  /// the shared pool only carries the ranks). 0 = use the whole pool.
  std::uint32_t num_threads = 0;
  /// Superstep ordering; see SchedulerMode. Results under kStrict (the
  /// default) are independent of policy/num_threads/prefetch.
  SchedulerMode scheduler = SchedulerMode::kStrict;
  /// Under a bounded residency budget of k >= 2, shrink the residency
  /// groups to ⌊k/2⌋ so a loader task maps group g+1's EBVW sections
  /// while group g computes — double buffering, with current + next
  /// group together still inside the budget. Results are bit-identical
  /// either way: the strict contract holds for every budget, hence for
  /// every grouping; the knob only trades group granularity for
  /// compute/I-O overlap.
  bool prefetch = true;

  /// Residency budget: at most this many workers' subgraphs materialised
  /// at a time. 0 (or >= p) keeps everything resident — the exact
  /// pre-existing behaviour. With a budget of k < p each superstep's
  /// task graph gates compute/merge/install tasks on per-group loader
  /// and release tasks (at most k workers materialised; see prefetch),
  /// with inter-group messages parked in mailboxes until the
  /// destination becomes resident. Supersteps,
  /// message counts, final values and virtual-time accounting are
  /// BIT-IDENTICAL for every budget. Only a spilled DistributedGraph
  /// actually frees memory; a resident one just runs the same schedule.
  std::uint32_t resident_workers = 0;

  /// Directory for runtime spill state: destination mailboxes that
  /// outgrow mailbox_buffer_messages overflow to append-only files here
  /// (created lazily, removed when drained). Empty = mailboxes stay
  /// fully in memory. Also doubles as the analysis drivers' home for the
  /// EBVW worker snapshot (see analysis::run_with_partition).
  std::string spill_dir;

  /// In-memory bound per destination mailbox before overflowing to a
  /// spill file (needs spill_dir and a bounded residency budget;
  /// otherwise mailboxes simply grow).
  std::uint64_t mailbox_buffer_messages = 1u << 15;

  /// Crash consistency: when non-empty (and checkpoint_every > 0) the
  /// runtime serialises an EBVC checkpoint of the superstep cut into
  /// this directory at the configured cadence — per-worker values,
  /// last-synced values, update frontier, undrained mailbox contents and
  /// accumulated RunStats — under an atomic temp-fsync-rename protocol
  /// (bsp/checkpoint.h). Never written after the final superstep, so a
  /// resumed run never replays past convergence.
  std::string checkpoint_dir;

  /// Checkpoint cadence in supersteps; 0 disables checkpointing.
  std::uint32_t checkpoint_every = 0;

  /// Resume from the newest readable checkpoint in checkpoint_dir
  /// (scanning back past torn files; starting from scratch when none is
  /// readable). The resumed run is BIT-IDENTICAL to the uninterrupted
  /// one — values, supersteps, message counts, virtual time — at every
  /// resident_workers × prefetch × scheduler combination. Rejects a
  /// checkpoint whose graph shape or program name does not match.
  bool resume = false;

  /// Collect the per-superstep × per-phase wall breakdown into
  /// RunStats::phase_wall (`run --phase-stats`). Costs two clock reads
  /// per task when on; zero instrumentation when off. Output tables and
  /// results are unchanged either way — the breakdown is additive.
  bool phase_stats = false;

  /// Opt-in combining: merge same-destination-vertex mirror→master
  /// messages with the program's combine() before enqueue, PowerGraph
  /// style. Default off, so Table-IV-style message counts are unchanged;
  /// RunStats::raw_messages reports the pre-combining count either way.
  /// Combining changes the master's fold order, so float-summing
  /// programs (PageRank) may differ in final bits from the uncombined
  /// run; min/max programs (CC, SSSP, BFS) do not.
  bool combine_messages = false;
};

class BspRuntime {
 public:
  explicit BspRuntime(RunOptions options = RunOptions()) : options_(options) {}

  /// Execute `program` over the distributed graph until convergence (or
  /// the program's fixed superstep count).
  RunStats run(const DistributedGraph& graph,
               const SubgraphProgram& program) const;

 private:
  RunOptions options_;
};

/// The program's window into one worker. Created by the runtime.
class WorkerContext {
 public:
  WorkerContext(const LocalSubgraph& local, std::vector<Value>& values,
                std::vector<Value>& acc, std::vector<std::uint8_t>& has_acc,
                std::vector<VertexId>& emitted, const SubgraphProgram& program)
      : local_(local),
        values_(values),
        acc_(acc),
        has_acc_(has_acc),
        emitted_(emitted),
        program_(program) {}

  [[nodiscard]] const LocalSubgraph& local() const { return local_; }

  [[nodiscard]] Value value(VertexId local_v) const { return values_[local_v]; }
  void set_value(VertexId local_v, Value v) { values_[local_v] = v; }

  /// Emit an update for a local vertex; the runtime combines emissions
  /// across replicas during the communication stage.
  void emit(VertexId local_v, Value v) {
    if (has_acc_[local_v] != 0) {
      acc_[local_v] = program_.combine(acc_[local_v], v);
    } else {
      acc_[local_v] = v;
      has_acc_[local_v] = 1;
      emitted_.push_back(local_v);
    }
  }

  /// Local vertices whose values changed in the previous communication
  /// stage — the frontier for incremental programs.
  [[nodiscard]] const std::vector<VertexId>& updated() const {
    return *updated_;
  }

  /// Account `units` of local work (≈ edges traversed).
  void add_work(std::uint64_t units) { work_units_ += units; }
  [[nodiscard]] std::uint64_t work_units() const { return work_units_; }

  /// Per-worker scratch that persists across supersteps (e.g. CC keeps its
  /// precomputed local components here). Empty on the first superstep.
  [[nodiscard]] std::any& state() { return *state_; }

 private:
  friend class BspRuntime;
  const LocalSubgraph& local_;
  std::vector<Value>& values_;
  std::vector<Value>& acc_;
  std::vector<std::uint8_t>& has_acc_;
  std::vector<VertexId>& emitted_;
  const SubgraphProgram& program_;
  const std::vector<VertexId>* updated_ = nullptr;
  std::any* state_ = nullptr;
  std::uint64_t work_units_ = 0;
};

}  // namespace ebv::bsp
