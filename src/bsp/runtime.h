// Subgraph-centric bulk-synchronous-parallel runtime (paper §IV-B).
//
// Execution is organised in supersteps with the paper's three stages:
//   1. computation     — every worker runs the program's local compute over
//                        its subgraph (typically to *local* convergence:
//                        that is the subgraph-centric advantage);
//   2. communication   — replica synchronisation: mirrors send accumulated
//                        values to masters (1 message each), masters merge
//                        with the program's combine()/apply() and broadcast
//                        changes back to mirrors (1 message per mirror);
//   3. synchronisation — a barrier; its cost is the max-minus-min skew ΔC.
//
// Programs exchange values through WorkerContext::emit(local, value); the
// runtime owns all routing and counts every inter-worker message, which is
// the paper's platform-independent comparison metric (§V-C).
#pragma once

#include <any>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bsp/cost_model.h"
#include "bsp/distributed_graph.h"

namespace ebv::bsp {

/// Universal vertex value. doubles represent CC labels and BFS hop counts
/// exactly (integers < 2^53), SSSP distances, and PageRank mass.
using Value = double;

class WorkerContext;

/// A subgraph-centric program. One instance is shared by all workers (it
/// must be stateless apart from configuration); per-vertex state lives in
/// the runtime's value arrays.
class SubgraphProgram {
 public:
  virtual ~SubgraphProgram() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Initial value of global vertex v.
  [[nodiscard]] virtual Value init_value(VertexId global) const = 0;

  /// Merge two emitted values for the same vertex (min for CC/SSSP/BFS,
  /// sum for PageRank partials). Must be associative and commutative.
  [[nodiscard]] virtual Value combine(Value a, Value b) const = 0;

  /// Whether the master folds the vertex's current value into the combine
  /// (true for monotonic programs; false when emissions are partial
  /// aggregates that replace the value, as in PageRank).
  [[nodiscard]] virtual bool combine_with_current() const { return true; }

  /// Master-side transform applied after combining, before broadcast.
  /// PageRank applies teleport + damping here. Default: identity.
  [[nodiscard]] virtual Value apply([[maybe_unused]] VertexId global,
                                    Value combined) const {
    return combined;
  }

  /// Local computation for one superstep. Read/write values via ctx;
  /// report emitted updates with ctx.emit() and work with ctx.add_work().
  virtual void compute(WorkerContext& ctx, std::uint32_t superstep) const = 0;

  /// If set, the runtime executes exactly this many supersteps (PageRank);
  /// otherwise it halts when a superstep changes no value anywhere.
  [[nodiscard]] virtual std::optional<std::uint32_t> fixed_supersteps()
      const {
    return std::nullopt;
  }
};

/// Per-worker, per-superstep instrumentation (virtual time).
struct WorkerStepStats {
  double comp_seconds = 0.0;
  double comm_seconds = 0.0;
  std::uint64_t work_units = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
};

/// Full run result: final values + the measurements behind Tables II/IV/V
/// and Figures 2/3/4.
struct RunStats {
  std::uint32_t supersteps = 0;
  /// steps[k][i] — superstep k, worker i.
  std::vector<std::vector<WorkerStepStats>> steps;

  double execution_seconds = 0.0;  // Σ_k (max_i(comp+comm) + latency)
  double comp_seconds = 0.0;       // paper `comp`:  Σ_i Σ_k comp_k_i / p
  double comm_seconds = 0.0;       // paper `comm`:  Σ_i Σ_k comm_k_i / p
  double delta_c_seconds = 0.0;    // paper ΔC: Σ_k (max_i − min_i)(comp+comm)
  double wall_seconds = 0.0;       // real harness time (diagnostic only)

  std::uint64_t total_messages = 0;
  std::vector<std::uint64_t> messages_sent_per_worker;

  /// Final vertex values indexed by global id (uncovered vertices keep
  /// their init_value).
  std::vector<Value> values;
};

/// How the computation stage executes. Virtual-time accounting and all
/// results are identical under both policies (workers touch disjoint
/// state); kParallel uses one OS thread per worker for wall-clock speed
/// on multi-core hosts.
enum class ExecutionPolicy { kSequential, kParallel };

/// Runtime options.
struct RunOptions {
  ClusterCostModel cost_model;
  /// Hard cap to guard against non-converging programs.
  std::uint32_t max_supersteps = 10'000;
  ExecutionPolicy policy = ExecutionPolicy::kSequential;
  /// Upper bound on the kParallel computation stage's fan-out (same rule
  /// as PartitionConfig::num_threads: the knob bounds the stage exactly,
  /// the shared pool only carries the ranks). 0 = use the whole pool.
  std::uint32_t num_threads = 0;
};

class BspRuntime {
 public:
  explicit BspRuntime(RunOptions options = RunOptions()) : options_(options) {}

  /// Execute `program` over the distributed graph until convergence (or
  /// the program's fixed superstep count).
  RunStats run(const DistributedGraph& graph,
               const SubgraphProgram& program) const;

 private:
  RunOptions options_;
};

/// The program's window into one worker. Created by the runtime.
class WorkerContext {
 public:
  WorkerContext(const LocalSubgraph& local, std::vector<Value>& values,
                std::vector<Value>& acc, std::vector<std::uint8_t>& has_acc,
                std::vector<VertexId>& emitted, const SubgraphProgram& program)
      : local_(local),
        values_(values),
        acc_(acc),
        has_acc_(has_acc),
        emitted_(emitted),
        program_(program) {}

  [[nodiscard]] const LocalSubgraph& local() const { return local_; }

  [[nodiscard]] Value value(VertexId local_v) const { return values_[local_v]; }
  void set_value(VertexId local_v, Value v) { values_[local_v] = v; }

  /// Emit an update for a local vertex; the runtime combines emissions
  /// across replicas during the communication stage.
  void emit(VertexId local_v, Value v) {
    if (has_acc_[local_v] != 0) {
      acc_[local_v] = program_.combine(acc_[local_v], v);
    } else {
      acc_[local_v] = v;
      has_acc_[local_v] = 1;
      emitted_.push_back(local_v);
    }
  }

  /// Local vertices whose values changed in the previous communication
  /// stage — the frontier for incremental programs.
  [[nodiscard]] const std::vector<VertexId>& updated() const {
    return *updated_;
  }

  /// Account `units` of local work (≈ edges traversed).
  void add_work(std::uint64_t units) { work_units_ += units; }
  [[nodiscard]] std::uint64_t work_units() const { return work_units_; }

  /// Per-worker scratch that persists across supersteps (e.g. CC keeps its
  /// precomputed local components here). Empty on the first superstep.
  [[nodiscard]] std::any& state() { return *state_; }

 private:
  friend class BspRuntime;
  const LocalSubgraph& local_;
  std::vector<Value>& values_;
  std::vector<Value>& acc_;
  std::vector<std::uint8_t>& has_acc_;
  std::vector<VertexId>& emitted_;
  const SubgraphProgram& program_;
  const std::vector<VertexId>* updated_ = nullptr;
  std::any* state_ = nullptr;
  std::uint64_t work_units_ = 0;
};

}  // namespace ebv::bsp
