// EBVW worker-spill snapshots ("DistributedSnapshot"): the on-disk form
// of a DistributedGraph's per-worker subgraphs, built on the same
// page-aligned section machinery as EBVS graph snapshots
// (graph/section_io.h).
//
// Layout (byte-level spec in docs/FORMATS.md): a 4 KiB header page —
// magic "EBVW", version, endianness marker, worker count, global counts,
// flags, worker-table location — followed by each worker's six raw
// little-endian sections, every section starting at a 4096-byte-aligned
// offset, and finally the worker table (one entry per worker with its
// vertex/edge counts and section offsets/lengths):
//
//   global_ids    u32 × |Vi|, ascending (local id = position)
//   edges         Edge{u32 src, u32 dst} × |Ei|, LOCAL endpoints, in
//                 ascending global edge id order
//   weights       f32 × |Ei| (absent when the graph is unweighted)
//   flags         u8 × |Vi|; bit 0 = replicated, bit 1 = master
//   master_part   u32 × |Vi| (kInvalidPartition never appears: every
//                 local vertex is covered by ≥ 1 edge here)
//   out_degree    u32 × |Vi| — the vertex's GLOBAL out-degree
//
// The writer consumes one fully-built LocalSubgraph at a time (workers
// ascending), so DistributedGraph can spill during construction without
// ever holding the p-worker aggregate; the reader maps the file
// read-only and materialises single workers on demand — the residency
// bound behind `ebvpart run --resident-workers k`.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "bsp/local_subgraph.h"
#include "graph/section_io.h"

namespace ebv::bsp {

namespace detail {

/// On-disk worker-table entry (112 bytes; docs/FORMATS.md). ONE struct
/// shared by writer and reader, memcpy'd to/from the file verbatim, so
/// the two sides cannot drift apart.
struct SpillWorkerEntry {
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t sec_offset[6] = {};
  std::uint64_t sec_bytes[6] = {};
};
static_assert(sizeof(SpillWorkerEntry) == 112,
              "EBVW worker-table entry layout is part of the format");

}  // namespace detail

/// Streaming producer of an EBVW file. Workers must be written in
/// ascending part order, exactly `num_workers` of them, then finish()
/// called exactly once. The destructor removes a file that was never
/// finished, so an exception mid-spill cannot leave a truncated snapshot
/// behind. Throws std::runtime_error on I/O failure.
class SpillStoreWriter {
 public:
  SpillStoreWriter(const std::string& path, PartitionId num_workers,
                   VertexId num_global_vertices, EdgeId num_global_edges,
                   bool weighted);
  ~SpillStoreWriter();
  SpillStoreWriter(const SpillStoreWriter&) = delete;
  SpillStoreWriter& operator=(const SpillStoreWriter&) = delete;

  /// Append the next worker's sections. `ls.part` must equal the number
  /// of workers written so far; CSRs are not serialised (loads rebuild
  /// them) and may be left unbuilt.
  void write_worker(const LocalSubgraph& ls);

  /// Write the worker table, patch the header, flush. Requires all
  /// `num_workers` workers written.
  void finish();

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t cursor_ = 0;
  PartitionId num_workers_ = 0;
  EdgeId num_global_edges_ = 0;
  bool weighted_ = false;
  bool finished_ = false;
  std::vector<detail::SpillWorkerEntry> table_;
};

/// An EBVW snapshot mapped read-only. Opening validates the header and
/// the whole worker table (magic, version, endianness, counts, bounds,
/// alignment, Σ|Ei| = |E|); section contents are trusted — they are
/// produced and consumed by this pair of classes only. load_worker()
/// materialises one worker's LocalSubgraph from its sections; everything
/// else stays as reclaimable page cache.
class SpillStore {
 public:
  explicit SpillStore(const std::string& path);

  [[nodiscard]] PartitionId num_workers() const { return num_workers_; }
  [[nodiscard]] VertexId num_global_vertices() const {
    return num_global_vertices_;
  }
  [[nodiscard]] EdgeId num_global_edges() const { return num_global_edges_; }
  [[nodiscard]] bool weighted() const { return weighted_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::size_t mapped_bytes() const { return file_.size(); }

  /// Materialise worker i. `build_csr = false` skips the three local
  /// adjacency CSRs — the runtime's communication-only sweeps route by
  /// id tables and flags alone, so their loads are O(|Vi| + |Ei|) copies
  /// with no CSR construction.
  [[nodiscard]] LocalSubgraph load_worker(PartitionId i,
                                          bool build_csr = true) const;

 private:
  io::detail::MappedFile file_;
  std::string path_;
  PartitionId num_workers_ = 0;
  VertexId num_global_vertices_ = 0;
  EdgeId num_global_edges_ = 0;
  bool weighted_ = false;
  // Validated copy of the on-disk worker table.
  std::vector<detail::SpillWorkerEntry> table_;
};

}  // namespace ebv::bsp
