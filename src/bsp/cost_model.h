// Deterministic virtual-time cost model for the simulated cluster.
//
// The paper evaluates on a 4-node cluster (8 CPUs/node). This repository
// runs the same BSP protocol in one process and converts the *measured*
// work and message volumes into seconds with fixed machine constants, so
// every experiment is bit-reproducible on any host (DESIGN.md §4):
//
//   comp_i(step)  = work_units_i × work_unit_us
//   comm_i(step)  = msgs_local × msg_local_us + msgs_remote × msg_remote_us
//   step duration = max_i (comp_i + comm_i) + superstep_latency_us
//   ΔC(step)      = max_i(comp_i + comm_i) − min_i(comp_i + comm_i)
//
// Workers are laid out round-robin-free (contiguous) over simulated nodes
// of `workers_per_node`; messages between co-located workers use the
// cheaper local rate.
#pragma once

#include <cstdint>

#include "common/assert.h"

namespace ebv::bsp {

struct ClusterCostModel {
  /// Cost of one unit of local compute (≈ one edge traversal), microseconds.
  /// Calibrated against the paper's Table II: CC over LiveJournal touches
  /// each edge a handful of times and spends ~21 s of comp on 4 workers;
  /// our per-edge figure reproduces the same comp:comm ratio (~20:1).
  double work_unit_us = 0.05;
  /// Per-message cost between workers on different simulated nodes.
  /// Real MPI frameworks batch replica updates, so the effective per-value
  /// cost is on the order of the per-edge compute cost, not a wire RTT.
  double msg_remote_us = 0.1;
  /// Per-message cost between workers on the same simulated node.
  double msg_local_us = 0.03;
  /// Fixed barrier/round latency charged once per superstep.
  double superstep_latency_us = 200.0;
  /// Workers per simulated node (paper: 8 CPUs per node). Must be >= 1:
  /// same_node() divides by it. Consumers call validate() at their entry
  /// points (BspRuntime::run, the engines) so a zero from a config
  /// surface fails with a clear error instead of integer-division UB.
  std::uint32_t workers_per_node = 8;

  /// Throws std::invalid_argument (EBV_REQUIRE) on unusable constants.
  void validate() const {
    EBV_REQUIRE(workers_per_node >= 1,
                "cost model: workers_per_node must be >= 1 (node placement "
                "divides by it)");
  }

  [[nodiscard]] bool same_node(std::uint32_t worker_a,
                               std::uint32_t worker_b) const {
    return worker_a / workers_per_node == worker_b / workers_per_node;
  }

  [[nodiscard]] double comp_seconds(std::uint64_t work_units) const {
    return static_cast<double>(work_units) * work_unit_us * 1e-6;
  }

  [[nodiscard]] double comm_seconds(std::uint64_t msgs_local,
                                    std::uint64_t msgs_remote) const {
    return (static_cast<double>(msgs_local) * msg_local_us +
            static_cast<double>(msgs_remote) * msg_remote_us) *
           1e-6;
  }

  [[nodiscard]] double latency_seconds() const {
    return superstep_latency_us * 1e-6;
  }
};

}  // namespace ebv::bsp
