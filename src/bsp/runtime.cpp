#include "bsp/runtime.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "bsp/checkpoint.h"
#include "bsp/mailbox.h"
#include "common/assert.h"
#include "common/failpoint.h"
#include "common/parallel.h"
#include "common/task_graph.h"
#include "common/timer.h"
#include "common/unique_id.h"
#include "obs/trace.h"

namespace ebv::bsp {
namespace {

using MsgBox = SharedMailbox<WireMessage>;

/// Relaxed add for the phase-wall accumulators (tasks of the same phase
/// run concurrently under kParallel).
void add_seconds(std::atomic<double>& slot, double seconds) {
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + seconds,
                                     std::memory_order_relaxed)) {
  }
}

/// Per-superstep phase accumulators (plain atomics, reduced into
/// RunStats::phase_wall at the barrier).
struct PhaseWallAccum {
  std::atomic<double> compute{0.0};
  std::atomic<double> route{0.0};
  std::atomic<double> merge{0.0};
  std::atomic<double> broadcast{0.0};
  std::atomic<double> install{0.0};
  std::atomic<double> load{0.0};
  std::atomic<double> release{0.0};
};

/// RAII wall-clock attribution into one phase slot; a null slot (the
/// phase-stats flag off, or outside the superstep loop) reads no clock
/// at all, keeping the off path free.
class PhaseTimer {
 public:
  explicit PhaseTimer(std::atomic<double>* slot) : slot_(slot) {
    if (slot_ != nullptr) begin_ = std::chrono::steady_clock::now();
  }
  ~PhaseTimer() {
    if (slot_ != nullptr) {
      add_seconds(*slot_,
                  std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - begin_)
                      .count());
    }
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  std::atomic<double>* slot_;
  std::chrono::steady_clock::time_point begin_{};
};

/// Ring capacity of the async push path's bounded channel; a push that
/// finds the ring full falls back to the mutex-guarded spill mailbox
/// (the backpressure path). Strict mode never arms the channel.
constexpr std::size_t kChannelCapacity = 1024;

[[noreturn]] void fail_nan(const SubgraphProgram& program, VertexId gv,
                           std::uint32_t step) {
  throw std::runtime_error(
      "bsp: program '" + program.name() + "' produced NaN for vertex " +
      std::to_string(gv) + " in superstep " + std::to_string(step) +
      "; NaN never compares equal to itself, so the change-driven halting "
      "test would burn max_supersteps without converging");
}

}  // namespace

RunStats BspRuntime::run(const DistributedGraph& graph,
                         const SubgraphProgram& program) const {
  const Timer wall;
  const double cpu_start = process_cpu_seconds();
  // Phase-wall accumulator for the superstep currently executing; null
  // whenever --phase-stats is off or between supersteps (the init and
  // gather stages), so the instrumented lambdas below stay free.
  std::atomic<double>* load_slot = nullptr;
  std::atomic<double>* release_slot = nullptr;
  const PartitionId p = graph.num_workers();
  EBV_REQUIRE(p >= 1, "need at least one worker");
  options_.cost_model.validate();
  const bool async = options_.scheduler == SchedulerMode::kAsync;
  EBV_REQUIRE(!(async && options_.combine_messages),
              "the async scheduler cannot combine messages: combining "
              "decisions depend on mailbox arrival order, which async "
              "execution leaves unordered");
  const ClusterCostModel& cost = options_.cost_model;

  // --- Residency plan ---------------------------------------------------
  // k workers materialised at a time; k == p (the default) is the
  // all-resident schedule. For a spilled graph the cache below holds the
  // materialised workers; for a resident graph it stays empty and sub()
  // reads graph.local() directly, so the bounded schedule is runnable —
  // and bit-identical — on both representations.
  PartitionId k = options_.resident_workers;
  if (k == 0 || k > p) k = p;
  const bool spilled = graph.spilled();
  const bool bounded = k < p;
  const bool with_loads = spilled && bounded;
  // Prefetch shrinks the residency groups to ⌊k/2⌋ so the loader task
  // for group g+1 can run while group g computes, current + next group
  // together still inside the budget. Legal because strict results are
  // pinned bit-identical for every budget, hence for every grouping.
  const bool prefetch = options_.prefetch && with_loads && k >= 2;
  const PartitionId group_size =
      bounded ? (prefetch ? std::max<PartitionId>(1, k / 2) : k) : p;
  struct Group {
    PartitionId first;
    PartitionId last;
  };
  std::vector<Group> groups;
  for (PartitionId g = 0; g < p; g += group_size) {
    groups.push_back({g, std::min<PartitionId>(g + group_size, p)});
  }
  const std::size_t ng = groups.size();

  std::vector<std::unique_ptr<LocalSubgraph>> cache;
  if (spilled) cache.resize(p);

  // Observed-residency accounting: every materialisation/release of a
  // worker subgraph moves resident_now, and resident_peak records the
  // high-water mark. A loader and a (different group's) release task can
  // run concurrently under prefetch, hence atomics. Reported via
  // RunStats::peak_resident_workers and pinned <= k by tests.
  std::atomic<std::uint32_t> resident_now{0};
  std::atomic<std::uint32_t> resident_peak{0};

  auto sub = [&](PartitionId i) -> const LocalSubgraph& {
    return spilled ? *cache[i] : graph.local(i);
  };
  auto ensure_loaded = [&](PartitionId first, PartitionId last,
                           bool with_csr) {
    if (!spilled) return;
    const obs::trace::Span span("load", first);
    const PhaseTimer phase(load_slot);
    for (PartitionId i = first; i < last; ++i) {
      if (cache[i] == nullptr) {
        // An unbounded budget loads every worker once, CSRs included,
        // and keeps it; a bounded one materialises per phase.
        cache[i] = std::make_unique<LocalSubgraph>(
            graph.load_worker(i, with_csr || !bounded));
        const std::uint32_t now =
            1 + resident_now.fetch_add(1, std::memory_order_relaxed);
        std::uint32_t peak = resident_peak.load(std::memory_order_relaxed);
        while (now > peak &&
               !resident_peak.compare_exchange_weak(
                   peak, now, std::memory_order_relaxed)) {
        }
      }
    }
  };
  auto release = [&](PartitionId first, PartitionId last) {
    if (!spilled || !bounded) return;
    const obs::trace::Span span("release", first);
    const PhaseTimer phase(release_slot);
    for (PartitionId i = first; i < last; ++i) {
      if (cache[i] != nullptr) {
        cache[i].reset();
        resident_now.fetch_sub(1, std::memory_order_relaxed);
      }
    }
  };
  /// Run `body(first, last)` over the residency groups in ascending
  /// worker order (one-shot stages: value init and the final gather).
  auto for_each_group = [&](bool with_csr, auto&& body) {
    for (const Group& grp : groups) {
      ensure_loaded(grp.first, grp.last, with_csr);
      body(grp.first, grp.last);
      release(grp.first, grp.last);
    }
  };

  // --- Communication topology ------------------------------------------
  // senders_of[m] — workers that route mirror accumulators to master m;
  // masters_of[i] — masters that broadcast into worker i. Both ascending.
  // Derived once from the routing tables; these ARE the scheduler's
  // cross-worker dependencies (the strict chains need only the maxima,
  // the async mode the full peer sets).
  std::vector<std::vector<PartitionId>> senders_of(p);
  std::vector<std::vector<PartitionId>> masters_of(p);
  {
    std::vector<std::uint8_t> routes(static_cast<std::size_t>(p) * p, 0);
    for (VertexId gv = 0; gv < graph.num_global_vertices(); ++gv) {
      const auto parts = graph.parts_of(gv);
      if (parts.size() < 2) continue;
      const PartitionId m = graph.master_of(gv);
      for (const PartitionId i : parts) {
        if (i != m) routes[static_cast<std::size_t>(i) * p + m] = 1;
      }
    }
    for (PartitionId i = 0; i < p; ++i) {
      for (PartitionId m = 0; m < p; ++m) {
        if (routes[static_cast<std::size_t>(i) * p + m] != 0) {
          senders_of[m].push_back(i);
          masters_of[i].push_back(m);
        }
      }
    }
  }

  // --- Per-worker state (resident regardless of the budget: O(Σ|Vi|),
  // the same order as the routing tables) ------------------------------
  std::vector<std::vector<Value>> values(p);
  std::vector<std::vector<Value>> acc(p);
  std::vector<std::vector<std::uint8_t>> has_acc(p);
  std::vector<std::vector<VertexId>> emitted(p);
  std::vector<std::vector<VertexId>> updated(p);   // frontier after sync
  // last_sync[i][lv]: the value of a replicated vertex as of the last
  // replica synchronisation. Masters broadcast whenever the merged value
  // diverges from it — comparing against the *current* value would miss
  // improvements the master made in-place during local compute.
  std::vector<std::vector<Value>> last_sync(p);
  for_each_group(false, [&](PartitionId first, PartitionId last) {
    for (PartitionId i = first; i < last; ++i) {
      const LocalSubgraph& ls = sub(i);
      values[i].resize(ls.num_vertices());
      for (VertexId lv = 0; lv < ls.num_vertices(); ++lv) {
        values[i][lv] = program.init_value(ls.global_ids[lv]);
      }
      acc[i].assign(ls.num_vertices(), Value{});
      has_acc[i].assign(ls.num_vertices(), 0);
      last_sync[i] = values[i];
    }
  });

  // Mailboxes: to_master[j] / to_mirror[j] hold messages addressed to
  // worker j. File overflow engages only under a bounded budget with a
  // spill directory; combining keeps the to-master boxes in memory
  // (their pending messages must stay rewritable, and combining itself
  // bounds them at one entry per replicated vertex). The async mode arms
  // the bounded ring channel as the concurrent push path.
  std::vector<MsgBox> to_master(p);
  std::vector<MsgBox> to_mirror(p);
  if (bounded && !options_.spill_dir.empty()) {
    const std::string prefix =
        options_.spill_dir + "/ebv-mbox." + process_unique_suffix() + ".";
    for (PartitionId j = 0; j < p; ++j) {
      if (!options_.combine_messages) {
        to_master[j].configure(prefix + "ma" + std::to_string(j) + ".tmp",
                               options_.mailbox_buffer_messages);
      }
      to_mirror[j].configure(prefix + "mi" + std::to_string(j) + ".tmp",
                             options_.mailbox_buffer_messages);
    }
  }
  if (async) {
    for (PartitionId j = 0; j < p; ++j) {
      to_master[j].enable_channel(kChannelCapacity);
      to_mirror[j].enable_channel(kChannelCapacity);
    }
  }
  // Combining state: pending[j] maps a global vertex to its message's
  // index in to_master[j]'s buffer for the current superstep.
  std::vector<std::unordered_map<VertexId, std::size_t>> pending(
      options_.combine_messages ? p : 0);

  // Program-defined per-worker scratch, persistent across supersteps.
  std::vector<std::any> worker_state(p);
  // Staged master broadcasts: filled by merge(m), shipped by the strict
  // broadcast chain (async ships inline and leaves these empty).
  std::vector<std::vector<WireMessage>> bcast(p);

  RunStats stats;
  stats.messages_sent_per_worker.assign(p, 0);
  const std::optional<std::uint32_t> fixed = program.fixed_supersteps();

  // --- Checkpoint/restore (bsp/checkpoint.h) ---------------------------
  const bool checkpoint_on =
      !options_.checkpoint_dir.empty() && options_.checkpoint_every > 0;
  EBV_REQUIRE(!options_.resume || !options_.checkpoint_dir.empty(),
              "resume needs checkpoint_dir (--resume without "
              "--checkpoint-dir)");

  /// Snapshot the full superstep cut after `completed` barriers. Every
  /// field is either a plain copy of loop state or, for comp/comm, the
  /// still-undivided accumulation sums, so restoring them continues the
  /// identical float accumulation order.
  auto collect_checkpoint = [&](std::uint32_t completed) {
    Checkpoint ck;
    ck.completed_supersteps = completed;
    ck.num_workers = p;
    ck.num_global_vertices = graph.num_global_vertices();
    ck.num_global_edges = graph.num_global_edges();
    ck.program = program.name();
    ck.total_messages = stats.total_messages;
    ck.raw_messages = stats.raw_messages;
    ck.execution_seconds = stats.execution_seconds;
    ck.comp_seconds_sum = stats.comp_seconds;
    ck.comm_seconds_sum = stats.comm_seconds;
    ck.delta_c_seconds = stats.delta_c_seconds;
    ck.peak_resident_workers =
        resident_peak.load(std::memory_order_relaxed);
    ck.messages_sent_per_worker = stats.messages_sent_per_worker;
    ck.steps = stats.steps;
    ck.values = values;
    ck.last_sync = last_sync;
    ck.updated = updated;
    ck.to_master.resize(p);
    ck.to_mirror.resize(p);
    for (PartitionId j = 0; j < p; ++j) {
      to_master[j].for_each(
          [&](const WireMessage& msg) { ck.to_master[j].push_back(msg); });
      to_mirror[j].for_each(
          [&](const WireMessage& msg) { ck.to_mirror[j].push_back(msg); });
    }
    return ck;
  };

  std::uint32_t start_step = 0;
  if (options_.resume) {
    if (std::optional<Checkpoint> ck =
            load_latest_checkpoint(options_.checkpoint_dir)) {
      EBV_REQUIRE(
          ck->num_workers == p &&
              ck->num_global_vertices == graph.num_global_vertices() &&
              ck->num_global_edges == graph.num_global_edges() &&
              ck->program == program.name(),
          "resume: the checkpoint in checkpoint_dir was written by a "
          "different run (graph shape or program mismatch)");
      for (PartitionId i = 0; i < p; ++i) {
        EBV_REQUIRE(ck->values[i].size() == values[i].size(),
                    "resume: checkpoint worker state does not match this "
                    "partition");
      }
      start_step = ck->completed_supersteps;
      stats.supersteps = start_step;
      stats.steps = std::move(ck->steps);
      stats.execution_seconds = ck->execution_seconds;
      stats.comp_seconds = ck->comp_seconds_sum;
      stats.comm_seconds = ck->comm_seconds_sum;
      stats.delta_c_seconds = ck->delta_c_seconds;
      stats.total_messages = ck->total_messages;
      stats.raw_messages = ck->raw_messages;
      stats.messages_sent_per_worker =
          std::move(ck->messages_sent_per_worker);
      if (ck->peak_resident_workers >
          resident_peak.load(std::memory_order_relaxed)) {
        resident_peak.store(ck->peak_resident_workers,
                            std::memory_order_relaxed);
      }
      for (PartitionId i = 0; i < p; ++i) {
        values[i] = std::move(ck->values[i]);
        last_sync[i] = std::move(ck->last_sync[i]);
        updated[i] = std::move(ck->updated[i]);
        for (const WireMessage& msg : ck->to_master[i]) {
          to_master[i].push_serial(msg);
        }
        for (const WireMessage& msg : ck->to_mirror[i]) {
          to_mirror[i].push_serial(msg);
        }
      }
      if (start_step > 0) {
        // Programs rebuild their per-worker scratch; the throwaway
        // context discards any work accounting so virtual time stays
        // bit-identical to the uninterrupted run.
        for_each_group(true, [&](PartitionId first, PartitionId last) {
          for (PartitionId i = first; i < last; ++i) {
            WorkerContext ctx(sub(i), values[i], acc[i], has_acc[i],
                              emitted[i], program);
            ctx.updated_ = &updated[i];
            ctx.state_ = &worker_state[i];
            program.restore_state(ctx, start_step);
          }
        });
      }
    }
  }

  // Scheduler fan-out. The sequential policy runs each superstep's graph
  // serially in deterministic topological order; kParallel runs it on a
  // work-stealing team — the whole pool, or exactly num_threads when set.
  unsigned team = 1;
  if (options_.policy == ExecutionPolicy::kParallel) {
    team = options_.num_threads > 0
               ? static_cast<unsigned>(options_.num_threads)
               : ThreadPool::global().num_threads();
  }

  for (std::uint32_t step = start_step; step < options_.max_supersteps;
       ++step) {
    PhaseWallAccum phase_accum;
    if (options_.phase_stats) {
      load_slot = &phase_accum.load;
      release_slot = &phase_accum.release;
    }
    std::vector<WorkerStepStats> step_stats(p);
    // Per-sender counters, reduced after the graph drains. All are
    // owner-indexed plain arrays ordered by task dependencies — except
    // received, the one destination-indexed counter, which the async
    // mode's concurrent routers bump atomically.
    std::vector<std::uint64_t> msgs_local(p, 0);
    std::vector<std::uint64_t> msgs_remote(p, 0);
    std::vector<std::uint64_t> sent(p, 0);
    std::vector<std::uint64_t> raw(p, 0);
    std::vector<std::atomic<std::uint64_t>> received(p);
    std::vector<std::uint8_t> changed(p, 0);

    auto count_send = [&](PartitionId from, PartitionId to) {
      ++sent[from];
      received[to].fetch_add(1, std::memory_order_relaxed);
      if (cost.same_node(from, to)) {
        ++msgs_local[from];
      } else {
        ++msgs_remote[from];
      }
    };

    // --- Task bodies ---------------------------------------------------
    // compute(i): the program's local compute plus the worker-local half
    // of emission routing — single-copy vertices resolve in place.
    auto compute_worker = [&](PartitionId i) {
      const obs::trace::Span span("compute", i);
      const PhaseTimer phase(options_.phase_stats ? &phase_accum.compute
                                                  : nullptr);
      const LocalSubgraph& ls = sub(i);
      WorkerContext ctx(ls, values[i], acc[i], has_acc[i], emitted[i],
                        program);
      ctx.updated_ = &updated[i];
      ctx.state_ = &worker_state[i];
      program.compute(ctx, step);
      step_stats[i].work_units = ctx.work_units();
      step_stats[i].comp_seconds = cost.comp_seconds(ctx.work_units());
      updated[i].clear();
      for (const VertexId lv : emitted[i]) {
        if (ls.is_replicated[lv] != 0) continue;
        Value merged = acc[i][lv];
        if (program.combine_with_current()) {
          merged = program.combine(merged, values[i][lv]);
        }
        const Value next = program.apply(ls.global_ids[lv], merged);
        if (std::isnan(next)) fail_nan(program, ls.global_ids[lv], step);
        if (next != values[i][lv]) {
          values[i][lv] = next;
          updated[i].push_back(lv);
          changed[i] = 1;
        }
        has_acc[i][lv] = 0;
      }
      // Master replicas keep has_acc set; consumed by merge(i).
    };

    // route(i): ship mirror accumulators to their master parts. Strict
    // mode runs these on an ascending ordering chain so every to-master
    // mailbox sees the historical append order; async folds the routing
    // into compute(i) and pushes through the concurrent path.
    auto route_worker = [&](PartitionId i) {
      const obs::trace::Span span("route", i);
      const PhaseTimer phase(options_.phase_stats ? &phase_accum.route
                                                  : nullptr);
      const LocalSubgraph& ls = sub(i);
      for (const VertexId lv : emitted[i]) {
        if (ls.is_replicated[lv] == 0 || ls.is_master[lv] != 0) continue;
        const PartitionId m = ls.master_part[lv];
        const VertexId gv = ls.global_ids[lv];
        ++raw[i];
        bool enqueue = true;
        if (options_.combine_messages) {
          // A message for gv already pending at m? Merge into it.
          const auto [it, inserted] =
              pending[m].try_emplace(gv, to_master[m].buffer().size());
          if (!inserted) {
            WireMessage& msg = to_master[m].buffer()[it->second];
            msg.value = program.combine(msg.value, acc[i][lv]);
            enqueue = false;
          }
        }
        if (enqueue) {
          if (async) {
            to_master[m].push_concurrent({gv, acc[i][lv]});
          } else {
            to_master[m].push_serial({gv, acc[i][lv]});
          }
          count_send(i, m);
        }
        has_acc[i][lv] = 0;
      }
    };

    // broadcast(m): ship the values staged by merge(m) to every mirror
    // peer. Strict mode runs these on their own ascending chain, gated
    // behind the route chain so the two never interleave counter writes.
    auto broadcast_worker = [&](PartitionId m) {
      const obs::trace::Span span("broadcast", m);
      const PhaseTimer phase(options_.phase_stats ? &phase_accum.broadcast
                                                  : nullptr);
      for (const WireMessage& msg : bcast[m]) {
        for (const PartitionId peer : graph.parts_of(msg.global)) {
          if (peer == m) continue;
          ++raw[m];
          if (async) {
            to_mirror[peer].push_concurrent(msg);
          } else {
            to_mirror[peer].push_serial(msg);
          }
          count_send(m, peer);
        }
      }
      bcast[m].clear();
    };

    // merge(m): fold routed messages into the master's accumulators,
    // apply, and stage broadcasts for changed values.
    auto merge_worker = [&](PartitionId m) {
      const obs::trace::Span span("merge", m);
      const PhaseTimer phase(options_.phase_stats ? &phase_accum.merge
                                                  : nullptr);
      const LocalSubgraph& ls = sub(m);
      to_master[m].drain([&](const WireMessage& msg) {
        const VertexId lv = ls.local_of(msg.global);
        EBV_ASSERT(lv != kInvalidVertex);
        EBV_ASSERT(ls.is_master[lv] != 0);
        if (has_acc[m][lv] != 0) {
          acc[m][lv] = program.combine(acc[m][lv], msg.value);
        } else {
          acc[m][lv] = msg.value;
          has_acc[m][lv] = 1;
          emitted[m].push_back(lv);
        }
      });
      if (options_.combine_messages) pending[m].clear();

      for (const VertexId lv : emitted[m]) {
        if (has_acc[m][lv] == 0) continue;  // already resolved in compute
        if (ls.is_replicated[lv] == 0) continue;    // resolved in compute
        if (ls.is_master[lv] == 0) continue;        // mirror: routed away
        Value merged = acc[m][lv];
        if (program.combine_with_current()) {
          merged = program.combine(merged, values[m][lv]);
        }
        const Value next = program.apply(ls.global_ids[lv], merged);
        if (std::isnan(next)) fail_nan(program, ls.global_ids[lv], step);
        has_acc[m][lv] = 0;
        if (next != values[m][lv]) {
          values[m][lv] = next;
          updated[m].push_back(lv);
          changed[m] = 1;
        }
        if (next == last_sync[m][lv]) continue;  // mirrors are up to date
        last_sync[m][lv] = next;
        changed[m] = 1;
        bcast[m].push_back({ls.global_ids[lv], next});
      }
      emitted[m].clear();
      if (async) broadcast_worker(m);
    };

    // install(i): mirrors adopt broadcast values.
    auto install_worker = [&](PartitionId i) {
      const obs::trace::Span span("install", i);
      const PhaseTimer phase(options_.phase_stats ? &phase_accum.install
                                                  : nullptr);
      const LocalSubgraph& ls = sub(i);
      to_mirror[i].drain([&](const WireMessage& msg) {
        const VertexId lv = ls.local_of(msg.global);
        EBV_ASSERT(lv != kInvalidVertex);
        last_sync[i][lv] = msg.value;
        if (values[i][lv] != msg.value) {
          values[i][lv] = msg.value;
          updated[i].push_back(lv);
          changed[i] = 1;
        }
      });
      emitted[i].clear();  // all consumed (mirrors cleared acc in route)
    };

    // --- Superstep task graph ------------------------------------------
    // Three phases (compute+route, merge+broadcast, install), each with
    // optional per-group loader/release tasks under a binding budget.
    // The loads form one global chain across the phases (L1[0..],
    // L2[0..], L3[0..]) and so do the releases (Rel1[0..], Rel2[0..],
    // Rel3[0..], each gated on its chain predecessor); every load also
    // waits for the release `overlap` positions behind it in the global
    // load order. Chaining the releases makes that gate transitive —
    // when a load runs, EVERY earlier release outside its overlap window
    // has executed (not merely become ready), so at most `overlap`
    // groups are materialised at any instant under any steal schedule:
    // 2 × ⌊k/2⌋ ≤ k with prefetch, 1 × k without. In particular a group
    // is provably released before a later phase reloads it — without
    // the chain, a ready-but-unexecuted straggler release (e.g. phase
    // 1's second-to-last, which no later task would otherwise depend
    // on) could reset a subgraph AFTER phase 2 reloaded it, racing the
    // merge tasks reading it.
    const std::size_t overlap = prefetch ? 2 : 1;
    TaskGraph tg;
    constexpr TaskGraph::TaskId kNone = TaskGraph::kNone;
    std::vector<TaskGraph::TaskId> C(p), M(p), I(p);
    std::vector<TaskGraph::TaskId> R(async ? 0 : p);
    std::vector<TaskGraph::TaskId> B(async ? 0 : p);
    std::vector<TaskGraph::TaskId> L1(ng, kNone), Rel1(ng, kNone);
    std::vector<TaskGraph::TaskId> L2(ng, kNone), Rel2(ng, kNone);
    std::vector<TaskGraph::TaskId> L3(ng, kNone), Rel3(ng, kNone);
    TaskGraph::TaskId prev_rel = kNone;  // release-chain tail

    // Phase 1: load(csr) → compute (+ local resolve) → route → release.
    TaskGraph::TaskId prev_r = kNone;
    for (std::size_t g = 0; g < ng; ++g) {
      const Group grp = groups[g];
      if (with_loads) {
        L1[g] = tg.add(
            [&, grp] { ensure_loaded(grp.first, grp.last, true); },
            {g > 0 ? L1[g - 1] : kNone,
             g >= overlap ? Rel1[g - overlap] : kNone});
      }
      for (PartitionId i = grp.first; i < grp.last; ++i) {
        C[i] = tg.add(
            [&, i] {
              compute_worker(i);
              if (async) route_worker(i);
            },
            {L1[g]});
        if (!async) {
          R[i] = tg.add([&, i] { route_worker(i); }, {C[i], prev_r});
          prev_r = R[i];
        }
      }
      if (with_loads) {
        Rel1[g] = tg.add([&, grp] { release(grp.first, grp.last); },
                         {prev_rel});
        for (PartitionId i = grp.first; i < grp.last; ++i) {
          tg.depend(Rel1[g], async ? C[i] : R[i]);
        }
        prev_rel = Rel1[g];
      }
    }

    // Phase 2: load → merge (+ async broadcast) → release; strict
    // broadcast chain gated behind the full route chain. Each load
    // carries an explicit release-before-reload edge on its own group's
    // phase-1 release (also implied by the chain — kept direct so the
    // correctness invariant survives future overlap changes).
    for (std::size_t g = 0; g < ng; ++g) {
      const Group grp = groups[g];
      if (with_loads) {
        L2[g] = tg.add(
            [&, grp] { ensure_loaded(grp.first, grp.last, false); },
            {g > 0 ? L2[g - 1] : kNone, Rel1[g],
             g >= overlap ? Rel2[g - overlap] : Rel1[ng - overlap + g]});
      }
      for (PartitionId m = grp.first; m < grp.last; ++m) {
        M[m] = tg.add([&, m] { merge_worker(m); }, {L2[g]});
        if (async) {
          tg.depend(M[m], C[m]);
          for (const PartitionId s : senders_of[m]) tg.depend(M[m], C[s]);
        } else {
          // Senders never exceed max(m, last sender), and the route
          // chain is ascending, so one dependency covers them all (plus
          // compute(m)'s own state, via R(m) ⊆ the chain).
          tg.depend(M[m], senders_of[m].empty()
                              ? R[m]
                              : R[std::max(m, senders_of[m].back())]);
        }
      }
      if (with_loads) {
        Rel2[g] = tg.add([&, grp] { release(grp.first, grp.last); },
                         {prev_rel});
        for (PartitionId m = grp.first; m < grp.last; ++m) {
          tg.depend(Rel2[g], M[m]);
        }
        prev_rel = Rel2[g];
      }
    }
    if (!async) {
      // broadcast(m) reads only bcast[m] and graph-level routing tables,
      // so it needs no residency; B(0) waits for the whole route chain
      // so the two serial chains never interleave.
      TaskGraph::TaskId prev_b = R[p - 1];
      for (PartitionId m = 0; m < p; ++m) {
        B[m] = tg.add([&, m] { broadcast_worker(m); }, {M[m], prev_b});
        prev_b = B[m];
      }
    }

    // Phase 3: load → install → release.
    for (std::size_t g = 0; g < ng; ++g) {
      const Group grp = groups[g];
      if (with_loads) {
        L3[g] = tg.add(
            [&, grp] { ensure_loaded(grp.first, grp.last, false); },
            {g > 0 ? L3[g - 1] : kNone, Rel2[g],
             g >= overlap ? Rel3[g - overlap] : Rel2[ng - overlap + g]});
      }
      for (PartitionId i = grp.first; i < grp.last; ++i) {
        I[i] = tg.add([&, i] { install_worker(i); }, {L3[g]});
        if (async) {
          tg.depend(I[i], M[i]);
          for (const PartitionId m2 : masters_of[i]) tg.depend(I[i], M[m2]);
        } else {
          tg.depend(I[i], masters_of[i].empty()
                              ? B[i]
                              : B[std::max(i, masters_of[i].back())]);
        }
      }
      if (with_loads) {
        Rel3[g] = tg.add([&, grp] { release(grp.first, grp.last); },
                         {prev_rel});
        for (PartitionId i = grp.first; i < grp.last; ++i) {
          tg.depend(Rel3[g], I[i]);
        }
        prev_rel = Rel3[g];
      }
    }

    double superstep_wall = 0.0;
    {
      const obs::trace::Span span("superstep", step);
      const Timer superstep_timer;
      tg.run(team);
      if (options_.phase_stats) superstep_wall = superstep_timer.seconds();
    }
    load_slot = nullptr;
    release_slot = nullptr;

    // A crash inside the superstep (modelled by the injected abort)
    // reaches the outside world before any of this superstep's state is
    // accounted or checkpointed — resume replays it from the last cut.
    if (failpoint::hit("bsp.superstep") == failpoint::Action::kAbort) {
      throw failpoint::InjectedFault(
          "bsp.superstep", failpoint::Action::kAbort,
          "bsp: superstep " + std::to_string(step) + " aborted (injected)");
    }

    // --- Stage 3: synchronisation (reduction + accounting) --------------
    bool any_change = false;
    for (PartitionId i = 0; i < p; ++i) {
      if (changed[i] != 0) any_change = true;
      step_stats[i].messages_sent = sent[i];
      step_stats[i].messages_received =
          received[i].load(std::memory_order_relaxed);
      stats.messages_sent_per_worker[i] += sent[i];
      stats.total_messages += sent[i];
      stats.raw_messages += raw[i];
    }
    double step_max = 0.0;
    double step_min = std::numeric_limits<double>::infinity();
    for (PartitionId i = 0; i < p; ++i) {
      step_stats[i].comm_seconds =
          cost.comm_seconds(msgs_local[i], msgs_remote[i]);
      const double t = step_stats[i].comp_seconds + step_stats[i].comm_seconds;
      step_max = std::max(step_max, t);
      step_min = std::min(step_min, t);
    }
    stats.execution_seconds += step_max + cost.latency_seconds();
    stats.delta_c_seconds += step_max - step_min;
    for (PartitionId i = 0; i < p; ++i) {
      stats.comp_seconds += step_stats[i].comp_seconds;
      stats.comm_seconds += step_stats[i].comm_seconds;
    }
    stats.steps.push_back(std::move(step_stats));
    ++stats.supersteps;
    if (options_.phase_stats) {
      PhaseWallStats pws;
      pws.compute_seconds = phase_accum.compute.load(std::memory_order_relaxed);
      pws.route_seconds = phase_accum.route.load(std::memory_order_relaxed);
      pws.merge_seconds = phase_accum.merge.load(std::memory_order_relaxed);
      pws.broadcast_seconds =
          phase_accum.broadcast.load(std::memory_order_relaxed);
      pws.install_seconds = phase_accum.install.load(std::memory_order_relaxed);
      pws.load_seconds = phase_accum.load.load(std::memory_order_relaxed);
      pws.release_seconds = phase_accum.release.load(std::memory_order_relaxed);
      pws.superstep_seconds = superstep_wall;
      stats.phase_wall.push_back(pws);
    }

    const bool more_fixed = fixed.has_value() && step + 1 < *fixed;
    const bool done = fixed.has_value() ? !more_fixed : !any_change;
    // Checkpoint at the barrier — the consistent cut — but never after
    // the final superstep (a resumed converged run must not replay one).
    if (!done && checkpoint_on &&
        (step + 1) % options_.checkpoint_every == 0) {
      const obs::trace::Span span("checkpoint.publish", step + 1);
      write_checkpoint(options_.checkpoint_dir,
                       collect_checkpoint(step + 1));
    }
    if (done) break;
  }

  stats.comp_seconds /= p;
  stats.comm_seconds /= p;

  // --- Gather final values from masters (uncovered vertices keep init).
  // Written master-side so a bounded budget only materialises one group
  // at a time; for every covered vertex exactly one worker holds
  // is_master, so this writes the same values as a per-vertex gather.
  stats.values.assign(graph.num_global_vertices(), Value{});
  for_each_group(false, [&](PartitionId first, PartitionId last) {
    for (PartitionId m = first; m < last; ++m) {
      const LocalSubgraph& ls = sub(m);
      for (VertexId lv = 0; lv < ls.num_vertices(); ++lv) {
        if (ls.is_master[lv] != 0) {
          stats.values[ls.global_ids[lv]] = values[m][lv];
        }
      }
    }
  });
  for (VertexId gv = 0; gv < graph.num_global_vertices(); ++gv) {
    if (graph.master_of(gv) == kInvalidPartition) {
      stats.values[gv] = program.init_value(gv);
    }
  }
  stats.peak_resident_workers = resident_peak.load(std::memory_order_relaxed);
  stats.wall_seconds = wall.seconds();
  stats.cpu_seconds = process_cpu_seconds() - cpu_start;
  return stats;
}

}  // namespace ebv::bsp
