#include "bsp/runtime.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "common/assert.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "common/unique_id.h"

namespace ebv::bsp {
namespace {

/// One value in flight between two workers.
struct WireMessage {
  VertexId global = kInvalidVertex;
  Value value = 0.0;
};

/// A destination worker's inbox for one direction (to-master or
/// to-mirror). Messages accumulate in append order; under a bounded
/// residency budget the destination may not be materialised until a
/// later sweep, so an inbox that outgrows its in-memory cap flushes to
/// an append-only spill file (oldest prefix on disk, newest suffix in
/// memory — drain() replays file first, preserving append order
/// exactly). With no spill path configured it is a plain vector, the
/// pre-existing behaviour.
class Mailbox {
 public:
  /// `path` empty disables file overflow; `cap` is the in-memory bound.
  void configure(std::string path, std::uint64_t cap) {
    path_ = std::move(path);
    cap_ = std::max<std::uint64_t>(cap, 1);
  }

  void push(const WireMessage& msg) {
    buf_.push_back(msg);
    if (!path_.empty() && buf_.size() >= cap_) flush();
  }

  /// Direct access to the in-memory tail (message combining rewrites
  /// pending values in place; combining mailboxes never flush, so the
  /// recorded indices stay valid for the whole superstep).
  [[nodiscard]] std::vector<WireMessage>& buffer() { return buf_; }

  template <typename Fn>
  void drain(Fn&& fn) {
    if (spilled_ > 0) {
      out_.flush();
      if (!out_) fail_io("flush");
      out_.close();
      std::ifstream in(path_, std::ios::binary);
      if (!in) fail_io("reopen");
      std::vector<WireMessage> chunk;
      std::uint64_t remaining = spilled_;
      while (remaining > 0) {
        chunk.resize(static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, 1u << 14)));
        in.read(reinterpret_cast<char*>(chunk.data()),
                static_cast<std::streamsize>(chunk.size() *
                                             sizeof(WireMessage)));
        if (!in) fail_io("read");
        for (const WireMessage& msg : chunk) fn(msg);
        remaining -= chunk.size();
      }
      in.close();
      std::remove(path_.c_str());
      spilled_ = 0;
    }
    for (const WireMessage& msg : buf_) fn(msg);
    buf_.clear();
  }

  ~Mailbox() {
    if (spilled_ > 0) {
      out_.close();
      std::remove(path_.c_str());
    }
  }

 private:
  void flush() {
    if (!out_.is_open()) {
      out_.open(path_, std::ios::binary | std::ios::trunc);
      if (!out_) fail_io("open");
    }
    out_.write(reinterpret_cast<const char*>(buf_.data()),
               static_cast<std::streamsize>(buf_.size() *
                                            sizeof(WireMessage)));
    if (!out_) fail_io("append");
    spilled_ += buf_.size();
    buf_.clear();
  }

  [[noreturn]] void fail_io(const char* what) const {
    throw std::runtime_error(std::string("mailbox spill: ") + what +
                             " failed: " + path_);
  }

  std::vector<WireMessage> buf_;
  std::string path_;
  std::uint64_t cap_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t spilled_ = 0;
  std::ofstream out_;
};

}  // namespace

RunStats BspRuntime::run(const DistributedGraph& graph,
                         const SubgraphProgram& program) const {
  const Timer wall;
  const PartitionId p = graph.num_workers();
  EBV_REQUIRE(p >= 1, "need at least one worker");
  const ClusterCostModel& cost = options_.cost_model;

  // --- Residency plan ---------------------------------------------------
  // k workers materialised at a time; k == p (the default) is the
  // all-resident schedule. For a spilled graph the cache below holds the
  // materialised workers; for a resident graph it stays empty and sub()
  // reads graph.local() directly, so the bounded schedule is runnable —
  // and bit-identical — on both representations.
  PartitionId k = options_.resident_workers;
  if (k == 0 || k > p) k = p;
  const bool spilled = graph.spilled();
  const bool bounded = k < p;
  std::vector<std::unique_ptr<LocalSubgraph>> cache;
  if (spilled) cache.resize(p);

  auto sub = [&](PartitionId i) -> const LocalSubgraph& {
    return spilled ? *cache[i] : graph.local(i);
  };
  auto ensure_loaded = [&](PartitionId first, PartitionId last,
                           bool with_csr) {
    if (!spilled) return;
    for (PartitionId i = first; i < last; ++i) {
      if (cache[i] == nullptr) {
        // An unbounded budget loads every worker once, CSRs included,
        // and keeps it; a bounded one materialises per sweep.
        cache[i] = std::make_unique<LocalSubgraph>(
            graph.load_worker(i, with_csr || !bounded));
      }
    }
  };
  auto release = [&](PartitionId first, PartitionId last) {
    if (!spilled || !bounded) return;
    for (PartitionId i = first; i < last; ++i) cache[i].reset();
  };
  /// Run `body(first, last)` over the residency groups in ascending
  /// worker order — the global iteration order of every stage is
  /// therefore identical to the all-resident single loop.
  auto for_each_group = [&](bool with_csr, auto&& body) {
    for (PartitionId g = 0; g < p; g += k) {
      const PartitionId last = std::min<PartitionId>(g + k, p);
      ensure_loaded(g, last, with_csr);
      body(g, last);
      release(g, last);
    }
  };

  // --- Per-worker state (resident regardless of the budget: O(Σ|Vi|),
  // the same order as the routing tables) ------------------------------
  std::vector<std::vector<Value>> values(p);
  std::vector<std::vector<Value>> acc(p);
  std::vector<std::vector<std::uint8_t>> has_acc(p);
  std::vector<std::vector<VertexId>> emitted(p);
  std::vector<std::vector<VertexId>> updated(p);   // frontier after sync
  // last_sync[i][lv]: the value of a replicated vertex as of the last
  // replica synchronisation. Masters broadcast whenever the merged value
  // diverges from it — comparing against the *current* value would miss
  // improvements the master made in-place during local compute.
  std::vector<std::vector<Value>> last_sync(p);
  for_each_group(false, [&](PartitionId first, PartitionId last) {
    for (PartitionId i = first; i < last; ++i) {
      const LocalSubgraph& ls = sub(i);
      values[i].resize(ls.num_vertices());
      for (VertexId lv = 0; lv < ls.num_vertices(); ++lv) {
        values[i][lv] = program.init_value(ls.global_ids[lv]);
      }
      acc[i].assign(ls.num_vertices(), Value{});
      has_acc[i].assign(ls.num_vertices(), 0);
      last_sync[i] = values[i];
    }
  });

  // Mailboxes: to_master[j] / to_mirror[j] hold messages addressed to
  // worker j, accumulated in ascending sender order (deterministic).
  // File overflow engages only under a bounded budget with a spill
  // directory; combining keeps the to-master boxes in memory (their
  // pending messages must stay rewritable, and combining itself bounds
  // them at one entry per replicated vertex).
  std::vector<Mailbox> to_master(p);
  std::vector<Mailbox> to_mirror(p);
  if (bounded && !options_.spill_dir.empty()) {
    const std::string prefix =
        options_.spill_dir + "/ebv-mbox." + process_unique_suffix() + ".";
    for (PartitionId j = 0; j < p; ++j) {
      if (!options_.combine_messages) {
        to_master[j].configure(prefix + "ma" + std::to_string(j) + ".tmp",
                               options_.mailbox_buffer_messages);
      }
      to_mirror[j].configure(prefix + "mi" + std::to_string(j) + ".tmp",
                             options_.mailbox_buffer_messages);
    }
  }
  // Combining state: pending[j] maps a global vertex to its message's
  // index in to_master[j]'s buffer for the current superstep.
  std::vector<std::unordered_map<VertexId, std::size_t>> pending(
      options_.combine_messages ? p : 0);

  // Program-defined per-worker scratch, persistent across supersteps.
  std::vector<std::any> worker_state(p);

  RunStats stats;
  stats.messages_sent_per_worker.assign(p, 0);
  const std::optional<std::uint32_t> fixed = program.fixed_supersteps();

  for (std::uint32_t step = 0; step < options_.max_supersteps; ++step) {
    std::vector<WorkerStepStats> step_stats(p);
    std::vector<std::uint64_t> msgs_local(p, 0);
    std::vector<std::uint64_t> msgs_remote(p, 0);

    auto send = [&](PartitionId from, PartitionId to) {
      ++stats.messages_sent_per_worker[from];
      ++step_stats[from].messages_sent;
      ++step_stats[to].messages_received;
      ++stats.total_messages;
      if (cost.same_node(from, to)) {
        ++msgs_local[from];
      } else {
        ++msgs_remote[from];
      }
    };

    bool any_change = false;

    // --- Sweep 1: computation + mirror routing (stage 2a) --------------
    for_each_group(true, [&](PartitionId first, PartitionId last) {
      // Workers only touch their own state, so the parallel policy runs
      // the group on independent threads; results are identical either
      // way. A non-zero options_.num_threads bounds the fan-out exactly
      // (strided assignment keeps every rank's share deterministic,
      // though results do not depend on the mapping).
      auto run_worker = [&](PartitionId i) {
        WorkerContext ctx(sub(i), values[i], acc[i], has_acc[i], emitted[i],
                          program);
        ctx.updated_ = &updated[i];
        ctx.state_ = &worker_state[i];
        program.compute(ctx, step);
        step_stats[i].work_units = ctx.work_units();
        step_stats[i].comp_seconds = cost.comp_seconds(ctx.work_units());
        updated[i].clear();
      };
      const PartitionId group = last - first;
      if (options_.policy == ExecutionPolicy::kParallel && group > 1) {
        if (options_.num_threads > 0) {
          const unsigned team = static_cast<unsigned>(
              std::min<std::uint64_t>(options_.num_threads, group));
          if (team <= 1) {
            for (PartitionId i = first; i < last; ++i) run_worker(i);
          } else {
            ThreadPool::global().run_team(
                team, [&](unsigned rank, unsigned t) {
                  for (PartitionId i = first + rank; i < last; i += t) {
                    run_worker(i);
                  }
                });
          }
        } else {
          parallel_for(
              group,
              [&](std::size_t j) {
                run_worker(first + static_cast<PartitionId>(j));
              },
              1);
        }
      } else {
        for (PartitionId i = first; i < last; ++i) run_worker(i);
      }

      // Stage 2a — route emissions: non-replicated vertices resolve
      // locally; mirrors send their accumulator to the master part.
      for (PartitionId i = first; i < last; ++i) {
        const LocalSubgraph& ls = sub(i);
        for (const VertexId lv : emitted[i]) {
          if (ls.is_replicated[lv] == 0) {
            // Single-copy vertex: resolve in place.
            Value merged = acc[i][lv];
            if (program.combine_with_current()) {
              merged = program.combine(merged, values[i][lv]);
            }
            const Value next = program.apply(ls.global_ids[lv], merged);
            if (next != values[i][lv]) {
              values[i][lv] = next;
              updated[i].push_back(lv);
              any_change = true;
            }
            has_acc[i][lv] = 0;
          } else if (ls.is_master[lv] == 0) {
            // Mirror: ship the accumulator to the master part — unless a
            // message for the same vertex is already pending there and
            // combining is on, in which case merge into it.
            const PartitionId m = ls.master_part[lv];
            const VertexId gv = ls.global_ids[lv];
            ++stats.raw_messages;
            bool enqueue = true;
            if (options_.combine_messages) {
              const auto [it, inserted] =
                  pending[m].try_emplace(gv, to_master[m].buffer().size());
              if (!inserted) {
                WireMessage& msg = to_master[m].buffer()[it->second];
                msg.value = program.combine(msg.value, acc[i][lv]);
                enqueue = false;
              }
            }
            if (enqueue) {
              to_master[m].push({gv, acc[i][lv]});
              send(i, m);
            }
            has_acc[i][lv] = 0;
          }
          // Master replicas keep has_acc set; consumed in sweep 2.
        }
      }
    });

    // --- Sweep 2: masters merge local + received accumulators, apply,
    // and broadcast changed values to every mirror part (stage 2b) ------
    for_each_group(false, [&](PartitionId first, PartitionId last) {
      for (PartitionId m = first; m < last; ++m) {
        const LocalSubgraph& ls = sub(m);
        // Fold received messages into the master's accumulator.
        to_master[m].drain([&](const WireMessage& msg) {
          const VertexId lv = ls.local_of(msg.global);
          EBV_ASSERT(lv != kInvalidVertex);
          EBV_ASSERT(ls.is_master[lv] != 0);
          if (has_acc[m][lv] != 0) {
            acc[m][lv] = program.combine(acc[m][lv], msg.value);
          } else {
            acc[m][lv] = msg.value;
            has_acc[m][lv] = 1;
            emitted[m].push_back(lv);
          }
        });
        if (options_.combine_messages) pending[m].clear();

        for (const VertexId lv : emitted[m]) {
          if (has_acc[m][lv] == 0) continue;  // already resolved in 2a
          if (ls.is_replicated[lv] != 0 && ls.is_master[lv] == 0) continue;
          if (ls.is_replicated[lv] == 0) continue;  // resolved in 2a
          Value merged = acc[m][lv];
          if (program.combine_with_current()) {
            merged = program.combine(merged, values[m][lv]);
          }
          const Value next = program.apply(ls.global_ids[lv], merged);
          has_acc[m][lv] = 0;
          if (next != values[m][lv]) {
            values[m][lv] = next;
            updated[m].push_back(lv);
            any_change = true;
          }
          if (next == last_sync[m][lv]) continue;  // mirrors are up to date
          last_sync[m][lv] = next;
          any_change = true;
          const VertexId gv = ls.global_ids[lv];
          for (const PartitionId peer : graph.parts_of(gv)) {
            if (peer == m) continue;
            ++stats.raw_messages;
            to_mirror[peer].push({gv, next});
            send(m, peer);
          }
        }
        emitted[m].clear();
      }
    });

    // --- Sweep 3: mirrors install broadcast values (stage 2c) ----------
    for_each_group(false, [&](PartitionId first, PartitionId last) {
      for (PartitionId i = first; i < last; ++i) {
        const LocalSubgraph& ls = sub(i);
        to_mirror[i].drain([&](const WireMessage& msg) {
          const VertexId lv = ls.local_of(msg.global);
          EBV_ASSERT(lv != kInvalidVertex);
          last_sync[i][lv] = msg.value;
          if (values[i][lv] != msg.value) {
            values[i][lv] = msg.value;
            updated[i].push_back(lv);
            any_change = true;
          }
        });
        emitted[i].clear();  // all consumed (mirrors cleared acc in 2a)
      }
    });

    // --- Stage 3: synchronisation (accounting) ---------------------------
    double step_max = 0.0;
    double step_min = std::numeric_limits<double>::infinity();
    for (PartitionId i = 0; i < p; ++i) {
      step_stats[i].comm_seconds =
          cost.comm_seconds(msgs_local[i], msgs_remote[i]);
      const double t = step_stats[i].comp_seconds + step_stats[i].comm_seconds;
      step_max = std::max(step_max, t);
      step_min = std::min(step_min, t);
    }
    stats.execution_seconds += step_max + cost.latency_seconds();
    stats.delta_c_seconds += step_max - step_min;
    for (PartitionId i = 0; i < p; ++i) {
      stats.comp_seconds += step_stats[i].comp_seconds;
      stats.comm_seconds += step_stats[i].comm_seconds;
    }
    stats.steps.push_back(std::move(step_stats));
    ++stats.supersteps;

    const bool more_fixed = fixed.has_value() && step + 1 < *fixed;
    const bool done = fixed.has_value() ? !more_fixed : !any_change;
    if (done) break;
  }

  stats.comp_seconds /= p;
  stats.comm_seconds /= p;

  // --- Gather final values from masters (uncovered vertices keep init).
  // Written master-side so a bounded budget only materialises one group
  // at a time; for every covered vertex exactly one worker holds
  // is_master, so this writes the same values as a per-vertex gather.
  stats.values.assign(graph.num_global_vertices(), Value{});
  for_each_group(false, [&](PartitionId first, PartitionId last) {
    for (PartitionId m = first; m < last; ++m) {
      const LocalSubgraph& ls = sub(m);
      for (VertexId lv = 0; lv < ls.num_vertices(); ++lv) {
        if (ls.is_master[lv] != 0) {
          stats.values[ls.global_ids[lv]] = values[m][lv];
        }
      }
    }
  });
  for (VertexId gv = 0; gv < graph.num_global_vertices(); ++gv) {
    if (graph.master_of(gv) == kInvalidPartition) {
      stats.values[gv] = program.init_value(gv);
    }
  }
  stats.wall_seconds = wall.seconds();
  return stats;
}

}  // namespace ebv::bsp
