#include "bsp/runtime.h"

#include <algorithm>
#include <limits>

#include "common/assert.h"
#include "common/parallel.h"
#include "common/timer.h"

namespace ebv::bsp {
namespace {

/// One value in flight between two workers.
struct WireMessage {
  VertexId global = kInvalidVertex;
  Value value = 0.0;
};

}  // namespace

RunStats BspRuntime::run(const DistributedGraph& graph,
                         const SubgraphProgram& program) const {
  const Timer wall;
  const PartitionId p = graph.num_workers();
  EBV_REQUIRE(p >= 1, "need at least one worker");
  const ClusterCostModel& cost = options_.cost_model;

  // --- Per-worker state -------------------------------------------------
  std::vector<std::vector<Value>> values(p);
  std::vector<std::vector<Value>> acc(p);
  std::vector<std::vector<std::uint8_t>> has_acc(p);
  std::vector<std::vector<VertexId>> emitted(p);
  std::vector<std::vector<VertexId>> updated(p);   // frontier after sync
  // last_sync[i][lv]: the value of a replicated vertex as of the last
  // replica synchronisation. Masters broadcast whenever the merged value
  // diverges from it — comparing against the *current* value would miss
  // improvements the master made in-place during local compute.
  std::vector<std::vector<Value>> last_sync(p);
  for (PartitionId i = 0; i < p; ++i) {
    const LocalSubgraph& ls = graph.local(i);
    values[i].resize(ls.num_vertices());
    for (VertexId lv = 0; lv < ls.num_vertices(); ++lv) {
      values[i][lv] = program.init_value(ls.global_ids[lv]);
    }
    acc[i].assign(ls.num_vertices(), Value{});
    has_acc[i].assign(ls.num_vertices(), 0);
    last_sync[i] = values[i];
  }

  // Mailboxes: to_master[j] / to_mirror[j] hold messages addressed to
  // worker j, accumulated in ascending sender order (deterministic).
  std::vector<std::vector<WireMessage>> to_master(p);
  std::vector<std::vector<WireMessage>> to_mirror(p);

  // Program-defined per-worker scratch, persistent across supersteps.
  std::vector<std::any> worker_state(p);

  RunStats stats;
  stats.messages_sent_per_worker.assign(p, 0);
  const std::optional<std::uint32_t> fixed = program.fixed_supersteps();

  for (std::uint32_t step = 0; step < options_.max_supersteps; ++step) {
    std::vector<WorkerStepStats> step_stats(p);
    std::vector<std::uint64_t> msgs_local(p, 0);
    std::vector<std::uint64_t> msgs_remote(p, 0);

    // --- Stage 1: computation ------------------------------------------
    // Workers only touch their own state, so the parallel policy runs
    // them on independent threads; results are identical either way.
    auto run_worker = [&](PartitionId i) {
      WorkerContext ctx(graph.local(i), values[i], acc[i], has_acc[i],
                        emitted[i], program);
      ctx.updated_ = &updated[i];
      ctx.state_ = &worker_state[i];
      program.compute(ctx, step);
      step_stats[i].work_units = ctx.work_units();
      step_stats[i].comp_seconds = cost.comp_seconds(ctx.work_units());
      updated[i].clear();
    };
    if (options_.policy == ExecutionPolicy::kParallel && p > 1) {
      // Workers touch disjoint state, so the superstep fans out over the
      // shared pool (the seed spawned p fresh threads every superstep);
      // results are identical to the sequential policy. A non-zero
      // options_.num_threads bounds the fan-out exactly (strided worker
      // assignment keeps every rank's share deterministic, though results
      // do not depend on the mapping).
      if (options_.num_threads > 0) {
        const unsigned team = static_cast<unsigned>(
            std::min<std::uint64_t>(options_.num_threads, p));
        if (team <= 1) {
          for (PartitionId i = 0; i < p; ++i) run_worker(i);
        } else {
          ThreadPool::global().run_team(team, [&](unsigned rank, unsigned t) {
            for (PartitionId i = rank; i < p; i += t) run_worker(i);
          });
        }
      } else {
        parallel_for(
            p, [&](std::size_t i) { run_worker(static_cast<PartitionId>(i)); },
            1);
      }
    } else {
      for (PartitionId i = 0; i < p; ++i) run_worker(i);
    }

    // --- Stage 2: communication -----------------------------------------
    // 2a. route emissions: non-replicated vertices resolve locally;
    //     mirrors send their accumulator to the master part.
    auto send = [&](PartitionId from, PartitionId to) {
      ++stats.messages_sent_per_worker[from];
      ++step_stats[from].messages_sent;
      ++step_stats[to].messages_received;
      ++stats.total_messages;
      if (cost.same_node(from, to)) {
        ++msgs_local[from];
      } else {
        ++msgs_remote[from];
      }
    };

    bool any_change = false;
    for (PartitionId i = 0; i < p; ++i) {
      const LocalSubgraph& ls = graph.local(i);
      for (const VertexId lv : emitted[i]) {
        if (ls.is_replicated[lv] == 0) {
          // Single-copy vertex: resolve in place.
          Value merged = acc[i][lv];
          if (program.combine_with_current()) {
            merged = program.combine(merged, values[i][lv]);
          }
          const Value next = program.apply(ls.global_ids[lv], merged);
          if (next != values[i][lv]) {
            values[i][lv] = next;
            updated[i].push_back(lv);
            any_change = true;
          }
          has_acc[i][lv] = 0;
        } else if (ls.is_master[lv] == 0) {
          // Mirror: ship the accumulator to the master part.
          const PartitionId m = ls.master_part[lv];
          to_master[m].push_back({ls.global_ids[lv], acc[i][lv]});
          send(i, m);
          has_acc[i][lv] = 0;
        }
        // Master replicas keep has_acc set; consumed in 2b.
      }
    }

    // 2b. masters merge local + received accumulators, apply, and
    //     broadcast changed values to every mirror part.
    for (PartitionId m = 0; m < p; ++m) {
      const LocalSubgraph& ls = graph.local(m);
      // Fold received messages into the master's accumulator.
      for (const WireMessage& msg : to_master[m]) {
        const VertexId lv = ls.local_of(msg.global);
        EBV_ASSERT(lv != kInvalidVertex);
        EBV_ASSERT(ls.is_master[lv] != 0);
        if (has_acc[m][lv] != 0) {
          acc[m][lv] = program.combine(acc[m][lv], msg.value);
        } else {
          acc[m][lv] = msg.value;
          has_acc[m][lv] = 1;
          emitted[m].push_back(lv);
        }
      }
      to_master[m].clear();

      for (const VertexId lv : emitted[m]) {
        if (has_acc[m][lv] == 0) continue;  // already resolved in 2a
        if (ls.is_replicated[lv] != 0 && ls.is_master[lv] == 0) continue;
        if (ls.is_replicated[lv] == 0) continue;  // resolved in 2a
        Value merged = acc[m][lv];
        if (program.combine_with_current()) {
          merged = program.combine(merged, values[m][lv]);
        }
        const Value next = program.apply(ls.global_ids[lv], merged);
        has_acc[m][lv] = 0;
        if (next != values[m][lv]) {
          values[m][lv] = next;
          updated[m].push_back(lv);
          any_change = true;
        }
        if (next == last_sync[m][lv]) continue;  // mirrors are up to date
        last_sync[m][lv] = next;
        any_change = true;
        const VertexId gv = ls.global_ids[lv];
        for (const PartitionId peer : graph.parts_of(gv)) {
          if (peer == m) continue;
          to_mirror[peer].push_back({gv, next});
          send(m, peer);
        }
      }
      emitted[m].clear();
    }

    // 2c. mirrors install broadcast values.
    for (PartitionId i = 0; i < p; ++i) {
      const LocalSubgraph& ls = graph.local(i);
      for (const WireMessage& msg : to_mirror[i]) {
        const VertexId lv = ls.local_of(msg.global);
        EBV_ASSERT(lv != kInvalidVertex);
        last_sync[i][lv] = msg.value;
        if (values[i][lv] != msg.value) {
          values[i][lv] = msg.value;
          updated[i].push_back(lv);
          any_change = true;
        }
      }
      to_mirror[i].clear();
      emitted[i].clear();  // all consumed (mirrors cleared acc in 2a)
    }

    // --- Stage 3: synchronisation (accounting) ---------------------------
    double step_max = 0.0;
    double step_min = std::numeric_limits<double>::infinity();
    for (PartitionId i = 0; i < p; ++i) {
      step_stats[i].comm_seconds =
          cost.comm_seconds(msgs_local[i], msgs_remote[i]);
      const double t = step_stats[i].comp_seconds + step_stats[i].comm_seconds;
      step_max = std::max(step_max, t);
      step_min = std::min(step_min, t);
    }
    stats.execution_seconds += step_max + cost.latency_seconds();
    stats.delta_c_seconds += step_max - step_min;
    for (PartitionId i = 0; i < p; ++i) {
      stats.comp_seconds += step_stats[i].comp_seconds;
      stats.comm_seconds += step_stats[i].comm_seconds;
    }
    stats.steps.push_back(std::move(step_stats));
    ++stats.supersteps;

    const bool more_fixed = fixed.has_value() && step + 1 < *fixed;
    const bool done = fixed.has_value() ? !more_fixed : !any_change;
    if (done) break;
  }

  stats.comp_seconds /= p;
  stats.comm_seconds /= p;

  // --- Gather final values from masters (uncovered vertices keep init). --
  stats.values.resize(graph.num_global_vertices());
  for (VertexId gv = 0; gv < graph.num_global_vertices(); ++gv) {
    const PartitionId m = graph.master_of(gv);
    if (m == kInvalidPartition) {
      stats.values[gv] = program.init_value(gv);
    } else {
      const VertexId lv = graph.local(m).local_of(gv);
      EBV_ASSERT(lv != kInvalidVertex);
      stats.values[gv] = values[m][lv];
    }
  }
  stats.wall_seconds = wall.seconds();
  return stats;
}

}  // namespace ebv::bsp
