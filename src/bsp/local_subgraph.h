// LocalSubgraph: one worker's share of a vertex-cut partitioned graph —
// local edges over dense local vertex ids, the ascending local→global id
// table, and the per-vertex replica/master metadata the BSP runtime
// routes by. Produced either resident (DistributedGraph keeps all p at
// once) or materialised on demand from a worker-spill snapshot
// (bsp/spill_store.h), which is what bounds aggregate subgraph residency
// for graphs whose partitions exceed RAM.
#pragma once

#include <algorithm>
#include <vector>

#include "graph/csr.h"

namespace ebv::bsp {

/// Worker-local subgraph. Edge endpoints are local ids; `global_ids`
/// translates back.
struct LocalSubgraph {
  PartitionId part = 0;

  std::vector<VertexId> global_ids;  // local -> global, ascending

  std::vector<Edge> edges;          // endpoints are local ids
  std::vector<float> edge_weights;  // empty when the graph is unweighted

  CsrGraph out_csr;   // local out-adjacency
  CsrGraph in_csr;    // local in-adjacency
  CsrGraph both_csr;  // symmetrised (for CC-style propagation)

  std::vector<std::uint8_t> is_replicated;  // per local vertex
  std::vector<std::uint8_t> is_master;      // per local vertex
  std::vector<PartitionId> master_part;     // per local vertex
  std::vector<std::uint32_t> global_out_degree;  // per local vertex

  [[nodiscard]] VertexId num_vertices() const {
    return static_cast<VertexId>(global_ids.size());
  }
  [[nodiscard]] EdgeId num_edges() const { return edges.size(); }
  [[nodiscard]] float weight(EdgeId e) const {
    return edge_weights.empty() ? 1.0f : edge_weights[e];
  }
  /// Local id of a global vertex, or kInvalidVertex if absent here.
  /// Binary search over the ascending `global_ids` (local ids are assigned
  /// in ascending global order), so no global→local hash map is stored.
  [[nodiscard]] VertexId local_of(VertexId global) const {
    const auto it =
        std::lower_bound(global_ids.begin(), global_ids.end(), global);
    if (it == global_ids.end() || *it != global) return kInvalidVertex;
    return static_cast<VertexId>(it - global_ids.begin());
  }
};

/// Build the three local adjacency CSRs from `edges`. Deterministic for a
/// given edge sequence, so rebuilding after a spill round-trip reproduces
/// the resident structures bit for bit.
inline void build_local_csrs(LocalSubgraph& ls) {
  const VertexId ln = ls.num_vertices();
  ls.out_csr = CsrGraph::build(ln, ls.edges, CsrGraph::Direction::kOut);
  ls.in_csr = CsrGraph::build(ln, ls.edges, CsrGraph::Direction::kIn);
  ls.both_csr = CsrGraph::build(ln, ls.edges, CsrGraph::Direction::kBoth);
}

}  // namespace ebv::bsp
