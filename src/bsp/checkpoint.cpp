#include "bsp/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/assert.h"
#include "common/failpoint.h"
#include "common/unique_id.h"
#include "graph/section_io.h"

namespace ebv::bsp {
namespace {

namespace fs = std::filesystem;

using io::detail::get_field;
using io::detail::kSectionEndianMarker;
using io::detail::put_field;

// Header field offsets within the 4 KiB header page (docs/FORMATS.md).
constexpr char kMagic[4] = {'E', 'B', 'V', 'C'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 4096;

constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffVersion = 4;
constexpr std::size_t kOffEndian = 8;
constexpr std::size_t kOffHeaderBytes = 12;
constexpr std::size_t kOffNumWorkers = 16;
constexpr std::size_t kOffSupersteps = 20;
constexpr std::size_t kOffNumVertices = 24;
constexpr std::size_t kOffNumEdges = 32;
constexpr std::size_t kOffTableOffset = 40;
constexpr std::size_t kOffTableBytes = 48;
constexpr std::size_t kOffTotalMessages = 56;
constexpr std::size_t kOffRawMessages = 64;
constexpr std::size_t kOffExecution = 72;
constexpr std::size_t kOffCompSum = 80;
constexpr std::size_t kOffCommSum = 88;
constexpr std::size_t kOffDeltaC = 96;
constexpr std::size_t kOffPeakResident = 104;
constexpr std::size_t kOffNameLen = 108;
constexpr std::size_t kOffName = 112;
constexpr std::size_t kMaxNameBytes = 256;

/// Newest checkpoints kept after a successful publish.
constexpr std::size_t kKeepCheckpoints = 2;

// The steps matrix is checkpointed as raw rows.
static_assert(std::is_trivially_copyable_v<WorkerStepStats> &&
                  sizeof(WorkerStepStats) == 40,
              "EBVC serialises WorkerStepStats rows as raw bytes");

// Per-worker array index within WorkerEntry::off (fixed order; docs).
enum Array : std::size_t {
  kArrValues = 0,
  kArrLastSync = 1,
  kArrUpdated = 2,
  kArrToMasterGlobal = 3,
  kArrToMasterValue = 4,
  kArrToMirrorGlobal = 5,
  kArrToMirrorValue = 6,
  kNumWorkerArrays = 7,
};

struct WorkerEntry {
  std::uint64_t num_vertices = 0;
  std::uint64_t num_updated = 0;
  std::uint64_t num_to_master = 0;
  std::uint64_t num_to_mirror = 0;
  std::uint64_t off[kNumWorkerArrays] = {};
};
static_assert(sizeof(WorkerEntry) == 88, "EBVC worker table entry layout");

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("EBVC: " + what);
}

constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a64(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t align8(std::uint64_t n) { return (n + 7) & ~std::uint64_t{7}; }

/// The full file layout, derivable from the counts alone — computed
/// up-front by the writer (so the header is final before any byte is
/// streamed and the trailing checksum covers it unpatched) and
/// recomputed by the reader as the section-boundary validator.
struct Layout {
  std::uint64_t msgs_offset = 0;
  std::uint64_t steps_offset = 0;
  std::vector<WorkerEntry> table;
  std::uint64_t table_offset = 0;
  std::uint64_t table_bytes = 0;
  std::uint64_t checksum_offset = 0;  // == file size - 8
};

Layout compute_layout(PartitionId num_workers, std::uint32_t supersteps,
                      const std::vector<WorkerEntry>& counts) {
  Layout layout;
  std::uint64_t off = kHeaderBytes;
  layout.msgs_offset = off;
  off += 8ull * num_workers;
  layout.steps_offset = off;
  off += static_cast<std::uint64_t>(sizeof(WorkerStepStats)) * supersteps *
         num_workers;
  layout.table = counts;
  for (WorkerEntry& e : layout.table) {
    e.off[kArrValues] = off;
    off += 8 * e.num_vertices;
    e.off[kArrLastSync] = off;
    off += 8 * e.num_vertices;
    e.off[kArrUpdated] = off;
    off += align8(4 * e.num_updated);
    e.off[kArrToMasterGlobal] = off;
    off += align8(4 * e.num_to_master);
    e.off[kArrToMasterValue] = off;
    off += 8 * e.num_to_master;
    e.off[kArrToMirrorGlobal] = off;
    off += align8(4 * e.num_to_mirror);
    e.off[kArrToMirrorValue] = off;
    off += 8 * e.num_to_mirror;
  }
  layout.table_offset = off;
  layout.table_bytes = static_cast<std::uint64_t>(sizeof(WorkerEntry)) *
                       num_workers;
  off += layout.table_bytes;
  layout.checksum_offset = off;
  return layout;
}

/// Checksummed streaming writer over an ofstream.
class ChecksumWriter {
 public:
  explicit ChecksumWriter(std::ofstream& out) : out_(out) {}

  void put(const void* data, std::size_t bytes) {
    if (bytes == 0) return;
    hash_ = fnv1a64(hash_, data, bytes);
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(bytes));
  }

  /// Write a u32 array followed by the 0/4-byte pad to 8 alignment.
  template <typename T>
  void put_u32_array(const std::vector<T>& v) {
    static_assert(sizeof(T) == 4);
    put(v.data(), v.size() * 4);
    if (v.size() % 2 != 0) {
      const std::uint32_t zero = 0;
      put(&zero, 4);
    }
  }

  void put_trailing_checksum() {
    const std::uint64_t h = hash_;
    out_.write(reinterpret_cast<const char*>(&h), sizeof h);
  }

 private:
  std::ofstream& out_;
  std::uint64_t hash_ = kFnvBasis;
};

void serialise_to(const std::string& path, const Checkpoint& ckpt,
                  const Layout& layout) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail("cannot open for writing (--checkpoint-dir): " + path);
  failpoint::maybe_fail_stream("checkpoint.write", out);

  const PartitionId p = ckpt.num_workers;
  std::vector<char> header(kHeaderBytes, 0);
  std::memcpy(header.data() + kOffMagic, kMagic, sizeof kMagic);
  put_field(header, kOffVersion, kVersion);
  put_field(header, kOffEndian, kSectionEndianMarker);
  put_field(header, kOffHeaderBytes, static_cast<std::uint32_t>(kHeaderBytes));
  put_field(header, kOffNumWorkers, static_cast<std::uint32_t>(p));
  put_field(header, kOffSupersteps, ckpt.completed_supersteps);
  put_field(header, kOffNumVertices,
            static_cast<std::uint64_t>(ckpt.num_global_vertices));
  put_field(header, kOffNumEdges,
            static_cast<std::uint64_t>(ckpt.num_global_edges));
  put_field(header, kOffTableOffset, layout.table_offset);
  put_field(header, kOffTableBytes, layout.table_bytes);
  put_field(header, kOffTotalMessages, ckpt.total_messages);
  put_field(header, kOffRawMessages, ckpt.raw_messages);
  put_field(header, kOffExecution, ckpt.execution_seconds);
  put_field(header, kOffCompSum, ckpt.comp_seconds_sum);
  put_field(header, kOffCommSum, ckpt.comm_seconds_sum);
  put_field(header, kOffDeltaC, ckpt.delta_c_seconds);
  put_field(header, kOffPeakResident, ckpt.peak_resident_workers);
  const std::size_t name_len = std::min(ckpt.program.size(), kMaxNameBytes);
  put_field(header, kOffNameLen, static_cast<std::uint32_t>(name_len));
  if (name_len > 0) {
    std::memcpy(header.data() + kOffName, ckpt.program.data(), name_len);
  }

  ChecksumWriter w(out);
  w.put(header.data(), header.size());
  w.put(ckpt.messages_sent_per_worker.data(), 8ull * p);
  for (const std::vector<WorkerStepStats>& row : ckpt.steps) {
    w.put(row.data(), row.size() * sizeof(WorkerStepStats));
  }
  // Scratch split of WireMessage arrays into id/value columns (a raw
  // WireMessage dump would checkpoint 4 padding bytes per message).
  std::vector<VertexId> ids;
  std::vector<Value> vals;
  const auto put_messages = [&](const std::vector<WireMessage>& msgs) {
    ids.clear();
    vals.clear();
    ids.reserve(msgs.size());
    vals.reserve(msgs.size());
    for (const WireMessage& m : msgs) {
      ids.push_back(m.global);
      vals.push_back(m.value);
    }
    w.put_u32_array(ids);
    w.put(vals.data(), vals.size() * 8);
  };
  for (PartitionId i = 0; i < p; ++i) {
    w.put(ckpt.values[i].data(), ckpt.values[i].size() * 8);
    w.put(ckpt.last_sync[i].data(), ckpt.last_sync[i].size() * 8);
    w.put_u32_array(ckpt.updated[i]);
    put_messages(ckpt.to_master[i]);
    put_messages(ckpt.to_mirror[i]);
  }
  w.put(layout.table.data(), layout.table.size() * sizeof(WorkerEntry));
  w.put_trailing_checksum();
  out.flush();
  if (!out) fail("write failed (--checkpoint-dir): " + path);
  out.close();
  if (!out) fail("close failed (--checkpoint-dir): " + path);
}

void sync_file(const std::string& path) {
#ifndef _WIN32
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) fail("cannot reopen for fsync: " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) fail("fsync failed: " + path);
#else
  (void)path;
#endif
}

void sync_dir(const std::string& dir) {
#ifndef _WIN32
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) fail("cannot open directory for fsync: " + dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) fail("directory fsync failed: " + dir);
#else
  (void)dir;
#endif
}

}  // namespace

std::string checkpoint_file_name(std::uint32_t completed_supersteps) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "ckpt-%08u.ebvc", completed_supersteps);
  return buf;
}

std::vector<std::pair<std::uint32_t, std::string>> list_checkpoints(
    const std::string& dir) {
  std::vector<std::pair<std::uint32_t, std::string>> found;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return found;
  for (const fs::directory_entry& entry : it) {
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec) || entry_ec) continue;
    const std::string name = entry.path().filename().string();
    // ckpt-XXXXXXXX.ebvc, exactly 8 digits.
    if (name.size() != 18 || name.rfind("ckpt-", 0) != 0 ||
        name.compare(13, 5, ".ebvc") != 0) {
      continue;
    }
    std::uint32_t step = 0;
    bool digits = true;
    for (std::size_t i = 5; i < 13; ++i) {
      const char c = name[i];
      if (c < '0' || c > '9') {
        digits = false;
        break;
      }
      step = step * 10 + static_cast<std::uint32_t>(c - '0');
    }
    if (!digits) continue;
    found.emplace_back(step, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  return found;
}

std::string write_checkpoint(const std::string& dir, const Checkpoint& ckpt) {
  const PartitionId p = ckpt.num_workers;
  EBV_REQUIRE(p >= 1, "checkpoint needs at least one worker");
  EBV_REQUIRE(ckpt.values.size() == p && ckpt.last_sync.size() == p &&
                  ckpt.updated.size() == p && ckpt.to_master.size() == p &&
                  ckpt.to_mirror.size() == p &&
                  ckpt.messages_sent_per_worker.size() == p,
              "checkpoint per-worker arrays must cover every worker");
  EBV_REQUIRE(ckpt.steps.size() == ckpt.completed_supersteps,
              "checkpoint needs one steps row per completed superstep");
  for (const std::vector<WorkerStepStats>& row : ckpt.steps) {
    EBV_REQUIRE(row.size() == p, "steps rows must cover every worker");
  }
  for (PartitionId i = 0; i < p; ++i) {
    EBV_REQUIRE(ckpt.last_sync[i].size() == ckpt.values[i].size(),
                "last_sync must mirror the value array");
  }

  std::vector<WorkerEntry> counts(p);
  for (PartitionId i = 0; i < p; ++i) {
    counts[i].num_vertices = ckpt.values[i].size();
    counts[i].num_updated = ckpt.updated[i].size();
    counts[i].num_to_master = ckpt.to_master[i].size();
    counts[i].num_to_mirror = ckpt.to_mirror[i].size();
  }
  const Layout layout = compute_layout(p, ckpt.completed_supersteps, counts);

  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string final_path =
      (fs::path(dir) / checkpoint_file_name(ckpt.completed_supersteps))
          .string();

  std::string tmp;
  const auto attempt = [&]() {
    tmp = final_path + ".tmp." + process_unique_suffix();
    serialise_to(tmp, ckpt, layout);
    sync_file(tmp);
    if (failpoint::hit("checkpoint.rename") != failpoint::Action::kNone) {
      fail("rename failed (injected, --checkpoint-dir): " + tmp);
    }
    if (std::rename(tmp.c_str(), final_path.c_str()) != 0) {
      fail("rename failed (--checkpoint-dir): " + tmp + " -> " + final_path);
    }
    tmp.clear();
    // Make the publish durable: the rename must hit the directory before
    // older checkpoints become eligible for pruning.
    sync_dir(dir);
  };
  const auto cleanup = [&]() {
    if (!tmp.empty()) {
      std::remove(tmp.c_str());
      tmp.clear();
    }
  };
  failpoint::with_retry(failpoint::RetryPolicy{}, attempt, cleanup);

  // Prune: keep the newest kKeepCheckpoints so the predecessor survives
  // a torn successor. Best-effort (a lost race is not an error).
  const auto published = list_checkpoints(dir);
  if (published.size() > kKeepCheckpoints) {
    for (std::size_t i = 0; i + kKeepCheckpoints < published.size(); ++i) {
      std::error_code rm_ec;
      fs::remove(published[i].second, rm_ec);
    }
  }
  return final_path;
}

Checkpoint read_checkpoint_file(const std::string& path) {
  if (failpoint::hit("checkpoint.read") == failpoint::Action::kShortRead) {
    fail("short read (injected): " + path);
  }
  const io::detail::MappedFile file(path);
  const std::byte* base = file.data();
  const std::size_t size = file.size();

  if (size < kHeaderBytes + 8) fail("file shorter than header + checksum");
  // Checksum FIRST: everything after this point may trust the bytes to
  // be exactly what one serialise_to() call produced (a torn or
  // bit-flipped file never reaches the structural checks below).
  std::uint64_t stored = 0;
  std::memcpy(&stored, base + size - 8, 8);
  if (fnv1a64(kFnvBasis, base, size - 8) != stored) {
    fail("checksum mismatch (torn or corrupt write): " + path);
  }

  io::detail::check_header_prologue(base, size, kMagic, kVersion, "EBVC");

  Checkpoint ckpt;
  const auto p = get_field<std::uint32_t>(base, kOffNumWorkers);
  if (p == 0) fail("zero workers");
  ckpt.num_workers = p;
  ckpt.completed_supersteps = get_field<std::uint32_t>(base, kOffSupersteps);
  const auto v64 = get_field<std::uint64_t>(base, kOffNumVertices);
  if (v64 >= kInvalidVertex) fail("vertex count exceeds 32-bit id space");
  ckpt.num_global_vertices = static_cast<VertexId>(v64);
  ckpt.num_global_edges = get_field<std::uint64_t>(base, kOffNumEdges);
  ckpt.total_messages = get_field<std::uint64_t>(base, kOffTotalMessages);
  ckpt.raw_messages = get_field<std::uint64_t>(base, kOffRawMessages);
  ckpt.execution_seconds = get_field<double>(base, kOffExecution);
  ckpt.comp_seconds_sum = get_field<double>(base, kOffCompSum);
  ckpt.comm_seconds_sum = get_field<double>(base, kOffCommSum);
  ckpt.delta_c_seconds = get_field<double>(base, kOffDeltaC);
  ckpt.peak_resident_workers =
      get_field<std::uint32_t>(base, kOffPeakResident);
  const auto name_len = get_field<std::uint32_t>(base, kOffNameLen);
  if (name_len > kMaxNameBytes) fail("program name exceeds the header");
  ckpt.program.assign(reinterpret_cast<const char*>(base) + kOffName,
                      name_len);

  // Counts are bounded by the file size BEFORE any size arithmetic so a
  // hostile header cannot wrap the layout products (same rule as EBVW).
  const std::uint64_t budget = size;
  if (static_cast<std::uint64_t>(p) > budget / sizeof(WorkerEntry)) {
    fail("worker count exceeds the file");
  }
  if (static_cast<std::uint64_t>(ckpt.completed_supersteps) >
      budget / sizeof(WorkerStepStats) / p) {
    fail("superstep count exceeds the file");
  }

  const auto table_offset = get_field<std::uint64_t>(base, kOffTableOffset);
  const auto table_bytes = get_field<std::uint64_t>(base, kOffTableBytes);
  if (table_bytes !=
      static_cast<std::uint64_t>(p) * sizeof(WorkerEntry)) {
    fail("worker table has wrong length");
  }
  if (table_offset % 8 != 0 || table_offset < kHeaderBytes ||
      table_offset > size || size - table_offset < table_bytes + 8) {
    fail("worker table exceeds the file (truncated?)");
  }
  std::vector<WorkerEntry> table(p);
  std::memcpy(table.data(), base + table_offset,
              static_cast<std::size_t>(table_bytes));
  for (const WorkerEntry& e : table) {
    if (e.num_vertices > budget / 8 || e.num_updated > budget / 4 ||
        e.num_to_master > budget / 8 || e.num_to_mirror > budget / 8) {
      fail("worker array count exceeds the file");
    }
  }

  // The layout is a pure function of the counts; recomputing it and
  // demanding an exact match validates every section boundary at once.
  const Layout layout = compute_layout(p, ckpt.completed_supersteps, table);
  if (layout.checksum_offset + 8 != size) {
    fail("file length does not match the layout (truncated?)");
  }
  if (layout.table_offset != table_offset) {
    fail("worker table offset does not match the layout");
  }
  for (PartitionId i = 0; i < p; ++i) {
    if (std::memcmp(layout.table[i].off, table[i].off,
                    sizeof table[i].off) != 0) {
      fail("worker section offsets do not match the layout");
    }
  }

  ckpt.messages_sent_per_worker.resize(p);
  std::memcpy(ckpt.messages_sent_per_worker.data(),
              base + layout.msgs_offset, 8ull * p);
  ckpt.steps.resize(ckpt.completed_supersteps);
  const std::byte* steps_at = base + layout.steps_offset;
  for (std::vector<WorkerStepStats>& row : ckpt.steps) {
    row.resize(p);
    std::memcpy(row.data(), steps_at, p * sizeof(WorkerStepStats));
    steps_at += p * sizeof(WorkerStepStats);
  }

  ckpt.values.resize(p);
  ckpt.last_sync.resize(p);
  ckpt.updated.resize(p);
  ckpt.to_master.resize(p);
  ckpt.to_mirror.resize(p);
  const auto read_messages = [&](const WorkerEntry& e, Array ids_sec,
                                 Array vals_sec, std::uint64_t n,
                                 std::vector<WireMessage>& out) {
    const auto* ids =
        reinterpret_cast<const VertexId*>(base + e.off[ids_sec]);
    const auto* vals = reinterpret_cast<const Value*>(base + e.off[vals_sec]);
    out.resize(static_cast<std::size_t>(n));
    for (std::uint64_t m = 0; m < n; ++m) {
      out[m].global = ids[m];
      out[m].value = vals[m];
    }
  };
  for (PartitionId i = 0; i < p; ++i) {
    const WorkerEntry& e = table[i];
    const auto nv = static_cast<std::size_t>(e.num_vertices);
    const auto* values =
        reinterpret_cast<const Value*>(base + e.off[kArrValues]);
    ckpt.values[i].assign(values, values + nv);
    const auto* sync =
        reinterpret_cast<const Value*>(base + e.off[kArrLastSync]);
    ckpt.last_sync[i].assign(sync, sync + nv);
    const auto* updated =
        reinterpret_cast<const VertexId*>(base + e.off[kArrUpdated]);
    ckpt.updated[i].assign(updated,
                           updated + static_cast<std::size_t>(e.num_updated));
    for (const VertexId lv : ckpt.updated[i]) {
      if (lv >= e.num_vertices) fail("frontier vertex out of range");
    }
    read_messages(e, kArrToMasterGlobal, kArrToMasterValue, e.num_to_master,
                  ckpt.to_master[i]);
    read_messages(e, kArrToMirrorGlobal, kArrToMirrorValue, e.num_to_mirror,
                  ckpt.to_mirror[i]);
  }
  return ckpt;
}

std::optional<Checkpoint> load_latest_checkpoint(const std::string& dir) {
  const auto published = list_checkpoints(dir);
  for (auto it = published.rbegin(); it != published.rend(); ++it) {
    try {
      return read_checkpoint_file(it->second);
    } catch (const std::exception&) {
      // Torn or corrupt: fall back to the predecessor.
    }
  }
  return std::nullopt;
}

}  // namespace ebv::bsp
