// DistributedGraph: the per-worker view of a vertex-cut partitioned graph.
//
// Construction takes a GraphView plus an EdgePartition and produces, for
// every worker, a local subgraph over dense *local* vertex ids, together
// with the replica routing tables the BSP runtime needs:
//   - a vertex covered by edges in several parts is *replicated*;
//   - one replica is designated the master (the part holding the most
//     incident edges, ties to the lowest part id) — masters combine values
//     from mirrors and broadcast the result back (PowerGraph-style sync,
//     which is how DRONE-like subgraph-centric frameworks communicate).
//
// Taking a GraphView (a resident Graph converts implicitly) makes this the
// out-of-core half of `ebvpart run --mmap`: the edge section of an
// mmap-backed EBVS snapshot is streamed and the transient construction
// state is O(|V|·⌈p/64⌉ + Σ|Vi|) resident (replica bitmasks + flat
// CSR-style incident counts), never O(|E|) heap.
//
// Two residency modes:
//   - resident (default): all p LocalSubgraphs are held in memory, so the
//     aggregate is O(|E|);
//   - spilled (DistributeOptions::spill_path): each worker's subgraph is
//     built ONE AT A TIME and streamed into an EBVW worker-spill snapshot
//     (bsp/spill_store.h); only the O(|V|)-ish routing tables stay
//     resident, and the runtime materialises workers on demand under its
//     RunOptions::resident_workers budget. Results are bit-identical in
//     both modes.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bsp/local_subgraph.h"
#include "bsp/spill_store.h"
#include "common/assert.h"
#include "graph/graph_view.h"
#include "partition/partitioner.h"

namespace ebv::bsp {

/// Construction-time options.
struct DistributeOptions {
  /// When non-empty, write every worker's subgraph to an EBVW snapshot at
  /// this path during construction instead of keeping it resident. The
  /// file must outlive the DistributedGraph; it is NOT removed on
  /// destruction (callers own the lifecycle — see
  /// analysis::run_with_partition for the self-cleaning driver).
  std::string spill_path;
};

class DistributedGraph {
 public:
  /// Builds all worker-local structures resident. O(|E| + Σ|Vi|) time;
  /// the edge span is read in three sequential streaming passes and is
  /// never copied, so an mmap-backed view needs no resident edge storage.
  DistributedGraph(const GraphView& graph, const EdgePartition& partition);

  /// As above; `options.spill_path` selects spilled construction, which
  /// adds p filtering passes over the edge span (one per worker, each
  /// sequential) in exchange for never holding more than one worker's
  /// subgraph in memory.
  DistributedGraph(const GraphView& graph, const EdgePartition& partition,
                   const DistributeOptions& options);

  [[nodiscard]] PartitionId num_workers() const { return num_workers_; }
  [[nodiscard]] VertexId num_global_vertices() const {
    return num_global_vertices_;
  }
  [[nodiscard]] EdgeId num_global_edges() const { return num_global_edges_; }

  /// Whether subgraphs live in the spill store instead of memory.
  [[nodiscard]] bool spilled() const { return store_.has_value(); }
  /// Path of the spill snapshot. Throws std::invalid_argument in
  /// resident mode.
  [[nodiscard]] const std::string& spill_path() const {
    EBV_REQUIRE(spilled(), "spill_path(): subgraphs are resident");
    return store_->path();
  }

  /// Resident mode only — spilled graphs have no long-lived subgraph to
  /// reference; use load_worker(). Throws std::invalid_argument when
  /// spilled.
  [[nodiscard]] const LocalSubgraph& local(PartitionId i) const {
    EBV_REQUIRE(!spilled(),
                "local(): subgraphs are spilled to disk; use load_worker()");
    return locals_[i];
  }

  /// Spilled mode only: materialise worker i from the spill store.
  /// `build_csr = false` skips the local adjacency CSRs (enough for
  /// message routing). Throws std::invalid_argument in resident mode.
  [[nodiscard]] LocalSubgraph load_worker(PartitionId i,
                                          bool build_csr = true) const {
    EBV_REQUIRE(spilled(), "load_worker(): subgraphs are resident; use local()");
    return store_->load_worker(i, build_csr);
  }

  /// Parts holding vertex v (ascending). Size 1 for non-replicated
  /// vertices; empty for vertices covered by no edge. Throws
  /// std::invalid_argument for an out-of-range global id.
  [[nodiscard]] std::span<const PartitionId> parts_of(VertexId global) const {
    EBV_REQUIRE(global < num_global_vertices_,
                "parts_of: global vertex id out of range");
    return {replica_parts_.data() + replica_offsets_[global],
            static_cast<std::size_t>(replica_offsets_[global + 1] -
                                     replica_offsets_[global])};
  }
  /// Master part of v, or kInvalidPartition for uncovered vertices.
  /// Throws std::invalid_argument for an out-of-range global id.
  [[nodiscard]] PartitionId master_of(VertexId global) const {
    EBV_REQUIRE(global < num_global_vertices_,
                "master_of: global vertex id out of range");
    return master_of_vertex_[global];
  }

  /// Σ|Vi| — total replicas, matching the metrics module.
  [[nodiscard]] std::uint64_t total_replicas() const {
    return total_replicas_;
  }

 private:
  void build(const GraphView& graph, const EdgePartition& partition,
             const DistributeOptions& options);

  PartitionId num_workers_ = 0;
  VertexId num_global_vertices_ = 0;
  EdgeId num_global_edges_ = 0;
  std::uint64_t total_replicas_ = 0;
  std::vector<LocalSubgraph> locals_;  // empty in spilled mode
  std::optional<SpillStore> store_;    // engaged in spilled mode
  // parts_of(v) = replica_parts_[replica_offsets_[v] .. replica_offsets_[v+1])
  // — a flat CSR layout instead of |V| small vectors.
  std::vector<std::uint64_t> replica_offsets_;
  std::vector<PartitionId> replica_parts_;
  std::vector<PartitionId> master_of_vertex_;
};

}  // namespace ebv::bsp
