// DistributedGraph: the per-worker view of a vertex-cut partitioned graph.
//
// Construction takes a GraphView plus an EdgePartition and produces, for
// every worker, a local subgraph over dense *local* vertex ids, together
// with the replica routing tables the BSP runtime needs:
//   - a vertex covered by edges in several parts is *replicated*;
//   - one replica is designated the master (the part holding the most
//     incident edges, ties to the lowest part id) — masters combine values
//     from mirrors and broadcast the result back (PowerGraph-style sync,
//     which is how DRONE-like subgraph-centric frameworks communicate).
//
// Taking a GraphView (a resident Graph converts implicitly) makes this the
// out-of-core half of `ebvpart run --mmap`: the edge section of an
// mmap-backed EBVS snapshot is streamed — three sequential passes — and
// the transient construction state is O(|V|·⌈p/64⌉ + Σ|Vi|) resident
// (replica bitmasks + flat CSR-style incident counts), never O(|E|) heap.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "graph/csr.h"
#include "graph/graph_view.h"
#include "partition/partitioner.h"

namespace ebv::bsp {

/// Worker-local subgraph. Edge endpoints are local ids; `global_ids`
/// translates back.
struct LocalSubgraph {
  PartitionId part = 0;

  std::vector<VertexId> global_ids;  // local -> global, ascending

  std::vector<Edge> edges;          // endpoints are local ids
  std::vector<float> edge_weights;  // empty when the graph is unweighted

  CsrGraph out_csr;   // local out-adjacency
  CsrGraph in_csr;    // local in-adjacency
  CsrGraph both_csr;  // symmetrised (for CC-style propagation)

  std::vector<std::uint8_t> is_replicated;  // per local vertex
  std::vector<std::uint8_t> is_master;      // per local vertex
  std::vector<PartitionId> master_part;     // per local vertex
  std::vector<std::uint32_t> global_out_degree;  // per local vertex

  [[nodiscard]] VertexId num_vertices() const {
    return static_cast<VertexId>(global_ids.size());
  }
  [[nodiscard]] EdgeId num_edges() const { return edges.size(); }
  [[nodiscard]] float weight(EdgeId e) const {
    return edge_weights.empty() ? 1.0f : edge_weights[e];
  }
  /// Local id of a global vertex, or kInvalidVertex if absent here.
  /// Binary search over the ascending `global_ids` (local ids are assigned
  /// in ascending global order), so no global→local hash map is stored.
  [[nodiscard]] VertexId local_of(VertexId global) const {
    const auto it =
        std::lower_bound(global_ids.begin(), global_ids.end(), global);
    if (it == global_ids.end() || *it != global) return kInvalidVertex;
    return static_cast<VertexId>(it - global_ids.begin());
  }
};

class DistributedGraph {
 public:
  /// Builds all worker-local structures. O(|E| + Σ|Vi|) time; the edge
  /// span is read in three sequential streaming passes and is never
  /// copied, so an mmap-backed view needs no resident edge storage.
  DistributedGraph(const GraphView& graph, const EdgePartition& partition);

  [[nodiscard]] PartitionId num_workers() const {
    return static_cast<PartitionId>(locals_.size());
  }
  [[nodiscard]] VertexId num_global_vertices() const {
    return num_global_vertices_;
  }
  [[nodiscard]] EdgeId num_global_edges() const { return num_global_edges_; }

  [[nodiscard]] const LocalSubgraph& local(PartitionId i) const {
    return locals_[i];
  }

  /// Parts holding vertex v (ascending). Size 1 for non-replicated
  /// vertices; empty for vertices covered by no edge. Throws
  /// std::invalid_argument for an out-of-range global id.
  [[nodiscard]] std::span<const PartitionId> parts_of(VertexId global) const {
    EBV_REQUIRE(global < num_global_vertices_,
                "parts_of: global vertex id out of range");
    return {replica_parts_.data() + replica_offsets_[global],
            static_cast<std::size_t>(replica_offsets_[global + 1] -
                                     replica_offsets_[global])};
  }
  /// Master part of v, or kInvalidPartition for uncovered vertices.
  /// Throws std::invalid_argument for an out-of-range global id.
  [[nodiscard]] PartitionId master_of(VertexId global) const {
    EBV_REQUIRE(global < num_global_vertices_,
                "master_of: global vertex id out of range");
    return master_of_vertex_[global];
  }

  /// Σ|Vi| — total replicas, matching the metrics module.
  [[nodiscard]] std::uint64_t total_replicas() const {
    return total_replicas_;
  }

 private:
  VertexId num_global_vertices_ = 0;
  EdgeId num_global_edges_ = 0;
  std::uint64_t total_replicas_ = 0;
  std::vector<LocalSubgraph> locals_;
  // parts_of(v) = replica_parts_[replica_offsets_[v] .. replica_offsets_[v+1])
  // — a flat CSR layout instead of |V| small vectors.
  std::vector<std::uint64_t> replica_offsets_;
  std::vector<PartitionId> replica_parts_;
  std::vector<PartitionId> master_of_vertex_;
};

}  // namespace ebv::bsp
