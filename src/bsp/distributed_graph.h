// DistributedGraph: the per-worker view of a vertex-cut partitioned graph.
//
// Construction takes a Graph plus an EdgePartition and produces, for every
// worker, a local subgraph over dense *local* vertex ids, together with the
// replica routing tables the BSP runtime needs:
//   - a vertex covered by edges in several parts is *replicated*;
//   - one replica is designated the master (the part holding the most
//     incident edges, ties to the lowest part id) — masters combine values
//     from mirrors and broadcast the result back (PowerGraph-style sync,
//     which is how DRONE-like subgraph-centric frameworks communicate).
#pragma once

#include <unordered_map>
#include <vector>

#include "graph/csr.h"
#include "graph/graph.h"
#include "partition/partitioner.h"

namespace ebv::bsp {

/// Worker-local subgraph. Edge endpoints are local ids; `global_ids`
/// translates back.
struct LocalSubgraph {
  PartitionId part = 0;

  std::vector<VertexId> global_ids;                   // local -> global
  std::unordered_map<VertexId, VertexId> local_ids;   // global -> local

  std::vector<Edge> edges;          // endpoints are local ids
  std::vector<float> edge_weights;  // empty when the graph is unweighted

  CsrGraph out_csr;   // local out-adjacency
  CsrGraph in_csr;    // local in-adjacency
  CsrGraph both_csr;  // symmetrised (for CC-style propagation)

  std::vector<std::uint8_t> is_replicated;  // per local vertex
  std::vector<std::uint8_t> is_master;      // per local vertex
  std::vector<PartitionId> master_part;     // per local vertex
  std::vector<std::uint32_t> global_out_degree;  // per local vertex

  [[nodiscard]] VertexId num_vertices() const {
    return static_cast<VertexId>(global_ids.size());
  }
  [[nodiscard]] EdgeId num_edges() const { return edges.size(); }
  [[nodiscard]] float weight(EdgeId e) const {
    return edge_weights.empty() ? 1.0f : edge_weights[e];
  }
  /// Local id of a global vertex, or kInvalidVertex if absent here.
  [[nodiscard]] VertexId local_of(VertexId global) const {
    const auto it = local_ids.find(global);
    return it == local_ids.end() ? kInvalidVertex : it->second;
  }
};

class DistributedGraph {
 public:
  /// Builds all worker-local structures. O(|E| + Σ|Vi|).
  DistributedGraph(const Graph& graph, const EdgePartition& partition);

  [[nodiscard]] PartitionId num_workers() const {
    return static_cast<PartitionId>(locals_.size());
  }
  [[nodiscard]] VertexId num_global_vertices() const {
    return num_global_vertices_;
  }
  [[nodiscard]] EdgeId num_global_edges() const { return num_global_edges_; }

  [[nodiscard]] const LocalSubgraph& local(PartitionId i) const {
    return locals_[i];
  }

  /// Parts holding vertex v (ascending). Size 1 for non-replicated
  /// vertices; empty for vertices covered by no edge.
  [[nodiscard]] const std::vector<PartitionId>& parts_of(VertexId global) const {
    return parts_of_vertex_[global];
  }
  /// Master part of v, or kInvalidPartition for uncovered vertices.
  [[nodiscard]] PartitionId master_of(VertexId global) const {
    return master_of_vertex_[global];
  }

  /// Σ|Vi| — total replicas, matching the metrics module.
  [[nodiscard]] std::uint64_t total_replicas() const {
    return total_replicas_;
  }

 private:
  VertexId num_global_vertices_ = 0;
  EdgeId num_global_edges_ = 0;
  std::uint64_t total_replicas_ = 0;
  std::vector<LocalSubgraph> locals_;
  std::vector<std::vector<PartitionId>> parts_of_vertex_;
  std::vector<PartitionId> master_of_vertex_;
};

}  // namespace ebv::bsp
