// Blogel-like block-centric comparator (Yan et al., VLDB 2014).
//
// Blogel partitions with a multi-source Graph Voronoi Diagram: sampled
// seeds grow BFS regions ("blocks"), every block is connected, and blocks
// are packed onto workers. The paper notes Blogel's CC essentially merges
// whole blocks, so its pre-computing (Voronoi) time must be charged to CC
// (paper §V-B); we do the same via `precompute_seconds`.
//
// The produced EdgePartition plugs into the ordinary BSP runtime, so the
// Blogel series in Figures 2/3 runs the exact same protocol as the six
// partition algorithms — only the placement and the extra charge differ.
#pragma once

#include "bsp/cost_model.h"
#include "partition/partitioner.h"

namespace ebv::engines {

class VoronoiPartitioner final : public Partitioner {
 public:
  struct Options {
    /// Seeds sampled per Voronoi round, as a fraction of vertices.
    double seed_fraction = 0.001;
    /// Blocks whose size exceeds cap·|V|/p are re-split next round.
    std::uint32_t max_rounds = 5;
  };

  VoronoiPartitioner() : VoronoiPartitioner(Options()) {}
  explicit VoronoiPartitioner(Options options) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "voronoi"; }
  [[nodiscard]] EdgePartition partition(
      const Graph& graph, const PartitionConfig& config) const override;

  /// Virtual cost of the distributed Voronoi pre-compute on `p` workers —
  /// added to Blogel's CC time as in the paper.
  static double precompute_seconds(const Graph& graph, PartitionId p,
                                   const bsp::ClusterCostModel& cost);

 private:
  Options options_;
};

}  // namespace ebv::engines
