// Galois-like shared-memory vertex-centric comparator (DESIGN.md §4).
//
// Models a single multi-core machine running round-based parallel graph
// kernels with zero replication and no network: per round, the work is
// divided over `threads` cores (capped at one simulated node's core count,
// which is what limits Galois on the paper's largest graphs), with a small
// contention factor and a per-round synchronisation latency.
//
// Reported times come from that cost model; the CC and PageRank sweeps
// additionally execute on the real shared thread pool (common/parallel.h)
// in a race-free Jacobi/pull form, so wall-clock time also scales with the
// host's cores while results stay identical for every thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "bsp/cost_model.h"
#include "graph/graph.h"

namespace ebv::engines {

struct SmpResult {
  double execution_seconds = 0.0;
  std::uint32_t rounds = 0;
  std::vector<double> values;
};

class SmpEngine {
 public:
  struct Options {
    std::uint32_t threads = 8;
    /// Cores available on one simulated node; requests beyond this cap are
    /// clamped (a shared-memory system cannot leave its node).
    std::uint32_t max_cores = 8;
    /// Per-extra-thread memory-bandwidth contention (fractional slowdown).
    double contention_per_thread = 0.04;
    bsp::ClusterCostModel cost_model;
  };

  SmpEngine() : SmpEngine(Options()) {}
  explicit SmpEngine(Options options);

  /// Label-propagation connected components (rounds until fixpoint).
  SmpResult connected_components(const Graph& graph) const;

  /// Bellman-Ford-style SSSP with a round-based frontier.
  SmpResult sssp(const Graph& graph, VertexId source) const;

  /// Power-iteration PageRank, `iterations` rounds.
  SmpResult pagerank(const Graph& graph, std::uint32_t iterations,
                     double damping = 0.85) const;

 private:
  [[nodiscard]] double round_seconds(std::uint64_t work_units) const;
  Options options_;
  double effective_threads_;
};

}  // namespace ebv::engines
