#include "engines/smp_engine.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/assert.h"
#include "graph/csr.h"

namespace ebv::engines {

SmpEngine::SmpEngine(Options options) : options_(options) {
  EBV_REQUIRE(options_.threads >= 1, "need at least one thread");
  const std::uint32_t t = std::min(options_.threads, options_.max_cores);
  // t cores, each slowed by contention from its siblings.
  effective_threads_ =
      static_cast<double>(t) /
      (1.0 + options_.contention_per_thread * static_cast<double>(t - 1));
}

double SmpEngine::round_seconds(std::uint64_t work_units) const {
  return options_.cost_model.comp_seconds(work_units) / effective_threads_ +
         options_.cost_model.latency_seconds();
}

SmpResult SmpEngine::connected_components(const Graph& graph) const {
  SmpResult result;
  result.values.resize(graph.num_vertices());
  std::iota(result.values.begin(), result.values.end(), 0.0);

  bool changed = true;
  while (changed) {
    changed = false;
    // Symmetric label propagation sweep over the edge list.
    for (const Edge& e : graph.edges()) {
      const double lo = std::min(result.values[e.src], result.values[e.dst]);
      if (result.values[e.src] > lo) {
        result.values[e.src] = lo;
        changed = true;
      }
      if (result.values[e.dst] > lo) {
        result.values[e.dst] = lo;
        changed = true;
      }
    }
    ++result.rounds;
    result.execution_seconds += round_seconds(graph.num_edges());
  }
  return result;
}

SmpResult SmpEngine::sssp(const Graph& graph, VertexId source) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  SmpResult result;
  result.values.assign(graph.num_vertices(), kInf);
  if (source >= graph.num_vertices()) return result;
  const CsrGraph out = CsrGraph::build(graph, CsrGraph::Direction::kOut);

  result.values[source] = 0.0;
  std::vector<VertexId> frontier{source};
  std::vector<std::uint8_t> in_next(graph.num_vertices(), 0);
  while (!frontier.empty()) {
    std::vector<VertexId> next;
    std::uint64_t work = frontier.size();
    for (const VertexId v : frontier) {
      const auto neighbors = out.neighbors(v);
      const auto edge_ids = out.edge_ids(v);
      work += neighbors.size();
      for (std::size_t k = 0; k < neighbors.size(); ++k) {
        const double candidate =
            result.values[v] + graph.weight(edge_ids[k]);
        const VertexId w = neighbors[k];
        if (candidate < result.values[w]) {
          result.values[w] = candidate;
          if (in_next[w] == 0) {
            in_next[w] = 1;
            next.push_back(w);
          }
        }
      }
    }
    for (const VertexId w : next) in_next[w] = 0;
    frontier = std::move(next);
    ++result.rounds;
    result.execution_seconds += round_seconds(work);
  }
  return result;
}

SmpResult SmpEngine::pagerank(const Graph& graph, std::uint32_t iterations,
                              double damping) const {
  const VertexId n = graph.num_vertices();
  SmpResult result;
  result.values.assign(n, n == 0 ? 0.0 : 1.0 / n);
  std::vector<double> next(n, 0.0);
  for (std::uint32_t it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), (1.0 - damping) / n);
    for (const Edge& e : graph.edges()) {
      next[e.dst] += damping * result.values[e.src] / graph.out_degree(e.src);
    }
    result.values.swap(next);
    ++result.rounds;
    result.execution_seconds += round_seconds(graph.num_edges() + n);
  }
  return result;
}

}  // namespace ebv::engines
