#include "engines/smp_engine.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <numeric>

#include "common/assert.h"
#include "common/parallel.h"
#include "graph/csr.h"

namespace ebv::engines {

SmpEngine::SmpEngine(Options options) : options_(options) {
  EBV_REQUIRE(options_.threads >= 1, "need at least one thread");
  const std::uint32_t t = std::min(options_.threads, options_.max_cores);
  // t cores, each slowed by contention from its siblings.
  effective_threads_ =
      static_cast<double>(t) /
      (1.0 + options_.contention_per_thread * static_cast<double>(t - 1));
}

double SmpEngine::round_seconds(std::uint64_t work_units) const {
  return options_.cost_model.comp_seconds(work_units) / effective_threads_ +
         options_.cost_model.latency_seconds();
}

SmpResult SmpEngine::connected_components(const Graph& graph) const {
  const VertexId n = graph.num_vertices();
  SmpResult result;
  result.values.resize(n);
  std::iota(result.values.begin(), result.values.end(), 0.0);
  const CsrGraph both = CsrGraph::build(graph, CsrGraph::Direction::kBoth);

  // Jacobi min-label propagation: each round reads `values` and writes
  // `next`, so vertex chunks parallelise over the pool without races and
  // the fixpoint (the minimum id of each component, matching
  // cc_reference) is identical for every thread count. Unlike the
  // in-place edge-list sweep this replaced, labels advance one hop per
  // round, so `rounds` (and the simulated times derived from it) grows
  // with the component diameter — the round-based parallel model this
  // engine simulates, rather than an artifact.
  std::vector<double> next(result.values);
  bool changed = true;
  while (changed) {
    std::atomic<bool> any_change{false};
    parallel_for_chunks(n, [&](std::size_t begin, std::size_t end) {
      bool local_change = false;
      for (std::size_t v = begin; v < end; ++v) {
        double lo = result.values[v];
        for (const VertexId u : both.neighbors(static_cast<VertexId>(v))) {
          lo = std::min(lo, result.values[u]);
        }
        next[v] = lo;
        local_change |= lo != result.values[v];
      }
      if (local_change) any_change.store(true, std::memory_order_relaxed);
    });
    result.values.swap(next);
    changed = any_change.load(std::memory_order_relaxed);
    ++result.rounds;
    result.execution_seconds += round_seconds(graph.num_edges());
  }
  return result;
}

SmpResult SmpEngine::sssp(const Graph& graph, VertexId source) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  SmpResult result;
  result.values.assign(graph.num_vertices(), kInf);
  if (source >= graph.num_vertices()) return result;
  const CsrGraph out = CsrGraph::build(graph, CsrGraph::Direction::kOut);

  result.values[source] = 0.0;
  std::vector<VertexId> frontier{source};
  std::vector<std::uint8_t> in_next(graph.num_vertices(), 0);
  while (!frontier.empty()) {
    std::vector<VertexId> next;
    std::uint64_t work = frontier.size();
    for (const VertexId v : frontier) {
      const auto neighbors = out.neighbors(v);
      const auto edge_ids = out.edge_ids(v);
      work += neighbors.size();
      for (std::size_t k = 0; k < neighbors.size(); ++k) {
        const double candidate =
            result.values[v] + graph.weight(edge_ids[k]);
        const VertexId w = neighbors[k];
        if (candidate < result.values[w]) {
          result.values[w] = candidate;
          if (in_next[w] == 0) {
            in_next[w] = 1;
            next.push_back(w);
          }
        }
      }
    }
    for (const VertexId w : next) in_next[w] = 0;
    frontier = std::move(next);
    ++result.rounds;
    result.execution_seconds += round_seconds(work);
  }
  return result;
}

SmpResult SmpEngine::pagerank(const Graph& graph, std::uint32_t iterations,
                              double damping) const {
  const VertexId n = graph.num_vertices();
  SmpResult result;
  result.values.assign(n, n == 0 ? 0.0 : 1.0 / n);
  // Pull form of the push sweep: the in-CSR lists each destination's
  // contributions in edge order (CsrGraph::build is a stable counting
  // sort), so per-vertex sums add in exactly the order the sequential
  // push-based loop did — results are bit-identical to pagerank_reference
  // while destination chunks parallelise over the pool without races.
  const CsrGraph in_csr = CsrGraph::build(graph, CsrGraph::Direction::kIn);
  std::vector<double> next(n, 0.0);
  for (std::uint32_t it = 0; it < iterations; ++it) {
    parallel_for_chunks(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t v = begin; v < end; ++v) {
        double sum = (1.0 - damping) / n;
        for (const VertexId u : in_csr.neighbors(static_cast<VertexId>(v))) {
          sum += damping * result.values[u] / graph.out_degree(u);
        }
        next[v] = sum;
      }
    });
    result.values.swap(next);
    ++result.rounds;
    result.execution_seconds += round_seconds(graph.num_edges() + n);
  }
  return result;
}

}  // namespace ebv::engines
