#include "engines/blogel.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/rng.h"
#include "graph/csr.h"

namespace ebv::engines {

EdgePartition VoronoiPartitioner::partition(
    const Graph& graph, const PartitionConfig& config) const {
  check_partition_config(graph, config);
  const PartitionId p = config.num_parts;
  const CsrGraph adj = CsrGraph::build(graph, CsrGraph::Direction::kBoth);
  const VertexId n = graph.num_vertices();

  Rng rng(derive_seed(config.seed, 0xB1));
  std::vector<std::uint32_t> block_of(n, kInvalidVertex);
  std::uint32_t num_blocks = 0;

  // Multi-round multi-source BFS: sample seeds among unassigned vertices,
  // grow all regions simultaneously, repeat for stragglers.
  for (std::uint32_t round = 0; round < options_.max_rounds; ++round) {
    std::vector<VertexId> unassigned;
    for (VertexId v = 0; v < n; ++v) {
      if (block_of[v] == kInvalidVertex && adj.degree(v) > 0) {
        unassigned.push_back(v);
      }
    }
    if (unassigned.empty()) break;
    // Many more blocks than workers, so largest-first packing can balance
    // them (Blogel samples thousands of Voronoi sources for the same
    // reason).
    const std::size_t want = std::max<std::size_t>(
        static_cast<std::size_t>(p) * 8,
        static_cast<std::size_t>(options_.seed_fraction *
                                 static_cast<double>(n)) +
            1);
    std::shuffle(unassigned.begin(), unassigned.end(), rng);
    const std::size_t take = std::min(want, unassigned.size());

    std::queue<VertexId> frontier;
    for (std::size_t s = 0; s < take; ++s) {
      block_of[unassigned[s]] = num_blocks++;
      frontier.push(unassigned[s]);
    }
    while (!frontier.empty()) {
      const VertexId v = frontier.front();
      frontier.pop();
      for (const VertexId w : adj.neighbors(v)) {
        if (block_of[w] == kInvalidVertex) {
          block_of[w] = block_of[v];
          frontier.push(w);
        }
      }
    }
  }
  // Leftovers (isolated or never reached): one singleton block each is
  // overkill — fold them into a shared overflow block instead.
  std::uint32_t overflow = kInvalidVertex;
  for (VertexId v = 0; v < n; ++v) {
    if (block_of[v] == kInvalidVertex) {
      if (overflow == kInvalidVertex) overflow = num_blocks++;
      block_of[v] = overflow;
    }
  }

  // Pack blocks onto workers: largest-first onto the least-loaded worker
  // (balance by vertex count, Blogel's default objective).
  std::vector<std::uint64_t> block_size(num_blocks, 0);
  for (VertexId v = 0; v < n; ++v) ++block_size[block_of[v]];
  std::vector<std::uint32_t> blocks(num_blocks);
  std::iota(blocks.begin(), blocks.end(), 0U);
  std::sort(blocks.begin(), blocks.end(), [&](std::uint32_t a, std::uint32_t b) {
    return block_size[a] > block_size[b];
  });
  std::vector<std::uint64_t> load(p, 0);
  std::vector<PartitionId> worker_of_block(num_blocks, 0);
  for (const std::uint32_t b : blocks) {
    const auto it = std::min_element(load.begin(), load.end());
    const PartitionId w = static_cast<PartitionId>(it - load.begin());
    worker_of_block[b] = w;
    load[w] += block_size[b];
  }

  EdgePartition result;
  result.num_parts = p;
  result.part_of_edge.resize(graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    result.part_of_edge[e] = worker_of_block[block_of[graph.edge(e).src]];
  }
  return result;
}

double VoronoiPartitioner::precompute_seconds(
    const Graph& graph, PartitionId p, const bsp::ClusterCostModel& cost) {
  // Distributed multi-source BFS touches every edge and vertex a small
  // constant number of times, spread over p workers, plus a handful of
  // synchronisation rounds.
  const double sweep = cost.comp_seconds(2 * graph.num_edges() +
                                         graph.num_vertices()) /
                       static_cast<double>(p);
  return sweep + 10.0 * cost.latency_seconds();
}

}  // namespace ebv::engines
