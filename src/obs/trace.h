// Span tracer emitting Chrome trace-event JSON (chrome://tracing /
// https://ui.perfetto.dev), wired into the task-graph executor, the BSP
// superstep loop, mailbox spill/drain, and the serve request path.
//
// Contract (docs/OBSERVABILITY.md):
//  * Off by default. While disarmed, Span construction and instant() are
//    a single relaxed atomic load — no timestamp, no allocation, no lock.
//    Hot paths stay untouched unless `--trace` armed the collector.
//  * Event names must be string literals (stored as const char*, escaped
//    never — the tracer does not copy or quote them).
//  * Events buffer per-thread (lock-free append after a once-per-thread
//    registration); stop_and_render() must run after traced work has
//    quiesced — it is the CLI epilogue, not a live sampler.
//  * Tracks: tid 0 is the calling/main thread; the task-graph executor
//    assigns tid rank+1 via ThreadTrackGuard so every rank gets its own
//    row and spans nest per track.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace ebv::obs::trace {

inline constexpr std::uint64_t kNoArg = ~static_cast<std::uint64_t>(0);

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// True between start() and stop_and_render(). Relaxed: instrumentation
/// gates on this and tolerates the boundary race (events straddling a
/// stop are dropped by their epoch check).
inline bool enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Arm the collector: zero the clock, invalidate buffered events from
/// any earlier trace, start accepting events.
void start();

/// Disarm and render every buffered event as a Chrome trace-event JSON
/// document ({"traceEvents":[...]}). Call after traced work quiesced.
[[nodiscard]] std::string stop_and_render();

/// stop_and_render() straight to a file; throws std::runtime_error with
/// the path on I/O failure.
void stop_and_write(const std::string& path);

/// Set the calling thread's track id for subsequent events (0 = main).
void set_thread_track(std::uint32_t track);

[[nodiscard]] std::uint32_t thread_track();

/// Scoped track override; restores the previous track on destruction
/// (pool threads are reused across team invocations).
class ThreadTrackGuard {
 public:
  explicit ThreadTrackGuard(std::uint32_t track);
  ~ThreadTrackGuard();
  ThreadTrackGuard(const ThreadTrackGuard&) = delete;
  ThreadTrackGuard& operator=(const ThreadTrackGuard&) = delete;

 private:
  std::uint32_t prev_;
};

/// RAII complete-event ("ph":"X") span on the calling thread's track.
/// `name` must be a string literal; `arg` renders as args.v when given.
class Span {
 public:
  explicit Span(const char* name, std::uint64_t arg = kNoArg);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::uint64_t arg_;
  std::uint64_t epoch_ = 0;
  std::chrono::steady_clock::time_point begin_{};
  bool armed_;
};

/// Zero-duration instant event ("ph":"i", thread scope) — steal,
/// park/unpark markers.
void instant(const char* name, std::uint64_t arg = kNoArg);

/// Retrospective complete event from externally captured timestamps
/// (serve admission-queue wait: begin is enqueue time, end is dequeue).
void complete(const char* name, std::chrono::steady_clock::time_point begin,
              std::chrono::steady_clock::time_point end,
              std::uint64_t arg = kNoArg);

}  // namespace ebv::obs::trace
