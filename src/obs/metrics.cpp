#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "analysis/table.h"
#include "common/format.h"

namespace ebv::obs {
namespace {

void add_relaxed(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void max_relaxed(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

double Histogram::bucket_bound(std::size_t i) {
  return std::ldexp(kFirstBound, static_cast<int>(i));
}

std::size_t Histogram::bucket_index(double v) {
  // NaN and anything at or below the first boundary share bucket 0;
  // negative latencies cannot occur upstream (steady clock), so a
  // dedicated underflow bucket would never fill.
  if (!(v > kFirstBound)) return 0;
  int exp = 0;
  const double mantissa = std::frexp(v / kFirstBound, &exp);
  // v / kFirstBound == mantissa * 2^exp with mantissa in [0.5, 1). The
  // smallest i with v <= bound(i) is exp, except exactly at a power of
  // two (mantissa == 0.5) where the boundary is inclusive: i = exp - 1.
  const int i = (mantissa == 0.5) ? exp - 1 : exp;
  if (i < 0) return 0;
  return std::min(static_cast<std::size_t>(i), kNumBuckets);
}

void Histogram::record(double v) {
  counts_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  add_relaxed(sum_, v);
  max_relaxed(max_, v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  for (std::size_t i = 0; i <= kNumBuckets; ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
    snap.count += snap.counts[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  auto rank = static_cast<std::uint64_t>(std::ceil(clamped * static_cast<double>(count)));
  rank = std::clamp<std::uint64_t>(rank, 1, count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) {
      // Bucket upper bound, clamped so a quantile never exceeds the
      // recorded max (a lone sample mid-bucket would otherwise report
      // p50 above max — confusing in the rendered table).
      return std::min(Histogram::bucket_bound(i), max);
    }
  }
  // Ranked sample sits in the overflow bucket: the recorded max is the
  // only finite upper bound available.
  return max;
}

Counter& Registry::counter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

std::vector<Metric> Registry::snapshot() const {
  std::vector<Metric> out;
  {
    MutexLock lock(mu_);
    out.reserve(counters_.size() + gauges_.size() + histograms_.size());
    for (const auto& [name, counter] : counters_) {
      Metric m;
      m.name = name;
      m.kind = Metric::Kind::kCounter;
      m.counter_value = counter->value();
      out.push_back(std::move(m));
    }
    for (const auto& [name, gauge] : gauges_) {
      Metric m;
      m.name = name;
      m.kind = Metric::Kind::kGauge;
      m.gauge_value = gauge->value();
      out.push_back(std::move(m));
    }
    for (const auto& [name, histogram] : histograms_) {
      Metric m;
      m.name = name;
      m.kind = Metric::Kind::kHistogram;
      m.histogram = histogram->snapshot();
      out.push_back(std::move(m));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Metric& a, const Metric& b) { return a.name < b.name; });
  return out;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

std::string suffixed(std::string_view base, std::string_view suffix) {
  std::string name;
  name.reserve(base.size() + 1 + suffix.size());
  name.append(base);
  name.push_back('.');
  name.append(suffix);
  return name;
}

std::string format_metrics_table(const std::vector<Metric>& metrics) {
  analysis::Table table({"metric", "value"});
  for (const Metric& m : metrics) {
    std::string value;
    switch (m.kind) {
      case Metric::Kind::kCounter:
        value = with_commas(m.counter_value);
        break;
      case Metric::Kind::kGauge:
        value = std::to_string(m.gauge_value);
        break;
      case Metric::Kind::kHistogram: {
        const HistogramSnapshot& h = m.histogram;
        value = "n=" + with_commas(h.count);
        if (h.count > 0) {
          // Latency histograms record milliseconds; format_duration
          // takes seconds.
          value += " p50=" + format_duration(h.quantile(0.50) / 1e3);
          value += " p95=" + format_duration(h.quantile(0.95) / 1e3);
          value += " p99=" + format_duration(h.quantile(0.99) / 1e3);
          value += " max=" + format_duration(h.max / 1e3);
        }
        break;
      }
    }
    table.add_row({m.name, std::move(value)});
  }
  return table.to_string();
}

}  // namespace ebv::obs
