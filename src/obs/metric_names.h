// Registered metric names for the obs:: registry. Every name handed to
// Registry::counter/gauge/histogram must be a constant from this header
// (scripts/ebvlint.py, rule `inline-metric-name`, enforces this), so the
// full metric namespace is reviewable in one place and docs/OBSERVABILITY.md
// can stay in lockstep.
//
// Naming convention: `kebab.dotted` — dot-separated segments, each segment
// lower-case alphanumeric words joined by dashes, at least two segments
// (`subsystem.metric` or `subsystem.object.metric`). The lint self-checks
// every literal in this file against that grammar. Per-instance suffixes
// (a request class, a worker id) are appended by the call site with
// obs::suffixed(); the suffix must follow the same grammar.
#pragma once

namespace ebv::obs::names {

// --- serve: admission + request path ----------------------------------
// Suffixed with the request-class name (stats/degree/neighbors/lookup/run).
inline constexpr char kServeQueueWaitMs[] = "serve.queue-wait-ms";
inline constexpr char kServeHandlerMs[] = "serve.handler-ms";
inline constexpr char kServeLatencyMs[] = "serve.latency-ms";
inline constexpr char kServeAccepted[] = "serve.accepted";
inline constexpr char kServeCompleted[] = "serve.completed";
inline constexpr char kServeOverloaded[] = "serve.overloaded";
inline constexpr char kServeBadRequest[] = "serve.bad-request";
inline constexpr char kServeHandlerErrors[] = "serve.handler-errors";
inline constexpr char kServeQueueDepth[] = "serve.queue-depth";
inline constexpr char kServeQueueHighWater[] = "serve.queue-high-water";

// --- serve: session/frame level (not per-class) ------------------------
inline constexpr char kServeSessionsAccepted[] = "serve.sessions-accepted";
inline constexpr char kServeFramesMalformed[] = "serve.frames-malformed";
inline constexpr char kServeMetricsRequests[] = "serve.metrics-requests";

}  // namespace ebv::obs::names
