#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/sync.h"

namespace ebv::obs::trace {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

struct Event {
  const char* name;
  char ph;  // 'X' complete, 'i' instant
  std::uint64_t ts_ns;
  std::uint64_t dur_ns;
  std::uint32_t tid;
  std::uint64_t arg;
};

/// Per-thread event buffer. Appends come only from the owning thread;
/// stop_and_render() reads it after traced work quiesced (the tracer's
/// documented contract), so the events vector itself needs no lock.
struct ThreadBuffer {
  std::uint64_t epoch = 0;
  std::vector<Event> events;
};

struct Collector {
  std::atomic<std::uint64_t> epoch{1};
  std::atomic<std::int64_t> t0_ns{0};
  Mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers EBV_GUARDED_BY(mu);
};

Collector& collector() {
  static Collector c;
  return c;
}

thread_local std::uint32_t t_track = 0;

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t since_start_ns(std::chrono::steady_clock::time_point tp) {
  const std::int64_t ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                              tp.time_since_epoch())
                              .count() -
                          collector().t0_ns.load(std::memory_order_relaxed);
  return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
}

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* buf = nullptr;
  if (buf == nullptr) {
    auto owned = std::make_unique<ThreadBuffer>();
    buf = owned.get();
    Collector& c = collector();
    MutexLock lock(c.mu);
    c.buffers.push_back(std::move(owned));
  }
  return *buf;
}

void append(const char* name, char ph, std::uint64_t ts_ns, std::uint64_t dur_ns,
            std::uint64_t arg) {
  Collector& c = collector();
  const std::uint64_t epoch = c.epoch.load(std::memory_order_relaxed);
  ThreadBuffer& buf = local_buffer();
  if (buf.epoch != epoch) {
    buf.events.clear();
    buf.epoch = epoch;
  }
  buf.events.push_back(Event{name, ph, ts_ns, dur_ns, t_track, arg});
}

/// Append `ns` nanoseconds as a microsecond decimal ("12.345").
void append_us(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

void start() {
  Collector& c = collector();
  c.t0_ns.store(now_ns(), std::memory_order_relaxed);
  c.epoch.fetch_add(1, std::memory_order_relaxed);
  internal::g_enabled.store(true);
}

std::string stop_and_render() {
  internal::g_enabled.store(false);
  Collector& c = collector();
  std::vector<Event> events;
  {
    MutexLock lock(c.mu);
    const std::uint64_t epoch = c.epoch.load(std::memory_order_relaxed);
    for (const auto& buf : c.buffers) {
      if (buf->epoch != epoch) continue;
      events.insert(events.end(), buf->events.begin(), buf->events.end());
    }
  }
  // Stable presentation order: per track by start time, parents (longer
  // duration) before the children they contain when starts coincide.
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
    return a.dur_ns > b.dur_ns;
  });

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  std::vector<std::uint32_t> tids;
  for (const Event& e : events) {
    if (std::find(tids.begin(), tids.end(), e.tid) == tids.end()) {
      tids.push_back(e.tid);
    }
  }
  std::sort(tids.begin(), tids.end());
  for (const std::uint32_t tid : tids) {
    comma();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    out += ",\"args\":{\"name\":\"";
    out += tid == 0 ? "main" : "rank " + std::to_string(tid - 1);
    out += "\"}}";
  }
  for (const Event& e : events) {
    comma();
    out += "{\"name\":\"";
    out += e.name;  // string literals by contract: no escaping needed
    out += "\",\"cat\":\"ebv\",\"ph\":\"";
    out += e.ph;
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"ts\":";
    append_us(out, e.ts_ns);
    if (e.ph == 'X') {
      out += ",\"dur\":";
      append_us(out, e.dur_ns);
    } else {
      out += ",\"s\":\"t\"";
    }
    if (e.arg != kNoArg) {
      out += ",\"args\":{\"v\":";
      out += std::to_string(e.arg);
      out += "}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

void stop_and_write(const std::string& path) {
  const std::string json = stop_and_render();
  std::ofstream out(path);
  out << json;
  out.flush();
  if (!out) {
    throw std::runtime_error("trace: cannot write " + path);
  }
}

void set_thread_track(std::uint32_t track) { t_track = track; }

std::uint32_t thread_track() { return t_track; }

ThreadTrackGuard::ThreadTrackGuard(std::uint32_t track) : prev_(t_track) {
  t_track = track;
}

ThreadTrackGuard::~ThreadTrackGuard() { t_track = prev_; }

Span::Span(const char* name, std::uint64_t arg)
    : name_(name), arg_(arg), armed_(enabled()) {
  if (!armed_) return;
  epoch_ = collector().epoch.load(std::memory_order_relaxed);
  begin_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!armed_ || !enabled()) return;
  if (collector().epoch.load(std::memory_order_relaxed) != epoch_) return;
  const auto end = std::chrono::steady_clock::now();
  const std::uint64_t ts = since_start_ns(begin_);
  const auto dur = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin_)
          .count());
  append(name_, 'X', ts, dur, arg_);
}

void instant(const char* name, std::uint64_t arg) {
  if (!enabled()) return;
  append(name, 'i', since_start_ns(std::chrono::steady_clock::now()), 0, arg);
}

void complete(const char* name, std::chrono::steady_clock::time_point begin,
              std::chrono::steady_clock::time_point end, std::uint64_t arg) {
  if (!enabled()) return;
  const std::uint64_t ts = since_start_ns(begin);
  const std::int64_t dur =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin).count();
  append(name, 'X', ts, dur > 0 ? static_cast<std::uint64_t>(dur) : 0, arg);
}

}  // namespace ebv::obs::trace
