// Process-wide metrics registry: named counters, gauges, and fixed-
// boundary log-bucket histograms with p50/p95/p99 readout.
//
// Contract (docs/OBSERVABILITY.md):
//  * The hot path — Counter::add, Gauge::set/update_max, Histogram::record
//    — is lock-free: relaxed atomic read-modify-writes only, no allocation,
//    no mutex. Instruments are safe to hammer from every worker thread.
//  * Registration (Registry::counter/gauge/histogram) and aggregation
//    (Registry::snapshot) take the registry mutex; both are cold paths.
//    Call sites register once, cache the returned reference (stable for
//    the registry's lifetime), and record through it.
//  * Code that never touches a Registry pays nothing: instruments are
//    plain structs, there is no ambient hook in the runtime.
//
// Metric names must be `kebab.dotted` constants from obs/metric_names.h
// (ebvlint rule `inline-metric-name`); per-instance variants append a
// suffix with obs::suffixed().
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.h"

namespace ebv::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }

  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (queue depth, resident workers). update_max keeps
/// a high-water mark in the same instrument family.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }

  void add(std::int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }

  /// Raise the stored value to `v` if larger (relaxed CAS loop).
  void update_max(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Read-only copy of a histogram's state; quantile math lives here so
/// tests can exercise it on hand-built snapshots.
struct HistogramSnapshot {
  // counts[i] for i < kNumBuckets: samples in (bound(i-1), bound(i)];
  // counts[kNumBuckets] is the overflow bucket (> bound(kNumBuckets-1)).
  std::array<std::uint64_t, 49> counts{};
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;

  /// Nearest-rank quantile estimate, q in [0, 1]. Returns the upper
  /// boundary of the bucket holding the ranked sample (exact when the
  /// sample sits on a boundary), clamped to the recorded max so an
  /// estimate never exceeds an observed value; the overflow bucket
  /// reports the max, and empty reports 0.
  [[nodiscard]] double quantile(double q) const;
};

/// Fixed-boundary log-bucket latency/size histogram. Boundaries are
/// bound(i) = kFirstBound * 2^i, shared by every instance so snapshots
/// merge bucket-by-bucket.
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 48;
  static constexpr double kFirstBound = 1e-6;

  /// Upper boundary of bucket i (inclusive).
  [[nodiscard]] static double bucket_bound(std::size_t i);

  /// Index of the bucket whose range contains v; kNumBuckets for
  /// overflow. Non-positive and NaN values land in bucket 0.
  [[nodiscard]] static std::size_t bucket_index(double v);

  void record(double v);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const;

  [[nodiscard]] double quantile(double q) const { return snapshot().quantile(q); }

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets + 1> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// One aggregated metric in a registry snapshot.
struct Metric {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  std::uint64_t counter_value = 0;
  std::int64_t gauge_value = 0;
  HistogramSnapshot histogram;
};

/// Named-instrument registry. Owners (Server, the CLI) hold their own
/// instance so tests running several servers in one process do not
/// cross-pollute; Registry::global() serves process-singleton tools.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create; the returned reference is stable for the registry's
  /// lifetime — cache it and record lock-free.
  Counter& counter(std::string_view name) EBV_EXCLUDES(mu_);
  Gauge& gauge(std::string_view name) EBV_EXCLUDES(mu_);
  Histogram& histogram(std::string_view name) EBV_EXCLUDES(mu_);

  /// Aggregated view of every registered instrument, sorted by name.
  [[nodiscard]] std::vector<Metric> snapshot() const EBV_EXCLUDES(mu_);

  static Registry& global();

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      EBV_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      EBV_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      EBV_GUARDED_BY(mu_);
};

/// `base + "." + suffix` — the one sanctioned way to derive per-instance
/// metric names from the constants in obs/metric_names.h.
[[nodiscard]] std::string suffixed(std::string_view base, std::string_view suffix);

/// Render a snapshot as the fixed-width `metric | value` table shared by
/// `ebvpart query metrics` and the daemon drain report. Histograms render
/// as `n=<count> p50=<..> p95=<..> p99=<..> max=<..>` with durations
/// formatted from milliseconds.
[[nodiscard]] std::string format_metrics_table(const std::vector<Metric>& metrics);

}  // namespace ebv::obs
