#include "serve/server.h"

#ifndef _WIN32

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "analysis/table.h"
#include "common/format.h"
#include "common/parallel.h"
#include "obs/metric_names.h"
#include "obs/trace.h"

namespace ebv::serve {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

std::string ServerStats::to_table() const {
  analysis::Table table({"class", "accepted", "completed", "overloaded",
                         "bad", "errors", "q-max", "p50", "p95", "p99"});
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    const ClassStats& s = classes[c];
    table.add_row({class_name(static_cast<RequestClass>(c)),
                   with_commas(s.accepted), with_commas(s.completed),
                   with_commas(s.rejected_overloaded),
                   with_commas(s.rejected_bad),
                   with_commas(s.internal_errors),
                   std::to_string(s.depth_high_water),
                   format_duration(s.p50_ms / 1e3),
                   format_duration(s.p95_ms / 1e3),
                   format_duration(s.p99_ms / 1e3)});
  }
  return table.to_string();
}

Server::Server(ServeContext context, ServerConfig config)
    : context_(std::move(context)), config_(std::move(config)) {
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    queues_[c] =
        std::make_unique<BoundedChannel<std::shared_ptr<PendingRequest>>>(
            std::max<std::uint32_t>(config_.queue_depth[c], 1));
  }

  // Register every instrument before any thread starts, then record
  // through the cached pointers lock-free.
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    const auto cls = class_name(static_cast<RequestClass>(c));
    wait_ms_[c] =
        &registry_.histogram(obs::suffixed(obs::names::kServeQueueWaitMs, cls));
    handler_ms_[c] =
        &registry_.histogram(obs::suffixed(obs::names::kServeHandlerMs, cls));
    latency_ms_[c] =
        &registry_.histogram(obs::suffixed(obs::names::kServeLatencyMs, cls));
  }
  sessions_accepted_ = &registry_.counter(obs::names::kServeSessionsAccepted);
  malformed_frames_ = &registry_.counter(obs::names::kServeFramesMalformed);
  metrics_requests_ = &registry_.counter(obs::names::kServeMetricsRequests);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket(" + config_.socket_path + ")");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd_);
    throw std::runtime_error("socket path too long: " + config_.socket_path);
  }
  std::strncpy(addr.sun_path, config_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  // A previous daemon that crashed leaves the inode behind; bind() would
  // fail on it forever. The stale-sweep shape (common/stale_sweep.h)
  // reclaims abandoned ones by pid; ours is re-created fresh here.
  ::unlink(config_.socket_path.c_str());
  // ebvlint: allow(raw-read-boundary): POSIX sockaddr idiom, not a
  // deserialising read — bind() only inspects the struct we just built.
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    throw_errno("bind(" + config_.socket_path + ")");
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    ::unlink(config_.socket_path.c_str());
    throw_errno("listen(" + config_.socket_path + ")");
  }

  started_ = std::chrono::steady_clock::now();
  acceptor_ = std::thread([this] { accept_loop(); });
  // run_team blocks its caller for the team's lifetime, so it gets a
  // dedicated host thread; the team itself drains the admission queues.
  worker_host_ = std::thread([this] {
    ThreadPool::global().run_team(
        std::max<std::uint32_t>(config_.num_workers, 1),
        [this](unsigned rank, unsigned) { worker_loop(rank); });
  });
}

Server::~Server() {
  request_stop();
  wait();
}

void Server::accept_loop() {
  while (!draining_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    MutexLock lock(sessions_mu_);
    reap_finished_sessions();
    if (sessions_.size() >= config_.max_sessions ||
        draining_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    auto session = std::make_shared<Session>();
    session->fd = fd;
    sessions_accepted_->add();
    session->reader =
        std::thread([this, session] { session_loop(session); });
    sessions_.push_back(std::move(session));
  }
}

void Server::reap_finished_sessions() {
  std::erase_if(sessions_, [](const std::shared_ptr<Session>& s) {
    if (!s->done.load(std::memory_order_acquire)) return false;
    if (s->reader.joinable()) s->reader.join();
    // The fd stays open until here: a worker may still be writing a
    // response for a request this session enqueued before dying — it
    // holds its own shared_ptr, so close only at erase time.
    if (s->fd >= 0) ::close(s->fd);
    s->fd = -1;
    return true;
  });
}

bool Server::respond(Session& session, MsgType type, Status status,
                     std::uint64_t request_id,
                     std::span<const std::uint8_t> body) {
  MutexLock lock(session.write_mu);
  return respond_locked(session, type, status, request_id, body);
}

bool Server::respond_locked(Session& session, MsgType type, Status status,
                            std::uint64_t request_id,
                            std::span<const std::uint8_t> body) {
  return write_frame(session.fd, type, status, request_id, body);
}

bool Server::respond_error(Session& session, MsgType type, Status status,
                           std::uint64_t request_id,
                           const std::string& message) {
  const std::string text = "error: " + message;
  // ebvlint: allow(raw-read-boundary): outbound byte view of a string
  // this function owns — serialisation, not an unbounded read.
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(text.data());
  return respond(session, type, status, request_id, {bytes, text.size()});
}

void Server::session_loop(const std::shared_ptr<Session>& session) {
  while (true) {
    ReadFrameResult frame = read_frame(session->fd, kMaxRequestBody);
    if (frame.outcome == ReadOutcome::kEof ||
        frame.outcome == ReadOutcome::kError) {
      break;  // clean close or truncation/IO error — nothing to answer
    }
    if (frame.outcome == ReadOutcome::kMalformed) {
      // Bad magic/version or hostile body_len: the stream cannot be
      // trusted past the header, so answer once and hang up.
      malformed_frames_->add();
      const MsgType echo = is_known_type(frame.header.type)
                               ? static_cast<MsgType>(frame.header.type)
                               : MsgType::kPing;
      respond_error(*session, echo, Status::kBadRequest, frame.header.request_id,
                    frame.error);
      break;
    }

    if (!is_known_type(frame.header.type)) {
      // The frame is structurally sound, so the stream stays usable.
      respond_error(*session, MsgType::kPing, Status::kBadRequest,
                    frame.header.request_id,
                    "unknown message type " +
                        std::to_string(frame.header.type));
      continue;
    }
    const auto type = static_cast<MsgType>(frame.header.type);

    if (type == MsgType::kPing) {
      if (!respond(*session, MsgType::kPing, Status::kOk,
                   frame.header.request_id, {})) {
        break;
      }
      continue;
    }

    if (type == MsgType::kMetrics) {
      // Answered inline like kPing — the report is a cheap read-only
      // snapshot and must stay available while the daemon is running
      // (including mid-drain), not only at the SIGTERM drain print.
      metrics_requests_->add();
      const std::string report = metrics_report();
      // ebvlint: allow(raw-read-boundary): outbound byte view of a
      // string this function owns — serialisation, not an unbounded read.
      const auto* bytes = reinterpret_cast<const std::uint8_t*>(report.data());
      if (!respond(*session, MsgType::kMetrics, Status::kOk,
                   frame.header.request_id, {bytes, report.size()})) {
        break;
      }
      continue;
    }

    if (draining_.load(std::memory_order_acquire)) {
      respond_error(*session, type, Status::kShuttingDown,
                    frame.header.request_id, "server is draining");
      continue;
    }

    const auto cls = static_cast<std::size_t>(class_of(type));
    auto request = std::make_shared<PendingRequest>();
    request->session = session;
    request->type = type;
    request->request_id = frame.header.request_id;
    request->body = std::move(frame.body);
    request->enqueued = std::chrono::steady_clock::now();

    if (!queues_[cls]->try_push(request)) {
      // Full (or closed by a concurrent drain): reject NOW — admission
      // control means bounded queues, not unbounded buffering.
      counters_[cls].rejected_overloaded.fetch_add(1,
                                                   std::memory_order_relaxed);
      const Status status = draining_.load(std::memory_order_acquire)
                                ? Status::kShuttingDown
                                : Status::kOverloaded;
      respond_error(*session, type, status, frame.header.request_id,
                    std::string(class_name(static_cast<RequestClass>(cls))) +
                        " queue is full; retry later");
      continue;
    }
    counters_[cls].accepted.fetch_add(1, std::memory_order_relaxed);
    session->pending.fetch_add(1, std::memory_order_acq_rel);
    const std::uint32_t depth =
        counters_[cls].depth.fetch_add(1, std::memory_order_relaxed) + 1;
    std::uint32_t high = counters_[cls].depth_high_water.load(
        std::memory_order_relaxed);
    while (depth > high &&
           !counters_[cls].depth_high_water.compare_exchange_weak(
               high, depth, std::memory_order_relaxed)) {
    }
  }
  // The reader is finished (EOF, error or hang-up after a malformed
  // frame), but requests this session already got admitted may still be
  // in flight — every accepted request gets exactly one response, so
  // wait them out, THEN close our half so the peer sees EOF promptly
  // (a client probing "does the server hang up after a bad frame?"
  // must not have to wait for the daemon to drain).
  while (session->pending.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ::shutdown(session->fd, SHUT_RDWR);
  session->done.store(true, std::memory_order_release);
}

void Server::worker_loop(unsigned rank) {
  const std::size_t home = rank % kNumClasses;
  std::array<bool, kNumClasses> drained{};
  std::size_t num_drained = 0;
  while (num_drained < kNumClasses) {
    bool any = false;
    for (std::size_t i = 0; i < kNumClasses; ++i) {
      const std::size_t c = (home + i) % kNumClasses;
      if (drained[c]) continue;
      std::shared_ptr<PendingRequest> request;
      while (queues_[c]->try_pop(request)) {
        counters_[c].depth.fetch_sub(1, std::memory_order_relaxed);
        process(*request);
        request.reset();
        any = true;
      }
    }
    if (any) continue;
    // Idle: park briefly on the home class (staggered by rank, so every
    // class has a preferred waiter) — pop_until_closed is what tells
    // "empty right now" (keep multiplexing) from "closed and drained"
    // (this class is finished for good).
    std::size_t c = home;
    while (drained[c]) c = (c + 1) % kNumClasses;
    std::shared_ptr<PendingRequest> request;
    switch (queues_[c]->pop_until_closed(request,
                                         std::chrono::milliseconds(2))) {
      case ChannelPopStatus::kItem:
        counters_[c].depth.fetch_sub(1, std::memory_order_relaxed);
        process(*request);
        break;
      case ChannelPopStatus::kClosed:
        drained[c] = true;
        ++num_drained;
        break;
      case ChannelPopStatus::kTimedOut:
        break;
    }
  }
}

void Server::process(const PendingRequest& request) {
  const auto cls = static_cast<std::size_t>(class_of(request.type));
  // Split the admission-queue wait (enqueue → here) from handler time so
  // the registry can attribute latency to queueing vs execution.
  const auto picked_up = std::chrono::steady_clock::now();
  wait_ms_[cls]->record(std::chrono::duration<double, std::milli>(
                            picked_up - request.enqueued)
                            .count());
  obs::trace::complete("serve.queue-wait", request.enqueued, picked_up, cls);
  const obs::trace::Span span("serve.handler", cls);
  Status status = Status::kOk;
  std::vector<std::uint8_t> body;
  std::string error;
  try {
    body = handle_request(context_, request.type, request.body);
    if (body.size() > kMaxResponseBody) {
      status = Status::kInternalError;
      error = "response of " + std::to_string(body.size()) +
              " bytes exceeds the frame limit";
    }
  } catch (const ProtocolError& e) {
    status = Status::kBadRequest;
    error = e.what();
  } catch (const BadRequestError& e) {
    status = Status::kBadRequest;
    error = e.what();
  } catch (const std::invalid_argument& e) {
    status = Status::kBadRequest;
    error = e.what();
  } catch (const std::exception& e) {
    status = Status::kInternalError;
    error = e.what();
  }

  const auto finished = std::chrono::steady_clock::now();
  handler_ms_[cls]->record(
      std::chrono::duration<double, std::milli>(finished - picked_up).count());

  if (status == Status::kOk) {
    counters_[cls].completed.fetch_add(1, std::memory_order_relaxed);
    latency_ms_[cls]->record(std::chrono::duration<double, std::milli>(
                                 finished - request.enqueued)
                                 .count());
    respond(*request.session, request.type, Status::kOk, request.request_id,
            body);
  } else {
    auto& counter = status == Status::kBadRequest
                        ? counters_[cls].rejected_bad
                        : counters_[cls].internal_errors;
    counter.fetch_add(1, std::memory_order_relaxed);
    respond_error(*request.session, request.type, status, request.request_id,
                  error);
  }
  request.session->pending.fetch_sub(1, std::memory_order_acq_rel);
}

void Server::request_stop() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  // Orderly drain; each step unblocks the next thread we join in wait().
  // 1. The acceptor's poll loop observes draining_ within 100 ms.
  // 2. Session readers are parked in recv(); SHUT_RD turns that into a
  //    clean EOF without racing a worker's concurrent response write
  //    (which a close() would).
  MutexLock lock(sessions_mu_);
  for (const auto& session : sessions_) {
    if (session->fd >= 0) ::shutdown(session->fd, SHUT_RD);
  }
}

void Server::wait() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    // request_stop() already shut the sockets down; join the readers.
    MutexLock lock(sessions_mu_);
    for (const auto& session : sessions_) {
      if (session->reader.joinable()) session->reader.join();
    }
  }
  // No reader is pushing any more: close the channels so the workers'
  // pop_until_closed reports kClosed once each queue is drained...
  for (auto& queue : queues_) queue->close();
  // ...and every accepted request has been answered once they exit.
  if (worker_host_.joinable()) worker_host_.join();
  {
    MutexLock lock(sessions_mu_);
    for (const auto& session : sessions_) {
      if (session->fd >= 0) ::close(session->fd);
      session->fd = -1;
    }
    sessions_.clear();
  }
  ::unlink(config_.socket_path.c_str());
}

ServerStats Server::stats() const {
  ServerStats out;
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    const obs::HistogramSnapshot lat = latency_ms_[c]->snapshot();
    out.classes[c].p50_ms = lat.quantile(0.50);
    out.classes[c].p95_ms = lat.quantile(0.95);
    out.classes[c].p99_ms = lat.quantile(0.99);
  }
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    const ClassCounters& k = counters_[c];
    out.classes[c].accepted = k.accepted.load(std::memory_order_relaxed);
    out.classes[c].completed = k.completed.load(std::memory_order_relaxed);
    out.classes[c].rejected_overloaded =
        k.rejected_overloaded.load(std::memory_order_relaxed);
    out.classes[c].rejected_bad =
        k.rejected_bad.load(std::memory_order_relaxed);
    out.classes[c].internal_errors =
        k.internal_errors.load(std::memory_order_relaxed);
    out.classes[c].depth_high_water =
        k.depth_high_water.load(std::memory_order_relaxed);
  }
  out.sessions_accepted = sessions_accepted_->value();
  out.malformed_frames = malformed_frames_->value();
  out.uptime_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - started_)
                           .count();
  return out;
}

std::string Server::metrics_report() const {
  return stats().to_table() + "\n" +
         obs::format_metrics_table(registry_.snapshot());
}

}  // namespace ebv::serve

#else  // _WIN32

namespace ebv::serve {

std::string ServerStats::to_table() const { return {}; }

Server::Server(ServeContext, ServerConfig) {
  throw std::runtime_error("ebvpart serve is not supported on this platform");
}
Server::~Server() = default;
void Server::request_stop() {}
void Server::wait() {}
ServerStats Server::stats() const { return {}; }
std::string Server::metrics_report() const { return {}; }

}  // namespace ebv::serve

#endif
