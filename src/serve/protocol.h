// EBVQ wire protocol for `ebvpart serve` / `ebvpart query`: framed,
// length-prefixed, versioned little-endian messages over a stream socket.
//
// Every message — request or response — is one frame: a fixed 24-byte
// header followed by `body_len` payload bytes (byte-level spec in
// docs/SERVE.md, same style as docs/FORMATS.md):
//
//   | offset | size | field                                       |
//   | ------ | ---- | ------------------------------------------- |
//   | 0      | u32  | magic "EBVQ" (45 42 56 51)                  |
//   | 4      | u16  | version, currently 1                        |
//   | 6      | u16  | type (MsgType)                              |
//   | 8      | u16  | status (Status; 0 = kOk in every request)   |
//   | 10     | u16  | reserved, must be 0                         |
//   | 12     | u32  | body_len                                    |
//   | 16     | u64  | request_id (echoed verbatim in the response)|
//
// Responses echo the request's type and request_id; a non-kOk status
// carries a flag-named error message ("error: ...") as the body. The
// reader side follows the same bounded-read discipline as
// common/binary_io.h: a hostile body_len is rejected against a hard cap
// BEFORE any allocation or read, truncation is detected at EOF, and a
// frame with bad magic/version is answered with an error frame and the
// connection closed — never an OOM, never a crash.
//
// Payload encoding is explicit little-endian field-by-field (no struct
// punning), shared by the server handlers and the client, so the two
// sides cannot drift.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"

namespace ebv::serve {

inline constexpr std::uint32_t kFrameMagic = 0x51564245u;  // "EBVQ"
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 24;

/// Hard caps enforced by the frame reader before any allocation. A
/// request is small (batched ids); responses carry rendered tables and
/// neighborhoods, so they get more headroom.
inline constexpr std::uint32_t kMaxRequestBody = 1u << 20;    // 1 MiB
inline constexpr std::uint32_t kMaxResponseBody = 16u << 20;  // 16 MiB

/// Batch/readback bounds validated by the payload decoders.
inline constexpr std::uint32_t kMaxBatch = 65'536;
inline constexpr std::uint32_t kMaxHops = 64;
inline constexpr std::uint32_t kMaxNeighborhood = 1u << 20;

/// Message types. Responses reuse the request's type; direction is
/// positional (client writes requests, server writes responses).
enum class MsgType : std::uint16_t {
  kPing = 0,       // health check; empty body both ways, never queued
  kStats = 1,      // graph stats table (byte-identical to `stats --mmap`)
  kDegree = 2,     // batched out/in-degree lookup
  kNeighbors = 3,  // bounded k-hop neighborhood (forward BFS)
  kPartition = 4,  // batched edge -> part lookup from the .ebvp
  kReplicas = 5,   // batched vertex -> master + replica parts lookup
  kRun = 6,        // per-request BSP app on the snapshot (or a subgraph)
  kMetrics = 7,    // live metrics report (rendered text); never queued
};

enum class Status : std::uint16_t {
  kOk = 0,
  kOverloaded = 1,    // admission queue full; retry later
  kBadRequest = 2,    // malformed frame/payload or out-of-range operand
  kShuttingDown = 3,  // server is draining; no new work accepted
  kInternalError = 4,
};

/// Admission-control classes: each has its own BoundedChannel with an
/// independent depth limit, so an expensive class (kRun) saturating its
/// queue cannot starve the cheap lookup classes. kPartition/kReplicas
/// share the router-lookup class.
enum class RequestClass : std::uint8_t {
  kStats = 0,
  kDegree = 1,
  kNeighbors = 2,
  kLookup = 3,
  kRun = 4,
};
inline constexpr std::size_t kNumClasses = 5;

[[nodiscard]] const char* msg_type_name(MsgType type);
[[nodiscard]] const char* status_name(Status status);
[[nodiscard]] const char* class_name(RequestClass cls);

/// Admission class of a queued message type; throws ProtocolError for
/// kPing (answered inline by the session, never queued) and for unknown
/// types.
[[nodiscard]] RequestClass class_of(MsgType type);
[[nodiscard]] bool is_known_type(std::uint16_t type);

/// Raised by every payload decoder on malformed input (truncated body,
/// zero-length or over-limit batch, trailing bytes). The server answers
/// with Status::kBadRequest and the flag-named message.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint16_t version = kProtocolVersion;
  std::uint16_t type = 0;
  std::uint16_t status = 0;
  std::uint16_t reserved = 0;
  std::uint32_t body_len = 0;
  std::uint64_t request_id = 0;
};

void encode_frame_header(const FrameHeader& header,
                         unsigned char out[kFrameHeaderBytes]);
[[nodiscard]] FrameHeader decode_frame_header(
    const unsigned char in[kFrameHeaderBytes]);

// --- Payload buffer helpers -------------------------------------------------

/// Append-only little-endian payload builder.
class PayloadWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(std::span<const std::uint8_t> data);
  /// Length-prefixed (u32) string.
  void str(std::string_view s);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounded little-endian payload reader: every accessor throws
/// ProtocolError on truncation; expect_end() rejects trailing bytes so a
/// decoder consumes its body exactly.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::uint8_t> body) : body_(body) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  /// Length-prefixed (u32) string, capped at `max_len`.
  [[nodiscard]] std::string str(std::uint32_t max_len);
  [[nodiscard]] std::size_t remaining() const { return body_.size() - pos_; }
  void expect_end() const;

 private:
  void need(std::size_t n) const;
  std::span<const std::uint8_t> body_;
  std::size_t pos_ = 0;
};

// --- Request payloads -------------------------------------------------------

/// Every request names the target snapshot by its index in the server's
/// `--mmap` list (0 for single-snapshot deployments).
struct StatsRequest {
  std::uint32_t graph_index = 0;
};

struct DegreeRequest {
  std::uint32_t graph_index = 0;
  std::vector<VertexId> vertices;  // 1..kMaxBatch entries
};

struct NeighborsRequest {
  std::uint32_t graph_index = 0;
  VertexId source = 0;
  std::uint32_t hops = 1;   // 1..kMaxHops
  std::uint32_t limit = 0;  // max vertices returned; 0 picks server default
};

struct PartitionRequest {
  std::uint32_t graph_index = 0;
  std::vector<EdgeId> edges;  // 1..kMaxBatch entries
};

struct ReplicasRequest {
  std::uint32_t graph_index = 0;
  std::vector<VertexId> vertices;  // 1..kMaxBatch entries
};

/// Per-request analytics: partition the snapshot (or the `hops`-bounded
/// subgraph around `source`) with `algo` into `parts` workers and run the
/// app; the response body is the rendered run table — byte-identical to
/// `ebvpart run --mmap <snapshot> --algo <algo> --parts <parts> --app
/// <app>` when hops == 0.
struct RunRequest {
  std::uint32_t graph_index = 0;
  std::uint8_t app = 0;  // 0 = cc, 1 = pr, 2 = sssp
  std::uint32_t parts = 8;
  VertexId source = 0;    // SSSP source / subgraph seed (hops > 0)
  std::uint32_t hops = 0; // 0 = whole snapshot, else k-hop bounded subgraph
  std::string algo = "ebv";
};

std::vector<std::uint8_t> encode_stats_request(const StatsRequest& req);
std::vector<std::uint8_t> encode_degree_request(const DegreeRequest& req);
std::vector<std::uint8_t> encode_neighbors_request(const NeighborsRequest& req);
std::vector<std::uint8_t> encode_partition_request(const PartitionRequest& req);
std::vector<std::uint8_t> encode_replicas_request(const ReplicasRequest& req);
std::vector<std::uint8_t> encode_run_request(const RunRequest& req);

/// Decoders validate structure only (batch in [1, kMaxBatch], hops in
/// [1, kMaxHops], exact body consumption); range checks against the
/// actual graph happen in the handlers. All throw ProtocolError.
StatsRequest decode_stats_request(std::span<const std::uint8_t> body);
DegreeRequest decode_degree_request(std::span<const std::uint8_t> body);
NeighborsRequest decode_neighbors_request(std::span<const std::uint8_t> body);
PartitionRequest decode_partition_request(std::span<const std::uint8_t> body);
ReplicasRequest decode_replicas_request(std::span<const std::uint8_t> body);
RunRequest decode_run_request(std::span<const std::uint8_t> body);

// --- Response payloads ------------------------------------------------------

struct DegreeInfo {
  std::uint32_t out_degree = 0;
  std::uint32_t in_degree = 0;
};

struct NeighborsResponse {
  bool truncated = false;          // hit the vertex limit before exhausting
  std::vector<VertexId> vertices;  // ascending, includes the source
};

struct ReplicaInfo {
  PartitionId master = kInvalidPartition;
  std::vector<PartitionId> parts;  // ascending; empty for uncovered vertices
};

std::vector<std::uint8_t> encode_degree_response(
    std::span<const DegreeInfo> degrees);
std::vector<std::uint8_t> encode_neighbors_response(
    const NeighborsResponse& resp);
std::vector<std::uint8_t> encode_partition_response(
    std::span<const PartitionId> parts);
std::vector<std::uint8_t> encode_replicas_response(
    std::span<const ReplicaInfo> replicas);

std::vector<DegreeInfo> decode_degree_response(
    std::span<const std::uint8_t> body);
NeighborsResponse decode_neighbors_response(std::span<const std::uint8_t> body);
std::vector<PartitionId> decode_partition_response(
    std::span<const std::uint8_t> body);
std::vector<ReplicaInfo> decode_replicas_response(
    std::span<const std::uint8_t> body);

// --- Socket frame I/O (POSIX) -----------------------------------------------

/// Write one frame (header + body), looping over partial writes; SIGPIPE
/// is suppressed per-call (MSG_NOSIGNAL). Returns false when the peer is
/// gone or the descriptor errors — callers treat that as a dead session.
bool write_frame(int fd, MsgType type, Status status, std::uint64_t request_id,
                 std::span<const std::uint8_t> body);

enum class ReadOutcome {
  kFrame,      // a complete, structurally valid frame was read
  kEof,        // clean close at a frame boundary
  kMalformed,  // bad magic/version/reserved or oversized body_len; the
               // body was NOT read (it cannot be trusted) — answer an
               // error frame, then close
  kError,      // truncated header/body or I/O error — close silently
};

struct ReadFrameResult {
  ReadOutcome outcome = ReadOutcome::kError;
  FrameHeader header;
  std::vector<std::uint8_t> body;
  std::string error;  // human-readable detail for kMalformed/kError
};

/// Read one frame with the bounded-read discipline described above:
/// body_len is checked against `max_body` BEFORE any body allocation.
ReadFrameResult read_frame(int fd, std::uint32_t max_body);

/// Connect to a unix-domain socket. Returns the fd; throws
/// std::runtime_error (with errno detail) on failure.
int connect_unix(const std::string& socket_path);

}  // namespace ebv::serve
