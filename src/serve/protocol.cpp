#include "serve/protocol.h"

#include <cstring>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace ebv::serve {

namespace {

void put_le(std::vector<std::uint8_t>& buf, std::uint64_t v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    buf.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

std::uint64_t get_le(const unsigned char* p, std::size_t n) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

/// Shared batched-id decode: u32 count in [1, kMaxBatch], then count
/// little-endian elements of `elem_bytes`.
template <typename T>
std::vector<T> decode_id_batch(PayloadReader& reader, const char* what) {
  const std::uint32_t count = reader.u32();
  if (count == 0) {
    throw ProtocolError(std::string("zero-length ") + what + " batch");
  }
  if (count > kMaxBatch) {
    throw ProtocolError(std::string(what) + " batch count " +
                        std::to_string(count) + " exceeds the limit of " +
                        std::to_string(kMaxBatch));
  }
  std::vector<T> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if constexpr (sizeof(T) == 8) {
      out.push_back(static_cast<T>(reader.u64()));
    } else {
      out.push_back(static_cast<T>(reader.u32()));
    }
  }
  return out;
}

}  // namespace

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kPing: return "ping";
    case MsgType::kStats: return "stats";
    case MsgType::kDegree: return "degree";
    case MsgType::kNeighbors: return "neighbors";
    case MsgType::kPartition: return "partition";
    case MsgType::kReplicas: return "replicas";
    case MsgType::kRun: return "run";
    case MsgType::kMetrics: return "metrics";
  }
  return "unknown";
}

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk: return "OK";
    case Status::kOverloaded: return "OVERLOADED";
    case Status::kBadRequest: return "BAD_REQUEST";
    case Status::kShuttingDown: return "SHUTTING_DOWN";
    case Status::kInternalError: return "INTERNAL_ERROR";
  }
  return "UNKNOWN";
}

const char* class_name(RequestClass cls) {
  switch (cls) {
    case RequestClass::kStats: return "stats";
    case RequestClass::kDegree: return "degree";
    case RequestClass::kNeighbors: return "neighbors";
    case RequestClass::kLookup: return "lookup";
    case RequestClass::kRun: return "run";
  }
  return "unknown";
}

RequestClass class_of(MsgType type) {
  switch (type) {
    case MsgType::kStats: return RequestClass::kStats;
    case MsgType::kDegree: return RequestClass::kDegree;
    case MsgType::kNeighbors: return RequestClass::kNeighbors;
    case MsgType::kPartition:
    case MsgType::kReplicas: return RequestClass::kLookup;
    case MsgType::kRun: return RequestClass::kRun;
    case MsgType::kPing:
    case MsgType::kMetrics: break;  // answered inline, never queued
  }
  throw ProtocolError(std::string("message type has no admission class: ") +
                      msg_type_name(type));
}

bool is_known_type(std::uint16_t type) {
  return type <= static_cast<std::uint16_t>(MsgType::kMetrics);
}

void encode_frame_header(const FrameHeader& header,
                         unsigned char out[kFrameHeaderBytes]) {
  std::vector<std::uint8_t> buf;
  buf.reserve(kFrameHeaderBytes);
  put_le(buf, header.magic, 4);
  put_le(buf, header.version, 2);
  put_le(buf, header.type, 2);
  put_le(buf, header.status, 2);
  put_le(buf, header.reserved, 2);
  put_le(buf, header.body_len, 4);
  put_le(buf, header.request_id, 8);
  std::memcpy(out, buf.data(), kFrameHeaderBytes);
}

FrameHeader decode_frame_header(const unsigned char in[kFrameHeaderBytes]) {
  FrameHeader h;
  h.magic = static_cast<std::uint32_t>(get_le(in, 4));
  h.version = static_cast<std::uint16_t>(get_le(in + 4, 2));
  h.type = static_cast<std::uint16_t>(get_le(in + 6, 2));
  h.status = static_cast<std::uint16_t>(get_le(in + 8, 2));
  h.reserved = static_cast<std::uint16_t>(get_le(in + 10, 2));
  h.body_len = static_cast<std::uint32_t>(get_le(in + 12, 4));
  h.request_id = get_le(in + 16, 8);
  return h;
}

// --- PayloadWriter / PayloadReader ------------------------------------------

void PayloadWriter::u16(std::uint16_t v) { put_le(buf_, v, 2); }
void PayloadWriter::u32(std::uint32_t v) { put_le(buf_, v, 4); }
void PayloadWriter::u64(std::uint64_t v) { put_le(buf_, v, 8); }

void PayloadWriter::bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void PayloadWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void PayloadReader::need(std::size_t n) const {
  if (body_.size() - pos_ < n) {
    throw ProtocolError("truncated payload (need " + std::to_string(n) +
                        " bytes, " + std::to_string(body_.size() - pos_) +
                        " left)");
  }
}

std::uint8_t PayloadReader::u8() {
  need(1);
  return body_[pos_++];
}

std::uint16_t PayloadReader::u16() {
  need(2);
  const auto v = static_cast<std::uint16_t>(get_le(body_.data() + pos_, 2));
  pos_ += 2;
  return v;
}

std::uint32_t PayloadReader::u32() {
  need(4);
  const auto v = static_cast<std::uint32_t>(get_le(body_.data() + pos_, 4));
  pos_ += 4;
  return v;
}

std::uint64_t PayloadReader::u64() {
  need(8);
  const std::uint64_t v = get_le(body_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

std::string PayloadReader::str(std::uint32_t max_len) {
  const std::uint32_t len = u32();
  if (len > max_len) {
    throw ProtocolError("string length " + std::to_string(len) +
                        " exceeds the limit of " + std::to_string(max_len));
  }
  need(len);
  std::string out(reinterpret_cast<const char*>(body_.data() + pos_), len);
  pos_ += len;
  return out;
}

void PayloadReader::expect_end() const {
  if (pos_ != body_.size()) {
    throw ProtocolError("trailing bytes after payload (" +
                        std::to_string(body_.size() - pos_) + " extra)");
  }
}

// --- Request payloads -------------------------------------------------------

std::vector<std::uint8_t> encode_stats_request(const StatsRequest& req) {
  PayloadWriter w;
  w.u32(req.graph_index);
  return w.take();
}

std::vector<std::uint8_t> encode_degree_request(const DegreeRequest& req) {
  PayloadWriter w;
  w.u32(req.graph_index);
  w.u32(static_cast<std::uint32_t>(req.vertices.size()));
  for (const VertexId v : req.vertices) w.u32(v);
  return w.take();
}

std::vector<std::uint8_t> encode_neighbors_request(
    const NeighborsRequest& req) {
  PayloadWriter w;
  w.u32(req.graph_index);
  w.u32(req.source);
  w.u32(req.hops);
  w.u32(req.limit);
  return w.take();
}

std::vector<std::uint8_t> encode_partition_request(
    const PartitionRequest& req) {
  PayloadWriter w;
  w.u32(req.graph_index);
  w.u32(static_cast<std::uint32_t>(req.edges.size()));
  for (const EdgeId e : req.edges) w.u64(e);
  return w.take();
}

std::vector<std::uint8_t> encode_replicas_request(const ReplicasRequest& req) {
  PayloadWriter w;
  w.u32(req.graph_index);
  w.u32(static_cast<std::uint32_t>(req.vertices.size()));
  for (const VertexId v : req.vertices) w.u32(v);
  return w.take();
}

std::vector<std::uint8_t> encode_run_request(const RunRequest& req) {
  PayloadWriter w;
  w.u32(req.graph_index);
  w.u8(req.app);
  w.u32(req.parts);
  w.u32(req.source);
  w.u32(req.hops);
  w.str(req.algo);
  return w.take();
}

StatsRequest decode_stats_request(std::span<const std::uint8_t> body) {
  PayloadReader r(body);
  StatsRequest req;
  req.graph_index = r.u32();
  r.expect_end();
  return req;
}

DegreeRequest decode_degree_request(std::span<const std::uint8_t> body) {
  PayloadReader r(body);
  DegreeRequest req;
  req.graph_index = r.u32();
  req.vertices = decode_id_batch<VertexId>(r, "degree");
  r.expect_end();
  return req;
}

NeighborsRequest decode_neighbors_request(std::span<const std::uint8_t> body) {
  PayloadReader r(body);
  NeighborsRequest req;
  req.graph_index = r.u32();
  req.source = r.u32();
  req.hops = r.u32();
  req.limit = r.u32();
  r.expect_end();
  if (req.hops == 0 || req.hops > kMaxHops) {
    throw ProtocolError("neighbors hops must be in [1, " +
                        std::to_string(kMaxHops) + "], got " +
                        std::to_string(req.hops));
  }
  if (req.limit > kMaxNeighborhood) {
    throw ProtocolError("neighbors limit " + std::to_string(req.limit) +
                        " exceeds the cap of " +
                        std::to_string(kMaxNeighborhood));
  }
  return req;
}

PartitionRequest decode_partition_request(std::span<const std::uint8_t> body) {
  PayloadReader r(body);
  PartitionRequest req;
  req.graph_index = r.u32();
  req.edges = decode_id_batch<EdgeId>(r, "partition");
  r.expect_end();
  return req;
}

ReplicasRequest decode_replicas_request(std::span<const std::uint8_t> body) {
  PayloadReader r(body);
  ReplicasRequest req;
  req.graph_index = r.u32();
  req.vertices = decode_id_batch<VertexId>(r, "replicas");
  r.expect_end();
  return req;
}

RunRequest decode_run_request(std::span<const std::uint8_t> body) {
  PayloadReader r(body);
  RunRequest req;
  req.graph_index = r.u32();
  req.app = r.u8();
  req.parts = r.u32();
  req.source = r.u32();
  req.hops = r.u32();
  req.algo = r.str(/*max_len=*/64);
  r.expect_end();
  if (req.app > 2) {
    throw ProtocolError("run app selector must be 0 (cc), 1 (pr) or 2 "
                        "(sssp), got " + std::to_string(req.app));
  }
  if (req.hops > kMaxHops) {
    throw ProtocolError("run hops must be in [0, " + std::to_string(kMaxHops) +
                        "], got " + std::to_string(req.hops));
  }
  return req;
}

// --- Response payloads ------------------------------------------------------

std::vector<std::uint8_t> encode_degree_response(
    std::span<const DegreeInfo> degrees) {
  PayloadWriter w;
  w.u32(static_cast<std::uint32_t>(degrees.size()));
  for (const DegreeInfo& d : degrees) {
    w.u32(d.out_degree);
    w.u32(d.in_degree);
  }
  return w.take();
}

std::vector<std::uint8_t> encode_neighbors_response(
    const NeighborsResponse& resp) {
  PayloadWriter w;
  w.u8(resp.truncated ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(resp.vertices.size()));
  for (const VertexId v : resp.vertices) w.u32(v);
  return w.take();
}

std::vector<std::uint8_t> encode_partition_response(
    std::span<const PartitionId> parts) {
  PayloadWriter w;
  w.u32(static_cast<std::uint32_t>(parts.size()));
  for (const PartitionId p : parts) w.u32(p);
  return w.take();
}

std::vector<std::uint8_t> encode_replicas_response(
    std::span<const ReplicaInfo> replicas) {
  PayloadWriter w;
  w.u32(static_cast<std::uint32_t>(replicas.size()));
  for (const ReplicaInfo& r : replicas) {
    w.u32(r.master);
    w.u32(static_cast<std::uint32_t>(r.parts.size()));
    for (const PartitionId p : r.parts) w.u32(p);
  }
  return w.take();
}

std::vector<DegreeInfo> decode_degree_response(
    std::span<const std::uint8_t> body) {
  PayloadReader r(body);
  const std::uint32_t count = r.u32();
  if (count > kMaxBatch) {
    throw ProtocolError("degree response count exceeds the batch limit");
  }
  std::vector<DegreeInfo> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    DegreeInfo d;
    d.out_degree = r.u32();
    d.in_degree = r.u32();
    out.push_back(d);
  }
  r.expect_end();
  return out;
}

NeighborsResponse decode_neighbors_response(
    std::span<const std::uint8_t> body) {
  PayloadReader r(body);
  NeighborsResponse resp;
  resp.truncated = r.u8() != 0;
  const std::uint32_t count = r.u32();
  if (count > kMaxNeighborhood) {
    throw ProtocolError("neighbors response count exceeds the cap");
  }
  resp.vertices.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) resp.vertices.push_back(r.u32());
  r.expect_end();
  return resp;
}

std::vector<PartitionId> decode_partition_response(
    std::span<const std::uint8_t> body) {
  PayloadReader r(body);
  const std::uint32_t count = r.u32();
  if (count > kMaxBatch) {
    throw ProtocolError("partition response count exceeds the batch limit");
  }
  std::vector<PartitionId> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) out.push_back(r.u32());
  r.expect_end();
  return out;
}

std::vector<ReplicaInfo> decode_replicas_response(
    std::span<const std::uint8_t> body) {
  PayloadReader r(body);
  const std::uint32_t count = r.u32();
  if (count > kMaxBatch) {
    throw ProtocolError("replicas response count exceeds the batch limit");
  }
  std::vector<ReplicaInfo> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ReplicaInfo info;
    info.master = r.u32();
    const std::uint32_t nparts = r.u32();
    if (nparts > kMaxBatch) {
      throw ProtocolError("replica part list exceeds the batch limit");
    }
    info.parts.reserve(nparts);
    for (std::uint32_t p = 0; p < nparts; ++p) info.parts.push_back(r.u32());
    out.push_back(std::move(info));
  }
  r.expect_end();
  return out;
}

// --- Socket frame I/O -------------------------------------------------------

#ifndef _WIN32

namespace {

/// send() the whole span, suppressing SIGPIPE; false on error/EPIPE.
bool send_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
#ifdef MSG_NOSIGNAL
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd, data + sent, len - sent, 0);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read exactly `len` bytes. Returns len on success, 0 on immediate EOF,
/// the partial count (or -1 on error) otherwise.
ssize_t recv_all(int fd, std::uint8_t* data, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) return static_cast<ssize_t>(got);
    got += static_cast<std::size_t>(n);
  }
  return static_cast<ssize_t>(got);
}

}  // namespace

bool write_frame(int fd, MsgType type, Status status, std::uint64_t request_id,
                 std::span<const std::uint8_t> body) {
  FrameHeader header;
  header.type = static_cast<std::uint16_t>(type);
  header.status = static_cast<std::uint16_t>(status);
  header.body_len = static_cast<std::uint32_t>(body.size());
  header.request_id = request_id;
  unsigned char raw[kFrameHeaderBytes];
  encode_frame_header(header, raw);
  if (!send_all(fd, raw, kFrameHeaderBytes)) return false;
  return body.empty() || send_all(fd, body.data(), body.size());
}

ReadFrameResult read_frame(int fd, std::uint32_t max_body) {
  ReadFrameResult result;
  unsigned char raw[kFrameHeaderBytes];
  const ssize_t header_read = recv_all(fd, raw, kFrameHeaderBytes);
  if (header_read == 0) {
    result.outcome = ReadOutcome::kEof;
    return result;
  }
  if (header_read != static_cast<ssize_t>(kFrameHeaderBytes)) {
    result.outcome = ReadOutcome::kError;
    result.error = "truncated frame header";
    return result;
  }
  result.header = decode_frame_header(raw);
  if (result.header.magic != kFrameMagic) {
    result.outcome = ReadOutcome::kMalformed;
    result.error = "bad frame magic";
    return result;
  }
  if (result.header.version != kProtocolVersion) {
    result.outcome = ReadOutcome::kMalformed;
    result.error = "unsupported protocol version " +
                   std::to_string(result.header.version);
    return result;
  }
  if (result.header.reserved != 0) {
    result.outcome = ReadOutcome::kMalformed;
    result.error = "non-zero reserved header field";
    return result;
  }
  // The cap is enforced BEFORE any allocation or body read: a hostile
  // length prefix cannot drive an unbounded resize (binary_io.h rule).
  if (result.header.body_len > max_body) {
    result.outcome = ReadOutcome::kMalformed;
    result.error = "frame body of " + std::to_string(result.header.body_len) +
                   " bytes exceeds the limit of " + std::to_string(max_body);
    return result;
  }
  result.body.resize(result.header.body_len);
  if (result.header.body_len > 0) {
    const ssize_t body_read =
        recv_all(fd, result.body.data(), result.body.size());
    if (body_read != static_cast<ssize_t>(result.body.size())) {
      result.outcome = ReadOutcome::kError;
      result.error = "truncated frame body";
      return result;
    }
  }
  result.outcome = ReadOutcome::kFrame;
  return result;
}

int connect_unix(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long for AF_UNIX: " +
                             socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("socket(AF_UNIX) failed: " +
                             std::string(std::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    throw std::runtime_error("connect(" + socket_path +
                             ") failed: " + std::strerror(saved));
  }
  return fd;
}

#else  // _WIN32

bool write_frame(int, MsgType, Status, std::uint64_t,
                 std::span<const std::uint8_t>) {
  throw std::runtime_error("ebvpart serve: not supported on this platform");
}

ReadFrameResult read_frame(int, std::uint32_t) {
  throw std::runtime_error("ebvpart serve: not supported on this platform");
}

int connect_unix(const std::string&) {
  throw std::runtime_error("ebvpart serve: not supported on this platform");
}

#endif

}  // namespace ebv::serve
