#include "serve/client.h"

#ifndef _WIN32

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace ebv::serve {

Client::Client(const std::string& socket_path)
    : fd_(connect_unix(socket_path)) {}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_request_id_(other.next_request_id_) {}

std::vector<std::uint8_t> Client::call(MsgType type,
                                       std::span<const std::uint8_t> body) {
  const std::uint64_t id = next_request_id_++;
  if (!write_frame(fd_, type, Status::kOk, id, body)) {
    throw std::runtime_error("serve connection lost while sending " +
                             std::string(msg_type_name(type)));
  }
  ReadFrameResult frame = read_frame(fd_, kMaxResponseBody);
  if (frame.outcome != ReadOutcome::kFrame) {
    throw std::runtime_error(
        "serve connection lost while awaiting " +
        std::string(msg_type_name(type)) + " response" +
        (frame.error.empty() ? "" : ": " + frame.error));
  }
  if (frame.header.request_id != id) {
    throw std::runtime_error("response id mismatch (got " +
                             std::to_string(frame.header.request_id) +
                             ", expected " + std::to_string(id) + ")");
  }
  const auto status = static_cast<Status>(frame.header.status);
  if (status != Status::kOk) {
    throw ServeError(status,
                     std::string(frame.body.begin(), frame.body.end()));
  }
  if (frame.header.type != static_cast<std::uint16_t>(type)) {
    throw std::runtime_error("response type mismatch");
  }
  return std::move(frame.body);
}

void Client::ping() { (void)call(MsgType::kPing, {}); }

std::string Client::stats(std::uint32_t graph_index) {
  const auto body =
      call(MsgType::kStats, encode_stats_request({graph_index}));
  return {body.begin(), body.end()};
}

std::vector<DegreeInfo> Client::degrees(const DegreeRequest& req) {
  return decode_degree_response(
      call(MsgType::kDegree, encode_degree_request(req)));
}

NeighborsResponse Client::neighbors(const NeighborsRequest& req) {
  return decode_neighbors_response(
      call(MsgType::kNeighbors, encode_neighbors_request(req)));
}

std::vector<PartitionId> Client::partition_of(const PartitionRequest& req) {
  return decode_partition_response(
      call(MsgType::kPartition, encode_partition_request(req)));
}

std::vector<ReplicaInfo> Client::replicas(const ReplicasRequest& req) {
  return decode_replicas_response(
      call(MsgType::kReplicas, encode_replicas_request(req)));
}

std::string Client::run(const RunRequest& req) {
  const auto body = call(MsgType::kRun, encode_run_request(req));
  return {body.begin(), body.end()};
}

std::string Client::metrics() {
  const auto body = call(MsgType::kMetrics, {});
  return {body.begin(), body.end()};
}

bool Client::send_raw(std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const auto n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
#ifdef MSG_NOSIGNAL
                          MSG_NOSIGNAL
#else
                          0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

ReadFrameResult Client::read_response() {
  return read_frame(fd_, kMaxResponseBody);
}

}  // namespace ebv::serve

#else  // _WIN32

namespace ebv::serve {

Client::Client(const std::string&) {
  throw std::runtime_error("ebvpart query is not supported on this platform");
}
Client::~Client() = default;
Client::Client(Client&&) noexcept = default;
std::vector<std::uint8_t> Client::call(MsgType, std::span<const std::uint8_t>) {
  return {};
}
void Client::ping() {}
std::string Client::stats(std::uint32_t) { return {}; }
std::vector<DegreeInfo> Client::degrees(const DegreeRequest&) { return {}; }
NeighborsResponse Client::neighbors(const NeighborsRequest&) { return {}; }
std::vector<PartitionId> Client::partition_of(const PartitionRequest&) {
  return {};
}
std::vector<ReplicaInfo> Client::replicas(const ReplicasRequest&) {
  return {};
}
std::string Client::run(const RunRequest&) { return {}; }
std::string Client::metrics() { return {}; }
bool Client::send_raw(std::span<const std::uint8_t>) { return false; }
ReadFrameResult Client::read_response() { return {}; }

}  // namespace ebv::serve

#endif
