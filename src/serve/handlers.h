// Per-class request handlers for the serve daemon, written as pure
// functions over an immutable ServeContext so they are trivially
// callable from any worker thread: the context is mmapped/built once at
// startup (MappedGraph snapshots + DistributedGraph routing tables,
// optionally EBVW-spilled) and only read afterwards.
//
// Handlers signal caller mistakes with BadRequestError (mapped to
// Status::kBadRequest and a flag-named "error: ..." body by the server);
// anything else escaping is an internal error.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "bsp/distributed_graph.h"
#include "graph/mapped_graph.h"
#include "partition/partitioner.h"
#include "serve/protocol.h"

namespace ebv::serve {

/// A caller-visible request error; the server answers kBadRequest with
/// the message.
class BadRequestError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Tunable bounds a deployment can tighten from the CLI.
struct ServeLimits {
  std::uint32_t max_batch = kMaxBatch;
  std::uint32_t max_hops = kMaxHops;
  /// Default + cap on vertices returned by a neighbors query and on the
  /// vertex count of a run-request subgraph.
  std::uint32_t neighbor_limit = 1u << 16;
  std::uint32_t max_run_parts = 256;
  std::uint32_t pagerank_iterations = 20;  // matches `ebvpart run`
};

/// One served snapshot: the mmapped EBVS graph, plus (when a partition
/// was given) the .ebvp assignment and the replica/master routing tables
/// built through DistributedGraph — with a spill directory, that
/// construction streams the per-worker subgraphs into an EBVW snapshot
/// (bsp/spill_store.h) so only the O(|V|) routing tables stay resident.
struct GraphEntry {
  std::string name;           // display name (file stem)
  std::string snapshot_path;  // the .ebvs file
  MappedGraph mapped;
  std::optional<EdgePartition> partition;
  std::optional<bsp::DistributedGraph> routing;

  GraphEntry(std::string name_, std::string snapshot_path_,
             MappedGraph mapped_)
      : name(std::move(name_)),
        snapshot_path(std::move(snapshot_path_)),
        mapped(std::move(mapped_)) {}
};

struct ServeContext {
  std::vector<GraphEntry> graphs;
  ServeLimits limits;

  /// Entry for a request's graph_index; throws BadRequestError when out
  /// of range.
  [[nodiscard]] const GraphEntry& graph(std::uint32_t index) const;
};

/// Decode `body` for `type`, execute the query and encode the kOk
/// response body. Throws ProtocolError / BadRequestError for caller
/// mistakes (the server maps both to kBadRequest). kPing is handled
/// inline by the session layer and is rejected here.
std::vector<std::uint8_t> handle_request(const ServeContext& context,
                                         MsgType type,
                                         std::span<const std::uint8_t> body);

// Individual handlers, exposed for the golden-equivalence tests.
std::string handle_stats(const ServeContext& context, const StatsRequest& req);
std::vector<DegreeInfo> handle_degree(const ServeContext& context,
                                      const DegreeRequest& req);
NeighborsResponse handle_neighbors(const ServeContext& context,
                                   const NeighborsRequest& req);
std::vector<PartitionId> handle_partition(const ServeContext& context,
                                          const PartitionRequest& req);
std::vector<ReplicaInfo> handle_replicas(const ServeContext& context,
                                         const ReplicasRequest& req);
std::string handle_run(const ServeContext& context, const RunRequest& req);

}  // namespace ebv::serve
