// Synchronous EBVQ client used by `ebvpart query`, the golden tests and
// the stress battery: one connection, sequential request/response pairs
// with monotonically increasing request ids.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace ebv::serve {

/// A response the server answered with a non-kOk status; `status` and the
/// server's "error: ..." body are preserved so callers (and the CLI) can
/// distinguish kOverloaded from kBadRequest from kShuttingDown.
class ServeError : public std::runtime_error {
 public:
  ServeError(Status status, std::string message)
      : std::runtime_error(std::move(message)), status_(status) {}
  [[nodiscard]] Status status() const { return status_; }

 private:
  Status status_;
};

class Client {
 public:
  /// Connects to the daemon's unix socket; throws std::runtime_error
  /// (errno detail) on failure.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&&) = delete;

  /// Raw round trip: send one frame, read one frame back. Returns the
  /// kOk response body; throws ServeError for non-kOk responses and
  /// std::runtime_error for transport failures (EOF, truncation,
  /// response id/type mismatch).
  std::vector<std::uint8_t> call(MsgType type,
                                 std::span<const std::uint8_t> body);

  // Typed wrappers over call().
  void ping();
  std::string stats(std::uint32_t graph_index = 0);
  std::vector<DegreeInfo> degrees(const DegreeRequest& req);
  NeighborsResponse neighbors(const NeighborsRequest& req);
  std::vector<PartitionId> partition_of(const PartitionRequest& req);
  std::vector<ReplicaInfo> replicas(const ReplicasRequest& req);
  std::string run(const RunRequest& req);
  /// The daemon's live observability report (per-class latency table +
  /// metrics registry), rendered server-side by the drain renderer.
  std::string metrics();

  /// Write arbitrary bytes on the socket, bypassing the frame encoder —
  /// the hostile-input tests use this to send malformed frames.
  bool send_raw(std::span<const std::uint8_t> bytes);
  /// Read one frame off the socket (for inspecting error responses to
  /// raw writes). Uses the response-side body cap.
  ReadFrameResult read_response();

  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace ebv::serve
