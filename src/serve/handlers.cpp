#include "serve/handlers.h"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "analysis/experiment.h"
#include "analysis/render.h"
#include "graph/stats.h"
#include "partition/registry.h"

namespace ebv::serve {
namespace {

/// CLI spelling of an app id (the "app" row of the run table), so a
/// daemon run response byte-matches `ebvpart run --app <label>`.
const char* app_label(std::uint8_t app) {
  switch (app) {
    case 0: return "cc";
    case 1: return "pr";
    case 2: return "sssp";
    default: throw BadRequestError("unknown app id");
  }
}

analysis::App app_of(std::uint8_t app) {
  switch (app) {
    case 0: return analysis::App::kCC;
    case 1: return analysis::App::kPageRank;
    case 2: return analysis::App::kSssp;
    default: throw BadRequestError("unknown app id");
  }
}

void check_vertex(const GraphEntry& entry, VertexId v) {
  if (v >= entry.mapped.view().num_vertices()) {
    throw BadRequestError("vertex " + std::to_string(v) +
                          " out of range for snapshot '" + entry.name +
                          "' with " +
                          std::to_string(entry.mapped.view().num_vertices()) +
                          " vertices");
  }
}

/// Deterministic bounded forward BFS over the snapshot's out-edge CSR:
/// frontier vertices expand in queue (insertion) order, neighbors in CSR
/// order, so the reachable set — and the truncation point — is the same
/// on every run. Returns the visited set (includes the source).
NeighborsResponse bounded_bfs(const GraphEntry& entry, VertexId source,
                              std::uint32_t hops, std::uint32_t limit) {
  const auto offsets = entry.mapped.csr_offsets();
  const auto edges = entry.mapped.view().edges();
  NeighborsResponse out;
  std::unordered_set<VertexId> visited;
  visited.reserve(std::min<std::size_t>(limit, 1u << 16));
  visited.insert(source);
  std::deque<VertexId> frontier{source};
  for (std::uint32_t hop = 0; hop < hops && !frontier.empty(); ++hop) {
    std::deque<VertexId> next;
    for (const VertexId u : frontier) {
      for (std::uint64_t e = offsets[u]; e != offsets[u + 1]; ++e) {
        const VertexId v = edges[e].dst;
        if (visited.contains(v)) continue;
        if (visited.size() >= limit) {
          out.truncated = true;
          break;
        }
        visited.insert(v);
        next.push_back(v);
      }
      if (out.truncated) break;
    }
    if (out.truncated) break;
    frontier = std::move(next);
  }
  out.vertices.assign(visited.begin(), visited.end());
  std::sort(out.vertices.begin(), out.vertices.end());
  return out;
}

}  // namespace

const GraphEntry& ServeContext::graph(std::uint32_t index) const {
  if (index >= graphs.size()) {
    throw BadRequestError("graph index " + std::to_string(index) +
                          " out of range; serving " +
                          std::to_string(graphs.size()) + " snapshot(s)");
  }
  return graphs[index];
}

std::string handle_stats(const ServeContext& context, const StatsRequest& req) {
  const GraphEntry& entry = context.graph(req.graph_index);
  const GraphStats stats = compute_stats(entry.mapped.view());
  return analysis::format_mmap_stats_table(stats, entry.mapped.mapped_bytes());
}

std::vector<DegreeInfo> handle_degree(const ServeContext& context,
                                      const DegreeRequest& req) {
  const GraphEntry& entry = context.graph(req.graph_index);
  if (req.vertices.size() > context.limits.max_batch) {
    throw BadRequestError("degree batch exceeds the server's --max-batch");
  }
  const GraphView view = entry.mapped.view();
  std::vector<DegreeInfo> out;
  out.reserve(req.vertices.size());
  for (const VertexId v : req.vertices) {
    check_vertex(entry, v);
    out.push_back({view.out_degree(v), view.in_degree(v)});
  }
  return out;
}

NeighborsResponse handle_neighbors(const ServeContext& context,
                                   const NeighborsRequest& req) {
  const GraphEntry& entry = context.graph(req.graph_index);
  check_vertex(entry, req.source);
  if (req.hops > context.limits.max_hops) {
    throw BadRequestError("hop count " + std::to_string(req.hops) +
                          " exceeds the server's --max-hops of " +
                          std::to_string(context.limits.max_hops));
  }
  std::uint32_t limit =
      req.limit == 0 ? context.limits.neighbor_limit : req.limit;
  limit = std::min(limit, context.limits.neighbor_limit);
  return bounded_bfs(entry, req.source, req.hops, std::max(limit, 1u));
}

std::vector<PartitionId> handle_partition(const ServeContext& context,
                                          const PartitionRequest& req) {
  const GraphEntry& entry = context.graph(req.graph_index);
  if (!entry.partition.has_value()) {
    throw BadRequestError("snapshot '" + entry.name +
                          "' is served without a partition; start the "
                          "daemon with --partition to enable lookups");
  }
  if (req.edges.size() > context.limits.max_batch) {
    throw BadRequestError("partition batch exceeds the server's --max-batch");
  }
  const EdgePartition& partition = *entry.partition;
  std::vector<PartitionId> out;
  out.reserve(req.edges.size());
  for (const EdgeId e : req.edges) {
    if (e >= partition.part_of_edge.size()) {
      throw BadRequestError("edge " + std::to_string(e) +
                            " out of range for snapshot '" + entry.name +
                            "' with " +
                            std::to_string(partition.part_of_edge.size()) +
                            " edges");
    }
    out.push_back(partition.part_of_edge[e]);
  }
  return out;
}

std::vector<ReplicaInfo> handle_replicas(const ServeContext& context,
                                         const ReplicasRequest& req) {
  const GraphEntry& entry = context.graph(req.graph_index);
  if (!entry.routing.has_value()) {
    throw BadRequestError("snapshot '" + entry.name +
                          "' is served without a partition; start the "
                          "daemon with --partition to enable lookups");
  }
  if (req.vertices.size() > context.limits.max_batch) {
    throw BadRequestError("replicas batch exceeds the server's --max-batch");
  }
  const bsp::DistributedGraph& routing = *entry.routing;
  std::vector<ReplicaInfo> out;
  out.reserve(req.vertices.size());
  for (const VertexId v : req.vertices) {
    check_vertex(entry, v);
    ReplicaInfo info;
    info.master = routing.master_of(v);
    const auto parts = routing.parts_of(v);
    info.parts.assign(parts.begin(), parts.end());
    out.push_back(std::move(info));
  }
  return out;
}

std::string handle_run(const ServeContext& context, const RunRequest& req) {
  const GraphEntry& entry = context.graph(req.graph_index);
  const analysis::App app = app_of(req.app);
  if (req.parts == 0 || req.parts > context.limits.max_run_parts) {
    throw BadRequestError("parts must be in [1, " +
                          std::to_string(context.limits.max_run_parts) + "]");
  }
  // Validate the algorithm name up front so an unknown --algo is a
  // kBadRequest, not an internal error from deep inside the pipeline.
  try {
    (void)make_partitioner(req.algo);
  } catch (const std::exception& e) {
    throw BadRequestError(e.what());
  }

  if (req.hops == 0) {
    // Whole-snapshot run: the exact pipeline `ebvpart run --mmap` drives,
    // so the rendered table is byte-identical to the CLI.
    if (app == analysis::App::kSssp && req.source != 0) {
      throw BadRequestError(
          "whole-snapshot sssp always sources vertex 0 (as `ebvpart run` "
          "does); pass source 0, or hops > 0 for a subgraph run seeded at "
          "the source");
    }
    const analysis::ExperimentResult result = analysis::run_experiment(
        entry.mapped.view(), req.algo, req.parts, app, {},
        context.limits.pagerank_iterations);
    return analysis::format_run_table(app_label(req.app), result,
                                      /*include_raw=*/false);
  }

  // Bounded subgraph run: induce the k-hop neighborhood of the source and
  // relabel it so the seed becomes local vertex 0 — which is exactly the
  // vertex run_experiment's SSSP sources, so `source` means the same
  // thing for every app.
  check_vertex(entry, req.source);
  if (req.hops > context.limits.max_hops) {
    throw BadRequestError("hop count " + std::to_string(req.hops) +
                          " exceeds the server's --max-hops of " +
                          std::to_string(context.limits.max_hops));
  }
  const NeighborsResponse hood = bounded_bfs(entry, req.source, req.hops,
                                             context.limits.neighbor_limit);
  std::unordered_map<VertexId, VertexId> local_of;
  local_of.reserve(hood.vertices.size());
  local_of.emplace(req.source, 0);
  VertexId next_local = 1;
  for (const VertexId v : hood.vertices) {
    if (v != req.source) local_of.emplace(v, next_local++);
  }

  const GraphView view = entry.mapped.view();
  const auto offsets = entry.mapped.csr_offsets();
  std::vector<Edge> edges;
  std::vector<float> weights;
  for (const VertexId u : hood.vertices) {
    for (std::uint64_t e = offsets[u]; e != offsets[u + 1]; ++e) {
      const auto it = local_of.find(view.edge(e).dst);
      if (it == local_of.end()) continue;  // endpoint outside the bound
      edges.push_back({local_of.at(u), it->second});
      if (view.has_weights()) weights.push_back(view.weight(e));
    }
  }
  if (edges.empty()) {
    throw BadRequestError("the " + std::to_string(req.hops) +
                          "-hop subgraph around vertex " +
                          std::to_string(req.source) + " has no edges");
  }
  if (req.parts > edges.size()) {
    throw BadRequestError("parts exceeds the subgraph's " +
                          std::to_string(edges.size()) + " edge(s)");
  }
  Graph subgraph(static_cast<VertexId>(hood.vertices.size()),
                 std::move(edges), std::move(weights));
  const analysis::ExperimentResult result =
      analysis::run_experiment(subgraph, req.algo, req.parts, app, {},
                               context.limits.pagerank_iterations);
  return analysis::format_run_table(app_label(req.app), result,
                                    /*include_raw=*/false);
}

std::vector<std::uint8_t> handle_request(const ServeContext& context,
                                         MsgType type,
                                         std::span<const std::uint8_t> body) {
  switch (type) {
    case MsgType::kStats: {
      const std::string text =
          handle_stats(context, decode_stats_request(body));
      return {text.begin(), text.end()};
    }
    case MsgType::kDegree:
      return encode_degree_response(
          handle_degree(context, decode_degree_request(body)));
    case MsgType::kNeighbors:
      return encode_neighbors_response(
          handle_neighbors(context, decode_neighbors_request(body)));
    case MsgType::kPartition:
      return encode_partition_response(
          handle_partition(context, decode_partition_request(body)));
    case MsgType::kReplicas:
      return encode_replicas_response(
          handle_replicas(context, decode_replicas_request(body)));
    case MsgType::kRun: {
      const std::string text = handle_run(context, decode_run_request(body));
      return {text.begin(), text.end()};
    }
    case MsgType::kPing:
      throw ProtocolError("ping is answered inline and never dispatched");
    case MsgType::kMetrics:
      // The report needs the live Server counters, which pure handlers
      // cannot see — the session reader answers it inline like kPing.
      throw ProtocolError("metrics is answered inline and never dispatched");
  }
  throw ProtocolError("unknown message type " +
                      std::to_string(static_cast<unsigned>(type)));
}

}  // namespace ebv::serve
