// The snapshot-serving daemon behind `ebvpart serve`: a unix-domain
// stream listener whose sessions decode EBVQ frames (serve/protocol.h)
// and push them through per-class admission queues onto a
// ThreadPool::run_team worker team.
//
// Admission control is the serving-side twin of the runtime's bounded
// residency budget: each RequestClass owns a BoundedChannel with an
// independent depth limit, so an expensive class (kRun) backing up
// cannot grow memory without bound or starve the cheap lookup classes —
// a request that finds its class queue full is rejected immediately
// with Status::kOverloaded instead of being buffered. kPing never
// queues (answered inline by the session reader), so health checks stay
// responsive under full load.
//
// Shutdown is a graceful drain (request_stop(), typically from
// SIGTERM): new requests are answered kShuttingDown, the listener
// closes, session readers are unblocked via shutdown(SHUT_RD), the
// admission channels close, and the worker team finishes every request
// it already accepted — BoundedChannel::pop_until_closed() is what lets
// a worker multiplexing five queues tell "idle" from "closed and fully
// drained". Every accepted request gets exactly one response.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <span>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "common/task_graph.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "serve/handlers.h"
#include "serve/protocol.h"

namespace ebv::serve {

struct ServerConfig {
  std::string socket_path;
  /// Worker team size for request execution.
  std::uint32_t num_workers = 2;
  /// Admission-queue depth per RequestClass (indexed by RequestClass).
  /// Cheap lookup classes get deeper queues than per-request analytics.
  std::array<std::uint32_t, kNumClasses> queue_depth = {64, 256, 64, 256, 8};
  std::uint32_t max_sessions = 64;
};

/// Monotonic per-class counters (latencies live in the server's metrics
/// registry). `depth`/`depth_high_water` observe the admission queue (the
/// BoundedChannel capacity is what *enforces* the bound; these exist so
/// the stress test and the stats table can see it was never exceeded).
struct ClassCounters {
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> rejected_overloaded{0};
  std::atomic<std::uint64_t> rejected_bad{0};
  std::atomic<std::uint64_t> internal_errors{0};
  std::atomic<std::uint32_t> depth{0};
  std::atomic<std::uint32_t> depth_high_water{0};
};

/// Immutable snapshot of one class's counters + latency quantiles.
struct ClassStats {
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_overloaded = 0;
  std::uint64_t rejected_bad = 0;
  std::uint64_t internal_errors = 0;
  std::uint32_t depth_high_water = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

struct ServerStats {
  std::array<ClassStats, kNumClasses> classes;
  std::uint64_t sessions_accepted = 0;
  std::uint64_t malformed_frames = 0;
  double uptime_seconds = 0.0;

  /// Rendered per-class table (the one `ebvpart serve` prints on drain).
  [[nodiscard]] std::string to_table() const;
};

class Server {
 public:
  /// Binds and listens on config.socket_path (unlinking a stale socket
  /// first) and starts the acceptor + worker team. Throws
  /// std::runtime_error with errno detail on socket failures.
  Server(ServeContext context, ServerConfig config);

  /// Drains and joins if the caller never called request_stop()/wait().
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Begin the graceful drain described above. Idempotent, thread-safe,
  /// and callable from a signal-watching thread.
  void request_stop();

  /// Block until the drain completed (listener closed, sessions joined,
  /// queues drained, workers exited, socket unlinked).
  void wait();

  [[nodiscard]] const std::string& socket_path() const {
    return config_.socket_path;
  }
  [[nodiscard]] const ServeContext& context() const { return context_; }

  /// Point-in-time counters; callable while serving.
  [[nodiscard]] ServerStats stats() const;

  /// The full observability report: the per-class table from stats()
  /// followed by the metrics registry (queue-wait vs handler latency
  /// split, session/frame counters). One renderer for both surfaces —
  /// the drain print and the live kMetrics response return exactly this
  /// string, so `ebvpart query metrics` always matches the drain table.
  [[nodiscard]] std::string metrics_report() const;

  /// The server's private metrics registry (per-instance, so tests
  /// running several servers in one process do not cross-pollute).
  [[nodiscard]] const obs::Registry& registry() const { return registry_; }

 private:
  struct Session {
    int fd = -1;
    /// Responses interleave worker + reader threads; every frame write
    /// goes through respond_locked(), which requires it.
    Mutex write_mu;
    std::thread reader;
    std::atomic<std::uint32_t> pending{0};  // accepted, not yet responded
    std::atomic<bool> done{false};
  };

  struct PendingRequest {
    std::shared_ptr<Session> session;
    MsgType type = MsgType::kPing;
    std::uint64_t request_id = 0;
    std::vector<std::uint8_t> body;
    std::chrono::steady_clock::time_point enqueued;
  };

  void accept_loop();
  void session_loop(const std::shared_ptr<Session>& session);
  void worker_loop(unsigned rank);
  void process(const PendingRequest& request);
  /// Drops joined, fd-closed sessions from the table.
  void reap_finished_sessions() EBV_REQUIRES(sessions_mu_);
  /// Serialises one frame onto the session socket under its write mutex.
  static bool respond(Session& session, MsgType type, Status status,
                      std::uint64_t request_id,
                      std::span<const std::uint8_t> body)
      EBV_EXCLUDES(session.write_mu);
  /// The write itself, split out so the lock-assuming half carries a
  /// checkable contract.
  static bool respond_locked(Session& session, MsgType type, Status status,
                             std::uint64_t request_id,
                             std::span<const std::uint8_t> body)
      EBV_REQUIRES(session.write_mu);
  static bool respond_error(Session& session, MsgType type, Status status,
                            std::uint64_t request_id,
                            const std::string& message)
      EBV_EXCLUDES(session.write_mu);

  ServeContext context_;
  ServerConfig config_;
  int listen_fd_ = -1;

  std::array<std::unique_ptr<BoundedChannel<std::shared_ptr<PendingRequest>>>,
             kNumClasses>
      queues_;
  std::array<ClassCounters, kNumClasses> counters_;

  /// Latency + session instruments live in the registry (folded there so
  /// `query metrics` can render them from a RUNNING daemon, not only at
  /// drain). The pointers below are registered once in the constructor —
  /// stable for the server's lifetime — and recorded through lock-free.
  obs::Registry registry_;
  /// Admission-queue wait (enqueue → worker pickup) per class, ms.
  std::array<obs::Histogram*, kNumClasses> wait_ms_{};
  /// Handler execution time per class, ms (all processed requests).
  std::array<obs::Histogram*, kNumClasses> handler_ms_{};
  /// End-to-end latency of COMPLETED (kOk) requests per class, ms — the
  /// source of the stats() table's p50/p95/p99 columns.
  std::array<obs::Histogram*, kNumClasses> latency_ms_{};
  obs::Counter* sessions_accepted_ = nullptr;
  obs::Counter* malformed_frames_ = nullptr;
  obs::Counter* metrics_requests_ = nullptr;
  std::chrono::steady_clock::time_point started_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::thread acceptor_;
  std::thread worker_host_;  // carries the blocking run_team call
  Mutex sessions_mu_;
  std::vector<std::shared_ptr<Session>> sessions_ EBV_GUARDED_BY(sessions_mu_);
};

}  // namespace ebv::serve
