#include "analysis/experiment.h"

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "apps/cc.h"
#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "bsp/distributed_graph.h"
#include "common/assert.h"
#include "common/timer.h"
#include "common/unique_id.h"
#include "graph/generators.h"
#include "partition/metis_like.h"
#include "partition/registry.h"

namespace ebv::analysis {

// Stand-in sizes at scale 1.0. The paper's graphs are 10^2–10^3 larger;
// every generator preserves the degree-distribution class and the paper η
// (measured values are reported next to the paper's in Table I output).
Dataset make_usaroad_sim(double scale, std::uint64_t seed) {
  const auto side = static_cast<std::uint32_t>(
      std::max(8.0, 200.0 * std::sqrt(scale)));
  Dataset d{.name = "usaroad",
            .graph = gen::road_grid(side, side, 0.92, seed),
            .paper_eta = 6.30,
            .power_law = false,
            .table3_parts = 12};
  d.graph.set_name(d.name);
  return d;
}

Dataset make_livejournal_sim(double scale, std::uint64_t seed) {
  const auto n =
      static_cast<VertexId>(std::max(64.0, 40'000.0 * scale));
  // LiveJournal: directed, avg degree 14.23, η = 2.64.
  const auto m = static_cast<EdgeId>(14.23 * n);
  Dataset d{.name = "livejournal",
            .graph = gen::chung_lu(n, m, 2.64, /*undirected=*/false, seed),
            .paper_eta = 2.64,
            .power_law = true,
            .table3_parts = 12};
  d.graph.set_name(d.name);
  return d;
}

Dataset make_friendster_sim(double scale, std::uint64_t seed) {
  const auto n =
      static_cast<VertexId>(std::max(64.0, 50'000.0 * scale));
  // Friendster: undirected, avg degree 27.53, η = 2.43.
  const auto m = static_cast<EdgeId>(27.53 * n);
  Dataset d{.name = "friendster",
            .graph = gen::chung_lu(n, m, 2.43, /*undirected=*/true, seed),
            .paper_eta = 2.43,
            .power_law = true,
            .table3_parts = 32};
  d.graph.set_name(d.name);
  return d;
}

Dataset make_twitter_sim(double scale, std::uint64_t seed) {
  const auto n =
      static_cast<VertexId>(std::max(64.0, 36'000.0 * scale));
  // Twitter: directed, avg degree 35.25, η = 1.87 (the most skewed graph).
  const auto m = static_cast<EdgeId>(35.25 * n);
  Dataset d{.name = "twitter",
            .graph = gen::chung_lu(n, m, 1.87, /*undirected=*/false, seed),
            .paper_eta = 1.87,
            .power_law = true,
            .table3_parts = 32};
  d.graph.set_name(d.name);
  return d;
}

std::vector<Dataset> standard_datasets(double scale, std::uint64_t seed) {
  std::vector<Dataset> all;
  all.push_back(make_usaroad_sim(scale, seed));
  all.push_back(make_livejournal_sim(scale, seed));
  all.push_back(make_friendster_sim(scale, seed));
  all.push_back(make_twitter_sim(scale, seed));
  return all;
}

std::string app_name(App app) {
  switch (app) {
    case App::kCC: return "CC";
    case App::kPageRank: return "PR";
    case App::kSssp: return "SSSP";
  }
  EBV_ASSERT(false);
  return {};
}

namespace {

/// Removes the worker-spill snapshot when the run ends (success or not).
struct SpillFileGuard {
  std::string path;
  ~SpillFileGuard() {
    if (!path.empty()) std::remove(path.c_str());
  }
};

bsp::RunStats run_app(const bsp::BspRuntime& runtime,
                      const bsp::DistributedGraph& dist, const GraphView& graph,
                      App app, std::uint32_t pagerank_iterations) {
  switch (app) {
    case App::kCC: {
      const apps::ConnectedComponents cc;
      return runtime.run(dist, cc);
    }
    case App::kPageRank: {
      const apps::PageRank pr(graph.num_vertices(), pagerank_iterations);
      return runtime.run(dist, pr);
    }
    case App::kSssp: {
      const apps::Sssp sssp(/*source=*/0);
      return runtime.run(dist, sssp);
    }
  }
  EBV_ASSERT(false);
  return {};
}

}  // namespace

ExperimentResult run_with_partition(const GraphView& graph,
                                    const EdgePartition& partition,
                                    const std::string& label, App app,
                                    const bsp::RunOptions& options,
                                    std::uint32_t pagerank_iterations) {
  ExperimentResult result;
  result.partitioner = label;
  result.num_parts = partition.num_parts;
  result.metrics = compute_metrics(graph, partition);

  // A binding residency budget routes the run through the worker-spill
  // subsystem: the DistributedGraph streams each worker's subgraph into
  // an EBVW snapshot during construction and the runtime materialises at
  // most `resident_workers` of them at a time. Results are bit-identical
  // to the all-resident path. A budget of 0 or >= p cannot bound
  // anything (the runtime would immediately materialise every worker),
  // so it stays on the plain resident path and pays no spill I/O;
  // spill_dir alone only picks WHERE spill state goes, it does not
  // enable spilling.
  const bool spill = options.resident_workers > 0 &&
                     options.resident_workers < partition.num_parts;
  if (!spill) {
    const bsp::DistributedGraph dist(graph, partition);
    const bsp::BspRuntime runtime(options);
    result.run = run_app(runtime, dist, graph, app, pagerank_iterations);
    return result;
  }

  namespace fs = std::filesystem;
  bsp::RunOptions run_options = options;
  const fs::path dir = options.spill_dir.empty()
                           ? fs::temp_directory_path()
                           : fs::path(options.spill_dir);
  std::error_code ec;
  fs::create_directories(dir, ec);  // best-effort; open errors report below
  run_options.spill_dir = dir.string();
  SpillFileGuard guard{
      (dir / ("ebv-workers." + process_unique_suffix() + ".ebvw")).string()};

  const bsp::DistributedGraph dist(graph, partition,
                                   {.spill_path = guard.path});
  const bsp::BspRuntime runtime(run_options);
  result.run = run_app(runtime, dist, graph, app, pagerank_iterations);
  return result;
}

PartitionMetrics paper_metrics(const Graph& graph,
                               const std::string& partitioner_name,
                               PartitionId num_parts) {
  PartitionConfig config;
  config.num_parts = num_parts;
  if (partitioner_name == "metis") {
    const MetisLikePartitioner metis;
    return compute_edge_cut_metrics(
        graph, metis.partition_vertices(graph, config), num_parts);
  }
  const auto partitioner = make_partitioner(partitioner_name);
  return compute_metrics(graph, partitioner->partition(graph, config));
}

ExperimentResult run_experiment(const GraphView& graph,
                                const std::string& partitioner_name,
                                PartitionId num_parts, App app,
                                const bsp::RunOptions& options,
                                std::uint32_t pagerank_iterations) {
  const auto partitioner = make_partitioner(partitioner_name);
  PartitionConfig config;
  config.num_parts = num_parts;

  const Timer timer;
  // partition_view keeps an mmap-backed view zero-copy for the streaming
  // algorithms; the rest inherit the materialising fallback, so every
  // registered algorithm works here with identical results.
  const EdgePartition partition = partitioner->partition_view(graph, config);
  const double partition_seconds = timer.seconds();

  ExperimentResult result = run_with_partition(
      graph, partition, partitioner_name, app, options, pagerank_iterations);
  result.partition_wall_seconds = partition_seconds;
  return result;
}

ExperimentResult run_experiment(const Graph& graph,
                                const std::string& partitioner_name,
                                PartitionId num_parts, App app,
                                const bsp::RunOptions& options,
                                std::uint32_t pagerank_iterations) {
  const auto partitioner = make_partitioner(partitioner_name);
  PartitionConfig config;
  config.num_parts = num_parts;

  const Timer timer;
  const EdgePartition partition = partitioner->partition(graph, config);
  const double partition_seconds = timer.seconds();

  ExperimentResult result = run_with_partition(
      graph, partition, partitioner_name, app, options, pagerank_iterations);
  result.partition_wall_seconds = partition_seconds;
  return result;
}

}  // namespace ebv::analysis
