#include "analysis/experiment.h"

#include <cmath>

#include "apps/cc.h"
#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "bsp/distributed_graph.h"
#include "common/assert.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "partition/metis_like.h"
#include "partition/registry.h"

namespace ebv::analysis {

// Stand-in sizes at scale 1.0. The paper's graphs are 10^2–10^3 larger;
// every generator preserves the degree-distribution class and the paper η
// (measured values are reported next to the paper's in Table I output).
Dataset make_usaroad_sim(double scale, std::uint64_t seed) {
  const auto side = static_cast<std::uint32_t>(
      std::max(8.0, 200.0 * std::sqrt(scale)));
  Dataset d{.name = "usaroad",
            .graph = gen::road_grid(side, side, 0.92, seed),
            .paper_eta = 6.30,
            .power_law = false,
            .table3_parts = 12};
  d.graph.set_name(d.name);
  return d;
}

Dataset make_livejournal_sim(double scale, std::uint64_t seed) {
  const auto n =
      static_cast<VertexId>(std::max(64.0, 40'000.0 * scale));
  // LiveJournal: directed, avg degree 14.23, η = 2.64.
  const auto m = static_cast<EdgeId>(14.23 * n);
  Dataset d{.name = "livejournal",
            .graph = gen::chung_lu(n, m, 2.64, /*undirected=*/false, seed),
            .paper_eta = 2.64,
            .power_law = true,
            .table3_parts = 12};
  d.graph.set_name(d.name);
  return d;
}

Dataset make_friendster_sim(double scale, std::uint64_t seed) {
  const auto n =
      static_cast<VertexId>(std::max(64.0, 50'000.0 * scale));
  // Friendster: undirected, avg degree 27.53, η = 2.43.
  const auto m = static_cast<EdgeId>(27.53 * n);
  Dataset d{.name = "friendster",
            .graph = gen::chung_lu(n, m, 2.43, /*undirected=*/true, seed),
            .paper_eta = 2.43,
            .power_law = true,
            .table3_parts = 32};
  d.graph.set_name(d.name);
  return d;
}

Dataset make_twitter_sim(double scale, std::uint64_t seed) {
  const auto n =
      static_cast<VertexId>(std::max(64.0, 36'000.0 * scale));
  // Twitter: directed, avg degree 35.25, η = 1.87 (the most skewed graph).
  const auto m = static_cast<EdgeId>(35.25 * n);
  Dataset d{.name = "twitter",
            .graph = gen::chung_lu(n, m, 1.87, /*undirected=*/false, seed),
            .paper_eta = 1.87,
            .power_law = true,
            .table3_parts = 32};
  d.graph.set_name(d.name);
  return d;
}

std::vector<Dataset> standard_datasets(double scale, std::uint64_t seed) {
  std::vector<Dataset> all;
  all.push_back(make_usaroad_sim(scale, seed));
  all.push_back(make_livejournal_sim(scale, seed));
  all.push_back(make_friendster_sim(scale, seed));
  all.push_back(make_twitter_sim(scale, seed));
  return all;
}

std::string app_name(App app) {
  switch (app) {
    case App::kCC: return "CC";
    case App::kPageRank: return "PR";
    case App::kSssp: return "SSSP";
  }
  EBV_ASSERT(false);
  return {};
}

ExperimentResult run_with_partition(const GraphView& graph,
                                    const EdgePartition& partition,
                                    const std::string& label, App app,
                                    const bsp::RunOptions& options,
                                    std::uint32_t pagerank_iterations) {
  ExperimentResult result;
  result.partitioner = label;
  result.num_parts = partition.num_parts;
  result.metrics = compute_metrics(graph, partition);

  const bsp::DistributedGraph dist(graph, partition);
  const bsp::BspRuntime runtime(options);
  switch (app) {
    case App::kCC: {
      const apps::ConnectedComponents cc;
      result.run = runtime.run(dist, cc);
      break;
    }
    case App::kPageRank: {
      const apps::PageRank pr(graph.num_vertices(), pagerank_iterations);
      result.run = runtime.run(dist, pr);
      break;
    }
    case App::kSssp: {
      const apps::Sssp sssp(/*source=*/0);
      result.run = runtime.run(dist, sssp);
      break;
    }
  }
  return result;
}

PartitionMetrics paper_metrics(const Graph& graph,
                               const std::string& partitioner_name,
                               PartitionId num_parts) {
  PartitionConfig config;
  config.num_parts = num_parts;
  if (partitioner_name == "metis") {
    const MetisLikePartitioner metis;
    return compute_edge_cut_metrics(
        graph, metis.partition_vertices(graph, config), num_parts);
  }
  const auto partitioner = make_partitioner(partitioner_name);
  return compute_metrics(graph, partitioner->partition(graph, config));
}

ExperimentResult run_experiment(const GraphView& graph,
                                const std::string& partitioner_name,
                                PartitionId num_parts, App app,
                                const bsp::RunOptions& options,
                                std::uint32_t pagerank_iterations) {
  const auto partitioner = make_partitioner(partitioner_name);
  PartitionConfig config;
  config.num_parts = num_parts;

  const Timer timer;
  // partition_view keeps an mmap-backed view zero-copy for the streaming
  // algorithms; the rest inherit the materialising fallback, so every
  // registered algorithm works here with identical results.
  const EdgePartition partition = partitioner->partition_view(graph, config);
  const double partition_seconds = timer.seconds();

  ExperimentResult result = run_with_partition(
      graph, partition, partitioner_name, app, options, pagerank_iterations);
  result.partition_wall_seconds = partition_seconds;
  return result;
}

ExperimentResult run_experiment(const Graph& graph,
                                const std::string& partitioner_name,
                                PartitionId num_parts, App app,
                                const bsp::RunOptions& options,
                                std::uint32_t pagerank_iterations) {
  const auto partitioner = make_partitioner(partitioner_name);
  PartitionConfig config;
  config.num_parts = num_parts;

  const Timer timer;
  const EdgePartition partition = partitioner->partition(graph, config);
  const double partition_seconds = timer.seconds();

  ExperimentResult result = run_with_partition(
      graph, partition, partitioner_name, app, options, pagerank_iterations);
  result.partition_wall_seconds = partition_seconds;
  return result;
}

}  // namespace ebv::analysis
