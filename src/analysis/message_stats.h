// Message-balance statistics — the paper's platform-independent metric
// (Tables IV and V): total message count and the max/mean ratio of
// per-worker sent messages ("the overall execution time is denoted by the
// slowest worker", §V-C).
#pragma once

#include <cstdint>
#include <vector>

#include "bsp/runtime.h"

namespace ebv::analysis {

struct MessageStats {
  std::uint64_t total = 0;
  std::uint64_t max_per_worker = 0;
  double mean_per_worker = 0.0;
  double max_over_mean = 1.0;
};

MessageStats compute_message_stats(const bsp::RunStats& run);
MessageStats compute_message_stats(
    const std::vector<std::uint64_t>& sent_per_worker);

}  // namespace ebv::analysis
