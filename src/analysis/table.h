// Fixed-width ASCII table printer used by every bench binary to emit the
// paper's tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ebv::analysis {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Row length must match the header count.
  void add_row(std::vector<std::string> row);

  void print(std::ostream& out) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ebv::analysis
