#include "analysis/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/assert.h"

namespace ebv::analysis {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  EBV_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  EBV_REQUIRE(row.size() == headers_.size(),
              "row width does not match header count");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ')
          << " |";
    }
    out << '\n';
  };
  auto print_rule = [&] {
    out << '+';
    for (const std::size_t w : width) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace ebv::analysis
