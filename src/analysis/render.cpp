#include "analysis/render.h"

#include "analysis/table.h"
#include "common/format.h"

namespace ebv::analysis {

std::string format_mmap_stats_table(const GraphStats& stats,
                                    std::size_t mapped_bytes) {
  Table table({"metric", "value"});
  table.add_row({"vertices", with_commas(stats.num_vertices)});
  table.add_row({"edges", with_commas(stats.num_edges)});
  table.add_row({"average degree", format_fixed(stats.average_degree, 2)});
  table.add_row({"max total degree", with_commas(stats.max_total_degree)});
  table.add_row({"isolated vertices", with_commas(stats.isolated_vertices)});
  table.add_row({"power-law eta", format_fixed(stats.eta, 2)});
  table.add_row(
      {"mapped MB",
       format_fixed(static_cast<double>(mapped_bytes) / 1e6, 1)});
  return table.to_string();
}

std::string format_run_table(const std::string& app_label,
                             const ExperimentResult& result,
                             bool include_raw) {
  Table table({"metric", "value"});
  table.add_row({"app", app_label});
  table.add_row({"workers", std::to_string(result.num_parts)});
  table.add_row({"supersteps", std::to_string(result.run.supersteps)});
  table.add_row({"messages", with_commas(result.run.total_messages)});
  if (include_raw) {
    // Only under --combine 1: the default table stays byte-identical
    // across residency budgets (the CI e2e diffs them).
    table.add_row({"messages (raw)", with_commas(result.run.raw_messages)});
  }
  table.add_row({"comp (avg)", format_duration(result.run.comp_seconds)});
  table.add_row({"comm (avg)", format_duration(result.run.comm_seconds)});
  table.add_row({"delta C", format_duration(result.run.delta_c_seconds)});
  table.add_row(
      {"execution time", format_duration(result.run.execution_seconds)});
  return table.to_string();
}

}  // namespace ebv::analysis
