#include "analysis/render.h"

#include "analysis/table.h"
#include "bsp/runtime.h"
#include "common/format.h"

namespace ebv::analysis {

std::string format_mmap_stats_table(const GraphStats& stats,
                                    std::size_t mapped_bytes) {
  Table table({"metric", "value"});
  table.add_row({"vertices", with_commas(stats.num_vertices)});
  table.add_row({"edges", with_commas(stats.num_edges)});
  table.add_row({"average degree", format_fixed(stats.average_degree, 2)});
  table.add_row({"max total degree", with_commas(stats.max_total_degree)});
  table.add_row({"isolated vertices", with_commas(stats.isolated_vertices)});
  table.add_row({"power-law eta", format_fixed(stats.eta, 2)});
  table.add_row(
      {"mapped MB",
       format_fixed(static_cast<double>(mapped_bytes) / 1e6, 1)});
  return table.to_string();
}

std::string format_run_table(const std::string& app_label,
                             const ExperimentResult& result,
                             bool include_raw) {
  Table table({"metric", "value"});
  table.add_row({"app", app_label});
  table.add_row({"workers", std::to_string(result.num_parts)});
  table.add_row({"supersteps", std::to_string(result.run.supersteps)});
  table.add_row({"messages", with_commas(result.run.total_messages)});
  if (include_raw) {
    // Only under --combine 1: the default table stays byte-identical
    // across residency budgets (the CI e2e diffs them).
    table.add_row({"messages (raw)", with_commas(result.run.raw_messages)});
  }
  table.add_row({"comp (avg)", format_duration(result.run.comp_seconds)});
  table.add_row({"comm (avg)", format_duration(result.run.comm_seconds)});
  table.add_row({"delta C", format_duration(result.run.delta_c_seconds)});
  table.add_row(
      {"execution time", format_duration(result.run.execution_seconds)});
  return table.to_string();
}

std::string format_phase_stats_table(const bsp::RunStats& stats) {
  Table table({"superstep", "compute", "route", "merge", "broadcast",
               "install", "load", "release", "wall"});
  // On a resumed run phase_wall only covers the post-restore supersteps,
  // so the first row's absolute step number is offset accordingly.
  const std::size_t first_step =
      static_cast<std::size_t>(stats.supersteps) - stats.phase_wall.size();
  bsp::PhaseWallStats total;
  for (std::size_t i = 0; i < stats.phase_wall.size(); ++i) {
    const bsp::PhaseWallStats& pw = stats.phase_wall[i];
    table.add_row({std::to_string(first_step + i),
                   format_duration(pw.compute_seconds),
                   format_duration(pw.route_seconds),
                   format_duration(pw.merge_seconds),
                   format_duration(pw.broadcast_seconds),
                   format_duration(pw.install_seconds),
                   format_duration(pw.load_seconds),
                   format_duration(pw.release_seconds),
                   format_duration(pw.superstep_seconds)});
    total.compute_seconds += pw.compute_seconds;
    total.route_seconds += pw.route_seconds;
    total.merge_seconds += pw.merge_seconds;
    total.broadcast_seconds += pw.broadcast_seconds;
    total.install_seconds += pw.install_seconds;
    total.load_seconds += pw.load_seconds;
    total.release_seconds += pw.release_seconds;
    total.superstep_seconds += pw.superstep_seconds;
  }
  table.add_row({"total", format_duration(total.compute_seconds),
                 format_duration(total.route_seconds),
                 format_duration(total.merge_seconds),
                 format_duration(total.broadcast_seconds),
                 format_duration(total.install_seconds),
                 format_duration(total.load_seconds),
                 format_duration(total.release_seconds),
                 format_duration(total.superstep_seconds)});
  std::string out = table.to_string();
  out += "run wall " + format_duration(stats.wall_seconds) + ", cpu " +
         format_duration(stats.cpu_seconds) + "\n";
  return out;
}

}  // namespace ebv::analysis
