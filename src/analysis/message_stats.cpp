#include "analysis/message_stats.h"

#include <algorithm>
#include <numeric>

#include "common/assert.h"

namespace ebv::analysis {

MessageStats compute_message_stats(
    const std::vector<std::uint64_t>& sent_per_worker) {
  EBV_REQUIRE(!sent_per_worker.empty(), "no workers");
  MessageStats s;
  s.total = std::accumulate(sent_per_worker.begin(), sent_per_worker.end(),
                            std::uint64_t{0});
  s.max_per_worker =
      *std::max_element(sent_per_worker.begin(), sent_per_worker.end());
  s.mean_per_worker =
      static_cast<double>(s.total) / static_cast<double>(sent_per_worker.size());
  s.max_over_mean = s.mean_per_worker == 0.0
                        ? 1.0
                        : static_cast<double>(s.max_per_worker) /
                              s.mean_per_worker;
  return s;
}

MessageStats compute_message_stats(const bsp::RunStats& run) {
  return compute_message_stats(run.messages_sent_per_worker);
}

}  // namespace ebv::analysis
