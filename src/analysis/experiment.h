// Experiment drivers shared by the bench binaries: the four dataset
// stand-ins (DESIGN.md §4) and the partition→distribute→run pipeline.
#pragma once

#include <string>
#include <vector>

#include "bsp/runtime.h"
#include "graph/graph.h"
#include "graph/graph_view.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"

namespace ebv::analysis {

/// A dataset stand-in plus the paper's reference numbers for Table I.
struct Dataset {
  std::string name;        // usaroad / livejournal / friendster / twitter
  Graph graph;
  double paper_eta = 0.0;  // η reported in the paper's Table I
  bool power_law = false;
  PartitionId table3_parts = 0;  // partition count in Tables III–V
};

/// `scale` multiplies the stand-ins' vertex counts (1.0 ≈ benchmark size,
/// ~0.1 for quick tests). All generators are seeded deterministically.
Dataset make_usaroad_sim(double scale = 1.0, std::uint64_t seed = 42);
Dataset make_livejournal_sim(double scale = 1.0, std::uint64_t seed = 42);
Dataset make_friendster_sim(double scale = 1.0, std::uint64_t seed = 42);
Dataset make_twitter_sim(double scale = 1.0, std::uint64_t seed = 42);

/// All four, in the paper's η-descending table order.
std::vector<Dataset> standard_datasets(double scale = 1.0,
                                       std::uint64_t seed = 42);

/// Application selector for the experiment pipeline.
enum class App { kCC, kPageRank, kSssp };

std::string app_name(App app);

/// One partition+run outcome.
struct ExperimentResult {
  std::string partitioner;
  PartitionId num_parts = 0;
  PartitionMetrics metrics;
  bsp::RunStats run;
  double partition_wall_seconds = 0.0;
};

/// Partition `graph` with the named algorithm, build the distributed graph
/// and execute the app on the simulated cluster. SSSP sources vertex 0.
///
/// Takes a GraphView, so the whole pipeline runs off an mmap-backed EBVS
/// snapshot (MappedGraph::view()) without a resident copy: partitioning
/// goes through Partitioner::partition_view (zero-copy for the streaming
/// algorithms, materialising fallback otherwise) and DistributedGraph
/// streams the view's edge section directly. A resident Graph converts
/// implicitly and produces bit-identical results for the same edge
/// sequence.
///
/// A binding options.resident_workers budget (0 < k < num_parts)
/// additionally routes execution through the worker-spill subsystem: the
/// per-worker subgraphs are streamed into a temporary EBVW snapshot
/// (options.spill_dir, defaulting to the system temp directory; removed
/// after the run) and at most k of them are materialised at a time —
/// same results, bounded subgraph residency. A budget of 0 or >= p stays
/// on the plain resident path (nothing to bound, so no spill I/O).
///
/// Scheduling options pass straight through: options.scheduler selects
/// the strict (bit-identical, default) or async (relaxed mailbox order)
/// task-graph mode and options.prefetch controls double-buffered group
/// loading under a binding budget — see bsp::RunOptions for the
/// determinism contract each one carries.
ExperimentResult run_experiment(const GraphView& graph,
                                const std::string& partitioner_name,
                                PartitionId num_parts, App app,
                                const bsp::RunOptions& options = {},
                                std::uint32_t pagerank_iterations = 20);

/// Resident overload: partitions through Partitioner::partition directly,
/// so algorithms without a streaming partition_view override don't pay the
/// view fallback's materialising copy of a graph that is already resident.
/// Results are identical to the view overload.
ExperimentResult run_experiment(const Graph& graph,
                                const std::string& partitioner_name,
                                PartitionId num_parts, App app,
                                const bsp::RunOptions& options = {},
                                std::uint32_t pagerank_iterations = 20);

/// Table III/V metrics with the paper's per-family definitions (§III-C):
/// vertex-cut metrics for the vertex-cut algorithms, edge-cut metrics
/// (disjoint V_i, replicated cross edges, Σ|Ei|/|E|) for METIS.
PartitionMetrics paper_metrics(const Graph& graph,
                               const std::string& partitioner_name,
                               PartitionId num_parts);

/// As run_experiment but with an externally produced partition (used for
/// the Blogel/Voronoi series and `ebvpart run --partition`).
ExperimentResult run_with_partition(const GraphView& graph,
                                    const EdgePartition& partition,
                                    const std::string& label, App app,
                                    const bsp::RunOptions& options = {},
                                    std::uint32_t pagerank_iterations = 20);

}  // namespace ebv::analysis
