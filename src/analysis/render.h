// Shared table renderers for outputs that exist on TWO surfaces: the
// one-shot CLI (`ebvpart stats --mmap`, `ebvpart run`) and the serve
// daemon's stats/run query classes. Both call these, so the daemon's
// responses are byte-identical to the CLI by construction — the golden
// equivalence the serve tests and the CI e2e byte-diffs pin.
#pragma once

#include <string>

#include "analysis/experiment.h"
#include "graph/stats.h"

namespace ebv::analysis {

/// The `ebvpart stats --mmap` table: vertices/edges/average degree/max
/// total degree/isolated/eta plus the trailing "mapped MB" row.
std::string format_mmap_stats_table(const GraphStats& stats,
                                    std::size_t mapped_bytes);

/// The `ebvpart run` result table. `app_label` is the CLI spelling
/// ("cc", "pr", "sssp"); `include_raw` adds the "messages (raw)" row
/// that `run --combine 1` prints.
std::string format_run_table(const std::string& app_label,
                             const ExperimentResult& result, bool include_raw);

/// The `run --phase-stats` breakdown: one row per executed superstep
/// with real wall seconds attributed to each scheduler task kind, a
/// summed total row, and a wall/CPU footer. Additive output — printed
/// AFTER the run table, never altering it (the bit-identity contract
/// covers format_run_table alone).
std::string format_phase_stats_table(const bsp::RunStats& stats);

}  // namespace ebv::analysis
