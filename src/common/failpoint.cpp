#include "common/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/sync.h"

namespace ebv::failpoint {

namespace {

struct Rule {
  std::string site;
  Action action = Action::kNone;
  // Hit-range clause (1-based, inclusive); ignored when prob >= 0.
  std::uint64_t from = 1;
  std::uint64_t to = std::numeric_limits<std::uint64_t>::max();
  // Probability clause; < 0 means "use the hit range".
  double prob = -1.0;
};

struct Registry {
  std::vector<Rule> rules;
  std::uint64_t seed = 1;
  std::unordered_map<std::string, std::uint64_t> hits;
};

Mutex g_mutex;
Registry g_registry EBV_GUARDED_BY(g_mutex);
std::atomic<bool> g_active{false};  // fast path: any rules installed?

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic uniform [0,1) draw for hit n of `site` under `seed`.
double seeded_draw(std::uint64_t seed, const std::string& site,
                   std::uint64_t n) {
  const std::uint64_t bits = splitmix64(seed ^ fnv1a64(site) ^ (n * 0x9e37ull));
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

Action parse_action(const std::string& name, const std::string& clause) {
  if (name == "shortread") return Action::kShortRead;
  if (name == "err") return Action::kWriteError;
  if (name == "enospc") return Action::kEnospc;
  if (name == "mmapfail") return Action::kMmapFail;
  if (name == "abort") return Action::kAbort;
  throw std::invalid_argument("failpoints: unknown action '" + name +
                              "' in clause '" + clause +
                              "' (expected shortread|err|enospc|mmapfail|"
                              "abort)");
}

std::uint64_t parse_u64(const std::string& text, const std::string& clause) {
  std::size_t used = 0;
  std::uint64_t value = 0;
  try {
    // ebvlint: allow(naked-number-parse): full-string validated below
    // (used must consume every character) with a clause-naming error.
    value = std::stoull(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (text.empty() || used != text.size()) {
    throw std::invalid_argument("failpoints: bad number '" + text +
                                "' in clause '" + clause + "'");
  }
  return value;
}

Rule parse_rule(const std::string& clause) {
  const std::size_t eq = clause.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::invalid_argument("failpoints: clause '" + clause +
                                "' is not <site>=<action>[@N[-M]|~P]");
  }
  Rule rule;
  rule.site = clause.substr(0, eq);
  std::string rhs = clause.substr(eq + 1);

  const std::size_t at = rhs.find('@');
  const std::size_t tilde = rhs.find('~');
  if (at != std::string::npos && tilde != std::string::npos) {
    throw std::invalid_argument("failpoints: clause '" + clause +
                                "' mixes @range and ~probability");
  }
  if (at != std::string::npos) {
    std::string range = rhs.substr(at + 1);
    rhs = rhs.substr(0, at);
    const std::size_t dash = range.find('-');
    if (dash == std::string::npos) {
      rule.from = rule.to = parse_u64(range, clause);
    } else {
      rule.from = parse_u64(range.substr(0, dash), clause);
      rule.to = parse_u64(range.substr(dash + 1), clause);
    }
    if (rule.from == 0 || rule.to < rule.from) {
      throw std::invalid_argument("failpoints: empty hit range in clause '" +
                                  clause + "' (hits are 1-based)");
    }
  } else if (tilde != std::string::npos) {
    const std::string prob = rhs.substr(tilde + 1);
    rhs = rhs.substr(0, tilde);
    try {
      std::size_t used = 0;
      // ebvlint: allow(naked-number-parse): full-string validated below
      // (partial consumption resets prob to the rejected sentinel).
      rule.prob = std::stod(prob, &used);
      if (used != prob.size()) rule.prob = -1.0;
    } catch (const std::exception&) {
      rule.prob = -1.0;
    }
    if (rule.prob < 0.0 || rule.prob > 1.0) {
      throw std::invalid_argument("failpoints: probability in clause '" +
                                  clause + "' must be in [0,1]");
    }
  }
  rule.action = parse_action(rhs, clause);
  return rule;
}

}  // namespace

const char* action_name(Action action) {
  switch (action) {
    case Action::kNone: return "none";
    case Action::kShortRead: return "shortread";
    case Action::kWriteError: return "err";
    case Action::kEnospc: return "enospc";
    case Action::kMmapFail: return "mmapfail";
    case Action::kAbort: return "abort";
  }
  return "none";
}

void configure(const std::string& spec) {
  Registry next;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string clause = spec.substr(begin, end - begin);
    begin = end + 1;
    if (clause.empty()) continue;
    if (clause.rfind("seed=", 0) == 0) {
      next.seed = parse_u64(clause.substr(5), clause);
      continue;
    }
    next.rules.push_back(parse_rule(clause));
  }
  MutexLock lock(g_mutex);
  g_registry = std::move(next);
  g_active.store(!g_registry.rules.empty(), std::memory_order_release);
}

void configure_from_env() {
  const char* spec = std::getenv("EBV_FAILPOINTS");
  if (spec != nullptr && spec[0] != '\0') configure(spec);
}

void clear() {
  MutexLock lock(g_mutex);
  g_registry = Registry{};
  g_active.store(false, std::memory_order_release);
}

bool active() { return g_active.load(std::memory_order_acquire); }

Action hit(const char* site) {
  if (!active()) return Action::kNone;
  MutexLock lock(g_mutex);
  const std::uint64_t n = ++g_registry.hits[site];
  for (const Rule& rule : g_registry.rules) {
    if (rule.site != site) continue;
    if (rule.prob >= 0.0) {
      if (seeded_draw(g_registry.seed, rule.site, n) < rule.prob) {
        return rule.action;
      }
    } else if (n >= rule.from && n <= rule.to) {
      return rule.action;
    }
  }
  return Action::kNone;
}

Action maybe_fail_stream(const char* site, std::basic_ios<char>& stream) {
  const Action action = hit(site);
  if (action == Action::kWriteError || action == Action::kEnospc ||
      action == Action::kShortRead) {
    stream.setstate(std::ios::badbit);
  }
  return action;
}

InjectedFault::InjectedFault(std::string site, Action action,
                             const std::string& what)
    : std::runtime_error(what), site_(std::move(site)), action_(action) {}

}  // namespace ebv::failpoint
