// `--flag value` argument parsing shared by the ebvpart CLI (and unit
// tested in tests/cli_args_test.cpp).
//
// The numeric parsers validate the FULL string and name the offending
// flag in every error: bare std::stoul would accept trailing junk
// ("--parts 8x" silently became 8) and throw a bare std::invalid_argument
// with no hint of which flag was malformed.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>

namespace ebv::cli {

using ArgMap = std::map<std::string, std::string>;

/// Parse `argv[first..]` as `--flag value` pairs. Throws
/// std::invalid_argument for a non-flag token or a trailing flag with no
/// value (which the old parser dropped silently). Repeated flags keep the
/// last value.
ArgMap parse_args(int argc, char** argv, int first);

/// Value of --key, or `fallback` when absent and non-empty; throws
/// std::invalid_argument naming the flag when absent with no fallback.
std::string get(const ArgMap& args, const std::string& key,
                const std::string& fallback = "");

/// Full-string decimal parse of an unsigned flag value: every character
/// must be a digit and the result must fit `max_value`. Throws
/// std::invalid_argument with a message naming `--<flag>` otherwise.
std::uint64_t parse_uint(
    const std::string& flag, const std::string& value,
    std::uint64_t max_value = std::numeric_limits<std::uint64_t>::max());

/// parse_uint over the flag's value in `args` (or `fallback` when absent).
std::uint64_t get_uint(
    const ArgMap& args, const std::string& key, const std::string& fallback,
    std::uint64_t max_value = std::numeric_limits<std::uint64_t>::max());

/// Full-string parse of a floating-point flag value; same error contract
/// as parse_uint ("1.5x" and "" are rejected, the flag is named).
double parse_double(const std::string& flag, const std::string& value);

/// parse_double over the flag's value in `args` (or `fallback` when absent).
double get_double(const ArgMap& args, const std::string& key,
                  const std::string& fallback);

}  // namespace ebv::cli
