#include "common/cli_args.h"

#include <cstring>
#include <stdexcept>

namespace ebv::cli {

ArgMap parse_args(int argc, char** argv, int first) {
  ArgMap args;
  for (int i = first; i < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      throw std::invalid_argument(std::string("expected --flag, got ") +
                                  argv[i]);
    }
    if (i + 1 >= argc) {
      throw std::invalid_argument(std::string("missing value for ") + argv[i]);
    }
    args[argv[i] + 2] = argv[i + 1];
  }
  return args;
}

std::string get(const ArgMap& args, const std::string& key,
                const std::string& fallback) {
  const auto it = args.find(key);
  if (it != args.end()) return it->second;
  if (!fallback.empty()) return fallback;
  throw std::invalid_argument("missing required --" + key);
}

std::uint64_t parse_uint(const std::string& flag, const std::string& value,
                         std::uint64_t max_value) {
  if (value.empty()) {
    throw std::invalid_argument("--" + flag +
                                ": expected a non-negative integer, got ''");
  }
  std::uint64_t result = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("--" + flag +
                                  ": expected a non-negative integer, got '" +
                                  value + "'");
    }
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (result > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      throw std::invalid_argument("--" + flag + ": value '" + value +
                                  "' is out of range");
    }
    result = result * 10 + digit;
  }
  if (result > max_value) {
    throw std::invalid_argument("--" + flag + ": value '" + value +
                                "' exceeds the maximum " +
                                std::to_string(max_value));
  }
  return result;
}

std::uint64_t get_uint(const ArgMap& args, const std::string& key,
                       const std::string& fallback, std::uint64_t max_value) {
  return parse_uint(key, get(args, key, fallback), max_value);
}

double parse_double(const std::string& flag, const std::string& value) {
  if (value.empty()) {
    throw std::invalid_argument("--" + flag + ": expected a number, got ''");
  }
  std::size_t consumed = 0;
  double result = 0.0;
  try {
    result = std::stod(value, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + flag + ": expected a number, got '" +
                                value + "'");
  }
  if (consumed != value.size()) {
    throw std::invalid_argument("--" + flag + ": expected a number, got '" +
                                value + "'");
  }
  return result;
}

double get_double(const ArgMap& args, const std::string& key,
                  const std::string& fallback) {
  return parse_double(key, get(args, key, fallback));
}

}  // namespace ebv::cli
