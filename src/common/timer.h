// Monotonic stopwatch used by instrumentation that reports real elapsed
// time (partitioning overhead, total harness runtime, obs:: trace spans).
// The BSP cluster itself is timed with the deterministic virtual-time
// cost model in bsp/cost_model.h.
//
// The clock is guaranteed steady (never steps backwards across NTP
// adjustments — the static_assert below pins it), so trace timestamps
// and phase-stats deltas are always non-negative.
#pragma once

#include <chrono>

namespace ebv {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady,
                "Timer requires a monotonic clock: trace timestamps and "
                "phase-stats deltas must never go backwards");
  Clock::time_point start_;
};

/// CPU seconds consumed by the whole process (every thread) since it
/// started. Paired with Timer wall readings in the `run --phase-stats`
/// footer to show parallel efficiency (cpu/wall ≈ busy cores).
[[nodiscard]] double process_cpu_seconds();

/// CPU seconds consumed by the calling thread since it started.
[[nodiscard]] double thread_cpu_seconds();

}  // namespace ebv
