// Wall-clock stopwatch used by instrumentation that reports real time
// (partitioning overhead, total harness runtime). The BSP cluster itself is
// timed with the deterministic virtual-time cost model in bsp/cost_model.h.
#pragma once

#include <chrono>

namespace ebv {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ebv
