#include "common/parallel.h"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <mutex>
#include <vector>

#include "common/assert.h"

namespace ebv {
namespace {

/// Set while a thread executes pool work; nested pool calls from such a
/// thread run inline to avoid deadlock (the pool has one job at a time).
thread_local bool t_inside_pool_body = false;

/// Explicit size request for the lazily created global pool, and whether
/// the pool has been created (after which requests can no longer apply).
std::atomic<unsigned> g_requested_global_threads{0};
std::atomic<bool> g_global_pool_created{false};

}  // namespace

unsigned hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

/// One fork-join job. Chunks are claimed by fetch_add on `next`; the
/// executor that retires the last chunk signals completion. `live` counts
/// executors still touching the job so the owner's stack frame outlives
/// every reader.
struct ThreadPool::Job {
  std::function<void(std::size_t, std::size_t)> body;
  std::size_t n = 0;
  std::size_t grain = 1;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> chunks_left{0};
  std::atomic<bool> cancelled{false};
  /// for_range skips remaining chunks after a throw; run_team must not
  /// (unstarted ranks would strand barrier peers), so it clears this.
  bool skip_on_cancel = true;
  std::exception_ptr error;  // guarded by Impl::mutex
};

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  Job* job = nullptr;  // current job, owned by the caller's stack
  std::uint64_t generation = 0;
  unsigned live = 0;  // workers currently referencing `job`
  bool stop = false;
  std::mutex submit_mutex;  // serialises concurrent external callers
  std::vector<std::thread> workers;
};

ThreadPool::ThreadPool(unsigned num_threads) : impl_(new Impl) {
  if (num_threads == 0) num_threads = hardware_threads();
  num_workers_ = num_threads - 1;
  impl_->workers.reserve(num_workers_);
  for (std::size_t i = 0; i < num_workers_; ++i) {
    impl_->workers.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

void ThreadPool::execute(Job& job) {
  t_inside_pool_body = true;
  for (;;) {
    const std::size_t begin = job.next.fetch_add(job.grain);
    if (begin >= job.n) break;
    const std::size_t end = std::min(begin + job.grain, job.n);
    if (!job.skip_on_cancel ||
        !job.cancelled.load(std::memory_order_relaxed)) {
      try {
        job.body(begin, end);
      } catch (...) {
        job.cancelled.store(true, std::memory_order_relaxed);
        std::lock_guard lock(impl_->mutex);
        if (!job.error) job.error = std::current_exception();
      }
    }
    if (job.chunks_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard lock(impl_->mutex);
      impl_->done_cv.notify_all();
    }
  }
  t_inside_pool_body = false;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock lock(impl_->mutex);
      impl_->work_cv.wait(lock, [&] {
        return impl_->stop || impl_->generation != seen_generation;
      });
      if (impl_->stop) return;
      seen_generation = impl_->generation;
      job = impl_->job;
      if (job == nullptr) continue;
      ++impl_->live;
    }
    execute(*job);
    {
      std::lock_guard lock(impl_->mutex);
      --impl_->live;
    }
    impl_->done_cv.notify_all();
  }
}

void ThreadPool::for_range(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) {
    grain = std::max<std::size_t>(1, n / (4 * num_threads()));
  }
  if (num_workers_ == 0 || t_inside_pool_body || n <= grain) {
    body(0, n);
    return;
  }

  std::lock_guard submit_lock(impl_->submit_mutex);
  Job job;
  job.body = body;
  job.n = n;
  job.grain = grain;
  job.chunks_left.store((n + grain - 1) / grain, std::memory_order_relaxed);
  {
    std::lock_guard lock(impl_->mutex);
    impl_->job = &job;
    ++impl_->generation;
  }
  impl_->work_cv.notify_all();

  execute(job);

  std::unique_lock lock(impl_->mutex);
  impl_->done_cv.wait(lock, [&] {
    return job.chunks_left.load(std::memory_order_acquire) == 0 &&
           impl_->live == 0;
  });
  impl_->job = nullptr;
  if (job.error) std::rethrow_exception(job.error);
}

void ThreadPool::run_team(
    unsigned team_size, const std::function<void(unsigned, unsigned)>& body) {
  const unsigned team = std::max(team_size, 1u);
  if (team == 1 || t_inside_pool_body) {
    const bool was_inside = t_inside_pool_body;
    t_inside_pool_body = true;
    try {
      body(0, 1);
    } catch (...) {
      t_inside_pool_body = was_inside;
      throw;
    }
    t_inside_pool_body = was_inside;
    return;
  }
  // Teams larger than the pool cannot all be carried by pool workers (an
  // executor keeps its rank until the body returns), so oversubscribed
  // teams run every non-caller rank on a dedicated temporary thread (the
  // resident workers sit this one out — simpler than mixing executor
  // kinds, and run_team callers invoke it once per long-running
  // operation, not per item, so the spawn cost is noise).
  if (team > num_threads()) {
    std::mutex error_mutex;
    std::exception_ptr error;
    std::vector<std::thread> extra;
    extra.reserve(team - 1);
    for (unsigned rank = 1; rank < team; ++rank) {
      extra.emplace_back([&, rank] {
        t_inside_pool_body = true;
        try {
          body(rank, team);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!error) error = std::current_exception();
        }
        t_inside_pool_body = false;
      });
    }
    t_inside_pool_body = true;
    try {
      body(0, team);
    } catch (...) {
      std::lock_guard lock(error_mutex);
      if (!error) error = std::current_exception();
    }
    t_inside_pool_body = false;
    for (std::thread& t : extra) t.join();
    if (error) std::rethrow_exception(error);
    return;
  }

  // Each rank is one chunk; with the submit lock held every pool thread is
  // idle, so all `team` ranks run concurrently (an executor that claims a
  // rank keeps it until the body returns, and team <= num_threads()).
  std::lock_guard submit_lock(impl_->submit_mutex);
  Job job;
  job.body = [&body, team](std::size_t begin, std::size_t) {
    body(static_cast<unsigned>(begin), team);
  };
  job.n = team;
  job.grain = 1;
  job.skip_on_cancel = false;
  job.chunks_left.store(team, std::memory_order_relaxed);
  {
    std::lock_guard lock(impl_->mutex);
    impl_->job = &job;
    ++impl_->generation;
  }
  impl_->work_cv.notify_all();

  execute(job);

  std::unique_lock lock(impl_->mutex);
  impl_->done_cv.wait(lock, [&] {
    return job.chunks_left.load(std::memory_order_acquire) == 0 &&
           impl_->live == 0;
  });
  impl_->job = nullptr;
  if (job.error) std::rethrow_exception(job.error);
}

bool ThreadPool::inside_pool_body() { return t_inside_pool_body; }

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    g_global_pool_created.store(true, std::memory_order_release);
    if (const unsigned requested =
            g_requested_global_threads.load(std::memory_order_acquire);
        requested > 0) {
      return requested;
    }
    if (const char* env = std::getenv("EBV_THREADS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) return static_cast<unsigned>(parsed);
    }
    return hardware_threads();
  }());
  return pool;
}

bool ThreadPool::set_global_threads(unsigned num_threads) {
  if (num_threads == 0) return false;
  if (g_global_pool_created.load(std::memory_order_acquire)) {
    return global().num_threads() == num_threads;
  }
  g_requested_global_threads.store(num_threads, std::memory_order_release);
  return true;
}

bool request_global_threads(unsigned num_threads) {
  return request_global_threads(num_threads, std::cerr);
}

bool request_global_threads(unsigned num_threads, std::ostream& warn) {
  if (ThreadPool::set_global_threads(num_threads)) return true;
  if (num_threads == 0) {
    warn << "warning: --threads 0 is not a valid pool size; keeping "
         << ThreadPool::global().num_threads() << " thread(s)\n";
  } else {
    warn << "warning: thread pool already running with "
         << ThreadPool::global().num_threads() << " thread(s); --threads "
         << num_threads << " ignored\n";
  }
  return false;
}

}  // namespace ebv
